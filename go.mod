module frappe

go 1.22
