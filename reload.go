package frappe

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"sync"
	"time"

	"frappe/internal/core"
	"frappe/internal/modelreg"
	"frappe/internal/telemetry"
)

// Reloader makes a Watchdog a live consumer of a model registry: it polls
// (or is poked — SIGHUP in watchdogd, POST /model/reload over HTTP) for a
// newer active version, loads it with checksum verification, validates it
// against a probe set, and hot-swaps it into the serving path. In-flight
// requests finish on the model they started with; nothing is dropped.
//
// Metrics (process default registry):
//
//	frappe_reload_total{outcome}      swapped / current / empty / corrupt /
//	                                  undecodable / probe_failed / error
//	frappe_reload_duration_seconds    per-Check wall clock (histogram)
//	frappe_reload_serving_version     registry version currently serving
var (
	reloadTotal = telemetry.Default().Counter("frappe_reload_total",
		"Registry reload checks, by outcome.", "outcome")
	reloadDuration = telemetry.Default().Histogram("frappe_reload_duration_seconds",
		"Wall-clock seconds per registry reload check.", nil).With()
	reloadServingVersion = telemetry.Default().Gauge("frappe_reload_serving_version",
		"Registry version of the model currently serving.").With()
)

// Reload outcomes, in ReloadStatus.Outcome.
const (
	// ReloadSwapped: a new version was validated and is now serving.
	ReloadSwapped = "swapped"
	// ReloadCurrent: the registry's active version is already serving.
	ReloadCurrent = "current"
	// ReloadEmpty: the registry has no published versions.
	ReloadEmpty = "empty"
	// ReloadCorrupt: the candidate failed checksum verification.
	ReloadCorrupt = "corrupt"
	// ReloadUndecodable: the payload verified but did not decode into a
	// classifier.
	ReloadUndecodable = "undecodable"
	// ReloadProbeFailed: the candidate decoded but failed to classify the
	// probe set.
	ReloadProbeFailed = "probe_failed"
	// ReloadError: any other registry I/O failure.
	ReloadError = "error"
)

// ReloadStatus reports one reload check.
type ReloadStatus struct {
	Outcome string `json:"outcome"`
	// Serving is the manifest of the model serving after the check.
	Serving ModelManifest `json:"serving"`
	// Previous is set when Outcome is "swapped".
	Previous *ModelManifest `json:"previous,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// ReloadConfig tunes a Reloader.
type ReloadConfig struct {
	// Interval is Watch's poll cadence (default 15s).
	Interval time.Duration
	// Probe records must classify without error (deleted-app probes are
	// tolerated) before a candidate may serve. An empty probe set skips
	// this gate; checksum and decode validation always run.
	Probe []AppRecord
	// Logger receives swap/refusal events; nil means slog.Default.
	Logger *slog.Logger
}

// Reloader watches a registry on behalf of one Watchdog.
type Reloader struct {
	wd  *Watchdog
	reg *ModelRegistry
	cfg ReloadConfig

	mu sync.Mutex // serialises Check: one candidate evaluation at a time
}

// NewReloader wires a Watchdog to the registry it should follow.
func NewReloader(wd *Watchdog, reg *ModelRegistry, cfg ReloadConfig) *Reloader {
	if cfg.Interval <= 0 {
		cfg.Interval = 15 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	reloadServingVersion.Set(float64(wd.ServingManifest().Version))
	return &Reloader{wd: wd, reg: reg, cfg: cfg}
}

// Check performs one reload poll: if the registry's active version differs
// from the serving one, the candidate is loaded (checksum-verified),
// decoded, probe-validated and swapped in. Concurrent Checks are
// serialised; serving traffic is never blocked by a Check.
func (r *Reloader) Check(ctx context.Context) ReloadStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := time.Now()
	defer func() { reloadDuration.Observe(time.Since(start).Seconds()) }()

	serving := r.wd.ServingManifest()
	fail := func(outcome string, err error) ReloadStatus {
		reloadTotal.With(outcome).Inc()
		r.cfg.Logger.Warn("model reload refused", "outcome", outcome, "err", err,
			"serving", serving.ModelID())
		return ReloadStatus{Outcome: outcome, Serving: serving, Error: err.Error()}
	}

	m, err := r.reg.Latest()
	switch {
	case errors.Is(err, modelreg.ErrEmpty):
		return fail(ReloadEmpty, err)
	case errors.Is(err, modelreg.ErrCorrupt):
		return fail(ReloadCorrupt, err)
	case err != nil:
		return fail(ReloadError, err)
	}
	if m.Version == serving.Version && m.SHA256 == serving.SHA256 {
		reloadTotal.With(ReloadCurrent).Inc()
		return ReloadStatus{Outcome: ReloadCurrent, Serving: serving}
	}

	payload, m, err := r.reg.Payload(m.Version)
	if err != nil {
		if errors.Is(err, modelreg.ErrCorrupt) {
			return fail(ReloadCorrupt, err)
		}
		return fail(ReloadError, err)
	}
	clf, err := core.Load(bytes.NewReader(payload))
	if err != nil {
		return fail(ReloadUndecodable, err)
	}
	if err := probeClassifier(ctx, clf, r.cfg.Probe); err != nil {
		return fail(ReloadProbeFailed, err)
	}

	prev := serving
	if err := r.wd.SwapModel(clf, m); err != nil {
		return fail(ReloadError, err)
	}
	reloadTotal.With(ReloadSwapped).Inc()
	reloadServingVersion.Set(float64(m.Version))
	inference := "exact"
	if cm := clf.Compiled(); cm != nil {
		inference = cm.String()
	}
	r.cfg.Logger.Info("model hot-swapped",
		"from", prev.ModelID(), "to", m.ModelID(),
		"feature_mode", m.FeatureMode, "inference", inference,
		"cv_accuracy", m.CV.Accuracy, "cv_fp_rate", m.CV.FPRate, "cv_fn_rate", m.CV.FNRate)
	return ReloadStatus{Outcome: ReloadSwapped, Serving: m, Previous: &prev}
}

// probeClassifier runs the candidate over the probe set; any extraction or
// scoring failure (other than a record being unclassifiable by design)
// disqualifies it.
func probeClassifier(ctx context.Context, clf *Classifier, probe []AppRecord) error {
	for _, rec := range probe {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := clf.Classify(rec); err != nil && !errors.Is(err, ErrNotClassifiable) {
			return err
		}
	}
	return nil
}

// Watch polls the registry every Interval until ctx is cancelled. Swap and
// refusal events are logged by Check; Watch itself is silent on "current".
func (r *Reloader) Watch(ctx context.Context) {
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.Check(ctx)
		}
	}
}
