// Quickstart: generate a small synthetic Facebook-like world, assemble the
// paper's datasets, train FRAppE, cross-validate it, and classify a few
// apps — the minimal end-to-end tour of the library.
package main

import (
	"context"
	"fmt"
	"log"

	"frappe"
)

func main() {
	log.SetFlags(0)

	// 1. A world at 3% of the paper's scale: ~3,300 apps, ~430 of them
	// controlled by AppNet operators, nine months of posting behaviour.
	cfg := frappe.DefaultConfig(0.03)
	world := frappe.GenerateWorld(cfg)
	fmt.Printf("world: %d apps (%d malicious), %d monitored users, %d posts streamed\n",
		world.Platform.NumApps(), len(world.MaliciousIDs),
		world.Platform.Users(), world.TotalStreamPosts)

	// 2. Datasets, exactly as §2.3 builds them: MyPageKeeper's flagged
	// posts give the malicious labels, Social Bakers vetting the benign
	// side, and the crawl fills in on-demand features.
	data, err := frappe.BuildDatasets(context.Background(), world)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("D-Sample: %d malicious + %d benign (whitelisted %d popular apps)\n",
		len(data.Malicious), len(data.Benign), len(data.Whitelisted))

	// 3. Five-fold cross-validation of full FRAppE on D-Complete.
	records, labels := frappe.CompleteSample(data)
	metrics, err := frappe.CrossValidate(records, labels, 5,
		frappe.Options{Features: frappe.FullFeatures()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FRAppE 5-fold CV: %v  (paper: 99.5%% accuracy, 0 FP, 4.1%% FN)\n", metrics)

	// 4. Train on everything and classify one app of each kind.
	allRecords, allLabels := frappe.LabeledSample(data)
	clf, err := frappe.Train(allRecords, allLabels, frappe.Options{Features: frappe.FullFeatures()})
	if err != nil {
		log.Fatal(err)
	}
	for i, rec := range allRecords {
		verdict, err := clf.Classify(rec)
		if err != nil {
			log.Fatal(err)
		}
		if verdict.Malicious == allLabels[i] {
			fmt.Printf("app %s: labelled %v, classified %v (score %+.3f)\n",
				rec.ID, allLabels[i], verdict.Malicious, verdict.Score)
		}
		if i >= 1 {
			break
		}
	}
}
