// Watchdog: the deployment §5.1 of the paper envisions — a browser
// extension that evaluates any app ID at install time. This example runs
// the full networking stack: the simulated Graph API and WOT services are
// real HTTP servers, a FRAppE Lite classifier is trained, serialised, and
// loaded into a watchdog that crawls each app's on-demand features over
// HTTP before classifying it.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"frappe"
)

func main() {
	log.SetFlags(0)

	world := frappe.GenerateWorld(frappe.DefaultConfig(0.02))
	data, err := frappe.BuildDatasets(context.Background(), world)
	if err != nil {
		log.Fatal(err)
	}

	// Train FRAppE Lite — on-demand features only, since a browser
	// extension has no cross-user aggregation view.
	records, labels := frappe.LabeledSample(data)
	clf, err := frappe.Train(records, labels, frappe.Options{Features: frappe.LiteFeatures()})
	if err != nil {
		log.Fatal(err)
	}

	// Ship the model: serialise, then load it in the "extension".
	var model bytes.Buffer
	if err := clf.Save(&model); err != nil {
		log.Fatal(err)
	}

	// Expose the world's services over loopback HTTP.
	stack, err := frappe.StartServices(world)
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	fmt.Printf("graph API at %s, WOT at %s\n", stack.GraphURL, stack.WOTURL)

	watchdog, err := frappe.NewWatchdogFrom(&model, stack.GraphURL, stack.WOTURL)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate a handful of live apps of each class.
	evaluate := func(ids []string, class string, want bool) {
		shown := 0
		correct := 0
		for _, id := range ids {
			if _, err := world.Platform.Lookup(id); err != nil {
				continue // deleted from the graph
			}
			v, err := watchdog.Evaluate(context.Background(), id)
			if err != nil {
				log.Fatalf("evaluating %s: %v", id, err)
			}
			if v.Malicious == want {
				correct++
			}
			if shown < 3 {
				app, _ := world.Platform.App(id)
				fmt.Printf("  %-22q -> malicious=%v (score %+.3f)\n", app.Name, v.Malicious, v.Score)
			}
			shown++
			if shown == 40 {
				break
			}
		}
		fmt.Printf("%s apps: %d/%d classified correctly\n\n", class, correct, shown)
	}
	fmt.Println("evaluating malicious apps on demand:")
	evaluate(world.MaliciousIDs, "malicious", true)
	fmt.Println("evaluating benign apps on demand:")
	evaluate(world.BenignIDs, "benign", false)
}
