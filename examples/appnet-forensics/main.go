// AppNet forensics: the §6 investigation. Rebuilds the Collaboration graph
// from the links malicious apps posted, reports the AppNet structure
// (components, degrees, clustering), and then probes the fast-changing
// indirection websites over real HTTP — the paper followed each such URL
// 100 times a day for six weeks to map 103 websites to 4,676 promoted apps.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/url"

	"frappe"
)

func main() {
	log.SetFlags(0)

	world := frappe.GenerateWorld(frappe.DefaultConfig(0.03))
	data, err := frappe.BuildDatasets(context.Background(), world)
	if err != nil {
		log.Fatal(err)
	}

	// The collaboration graph over the detected malicious apps.
	summary := frappe.BuildCollaborationGraph(world, data.Malicious)
	fmt.Printf(`Collaboration graph (paper: 1,584 promoters -> 3,723 promotees, 44 components):
  apps %d, edges %d, components %d, top component sizes %v
  promoters %d, promotees %d, dual-role %d
  average degree %.1f (max %d); %.0f%% of apps collude with >10 others
  direct promotion edges %d, via indirection websites %d

`,
		summary.Apps, summary.Edges, summary.Components, summary.TopComponents,
		summary.Promoters, summary.Promotees, summary.DualRole,
		summary.AverageDegree, summary.MaxDegree, 100*summary.DegreeOver10,
		summary.DirectEdges, summary.IndirectEdges)

	// Probe the indirection websites over HTTP, like the paper's
	// instrumented Firefox: each GET lands on a different promoted app.
	stack, err := frappe.StartServices(world)
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	probed := 0
	// Walk the sites through the hackers' ground truth so we can show the
	// hosting domain next to each probe.
	for _, h := range world.Hackers {
		for _, site := range h.Sites {
			if probed == 3 {
				break
			}
			probed++
			u, err := url.Parse(site.URL)
			if err != nil {
				log.Fatal(err)
			}
			seen := map[string]bool{}
			const visits = 100
			for i := 0; i < visits; i++ {
				resp, err := client.Get(stack.RedirectorURL + u.Path)
				if err != nil {
					log.Fatal(err)
				}
				resp.Body.Close()
				if loc := resp.Header.Get("Location"); loc != "" {
					seen[loc] = true
				}
			}
			fmt.Printf("indirection site %s (hosted on %s):\n  %d visits -> %d distinct app install pages\n",
				site.URL, site.HostDomain, visits, len(seen))
		}
	}
	fmt.Printf("\n(the paper found 35%% of its 103 indirection websites promoting >100 apps each,\n a third of them hosted on amazonaws.com)\n")
}
