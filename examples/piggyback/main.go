// Piggyback: demonstrates the §6.2 prompt_feed weakness and its detection.
// First it reproduces the exploit live — anyone can attribute a post to a
// popular app's ID, and the monitoring service has no way to tell — then it
// runs the Fig. 16 analysis to surface the victims: flagged apps whose
// malicious-to-all-posts ratio is suspiciously low.
package main

import (
	"context"
	"fmt"
	"log"

	"frappe"
)

func main() {
	log.SetFlags(0)

	world := frappe.GenerateWorld(frappe.DefaultConfig(0.03))

	// ---- The exploit, step by step ----
	victim := world.PopularIDs[0]
	victimApp, err := world.Platform.App(victim)
	if err != nil {
		log.Fatal(err)
	}
	attacker := world.MaliciousIDs[0]
	// The prompt_feed API accepts ANY api_key: Facebook never authenticates
	// that the post really originates from that application.
	post, err := world.Platform.PromptFeedPost(
		victim,   // api_key: the popular app being impersonated
		attacker, // the app actually making the post
		42,       // the lured user
		"WOW I just got 5000 Facebook Credits for Free",
		"http://offers5000credit.example.net/claim", 3, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prompt_feed exploit: post attributed to %q, truly from app %s\n",
		victimApp.Name, post.SourceAppID)
	fmt.Printf("the monitor sees only the attribution: AppID=%s\n\n", post.AppID)

	// ---- Detection (Fig. 16 / Table 9) ----
	if _, err := frappe.BuildDatasets(context.Background(), world); err != nil {
		log.Fatal(err)
	}
	findings := frappe.DetectPiggybacking(world, 0.2)
	fmt.Println("suspected piggybacking victims (flagged ratio < 0.2, by volume):")
	fmt.Printf("%-24s %-10s %-8s %s\n", "App name", "posts", "flagged", "sample lure")
	for i, f := range findings {
		if i == 5 {
			break
		}
		lure := f.SampleMessage
		if len(lure) > 45 {
			lure = lure[:45] + "..."
		}
		fmt.Printf("%-24s %-10d %-8d %q\n", f.Name, f.Posts, f.FlaggedPosts, lure)
	}
	fmt.Printf("\n(paper Table 9: FarmVille, Links, Facebook for iPhone, Mobile, Facebook for Android)\n")
	fmt.Printf("recommendation to Facebook (§7): authenticate the api_key of prompt_feed posts\n")
}
