// Tokenflow: the anatomy of a malicious app, following §2.1 and Fig. 2 of
// the paper step by step — install, permission grant, OAuth token issuance,
// token forwarding to the hackers, personal-data harvest, and spam posting
// on the victim's wall — and then the defender's view: MyPageKeeper flags
// the posts and FRAppE's ground-truth heuristic marks the app.
package main

import (
	"fmt"
	"log"

	"frappe/internal/fbplatform"
	"frappe/internal/mypagekeeper"
)

func main() {
	log.SetFlags(0)

	platform := fbplatform.New(1000)
	scam := &fbplatform.App{
		ID:   "666000111",
		Name: "What Does Your Name Mean?",
		// §4.1.2: 97% of malicious apps request only publish_stream —
		// exactly enough to spam, little enough not to scare the victim.
		Permissions: []string{fbplatform.PermPublishStream},
		RedirectURI: "http://thenamemeans2.com/install",
		Truth:       fbplatform.Truth{Malicious: true},
	}
	if err := platform.Register(scam); err != nil {
		log.Fatal(err)
	}

	// Step 1-2: the victim, lured by a fake promise, requests the install;
	// the platform shows the permission set.
	victim := 42
	info, err := platform.InstallInfo(scam.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("install prompt for %q: requests %v\n", scam.Name, info.Permissions)

	// Step 3-4: the victim allows the permissions; Facebook issues an
	// OAuth token to the application server.
	token, err := platform.InstallApp(victim, scam.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("token issued to the app server: %s (scopes %v)\n", token.Token, token.Scopes)

	// Step 5: the application server forwards the token to the hackers.
	// A bearer token needs no further ceremony — the string IS the power.
	hackersCopy := token.Token

	// The app tries to harvest personal data (§2.1 step 3): this one only
	// asked for publish_stream, so there is nothing to take.
	loot, err := platform.ReadProfileWithToken(hackersCopy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("personal data harvested: %d fields %v\n", len(loot), loot)

	// Step 6: using the token, the hackers post spam on the victim's wall
	// to lure the victim's friends (§2.1 step 4).
	monitor := mypagekeeper.New(mypagekeeper.DefaultClassifierConfig())
	monitor.SubscribeRange(0, 1000)
	monitor.AddBlacklistedDomain("thenamemeans2.com")
	for i := 0; i < 3; i++ {
		post, err := platform.PostWithToken(hackersCopy,
			"WOW find out what your name means - FREE!",
			"http://thenamemeans2.com/offer", 1, true)
		if err != nil {
			log.Fatal(err)
		}
		flagged := monitor.Observe(post)
		fmt.Printf("wall post %d on user %d's wall (flagged by MyPageKeeper: %v)\n",
			i+1, post.UserID, flagged)
	}

	// The defender's view: one flagged post is enough for the paper's
	// ground-truth heuristic to mark the application malicious.
	fmt.Printf("\napp flagged malicious by the post-level heuristic: %v\n",
		monitor.AppFlagged(scam.ID))
	fmt.Printf("flagged posts attributed to the app: %d\n",
		monitor.FlaggedPostCount(scam.ID))

	// Epilogue: the user uninstalls; the token dies.
	if err := platform.RevokeToken(token.Token); err != nil {
		log.Fatal(err)
	}
	if _, err := platform.PostWithToken(hackersCopy, "one more", "", 2, true); err != nil {
		fmt.Printf("after uninstall, the forwarded token is dead: %v\n", err)
	}
}
