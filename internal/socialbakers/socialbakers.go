// Package socialbakers simulates the Social Bakers app-vetting service the
// paper uses to pick the benign half of D-Sample (§2.3): an app is "vetted"
// if the service monitors it, and 90% of vetted apps carry a user rating of
// at least 3 out of 5.
package socialbakers

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"frappe/internal/httpx"
)

// ErrNotVetted is returned for apps the service does not track.
var ErrNotVetted = errors.New("socialbakers: app not vetted")

// Rating is a vetting record for one app.
type Rating struct {
	AppID  string  `json:"app_id"`
	Stars  float64 `json:"stars"` // user rating, 0–5
	Vetted bool    `json:"vetted"`
}

// Service is an in-memory vetting registry, safe for concurrent use.
type Service struct {
	mu      sync.RWMutex
	ratings map[string]Rating
}

// NewService returns an empty registry.
func NewService() *Service {
	return &Service{ratings: make(map[string]Rating)}
}

// Vet records an app with its user rating (0–5 stars).
func (s *Service) Vet(appID string, stars float64) error {
	if appID == "" {
		return errors.New("socialbakers: empty app ID")
	}
	if stars < 0 || stars > 5 {
		return fmt.Errorf("socialbakers: rating %v out of range [0,5]", stars)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ratings[appID] = Rating{AppID: appID, Stars: stars, Vetted: true}
	return nil
}

// Rating returns the vetting record for appID.
func (s *Service) Rating(appID string) (Rating, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.ratings[appID]
	if !ok {
		return Rating{AppID: appID}, ErrNotVetted
	}
	return r, nil
}

// NumVetted reports how many apps are tracked.
func (s *Service) NumVetted() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ratings)
}

// ServeHTTP implements:
//
//	GET /app?id=APPID -> Rating JSON (200), or 404 if not vetted.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/app" {
		http.NotFound(w, r)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, `{"error":"missing id"}`, http.StatusBadRequest)
		return
	}
	rating, err := s.Rating(id)
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "not vetted"})
		return
	}
	json.NewEncoder(w).Encode(rating)
}

// Client queries the vetting API over HTTP.
type Client struct {
	BaseURL string
	// HTTP is the resilient transport (timeouts, retries, breaker); nil
	// means the shared httpx.Default().
	HTTP *httpx.Client
}

func (c *Client) transport() *httpx.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return httpx.Default()
}

// Rating fetches the vetting record for appID; ErrNotVetted if untracked.
func (c *Client) Rating(appID string) (Rating, error) {
	u := strings.TrimRight(c.BaseURL, "/") + "/app?" + url.Values{"id": {appID}}.Encode()
	resp, err := c.transport().Get(context.Background(), u)
	if err != nil {
		return Rating{}, fmt.Errorf("socialbakers: %w", err)
	}
	if resp.StatusCode == http.StatusNotFound {
		return Rating{AppID: appID}, ErrNotVetted
	}
	if resp.StatusCode != http.StatusOK {
		return Rating{}, fmt.Errorf("socialbakers: unexpected status %s", resp.Status)
	}
	var rating Rating
	if err := json.Unmarshal(resp.Body, &rating); err != nil {
		return Rating{}, fmt.Errorf("socialbakers: decoding response: %w", err)
	}
	return rating, nil
}
