package socialbakers

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestVetAndRating(t *testing.T) {
	s := NewService()
	if err := s.Vet("100", 4.5); err != nil {
		t.Fatal(err)
	}
	r, err := s.Rating("100")
	if err != nil || !r.Vetted || r.Stars != 4.5 {
		t.Errorf("Rating = %+v, %v", r, err)
	}
	if _, err := s.Rating("404"); !errors.Is(err, ErrNotVetted) {
		t.Errorf("unvetted err = %v", err)
	}
	if s.NumVetted() != 1 {
		t.Errorf("NumVetted = %d", s.NumVetted())
	}
}

func TestVetValidation(t *testing.T) {
	s := NewService()
	if err := s.Vet("", 3); err == nil {
		t.Error("empty ID: want error")
	}
	if err := s.Vet("1", -0.5); err == nil {
		t.Error("negative stars: want error")
	}
	if err := s.Vet("1", 5.5); err == nil {
		t.Error(">5 stars: want error")
	}
}

func TestHTTPAPI(t *testing.T) {
	svc := NewService()
	if err := svc.Vet("farmville", 4.8); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	r, err := c.Rating("farmville")
	if err != nil || r.Stars != 4.8 || !r.Vetted {
		t.Errorf("Rating = %+v, %v", r, err)
	}
	if _, err := c.Rating("scamapp"); !errors.Is(err, ErrNotVetted) {
		t.Errorf("unvetted err = %v", err)
	}

	resp, err := http.Get(srv.URL + "/app")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing id status = %d", resp.StatusCode)
	}
}
