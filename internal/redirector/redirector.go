// Package redirector simulates the fast-changing indirection websites of
// §6.1: URLs hosted outside Facebook (a third of them on amazonaws.com in
// the paper) that dynamically forward visitors to the installation pages of
// many different malicious apps over time. Hackers put these URLs —
// usually bit.ly-shortened — into promotion posts; following one URL 100
// times a day for six weeks is how the paper maps 103 indirection sites to
// 4,676 promoted apps.
package redirector

import (
	"errors"
	"net/http"
	"strings"
	"sync"
)

// ErrNoSite is returned when a path has no registered indirection site.
var ErrNoSite = errors.New("redirector: no such site")

// Site is one indirection URL and its rotating target set.
type Site struct {
	// URL is the public address of the site (the string hackers shorten
	// and post), e.g. "http://x7k2.amazonaws.example/promo".
	URL string
	// HostDomain is the hosting provider's domain, for the §6.1 hosting
	// analysis.
	HostDomain string

	mu      sync.Mutex
	targets []string
	next    int
}

// NewSite creates a site at url on hostDomain forwarding to targets
// (install URLs of promoted apps) in rotation.
func NewSite(url, hostDomain string, targets []string) *Site {
	return &Site{URL: url, HostDomain: hostDomain, targets: append([]string(nil), targets...)}
}

// Resolve returns the next target in rotation, modelling the dynamic
// forwarding a visitor experiences.
func (s *Site) Resolve() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.targets) == 0 {
		return "", ErrNoSite
	}
	t := s.targets[s.next%len(s.targets)]
	s.next++
	return t, nil
}

// Targets returns a copy of all install URLs the site can forward to.
func (s *Site) Targets() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.targets...)
}

// NumTargets reports how many distinct apps the site promotes.
func (s *Site) NumTargets() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.targets)
}

// Service hosts many indirection sites behind one HTTP handler, keyed by
// URL path. It is safe for concurrent use.
type Service struct {
	mu    sync.RWMutex
	sites map[string]*Site // key: path ("/promo7")
}

// NewService returns an empty redirector.
func NewService() *Service {
	return &Service{sites: make(map[string]*Site)}
}

// Add registers a site under the path component of its URL.
func (s *Service) Add(site *Site) {
	path := pathOf(site.URL)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sites[path] = site
}

// Site looks up a site by URL or bare path.
func (s *Service) Site(urlOrPath string) (*Site, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	site, ok := s.sites[pathOf(urlOrPath)]
	if !ok {
		return nil, ErrNoSite
	}
	return site, nil
}

// NumSites reports how many indirection sites are registered.
func (s *Service) NumSites() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sites)
}

// Each visits every site until fn returns false.
func (s *Service) Each(fn func(*Site) bool) {
	s.mu.RLock()
	sites := make([]*Site, 0, len(s.sites))
	for _, site := range s.sites {
		sites = append(sites, site)
	}
	s.mu.RUnlock()
	for _, site := range sites {
		if !fn(site) {
			return
		}
	}
}

// ServeHTTP forwards GET /path with a 302 to the next rotating target.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	site, err := s.Site(r.URL.Path)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	target, err := site.Resolve()
	if err != nil {
		http.NotFound(w, r)
		return
	}
	http.Redirect(w, r, target, http.StatusFound)
}

// pathOf extracts the path component from a URL, defaulting to "/".
func pathOf(raw string) string {
	rest := raw
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if i := strings.Index(rest, "/"); i >= 0 {
		rest = rest[i:]
	} else if strings.HasPrefix(raw, "/") {
		return raw
	} else {
		return "/"
	}
	if i := strings.IndexAny(rest, "?#"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}
