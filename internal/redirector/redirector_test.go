package redirector

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestSiteRotation(t *testing.T) {
	site := NewSite("http://promo.amazonaws.example/p1", "amazonaws.example",
		[]string{"A", "B", "C"})
	var got []string
	for i := 0; i < 6; i++ {
		target, err := site.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, target)
	}
	want := []string{"A", "B", "C", "A", "B", "C"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
	if site.NumTargets() != 3 {
		t.Errorf("NumTargets = %d", site.NumTargets())
	}
}

func TestEmptySite(t *testing.T) {
	site := NewSite("http://x.example/p", "x.example", nil)
	if _, err := site.Resolve(); !errors.Is(err, ErrNoSite) {
		t.Errorf("empty site Resolve err = %v", err)
	}
}

func TestServiceLookup(t *testing.T) {
	svc := NewService()
	svc.Add(NewSite("http://h.example/promo7", "h.example", []string{"T"}))
	if _, err := svc.Site("http://h.example/promo7"); err != nil {
		t.Errorf("lookup by URL: %v", err)
	}
	if _, err := svc.Site("/promo7"); err != nil {
		t.Errorf("lookup by path: %v", err)
	}
	if _, err := svc.Site("/missing"); !errors.Is(err, ErrNoSite) {
		t.Errorf("missing site err = %v", err)
	}
	if svc.NumSites() != 1 {
		t.Errorf("NumSites = %d", svc.NumSites())
	}
}

func TestPathOf(t *testing.T) {
	cases := []struct{ in, want string }{
		{"http://a.example/p1", "/p1"},
		{"http://a.example/p1?x=2", "/p1"},
		{"/p2", "/p2"},
		{"http://a.example", "/"},
		{"a.example/deep/path", "/deep/path"},
	}
	for _, c := range cases {
		if got := pathOf(c.in); got != c.want {
			t.Errorf("pathOf(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHTTPRedirect(t *testing.T) {
	svc := NewService()
	svc.Add(NewSite("http://host.example/go", "host.example",
		[]string{"http://apps.facebook.example/install?id=1", "http://apps.facebook.example/install?id=2"}))
	srv := httptest.NewServer(svc)
	defer srv.Close()

	hc := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		resp, err := hc.Get(srv.URL + "/go")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusFound {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		seen[resp.Header.Get("Location")] = true
	}
	if len(seen) != 2 {
		t.Errorf("rotating targets seen = %v", seen)
	}

	resp, err := hc.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing site status = %d", resp.StatusCode)
	}
}

func TestEach(t *testing.T) {
	svc := NewService()
	for _, p := range []string{"/a", "/b", "/c"} {
		svc.Add(NewSite("http://h.example"+p, "h.example", []string{"T"}))
	}
	n := 0
	svc.Each(func(*Site) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("Each early-stop visited %d", n)
	}
}
