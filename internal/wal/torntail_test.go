package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// tailFixture writes `keep` records, syncs, appends one more (the tail
// record under attack) and returns the directory, the tail segment path
// and the byte offset the tail record starts at.
func tailFixture(t *testing.T, keep int) (dir, segPath string, tailStart int64) {
	t.Helper()
	dir = t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keep; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("keep-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	segPath = filepath.Join(dir, segs[len(segs)-1].name)
	st, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	tailStart = st.Size()
	if _, err := l.Append([]byte("tail-record-payload")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, segPath, tailStart
}

func recoverAndCheck(t *testing.T, dir string, wantRecords uint64, label string) {
	t.Helper()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("%s: Open: %v", label, err)
	}
	defer l.Close()
	if got := l.End(); got != wantRecords {
		t.Fatalf("%s: End = %d, want %d", label, got, wantRecords)
	}
	r, err := l.Reader(0)
	if err != nil {
		t.Fatalf("%s: Reader: %v", label, err)
	}
	defer r.Close()
	var n uint64
	for {
		p, _, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("%s: Next: %v", label, err)
		}
		if want := fmt.Sprintf("keep-%04d", n); string(p) != want {
			t.Fatalf("%s: record %d = %q, want %q", label, n, p, want)
		}
		n++
	}
	if n != wantRecords {
		t.Fatalf("%s: replay returned %d records, want %d", label, n, wantRecords)
	}
	// The recovered log must accept appends and make them readable.
	if idx, err := l.Append([]byte("post-recovery")); err != nil || idx != wantRecords {
		t.Fatalf("%s: append after recovery: idx=%d err=%v", label, idx, err)
	}
}

// TestTornTailTruncateEveryOffset truncates the segment at every byte
// length inside the tail record's frame; Open must recover exactly the
// intact prefix every time and leave the log appendable.
func TestTornTailTruncateEveryOffset(t *testing.T) {
	const keep = 7
	_, refSeg, tailStart := tailFixture(t, keep)
	full, err := os.ReadFile(refSeg)
	if err != nil {
		t.Fatal(err)
	}
	tailLen := int64(len(full)) - tailStart
	if tailLen <= headerSize {
		t.Fatalf("degenerate fixture: tail frame is %d bytes", tailLen)
	}
	// Each cut length gets a pristine fixture (the writer is deterministic,
	// so every fixture holds identical bytes).
	for cut := int64(0); cut < tailLen; cut++ {
		dir, segPath, _ := tailFixture(t, keep)
		if err := os.Truncate(segPath, tailStart+cut); err != nil {
			t.Fatal(err)
		}
		recoverAndCheck(t, dir, keep, fmt.Sprintf("truncate at tail+%d", cut))
	}
}

// TestTornTailCorruptEveryOffset flips one byte at every position of the
// tail record's frame; CRC (or the length bound) must catch each one, and
// Open must truncate back to the intact prefix.
func TestTornTailCorruptEveryOffset(t *testing.T) {
	const keep = 5
	_, refSeg, tailStart := tailFixture(t, keep)
	full, err := os.ReadFile(refSeg)
	if err != nil {
		t.Fatal(err)
	}
	tailLen := int64(len(full)) - tailStart

	for pos := int64(0); pos < tailLen; pos++ {
		dir, segPath, _ := tailFixture(t, keep)
		f, err := os.OpenFile(segPath, os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]byte, 1)
		if _, err := f.ReadAt(b, tailStart+pos); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0x5a
		if _, err := f.WriteAt(b, tailStart+pos); err != nil {
			t.Fatal(err)
		}
		f.Close()

		// A corrupted length field can make the frame *look* longer or
		// shorter; either way the valid prefix is the keep records. The one
		// unprotected case would be a corrupt length that still frames a
		// checksum-passing record — impossible here because the payload CRC
		// is over exactly the framed bytes.
		recoverAndCheck(t, dir, keep, fmt.Sprintf("corrupt byte tail+%d", pos))
	}
}

// TestTornTailAcrossReopenChain damages, recovers, appends and damages
// again — recovery must compose.
func TestTornTailAcrossReopenChain(t *testing.T) {
	dir, segPath, tailStart := tailFixture(t, 3)
	if err := os.Truncate(segPath, tailStart+3); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.End(); got != 3 {
		t.Fatalf("End after first recovery = %d, want 3", got)
	}
	if _, err := l.Append([]byte("second-generation")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Damage the new tail too.
	st, _ := os.Stat(segPath)
	if err := os.Truncate(segPath, st.Size()-1); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.End(); got != 3 {
		t.Fatalf("End after second recovery = %d, want 3", got)
	}
}
