// Package wal is an append-only, segment-rotated write-ahead log for the
// ingestion stream — the durability layer under the sharded MyPageKeeper
// monitor. The paper's deployment assumes the post/install/blacklist
// stream can always be re-fetched; a real one cannot (apps get deleted,
// feeds churn), so every event is made durable before it is applied and a
// crashed process rebuilds its state by replay instead of re-crawling.
//
// On-disk layout, rooted at one directory:
//
//	seg-<%016x>.wal   record segments; the hex is the index of the first
//	                  record in the segment
//	offsets/<name>    committed consumer offsets (fsx.WriteAtomic JSON)
//
// Record framing, little-endian:
//
//	uint32 length | uint32 CRC32C(payload) | payload
//
// Fsync contract: appended records are guaranteed durable after Sync
// (callers place it at barriers: blacklist adds, session close, consumer
// commits), after a segment rotation (a sealed segment is never touched
// again), and every Options.SyncEvery records. Between syncs a crash may
// lose the tail — but never tear it silently: Open scans the last segment
// and truncates at the first record whose length or checksum does not
// hold, so the log always reopens to a valid prefix of what was appended.
//
// Consumers are named cursors into the record index space. An offset is
// committed atomically (temp file + fsync + rename + dir fsync) and is
// the "everything before this has been fully processed" watermark, letting
// the retrainer and monitor replicas resume where they left off.
//
// Metrics (process default registry):
//
//	frappe_wal_appended_records_total   records appended
//	frappe_wal_appended_bytes_total     payload + framing bytes appended
//	frappe_wal_fsync_total              file fsyncs issued
//	frappe_wal_segment_rotations_total  segment rotations
//	frappe_wal_truncated_tail_bytes_total bytes cut by torn-tail recovery
//	frappe_wal_replay_records_total     records handed out by readers
//	frappe_wal_consumer_offset{consumer}  last committed offset
//	frappe_wal_consumer_lag{consumer}     End() - committed offset
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"frappe/internal/fsx"
	"frappe/internal/telemetry"
)

const (
	segPrefix  = "seg-"
	segSuffix  = ".wal"
	offsetsDir = "offsets"
	headerSize = 8 // uint32 length + uint32 crc

	// DefaultSegmentBytes is the rotation threshold when Options leaves it
	// zero: small enough that sealing (and fsyncing) happens regularly,
	// large enough that a scale-0.15 world fits in a handful of segments.
	DefaultSegmentBytes = 4 << 20

	// MaxRecordBytes bounds a single record. Ingestion events are tens to
	// hundreds of bytes; anything near this size in a length header is
	// corruption, and treating it as such keeps torn-tail recovery from
	// attempting a gigabyte allocation.
	MaxRecordBytes = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record that failed its length or checksum validation
// in a sealed (non-tail) position, where torn-write recovery does not apply.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options tune a Log; the zero value is ready to use.
type Options struct {
	// SegmentBytes is the rotation threshold: once the active segment
	// reaches it, the segment is fsynced, sealed and a new one started.
	// 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// SyncEvery fsyncs the active segment after every N appended records.
	// 0 means fsync only on rotation, Sync and Close — the barrier-driven
	// contract the ingester uses.
	SyncEvery int
}

// Log is a single-writer append log. Append/Sync/Close serialise through
// an internal mutex; Reader and consumer-offset calls are safe to use
// concurrently with the writer, including from other processes.
type Log struct {
	dir  string
	opts Options

	mu         sync.Mutex
	active     *os.File
	activeBase uint64 // record index of the active segment's first record
	activeOff  int64  // bytes written to the active segment
	next       uint64 // index the next appended record receives
	unsynced   int    // records appended since the last fsync
	closed     bool
	buf        []byte // framing scratch, reused across appends

	appended  *telemetry.CounterVec
	bytes     *telemetry.CounterVec
	fsyncs    *telemetry.CounterVec
	rotations *telemetry.CounterVec
	replayed  *telemetry.CounterVec
	offsetG   *telemetry.GaugeVec
	lagG      *telemetry.GaugeVec
}

// Open opens (creating if needed) the log rooted at dir and recovers it:
// the newest segment is scanned record by record and truncated at the
// first torn or corrupt record, so the log reopens to the longest valid
// prefix of what was ever appended. Sealed (non-newest) segments are
// trusted; readers still checksum every record they return.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(filepath.Join(dir, offsetsDir), 0o755); err != nil {
		return nil, fmt.Errorf("wal: opening %s: %w", dir, err)
	}
	reg := telemetry.Default()
	l := &Log{
		dir:  dir,
		opts: opts,
		appended: reg.Counter("frappe_wal_appended_records_total",
			"Records appended to the ingestion WAL."),
		bytes: reg.Counter("frappe_wal_appended_bytes_total",
			"Bytes (payload plus framing) appended to the ingestion WAL."),
		fsyncs: reg.Counter("frappe_wal_fsync_total",
			"File fsyncs issued by the ingestion WAL."),
		rotations: reg.Counter("frappe_wal_segment_rotations_total",
			"Segment rotations of the ingestion WAL."),
		replayed: reg.Counter("frappe_wal_replay_records_total",
			"Records handed to WAL readers (replay and tailing)."),
		offsetG: reg.Gauge("frappe_wal_consumer_offset",
			"Last committed WAL offset, per named consumer.", "consumer"),
		lagG: reg.Gauge("frappe_wal_consumer_lag",
			"Records between the WAL end and the consumer's committed offset.", "consumer"),
	}
	truncCounter := reg.Counter("frappe_wal_truncated_tail_bytes_total",
		"Bytes removed by torn-tail truncation when reopening the WAL.")

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.startSegment(0); err != nil {
			return nil, err
		}
		return l, nil
	}
	last := segs[len(segs)-1]
	count, validLen, fileLen, err := scanSegment(filepath.Join(dir, last.name))
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, last.name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: reopening %s: %w", last.name, err)
	}
	if validLen < fileLen {
		// Torn tail: cut back to the last record whose frame checks out.
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", last.name, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: syncing truncated %s: %w", last.name, err)
		}
		truncCounter.With().Add(uint64(fileLen - validLen))
		l.fsyncs.With().Inc()
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seeking %s: %w", last.name, err)
	}
	l.active = f
	l.activeBase = last.base
	l.activeOff = validLen
	l.next = last.base + count
	return l, nil
}

// segment is one segment file: its name and the index of its first record.
type segment struct {
	name string
	base uint64
}

func segmentName(base uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, base, segSuffix)
}

func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var base uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix),
			"%016x", &base); err != nil {
			continue
		}
		segs = append(segs, segment{name: name, base: base})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

// scanSegment walks a segment validating frames, returning the number of
// valid records, the byte offset the valid prefix ends at, and the file
// length. Any anomaly — truncated header, truncated payload, absurd
// length, checksum mismatch — ends the valid prefix there.
func scanSegment(path string) (count uint64, validLen, fileLen int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: scanning %s: %w", path, err)
	}
	fileLen = int64(len(data))
	for {
		rest := data[validLen:]
		if len(rest) < headerSize {
			return count, validLen, fileLen, nil
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n == 0 || n > MaxRecordBytes || int64(len(rest)) < headerSize+int64(n) {
			return count, validLen, fileLen, nil
		}
		payload := rest[headerSize : headerSize+int64(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return count, validLen, fileLen, nil
		}
		validLen += headerSize + int64(n)
		count++
	}
}

// startSegment creates and activates the segment whose first record is
// base, fsyncing the directory so the file itself survives a crash.
func (l *Log) startSegment(base uint64) error {
	path := filepath.Join(l.dir, segmentName(base))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if err := fsx.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing dir after segment create: %w", err)
	}
	l.active = f
	l.activeBase = base
	l.activeOff = 0
	l.next = base
	return nil
}

// Append adds one record and returns its index. The record is durable
// after the next Sync / rotation / SyncEvery-triggered fsync, and is
// immediately visible to readers (same process or not).
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) == 0 {
		return 0, errors.New("wal: empty record")
	}
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	need := headerSize + len(payload)
	if cap(l.buf) < need {
		l.buf = make([]byte, need)
	}
	frame := l.buf[:need]
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[headerSize:], payload)
	if _, err := l.active.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: appending record %d: %w", l.next, err)
	}
	idx := l.next
	l.next++
	l.activeOff += int64(need)
	l.unsynced++
	l.appended.With().Inc()
	l.bytes.With().Add(uint64(need))
	if l.opts.SyncEvery > 0 && l.unsynced >= l.opts.SyncEvery {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	if l.activeOff >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return idx, nil
}

// Sync makes every appended record durable — the barrier the ingester
// issues around blacklist adds, flushes and session close.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.unsynced == 0 {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.unsynced = 0
	l.fsyncs.With().Inc()
	return nil
}

// rotateLocked seals the active segment (fsync + close) and starts the
// next one. A sealed segment is never written again.
func (l *Log) rotateLocked() error {
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync before rotation: %w", err)
	}
	l.fsyncs.With().Inc()
	l.unsynced = 0
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	l.rotations.With().Inc()
	return l.startSegment(l.next)
}

// Close syncs and closes the log. Further writes fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	l.closed = true
	return l.active.Close()
}

// End returns the index the next record will receive — the total number of
// records ever appended (and, after Open, recovered).
func (l *Log) End() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Dir returns the log's root directory.
func (l *Log) Dir() string { return l.dir }

// consumerRecord is the on-disk offset file.
type consumerRecord struct {
	Consumer string `json:"consumer"`
	Offset   uint64 `json:"offset"`
}

func validConsumer(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("wal: invalid consumer name %q", name)
	}
	return nil
}

// ConsumerOffset returns name's committed offset: every record before it
// has been fully processed by that consumer. A never-committed consumer
// reads as 0.
func (l *Log) ConsumerOffset(name string) (uint64, error) {
	if err := validConsumer(name); err != nil {
		return 0, err
	}
	raw, err := os.ReadFile(filepath.Join(l.dir, offsetsDir, name))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: reading consumer %s: %w", name, err)
	}
	var rec consumerRecord
	if err := json.Unmarshal(raw, &rec); err != nil || rec.Consumer != name {
		return 0, fmt.Errorf("wal: consumer file %s corrupt", name)
	}
	return rec.Offset, nil
}

// CommitConsumer durably records that name has processed every record
// before off. Offsets may not exceed End() and may not move backwards.
func (l *Log) CommitConsumer(name string, off uint64) error {
	if err := validConsumer(name); err != nil {
		return err
	}
	if end := l.End(); off > end {
		return fmt.Errorf("wal: consumer %s offset %d past end %d", name, off, end)
	}
	prev, err := l.ConsumerOffset(name)
	if err != nil {
		return err
	}
	if off < prev {
		return fmt.Errorf("wal: consumer %s offset moving backwards (%d < %d)", name, off, prev)
	}
	data, err := json.Marshal(consumerRecord{Consumer: name, Offset: off})
	if err != nil {
		return err
	}
	if err := fsx.WriteAtomic(filepath.Join(l.dir, offsetsDir, name), append(data, '\n')); err != nil {
		return fmt.Errorf("wal: committing consumer %s: %w", name, err)
	}
	l.offsetG.With(name).Set(float64(off))
	l.lagG.With(name).Set(float64(l.End() - off))
	return nil
}

// Consumers returns every committed consumer offset.
func (l *Log) Consumers() (map[string]uint64, error) {
	entries, err := os.ReadDir(filepath.Join(l.dir, offsetsDir))
	if err != nil {
		return nil, fmt.Errorf("wal: listing consumers: %w", err)
	}
	out := make(map[string]uint64, len(entries))
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		off, err := l.ConsumerOffset(e.Name())
		if err != nil {
			return nil, err
		}
		out[e.Name()] = off
	}
	return out, nil
}

// Reader iterates records in index order, across segment boundaries. It
// holds its own file handles, so it is safe alongside the writer; on the
// newest segment an incomplete or checksum-failing tail reads as io.EOF
// (the writer may be mid-append), while the same anomaly in a sealed
// segment is ErrCorrupt.
type Reader struct {
	log  *Log
	segs []segment
	si   int      // index into segs of the open segment
	f    *os.File // open segment file
	off  int64    // byte offset into f
	next uint64   // index of the next record to return
	hdr  [headerSize]byte
	buf  []byte
}

// Reader returns an iterator positioned at record index from. Requesting
// an index past End() yields io.EOF on the first Next.
func (l *Log) Reader(from uint64) (*Reader, error) {
	segs, err := listSegments(l.dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, errors.New("wal: no segments")
	}
	// The segment containing `from` is the one with the largest base <= it.
	si := sort.Search(len(segs), func(i int) bool { return segs[i].base > from }) - 1
	if si < 0 {
		return nil, fmt.Errorf("wal: no segment covers record %d", from)
	}
	r := &Reader{log: l, segs: segs, si: si, next: segs[si].base}
	if err := r.open(); err != nil {
		return nil, err
	}
	// Skip forward to `from` inside the segment.
	for r.next < from {
		if _, _, err := r.Next(); err != nil {
			if errors.Is(err, io.EOF) {
				return r, nil // `from` is past the end; first Next reports EOF
			}
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

func (r *Reader) open() error {
	f, err := os.Open(filepath.Join(r.log.dir, r.segs[r.si].name))
	if err != nil {
		return fmt.Errorf("wal: opening segment for read: %w", err)
	}
	r.f, r.off = f, 0
	return nil
}

// Next returns the next record's payload and index. io.EOF means the end
// of the log (for now — appending more and calling Next again works). The
// returned slice is reused by the following Next call.
func (r *Reader) Next() ([]byte, uint64, error) {
	for {
		payload, err := r.readRecord()
		if err == nil {
			idx := r.next
			r.next++
			r.log.replayed.With().Inc()
			return payload, idx, nil
		}
		if !errors.Is(err, io.EOF) {
			return nil, 0, err
		}
		// End of this segment. If a later segment exists, the current one is
		// sealed and must have ended cleanly; otherwise this is the tail.
		if r.si+1 >= len(r.segs) {
			// The writer may have rotated since this Reader was created —
			// refresh the directory listing once before declaring EOF.
			segs, lerr := listSegments(r.log.dir)
			if lerr != nil {
				return nil, 0, lerr
			}
			if len(segs) > len(r.segs) {
				r.segs = segs
				continue
			}
			return nil, 0, io.EOF
		}
		if r.segs[r.si+1].base != r.next {
			return nil, 0, fmt.Errorf("%w: segment %s ends at record %d, next starts at %d",
				ErrCorrupt, r.segs[r.si].name, r.next, r.segs[r.si+1].base)
		}
		r.f.Close()
		r.si++
		if err := r.open(); err != nil {
			return nil, 0, err
		}
	}
}

// readRecord reads one frame at r.off. io.EOF means "no complete valid
// record here": a clean end-of-segment, a torn tail, or a corrupt record —
// the caller disambiguates by whether a later segment exists.
func (r *Reader) readRecord() ([]byte, error) {
	if _, err := r.f.ReadAt(r.hdr[:], r.off); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wal: reading header: %w", err)
	}
	n := binary.LittleEndian.Uint32(r.hdr[:])
	sum := binary.LittleEndian.Uint32(r.hdr[4:])
	if n == 0 || n > MaxRecordBytes {
		return nil, io.EOF
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	payload := r.buf[:n]
	if _, err := r.f.ReadAt(payload, r.off+headerSize); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wal: reading payload: %w", err)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, io.EOF
	}
	r.off += headerSize + int64(n)
	return payload, nil
}

// Index returns the index of the record the next Next call will return.
func (r *Reader) Index() uint64 { return r.next }

// Close releases the reader's file handle.
func (r *Reader) Close() error {
	if r.f != nil {
		return r.f.Close()
	}
	return nil
}
