package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func appendN(t *testing.T, l *Log, n int, tag string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("%s-%06d", tag, i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func readAll(t *testing.T, l *Log, from uint64) []string {
	t.Helper()
	r, err := l.Reader(from)
	if err != nil {
		t.Fatalf("Reader(%d): %v", from, err)
	}
	defer r.Close()
	var out []string
	for {
		p, idx, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if want := from + uint64(len(out)); idx != want {
			t.Fatalf("record index %d, want %d", idx, want)
		}
		out = append(out, string(p))
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 100, "rec")
	if got := l.End(); got != 100 {
		t.Fatalf("End = %d, want 100", got)
	}
	recs := readAll(t, l, 0)
	if len(recs) != 100 || recs[0] != "rec-000000" || recs[99] != "rec-000099" {
		t.Fatalf("read %d records, ends %q/%q", len(recs), recs[0], recs[len(recs)-1])
	}
	if got := readAll(t, l, 42); len(got) != 58 || got[0] != "rec-000042" {
		t.Fatalf("Reader(42): %d records, first %q", len(got), got[0])
	}
	if got := readAll(t, l, 100); len(got) != 0 {
		t.Fatalf("Reader(End()) returned %d records, want none", len(got))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func TestRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 200, "seg")
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want rotation to have produced >= 3", len(segs))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery must land exactly at record 200 and keep appending
	// with contiguous indices readable across the segment boundary.
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.End(); got != 200 {
		t.Fatalf("End after reopen = %d, want 200", got)
	}
	if idx, err := l2.Append([]byte("after-reopen")); err != nil || idx != 200 {
		t.Fatalf("Append after reopen: idx=%d err=%v", idx, err)
	}
	recs := readAll(t, l2, 195)
	want := []string{"seg-000195", "seg-000196", "seg-000197", "seg-000198", "seg-000199", "after-reopen"}
	if len(recs) != len(want) {
		t.Fatalf("read %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("recs[%d] = %q, want %q", i, recs[i], want[i])
		}
	}
}

func TestReaderFollowsLiveWriter(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 5, "a")
	r, err := l.Reader(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 5; i++ {
		if _, _, err := r.Next(); err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
	}
	if _, _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF at tail, got %v", err)
	}
	// More records — across at least one rotation — must become visible to
	// the same Reader without reconstructing it.
	appendN(t, l, 20, "b")
	var got int
	for {
		_, _, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got++
	}
	if got != 20 {
		t.Fatalf("reader saw %d new records, want 20", got)
	}
}

func TestConsumerOffsets(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, "c")

	if off, err := l.ConsumerOffset("retrainer"); err != nil || off != 0 {
		t.Fatalf("fresh consumer: off=%d err=%v", off, err)
	}
	if err := l.CommitConsumer("retrainer", 7); err != nil {
		t.Fatal(err)
	}
	if off, _ := l.ConsumerOffset("retrainer"); off != 7 {
		t.Fatalf("offset = %d, want 7", off)
	}
	if err := l.CommitConsumer("retrainer", 3); err == nil {
		t.Fatal("want error committing a backwards offset")
	}
	if err := l.CommitConsumer("retrainer", 11); err == nil {
		t.Fatal("want error committing past End")
	}
	if err := l.CommitConsumer("../evil", 1); err == nil {
		t.Fatal("want error for path-traversing consumer name")
	}
	if err := l.CommitConsumer("monitor", 10); err != nil {
		t.Fatal(err)
	}
	all, err := l.Consumers()
	if err != nil {
		t.Fatal(err)
	}
	if all["retrainer"] != 7 || all["monitor"] != 10 || len(all) != 2 {
		t.Fatalf("Consumers() = %v", all)
	}
	l.Close()

	// Offsets survive reopen — that is the whole point.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if off, _ := l2.ConsumerOffset("retrainer"); off != 7 {
		t.Fatalf("offset after reopen = %d, want 7", off)
	}
}

func TestAppendValidation(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(nil); err == nil {
		t.Fatal("want error for empty record")
	}
	if _, err := l.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("want error for oversized record")
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 3, "x")
	if got := readAll(t, l, 0); len(got) != 3 {
		t.Fatalf("read %d records, want 3", len(got))
	}
}

func TestCorruptSealedSegmentIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 30, "s")
	l.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	// Flip one payload byte in the middle of the FIRST (sealed) segment.
	path := filepath.Join(dir, segs[0].name)
	data, _ := os.ReadFile(path)
	data[headerSize+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	r, err := l2.Reader(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for {
		_, _, err := r.Next()
		if err == nil {
			continue
		}
		if errors.Is(err, ErrCorrupt) {
			return // sealed-segment corruption must be loud, not silent EOF
		}
		t.Fatalf("want ErrCorrupt reading a damaged sealed segment, got %v", err)
	}
}

func TestCorruptConsumerFileIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := os.WriteFile(filepath.Join(dir, offsetsDir, "monitor"), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ConsumerOffset("monitor"); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("want corrupt-consumer error, got %v", err)
	}
}
