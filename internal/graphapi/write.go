package graphapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"frappe/internal/fbplatform"
)

// This file adds the platform's write surfaces to the HTTP API:
//
//	POST /oauth/install?user=U&app=A          — the Fig. 2 install flow;
//	                                            issues an OAuth token
//	POST /me/feed?access_token=T&message=...  — post on the user's wall
//	                                            with a bearer token
//	POST /connect/prompt_feed.php?api_key=A   — the §6.2 piggybacking
//	                                            weakness: attribute a post
//	                                            to ANY app ID, no
//	                                            authentication
//
// Posts created over HTTP are delivered to the server's PostSink (wired to
// MyPageKeeper by internal/stack), mirroring how wall posts land in
// monitored feeds.
//
// Simulation-side ground truth rides in x_-prefixed parameters
// (x_malicious, x_source): the real API obviously had no such thing, but
// the synthetic world needs the labels to evaluate detectors.

// TokenResponse is the OAuth issuance document.
type TokenResponse struct {
	AccessToken string   `json:"access_token"`
	AppID       string   `json:"app_id"`
	UserID      int      `json:"user_id"`
	Scopes      []string `json:"scopes"`
	// Reissued is true when the user had already installed the app and
	// the existing token was returned.
	Reissued bool `json:"reissued,omitempty"`
}

// PostResponse echoes a created post.
type PostResponse struct {
	AppID   string `json:"app_id"`
	UserID  int    `json:"user_id"`
	Message string `json:"message"`
	Link    string `json:"link,omitempty"`
	Month   int    `json:"month"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]map[string]string{"error": {"message": msg}})
}

// serveOAuthInstall implements POST /oauth/install.
func (s *Server) serveOAuthInstall(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	q := r.URL.Query()
	user, err := strconv.Atoi(q.Get("user"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "missing or invalid user")
		return
	}
	appID := q.Get("app")
	if appID == "" {
		writeError(w, http.StatusBadRequest, "missing app")
		return
	}
	tok, ierr := s.Platform.InstallApp(user, appID)
	resp := TokenResponse{
		AccessToken: tok.Token,
		AppID:       tok.AppID,
		UserID:      tok.UserID,
		Scopes:      tok.Scopes,
	}
	switch {
	case errors.Is(ierr, fbplatform.ErrAlreadyGranted):
		resp.Reissued = true
	case errors.Is(ierr, fbplatform.ErrUnknownUser):
		writeError(w, http.StatusBadRequest, ierr.Error())
		return
	case errors.Is(ierr, fbplatform.ErrAppDeleted), errors.Is(ierr, fbplatform.ErrAppNotFound):
		writeError(w, http.StatusNotFound, ierr.Error())
		return
	case ierr != nil:
		writeError(w, http.StatusInternalServerError, ierr.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// serveMeFeed implements POST /me/feed: a token-authenticated wall post.
func (s *Server) serveMeFeed(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	q := r.URL.Query()
	token := q.Get("access_token")
	if token == "" {
		writeError(w, http.StatusUnauthorized, "missing access_token")
		return
	}
	month, _ := strconv.Atoi(q.Get("month"))
	post, err := s.Platform.PostWithToken(token,
		q.Get("message"), q.Get("link"), month, q.Get("x_malicious") == "1")
	switch {
	case errors.Is(err, fbplatform.ErrTokenNotFound):
		writeError(w, http.StatusUnauthorized, err.Error())
		return
	case errors.Is(err, fbplatform.ErrScopeDenied):
		writeError(w, http.StatusForbidden, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.deliver(post)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(PostResponse{
		AppID: post.AppID, UserID: post.UserID,
		Message: post.Message, Link: post.Link, Month: post.Month,
	})
}

// servePromptFeed implements the §6.2 weakness: anyone can attribute a
// post to any api_key. Facebook resolves the app but never authenticates
// the caller as that app — which is the whole vulnerability.
func (s *Server) servePromptFeed(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	q := r.URL.Query()
	apiKey := q.Get("api_key")
	if apiKey == "" {
		writeError(w, http.StatusBadRequest, "missing api_key")
		return
	}
	user, err := strconv.Atoi(q.Get("user"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "missing or invalid user")
		return
	}
	month, _ := strconv.Atoi(q.Get("month"))
	post, perr := s.Platform.PromptFeedPost(apiKey, q.Get("x_source"), user,
		q.Get("message"), q.Get("link"), month, q.Get("x_malicious") == "1")
	if perr != nil {
		writeError(w, http.StatusNotFound, perr.Error())
		return
	}
	s.deliver(post)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(PostResponse{
		AppID: post.AppID, UserID: post.UserID,
		Message: post.Message, Link: post.Link, Month: post.Month,
	})
}

// deliver hands a created post to the configured sink, if any.
func (s *Server) deliver(p fbplatform.Post) {
	if s.PostSink != nil {
		s.PostSink(p)
	}
}

// ---- Client side ----

// postJSON issues a POST with query parameters and decodes the response.
func (c *Client) postJSON(path string, params url.Values, out interface{}) error {
	u := strings.TrimRight(c.BaseURL, "/") + path + "?" + params.Encode()
	resp, err := c.transport().Post(context.Background(), u, "application/x-www-form-urlencoded", nil)
	if err != nil {
		return fmt.Errorf("graphapi: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var ed struct {
			Error struct {
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.Unmarshal(resp.Body, &ed) == nil && ed.Error.Message != "" {
			return fmt.Errorf("graphapi: %s: %s", resp.Status, ed.Error.Message)
		}
		return fmt.Errorf("graphapi: unexpected status %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(resp.Body, out); err != nil {
		return fmt.Errorf("graphapi: decoding response: %w", err)
	}
	return nil
}

// InstallApp performs the Fig. 2 install flow over HTTP and returns the
// issued token.
func (c *Client) InstallApp(userID int, appID string) (TokenResponse, error) {
	var resp TokenResponse
	err := c.postJSON("/oauth/install", url.Values{
		"user": {strconv.Itoa(userID)},
		"app":  {appID},
	}, &resp)
	return resp, err
}

// PostFeed posts on the token's user's wall over HTTP.
func (c *Client) PostFeed(token, message, link string, month int, malicious bool) (PostResponse, error) {
	params := url.Values{
		"access_token": {token},
		"message":      {message},
		"link":         {link},
		"month":        {strconv.Itoa(month)},
	}
	if malicious {
		params.Set("x_malicious", "1")
	}
	var resp PostResponse
	err := c.postJSON("/me/feed", params, &resp)
	return resp, err
}

// PromptFeed exploits the §6.2 weakness over HTTP: attribute a post to
// apiKey regardless of who is calling. trueSource tags simulation ground
// truth.
func (c *Client) PromptFeed(apiKey, trueSource string, userID int, message, link string, month int, malicious bool) (PostResponse, error) {
	params := url.Values{
		"api_key":  {apiKey},
		"x_source": {trueSource},
		"user":     {strconv.Itoa(userID)},
		"message":  {message},
		"link":     {link},
		"month":    {strconv.Itoa(month)},
	}
	if malicious {
		params.Set("x_malicious", "1")
	}
	var resp PostResponse
	err := c.postJSON("/connect/prompt_feed.php", params, &resp)
	return resp, err
}
