package graphapi

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"frappe/internal/fbplatform"
)

func newTestWorld(t *testing.T) (*fbplatform.Platform, *Client, func()) {
	t.Helper()
	p := fbplatform.New(1000)
	apps := []*fbplatform.App{
		{
			ID:          "235597333185870",
			Name:        "What Does Your Name Mean?",
			Permissions: []string{fbplatform.PermPublishStream},
			RedirectURI: "http://thenamemeans2.com/land",
			ClientID:    "159474410806928",
			Truth:       fbplatform.Truth{Malicious: true, HackerID: 1},
		},
		{
			ID:          "102452128776",
			Name:        "FarmVille",
			Description: "Farm with your friends",
			Company:     "Zynga",
			Category:    "Games",
			Permissions: []string{fbplatform.PermPublishStream, fbplatform.PermEmail, fbplatform.PermOfflineAccess},
			RedirectURI: "https://apps.facebook.com/onthefarm",
			MAU:         []int{26000000, 26500000},
			ProfileFeed: []fbplatform.ProfilePost{
				{Message: "New crops this week!", Month: 3},
				{Message: "Maintenance tonight", Month: 4},
			},
			Truth: fbplatform.Truth{HackerID: -1},
		},
		{
			ID:          "999",
			Name:        "Removed Scam",
			Permissions: []string{fbplatform.PermPublishStream},
			Truth:       fbplatform.Truth{Malicious: true, HackerID: 2},
		},
	}
	for _, a := range apps {
		if err := p.Register(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Delete("999"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(p))
	return p, &Client{BaseURL: srv.URL}, srv.Close
}

func TestSummary(t *testing.T) {
	_, c, done := newTestWorld(t)
	defer done()

	s, err := c.Summary(context.Background(), "102452128776")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "FarmVille" || s.Company != "Zynga" || s.Category != "Games" {
		t.Errorf("summary = %+v", s)
	}
	if s.MonthlyActiveUsers != 26500000 {
		t.Errorf("MAU = %d, want latest sample", s.MonthlyActiveUsers)
	}
	if !strings.Contains(s.Link, "102452128776") {
		t.Errorf("Link = %q", s.Link)
	}
	// Malicious app with empty summary fields.
	m, err := c.Summary(context.Background(), "235597333185870")
	if err != nil {
		t.Fatal(err)
	}
	if m.Description != "" || m.Company != "" || m.Category != "" {
		t.Errorf("malicious summary should be empty: %+v", m)
	}
}

func TestDeletedReturnsFalseBody(t *testing.T) {
	_, c, done := newTestWorld(t)
	defer done()

	// Raw HTTP: the body must be the literal `false`, like the 2012 API.
	resp, err := http.Get(c.BaseURL + "/999")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "false" {
		t.Errorf("deleted app: status=%d body=%q", resp.StatusCode, body)
	}
	// Client maps it to ErrDeleted.
	if _, err := c.Summary(context.Background(), "999"); !errors.Is(err, ErrDeleted) {
		t.Errorf("Summary(deleted) err = %v", err)
	}
	if _, err := c.Feed(context.Background(), "999"); !errors.Is(err, ErrDeleted) {
		t.Errorf("Feed(deleted) err = %v", err)
	}
	if _, err := c.Install(context.Background(), "999"); !errors.Is(err, ErrDeleted) {
		t.Errorf("Install(deleted) err = %v", err)
	}
	// Unknown apps behave like deleted ones on the public API.
	if _, err := c.Summary(context.Background(), "does-not-exist"); !errors.Is(err, ErrDeleted) {
		t.Errorf("Summary(unknown) err = %v", err)
	}
}

func TestFeed(t *testing.T) {
	_, c, done := newTestWorld(t)
	defer done()

	posts, err := c.Feed(context.Background(), "102452128776")
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 2 || posts[0].Message != "New crops this week!" {
		t.Errorf("feed = %+v", posts)
	}
	// Empty profile feed is an empty list, not an error.
	empty, err := c.Feed(context.Background(), "235597333185870")
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Errorf("expected empty feed, got %+v", empty)
	}
}

func TestInstall(t *testing.T) {
	_, c, done := newTestWorld(t)
	defer done()

	info, err := c.Install(context.Background(), "235597333185870")
	if err != nil {
		t.Fatal(err)
	}
	if info.ClientID != "159474410806928" {
		t.Errorf("client_id = %q", info.ClientID)
	}
	if info.AppID != "235597333185870" {
		t.Errorf("app_id = %q", info.AppID)
	}
	if len(info.Permissions) != 1 || info.Permissions[0] != fbplatform.PermPublishStream {
		t.Errorf("perms = %v", info.Permissions)
	}
	if info.RedirectURI != "http://thenamemeans2.com/land" {
		t.Errorf("redirect = %q", info.RedirectURI)
	}

	benign, err := c.Install(context.Background(), "102452128776")
	if err != nil {
		t.Fatal(err)
	}
	if benign.ClientID != benign.AppID {
		t.Errorf("benign client_id mismatch: %+v", benign)
	}
	if len(benign.Permissions) != 3 {
		t.Errorf("benign perms = %v", benign.Permissions)
	}
}

func TestInstallMissingID(t *testing.T) {
	_, c, done := newTestWorld(t)
	defer done()
	resp, err := http.Get(c.BaseURL + "/apps/application.php")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing id status = %d", resp.StatusCode)
	}
}

func TestUnknownPath(t *testing.T) {
	_, c, done := newTestWorld(t)
	defer done()
	resp, err := http.Get(c.BaseURL + "/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("deep path status = %d", resp.StatusCode)
	}
}
