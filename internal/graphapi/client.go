package graphapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"

	"frappe/internal/httpx"
)

// ErrDeleted is returned when the Graph API answers `false`, i.e. the app
// has been removed from the Facebook graph (or never existed publicly).
var ErrDeleted = errors.New("graphapi: app deleted from graph")

// InstallInfo is the parameter set scraped from the installation redirect.
type InstallInfo struct {
	AppID       string
	ClientID    string
	Permissions []string
	RedirectURI string
}

// Client crawls a Graph-API-compatible endpoint. It is what FRAppE Lite
// uses to gather on-demand features for an app ID.
type Client struct {
	// BaseURL is the API root, e.g. "https://graph.facebook.com" or a test
	// server URL.
	BaseURL string
	// HTTP is the resilient transport (timeouts, retries, breaker); nil
	// means the shared httpx.Default().
	HTTP *httpx.Client
}

func (c *Client) transport() *httpx.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return httpx.Default()
}

// get fetches path and returns the body, translating the Graph API's
// literal `false` into ErrDeleted. The context carries cancellation and
// the caller's trace (propagated as a traceparent header by httpx).
func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	resp, err := c.transport().Get(ctx, strings.TrimRight(c.BaseURL, "/")+path)
	if err != nil {
		return nil, fmt.Errorf("graphapi: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("graphapi: unexpected status %s", resp.Status)
	}
	if bytes.Equal(bytes.TrimSpace(resp.Body), []byte("false")) {
		return nil, ErrDeleted
	}
	return resp.Body, nil
}

// Summary fetches the app summary for id.
func (c *Client) Summary(ctx context.Context, id string) (*Summary, error) {
	body, err := c.get(ctx, "/"+url.PathEscape(id))
	if err != nil {
		return nil, err
	}
	var s Summary
	if err := json.Unmarshal(body, &s); err != nil {
		return nil, fmt.Errorf("graphapi: decoding summary: %w", err)
	}
	return &s, nil
}

// Feed fetches the posts on the app's profile page.
func (c *Client) Feed(ctx context.Context, id string) ([]FeedPost, error) {
	body, err := c.get(ctx, "/"+url.PathEscape(id)+"/feed")
	if err != nil {
		return nil, err
	}
	var doc feedDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, fmt.Errorf("graphapi: decoding feed: %w", err)
	}
	return doc.Data, nil
}

// Install follows the app installation URL and scrapes the client_id,
// permission set, and redirect URI from the landing page, the §4.1.2/§4.1.4
// crawl. Deleted apps yield ErrDeleted.
func (c *Client) Install(ctx context.Context, id string) (InstallInfo, error) {
	u := strings.TrimRight(c.BaseURL, "/") + "/apps/application.php?id=" + url.QueryEscape(id)
	resp, err := c.transport().Get(ctx, u)
	if err != nil {
		return InstallInfo{}, fmt.Errorf("graphapi: %w", err)
	}
	if resp.StatusCode == http.StatusNotFound {
		return InstallInfo{}, ErrDeleted
	}
	if resp.StatusCode != http.StatusOK {
		return InstallInfo{}, fmt.Errorf("graphapi: unexpected status %s", resp.Status)
	}
	var doc struct {
		AppID       string `json:"app_id"`
		ClientID    string `json:"client_id"`
		Perms       string `json:"perms"`
		RedirectURI string `json:"redirect_uri"`
	}
	if err := json.Unmarshal(resp.Body, &doc); err != nil {
		return InstallInfo{}, fmt.Errorf("graphapi: decoding install landing: %w", err)
	}
	info := InstallInfo{
		AppID:       doc.AppID,
		ClientID:    doc.ClientID,
		RedirectURI: doc.RedirectURI,
	}
	if doc.Perms != "" {
		info.Permissions = strings.Split(doc.Perms, ",")
	}
	return info, nil
}
