// Package graphapi exposes a simulated Facebook platform over HTTP with the
// three surfaces the paper's crawlers hit (§2.3, Table 4):
//
//	GET /{appID}                       — app summary (Open Graph API)
//	GET /{appID}/feed                  — posts on the app's profile page
//	GET /apps/application.php?id=A     — installation URL; redirects to a
//	                                     URL whose query carries client_id,
//	                                     the permission set, and the
//	                                     redirect URI
//
// Faithful quirk: like the 2012 Graph API, summary and feed lookups for
// apps that have been removed from the Facebook graph return HTTP 200 with
// the literal JSON body `false` — this is the "deleted from Facebook
// graph" signal that validates 81% of FRAppE's detections in §5.3.
package graphapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/url"
	"strings"

	"frappe/internal/fbplatform"
)

// Summary is the JSON document served for an app, mirroring the fields the
// paper extracts: name, description, company, category, monthly active
// users, and the profile link.
type Summary struct {
	ID                 string `json:"id"`
	Name               string `json:"name"`
	Description        string `json:"description,omitempty"`
	Company            string `json:"company,omitempty"`
	Category           string `json:"category,omitempty"`
	Link               string `json:"link"`
	MonthlyActiveUsers int    `json:"monthly_active_users"`
}

// FeedPost is one post on an app's profile page.
type FeedPost struct {
	Message     string `json:"message"`
	Link        string `json:"link,omitempty"`
	CreatedTime int    `json:"created_time"` // month index in the observation window
}

type feedDoc struct {
	Data []FeedPost `json:"data"`
}

// Server serves the Graph API for one Platform.
type Server struct {
	Platform *fbplatform.Platform
	// PostSink receives every post created through the write endpoints
	// (/me/feed and /connect/prompt_feed.php); internal/stack wires it to
	// MyPageKeeper's Observe, putting HTTP-created posts on monitored
	// walls. It must be safe for concurrent use. Nil drops the posts.
	PostSink func(fbplatform.Post)
}

// NewServer returns a Server backed by p.
func NewServer(p *fbplatform.Platform) *Server {
	return &Server{Platform: p}
}

// ServeHTTP routes the three endpoint families.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.Trim(r.URL.Path, "/")
	switch {
	case path == "apps/application.php":
		s.serveInstall(w, r)
	case path == "install":
		s.serveInstallLanding(w, r)
	case path == "oauth/install":
		s.serveOAuthInstall(w, r)
	case path == "me/feed":
		s.serveMeFeed(w, r)
	case path == "connect/prompt_feed.php":
		s.servePromptFeed(w, r)
	case strings.HasSuffix(path, "/feed"):
		s.serveFeed(w, r, strings.TrimSuffix(path, "/feed"))
	case path != "" && !strings.Contains(path, "/"):
		s.serveSummary(w, r, path)
	default:
		http.NotFound(w, r)
	}
}

// writeFalse emits the Graph API's `false` body for missing nodes.
func writeFalse(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("false"))
}

func (s *Server) serveSummary(w http.ResponseWriter, _ *http.Request, id string) {
	app, err := s.Platform.Lookup(id)
	if err != nil {
		writeFalse(w)
		return
	}
	mau := 0
	if len(app.MAU) > 0 {
		mau = app.MAU[len(app.MAU)-1]
	}
	doc := Summary{
		ID:                 app.ID,
		Name:               app.Name,
		Description:        app.Description,
		Company:            app.Company,
		Category:           app.Category,
		Link:               "https://www.facebook.com/apps/application.php?id=" + app.ID,
		MonthlyActiveUsers: mau,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

func (s *Server) serveFeed(w http.ResponseWriter, _ *http.Request, id string) {
	app, err := s.Platform.Lookup(id)
	if err != nil {
		writeFalse(w)
		return
	}
	doc := feedDoc{Data: []FeedPost{}}
	for _, p := range app.ProfileFeed {
		doc.Data = append(doc.Data, FeedPost{Message: p.Message, Link: p.Link, CreatedTime: p.Month})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

// serveInstall models visiting the installation URL: Facebook consults the
// app server and redirects the browser to a URL encoding the permission
// set, redirect URI, and client_id (§4.1.4). Different real apps had
// different human-oriented redirect chains, which is why the paper could
// only crawl permissions for a subset of apps; the simulator keeps one
// canonical chain and lets the crawler model per-app failures.
func (s *Server) serveInstall(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	info, err := s.Platform.InstallInfo(id)
	if err != nil {
		if errors.Is(err, fbplatform.ErrAppDeleted) || errors.Is(err, fbplatform.ErrAppNotFound) {
			http.NotFound(w, r)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	q := url.Values{}
	q.Set("app_id", info.AppID)
	q.Set("client_id", info.ClientID)
	q.Set("perms", strings.Join(info.Permissions, ","))
	q.Set("redirect_uri", info.RedirectURI)
	http.Redirect(w, r, "/install?"+q.Encode(), http.StatusFound)
}

// serveInstallLanding is the page the install redirect lands on; it echoes
// the negotiated parameters so an instrumented crawler can scrape them.
func (s *Server) serveInstallLanding(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	doc := map[string]interface{}{
		"app_id":       q.Get("app_id"),
		"client_id":    q.Get("client_id"),
		"perms":        q.Get("perms"),
		"redirect_uri": q.Get("redirect_uri"),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}
