package graphapi

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"frappe/internal/fbplatform"
)

func writeWorld(t *testing.T) (*fbplatform.Platform, *Client, *[]fbplatform.Post, func()) {
	t.Helper()
	p := fbplatform.New(500)
	apps := []*fbplatform.App{
		{
			ID: "farm", Name: "FarmVille",
			Permissions: []string{fbplatform.PermPublishStream, fbplatform.PermEmail},
			Truth:       fbplatform.Truth{HackerID: -1},
		},
		{
			ID: "scam", Name: "Free iPads",
			Permissions: []string{fbplatform.PermPublishStream},
			Truth:       fbplatform.Truth{Malicious: true},
		},
		{
			ID: "quiet", Name: "Quiet",
			Permissions: []string{fbplatform.PermEmail},
			Truth:       fbplatform.Truth{HackerID: -1},
		},
	}
	for _, a := range apps {
		if err := p.Register(a); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(p)
	var mu sync.Mutex
	var delivered []fbplatform.Post
	srv.PostSink = func(post fbplatform.Post) {
		mu.Lock()
		defer mu.Unlock()
		delivered = append(delivered, post)
	}
	ts := httptest.NewServer(srv)
	return p, &Client{BaseURL: ts.URL}, &delivered, ts.Close
}

func TestOAuthInstallOverHTTP(t *testing.T) {
	p, c, _, done := writeWorld(t)
	defer done()

	tok, err := c.InstallApp(7, "farm")
	if err != nil {
		t.Fatal(err)
	}
	if tok.AccessToken == "" || tok.AppID != "farm" || tok.UserID != 7 {
		t.Errorf("token = %+v", tok)
	}
	if len(tok.Scopes) != 2 {
		t.Errorf("scopes = %v", tok.Scopes)
	}
	if tok.Reissued {
		t.Error("first install marked reissued")
	}
	// Reinstall: same token, flagged as reissued.
	again, err := c.InstallApp(7, "farm")
	if err != nil {
		t.Fatal(err)
	}
	if !again.Reissued || again.AccessToken != tok.AccessToken {
		t.Errorf("reissue = %+v", again)
	}
	if p.Installs("farm") != 1 {
		t.Errorf("Installs = %d", p.Installs("farm"))
	}
	// Bad requests.
	if _, err := c.InstallApp(-3, "farm"); err == nil {
		t.Error("bad user: want error")
	}
	if _, err := c.InstallApp(1, "missing"); err == nil {
		t.Error("missing app: want error")
	}
}

func TestMeFeedOverHTTP(t *testing.T) {
	_, c, delivered, done := writeWorld(t)
	defer done()

	tok, err := c.InstallApp(9, "scam")
	if err != nil {
		t.Fatal(err)
	}
	post, err := c.PostFeed(tok.AccessToken, "FREE iPads here", "http://scam.example/ipad", 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if post.AppID != "scam" || post.UserID != 9 || post.Month != 4 {
		t.Errorf("post = %+v", post)
	}
	if len(*delivered) != 1 {
		t.Fatalf("delivered = %d", len(*delivered))
	}
	d := (*delivered)[0]
	if !d.MaliciousLink || d.AppID != "scam" {
		t.Errorf("delivered post = %+v", d)
	}

	// Token without publish_stream is rejected with 403.
	tok2, err := c.InstallApp(9, "quiet")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PostFeed(tok2.AccessToken, "hi", "", 0, false); err == nil ||
		!strings.Contains(err.Error(), "403") {
		t.Errorf("scope-denied err = %v", err)
	}
	// Bogus token -> 401.
	if _, err := c.PostFeed("EAABnope", "hi", "", 0, false); err == nil ||
		!strings.Contains(err.Error(), "401") {
		t.Errorf("bad token err = %v", err)
	}
}

func TestPromptFeedOverHTTP(t *testing.T) {
	_, c, delivered, done := writeWorld(t)
	defer done()

	// The §6.2 exploit: no credential of any kind, yet the post lands
	// attributed to FarmVille.
	post, err := c.PromptFeed("farm", "scam", 33,
		"WOW I just got 5000 Facebook Credits for Free",
		"http://offers.example/credits", 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if post.AppID != "farm" {
		t.Errorf("attributed app = %q", post.AppID)
	}
	if len(*delivered) != 1 {
		t.Fatalf("delivered = %d", len(*delivered))
	}
	d := (*delivered)[0]
	if d.AppID != "farm" || d.SourceAppID != "scam" || !d.MaliciousLink {
		t.Errorf("delivered = %+v", d)
	}
	// Unknown api_key fails (Facebook resolves the app).
	if _, err := c.PromptFeed("ghost", "scam", 1, "m", "", 0, false); err == nil {
		t.Error("unknown api_key: want error")
	}
}

func TestWriteEndpointsRequirePOST(t *testing.T) {
	_, c, _, done := writeWorld(t)
	defer done()
	for _, path := range []string{
		"/oauth/install?user=1&app=farm",
		"/me/feed?access_token=x",
		"/connect/prompt_feed.php?api_key=farm&user=1",
	} {
		resp, err := http.Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s status = %d, want 405", path, resp.StatusCode)
		}
	}
}

func TestNilPostSinkDoesNotPanic(t *testing.T) {
	p := fbplatform.New(10)
	if err := p.Register(&fbplatform.App{
		ID: "a", Name: "A",
		Permissions: []string{fbplatform.PermPublishStream},
		Truth:       fbplatform.Truth{HackerID: -1},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(p)) // no sink
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	tok, err := c.InstallApp(1, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PostFeed(tok.AccessToken, "hello", "", 0, false); err != nil {
		t.Fatalf("post without sink: %v", err)
	}
}
