// Package wot simulates the Web of Trust (WOT) domain-reputation service
// queried in §4.1.3 of the paper: every redirect-URI domain gets a trust
// score in [0, 100], and domains WOT has never seen return no score at all
// (the paper maps those to −1). FRAppE Lite's seventh feature is this
// score.
package wot

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"frappe/internal/httpx"
)

// UnknownScore is the sentinel the paper assigns to domains without a WOT
// reputation ("we assign a score of −1 to the domains for which the WOT
// score is not available").
const UnknownScore = -1

// ErrUnknownDomain is returned when WOT has no reputation for a domain.
var ErrUnknownDomain = errors.New("wot: unknown domain")

// Service is an in-memory reputation database, safe for concurrent use.
type Service struct {
	mu     sync.RWMutex
	scores map[string]int
}

// NewService returns an empty reputation database.
func NewService() *Service {
	return &Service{scores: make(map[string]int)}
}

// SetScore records the trust score (0–100) for a domain.
func (s *Service) SetScore(domain string, score int) error {
	if score < 0 || score > 100 {
		return fmt.Errorf("wot: score %d out of range [0,100]", score)
	}
	d := canonical(domain)
	if d == "" {
		return errors.New("wot: empty domain")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scores[d] = score
	return nil
}

// Score returns the trust score for a domain, or ErrUnknownDomain.
func (s *Service) Score(domain string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	score, ok := s.scores[canonical(domain)]
	if !ok {
		return 0, ErrUnknownDomain
	}
	return score, nil
}

// NumDomains reports how many domains have a recorded score.
func (s *Service) NumDomains() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.scores)
}

// canonical lowercases and strips a leading "www.".
func canonical(domain string) string {
	d := strings.ToLower(strings.TrimSpace(domain))
	d = strings.TrimPrefix(d, "www.")
	return d
}

// DomainOf extracts the canonical registrable host from a raw URL. Bare
// hosts (no scheme) are accepted. Returns "" if nothing parseable remains.
func DomainOf(raw string) string {
	if raw == "" {
		return ""
	}
	u, err := url.Parse(raw)
	if err != nil || u.Host == "" {
		// Perhaps a bare host like "example.com/path".
		if i := strings.IndexAny(raw, "/?#"); i >= 0 {
			raw = raw[:i]
		}
		return canonical(raw)
	}
	return canonical(u.Hostname())
}

// ServeHTTP implements the lookup API:
//
//	GET /lookup?domain=D -> {"domain": D, "score": N}   (200)
//	                     -> {"error": "unknown domain"} (404)
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/lookup" {
		http.NotFound(w, r)
		return
	}
	domain := r.URL.Query().Get("domain")
	if domain == "" {
		http.Error(w, `{"error":"missing domain"}`, http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	score, err := s.Score(domain)
	if err != nil {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "unknown domain"})
		return
	}
	json.NewEncoder(w).Encode(map[string]interface{}{"domain": canonical(domain), "score": score})
}

// Client queries a WOT-compatible reputation API.
type Client struct {
	BaseURL string
	// HTTP is the resilient transport (timeouts, retries, breaker); nil
	// means the shared httpx.Default().
	HTTP *httpx.Client
}

func (c *Client) transport() *httpx.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return httpx.Default()
}

// Score returns the trust score for domain, or ErrUnknownDomain when WOT
// has no data. The context carries cancellation and the caller's trace.
func (c *Client) Score(ctx context.Context, domain string) (int, error) {
	u := strings.TrimRight(c.BaseURL, "/") + "/lookup?" + url.Values{"domain": {domain}}.Encode()
	resp, err := c.transport().Get(ctx, u)
	if err != nil {
		return 0, fmt.Errorf("wot: %w", err)
	}
	if resp.StatusCode == http.StatusNotFound {
		return 0, ErrUnknownDomain
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("wot: unexpected status %s", resp.Status)
	}
	var body struct {
		Score int `json:"score"`
	}
	if err := json.Unmarshal(resp.Body, &body); err != nil {
		return 0, fmt.Errorf("wot: decoding response: %w", err)
	}
	return body.Score, nil
}

// ScoreOrUnknown returns the score for the domain of rawURL, mapping
// unknown domains (and unparseable URLs) to UnknownScore, exactly as the
// paper's feature extraction does.
func (c *Client) ScoreOrUnknown(ctx context.Context, rawURL string) int {
	d := DomainOf(rawURL)
	if d == "" {
		return UnknownScore
	}
	score, err := c.Score(ctx, d)
	if err != nil {
		return UnknownScore
	}
	return score
}
