package wot

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestSetAndScore(t *testing.T) {
	s := NewService()
	if err := s.SetScore("facebook.com", 94); err != nil {
		t.Fatal(err)
	}
	got, err := s.Score("facebook.com")
	if err != nil || got != 94 {
		t.Errorf("Score = %d, %v", got, err)
	}
	// Canonicalisation: www + case.
	if got, err := s.Score("WWW.Facebook.COM"); err != nil || got != 94 {
		t.Errorf("canonical Score = %d, %v", got, err)
	}
	if _, err := s.Score("unknown.example"); !errors.Is(err, ErrUnknownDomain) {
		t.Errorf("unknown err = %v", err)
	}
	if s.NumDomains() != 1 {
		t.Errorf("NumDomains = %d", s.NumDomains())
	}
}

func TestSetScoreValidation(t *testing.T) {
	s := NewService()
	if err := s.SetScore("x.com", -1); err == nil {
		t.Error("score -1: want error")
	}
	if err := s.SetScore("x.com", 101); err == nil {
		t.Error("score 101: want error")
	}
	if err := s.SetScore("", 50); err == nil {
		t.Error("empty domain: want error")
	}
	if err := s.SetScore("x.com", 0); err != nil {
		t.Errorf("score 0 should be valid: %v", err)
	}
	if err := s.SetScore("x.com", 100); err != nil {
		t.Errorf("score 100 should be valid: %v", err)
	}
}

func TestDomainOf(t *testing.T) {
	cases := []struct{ in, want string }{
		{"http://www.Example.com/path?q=1", "example.com"},
		{"https://apps.facebook.com/app", "apps.facebook.com"},
		{"thenamemeans2.com/land", "thenamemeans2.com"},
		{"", ""},
		{"http://host:8080/x", "host"},
	}
	for _, c := range cases {
		if got := DomainOf(c.in); got != c.want {
			t.Errorf("DomainOf(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHTTPLookup(t *testing.T) {
	svc := NewService()
	if err := svc.SetScore("apps.facebook.com", 92); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	score, err := c.Score(context.Background(), "apps.facebook.com")
	if err != nil || score != 92 {
		t.Errorf("Score = %d, %v", score, err)
	}
	if _, err := c.Score(context.Background(), "fastfreeupdates.com"); !errors.Is(err, ErrUnknownDomain) {
		t.Errorf("unknown domain err = %v", err)
	}

	// Missing domain -> 400.
	resp, err := http.Get(srv.URL + "/lookup")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing domain status = %d", resp.StatusCode)
	}
	// Unknown path -> 404.
	resp, err = http.Get(srv.URL + "/other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
}

func TestScoreOrUnknown(t *testing.T) {
	svc := NewService()
	if err := svc.SetScore("good.example", 80); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc)
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}

	if got := c.ScoreOrUnknown(context.Background(), "http://good.example/install"); got != 80 {
		t.Errorf("known = %d, want 80", got)
	}
	if got := c.ScoreOrUnknown(context.Background(), "http://evil.example/x"); got != UnknownScore {
		t.Errorf("unknown = %d, want %d", got, UnknownScore)
	}
	if got := c.ScoreOrUnknown(context.Background(), ""); got != UnknownScore {
		t.Errorf("empty URL = %d, want %d", got, UnknownScore)
	}
}
