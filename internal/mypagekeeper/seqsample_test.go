package mypagekeeper

import (
	"fmt"
	"sort"
	"testing"
)

// Property test for seqSample: no matter what order add is called in, the
// sample must end up holding exactly the `limit` entries with the smallest
// seqs, returned by values() in increasing seq order. That commutativity
// is the load-bearing invariant behind the sharded monitor's byte-identical
// snapshots, so it gets checked directly against a sort-based oracle here,
// not just indirectly through whole-monitor equivalence.

// sampleOracle returns the expected values() result: the vals of the
// `limit` smallest seqs, in seq order.
func sampleOracle(seqs []uint64, limit int) []string {
	if limit <= 0 || len(seqs) == 0 {
		return nil
	}
	sorted := append([]uint64(nil), seqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if limit > len(sorted) {
		limit = len(sorted)
	}
	out := make([]string, limit)
	for i, seq := range sorted[:limit] {
		out[i] = valFor(seq)
	}
	return out
}

// valFor derives a payload from a seq so mismatches identify the entry.
func valFor(seq uint64) string { return fmt.Sprintf("v%d", seq) }

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSeqSampleMatchesOracleUnderPermutation(t *testing.T) {
	rng := &testLCG{s: 20121210}
	limits := []int{0, 1, 2, 7, 50, 200}
	sizes := []int{0, 1, 2, 3, 10, 49, 50, 51, 199, 500}
	for _, limit := range limits {
		for _, n := range sizes {
			// Distinct seqs, deliberately sparse so adjacent values differ.
			seqs := make([]uint64, n)
			for i := range seqs {
				seqs[i] = uint64(i)*3 + 1
			}
			want := sampleOracle(seqs, limit)
			for trial := 0; trial < 20; trial++ {
				perm := append([]uint64(nil), seqs...)
				for i := len(perm) - 1; i > 0; i-- {
					j := rng.intn(i + 1)
					perm[i], perm[j] = perm[j], perm[i]
				}
				s := newSeqSample(limit)
				for _, seq := range perm {
					s.add(seq, valFor(seq))
				}
				got := s.values()
				if !equalStrings(got, want) {
					t.Fatalf("limit=%d n=%d trial=%d: values()=%v, want %v (order %v)",
						limit, n, trial, got, want, perm)
				}
				wantLen := limit
				if n < limit {
					wantLen = n
				}
				if s.len() != wantLen {
					t.Fatalf("limit=%d n=%d trial=%d: len()=%d, want %d",
						limit, n, trial, s.len(), wantLen)
				}
			}
		}
	}
}

// TestSeqSampleSerialFastPath: in-order adds must produce the identical
// result without ever leaving the monotone fast path (no sort on values).
func TestSeqSampleSerialFastPath(t *testing.T) {
	const limit, n = 25, 100
	s := newSeqSample(limit)
	seqs := make([]uint64, n)
	for i := range seqs {
		seqs[i] = uint64(i + 1)
		s.add(seqs[i], valFor(seqs[i]))
	}
	if !s.monotone {
		t.Error("in-order adds left the monotone fast path")
	}
	if got, want := s.values(), sampleOracle(seqs, limit); !equalStrings(got, want) {
		t.Fatalf("serial values() = %v, want %v", got, want)
	}
}

// TestSeqSampleEqualSeqBoundary pins the tie-break at the eviction
// boundary: once the sample is full, an entry whose seq EQUALS the current
// maximum is rejected — first writer wins, so replays of the same stream
// cannot flap between payloads.
func TestSeqSampleEqualSeqBoundary(t *testing.T) {
	s := newSeqSample(2)
	s.add(1, "a")
	s.add(5, "first-at-5")
	s.add(5, "second-at-5") // equal to max while full: rejected
	if got, want := s.values(), []string{"a", "first-at-5"}; !equalStrings(got, want) {
		t.Fatalf("values() = %v, want %v", got, want)
	}
	// A strictly smaller seq still evicts the max.
	s.add(3, "b")
	if got, want := s.values(), []string{"a", "b"}; !equalStrings(got, want) {
		t.Fatalf("after eviction values() = %v, want %v", got, want)
	}
}

func TestSeqSampleZeroAndNegativeLimit(t *testing.T) {
	for _, limit := range []int{0, -3} {
		s := newSeqSample(limit)
		s.add(1, "a")
		s.add(2, "b")
		if s.len() != 0 || s.values() != nil {
			t.Fatalf("limit=%d: len=%d values=%v, want empty/nil", limit, s.len(), s.values())
		}
	}
}
