package mypagekeeper

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"frappe/internal/fbplatform"
	"frappe/internal/wal"
)

func TestEventCodecRoundTrip(t *testing.T) {
	events := []WALEvent{
		{Kind: KindPost, Post: fbplatform.Post{
			AppID: "app01", SourceAppID: "app02", UserID: 42,
			Message: "FREE ipad, hurry!", Link: "http://scam0.example/lure",
			Month: 7, Likes: 3, MaliciousLink: true,
		}},
		{Kind: KindPost, Post: fbplatform.Post{}}, // all zero values
		{Kind: KindBlacklistURL, Value: "http://scam1.example/lure"},
		{Kind: KindBlacklistDomain, Value: "evil0.example"},
		{Kind: KindBlacklistURL, Value: ""}, // degenerate but encodable
		{Kind: KindInstall, AppID: "app03", UserID: 9},
		{Kind: KindRemoval, AppID: "app03", UserID: 9},
	}
	for i, ev := range events {
		buf, err := AppendEvent(nil, ev)
		if err != nil {
			t.Fatalf("event %d: AppendEvent: %v", i, err)
		}
		got, err := DecodeEvent(buf)
		if err != nil {
			t.Fatalf("event %d: DecodeEvent: %v", i, err)
		}
		if !reflect.DeepEqual(ev, got) {
			t.Fatalf("event %d: round trip = %+v, want %+v", i, got, ev)
		}
		// Every strict prefix must fail to decode: truncation is detected,
		// never silently filled with zero values.
		for cut := 0; cut < len(buf); cut++ {
			if _, err := DecodeEvent(buf[:cut]); err == nil {
				t.Fatalf("event %d: DecodeEvent accepted a %d/%d-byte prefix", i, cut, len(buf))
			}
		}
		// So must trailing garbage: one record is exactly one event.
		if _, err := DecodeEvent(append(append([]byte{}, buf...), 0)); err == nil {
			t.Fatalf("event %d: DecodeEvent accepted trailing bytes", i)
		}
	}
}

func TestEventCodecRejectsInvalid(t *testing.T) {
	if _, err := AppendEvent(nil, WALEvent{Kind: EventKind(99)}); err == nil {
		t.Fatal("want error encoding unknown kind")
	}
	if _, err := AppendEvent(nil, WALEvent{Kind: KindPost, Post: fbplatform.Post{UserID: -1}}); err == nil {
		t.Fatal("want error encoding negative user ID")
	}
	if _, err := AppendEvent(nil, WALEvent{Kind: KindInstall, UserID: -1}); err == nil {
		t.Fatal("want error encoding negative install user ID")
	}
	if _, err := DecodeEvent([]byte{99}); !errors.Is(err, ErrBadEvent) {
		t.Fatalf("decoding unknown kind: %v, want ErrBadEvent", err)
	}
	if _, err := DecodeEvent(nil); !errors.Is(err, ErrBadEvent) {
		t.Fatalf("decoding empty record: %v, want ErrBadEvent", err)
	}
}

// feedIngester pushes the oracle workload through an Ingester — the same
// call mapping applySerial uses against the bare monitor.
func feedIngester(ing *Ingester, events []streamEvent) {
	for _, e := range events {
		switch {
		case e.blackURL != "":
			ing.AddBlacklistedURL(e.blackURL)
		case e.hasDomain:
			ing.AddBlacklistedDomain(e.blackDom)
		default:
			ing.Observe(e.post)
		}
	}
}

// applySerialPrefix applies the first n events serially — the oracle for
// "the WAL holds exactly the logged call prefix".
func applySerialPrefix(m *Monitor, events []streamEvent, n int) {
	applySerial(m, events[:n])
}

// TestWALReplayEquivalence is the durability half of the determinism
// claim: a monitor rebuilt by replaying the WAL is byte-identical (same
// Apps/Stats/flag views) to both the live ingested monitor and the serial
// oracle, for every worker count.
func TestWALReplayEquivalence(t *testing.T) {
	events := genStream(3000)
	serial := New(DefaultClassifierConfig())
	applySerial(serial, events)
	want := viewOf(serial)

	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		l, err := wal.Open(dir, wal.Options{SegmentBytes: 64 << 10})
		if err != nil {
			t.Fatal(err)
		}
		live := New(DefaultClassifierConfig())
		ing := live.StartIngestWith(IngestConfig{Workers: workers, WAL: l})
		feedIngester(ing, events)
		if err := ing.Close(); err != nil {
			t.Fatalf("workers=%d: Close: %v", workers, err)
		}
		requireEqualViews(t, want, viewOf(live), "live ingested monitor")
		if got := l.End(); got != uint64(len(events)) {
			t.Fatalf("workers=%d: WAL holds %d records, want %d (one per call)", workers, got, len(events))
		}

		replayed := New(DefaultClassifierConfig())
		stats, err := Replay(replayed, l, 0, nil)
		if err != nil {
			t.Fatalf("workers=%d: Replay: %v", workers, err)
		}
		if stats.Records != uint64(len(events)) || stats.Next != uint64(len(events)) {
			t.Fatalf("workers=%d: ReplayStats = %+v, want %d records", workers, stats, len(events))
		}
		requireEqualViews(t, want, viewOf(replayed), "WAL-replayed monitor")
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALResumeSkipEvents is the crash-recovery resume contract: replay
// the log into a fresh monitor, then re-run the deterministic producer
// with SkipEvents set to the replayed record count. Already-replayed calls
// are dropped 1:1, nothing is double-applied or double-logged, and the end
// state matches the uninterrupted serial run.
func TestWALResumeSkipEvents(t *testing.T) {
	events := genStream(2500)
	serial := New(DefaultClassifierConfig())
	applySerial(serial, events)
	want := viewOf(serial)

	for _, cut := range []int{0, 1, 1234, len(events) - 1, len(events)} {
		dir := t.TempDir()
		l, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		first := New(DefaultClassifierConfig())
		ing := first.StartIngestWith(IngestConfig{Workers: 4, WAL: l})
		feedIngester(ing, events[:cut])
		if err := ing.Close(); err != nil {
			t.Fatalf("cut=%d: first session Close: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// "Restart": reopen the log, rebuild state by replay, resume the
		// regenerated stream past the replayed prefix.
		l2, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		resumed := New(DefaultClassifierConfig())
		stats, err := Replay(resumed, l2, 0, nil)
		if err != nil {
			t.Fatalf("cut=%d: Replay: %v", cut, err)
		}
		if stats.Records != uint64(cut) {
			t.Fatalf("cut=%d: replayed %d records", cut, stats.Records)
		}
		ing2 := resumed.StartIngestWith(IngestConfig{Workers: 2, WAL: l2, SkipEvents: stats.Records})
		feedIngester(ing2, events)
		if err := ing2.Close(); err != nil {
			t.Fatalf("cut=%d: resumed session Close: %v", cut, err)
		}
		requireEqualViews(t, want, viewOf(resumed), "resumed monitor")
		if got := l2.End(); got != uint64(len(events)) {
			t.Fatalf("cut=%d: WAL holds %d records after resume, want %d", cut, got, len(events))
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALResumeSkipLogOnly is the other resume mode (what the synth world
// uses): no up-front replay — the regenerated stream is applied in full,
// and only the WAL appends for the already-logged prefix are suppressed.
// The final log must be the exact uninterrupted call stream, with no
// duplicated records, and the monitor must match the serial oracle.
func TestWALResumeSkipLogOnly(t *testing.T) {
	events := genStream(2000)
	serial := New(DefaultClassifierConfig())
	applySerial(serial, events)
	want := viewOf(serial)

	for _, cut := range []int{0, 777, len(events)} {
		dir := t.TempDir()
		l, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		first := New(DefaultClassifierConfig())
		ing := first.StartIngestWith(IngestConfig{Workers: 3, WAL: l})
		feedIngester(ing, events[:cut])
		if err := ing.Close(); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		l2, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		resumed := New(DefaultClassifierConfig())
		ing2 := resumed.StartIngestWith(IngestConfig{
			Workers: 4, WAL: l2, SkipEvents: l2.End(), SkipLogOnly: true,
		})
		feedIngester(ing2, events)
		if err := ing2.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
		requireEqualViews(t, want, viewOf(resumed), "skip-log-only resumed monitor")
		if got := l2.End(); got != uint64(len(events)) {
			t.Fatalf("cut=%d: WAL holds %d records, want %d", cut, got, len(events))
		}
		// And the completed log still replays to the same state.
		replayed := New(DefaultClassifierConfig())
		if _, err := Replay(replayed, l2, 0, nil); err != nil {
			t.Fatal(err)
		}
		requireEqualViews(t, want, viewOf(replayed), "replay of completed log")
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResumeStreamTooShort: a resumed producer that fails to regenerate the
// full replayed prefix is a broken contract, and Close must say so.
func TestResumeStreamTooShort(t *testing.T) {
	m := New(DefaultClassifierConfig())
	ing := m.StartIngestWith(IngestConfig{Workers: 1, SkipEvents: 10})
	ing.Observe(fbplatform.Post{AppID: "app01"})
	err := ing.Close()
	if err == nil || !strings.Contains(err.Error(), "unseen") {
		t.Fatalf("Close after short resume stream: %v, want unseen-events error", err)
	}
}

// TestIngesterUseAfterClose is the regression test for the shipped bug:
// Observe after Close used to die with a bare send-on-closed-channel
// panic deep in the queue machinery (or, on the single-worker path,
// silently mutate a sealed session). It must fail loudly and point at the
// misuse.
func TestIngesterUseAfterClose(t *testing.T) {
	for _, workers := range []int{1, 4} {
		m := New(DefaultClassifierConfig())
		ing := m.StartIngest(workers)
		ing.Observe(fbplatform.Post{AppID: "app01", Link: "http://a.example/x"})
		if err := ing.Close(); err != nil {
			t.Fatal(err)
		}
		if err := ing.Close(); err != nil { // Close is idempotent
			t.Fatalf("second Close: %v", err)
		}
		calls := map[string]func(){
			"Observe":              func() { ing.Observe(fbplatform.Post{}) },
			"Flush":                func() { ing.Flush() },
			"AddBlacklistedURL":    func() { ing.AddBlacklistedURL("http://b.example/y") },
			"AddBlacklistedDomain": func() { ing.AddBlacklistedDomain("b.example") },
			"ObserveInstall":       func() { ing.ObserveInstall("app01", 1) },
			"ObserveRemoval":       func() { ing.ObserveRemoval("app01", 1) },
		}
		for name, call := range calls {
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("workers=%d: %s after Close did not panic", workers, name)
					}
					msg, ok := r.(string)
					if !ok || !strings.Contains(msg, name) || !strings.Contains(msg, "after Close") {
						t.Fatalf("workers=%d: %s panic = %v, want descriptive message", workers, name, r)
					}
				}()
				call()
			}()
		}
	}
}

// TestInstallEventsRoundTripThroughWAL: the monitor keeps no install
// state, but the WAL must carry install/removal churn to consumers.
func TestInstallEventsRoundTripThroughWAL(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	m := New(DefaultClassifierConfig())
	ing := m.StartIngestWith(IngestConfig{Workers: 2, WAL: l})
	ing.ObserveInstall("app01", 7)
	ing.Observe(fbplatform.Post{AppID: "app01", Link: "http://a.example/x"})
	ing.ObserveRemoval("app01", 7)
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	type churn struct {
		app     string
		user    int
		removed bool
	}
	var got []churn
	stats, err := Replay(New(DefaultClassifierConfig()), l, 0, func(appID string, userID int, removed bool) {
		got = append(got, churn{appID, userID, removed})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []churn{{"app01", 7, false}, {"app01", 7, true}}
	if stats.Installs != 2 || stats.Posts != 1 || !reflect.DeepEqual(got, want) {
		t.Fatalf("stats=%+v churn=%v", stats, got)
	}
}

const crashHelperEnv = "FRAPPE_CRASH_WAL_DIR"

// crashStreamSize is shared by the helper and the parent: the resumed run
// regenerates the identical stream.
const crashStreamSize = 20000

// TestCrashIngestHelper is not a test: it is the subprocess body for
// TestCrashRecoveryAfterSIGKILL. It ingests a large deterministic stream
// through a WAL-backed session, pacing itself so the parent can SIGKILL it
// mid-stream.
func TestCrashIngestHelper(t *testing.T) {
	dir := os.Getenv(crashHelperEnv)
	if dir == "" {
		t.Skip("subprocess helper; driven by TestCrashRecoveryAfterSIGKILL")
	}
	l, err := wal.Open(dir, wal.Options{SyncEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultClassifierConfig())
	ing := m.StartIngestWith(IngestConfig{Workers: 4, WAL: l})
	events := genStream(crashStreamSize)
	for i, e := range events {
		switch {
		case e.blackURL != "":
			ing.AddBlacklistedURL(e.blackURL)
		case e.hasDomain:
			ing.AddBlacklistedDomain(e.blackDom)
		default:
			ing.Observe(e.post)
		}
		if i%64 == 63 {
			time.Sleep(time.Millisecond) // let the parent land its kill mid-stream
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	l.Close()
}

// TestCrashRecoveryAfterSIGKILL is the end-to-end durability test: SIGKILL
// a WAL-backed ingestion mid-stream, recover by replay (the recovered
// state must equal the serial oracle over exactly the logged prefix), then
// resume the regenerated stream with SkipEvents and land byte-identical to
// the uninterrupted run.
func TestCrashRecoveryAfterSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashIngestHelper$")
	cmd.Env = append(os.Environ(), crashHelperEnv+"="+dir)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for real progress, watching segment sizes with os.Stat only —
	// opening the live WAL from here would truncate what the child is
	// still appending.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var total int64
		matches, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
		for _, p := range matches {
			if st, err := os.Stat(p); err == nil {
				total += st.Size()
			}
		}
		if total > 32<<10 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("helper wrote only %d WAL bytes before deadline", total)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no deferred cleanup runs
		t.Fatal(err)
	}
	cmd.Wait()

	events := genStream(crashStreamSize)
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	recovered := New(DefaultClassifierConfig())
	stats, err := Replay(recovered, l, 0, nil)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if stats.Records == 0 {
		t.Fatal("replay recovered zero records from a killed ingest")
	}
	if stats.Records > uint64(len(events)) {
		t.Fatalf("replay recovered %d records from a %d-event stream", stats.Records, len(events))
	}
	t.Logf("recovered %d/%d events after SIGKILL", stats.Records, len(events))

	// The log is the exact call stream, so the recovered state must match
	// the serial oracle over precisely that prefix.
	prefix := New(DefaultClassifierConfig())
	applySerialPrefix(prefix, events, int(stats.Records))
	requireEqualViews(t, viewOf(prefix), viewOf(recovered), "replayed crash prefix")

	// Resume: regenerate the stream, skip the replayed prefix, finish.
	ing := recovered.StartIngestWith(IngestConfig{Workers: 3, WAL: l, SkipEvents: stats.Records})
	feedIngester(ing, events)
	if err := ing.Close(); err != nil {
		t.Fatalf("resumed Close: %v", err)
	}
	if got := l.End(); got != uint64(len(events)) {
		t.Fatalf("WAL holds %d records after resume, want %d", got, len(events))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	uninterrupted := New(DefaultClassifierConfig())
	applySerial(uninterrupted, events)
	requireEqualViews(t, viewOf(uninterrupted), viewOf(recovered), "crash-resumed monitor")
}
