package mypagekeeper

import (
	"runtime"
	"sync"
	"time"

	"frappe/internal/fbplatform"
	"frappe/internal/telemetry"
)

// ingestQueueDepth bounds each queue so a fast producer exerts backpressure
// instead of ballooning memory.
const ingestQueueDepth = 1024

// ingestItem is one queued unit of work: a post with its producer-stamped
// stream position, or (when flush is non-nil) a barrier token.
type ingestItem struct {
	post  fbplatform.Post
	seq   uint64
	flush *sync.WaitGroup
}

// Ingester fans a single-threaded post stream out across per-shard queues
// so the monitor's shards fill concurrently. Determinism is preserved by
// construction:
//
//   - every post carrying a URL is routed by hash(URL), so all posts for
//     one URL land on one queue in stream order — the per-URL prefix each
//     classification decision depends on is exactly the serial one;
//   - link-less posts only touch commutative per-app state (counters and
//     seq-keyed samples), so their routing (by app ID, else round-robin)
//     is load balancing, not ordering;
//   - blacklist updates flush every queue first (see AddBlacklistedURL),
//     so they are totally ordered against queued posts.
//
// Observe and Flush must be called from one producer goroutine at a time —
// the same discipline as the seeded generator that feeds it. The queue
// workers are the concurrency.
type Ingester struct {
	m *Monitor
	// queues is nil in the single-worker session: with no parallelism to
	// win, posts are observed synchronously — the same width-1 fast path
	// discipline as workerpool.Run.
	queues []chan ingestItem
	wg     sync.WaitGroup

	started time.Time
	closed  bool

	posts    *telemetry.CounterVec
	flushes  *telemetry.CounterVec
	barriers *telemetry.CounterVec
	seconds  *telemetry.GaugeVec
}

// StartIngest opens a queued-ingestion session with the given number of
// queue workers (0 or less means GOMAXPROCS). Results are byte-identical
// for every worker count. Close drains the queues and ends the session.
//
// Metrics (process default registry):
//
//	frappe_monitor_shards                            stripe count
//	frappe_monitor_ingest_workers                    queue workers this session
//	frappe_monitor_ingest_posts_total                posts enqueued
//	frappe_monitor_ingest_flushes_total              full-queue barriers
//	frappe_monitor_ingest_blacklist_barriers_total   barriers forced by blacklist adds
//	frappe_monitor_ingest_session_seconds            wall clock of the last session
func (m *Monitor) StartIngest(workers int) *Ingester {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reg := telemetry.Default()
	ing := &Ingester{
		m:       m,
		queues:  make([]chan ingestItem, workers),
		started: time.Now(),
		posts: reg.Counter("frappe_monitor_ingest_posts_total",
			"Posts enqueued through the monitor's ingestion queues."),
		flushes: reg.Counter("frappe_monitor_ingest_flushes_total",
			"Full-queue flush barriers issued during ingestion."),
		barriers: reg.Counter("frappe_monitor_ingest_blacklist_barriers_total",
			"Flush barriers forced by blacklist updates mid-stream."),
		seconds: reg.Gauge("frappe_monitor_ingest_session_seconds",
			"Wall-clock seconds of the last queued-ingestion session."),
	}
	reg.Gauge("frappe_monitor_shards",
		"Lock stripes in the MyPageKeeper monitor.").With().Set(float64(m.NumShards()))
	reg.Gauge("frappe_monitor_ingest_workers",
		"Queue workers in the current ingestion session.").With().Set(float64(workers))
	if workers == 1 {
		// One worker is the serial monitor with extra steps: skip the
		// queue machinery and observe synchronously.
		ing.queues = nil
		return ing
	}
	for i := range ing.queues {
		q := make(chan ingestItem, ingestQueueDepth)
		ing.queues[i] = q
		ing.wg.Add(1)
		go ing.run(q)
	}
	return ing
}

func (ing *Ingester) run(q chan ingestItem) {
	defer ing.wg.Done()
	for it := range q {
		if it.flush != nil {
			it.flush.Done()
			continue
		}
		ing.m.observeSeq(it.post, it.seq)
	}
}

// Observe enqueues one post. Unlike Monitor.Observe it cannot report the
// post's verdict — classification happens when a queue worker lands it.
func (ing *Ingester) Observe(p fbplatform.Post) {
	seq := ing.m.seq.Add(1)
	if ing.queues == nil {
		ing.m.observeSeq(p, seq)
		ing.posts.With().Inc()
		return
	}
	var qi uint64
	switch {
	case p.Link != "":
		qi = uint64(fnv32a(p.Link)) % uint64(len(ing.queues))
	case p.AppID != "":
		qi = uint64(fnv32a(p.AppID)) % uint64(len(ing.queues))
	default:
		qi = seq % uint64(len(ing.queues))
	}
	ing.queues[qi] <- ingestItem{post: p, seq: seq}
	ing.posts.With().Inc()
}

// Flush blocks until every post enqueued so far has been fully observed.
func (ing *Ingester) Flush() {
	if ing.queues == nil {
		ing.flushes.With().Inc()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ing.queues))
	for _, q := range ing.queues {
		q <- ingestItem{flush: &wg}
	}
	wg.Wait()
	ing.flushes.With().Inc()
}

// AddBlacklistedURL adds a URL-granularity blacklist entry, sequenced
// against the queued stream: if the URL is already an entry this is a
// no-op (re-adds commute with everything); otherwise every queue is
// flushed first, so exactly the posts the serial monitor would classify
// pre-blacklist are classified pre-blacklist.
func (ing *Ingester) AddBlacklistedURL(url string) {
	if ing.m.urlBlacklistedExact(url) {
		return
	}
	ing.barriers.With().Inc()
	ing.Flush()
	ing.m.AddBlacklistedURL(url)
}

// AddBlacklistedDomain is AddBlacklistedURL for domain-granularity entries.
func (ing *Ingester) AddBlacklistedDomain(domain string) {
	if ing.m.domainBlacklistedExact(domain) {
		return
	}
	ing.barriers.With().Inc()
	ing.Flush()
	ing.m.AddBlacklistedDomain(domain)
}

// Close drains every queue, stops the workers, and records the session
// duration. The Ingester must not be used after Close.
func (ing *Ingester) Close() {
	if ing.closed {
		return
	}
	ing.closed = true
	for _, q := range ing.queues {
		close(q)
	}
	ing.wg.Wait()
	ing.seconds.With().Set(time.Since(ing.started).Seconds())
}
