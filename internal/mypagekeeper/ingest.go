package mypagekeeper

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"frappe/internal/fbplatform"
	"frappe/internal/telemetry"
	"frappe/internal/wal"
)

// ingestQueueDepth bounds each queue so a fast producer exerts backpressure
// instead of ballooning memory.
const ingestQueueDepth = 1024

// ingestItem is one queued unit of work: a post with its producer-stamped
// stream position, or (when flush is non-nil) a barrier token.
type ingestItem struct {
	post  fbplatform.Post
	seq   uint64
	flush *sync.WaitGroup
}

// IngestConfig configures a queued-ingestion session.
type IngestConfig struct {
	// Workers is the number of queue workers (0 or less means GOMAXPROCS).
	// Results are byte-identical for every value.
	Workers int
	// WAL, when non-nil, makes the session durable: every event (post,
	// blacklist add — re-adds included — install, removal) is appended to
	// the log BEFORE it is enqueued or applied, and barriers (Flush,
	// blacklist adds, Close) fsync it. The log is therefore always the
	// exact call stream in producer order, which is what replay and resume
	// lean on.
	WAL *wal.Log
	// SkipEvents makes the session a crash-recovery resume: the first
	// SkipEvents event calls are the prefix the WAL already holds, and
	// are not appended again. Only meaningful when the producer
	// deterministically regenerates the same event stream (the seeded
	// generator does). By default skipped calls are dropped entirely —
	// the caller has already rebuilt monitor state via Replay.
	SkipEvents uint64
	// SkipLogOnly changes what a skipped call means: it is still applied
	// to the monitor, only its WAL append is suppressed. Use this when
	// the monitor must observe the regenerated stream in real order
	// rather than by replay — e.g. when classification consults external
	// service state (the synth world's link resolver) that only exists
	// mid-regeneration, so replaying the prefix up front would see a
	// different world than the original run did.
	SkipLogOnly bool
}

// Ingester fans a single-threaded post stream out across per-shard queues
// so the monitor's shards fill concurrently. Determinism is preserved by
// construction:
//
//   - every post carrying a URL is routed by hash(URL), so all posts for
//     one URL land on one queue in stream order — the per-URL prefix each
//     classification decision depends on is exactly the serial one;
//   - link-less posts only touch commutative per-app state (counters and
//     seq-keyed samples), so their routing (by app ID, else round-robin)
//     is load balancing, not ordering;
//   - blacklist updates flush every queue first (see AddBlacklistedURL),
//     so they are totally ordered against queued posts.
//
// Observe and Flush must be called from one producer goroutine at a time —
// the same discipline as the seeded generator that feeds it. The queue
// workers are the concurrency.
type Ingester struct {
	m *Monitor
	// queues is nil in the single-worker session: with no parallelism to
	// win, posts are observed synchronously — the same width-1 fast path
	// discipline as workerpool.Run.
	queues []chan ingestItem
	wg     sync.WaitGroup

	started time.Time
	closed  atomic.Bool

	wal          *wal.Log
	skip         uint64 // event calls still unlogged (crash-recovery resume)
	applySkipped bool   // skipped calls still apply (IngestConfig.SkipLogOnly)
	walErr       error  // first WAL failure; surfaced by Err and Close
	encBuf       []byte // event-encoding scratch, reused across appends
	closeErr     error

	posts     *telemetry.CounterVec
	flushes   *telemetry.CounterVec
	barriers  *telemetry.CounterVec
	walErrs   *telemetry.CounterVec
	walEvents *telemetry.CounterVec
	seconds   *telemetry.GaugeVec
}

// StartIngest opens a queued-ingestion session with the given number of
// queue workers; see StartIngestWith for the full contract.
func (m *Monitor) StartIngest(workers int) *Ingester {
	return m.StartIngestWith(IngestConfig{Workers: workers})
}

// StartIngestWith opens a queued-ingestion session. Results are
// byte-identical for every worker count. Close drains the queues and ends
// the session; using the Ingester after Close panics with a descriptive
// message (it used to be a bare send-on-closed-channel panic).
//
// Metrics (process default registry):
//
//	frappe_monitor_shards                            stripe count
//	frappe_monitor_ingest_workers                    queue workers this session
//	frappe_monitor_ingest_posts_total                posts enqueued
//	frappe_monitor_ingest_flushes_total              full-queue barriers
//	frappe_monitor_ingest_blacklist_barriers_total   barriers forced by blacklist adds
//	frappe_monitor_ingest_wal_events_total           events appended to the WAL
//	frappe_monitor_ingest_wal_errors_total           failed WAL appends/syncs
//	frappe_monitor_ingest_session_seconds            wall clock of the last session
func (m *Monitor) StartIngestWith(cfg IngestConfig) *Ingester {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reg := telemetry.Default()
	ing := &Ingester{
		m:            m,
		queues:       make([]chan ingestItem, workers),
		started:      time.Now(),
		wal:          cfg.WAL,
		skip:         cfg.SkipEvents,
		applySkipped: cfg.SkipLogOnly,
		posts: reg.Counter("frappe_monitor_ingest_posts_total",
			"Posts enqueued through the monitor's ingestion queues."),
		flushes: reg.Counter("frappe_monitor_ingest_flushes_total",
			"Full-queue flush barriers issued during ingestion."),
		barriers: reg.Counter("frappe_monitor_ingest_blacklist_barriers_total",
			"Flush barriers forced by blacklist updates mid-stream."),
		walEvents: reg.Counter("frappe_monitor_ingest_wal_events_total",
			"Ingestion events appended to the write-ahead log."),
		walErrs: reg.Counter("frappe_monitor_ingest_wal_errors_total",
			"Ingestion WAL appends or syncs that failed."),
		seconds: reg.Gauge("frappe_monitor_ingest_session_seconds",
			"Wall-clock seconds of the last queued-ingestion session."),
	}
	reg.Gauge("frappe_monitor_shards",
		"Lock stripes in the MyPageKeeper monitor.").With().Set(float64(m.NumShards()))
	reg.Gauge("frappe_monitor_ingest_workers",
		"Queue workers in the current ingestion session.").With().Set(float64(workers))
	if workers == 1 {
		// One worker is the serial monitor with extra steps: skip the
		// queue machinery and observe synchronously.
		ing.queues = nil
		return ing
	}
	for i := range ing.queues {
		q := make(chan ingestItem, ingestQueueDepth)
		ing.queues[i] = q
		ing.wg.Add(1)
		go ing.run(q)
	}
	return ing
}

func (ing *Ingester) run(q chan ingestItem) {
	defer ing.wg.Done()
	for it := range q {
		if it.flush != nil {
			it.flush.Done()
			continue
		}
		ing.m.observeSeq(it.post, it.seq)
	}
}

// ensureOpen makes post-Close misuse fail loudly and attributably instead
// of as a bare send-on-closed-channel panic (or, on the single-worker fast
// path, as silent writes into a supposedly sealed session).
func (ing *Ingester) ensureOpen(method string) {
	if ing.closed.Load() {
		panic("mypagekeeper: Ingester." + method + " called after Close")
	}
}

// skipOne consumes one unit of the crash-recovery skip budget; true means
// the current event was already recovered by replay and must be dropped.
func (ing *Ingester) skipOne() bool {
	if ing.skip == 0 {
		return false
	}
	ing.skip--
	return true
}

// logEvent appends one event to the WAL, before the event is enqueued or
// applied. A failing append does not stop in-memory ingestion — serving
// availability beats durability mid-stream — but the first error is
// retained and surfaced by Err and Close, and every failure is counted.
func (ing *Ingester) logEvent(ev WALEvent) {
	if ing.wal == nil {
		return
	}
	buf, err := AppendEvent(ing.encBuf[:0], ev)
	if err == nil {
		ing.encBuf = buf
		_, err = ing.wal.Append(buf)
	}
	if err != nil {
		ing.walErrs.With().Inc()
		if ing.walErr == nil {
			ing.walErr = err
		}
		return
	}
	ing.walEvents.With().Inc()
}

// syncWAL is the durability barrier: everything logged so far survives a
// crash once it returns.
func (ing *Ingester) syncWAL() {
	if ing.wal == nil {
		return
	}
	if err := ing.wal.Sync(); err != nil {
		ing.walErrs.With().Inc()
		if ing.walErr == nil {
			ing.walErr = err
		}
	}
}

// Observe enqueues one post. Unlike Monitor.Observe it cannot report the
// post's verdict — classification happens when a queue worker lands it.
func (ing *Ingester) Observe(p fbplatform.Post) {
	ing.ensureOpen("Observe")
	if skipped := ing.skipOne(); skipped {
		if !ing.applySkipped {
			return
		}
	} else {
		ing.logEvent(WALEvent{Kind: KindPost, Post: p})
	}
	seq := ing.m.seq.Add(1)
	if ing.queues == nil {
		ing.m.observeSeq(p, seq)
		ing.posts.With().Inc()
		return
	}
	var qi uint64
	switch {
	case p.Link != "":
		qi = uint64(fnv32a(p.Link)) % uint64(len(ing.queues))
	case p.AppID != "":
		qi = uint64(fnv32a(p.AppID)) % uint64(len(ing.queues))
	default:
		qi = seq % uint64(len(ing.queues))
	}
	ing.queues[qi] <- ingestItem{post: p, seq: seq}
	ing.posts.With().Inc()
}

// ObserveInstall logs a user installing an app. The monitor keeps no
// per-user install state, so the event's only destination is the WAL —
// durable churn history for offset-tracked consumers.
func (ing *Ingester) ObserveInstall(appID string, userID int) {
	ing.ensureOpen("ObserveInstall")
	if ing.skipOne() {
		return
	}
	ing.logEvent(WALEvent{Kind: KindInstall, AppID: appID, UserID: userID})
}

// ObserveRemoval logs a user removing an app.
func (ing *Ingester) ObserveRemoval(appID string, userID int) {
	ing.ensureOpen("ObserveRemoval")
	if ing.skipOne() {
		return
	}
	ing.logEvent(WALEvent{Kind: KindRemoval, AppID: appID, UserID: userID})
}

// Flush blocks until every post enqueued so far has been fully observed,
// and fsyncs the WAL — a Flush is a barrier in both senses.
func (ing *Ingester) Flush() {
	ing.ensureOpen("Flush")
	ing.flushQueues()
	ing.syncWAL()
}

func (ing *Ingester) flushQueues() {
	if ing.queues == nil {
		ing.flushes.With().Inc()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ing.queues))
	for _, q := range ing.queues {
		q <- ingestItem{flush: &wg}
	}
	wg.Wait()
	ing.flushes.With().Inc()
}

// AddBlacklistedURL adds a URL-granularity blacklist entry, sequenced
// against the queued stream: if the URL is already an entry this is a
// no-op (re-adds commute with everything — but are still logged, so the
// WAL stays the exact call stream); otherwise every queue is flushed
// first, so exactly the posts the serial monitor would classify
// pre-blacklist are classified pre-blacklist, and the WAL is fsynced —
// a blacklist add is a durability barrier.
func (ing *Ingester) AddBlacklistedURL(url string) {
	ing.ensureOpen("AddBlacklistedURL")
	if skipped := ing.skipOne(); skipped {
		if !ing.applySkipped {
			return
		}
	} else {
		ing.logEvent(WALEvent{Kind: KindBlacklistURL, Value: url})
	}
	if ing.m.urlBlacklistedExact(url) {
		return
	}
	ing.barriers.With().Inc()
	ing.flushQueues()
	ing.syncWAL()
	ing.m.AddBlacklistedURL(url)
}

// AddBlacklistedDomain is AddBlacklistedURL for domain-granularity entries.
func (ing *Ingester) AddBlacklistedDomain(domain string) {
	ing.ensureOpen("AddBlacklistedDomain")
	if skipped := ing.skipOne(); skipped {
		if !ing.applySkipped {
			return
		}
	} else {
		ing.logEvent(WALEvent{Kind: KindBlacklistDomain, Value: domain})
	}
	if ing.m.domainBlacklistedExact(domain) {
		return
	}
	ing.barriers.With().Inc()
	ing.flushQueues()
	ing.syncWAL()
	ing.m.AddBlacklistedDomain(domain)
}

// Err returns the first WAL failure of the session, if any. In-memory
// ingestion continues past WAL errors; durability does not.
func (ing *Ingester) Err() error { return ing.walErr }

// Close drains every queue, stops the workers, fsyncs the WAL (the
// session-end barrier) and records the session duration. It returns the
// first WAL error of the session — a caller that needs the durability
// guarantee must check it. The Ingester must not be used after Close;
// doing so panics with a descriptive message. Close does not close the
// WAL itself: the log outlives the session (consumers still read it).
func (ing *Ingester) Close() error {
	if !ing.closed.CompareAndSwap(false, true) {
		return ing.closeErr
	}
	for _, q := range ing.queues {
		close(q)
	}
	ing.wg.Wait()
	ing.syncWAL()
	ing.seconds.With().Set(time.Since(ing.started).Seconds())
	if ing.skip > 0 {
		// The resumed stream ended before covering the replayed prefix:
		// the producer did not regenerate the same stream. State is fine
		// (nothing was double-applied) but the resume contract is broken.
		ing.walErr = fmt.Errorf(
			"mypagekeeper: resume stream ended with %d replayed events still unseen", ing.skip)
	}
	ing.closeErr = ing.walErr
	return ing.closeErr
}
