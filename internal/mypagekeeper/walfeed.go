package mypagekeeper

// This file is the bridge between the monitor and the ingestion WAL
// (internal/wal): a deterministic binary codec for ingestion events and
// the serial replay that rebuilds a monitor from the log.
//
// The codec is hand-rolled varint framing rather than gob/JSON on
// purpose: replay equivalence is proved byte-for-byte against the serial
// monitor, so the encoding must be a pure function of the event — no
// per-stream type headers, no map iteration order, no float formatting.
// One WAL record holds exactly one event.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"frappe/internal/fbplatform"
	"frappe/internal/wal"
)

// EventKind discriminates WAL ingestion records.
type EventKind byte

const (
	// KindPost is one post streamed through the monitor.
	KindPost EventKind = 1
	// KindBlacklistURL is a URL-granularity blacklist add. Every add call
	// is logged, including idempotent re-adds — the log is the exact call
	// stream, which is what makes resume-by-skipping deterministic.
	KindBlacklistURL EventKind = 2
	// KindBlacklistDomain is a domain-granularity blacklist add.
	KindBlacklistDomain EventKind = 3
	// KindInstall is a user installing an app (the churn dimension the
	// monitor itself does not track; consumers like the retrainer can).
	KindInstall EventKind = 4
	// KindRemoval is a user removing an app.
	KindRemoval EventKind = 5
)

// WALEvent is one decoded ingestion event.
type WALEvent struct {
	Kind EventKind
	// Post is set for KindPost.
	Post fbplatform.Post
	// Value is the URL (KindBlacklistURL) or domain (KindBlacklistDomain).
	Value string
	// AppID and UserID are set for KindInstall / KindRemoval.
	AppID  string
	UserID int
}

// ErrBadEvent wraps every event-decoding failure.
var ErrBadEvent = errors.New("mypagekeeper: undecodable WAL event")

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendEvent appends ev's encoding to dst and returns the result. The
// encoding is deterministic: equal events encode to equal bytes.
func AppendEvent(dst []byte, ev WALEvent) ([]byte, error) {
	dst = append(dst, byte(ev.Kind))
	switch ev.Kind {
	case KindPost:
		p := ev.Post
		if p.UserID < 0 || p.Month < 0 || p.Likes < 0 {
			return nil, fmt.Errorf("mypagekeeper: negative post field (user %d month %d likes %d)",
				p.UserID, p.Month, p.Likes)
		}
		dst = appendString(dst, p.AppID)
		dst = appendString(dst, p.SourceAppID)
		dst = binary.AppendUvarint(dst, uint64(p.UserID))
		dst = appendString(dst, p.Message)
		dst = appendString(dst, p.Link)
		dst = binary.AppendUvarint(dst, uint64(p.Month))
		dst = binary.AppendUvarint(dst, uint64(p.Likes))
		var mal byte
		if p.MaliciousLink {
			mal = 1
		}
		dst = append(dst, mal)
	case KindBlacklistURL, KindBlacklistDomain:
		dst = appendString(dst, ev.Value)
	case KindInstall, KindRemoval:
		if ev.UserID < 0 {
			return nil, fmt.Errorf("mypagekeeper: negative user ID %d", ev.UserID)
		}
		dst = appendString(dst, ev.AppID)
		dst = binary.AppendUvarint(dst, uint64(ev.UserID))
	default:
		return nil, fmt.Errorf("mypagekeeper: unknown event kind %d", ev.Kind)
	}
	return dst, nil
}

// eventReader decodes primitives with bounds checking.
type eventReader struct{ rest []byte }

func (r *eventReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.rest)
	if n <= 0 {
		return 0, ErrBadEvent
	}
	r.rest = r.rest[n:]
	return v, nil
}

func (r *eventReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil || n > uint64(len(r.rest)) {
		return "", ErrBadEvent
	}
	s := string(r.rest[:n])
	r.rest = r.rest[n:]
	return s, nil
}

func (r *eventReader) byte() (byte, error) {
	if len(r.rest) == 0 {
		return 0, ErrBadEvent
	}
	b := r.rest[0]
	r.rest = r.rest[1:]
	return b, nil
}

// DecodeEvent decodes one event. Trailing bytes are an error: a record
// holds exactly one event.
func DecodeEvent(data []byte) (WALEvent, error) {
	r := &eventReader{rest: data}
	kind, err := r.byte()
	if err != nil {
		return WALEvent{}, err
	}
	ev := WALEvent{Kind: EventKind(kind)}
	switch ev.Kind {
	case KindPost:
		var p fbplatform.Post
		var user, month, likes uint64
		var mal byte
		steps := []func() error{
			func() (e error) { p.AppID, e = r.str(); return },
			func() (e error) { p.SourceAppID, e = r.str(); return },
			func() (e error) { user, e = r.uvarint(); return },
			func() (e error) { p.Message, e = r.str(); return },
			func() (e error) { p.Link, e = r.str(); return },
			func() (e error) { month, e = r.uvarint(); return },
			func() (e error) { likes, e = r.uvarint(); return },
			func() (e error) { mal, e = r.byte(); return },
		}
		for _, step := range steps {
			if err := step(); err != nil {
				return WALEvent{}, err
			}
		}
		p.UserID, p.Month, p.Likes = int(user), int(month), int(likes)
		p.MaliciousLink = mal == 1
		ev.Post = p
	case KindBlacklistURL, KindBlacklistDomain:
		if ev.Value, err = r.str(); err != nil {
			return WALEvent{}, err
		}
	case KindInstall, KindRemoval:
		var user uint64
		if ev.AppID, err = r.str(); err != nil {
			return WALEvent{}, err
		}
		if user, err = r.uvarint(); err != nil {
			return WALEvent{}, err
		}
		ev.UserID = int(user)
	default:
		return WALEvent{}, fmt.Errorf("%w: kind %d", ErrBadEvent, kind)
	}
	if len(r.rest) != 0 {
		return WALEvent{}, fmt.Errorf("%w: %d trailing bytes", ErrBadEvent, len(r.rest))
	}
	return ev, nil
}

// ReplayStats summarises one replay pass.
type ReplayStats struct {
	// Records is the number of WAL records applied.
	Records uint64
	// Posts, Blacklists and Installs break Records down by kind
	// (Installs counts removals too).
	Posts      uint64
	Blacklists uint64
	Installs   uint64
	// Next is the record index replay stopped at — the offset a consumer
	// commits after fully processing the replayed view.
	Next uint64
}

// Replay applies the log's events from record index `from` serially into
// the monitor, exactly as the original serial stream would have: posts via
// Observe, blacklist adds via AddBlacklisted*. The resulting monitor state
// is byte-identical to one that observed the original stream (see the
// determinism suites). Install/removal events are handed to installs when
// non-nil and skipped otherwise — the monitor keeps no per-user install
// state.
func Replay(m *Monitor, log *wal.Log, from uint64, installs func(appID string, userID int, removed bool)) (ReplayStats, error) {
	r, err := log.Reader(from)
	if err != nil {
		return ReplayStats{Next: from}, err
	}
	defer r.Close()
	stats := ReplayStats{Next: from}
	for {
		payload, idx, err := r.Next()
		if errors.Is(err, io.EOF) {
			return stats, nil
		}
		if err != nil {
			return stats, fmt.Errorf("mypagekeeper: replaying record %d: %w", stats.Next, err)
		}
		ev, err := DecodeEvent(payload)
		if err != nil {
			return stats, fmt.Errorf("mypagekeeper: replaying record %d: %w", idx, err)
		}
		switch ev.Kind {
		case KindPost:
			m.Observe(ev.Post)
			stats.Posts++
		case KindBlacklistURL:
			m.AddBlacklistedURL(ev.Value)
			stats.Blacklists++
		case KindBlacklistDomain:
			m.AddBlacklistedDomain(ev.Value)
			stats.Blacklists++
		case KindInstall, KindRemoval:
			if installs != nil {
				installs(ev.AppID, ev.UserID, ev.Kind == KindRemoval)
			}
			stats.Installs++
		}
		stats.Records++
		stats.Next = idx + 1
	}
}
