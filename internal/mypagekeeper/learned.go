package mypagekeeper

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"frappe/internal/svm"
)

// The real MyPageKeeper "primarily relies on a Support Vector Machine
// (SVM) based classifier that evaluates every URL by combining information
// obtained from all posts containing that URL" (§2.2), with the blacklist
// feed providing seed labels. This file implements that learned mode on
// top of the same per-URL aggregates the heuristic mode uses: the monitor
// can train an SVM from its own observations (blacklist hits as positives,
// long-lived unflagged URLs as negatives) and then classify future URLs
// with it.

// urlFeatureNames documents the learned classifier's feature order.
var urlFeatureNames = []string{
	"spam-keyword-rate",   // fraction of the URL's posts with lure words
	"dominant-text-share", // text similarity across posts (campaign signal)
	"avg-likes",           // malicious posts receive fewer 'Like's
	"log-posts",           // how widely the URL circulates
}

// urlFeatures turns one URL's aggregate into the SVM input vector.
func urlFeatures(us *urlStats) []float64 {
	if us.posts == 0 {
		return []float64{0, 0, 0, 0}
	}
	top := 0
	for _, n := range us.messages {
		if n > top {
			top = n
		}
	}
	return []float64{
		float64(us.keywordPosts) / float64(us.posts),
		float64(top) / float64(us.posts),
		float64(us.likesTotal) / float64(us.posts),
		math.Log10(float64(us.posts) + 1),
	}
}

// URLModel is a trained URL classifier.
type URLModel struct {
	scaler *svm.Scaler
	model  *svm.Model
	// Positives/Negatives record the training-set sizes, for reporting.
	Positives int
	Negatives int
}

// Score returns the SVM decision value for a URL aggregate (positive =
// malicious).
func (m *URLModel) score(us *urlStats) float64 {
	return m.model.DecisionValue(m.scaler.Apply(urlFeatures(us)))
}

// ErrNotEnoughData is returned when the monitor has not yet observed
// enough labelled URLs to train.
var ErrNotEnoughData = errors.New("mypagekeeper: not enough labelled URLs to train")

// TrainURLClassifier fits the §2.2 SVM on the monitor's own observations:
// URLs already flagged (blacklist hits and heuristic detections) are the
// positives; unflagged URLs with at least MinPosts observations are the
// negatives, capped at maxNegatives (0 = 4x the positives). Training is
// deterministic: URLs are processed in sorted order. Feature vectors are
// materialised under each shard's lock, so a concurrent Observe cannot
// mutate an aggregate mid-read.
func (m *Monitor) TrainURLClassifier(maxNegatives int) (*URLModel, error) {
	type labelled struct {
		url   string
		feats []float64
	}
	var pos, neg []labelled
	for i := range m.urlShards {
		sh := &m.urlShards[i]
		sh.mu.Lock()
		for u, us := range sh.urls {
			if us.posts < m.cfg.MinPosts {
				continue
			}
			l := labelled{u, urlFeatures(us)}
			if us.flagged {
				pos = append(pos, l)
			} else {
				neg = append(neg, l)
			}
		}
		sh.mu.Unlock()
	}
	if len(pos) < 5 || len(neg) < 5 {
		return nil, fmt.Errorf("%w: %d positive, %d negative", ErrNotEnoughData, len(pos), len(neg))
	}
	sort.Slice(pos, func(i, j int) bool { return pos[i].url < pos[j].url })
	sort.Slice(neg, func(i, j int) bool { return neg[i].url < neg[j].url })
	if maxNegatives <= 0 {
		maxNegatives = 4 * len(pos)
	}
	if len(neg) > maxNegatives {
		// Deterministic thinning: take every k-th URL.
		step := len(neg) / maxNegatives
		if step < 1 {
			step = 1
		}
		var kept []labelled
		for i := 0; i < len(neg) && len(kept) < maxNegatives; i += step {
			kept = append(kept, neg[i])
		}
		neg = kept
	}

	var xs [][]float64
	var ys []float64
	for _, l := range pos {
		xs = append(xs, l.feats)
		ys = append(ys, 1)
	}
	for _, l := range neg {
		xs = append(xs, l.feats)
		ys = append(ys, -1)
	}
	scaler, err := svm.FitScaler(xs)
	if err != nil {
		return nil, fmt.Errorf("mypagekeeper: %w", err)
	}
	model, err := svm.Train(scaler.ApplyAll(xs), ys, svm.DefaultParams(len(urlFeatureNames)))
	if err != nil {
		return nil, fmt.Errorf("mypagekeeper: %w", err)
	}
	return &URLModel{scaler: scaler, model: model, Positives: len(pos), Negatives: len(neg)}, nil
}

// SetURLModel installs a trained model: from now on, classify consults it
// after the blacklists, replacing the hand-tuned threshold heuristics.
func (m *Monitor) SetURLModel(model *URLModel) {
	m.urlModel.Store(model)
}

// EvaluateURL scores a URL the monitor has seen; ok is false for unknown
// URLs or when no model is installed.
func (m *Monitor) EvaluateURL(link string) (score float64, ok bool) {
	model := m.urlModel.Load()
	if model == nil {
		return 0, false
	}
	sh := m.urlShardFor(link)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	us, found := sh.urls[link]
	if !found {
		return 0, false
	}
	return model.score(us), true
}

// ReclassifyAll re-runs the (possibly learned) classifier over every
// tracked URL, flagging any that now score malicious. Returns the number
// of newly flagged URLs. Flags are sticky: once malicious, always
// malicious, as in the real pipeline.
func (m *Monitor) ReclassifyAll() int {
	newly := 0
	for i := range m.urlShards {
		sh := &m.urlShards[i]
		sh.mu.Lock()
		for link, us := range sh.urls {
			if us.flagged {
				continue
			}
			if m.classify(link, us) {
				us.flagged = true
				newly++
			}
		}
		sh.mu.Unlock()
	}
	return newly
}
