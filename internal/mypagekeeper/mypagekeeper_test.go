package mypagekeeper

import (
	"fmt"
	"sync"
	"testing"

	"frappe/internal/fbplatform"
)

func post(app string, user int, msg, link string, likes int) fbplatform.Post {
	return fbplatform.Post{
		AppID:       app,
		SourceAppID: app,
		UserID:      user,
		Message:     msg,
		Link:        link,
		Likes:       likes,
	}
}

func TestSubscriptionFiltering(t *testing.T) {
	m := New(DefaultClassifierConfig())
	m.Subscribe(1)
	m.AddBlacklistedDomain("scam.example")

	m.Observe(post("a", 2, "FREE ipad", "http://scam.example/x", 0)) // unsubscribed
	if got := m.Stats().PostsObserved; got != 0 {
		t.Errorf("unsubscribed post observed: %d", got)
	}
	m.Observe(post("a", 1, "FREE ipad", "http://scam.example/x", 0))
	st := m.Stats()
	if st.PostsObserved != 1 || st.AppPosts != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBlacklistFlagsImmediately(t *testing.T) {
	m := New(DefaultClassifierConfig())
	m.Subscribe(1)
	m.AddBlacklistedDomain("survey-scam.example")
	flagged := m.Observe(post("app1", 1, "check this out", "http://survey-scam.example/win", 5))
	if !flagged {
		t.Error("blacklisted domain should flag on first sight")
	}
	if !m.URLFlagged("http://survey-scam.example/win") {
		t.Error("URLFlagged should report true")
	}
	if !m.AppFlagged("app1") {
		t.Error("app with flagged post should be marked")
	}
}

func TestHeuristicCampaignDetection(t *testing.T) {
	m := New(DefaultClassifierConfig())
	m.SubscribeRange(0, 100)
	link := "http://unknown-scam.example/free"
	// A campaign: identical spammy low-engagement posts of the same URL.
	for i := 0; i < 10; i++ {
		m.Observe(post("scamapp", i, "WOW free 5000 credits, hurry!", link, 0))
	}
	if !m.URLFlagged(link) {
		t.Fatal("campaign URL should be flagged by heuristics")
	}
	if got := m.FlaggedPostCount("scamapp"); got != 10 {
		t.Errorf("retroactive flagged posts = %d, want 10 (all posts of the URL)", got)
	}
}

func TestBenignTrafficNotFlagged(t *testing.T) {
	m := New(DefaultClassifierConfig())
	m.SubscribeRange(0, 100)
	// Benign app posting varied, liked content with facebook-internal links.
	for i := 0; i < 50; i++ {
		m.Observe(post("farmville", i, fmt.Sprintf("I harvested %d crops today!", i),
			"https://apps.facebook.com/onthefarm", 10))
	}
	if m.AppFlagged("farmville") {
		t.Error("benign app flagged")
	}
	st := m.Stats()
	if st.URLsFlagged != 0 {
		t.Errorf("URLsFlagged = %d", st.URLsFlagged)
	}
}

func TestHighEngagementEscapesHeuristic(t *testing.T) {
	m := New(DefaultClassifierConfig())
	m.SubscribeRange(0, 100)
	link := "http://viral-but-fine.example/page"
	// Identical keyword-laden posts, but with organic engagement.
	for i := 0; i < 10; i++ {
		m.Observe(post("viralapp", i, "WIN a free gift!", link, 25))
	}
	if m.URLFlagged(link) {
		t.Error("high-engagement URL should not be flagged by heuristics")
	}
}

func TestVariedMessagesEscapeHeuristic(t *testing.T) {
	m := New(DefaultClassifierConfig())
	m.SubscribeRange(0, 100)
	link := "http://shared-link.example/article"
	for i := 0; i < 10; i++ {
		m.Observe(post("newsapp", i, fmt.Sprintf("my take #%d on this free-market article", i), link, 1))
	}
	if m.URLFlagged(link) {
		t.Error("varied-message URL should not be flagged")
	}
}

func TestMinPostsThreshold(t *testing.T) {
	m := New(DefaultClassifierConfig())
	m.SubscribeRange(0, 10)
	link := "http://maybe-scam.example/x"
	if m.Observe(post("a", 1, "FREE gift hurry", link, 0)) {
		t.Error("single observation should not flag via heuristics")
	}
	m.Observe(post("a", 2, "FREE gift hurry", link, 0))
	if m.URLFlagged(link) {
		t.Error("below MinPosts should not flag")
	}
	m.Observe(post("a", 3, "FREE gift hurry", link, 0))
	if !m.URLFlagged(link) {
		t.Error("at MinPosts with strong signals should flag")
	}
}

func TestExternalLinkAccounting(t *testing.T) {
	m := New(DefaultClassifierConfig())
	m.Subscribe(1)
	m.Observe(post("app", 1, "a", "https://apps.facebook.com/internal", 0))
	m.Observe(post("app", 1, "b", "http://outside.example/x", 0))
	m.Observe(post("app", 1, "c", "", 0))
	as := m.Apps()["app"]
	if as.Posts != 3 {
		t.Errorf("Posts = %d", as.Posts)
	}
	if as.ExternalLinks != 1 {
		t.Errorf("ExternalLinks = %d, want 1", as.ExternalLinks)
	}
	if len(as.Links) != 2 {
		t.Errorf("Links = %v", as.Links)
	}
}

func TestPostsWithoutAppField(t *testing.T) {
	m := New(DefaultClassifierConfig())
	m.Subscribe(1)
	m.Observe(fbplatform.Post{UserID: 1, Message: "manual post", Link: ""})
	st := m.Stats()
	if st.PostsObserved != 1 || st.AppPosts != 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(m.Apps()) != 0 {
		t.Error("manual posts should not create app aggregates")
	}
}

func TestPiggybackedPostAttribution(t *testing.T) {
	// A piggybacked post is attributed to the popular app; MyPageKeeper
	// cannot tell and must charge the popular app.
	m := New(DefaultClassifierConfig())
	m.Subscribe(1)
	m.AddBlacklistedDomain("freecredits.example")
	p := fbplatform.Post{
		AppID:       "farmville",
		SourceAppID: "scamapp",
		UserID:      1,
		Message:     "WOW I just got 5000 Facebook Credits for Free",
		Link:        "http://freecredits.example/go",
	}
	m.Observe(p)
	if !m.AppFlagged("farmville") {
		t.Error("piggybacked post must be charged to the attributed app")
	}
	if m.AppFlagged("scamapp") {
		t.Error("true source is invisible to the monitor")
	}
}

func TestRetroactiveFlagging(t *testing.T) {
	m := New(DefaultClassifierConfig())
	m.SubscribeRange(0, 10)
	link := "http://slow-burn.example/x"
	// First two posts are under the MinPosts threshold: not flagged live.
	m.Observe(post("a", 0, "free gift hurry", link, 0))
	m.Observe(post("a", 1, "free gift hurry", link, 0))
	if m.FlaggedPostCount("a") != 0 {
		t.Fatal("premature flagging")
	}
	m.Observe(post("a", 2, "free gift hurry", link, 0))
	// Now the URL is flagged; ALL THREE posts count.
	if got := m.FlaggedPostCount("a"); got != 3 {
		t.Errorf("retroactive count = %d, want 3", got)
	}
}

func TestConcurrentObserve(t *testing.T) {
	m := New(DefaultClassifierConfig())
	m.SubscribeRange(0, 100)
	m.AddBlacklistedDomain("scam.example")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Observe(post(fmt.Sprintf("app%d", base), (base*100+j)%100,
					"free stuff", "http://scam.example/x", 0))
			}
		}(i)
	}
	wg.Wait()
	if got := m.Stats().PostsObserved; got != 800 {
		t.Errorf("PostsObserved = %d, want 800", got)
	}
	for i := 0; i < 8; i++ {
		if !m.AppFlagged(fmt.Sprintf("app%d", i)) {
			t.Errorf("app%d not flagged", i)
		}
	}
}

func TestSpamKeywordMatching(t *testing.T) {
	if !hasSpamKeyword("Get your FREE 450 FACEBOOK CREDITS") {
		t.Error("FREE should match")
	}
	if hasSpamKeyword("I harvested my carrots") {
		t.Error("benign text should not match")
	}
}
