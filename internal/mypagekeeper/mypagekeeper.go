// Package mypagekeeper simulates MyPageKeeper (§2.2), the Facebook security
// application whose post-granularity classifications are FRAppE's ground
// truth. MyPageKeeper monitors the walls and news feeds of its subscribed
// users, evaluates every URL it sees by combining signals across all posts
// carrying that URL — URL blacklists, spam keywords ('FREE', 'Deal',
// 'Hurry', …), cross-post text similarity, and 'Like'/comment counts — and,
// once a URL is deemed malicious, marks every post containing it as
// malicious.
//
// Two properties of the real system matter for FRAppE and are preserved:
//
//  1. MyPageKeeper is agnostic about the posting application: it flags
//     posts, not apps. The app-granularity ground truth ("an app is
//     malicious if any of its posts was flagged") is derived afterwards.
//  2. Its decisions are imperfect in a measured way: 97% of flagged posts
//     are truly malicious and only 0.005% of benign posts are flagged,
//     which is exactly the label noise FRAppE trains under.
//
// The monitor is lock-striped for stream-scale ingestion: per-URL state
// lives in URL-hash shards, per-app aggregates in app-ID-hash shards, and
// the stream counters are atomics, so concurrent Observe calls on
// different URLs and apps never contend. Snapshot paths (Apps, Stats,
// FlaggedPostCount) merge the shards in sorted order, and the bounded
// per-app samples are keyed by a global stream sequence number, so every
// read-side result is byte-identical to the single-lock monitor for any
// shard count and any ingestion worker count (see DESIGN.md §9).
package mypagekeeper

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"frappe/internal/fbplatform"
	"frappe/internal/wot"
)

// SpamKeywords are the lure words the paper lists as classifier features.
var SpamKeywords = []string{
	"free", "deal", "hurry", "wow", "omg", "win", "gift", "credits",
	"ipad", "iphone", "offer", "prize", "limited", "click",
}

// ClassifierConfig tunes the URL classifier thresholds.
type ClassifierConfig struct {
	// MinPosts is the minimum number of observations of a URL before the
	// heuristic (non-blacklist) path may flag it.
	MinPosts int
	// KeywordRate is the fraction of a URL's posts that must contain spam
	// keywords for the keyword signal to fire.
	KeywordRate float64
	// SimilarityRate is the fraction of a URL's posts whose message matches
	// the campaign's dominant message for the similarity signal to fire.
	SimilarityRate float64
	// MaxAvgLikes: campaigns whose posts accumulate more average Likes than
	// this look organic and are not flagged by the heuristic path.
	MaxAvgLikes float64
}

// DefaultClassifierConfig returns thresholds that reproduce the measured
// precision of the real MyPageKeeper on the synthetic workload.
func DefaultClassifierConfig() ClassifierConfig {
	return ClassifierConfig{
		MinPosts:       3,
		KeywordRate:    0.5,
		SimilarityRate: 0.6,
		MaxAvgLikes:    2.0,
	}
}

// urlStats aggregates every observation of one URL across posts.
type urlStats struct {
	posts        int
	keywordPosts int
	likesTotal   int
	// message histogram, capped: campaign posts repeat a handful of texts.
	messages map[string]int
	flagged  bool
}

const maxTrackedMessages = 32

// DefaultShards is the shard count New uses. Sixteen stripes keep
// same-stripe collisions rare at the worker counts the pipeline runs with
// while the per-shard maps stay large enough to amortise their overhead.
const DefaultShards = 16

// urlShard stripes the per-URL aggregates: a URL always lives in the shard
// its hash selects, so all order-sensitive per-URL state (the flag point,
// the capped message histogram) is serialised by that shard's mutex alone.
type urlShard struct {
	mu   sync.Mutex
	urls map[string]*urlStats
}

// appShard stripes the per-app aggregates. All app-side state is
// commutative (counters plus sequence-keyed bounded samples), so shard
// placement only matters for contention, never for results.
type appShard struct {
	mu   sync.Mutex
	apps map[string]*appAgg
}

// appAgg is the mutable per-app aggregate behind the AppStats snapshot.
type appAgg struct {
	posts         int
	linkPosts     int
	flaggedPosts  int
	externalLinks int

	links           seqSample
	messages        seqSample
	flaggedMessages seqSample
}

// Monitor is the MyPageKeeper instance: a subscriber set, an online URL
// classifier, and per-application aggregation (the paper's §4.2
// "aggregation-based features" are computed by exactly this kind of
// entity). It is safe for concurrent use, and Observe calls on different
// URLs and applications proceed in parallel.
type Monitor struct {
	cfg ClassifierConfig

	subMu      sync.RWMutex
	subscribed map[int]bool

	// The blacklists are global (checked by every shard's classify path)
	// and mutated rarely; blMu is only ever taken after a URL-shard lock,
	// never the other way round, so the lock order is acyclic.
	blMu      sync.RWMutex
	blacklist map[string]bool
	urlBlack  map[string]bool

	urlShards []urlShard
	appShards []appShard

	posts    atomic.Int64  // posts observed (subscribed walls only)
	appPosts atomic.Int64  // posts with a non-empty application field
	seq      atomic.Uint64 // stream position, assigned on entry to Observe

	// resolve expands shortened URLs before blacklist checks, as the real
	// system resolved bit.ly links. It must be safe for concurrent use.
	resolve atomic.Pointer[func(string) (string, bool)]

	// urlModel, when set, replaces the threshold heuristics with the
	// learned SVM of §2.2 (see learned.go).
	urlModel atomic.Pointer[URLModel]
}

// SetResolver installs a shortened-URL expander: given a URL, it returns
// the long form and true, or ("", false) when the URL is not a known short
// link. The resolver must be safe for concurrent use.
func (m *Monitor) SetResolver(resolve func(string) (string, bool)) {
	if resolve == nil {
		m.resolve.Store(nil)
		return
	}
	m.resolve.Store(&resolve)
}

// AppStats is the per-application aggregate view MyPageKeeper accumulates.
// It drives both the malicious-app ground-truth heuristic (§2.3) and the
// aggregation-based features of full FRAppE (§4.2).
type AppStats struct {
	AppID        string
	Posts        int
	FlaggedPosts int
	// LinkPosts counts the posts that carried a URL — the stream Links
	// samples from, so LinkPosts > len(Links) means the sample is capped.
	LinkPosts     int
	ExternalLinks int
	// Links is the set of distinct URLs the app posted (bounded).
	Links []string
	// Messages is a bounded sample of post texts.
	Messages []string
	// FlaggedMessages is a bounded sample of texts from posts whose URL
	// was (already) flagged when observed — the Table 9 evidence column.
	FlaggedMessages []string
}

const (
	maxLinksPerApp           = 256
	maxMessagesPerApp        = 32
	maxFlaggedMessagesPerApp = 8
)

// New returns a Monitor with the given classifier thresholds and the
// default shard count.
func New(cfg ClassifierConfig) *Monitor {
	return NewSharded(cfg, DefaultShards)
}

// NewSharded returns a Monitor striped over the given number of shards
// (minimum 1). Results are byte-identical for every shard count; the knob
// only trades contention against per-shard map overhead.
func NewSharded(cfg ClassifierConfig, shards int) *Monitor {
	if shards < 1 {
		shards = 1
	}
	m := &Monitor{
		cfg:        cfg,
		subscribed: make(map[int]bool),
		blacklist:  make(map[string]bool),
		urlBlack:   make(map[string]bool),
		urlShards:  make([]urlShard, shards),
		appShards:  make([]appShard, shards),
	}
	for i := range m.urlShards {
		m.urlShards[i].urls = make(map[string]*urlStats)
	}
	for i := range m.appShards {
		m.appShards[i].apps = make(map[string]*appAgg)
	}
	return m
}

// NumShards reports the stripe count.
func (m *Monitor) NumShards() int { return len(m.urlShards) }

// fnv32a is the 32-bit FNV-1a string hash, inlined so shard routing is
// deterministic across processes (hash/maphash is seeded per process).
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (m *Monitor) urlShardFor(link string) *urlShard {
	return &m.urlShards[fnv32a(link)%uint32(len(m.urlShards))]
}

func (m *Monitor) appShardFor(appID string) *appShard {
	return &m.appShards[fnv32a(appID)%uint32(len(m.appShards))]
}

// Subscribe registers a user wall for monitoring.
func (m *Monitor) Subscribe(userID int) {
	m.subMu.Lock()
	defer m.subMu.Unlock()
	m.subscribed[userID] = true
}

// SubscribeRange subscribes users [lo, hi).
func (m *Monitor) SubscribeRange(lo, hi int) {
	m.subMu.Lock()
	defer m.subMu.Unlock()
	for u := lo; u < hi; u++ {
		m.subscribed[u] = true
	}
}

// NumSubscribers reports the monitored population size.
func (m *Monitor) NumSubscribers() int {
	m.subMu.RLock()
	defer m.subMu.RUnlock()
	return len(m.subscribed)
}

// AddBlacklistedDomain feeds the external URL-blacklist signal (the real
// system consumed public blacklists such as Google Safe Browsing). When
// ingestion is fanned out through an Ingester, route blacklist updates
// through the Ingester instead so they stay ordered against queued posts.
func (m *Monitor) AddBlacklistedDomain(domain string) {
	m.blMu.Lock()
	defer m.blMu.Unlock()
	m.blacklist[strings.ToLower(domain)] = true
}

// AddBlacklistedURL blacklists one exact URL; public blacklists carry both
// domain- and URL-granularity entries.
func (m *Monitor) AddBlacklistedURL(url string) {
	m.blMu.Lock()
	defer m.blMu.Unlock()
	m.urlBlack[url] = true
}

// urlBlacklistedExact reports whether the exact URL is already an entry
// (no resolver expansion): the Ingester's idempotence check.
func (m *Monitor) urlBlacklistedExact(url string) bool {
	m.blMu.RLock()
	defer m.blMu.RUnlock()
	return m.urlBlack[url]
}

// domainBlacklistedExact reports whether the domain itself is an entry
// (no suffix walk): the Ingester's idempotence check.
func (m *Monitor) domainBlacklistedExact(domain string) bool {
	m.blMu.RLock()
	defer m.blMu.RUnlock()
	return m.blacklist[strings.ToLower(domain)]
}

// hasSpamKeyword reports whether msg contains any spam lure keyword.
func hasSpamKeyword(msg string) bool {
	lower := strings.ToLower(msg)
	for _, k := range SpamKeywords {
		if strings.Contains(lower, k) {
			return true
		}
	}
	return false
}

// Observe ingests one post. Posts from unsubscribed walls are ignored —
// MyPageKeeper only sees the profiles of its own users (the paper's
// "limited view of Facebook"). Returns whether the post's URL is (now)
// classified as malicious.
func (m *Monitor) Observe(p fbplatform.Post) bool {
	return m.observeSeq(p, m.seq.Add(1))
}

// observeSeq is Observe with an externally assigned stream position: the
// Ingester stamps sequence numbers producer-side so the bounded per-app
// samples come out identical regardless of which queue worker lands the
// post. The URL phase runs first and its shard lock is released before the
// app shard is taken — at most one shard lock is ever held at a time.
func (m *Monitor) observeSeq(p fbplatform.Post, seq uint64) bool {
	m.subMu.RLock()
	sub := m.subscribed[p.UserID]
	m.subMu.RUnlock()
	if !sub {
		return false
	}
	m.posts.Add(1)
	if p.AppID != "" {
		m.appPosts.Add(1)
	}

	// Per-URL aggregation and classification. Everything order-sensitive
	// (the flag point, the capped message histogram) depends only on the
	// sequence of posts carrying this one URL, which a shard's mutex —
	// and, under an Ingester, per-URL queue routing — preserves.
	flagged := false
	if p.Link != "" {
		sh := m.urlShardFor(p.Link)
		sh.mu.Lock()
		us := sh.urls[p.Link]
		if us == nil {
			us = &urlStats{messages: make(map[string]int, 4)}
			sh.urls[p.Link] = us
		}
		us.posts++
		if hasSpamKeyword(p.Message) {
			us.keywordPosts++
		}
		us.likesTotal += p.Likes
		if len(us.messages) < maxTrackedMessages {
			us.messages[normalizeMsg(p.Message)]++
		} else {
			// Track only already-seen messages once the histogram is full.
			if _, ok := us.messages[normalizeMsg(p.Message)]; ok {
				us.messages[normalizeMsg(p.Message)]++
			}
		}
		if !us.flagged {
			us.flagged = m.classify(p.Link, us)
		}
		flagged = us.flagged
		sh.mu.Unlock()
	}

	// Per-app aggregation (keyed by the *attributed* app, which is all the
	// monitor can see — this is what makes piggybacking effective). All
	// updates here are commutative: counters, plus samples keyed by seq.
	if p.AppID != "" {
		sh := m.appShardFor(p.AppID)
		sh.mu.Lock()
		as := sh.apps[p.AppID]
		if as == nil {
			as = &appAgg{
				links:           newSeqSample(maxLinksPerApp),
				messages:        newSeqSample(maxMessagesPerApp),
				flaggedMessages: newSeqSample(maxFlaggedMessagesPerApp),
			}
			sh.apps[p.AppID] = as
		}
		as.posts++
		if p.Link != "" {
			as.linkPosts++
			if isExternal(p.Link) {
				as.externalLinks++
			}
			as.links.add(seq, p.Link)
		}
		if p.Message != "" {
			as.messages.add(seq, p.Message)
		}
		if flagged {
			as.flaggedPosts++
			if p.Message != "" {
				as.flaggedMessages.add(seq, p.Message)
			}
		}
		sh.mu.Unlock()
	}
	return flagged
}

// classify applies the URL classifier: blacklist short-circuit, then the
// campaign heuristics. Called with the URL's shard lock held; it takes
// blMu.RLock underneath, which is the one permitted nesting.
func (m *Monitor) classify(link string, us *urlStats) bool {
	target := link
	if rp := m.resolve.Load(); rp != nil {
		if long, ok := (*rp)(link); ok {
			target = long
		}
	}
	m.blMu.RLock()
	bad := m.urlBlack[target] || m.domainBlacklistedLocked(wot.DomainOf(target))
	m.blMu.RUnlock()
	if bad {
		return true
	}
	if us.posts < m.cfg.MinPosts {
		return false
	}
	if model := m.urlModel.Load(); model != nil {
		return model.score(us) >= 0
	}
	keywordRate := float64(us.keywordPosts) / float64(us.posts)
	if keywordRate < m.cfg.KeywordRate {
		return false
	}
	top := 0
	for _, n := range us.messages {
		if n > top {
			top = n
		}
	}
	simRate := float64(top) / float64(us.posts)
	if simRate < m.cfg.SimilarityRate {
		return false
	}
	avgLikes := float64(us.likesTotal) / float64(us.posts)
	return avgLikes <= m.cfg.MaxAvgLikes
}

// domainBlacklistedLocked matches at the registrable-domain level: a
// blacklist entry for "scam.example" also covers "cdn7.scam.example", as
// real URL blacklists do. Callers hold blMu (either mode).
func (m *Monitor) domainBlacklistedLocked(domain string) bool {
	for domain != "" {
		if m.blacklist[domain] {
			return true
		}
		i := strings.IndexByte(domain, '.')
		if i < 0 {
			return false
		}
		domain = domain[i+1:]
	}
	return false
}

// normalizeMsg canonicalises post text for the similarity histogram.
func normalizeMsg(msg string) string {
	return strings.Join(strings.Fields(strings.ToLower(msg)), " ")
}

// isExternal reports whether link points outside facebook.com (§4.2.2).
func isExternal(link string) bool {
	d := wot.DomainOf(link)
	return d != "facebook.com" && !strings.HasSuffix(d, ".facebook.com")
}

// URLFlagged reports whether the URL has been classified malicious.
func (m *Monitor) URLFlagged(link string) bool {
	sh := m.urlShardFor(link)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	us, ok := sh.urls[link]
	return ok && us.flagged
}

// flaggedLinkCount counts the links whose URL is currently flagged,
// visiting each URL shard at most once (and never holding two at a time).
func (m *Monitor) flaggedLinkCount(links []string) int {
	if len(links) == 0 {
		return 0
	}
	byShard := make(map[*urlShard][]string, 4)
	for _, l := range links {
		sh := m.urlShardFor(l)
		byShard[sh] = append(byShard[sh], l)
	}
	n := 0
	for sh, ls := range byShard {
		sh.mu.Lock()
		for _, l := range ls {
			if us, ok := sh.urls[l]; ok && us.flagged {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// FlaggedPostCount returns, per app, the number of posts whose URL is
// flagged, computed retroactively: once a URL is flagged, *all* posts
// containing it count as malicious, including ones observed before the
// flag. This mirrors "MyPageKeeper marks all posts containing the URL as
// malicious".
func (m *Monitor) FlaggedPostCount(appID string) int {
	sh := m.appShardFor(appID)
	sh.mu.Lock()
	as, ok := sh.apps[appID]
	if !ok {
		sh.mu.Unlock()
		return 0
	}
	links := as.links.values()
	linkPosts, online := as.linkPosts, as.flaggedPosts
	sh.mu.Unlock()

	n := m.flaggedLinkCount(links)
	// Only link-carrying posts feed Links, so the sample is complete —
	// and the retroactive count exact — unless linkPosts exceeded the
	// cap. Past it, fall back to the (lower-bound) online counter.
	if linkPosts > maxLinksPerApp && online > n {
		n = online
	}
	return n
}

// AppFlagged implements the paper's ground-truth heuristic: an app is
// marked malicious if any of its (attributed) posts was flagged.
func (m *Monitor) AppFlagged(appID string) bool {
	return m.FlaggedPostCount(appID) > 0
}

// appSnapshot builds one app's AppStats, with FlaggedPosts recomputed
// retroactively.
func (m *Monitor) appSnapshot(appID string) (AppStats, bool) {
	sh := m.appShardFor(appID)
	sh.mu.Lock()
	as, ok := sh.apps[appID]
	if !ok {
		sh.mu.Unlock()
		return AppStats{}, false
	}
	snap := AppStats{
		AppID:           appID,
		Posts:           as.posts,
		LinkPosts:       as.linkPosts,
		ExternalLinks:   as.externalLinks,
		Links:           as.links.values(),
		Messages:        as.messages.values(),
		FlaggedMessages: as.flaggedMessages.values(),
	}
	linkPosts, online := as.linkPosts, as.flaggedPosts
	sh.mu.Unlock()

	n := m.flaggedLinkCount(snap.Links)
	if linkPosts > maxLinksPerApp && online > n {
		n = online
	}
	snap.FlaggedPosts = n
	return snap, true
}

// flaggedURLSet snapshots the currently flagged URLs, one shard at a time.
func (m *Monitor) flaggedURLSet() map[string]bool {
	out := make(map[string]bool)
	for i := range m.urlShards {
		sh := &m.urlShards[i]
		sh.mu.Lock()
		for u, us := range sh.urls {
			if us.flagged {
				out[u] = true
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// Apps returns a snapshot of every per-app aggregate, with FlaggedPosts
// recomputed retroactively. The flagged-URL set is captured once up
// front and each app shard is walked in sorted app-ID order, so the
// result is independent of the shard layout.
func (m *Monitor) Apps() map[string]AppStats {
	flagged := m.flaggedURLSet()
	out := make(map[string]AppStats)
	for i := range m.appShards {
		sh := &m.appShards[i]
		sh.mu.Lock()
		ids := make([]string, 0, len(sh.apps))
		for id := range sh.apps {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			as := sh.apps[id]
			snap := AppStats{
				AppID:           id,
				Posts:           as.posts,
				LinkPosts:       as.linkPosts,
				ExternalLinks:   as.externalLinks,
				Links:           as.links.values(),
				Messages:        as.messages.values(),
				FlaggedMessages: as.flaggedMessages.values(),
			}
			n := 0
			for _, l := range snap.Links {
				if flagged[l] {
					n++
				}
			}
			if as.linkPosts > maxLinksPerApp && as.flaggedPosts > n {
				n = as.flaggedPosts
			}
			snap.FlaggedPosts = n
			out[id] = snap
		}
		sh.mu.Unlock()
	}
	return out
}

// Stats summarises the monitor's view of the post stream.
type Stats struct {
	PostsObserved int // posts on subscribed walls
	AppPosts      int // of those, posts with an application field
	URLsTracked   int
	URLsFlagged   int
}

// Stats returns stream-level counters, merged across shards.
func (m *Monitor) Stats() Stats {
	s := Stats{
		PostsObserved: int(m.posts.Load()),
		AppPosts:      int(m.appPosts.Load()),
	}
	for i := range m.urlShards {
		sh := &m.urlShards[i]
		sh.mu.Lock()
		s.URLsTracked += len(sh.urls)
		for _, us := range sh.urls {
			if us.flagged {
				s.URLsFlagged++
			}
		}
		sh.mu.Unlock()
	}
	return s
}
