// Package mypagekeeper simulates MyPageKeeper (§2.2), the Facebook security
// application whose post-granularity classifications are FRAppE's ground
// truth. MyPageKeeper monitors the walls and news feeds of its subscribed
// users, evaluates every URL it sees by combining signals across all posts
// carrying that URL — URL blacklists, spam keywords ('FREE', 'Deal',
// 'Hurry', …), cross-post text similarity, and 'Like'/comment counts — and,
// once a URL is deemed malicious, marks every post containing it as
// malicious.
//
// Two properties of the real system matter for FRAppE and are preserved:
//
//  1. MyPageKeeper is agnostic about the posting application: it flags
//     posts, not apps. The app-granularity ground truth ("an app is
//     malicious if any of its posts was flagged") is derived afterwards.
//  2. Its decisions are imperfect in a measured way: 97% of flagged posts
//     are truly malicious and only 0.005% of benign posts are flagged,
//     which is exactly the label noise FRAppE trains under.
package mypagekeeper

import (
	"strings"
	"sync"

	"frappe/internal/fbplatform"
	"frappe/internal/wot"
)

// SpamKeywords are the lure words the paper lists as classifier features.
var SpamKeywords = []string{
	"free", "deal", "hurry", "wow", "omg", "win", "gift", "credits",
	"ipad", "iphone", "offer", "prize", "limited", "click",
}

// ClassifierConfig tunes the URL classifier thresholds.
type ClassifierConfig struct {
	// MinPosts is the minimum number of observations of a URL before the
	// heuristic (non-blacklist) path may flag it.
	MinPosts int
	// KeywordRate is the fraction of a URL's posts that must contain spam
	// keywords for the keyword signal to fire.
	KeywordRate float64
	// SimilarityRate is the fraction of a URL's posts whose message matches
	// the campaign's dominant message for the similarity signal to fire.
	SimilarityRate float64
	// MaxAvgLikes: campaigns whose posts accumulate more average Likes than
	// this look organic and are not flagged by the heuristic path.
	MaxAvgLikes float64
}

// DefaultClassifierConfig returns thresholds that reproduce the measured
// precision of the real MyPageKeeper on the synthetic workload.
func DefaultClassifierConfig() ClassifierConfig {
	return ClassifierConfig{
		MinPosts:       3,
		KeywordRate:    0.5,
		SimilarityRate: 0.6,
		MaxAvgLikes:    2.0,
	}
}

// urlStats aggregates every observation of one URL across posts.
type urlStats struct {
	posts        int
	keywordPosts int
	likesTotal   int
	// message histogram, capped: campaign posts repeat a handful of texts.
	messages map[string]int
	flagged  bool
}

const maxTrackedMessages = 32

// Monitor is the MyPageKeeper instance: a subscriber set, an online URL
// classifier, and per-application aggregation (the paper's §4.2
// "aggregation-based features" are computed by exactly this kind of
// entity). It is safe for concurrent use.
type Monitor struct {
	cfg ClassifierConfig

	mu         sync.Mutex
	subscribed map[int]bool
	blacklist  map[string]bool
	urlBlack   map[string]bool
	urls       map[string]*urlStats
	apps       map[string]*AppStats
	posts      int // posts observed (subscribed walls only)
	appPosts   int // posts with a non-empty application field

	// resolve expands shortened URLs before blacklist checks, as the real
	// system resolved bit.ly links. It must be safe for concurrent use.
	resolve func(string) (string, bool)

	// urlModel, when set, replaces the threshold heuristics with the
	// learned SVM of §2.2 (see learned.go).
	urlModel *URLModel
}

// SetResolver installs a shortened-URL expander: given a URL, it returns
// the long form and true, or ("", false) when the URL is not a known short
// link. The resolver must be safe for concurrent use.
func (m *Monitor) SetResolver(resolve func(string) (string, bool)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.resolve = resolve
}

// AppStats is the per-application aggregate view MyPageKeeper accumulates.
// It drives both the malicious-app ground-truth heuristic (§2.3) and the
// aggregation-based features of full FRAppE (§4.2).
type AppStats struct {
	AppID         string
	Posts         int
	FlaggedPosts  int
	ExternalLinks int
	// Links is the set of distinct URLs the app posted (bounded).
	Links []string
	// Messages is a bounded sample of post texts.
	Messages []string
	// FlaggedMessages is a bounded sample of texts from posts whose URL
	// was (already) flagged when observed — the Table 9 evidence column.
	FlaggedMessages []string
	// BitlyLinks is the subset of Links that are shortened links (bounded).
	BitlyLinks []string
}

const (
	maxLinksPerApp           = 256
	maxMessagesPerApp        = 32
	maxFlaggedMessagesPerApp = 8
)

// New returns a Monitor with the given classifier thresholds.
func New(cfg ClassifierConfig) *Monitor {
	return &Monitor{
		cfg:        cfg,
		subscribed: make(map[int]bool),
		blacklist:  make(map[string]bool),
		urlBlack:   make(map[string]bool),
		urls:       make(map[string]*urlStats),
		apps:       make(map[string]*AppStats),
	}
}

// Subscribe registers a user wall for monitoring.
func (m *Monitor) Subscribe(userID int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subscribed[userID] = true
}

// SubscribeRange subscribes users [lo, hi).
func (m *Monitor) SubscribeRange(lo, hi int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for u := lo; u < hi; u++ {
		m.subscribed[u] = true
	}
}

// NumSubscribers reports the monitored population size.
func (m *Monitor) NumSubscribers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.subscribed)
}

// AddBlacklistedDomain feeds the external URL-blacklist signal (the real
// system consumed public blacklists such as Google Safe Browsing).
func (m *Monitor) AddBlacklistedDomain(domain string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blacklist[strings.ToLower(domain)] = true
}

// AddBlacklistedURL blacklists one exact URL; public blacklists carry both
// domain- and URL-granularity entries.
func (m *Monitor) AddBlacklistedURL(url string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.urlBlack[url] = true
}

// hasSpamKeyword reports whether msg contains any spam lure keyword.
func hasSpamKeyword(msg string) bool {
	lower := strings.ToLower(msg)
	for _, k := range SpamKeywords {
		if strings.Contains(lower, k) {
			return true
		}
	}
	return false
}

// Observe ingests one post. Posts from unsubscribed walls are ignored —
// MyPageKeeper only sees the profiles of its own users (the paper's
// "limited view of Facebook"). Returns whether the post's URL is (now)
// classified as malicious.
func (m *Monitor) Observe(p fbplatform.Post) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.subscribed[p.UserID] {
		return false
	}
	m.posts++
	if p.AppID != "" {
		m.appPosts++
	}

	// Per-app aggregation (keyed by the *attributed* app, which is all the
	// monitor can see — this is what makes piggybacking effective).
	if p.AppID != "" {
		as := m.apps[p.AppID]
		if as == nil {
			as = &AppStats{AppID: p.AppID}
			m.apps[p.AppID] = as
		}
		as.Posts++
		if p.Link != "" && isExternal(p.Link) {
			as.ExternalLinks++
		}
		if p.Link != "" && len(as.Links) < maxLinksPerApp {
			as.Links = append(as.Links, p.Link)
		}
		if p.Message != "" && len(as.Messages) < maxMessagesPerApp {
			as.Messages = append(as.Messages, p.Message)
		}
	}

	if p.Link == "" {
		return false
	}
	us := m.urls[p.Link]
	if us == nil {
		us = &urlStats{messages: make(map[string]int, 4)}
		m.urls[p.Link] = us
	}
	us.posts++
	if hasSpamKeyword(p.Message) {
		us.keywordPosts++
	}
	us.likesTotal += p.Likes
	if len(us.messages) < maxTrackedMessages {
		us.messages[normalizeMsg(p.Message)]++
	} else {
		// Track only already-seen messages once the histogram is full.
		if _, ok := us.messages[normalizeMsg(p.Message)]; ok {
			us.messages[normalizeMsg(p.Message)]++
		}
	}

	if !us.flagged {
		us.flagged = m.classify(p.Link, us)
	}
	if us.flagged && p.AppID != "" {
		as := m.apps[p.AppID]
		as.FlaggedPosts++
		if p.Message != "" && len(as.FlaggedMessages) < maxFlaggedMessagesPerApp {
			as.FlaggedMessages = append(as.FlaggedMessages, p.Message)
		}
	}
	return us.flagged
}

// classify applies the URL classifier: blacklist short-circuit, then the
// campaign heuristics.
func (m *Monitor) classify(link string, us *urlStats) bool {
	target := link
	if m.resolve != nil {
		if long, ok := m.resolve(link); ok {
			target = long
		}
	}
	if m.urlBlack[target] || m.domainBlacklisted(wot.DomainOf(target)) {
		return true
	}
	if us.posts < m.cfg.MinPosts {
		return false
	}
	if m.urlModel != nil {
		return m.urlModel.score(us) >= 0
	}
	keywordRate := float64(us.keywordPosts) / float64(us.posts)
	if keywordRate < m.cfg.KeywordRate {
		return false
	}
	top := 0
	for _, n := range us.messages {
		if n > top {
			top = n
		}
	}
	simRate := float64(top) / float64(us.posts)
	if simRate < m.cfg.SimilarityRate {
		return false
	}
	avgLikes := float64(us.likesTotal) / float64(us.posts)
	return avgLikes <= m.cfg.MaxAvgLikes
}

// domainBlacklisted matches at the registrable-domain level: a blacklist
// entry for "scam.example" also covers "cdn7.scam.example", as real URL
// blacklists do.
func (m *Monitor) domainBlacklisted(domain string) bool {
	for domain != "" {
		if m.blacklist[domain] {
			return true
		}
		i := strings.IndexByte(domain, '.')
		if i < 0 {
			return false
		}
		domain = domain[i+1:]
	}
	return false
}

// normalizeMsg canonicalises post text for the similarity histogram.
func normalizeMsg(msg string) string {
	return strings.Join(strings.Fields(strings.ToLower(msg)), " ")
}

// isExternal reports whether link points outside facebook.com (§4.2.2).
func isExternal(link string) bool {
	d := wot.DomainOf(link)
	return d != "facebook.com" && !strings.HasSuffix(d, ".facebook.com")
}

// URLFlagged reports whether the URL has been classified malicious.
func (m *Monitor) URLFlagged(link string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	us, ok := m.urls[link]
	return ok && us.flagged
}

// FlaggedPostCount returns, per app, the number of posts whose URL is
// flagged, computed retroactively: once a URL is flagged, *all* posts
// containing it count as malicious, including ones observed before the
// flag. This mirrors "MyPageKeeper marks all posts containing the URL as
// malicious".
func (m *Monitor) FlaggedPostCount(appID string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	as, ok := m.apps[appID]
	if !ok {
		return 0
	}
	n := 0
	for _, l := range as.Links {
		if us, ok := m.urls[l]; ok && us.flagged {
			n++
		}
	}
	// Links beyond the per-app cap are approximated by the online counter.
	if as.Posts > maxLinksPerApp && as.FlaggedPosts > n {
		n = as.FlaggedPosts
	}
	return n
}

// AppFlagged implements the paper's ground-truth heuristic: an app is
// marked malicious if any of its (attributed) posts was flagged.
func (m *Monitor) AppFlagged(appID string) bool {
	return m.FlaggedPostCount(appID) > 0
}

// Apps returns a snapshot of every per-app aggregate, with FlaggedPosts
// recomputed retroactively.
func (m *Monitor) Apps() map[string]AppStats {
	m.mu.Lock()
	ids := make([]string, 0, len(m.apps))
	for id := range m.apps {
		ids = append(ids, id)
	}
	m.mu.Unlock()

	out := make(map[string]AppStats, len(ids))
	for _, id := range ids {
		flagged := m.FlaggedPostCount(id)
		m.mu.Lock()
		as := m.apps[id]
		snap := AppStats{
			AppID:           as.AppID,
			Posts:           as.Posts,
			FlaggedPosts:    flagged,
			ExternalLinks:   as.ExternalLinks,
			Links:           append([]string(nil), as.Links...),
			Messages:        append([]string(nil), as.Messages...),
			FlaggedMessages: append([]string(nil), as.FlaggedMessages...),
		}
		m.mu.Unlock()
		out[id] = snap
	}
	return out
}

// Stats summarises the monitor's view of the post stream.
type Stats struct {
	PostsObserved int // posts on subscribed walls
	AppPosts      int // of those, posts with an application field
	URLsTracked   int
	URLsFlagged   int
}

// Stats returns stream-level counters.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{PostsObserved: m.posts, AppPosts: m.appPosts, URLsTracked: len(m.urls)}
	for _, us := range m.urls {
		if us.flagged {
			s.URLsFlagged++
		}
	}
	return s
}
