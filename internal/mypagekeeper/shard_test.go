package mypagekeeper

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"frappe/internal/fbplatform"
)

// streamEvent is one element of the deterministic test workload: either a
// post or a mid-stream blacklist add (URL- or domain-granularity).
type streamEvent struct {
	post      fbplatform.Post
	blackURL  string
	blackDom  string
	hasDomain bool
}

// testLCG is a tiny deterministic generator so the workload is identical
// in every test run and on every monitor under comparison.
type testLCG struct{ s uint64 }

func (r *testLCG) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 17
}
func (r *testLCG) intn(n int) int { return int(r.next() % uint64(n)) }

// genStream builds a workload that exercises every order-sensitive path:
// URL reuse across apps (campaigns), spam keywords, likes, link-less and
// message-less posts, unsubscribed users, manual (app-less) posts, a
// heavy app that blows past the Links cap, and blacklist entries added
// mid-stream so flag points depend on stream position.
func genStream(n int) []streamEvent {
	rng := &testLCG{s: 20121210}
	events := make([]streamEvent, 0, n+40)
	messages := []string{
		"FREE ipad for the first 100 users, hurry!",
		"check out my farm",
		"WOW free 5000 credits click here",
		"had a great day",
		"",
	}
	for i := 0; i < n; i++ {
		if i%97 == 13 {
			// Mid-stream blacklist adds; repeats are deliberate (idempotent).
			if i%2 == 0 {
				events = append(events, streamEvent{blackURL: fmt.Sprintf("http://scam%d.example/lure", rng.intn(6))})
			} else {
				events = append(events, streamEvent{blackDom: fmt.Sprintf("evil%d.example", rng.intn(3)), hasDomain: true})
			}
			continue
		}
		p := fbplatform.Post{
			UserID: rng.intn(100), // subscribers are [0,80)
			Likes:  rng.intn(4),
		}
		switch rng.intn(10) {
		case 0: // manual post
		case 1: // heavy app: overflows the Links sample cap
			p.AppID = "heavy"
			p.Link = fmt.Sprintf("http://bulk.example/p%d", i)
		default:
			p.AppID = fmt.Sprintf("app%02d", rng.intn(23))
			if rng.intn(10) > 2 {
				// Shared campaign URL pool so per-URL stats accumulate.
				p.Link = fmt.Sprintf("http://scam%d.example/lure", rng.intn(6))
			}
		}
		p.Message = messages[rng.intn(len(messages))]
		p.SourceAppID = p.AppID
		events = append(events, streamEvent{post: p})
	}
	return events
}

func applySerial(m *Monitor, events []streamEvent) {
	for _, e := range events {
		switch {
		case e.blackURL != "":
			m.AddBlacklistedURL(e.blackURL)
		case e.hasDomain:
			m.AddBlacklistedDomain(e.blackDom)
		default:
			m.Observe(e.post)
		}
	}
}

func applyIngested(m *Monitor, events []streamEvent, workers int) {
	ing := m.StartIngest(workers)
	for _, e := range events {
		switch {
		case e.blackURL != "":
			ing.AddBlacklistedURL(e.blackURL)
		case e.hasDomain:
			ing.AddBlacklistedDomain(e.blackDom)
		default:
			ing.Observe(e.post)
		}
	}
	ing.Close()
}

// snapshotAll captures every read-side view the equivalence claim covers.
type monitorView struct {
	apps    map[string]AppStats
	stats   Stats
	flagged map[string]bool
}

func viewOf(m *Monitor) monitorView {
	v := monitorView{apps: m.Apps(), stats: m.Stats(), flagged: map[string]bool{}}
	for id := range v.apps {
		v.flagged[id] = m.AppFlagged(id)
	}
	return v
}

func requireEqualViews(t *testing.T, want, got monitorView, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.stats, got.stats) {
		t.Fatalf("%s: Stats = %+v, want %+v", label, got.stats, want.stats)
	}
	if !reflect.DeepEqual(want.flagged, got.flagged) {
		t.Fatalf("%s: AppFlagged map diverges", label)
	}
	if !reflect.DeepEqual(want.apps, got.apps) {
		for id, w := range want.apps {
			if g, ok := got.apps[id]; !ok || !reflect.DeepEqual(w, g) {
				t.Fatalf("%s: Apps()[%q] = %+v, want %+v", label, id, got.apps[id], w)
			}
		}
		t.Fatalf("%s: Apps() diverges (extra apps)", label)
	}
}

// TestShardEquivalence asserts the determinism-by-construction claim for
// the shard dimension: the same serial stream produces byte-identical
// Apps(), Stats(), and AppFlagged output for shard counts 1, 4, and 16.
func TestShardEquivalence(t *testing.T) {
	events := genStream(4000)
	build := func(shards int) monitorView {
		m := NewSharded(DefaultClassifierConfig(), shards)
		m.SubscribeRange(0, 80)
		applySerial(m, events)
		return viewOf(m)
	}
	want := build(1)
	if len(want.apps) == 0 || want.stats.URLsFlagged == 0 {
		t.Fatalf("degenerate workload: %+v", want.stats)
	}
	for _, shards := range []int{4, 16} {
		requireEqualViews(t, want, build(shards), fmt.Sprintf("shards=%d", shards))
	}
}

// TestIngestWorkerEquivalence asserts the same claim for the worker
// dimension: fanning the stream out through per-shard queues (any worker
// count, blacklist adds included) matches serial Observe byte for byte.
func TestIngestWorkerEquivalence(t *testing.T) {
	events := genStream(4000)
	serial := NewSharded(DefaultClassifierConfig(), 16)
	serial.SubscribeRange(0, 80)
	applySerial(serial, events)
	want := viewOf(serial)

	for _, workers := range []int{1, 3, 8} {
		m := NewSharded(DefaultClassifierConfig(), 16)
		m.SubscribeRange(0, 80)
		applyIngested(m, events, workers)
		requireEqualViews(t, want, viewOf(m), fmt.Sprintf("workers=%d", workers))
	}
}

// TestMonitorConcurrentWorkout hammers the full read and write API from
// many goroutines at once; run under -race it checks the striped locking,
// not results (those are the equivalence tests' job).
func TestMonitorConcurrentWorkout(t *testing.T) {
	m := New(DefaultClassifierConfig())
	m.SubscribeRange(0, 100)
	const writers, perWriter = 4, 500

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				p := post(fmt.Sprintf("app%d", i%17), i%100,
					"WOW free credits hurry", fmt.Sprintf("http://w%d.example/p%d", w, i%31), i%3)
				m.Observe(p)
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Apps()
				m.Stats()
				m.URLFlagged("http://w0.example/p1")
				m.FlaggedPostCount("app1")
				m.EvaluateURL("http://w1.example/p2")
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			m.AddBlacklistedURL(fmt.Sprintf("http://w%d.example/p%d", i%writers, i%31))
			m.AddBlacklistedDomain(fmt.Sprintf("evil%d.example", i))
			m.ReclassifyAll()
		}
		if model, err := m.TrainURLClassifier(0); err == nil {
			m.SetURLModel(model)
		}
		close(stop)
	}()
	wg.Wait()

	if got := m.Stats().PostsObserved; got != writers*perWriter {
		t.Fatalf("PostsObserved = %d, want %d", got, writers*perWriter)
	}
}

// TestFlaggedPostCountOverflowGuard pins both sides of the corrected
// overflow approximation: it must key on link-carrying posts (the stream
// Links samples from), not total posts.
func TestFlaggedPostCountOverflowGuard(t *testing.T) {
	m := New(DefaultClassifierConfig())
	m.SubscribeRange(0, 10)
	m.AddBlacklistedDomain("scam.example")

	// Side 1: linkPosts far past the cap — the Links sample drops
	// entries, so the retroactive count (256) undercounts and the online
	// counter (300) must win.
	for i := 0; i < 300; i++ {
		m.Observe(post("heavy", i%10, "lure", fmt.Sprintf("http://scam.example/p%d", i), 0))
	}
	heavy := m.Apps()["heavy"]
	if heavy.LinkPosts != 300 || len(heavy.Links) != maxLinksPerApp {
		t.Fatalf("heavy: LinkPosts=%d len(Links)=%d, want 300/%d", heavy.LinkPosts, len(heavy.Links), maxLinksPerApp)
	}
	if got := m.FlaggedPostCount("heavy"); got != 300 {
		t.Errorf("heavy FlaggedPostCount = %d, want 300 (online counter past the cap)", got)
	}

	// Side 2: a chatty app whose Posts exceed the cap but whose three
	// link posts all fit in the sample. Its URL is flagged only
	// retroactively, so the online counter is 0 — the old Posts-keyed
	// guard had no business even considering the approximation here.
	for i := 0; i < 300; i++ {
		m.Observe(post("chatty", i%10, "status update", "", 0))
	}
	for i := 0; i < 3; i++ {
		m.Observe(post("chatty", i, "look here", "http://late.example/x", 0))
	}
	m.AddBlacklistedURL("http://late.example/x")
	m.Observe(post("other", 1, "same link", "http://late.example/x", 0)) // flags the URL
	chatty := m.Apps()["chatty"]
	if chatty.Posts != 303 || chatty.LinkPosts != 3 {
		t.Fatalf("chatty: Posts=%d LinkPosts=%d, want 303/3", chatty.Posts, chatty.LinkPosts)
	}
	if got := m.FlaggedPostCount("chatty"); got != 3 {
		t.Errorf("chatty FlaggedPostCount = %d, want exact retroactive 3", got)
	}
}

// TestSeqSample pins the bounded sample: it keeps exactly the lowest-seq
// entries and returns them in stream order, however adds are interleaved.
func TestSeqSample(t *testing.T) {
	s := newSeqSample(3)
	for _, e := range []seqEntry{{7, "g"}, {2, "b"}, {9, "i"}, {1, "a"}, {5, "e"}, {3, "c"}} {
		s.add(e.seq, e.val)
	}
	got := s.values()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("values() = %v, want %v", got, want)
	}
	if s.len() != 3 {
		t.Fatalf("len = %d, want 3", s.len())
	}
	empty := newSeqSample(2)
	if empty.values() != nil {
		t.Fatal("empty sample must return nil (snapshot parity)")
	}
}

// BenchmarkMonitorIngest measures the queued ingestion path end to end
// (enqueue, shard updates, drain) over a mixed workload.
func BenchmarkMonitorIngest(b *testing.B) {
	events := genStream(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewSharded(DefaultClassifierConfig(), DefaultShards)
		m.SubscribeRange(0, 80)
		applyIngested(m, events, 0)
	}
}

// BenchmarkMonitorObserveSerial is the single-caller baseline the queued
// path is compared against.
func BenchmarkMonitorObserveSerial(b *testing.B) {
	events := genStream(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewSharded(DefaultClassifierConfig(), DefaultShards)
		m.SubscribeRange(0, 80)
		applySerial(m, events)
	}
}
