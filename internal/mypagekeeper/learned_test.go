package mypagekeeper

import (
	"errors"
	"fmt"
	"testing"
)

// seedStream feeds the monitor a labelled mix of campaign spam (on
// blacklisted domains, providing seed labels) and organic traffic.
func seedStream(t *testing.T) *Monitor {
	t.Helper()
	m := New(DefaultClassifierConfig())
	m.SubscribeRange(0, 1000)
	// Seed labels: ten blacklisted campaign URLs.
	for c := 0; c < 10; c++ {
		dom := fmt.Sprintf("scam%d.example", c)
		m.AddBlacklistedDomain(dom)
		link := fmt.Sprintf("http://%s/win", dom)
		for i := 0; i < 8; i++ {
			m.Observe(post(fmt.Sprintf("scamapp%d", c), i, "WOW FREE gift hurry!", link, 0))
		}
	}
	// Organic traffic: varied messages, engagement, many URLs.
	for u := 0; u < 40; u++ {
		link := fmt.Sprintf("http://news.example/story%d", u)
		for i := 0; i < 6; i++ {
			m.Observe(post("newsapp", u*7+i, fmt.Sprintf("my thoughts #%d on story %d", i, u), link, 8))
		}
	}
	return m
}

func TestTrainURLClassifier(t *testing.T) {
	m := seedStream(t)
	model, err := m.TrainURLClassifier(0)
	if err != nil {
		t.Fatal(err)
	}
	if model.Positives != 10 {
		t.Errorf("positives = %d, want 10", model.Positives)
	}
	if model.Negatives < 10 {
		t.Errorf("negatives = %d", model.Negatives)
	}
	m.SetURLModel(model)

	// The learned model must score campaign-like aggregates malicious and
	// organic ones benign.
	if score, ok := m.EvaluateURL("http://scam3.example/win"); !ok || score < 0 {
		t.Errorf("campaign URL score = %.3f, ok=%v", score, ok)
	}
	if score, ok := m.EvaluateURL("http://news.example/story7"); !ok || score >= 0 {
		t.Errorf("organic URL score = %.3f, ok=%v", score, ok)
	}
	if _, ok := m.EvaluateURL("http://never-seen.example/x"); ok {
		t.Error("unknown URL should not evaluate")
	}
}

func TestLearnedModeGeneralizes(t *testing.T) {
	m := seedStream(t)
	model, err := m.TrainURLClassifier(0)
	if err != nil {
		t.Fatal(err)
	}
	m.SetURLModel(model)

	// A NEW campaign on a domain the blacklist has never heard of: the
	// learned classifier should catch it from behaviour alone.
	link := "http://fresh-scam.example/prize"
	flagged := false
	for i := 0; i < 8; i++ {
		if m.Observe(post("freshapp", 100+i, "WIN a FREE prize, hurry, limited!", link, 0)) {
			flagged = true
		}
	}
	if !flagged {
		t.Error("learned model missed a fresh campaign")
	}
	// Fresh organic sharing stays clean.
	clean := "http://blog.example/recipe"
	for i := 0; i < 8; i++ {
		if m.Observe(post("blogapp", 200+i, fmt.Sprintf("recipe variation %d", i), clean, 12)) {
			t.Fatal("learned model flagged organic traffic")
		}
	}
}

func TestTrainURLClassifierNeedsData(t *testing.T) {
	m := New(DefaultClassifierConfig())
	m.Subscribe(1)
	if _, err := m.TrainURLClassifier(0); !errors.Is(err, ErrNotEnoughData) {
		t.Errorf("err = %v, want ErrNotEnoughData", err)
	}
}

func TestReclassifyAll(t *testing.T) {
	m := seedStream(t)
	// A campaign observed BEFORE any model existed, on an unknown domain,
	// with messages that pass the keyword check but were spread over too
	// few same-message posts for the similarity threshold... here, use a
	// campaign that the heuristics DID miss because of engagement.
	link := "http://sneaky.example/go"
	for i := 0; i < 8; i++ {
		// Likes=3 defeats the heuristic's MaxAvgLikes=2 bar.
		m.Observe(post("sneakyapp", 300+i, "FREE iPhone deal, hurry!", link, 3))
	}
	if m.URLFlagged(link) {
		t.Fatal("heuristics should have missed this campaign")
	}
	model, err := m.TrainURLClassifier(0)
	if err != nil {
		t.Fatal(err)
	}
	m.SetURLModel(model)
	newly := m.ReclassifyAll()
	if newly == 0 {
		t.Error("reclassification flagged nothing")
	}
	if !m.URLFlagged(link) {
		t.Error("retroactive learned classification missed the campaign")
	}
	// Sticky flags: re-running changes nothing.
	if again := m.ReclassifyAll(); again != 0 {
		t.Errorf("second pass flagged %d more", again)
	}
}

func TestURLFeatures(t *testing.T) {
	us := &urlStats{
		posts:        10,
		keywordPosts: 5,
		likesTotal:   20,
		messages:     map[string]int{"a": 7, "b": 3},
	}
	f := urlFeatures(us)
	if len(f) != len(urlFeatureNames) {
		t.Fatalf("feature count = %d", len(f))
	}
	if f[0] != 0.5 || f[1] != 0.7 || f[2] != 2.0 {
		t.Errorf("features = %v", f)
	}
	empty := urlFeatures(&urlStats{})
	for _, v := range empty {
		if v != 0 {
			t.Errorf("empty features = %v", empty)
		}
	}
}
