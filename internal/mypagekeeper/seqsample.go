package mypagekeeper

import "sort"

// seqSample is a bounded sample that keeps the entries with the smallest
// stream sequence numbers — i.e. exactly the first `limit` entries in
// stream order, no matter what order add is called in. That commutativity
// is what lets the per-app aggregates live behind hash-striped locks and
// still snapshot byte-identically to a serial, single-lock monitor: the
// single-threaded producer stamps each post's seq, queue workers add in
// whatever order they run, and values() returns entries in seq order.
//
// The layout is tuned for the dominant access pattern. Adds usually
// arrive in (nearly) increasing seq order — exactly so from a serial
// caller, approximately so from queue workers — so entries are kept in
// arrival order with the current maximum tracked on the side: a full
// sample rejects larger seqs with one comparison, and a snapshot of a
// monotone sample is a straight copy with no sort.
type seqSample struct {
	limit   int
	entries []seqEntry
	// maxIdx is the index of the largest seq (-1 when empty); the entry
	// evicted when a smaller seq arrives after the sample fills.
	maxIdx int
	// monotone records whether entries are still in increasing seq order,
	// letting values() skip the sort on the serial fast path.
	monotone bool
}

type seqEntry struct {
	seq uint64
	val string
}

func newSeqSample(limit int) seqSample {
	return seqSample{limit: limit, maxIdx: -1, monotone: true}
}

// add offers one entry to the sample.
func (s *seqSample) add(seq uint64, val string) {
	if s.limit <= 0 {
		return
	}
	if len(s.entries) < s.limit {
		if s.maxIdx < 0 || seq > s.entries[s.maxIdx].seq {
			s.maxIdx = len(s.entries)
		} else {
			s.monotone = false
		}
		s.entries = append(s.entries, seqEntry{seq, val})
		return
	}
	if seq >= s.entries[s.maxIdx].seq {
		return
	}
	s.entries[s.maxIdx] = seqEntry{seq, val}
	s.monotone = false
	s.rescanMax()
}

func (s *seqSample) rescanMax() {
	s.maxIdx = 0
	for i := 1; i < len(s.entries); i++ {
		if s.entries[i].seq > s.entries[s.maxIdx].seq {
			s.maxIdx = i
		}
	}
}

// len reports how many entries the sample holds.
func (s *seqSample) len() int { return len(s.entries) }

// values returns the kept entries in stream (seq) order; nil when empty,
// matching the pre-shard snapshot's nil slices.
func (s *seqSample) values() []string {
	if len(s.entries) == 0 {
		return nil
	}
	if s.monotone {
		out := make([]string, len(s.entries))
		for i, e := range s.entries {
			out[i] = e.val
		}
		return out
	}
	sorted := append([]seqEntry(nil), s.entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].seq < sorted[j].seq })
	out := make([]string, len(sorted))
	for i, e := range sorted {
		out[i] = e.val
	}
	return out
}
