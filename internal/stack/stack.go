// Package stack runs a synthetic world's services — the Graph API, bit.ly,
// WOT, Social Bakers, and the indirection redirector — as real HTTP servers
// on loopback, so that the measurement pipeline (crawler, watchdog CLI,
// examples) exercises the same networking code paths the paper's tooling
// did against the live services.
package stack

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"frappe/internal/bitly"
	"frappe/internal/fbplatform"
	"frappe/internal/graphapi"
	"frappe/internal/socialbakers"
	"frappe/internal/synth"
	"frappe/internal/telemetry"
	"frappe/internal/wot"
)

// Stack is a set of running loopback servers for one world.
type Stack struct {
	GraphURL        string
	BitlyURL        string
	WOTURL          string
	SocialBakersURL string
	RedirectorURL   string

	// Telemetry is the registry every service's HTTP middleware records
	// into (request counts, status classes, latency histograms).
	Telemetry *telemetry.Registry

	servers []*http.Server
	lns     []net.Listener
	wg      sync.WaitGroup
}

// Options configures a stack beyond its world: the telemetry registry
// the services record into, and optional deterministic fault injection.
type Options struct {
	// Telemetry is the registry every service's middleware records into;
	// nil means the process default.
	Telemetry *telemetry.Registry
	// Faults, when non-nil, wraps every service with the fault-injection
	// middleware (see faults.go).
	Faults *FaultSpec
}

// Start launches one HTTP server per service, instrumented against the
// process default telemetry registry. Callers must Close the stack.
func Start(w *synth.World) (*Stack, error) {
	return StartOpts(w, Options{})
}

// StartWith is Start with an explicit telemetry registry (nil means the
// process default); tests use it to read metrics in isolation.
func StartWith(w *synth.World, reg *telemetry.Registry) (*Stack, error) {
	return StartOpts(w, Options{Telemetry: reg})
}

// StartOpts is Start with full Options.
func StartOpts(w *synth.World, opts Options) (*Stack, error) {
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.Default()
	}
	s := &Stack{Telemetry: reg}
	type svc struct {
		name    string
		handler http.Handler
		url     *string
	}
	graph := graphapi.NewServer(w.Platform)
	// Posts created over HTTP land on monitored walls.
	graph.PostSink = func(p fbplatform.Post) { w.Monitor.Observe(p) }
	services := []svc{
		{"graph", graph, &s.GraphURL},
		{"bitly", w.Bitly, &s.BitlyURL},
		{"wot", w.WOT, &s.WOTURL},
		{"socialbakers", w.SocialBakers, &s.SocialBakersURL},
		{"redirector", w.Redirector, &s.RedirectorURL},
	}
	for _, service := range services {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("stack: listen: %w", err)
		}
		*service.url = "http://" + ln.Addr().String()
		// Faults inject inside the telemetry middleware, so injected 502s
		// and hangs are visible in the per-service request metrics.
		handler := service.handler
		if opts.Faults != nil {
			handler = opts.Faults.wrap(reg, service.name, handler)
		}
		srv := &http.Server{
			Handler:           telemetry.Middleware(reg, service.name, handler),
			ReadHeaderTimeout: 5 * time.Second,
		}
		s.servers = append(s.servers, srv)
		s.lns = append(s.lns, ln)
		s.wg.Add(1)
		go func(srv *http.Server, ln net.Listener) {
			defer s.wg.Done()
			// ErrServerClosed is the normal shutdown path.
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				// Nothing useful to do here; the listener is gone.
				_ = err
			}
		}(srv, ln)
	}
	// Short links must resolve against the running bit.ly server.
	w.Bitly.SetBaseURL(s.BitlyURL)
	return s, nil
}

// Clients returns pre-wired clients for the running services.
func (s *Stack) Clients() (*graphapi.Client, *bitly.Client, *wot.Client, *socialbakers.Client) {
	return &graphapi.Client{BaseURL: s.GraphURL},
		&bitly.Client{BaseURL: s.BitlyURL},
		&wot.Client{BaseURL: s.WOTURL},
		&socialbakers.Client{BaseURL: s.SocialBakersURL}
}

// Close shuts every server down and waits for them to stop serving.
func (s *Stack) Close() {
	for _, srv := range s.servers {
		_ = srv.Close()
	}
	for _, ln := range s.lns {
		_ = ln.Close()
	}
	s.wg.Wait()
}
