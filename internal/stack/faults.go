package stack

import (
	"hash/fnv"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"frappe/internal/telemetry"
)

// Deterministic fault injection for the loopback stack. The paper's
// crawl ran against services that failed constantly (install permissions
// were reachable for only ~37% of benign apps); these knobs let tests
// and operators recreate that hostility on demand, per service, from a
// seeded RNG — so a run with the same seed injects the same fault
// sequence per service and failures are reproducible.
//
// Injected faults are visible as:
//
//	frappe_faults_injected_total{service,kind}   kind = error | hang
//	frappe_fault_latency_injected_total{service} latency sleeps applied

// ServiceFaults are the per-service fault knobs.
type ServiceFaults struct {
	// ErrorRate is the probability ([0,1]) a request is answered with an
	// injected 502 before reaching the service.
	ErrorRate float64
	// HangRate is the probability ([0,1]) a request is never answered:
	// the handler parks until the client gives up (its timeout cancels
	// the request context).
	HangRate float64
	// Latency is added to every request before any other fault fires.
	Latency time.Duration
}

// enabled reports whether any knob is set.
func (sf ServiceFaults) enabled() bool {
	return sf.ErrorRate > 0 || sf.HangRate > 0 || sf.Latency > 0
}

// FaultSpec configures fault injection for a whole stack.
type FaultSpec struct {
	// Seed drives every service's fault RNG; each service derives its own
	// stream from Seed and its name, so per-service sequences are stable
	// regardless of traffic to other services.
	Seed int64
	// Default applies to every service without an explicit override.
	Default ServiceFaults
	// PerService overrides Default by stack service name ("graph",
	// "bitly", "wot", "socialbakers", "redirector").
	PerService map[string]ServiceFaults
}

// forService resolves the effective knobs for one service.
func (f *FaultSpec) forService(name string) ServiceFaults {
	if f == nil {
		return ServiceFaults{}
	}
	if sf, ok := f.PerService[name]; ok {
		return sf
	}
	return f.Default
}

// wrap returns next wrapped with this spec's fault middleware for the
// named service; next unchanged when no knob is set.
func (f *FaultSpec) wrap(reg *telemetry.Registry, name string, next http.Handler) http.Handler {
	sf := f.forService(name)
	if !sf.enabled() {
		return next
	}
	if reg == nil {
		reg = telemetry.Default()
	}
	injected := reg.Counter("frappe_faults_injected_total",
		"Faults injected by the stack's fault middleware, by service and kind.", "service", "kind")
	latencies := reg.Counter("frappe_fault_latency_injected_total",
		"Latency injections applied, by service.", "service")

	h := fnv.New64a()
	h.Write([]byte(name))
	rng := rand.New(rand.NewSource(f.Seed ^ int64(h.Sum64())))
	var mu sync.Mutex

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		pHang := rng.Float64()
		pErr := rng.Float64()
		mu.Unlock()
		if sf.Latency > 0 {
			latencies.With(name).Inc()
			select {
			case <-time.After(sf.Latency):
			case <-r.Context().Done():
				return
			}
		}
		if pHang < sf.HangRate {
			injected.With(name, "hang").Inc()
			// Park until the client abandons the request; never answer.
			<-r.Context().Done()
			return
		}
		if pErr < sf.ErrorRate {
			injected.With(name, "error").Inc()
			http.Error(w, "injected fault", http.StatusBadGateway)
			return
		}
		next.ServeHTTP(w, r)
	})
}
