package stack

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// ReplicaSet runs N HTTP replicas on fixed loopback ports — the cluster
// e2e harness. Each replica keeps its host:port across restarts (a
// cluster member's URL is part of its identity), Kill is abrupt
// (http.Server.Close tears down the listener and every live connection,
// the same TCP failure mode a SIGKILLed process presents to clients),
// and Restart rebinds the same port with a handler built fresh by the
// caller — which is where a real replica would re-load its model from
// the registry and replay the ingestion WAL.
//
// The handlers come from the caller because stack sits below the root
// frappe package (frappe imports stack) and cannot construct Watchdogs
// itself.
type ReplicaSet struct {
	replicas []*replicaServer
}

// replicaServer is one slot: a fixed address and whatever server
// currently occupies it.
type replicaServer struct {
	id   string
	addr string // fixed across restarts

	mu  sync.Mutex
	srv *http.Server
	wg  sync.WaitGroup
}

// StartReplicas binds one loopback listener per ID and serves
// factory(i, id) on it. Callers must Close the set.
func StartReplicas(ids []string, factory func(i int, id string) http.Handler) (*ReplicaSet, error) {
	rs := &ReplicaSet{}
	for i, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			rs.Close()
			return nil, fmt.Errorf("stack: replica %s: listen: %w", id, err)
		}
		r := &replicaServer{id: id, addr: ln.Addr().String()}
		r.serveLocked(ln, factory(i, id))
		rs.replicas = append(rs.replicas, r)
	}
	return rs, nil
}

// serveLocked installs a server on ln; callers hold r.mu (or own r
// exclusively, as StartReplicas does).
func (r *replicaServer) serveLocked(ln net.Listener, h http.Handler) {
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	r.srv = srv
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		// ErrServerClosed (and the use-of-closed-listener error a Kill
		// provokes) are the normal teardown paths.
		_ = srv.Serve(ln)
	}()
}

// Len returns the replica count.
func (rs *ReplicaSet) Len() int { return len(rs.replicas) }

// ID returns replica i's identity.
func (rs *ReplicaSet) ID(i int) string { return rs.replicas[i].id }

// URL returns replica i's base URL; stable across Kill/Restart.
func (rs *ReplicaSet) URL(i int) string { return "http://" + rs.replicas[i].addr }

// Kill tears replica i down abruptly: the listener closes and every
// established connection is severed mid-flight, so clients see
// connection-refused / reset — not a graceful drain. Idempotent.
func (rs *ReplicaSet) Kill(i int) {
	r := rs.replicas[i]
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.srv != nil {
		_ = r.srv.Close()
		r.srv = nil
	}
	r.wg.Wait()
}

// Restart rebinds replica i's original port and serves h. The port was
// just freed by Kill, but the kernel may lag a moment releasing it, so
// the bind retries briefly.
func (rs *ReplicaSet) Restart(i int, h http.Handler) error {
	r := rs.replicas[i]
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.srv != nil {
		return fmt.Errorf("stack: replica %s still running; Kill it first", r.id)
	}
	var (
		ln  net.Listener
		err error
	)
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", r.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("stack: replica %s: rebind %s: %w", r.id, r.addr, err)
	}
	r.serveLocked(ln, h)
	return nil
}

// Close kills every replica.
func (rs *ReplicaSet) Close() {
	for i := range rs.replicas {
		rs.Kill(i)
	}
}
