package stack

import (
	"net/http"
	"strings"
	"testing"

	"frappe/internal/synth"
)

func TestStartServesAllServices(t *testing.T) {
	cfg := synth.TestConfig()
	cfg.Scale = 0.005
	w := synth.Generate(cfg)
	st, err := Start(w)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for name, url := range map[string]string{
		"graph":        st.GraphURL,
		"bitly":        st.BitlyURL,
		"wot":          st.WOTURL,
		"socialbakers": st.SocialBakersURL,
		"redirector":   st.RedirectorURL,
	} {
		if !strings.HasPrefix(url, "http://127.0.0.1:") {
			t.Errorf("%s URL = %q", name, url)
		}
		resp, err := http.Get(url + "/")
		if err != nil {
			t.Fatalf("%s unreachable: %v", name, err)
		}
		resp.Body.Close()
	}

	// The Graph API must actually serve this world's apps.
	graph, _, wotc, sb := st.Clients()
	liveID := ""
	for _, id := range w.BenignIDs {
		if _, err := w.Platform.Lookup(id); err == nil {
			liveID = id
			break
		}
	}
	if liveID == "" {
		t.Fatal("no live benign app")
	}
	s, err := graph.Summary(liveID)
	if err != nil || s.Name == "" {
		t.Errorf("graph Summary = %+v, %v", s, err)
	}
	if score, err := wotc.Score("apps.facebook.com"); err != nil || score < 80 {
		t.Errorf("WOT Score = %d, %v", score, err)
	}
	if _, err := sb.Rating(liveID); err != nil {
		// Not all benign apps are vetted; just exercise the endpoint.
		t.Logf("rating for %s: %v", liveID, err)
	}

}

func TestCloseIsIdempotentAndStopsServing(t *testing.T) {
	cfg := synth.TestConfig()
	cfg.Scale = 0.005
	w := synth.Generate(cfg)
	st, err := Start(w)
	if err != nil {
		t.Fatal(err)
	}
	url := st.GraphURL
	st.Close()
	st.Close() // double close must not panic
	if _, err := http.Get(url + "/"); err == nil {
		t.Error("server still reachable after Close")
	}
}
