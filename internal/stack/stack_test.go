package stack

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"frappe/internal/synth"
	"frappe/internal/telemetry"
)

func TestStartServesAllServices(t *testing.T) {
	cfg := synth.TestConfig()
	cfg.Scale = 0.005
	w := synth.Generate(cfg)
	st, err := Start(w)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for name, url := range map[string]string{
		"graph":        st.GraphURL,
		"bitly":        st.BitlyURL,
		"wot":          st.WOTURL,
		"socialbakers": st.SocialBakersURL,
		"redirector":   st.RedirectorURL,
	} {
		if !strings.HasPrefix(url, "http://127.0.0.1:") {
			t.Errorf("%s URL = %q", name, url)
		}
		resp, err := http.Get(url + "/")
		if err != nil {
			t.Fatalf("%s unreachable: %v", name, err)
		}
		resp.Body.Close()
	}

	// The Graph API must actually serve this world's apps.
	graph, _, wotc, sb := st.Clients()
	liveID := ""
	for _, id := range w.BenignIDs {
		if _, err := w.Platform.Lookup(id); err == nil {
			liveID = id
			break
		}
	}
	if liveID == "" {
		t.Fatal("no live benign app")
	}
	s, err := graph.Summary(context.Background(), liveID)
	if err != nil || s.Name == "" {
		t.Errorf("graph Summary = %+v, %v", s, err)
	}
	if score, err := wotc.Score(context.Background(), "apps.facebook.com"); err != nil || score < 80 {
		t.Errorf("WOT Score = %d, %v", score, err)
	}
	if _, err := sb.Rating(liveID); err != nil {
		// Not all benign apps are vetted; just exercise the endpoint.
		t.Logf("rating for %s: %v", liveID, err)
	}

}

// TestMiddlewareRecordsAndMetricsServe asserts every service's middleware
// counts requests into the stack's registry and that /metrics exposes them
// in Prometheus text format.
func TestMiddlewareRecordsAndMetricsServe(t *testing.T) {
	cfg := synth.TestConfig()
	cfg.Scale = 0.005
	w := synth.Generate(cfg)
	reg := telemetry.New()
	st, err := StartWith(w, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	services := map[string]string{
		"graph":        st.GraphURL,
		"bitly":        st.BitlyURL,
		"wot":          st.WOTURL,
		"socialbakers": st.SocialBakersURL,
		"redirector":   st.RedirectorURL,
	}
	for name, url := range services {
		for i := 0; i < 2; i++ {
			resp, err := http.Get(url + "/")
			if err != nil {
				t.Fatalf("%s unreachable: %v", name, err)
			}
			resp.Body.Close()
		}
	}
	for name := range services {
		var total uint64
		for _, code := range []string{"2xx", "3xx", "4xx", "5xx"} {
			total += reg.CounterValue("frappe_http_requests_total", name, code)
		}
		if total != 2 {
			t.Errorf("%s recorded %d requests, want 2", name, total)
		}
		if _, count := reg.HistogramSum("frappe_http_request_duration_seconds", name); count != 2 {
			t.Errorf("%s latency histogram count = %d, want 2", name, count)
		}
	}

	// The registry's /metrics handler serves what the middleware recorded.
	ms := httptest.NewServer(reg.Handler())
	defer ms.Close()
	resp, err := http.Get(ms.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE frappe_http_requests_total counter",
		"# TYPE frappe_http_request_duration_seconds histogram",
		`frappe_http_requests_total{service="graph",code=`,
		`frappe_http_request_duration_seconds_bucket{service="graph",le="+Inf"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}

func TestCloseIsIdempotentAndStopsServing(t *testing.T) {
	cfg := synth.TestConfig()
	cfg.Scale = 0.005
	w := synth.Generate(cfg)
	st, err := Start(w)
	if err != nil {
		t.Fatal(err)
	}
	url := st.GraphURL
	st.Close()
	st.Close() // double close must not panic
	if _, err := http.Get(url + "/"); err == nil {
		t.Error("server still reachable after Close")
	}
}
