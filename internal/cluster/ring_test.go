package cluster

import (
	"fmt"
	"testing"
)

// sampleKeys returns a deterministic key sample shaped like app IDs.
func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("2%014d", i*7919)
	}
	return keys
}

func ringWith(members int) *Ring {
	r := NewRing(0)
	for i := 0; i < members; i++ {
		r.Add(fmt.Sprintf("w%d", i+1))
	}
	return r
}

// TestRingDistributionUniformity: key counts per member stay near n/k for
// 1, 3 and 8 members — a chi-square-style bound plus a hard cap on any
// single member's skew. Everything is deterministic (fnv64a over a fixed
// sample), so the thresholds are exact regression guards, not statistics.
func TestRingDistributionUniformity(t *testing.T) {
	keys := sampleKeys(20000)
	for _, k := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("%d-members", k), func(t *testing.T) {
			r := ringWith(k)
			counts := make(map[string]int, k)
			for _, key := range keys {
				owner := r.Owner(key)
				if owner == "" {
					t.Fatal("empty owner on a populated ring")
				}
				counts[owner]++
			}
			if len(counts) != k {
				t.Fatalf("only %d of %d members own keys: %v", len(counts), k, counts)
			}
			expected := float64(len(keys)) / float64(k)
			chi2 := 0.0
			for member, n := range counts {
				d := float64(n) - expected
				chi2 += d * d / expected
				if ratio := float64(n) / expected; ratio < 0.70 || ratio > 1.30 {
					t.Errorf("member %s owns %d keys, %.2fx the fair share", member, n, ratio)
				}
			}
			// 128 vnodes/member puts the per-member share spread around
			// ±10%, which for 20k keys lands chi2 well under this; a broken
			// hash or sort sends it orders of magnitude higher.
			if chi2 > 600 {
				t.Errorf("chi2 = %.1f across %d members; distribution badly skewed: %v", chi2, k, counts)
			}
			t.Logf("%d members: chi2 = %.1f, counts = %v", k, chi2, counts)
		})
	}
}

// TestRingMinimalRemap: removing one of N members remaps exactly the keys
// it owned — every other key keeps its owner — and that slice is ~1/N of
// the sample.
func TestRingMinimalRemap(t *testing.T) {
	keys := sampleKeys(10000)
	for _, k := range []int{3, 8} {
		t.Run(fmt.Sprintf("%d-members", k), func(t *testing.T) {
			r := ringWith(k)
			before := make(map[string]string, len(keys))
			removed := "w2"
			owned := 0
			for _, key := range keys {
				before[key] = r.Owner(key)
				if before[key] == removed {
					owned++
				}
			}
			r.Remove(removed)
			changed := 0
			for _, key := range keys {
				after := r.Owner(key)
				if after == removed {
					t.Fatalf("key %s still owned by removed member", key)
				}
				if after != before[key] {
					if before[key] != removed {
						t.Fatalf("key %s moved %s -> %s though neither is the removed member",
							key, before[key], after)
					}
					changed++
				}
			}
			if changed != owned {
				t.Errorf("%d keys remapped, but the removed member owned %d", changed, owned)
			}
			frac := float64(changed) / float64(len(keys))
			fair := 1.0 / float64(k)
			if frac < fair/2 || frac > fair*2 {
				t.Errorf("remapped fraction %.3f far from fair share %.3f", frac, fair)
			}
			t.Logf("%d members: removing one remapped %.1f%% (fair %.1f%%)",
				k, 100*frac, 100*fair)
		})
	}
}

// TestRingSequence: the fail-over order starts at the owner, visits every
// member exactly once, and is stable for a fixed membership.
func TestRingSequence(t *testing.T) {
	r := ringWith(5)
	for _, key := range sampleKeys(50) {
		seq := r.Sequence(key)
		if len(seq) != 5 {
			t.Fatalf("sequence for %s has %d members, want 5: %v", key, len(seq), seq)
		}
		if seq[0] != r.Owner(key) {
			t.Fatalf("sequence for %s starts at %s, owner is %s", key, seq[0], r.Owner(key))
		}
		seen := make(map[string]bool, len(seq))
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("sequence for %s repeats %s: %v", key, m, seq)
			}
			seen[m] = true
		}
		again := r.Sequence(key)
		for i := range seq {
			if seq[i] != again[i] {
				t.Fatalf("sequence for %s unstable: %v vs %v", key, seq, again)
			}
		}
	}
}

// TestRingShares: exact arc-length shares sum to 1 and track the sampled
// key distribution.
func TestRingShares(t *testing.T) {
	r := ringWith(3)
	shares := r.Shares()
	if len(shares) != 3 {
		t.Fatalf("shares for %d members: %v", len(shares), shares)
	}
	total := 0.0
	for member, s := range shares {
		if s <= 0 || s >= 1 {
			t.Errorf("member %s share %.4f outside (0,1)", member, s)
		}
		total += s
	}
	if total < 0.9999 || total > 1.0001 {
		t.Errorf("shares sum to %.6f, want 1", total)
	}
	// The sampled ownership fraction should track the exact arc share.
	keys := sampleKeys(20000)
	counts := make(map[string]float64, 3)
	for _, key := range keys {
		counts[r.Owner(key)] += 1.0 / float64(len(keys))
	}
	for member, s := range shares {
		if d := counts[member] - s; d > 0.02 || d < -0.02 {
			t.Errorf("member %s: sampled fraction %.4f vs arc share %.4f", member, counts[member], s)
		}
	}
}

// TestRingEdgeCases: empty ring, idempotent add, absent remove,
// single-member ownership.
func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0)
	if got := r.Owner("anything"); got != "" {
		t.Errorf("empty ring owner = %q", got)
	}
	if seq := r.Sequence("anything"); seq != nil {
		t.Errorf("empty ring sequence = %v", seq)
	}
	r.Remove("ghost") // no-op
	r.Add("only")
	r.Add("only") // idempotent
	if got := r.Size(); got != 1 {
		t.Fatalf("size after duplicate add = %d", got)
	}
	for _, key := range sampleKeys(10) {
		if got := r.Owner(key); got != "only" {
			t.Fatalf("single-member ring routed %s to %q", key, got)
		}
	}
	if s := r.Shares()["only"]; s < 0.9999 {
		t.Errorf("single member share = %.4f, want 1", s)
	}
}
