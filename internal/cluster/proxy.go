package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"frappe/internal/httpx"
)

// The front-door API. /check and /rank are proxied onto the ring;
// everything else is cluster administration:
//
//	GET  /check?app=ID     routed to the app's ring owner, failing over
//	                       clockwise on transport error / 5xx / open
//	                       breaker; the winning member is named in the
//	                       X-Cluster-Member response header
//	GET  /rank?app=A&app=B routed by the first app ID (one member ranks
//	                       the whole batch; its verdict cache covers its
//	                       own partition best)
//	GET  /model            proxied to the first healthy member
//	POST /model/reload     fanned out to every member; 200 only when all
//	                       reachable members settle on the same version
//	GET  /cluster          membership JSON: health, ring shares, routed
//	                       counts, per-member model versions
//	GET  /metrics          aggregated member metrics re-labelled with
//	                       member="<id>", plus the front door's own
//	                       registry (metrics.go)
//	GET  /healthz          the LB's own liveness (503 while draining)

// routeAttempt records one member try for the error body.
type routeAttempt struct {
	Member string `json:"member"`
	Reason string `json:"reason"`
}

// Handler returns the front-door HTTP handler. Wrap it in
// telemetry.Middleware for request metrics and the lb-side trace root.
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		if c.draining.Load() {
			http.Error(rw, "draining", http.StatusServiceUnavailable)
			return
		}
		rw.WriteHeader(http.StatusOK)
		rw.Write([]byte("ok"))
	})
	mux.HandleFunc("/check", func(rw http.ResponseWriter, r *http.Request) {
		app := r.URL.Query().Get("app")
		if app == "" {
			http.Error(rw, `{"error":"missing app"}`, http.StatusBadRequest)
			return
		}
		c.route(rw, r, app)
	})
	mux.HandleFunc("/rank", func(rw http.ResponseWriter, r *http.Request) {
		ids := r.URL.Query()["app"]
		if len(ids) == 0 {
			http.Error(rw, `{"error":"missing app parameters"}`, http.StatusBadRequest)
			return
		}
		c.route(rw, r, ids[0])
	})
	mux.HandleFunc("/model", func(rw http.ResponseWriter, r *http.Request) {
		// No key to partition by; any healthy member's answer is
		// authoritative once the fleet converges on CURRENT.
		healthy := c.HealthyMembers()
		if len(healthy) == 0 {
			writeJSON(rw, http.StatusServiceUnavailable, map[string]string{"error": "no healthy members"})
			return
		}
		c.routeVia(rw, r, []string{healthy[0]})
	})
	mux.HandleFunc("/model/reload", c.handleReloadFanout)
	mux.HandleFunc("/cluster", c.handleClusterInfo)
	mux.HandleFunc("/metrics", c.handleAggregatedMetrics)
	return mux
}

// route proxies r to key's ring sequence.
func (c *Cluster) route(rw http.ResponseWriter, r *http.Request, key string) {
	c.routeVia(rw, r, c.ring.Sequence(key))
}

// routeVia walks the member sequence: healthy members first, and — when
// every member in the sequence is marked down — one last-resort pass over
// all of them, because an LB with a stale health view should degrade to
// trying rather than refusing. A transport error marks the member down
// immediately (the prober brings it back); a 5xx answer is kept as the
// response of last resort so the client sees the replica's own error
// body, not a synthetic one, when nobody can do better.
func (c *Cluster) routeVia(rw http.ResponseWriter, r *http.Request, seq []string) {
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.RouteTimeout)
	defer cancel()

	candidates := make([]*memberState, 0, len(seq))
	for _, id := range seq {
		if st := c.state(id); st != nil && st.healthy.Load() {
			candidates = append(candidates, st)
		}
	}
	lastResort := len(candidates) == 0
	if lastResort {
		for _, id := range seq {
			if st := c.state(id); st != nil {
				candidates = append(candidates, st)
			}
		}
	}

	var (
		last       *httpx.Response
		lastMember string
		attempts   []routeAttempt
	)
	uri := r.URL.RequestURI()
walk:
	for _, st := range candidates {
		if ctx.Err() != nil {
			break
		}
		target := st.member.URL + uri
		resp, err := c.client.Get(ctx, target)
		switch {
		case errors.Is(err, httpx.ErrCircuitOpen):
			// The member's breaker is open: skip without touching its
			// health — the breaker half-opens on its own schedule.
			c.failoverTotal.With("breaker_open").Inc()
			attempts = append(attempts, routeAttempt{st.member.ID, "breaker_open"})
			continue
		case err != nil:
			if ctx.Err() != nil {
				// The client's own deadline died mid-attempt; nothing the
				// next member could fix.
				attempts = append(attempts, routeAttempt{st.member.ID, "canceled"})
				break walk
			}
			c.failoverTotal.With("error").Inc()
			attempts = append(attempts, routeAttempt{st.member.ID, err.Error()})
			if !lastResort {
				c.markUnhealthy(st, err.Error())
			}
			continue
		case resp.StatusCode >= 500:
			// The member answered but unhealthily (its own upstream 502,
			// breaker 503, ...). Another replica may hold a cached verdict
			// or a closed breaker; keep this answer as the fallback.
			c.failoverTotal.With("5xx").Inc()
			attempts = append(attempts, routeAttempt{st.member.ID, resp.Status})
			last, lastMember = resp, st.member.ID
			continue
		}
		st.routed.Add(1)
		c.routedTotal.With(st.member.ID).Inc()
		writeProxied(rw, resp, st.member.ID)
		return
	}
	if last != nil {
		c.state(lastMember).routed.Add(1)
		c.routedTotal.With(lastMember).Inc()
		writeProxied(rw, last, lastMember)
		return
	}
	slog.Default().WarnContext(ctx, "cluster: no member answered", "path", r.URL.Path, "attempts", len(attempts))
	writeJSON(rw, http.StatusBadGateway, map[string]interface{}{
		"error":    "no cluster member answered",
		"attempts": attempts,
	})
}

// writeProxied relays a member's response to the client.
func writeProxied(rw http.ResponseWriter, resp *httpx.Response, member string) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		rw.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		rw.Header().Set("Retry-After", ra)
	}
	rw.Header().Set("X-Cluster-Member", member)
	rw.WriteHeader(resp.StatusCode)
	rw.Write(resp.Body)
}

// reloadResult is one member's /model/reload outcome in the fan-out body.
type reloadResult struct {
	Member  string `json:"member"`
	Status  int    `json:"status,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	Serving string `json:"serving,omitempty"`
	Error   string `json:"error,omitempty"`
}

// handleReloadFanout POSTs /model/reload to every member in parallel, so
// a registry publish converges across the fleet in one round instead of
// waiting out each replica's poll interval. 200 only when every member
// that answered settled on one model version and none failed.
func (c *Cluster) handleReloadFanout(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, `{"error":"POST only"}`, http.StatusMethodNotAllowed)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.RouteTimeout)
	defer cancel()

	c.mu.RLock()
	states := make([]*memberState, 0, len(c.states))
	for _, st := range c.states {
		states = append(states, st)
	}
	c.mu.RUnlock()

	results := make([]reloadResult, len(states))
	var wg sync.WaitGroup
	for i, st := range states {
		wg.Add(1)
		go func(i int, st *memberState) {
			defer wg.Done()
			res := reloadResult{Member: st.member.ID}
			resp, err := c.client.Post(ctx, st.member.URL+"/model/reload", "application/json", nil)
			if err != nil {
				res.Error = err.Error()
			} else {
				res.Status = resp.StatusCode
				var body struct {
					Outcome string `json:"outcome"`
					Serving struct {
						Version int    `json:"version"`
						SHA256  string `json:"sha256"`
					} `json:"serving"`
					Error string `json:"error"`
				}
				if jerr := json.Unmarshal(resp.Body, &body); jerr == nil {
					res.Outcome = body.Outcome
					res.Error = body.Error
					res.Serving = modelID(body.Serving.Version, body.Serving.SHA256)
				}
			}
			results[i] = res
		}(i, st)
	}
	wg.Wait()

	status := http.StatusOK
	versions := make(map[string]struct{})
	for _, res := range results {
		if res.Error != "" || res.Status >= 400 {
			status = http.StatusBadGateway
		}
		if res.Serving != "" {
			versions[res.Serving] = struct{}{}
		}
	}
	if len(versions) > 1 {
		status = http.StatusBadGateway
	}
	writeJSON(rw, status, map[string]interface{}{
		"members":   results,
		"converged": status == http.StatusOK && len(versions) == 1,
	})
}

// modelID mirrors modelreg.Manifest.ModelID without importing it: version
// number plus an 8-hex checksum prefix.
func modelID(version int, sha string) string {
	if sha == "" {
		return ""
	}
	if len(sha) > 8 {
		sha = sha[:8]
	}
	return fmt.Sprintf("v%d-%s", version, sha)
}

// memberInfo is one member's row in the /cluster document.
type memberInfo struct {
	ID           string  `json:"id"`
	URL          string  `json:"url"`
	Healthy      bool    `json:"healthy"`
	LastError    string  `json:"last_error,omitempty"`
	Routed       uint64  `json:"routed"`
	RingShare    float64 `json:"ring_share"`
	ModelVersion string  `json:"model_version,omitempty"`
}

// handleClusterInfo reports membership, ring ownership and per-member
// serving model versions (a live, best-effort /model poll of healthy
// members — the convergence view the hot-swap e2e asserts on).
func (c *Cluster) handleClusterInfo(rw http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.ProbeTimeout)
	defer cancel()
	shares := c.ring.Shares()

	c.mu.RLock()
	states := make([]*memberState, 0, len(c.states))
	for _, st := range c.states {
		states = append(states, st)
	}
	c.mu.RUnlock()

	infos := make([]memberInfo, len(states))
	var wg sync.WaitGroup
	for i, st := range states {
		wg.Add(1)
		go func(i int, st *memberState) {
			defer wg.Done()
			info := memberInfo{
				ID:        st.member.ID,
				URL:       st.member.URL,
				Healthy:   st.healthy.Load(),
				Routed:    st.routed.Load(),
				RingShare: shares[st.member.ID],
			}
			if s, _ := st.lastErr.Load().(string); s != "" {
				info.LastError = s
			}
			if info.Healthy {
				if resp, err := c.client.Get(ctx, st.member.URL+"/model"); err == nil && resp.StatusCode == http.StatusOK {
					var body struct {
						ModelID string `json:"model_id"`
					}
					if json.Unmarshal(resp.Body, &body) == nil {
						info.ModelVersion = body.ModelID
					}
				}
			}
			infos[i] = info
		}(i, st)
	}
	wg.Wait()
	sortMemberInfos(infos)

	writeJSON(rw, http.StatusOK, map[string]interface{}{
		"members": infos,
		"healthy": len(c.HealthyMembers()),
	})
}

func sortMemberInfos(infos []memberInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].ID < infos[j-1].ID; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

func writeJSON(rw http.ResponseWriter, status int, v interface{}) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	if err := json.NewEncoder(rw).Encode(v); err != nil {
		slog.Default().Error("cluster: encoding response", "err", err)
	}
}

// WaitHealthy is a test/startup convenience: it blocks until at least n
// members are healthy or the deadline passes, reporting success.
func (c *Cluster) WaitHealthy(ctx context.Context, n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if len(c.HealthyMembers()) >= n {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(10 * time.Millisecond):
		}
	}
	return len(c.HealthyMembers()) >= n
}
