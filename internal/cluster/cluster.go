package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"frappe/internal/httpx"
	"frappe/internal/telemetry"
)

// Defaults for Config's zero fields.
const (
	// DefaultProbeInterval is the /healthz poll cadence.
	DefaultProbeInterval = 500 * time.Millisecond
	// DefaultProbeTimeout bounds one health probe end to end.
	DefaultProbeTimeout = 2 * time.Second
	// DefaultRouteTimeout bounds one proxied request across all fail-over
	// attempts.
	DefaultRouteTimeout = 15 * time.Second
	// DefaultUnhealthyAfter is how many consecutive probe failures mark a
	// member unhealthy.
	DefaultUnhealthyAfter = 1
	// DefaultHealthyAfter is how many consecutive probe successes bring an
	// unhealthy member back.
	DefaultHealthyAfter = 1
)

// Member identifies one watchdogd replica.
type Member struct {
	// ID is the member's stable identity on the ring. It must not change
	// across restarts, or the keyspace reshuffles.
	ID string
	// URL is the replica's serving base URL (scheme://host:port).
	URL string
}

// Config parameterises a Cluster.
type Config struct {
	// Members is the static fleet. At least one is required.
	Members []Member
	// VirtualNodes per member on the ring (0 = DefaultVirtualNodes).
	VirtualNodes int
	// ProbeInterval and ProbeTimeout shape the health poller.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// UnhealthyAfter / HealthyAfter are the consecutive-probe thresholds
	// for marking a member down / back up (0 = defaults; both 1).
	UnhealthyAfter int
	HealthyAfter   int
	// RouteTimeout bounds one proxied request, fail-over attempts
	// included (0 = DefaultRouteTimeout).
	RouteTimeout time.Duration
	// MemberTimeout bounds one attempt against one member (0 = httpx
	// default).
	MemberTimeout time.Duration
	// BreakerThreshold / BreakerCooldown tune the per-member circuit
	// breaker (0 = httpx defaults, negative threshold disables).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Telemetry is the registry the cluster records into; nil means the
	// process default.
	Telemetry *telemetry.Registry
	// Transport is a test seam for the member client.
	Transport http.RoundTripper
}

// memberState is one member's live routing state.
type memberState struct {
	member  Member
	healthy atomic.Bool
	// consecutive probe outcomes, guarded by the prober goroutine (probes
	// for one member never run concurrently).
	consecUp   int
	consecDown int
	// lastErr is the most recent probe or routing failure ("" when
	// healthy), for /cluster.
	lastErr atomic.Value // string
	// routed counts requests this member served through the proxy.
	routed atomic.Uint64
}

// Cluster is the front-door state: ring, member table, health prober and
// the proxy handler (proxy.go). Construct with New, then Start the
// prober; Handler serves the front-door API.
type Cluster struct {
	cfg    Config
	ring   *Ring
	client *httpx.Client
	reg    *telemetry.Registry

	mu     sync.RWMutex
	states map[string]*memberState

	draining atomic.Bool

	healthyGauge  *telemetry.Gauge
	memberHealthy *telemetry.GaugeVec
	ringShare     *telemetry.GaugeVec
	routedTotal   *telemetry.CounterVec
	failoverTotal *telemetry.CounterVec
	probeTotal    *telemetry.CounterVec
}

// New validates cfg and builds the cluster. Members are considered
// healthy until the first probe says otherwise, so a front door that
// starts before its first poll completes still routes.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("cluster: no members configured")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.RouteTimeout <= 0 {
		cfg.RouteTimeout = DefaultRouteTimeout
	}
	if cfg.UnhealthyAfter <= 0 {
		cfg.UnhealthyAfter = DefaultUnhealthyAfter
	}
	if cfg.HealthyAfter <= 0 {
		cfg.HealthyAfter = DefaultHealthyAfter
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.Default()
	}
	if cfg.Transport == nil {
		// The default transport keeps only 2 idle connections per host —
		// a proxy fanning a whole client population into 3 member hosts
		// would churn TCP handshakes under any real concurrency.
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = 64
		cfg.Transport = t
	}
	c := &Cluster{
		cfg:    cfg,
		ring:   NewRing(cfg.VirtualNodes),
		reg:    reg,
		states: make(map[string]*memberState, len(cfg.Members)),
		// One httpx client covers the whole fleet: members live on
		// distinct host:ports, so the per-host circuit breaker is a
		// per-member breaker for free. MaxAttempts is 1 because retry is
		// the ring walk's job — re-hammering a dead member would only
		// delay the fail-over.
		client: httpx.New(httpx.Config{
			Service:          "cluster",
			Timeout:          cfg.MemberTimeout,
			MaxAttempts:      -1,
			BreakerThreshold: cfg.BreakerThreshold,
			BreakerCooldown:  cfg.BreakerCooldown,
			Telemetry:        reg,
			Transport:        cfg.Transport,
			// The front door's singleflight would collapse concurrent
			// identical /check fetches; the replicas already singleflight
			// per app, and collapsing here would serialise distinct
			// clients on one member connection. Keep it off.
			DisableSingleflight: true,
		}),
		healthyGauge: reg.Gauge("frappe_cluster_members_healthy",
			"Members currently considered healthy by the front door.").With(),
		memberHealthy: reg.Gauge("frappe_cluster_member_healthy",
			"Per-member health as seen by the front door (1 healthy, 0 down).", "member"),
		ringShare: reg.Gauge("frappe_cluster_ring_share",
			"Fraction of the consistent-hash keyspace owned by each member.", "member"),
		routedTotal: reg.Counter("frappe_cluster_requests_total",
			"Requests proxied to each member by the front door.", "member"),
		failoverTotal: reg.Counter("frappe_cluster_failover_total",
			"Fail-overs to the ring's next member, by reason.", "reason"),
		probeTotal: reg.Counter("frappe_cluster_probe_total",
			"Health probes, by member and result.", "member", "result"),
	}
	seen := make(map[string]struct{}, len(cfg.Members))
	for _, m := range cfg.Members {
		if m.ID == "" || m.URL == "" {
			return nil, fmt.Errorf("cluster: member needs both id and url (got id=%q url=%q)", m.ID, m.URL)
		}
		if _, dup := seen[m.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate member id %q", m.ID)
		}
		seen[m.ID] = struct{}{}
		st := &memberState{member: m}
		st.healthy.Store(true)
		st.lastErr.Store("")
		c.states[m.ID] = st
		c.ring.Add(m.ID)
		c.memberHealthy.With(m.ID).Set(1)
	}
	// Materialize the fail-over reason series at zero so the family is
	// always present in the exposition — a dashboard alerting on its rate
	// must see 0, not an absent series, on a healthy fleet.
	for _, reason := range []string{"error", "5xx", "breaker_open"} {
		c.failoverTotal.With(reason)
	}
	c.healthyGauge.Set(float64(len(cfg.Members)))
	for id, share := range c.ring.Shares() {
		c.ringShare.With(id).Set(share)
	}
	return c, nil
}

// Start launches the health prober; it stops when ctx is cancelled.
func (c *Cluster) Start(ctx context.Context) {
	go c.probeLoop(ctx)
}

// SetDraining flips the front door's own /healthz (503 while draining),
// so an upstream of the LB can de-route it before shutdown — the same
// protocol the LB expects of its members.
func (c *Cluster) SetDraining(v bool) { c.draining.Store(v) }

// state returns the member's routing state (nil for unknown IDs).
func (c *Cluster) state(id string) *memberState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.states[id]
}

// HealthyMembers returns the IDs currently routable, sorted.
func (c *Cluster) HealthyMembers() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for id, st := range c.states {
		if st.healthy.Load() {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// markUnhealthy transitions a member down (idempotent) and records why.
func (c *Cluster) markUnhealthy(st *memberState, reason string) {
	st.lastErr.Store(reason)
	if st.healthy.CompareAndSwap(true, false) {
		c.memberHealthy.With(st.member.ID).Set(0)
		c.healthyGauge.Add(-1)
	}
}

// markHealthy transitions a member up (idempotent).
func (c *Cluster) markHealthy(st *memberState) {
	st.lastErr.Store("")
	if st.healthy.CompareAndSwap(false, true) {
		c.memberHealthy.With(st.member.ID).Set(1)
		c.healthyGauge.Add(1)
	}
}

// probeLoop polls every member's /healthz at the configured cadence.
func (c *Cluster) probeLoop(ctx context.Context) {
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		c.probeAll(ctx)
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// probeAll probes the fleet once, members in parallel.
func (c *Cluster) probeAll(ctx context.Context) {
	c.mu.RLock()
	states := make([]*memberState, 0, len(c.states))
	for _, st := range c.states {
		states = append(states, st)
	}
	c.mu.RUnlock()
	var wg sync.WaitGroup
	for _, st := range states {
		wg.Add(1)
		go func(st *memberState) {
			defer wg.Done()
			c.probe(ctx, st)
		}(st)
	}
	wg.Wait()
}

// probe checks one member's /healthz. The probe uses a plain http.Client
// rather than the routing client: a probe must reach the member even
// while its routing breaker is open — the probe is how the breaker's
// verdict gets revisited from the membership side.
func (c *Cluster) probe(ctx context.Context, st *memberState) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	ok, detail := probeHealthz(pctx, st.member.URL, c.cfg.Transport)
	if ok {
		c.probeTotal.With(st.member.ID, "ok").Inc()
		st.consecDown = 0
		st.consecUp++
		if st.consecUp >= c.cfg.HealthyAfter {
			c.markHealthy(st)
		}
		return
	}
	c.probeTotal.With(st.member.ID, "fail").Inc()
	st.consecUp = 0
	st.consecDown++
	if st.consecDown >= c.cfg.UnhealthyAfter {
		c.markUnhealthy(st, detail)
	}
}

// probeHealthz performs one GET /healthz; any non-200 (a draining
// member's 503 included) or transport failure counts as down.
func probeHealthz(ctx context.Context, baseURL string, transport http.RoundTripper) (bool, string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return false, err.Error()
	}
	client := &http.Client{Transport: transport}
	resp, err := client.Do(req)
	if err != nil {
		return false, err.Error()
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Sprintf("healthz status %d", resp.StatusCode)
	}
	return true, ""
}
