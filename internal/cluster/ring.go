// Package cluster turns a fleet of watchdogd replicas into one serving
// tier: a consistent-hash ring partitions the app-ID keyspace across
// members (so each replica's verdict cache and singleflight stay hot for
// its slice), a health prober tracks which members may be routed to, and
// a front-door proxy (cmd/frappelb) fails requests over along the ring
// when a member dies mid-flight.
//
// The paper's deployment story assumes exactly this shape: MyPageKeeper
// ran a fleet of crawler/classifier workers behind one front end (§2.2),
// and the watchdog §5.1 envisions has to answer "heavy traffic from
// millions of users" — more than one process can absorb. Everything here
// is stdlib-only and built from the repo's existing coordination
// primitives: internal/httpx for breaker-aware member transport, the
// model registry as the shared model-coordination point, and the
// ingestion WAL for replica bootstrap.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVirtualNodes is the per-member vnode count. 128 points per
// member keeps the max/min ownership spread under ~15% for small fleets
// while the ring stays tiny (8 members = 1024 points).
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring over member IDs. Keys (app IDs) map to
// the member owning the first vnode clockwise of the key's hash; removing
// a member remaps only the keys it owned (~1/N of the keyspace), which is
// what keeps the surviving replicas' verdict caches hot across a member
// loss. All methods are safe for concurrent use.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	hashes  []uint64          // sorted vnode positions
	owners  []string          // owners[i] owns hashes[i]
	members map[string]struct{}
}

// NewRing returns an empty ring with the given vnode count per member
// (<= 0 means DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// hashKey positions a routing key (or vnode label) on the ring. Raw
// fnv64a clusters badly for short near-identical inputs (vnode labels
// like "w1#0".."w1#127" land far from uniform, skewing member shares by
// 4x and more), so the output is pushed through a 64-bit mixing
// finalizer; the finalizer is bijective, so it costs nothing in
// collision behaviour.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmix64(h.Sum64())
}

// fmix64 is the MurmurHash3 avalanche finalizer.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a member's vnodes. Adding an existing member is a no-op.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	for v := 0; v < r.vnodes; v++ {
		r.hashes = append(r.hashes, hashKey(member+"#"+strconv.Itoa(v)))
		r.owners = append(r.owners, member)
	}
	r.sortLocked()
}

// Remove deletes a member and its vnodes. Removing an absent member is a
// no-op.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	hashes := r.hashes[:0]
	owners := r.owners[:0]
	for i, o := range r.owners {
		if o != member {
			hashes = append(hashes, r.hashes[i])
			owners = append(owners, o)
		}
	}
	r.hashes, r.owners = hashes, owners
}

// sortLocked re-sorts the parallel hash/owner slices after an Add.
func (r *Ring) sortLocked() {
	idx := make([]int, len(r.hashes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return r.hashes[idx[a]] < r.hashes[idx[b]] })
	hashes := make([]uint64, len(r.hashes))
	owners := make([]string, len(r.owners))
	for i, j := range idx {
		hashes[i] = r.hashes[j]
		owners[i] = r.owners[j]
	}
	r.hashes, r.owners = hashes, owners
}

// Members returns the member IDs on the ring, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Owner returns the member owning key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 {
		return ""
	}
	return r.owners[r.searchLocked(hashKey(key))]
}

// searchLocked finds the first vnode clockwise of h (wrapping).
func (r *Ring) searchLocked(h uint64) int {
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		return 0
	}
	return i
}

// Sequence returns every member in ring-walk order starting at key's
// owner, deduplicated — the fail-over order for a request: try the owner,
// then the next distinct member clockwise, and so on. Deterministic for a
// fixed membership.
func (r *Ring) Sequence(key string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	seen := make(map[string]struct{}, len(r.members))
	start := r.searchLocked(hashKey(key))
	for i := 0; i < len(r.owners) && len(out) < len(r.members); i++ {
		o := r.owners[(start+i)%len(r.owners)]
		if _, dup := seen[o]; !dup {
			seen[o] = struct{}{}
			out = append(out, o)
		}
	}
	return out
}

// Shares returns each member's exact fraction of the hash keyspace (arc
// length of the vnodes it owns), summing to 1 for a non-empty ring — the
// per-member ring stat the front door exposes.
func (r *Ring) Shares() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	shares := make(map[string]float64, len(r.members))
	n := len(r.hashes)
	if n == 0 {
		return shares
	}
	const whole = float64(1 << 63) * 2 // 2^64 as float64
	for i := 0; i < n; i++ {
		// hashes[i]'s owner covers the arc (hashes[i-1], hashes[i]].
		prev := r.hashes[(i+n-1)%n]
		arc := r.hashes[i] - prev // wraps correctly in uint64 arithmetic
		if n == 1 {
			arc = ^uint64(0)
		}
		shares[r.owners[i]] += float64(arc) / whole
	}
	return shares
}
