package cluster

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Aggregated /metrics: the front door scrapes each healthy member's
// /metrics (Prometheus text format), re-emits every series with a
// member="<id>" label spliced in, and appends its own registry
// (frappe_cluster_* families included) — so one scrape of the LB sees the
// whole fleet, series distinguishable by member.

// handleAggregatedMetrics serves the combined exposition. Member scrapes
// run in parallel and are best-effort: an unreachable member contributes
// a comment line, not an error — the scrape must not go dark because one
// replica is mid-restart.
func (c *Cluster) handleAggregatedMetrics(rw http.ResponseWriter, r *http.Request) {
	c.mu.RLock()
	states := make([]*memberState, 0, len(c.states))
	for _, st := range c.states {
		states = append(states, st)
	}
	c.mu.RUnlock()
	sort.Slice(states, func(i, j int) bool { return states[i].member.ID < states[j].member.ID })

	type scrape struct {
		body []byte
		err  error
	}
	scrapes := make([]scrape, len(states))
	var wg sync.WaitGroup
	for i, st := range states {
		if !st.healthy.Load() {
			scrapes[i].err = fmt.Errorf("unhealthy")
			continue
		}
		wg.Add(1)
		go func(i int, st *memberState) {
			defer wg.Done()
			resp, err := c.client.Get(r.Context(), st.member.URL+"/metrics")
			switch {
			case err != nil:
				scrapes[i].err = err
			case resp.StatusCode != http.StatusOK:
				scrapes[i].err = fmt.Errorf("status %d", resp.StatusCode)
			default:
				scrapes[i].body = resp.Body
			}
		}(i, st)
	}
	wg.Wait()

	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var buf bytes.Buffer
	// The LB's own registry leads, and its family names seed the HELP/TYPE
	// dedup set so member scrapes of the same families (e.g. the shared
	// frappe_http_* middleware series) do not repeat the headers.
	_ = c.reg.WritePrometheus(&buf)
	seen := familiesIn(buf.Bytes())
	for i, st := range states {
		if scrapes[i].err != nil {
			fmt.Fprintf(&buf, "# member %s not scraped: %s\n", st.member.ID, scrapes[i].err)
			continue
		}
		relabel(&buf, scrapes[i].body, st.member.ID, seen)
	}
	rw.Write(buf.Bytes())
}

// familiesIn collects the HELP/TYPE announcements already present in
// rendered exposition text, keyed by comment kind + family name (a
// family's HELP and TYPE lines are distinct and both must survive dedup).
func familiesIn(text []byte) map[string]bool {
	seen := make(map[string]bool)
	sc := bufio.NewScanner(bytes.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if key, ok := commentKey(line); ok {
			seen[key] = true
		}
	}
	return seen
}

// commentKey extracts a dedup key ("HELP name" / "TYPE name") from a
// "# HELP name ..." or "# TYPE name ..." line.
func commentKey(line string) (string, bool) {
	for _, kind := range []string{"HELP", "TYPE"} {
		if rest, ok := strings.CutPrefix(line, "# "+kind+" "); ok {
			name := rest
			if i := strings.IndexByte(rest, ' '); i > 0 {
				name = rest[:i]
			}
			return kind + " " + name, true
		}
	}
	return "", false
}

// relabel rewrites one member's exposition text, splicing member="<id>"
// into every series line and skipping HELP/TYPE comments for families a
// previous block already announced. Metric lines are `name value`,
// `name{labels} value`, or histogram `name_bucket{...,le="x"} value` —
// in every case the splice point is right after the name.
func relabel(buf *bytes.Buffer, text []byte, member string, seen map[string]bool) {
	memberLabel := `member="` + member + `"`
	sc := bufio.NewScanner(bytes.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if key, ok := commentKey(line); ok {
				if seen[key] {
					continue
				}
				seen[key] = true
			}
			buf.WriteString(line)
			buf.WriteByte('\n')
			continue
		}
		brace := strings.IndexByte(line, '{')
		space := strings.IndexByte(line, ' ')
		switch {
		case brace >= 0 && (space < 0 || brace < space):
			// name{labels} value → name{member="id",labels} value
			buf.WriteString(line[:brace+1])
			buf.WriteString(memberLabel)
			if brace+1 < len(line) && line[brace+1] != '}' {
				buf.WriteByte(',')
			}
			buf.WriteString(line[brace+1:])
		case space > 0:
			// name value → name{member="id"} value
			buf.WriteString(line[:space])
			buf.WriteByte('{')
			buf.WriteString(memberLabel)
			buf.WriteByte('}')
			buf.WriteString(line[space:])
		default:
			buf.WriteString(line)
		}
		buf.WriteByte('\n')
	}
}
