package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"frappe/internal/telemetry"
)

// fakeMember is a scripted replica: it answers /check with its own id,
// /healthz from a flippable switch, and arbitrary handlers for the rest.
type fakeMember struct {
	id      string
	srv     *httptest.Server
	healthy atomic.Bool
	fail5xx atomic.Bool
	served  atomic.Int64
}

func newFakeMember(t *testing.T, id string) *fakeMember {
	t.Helper()
	m := &fakeMember{id: id}
	m.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		if !m.healthy.Load() {
			http.Error(rw, "draining", http.StatusServiceUnavailable)
			return
		}
		rw.Write([]byte("ok"))
	})
	mux.HandleFunc("/check", func(rw http.ResponseWriter, r *http.Request) {
		if m.fail5xx.Load() {
			http.Error(rw, `{"error":"upstream"}`, http.StatusBadGateway)
			return
		}
		m.served.Add(1)
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, `{"member":%q,"app":%q}`, m.id, r.URL.Query().Get("app"))
	})
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(rw, "# HELP fake_requests_total Requests served.\n"+
			"# TYPE fake_requests_total counter\n"+
			"fake_requests_total %d\n"+
			"fake_labeled{path=\"/check\"} 1\n", m.served.Load())
	})
	mux.HandleFunc("/model/reload", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, `{"outcome":"current","serving":{"version":1,"sha256":"abcdef0123456789"}}`)
	})
	m.srv = httptest.NewServer(mux)
	t.Cleanup(m.srv.Close)
	return m
}

// testCluster builds a cluster over fakes with an isolated registry and a
// fast prober (not started unless the test says so).
func testCluster(t *testing.T, fakes []*fakeMember, tweak func(*Config)) (*Cluster, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.New()
	members := make([]Member, len(fakes))
	for i, f := range fakes {
		members[i] = Member{ID: f.id, URL: f.srv.URL}
	}
	cfg := Config{
		Members:       members,
		ProbeInterval: 10 * time.Millisecond,
		Telemetry:     reg,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, reg
}

func checkVia(t *testing.T, h http.Handler, app string) (int, string, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/check?app="+app, nil))
	var body struct {
		Member string `json:"member"`
	}
	_ = json.Unmarshal(rec.Body.Bytes(), &body)
	return rec.Code, rec.Header().Get("X-Cluster-Member"), body.Member
}

// TestRoutingAffinity: the same app always lands on the same member, the
// winning member is named in X-Cluster-Member, and the partition spreads
// across the fleet.
func TestRoutingAffinity(t *testing.T) {
	fakes := []*fakeMember{newFakeMember(t, "a"), newFakeMember(t, "b"), newFakeMember(t, "c")}
	c, reg := testCluster(t, fakes, nil)
	h := c.Handler()

	owners := make(map[string]string)
	spread := make(map[string]bool)
	for i := 0; i < 60; i++ {
		app := fmt.Sprintf("app-%d", i)
		code, header, member := checkVia(t, h, app)
		if code != http.StatusOK {
			t.Fatalf("check %s: status %d", app, code)
		}
		if header != member {
			t.Fatalf("check %s: header names %q, body answered by %q", app, header, member)
		}
		owners[app] = member
		spread[member] = true
	}
	for app, owner := range owners {
		for rep := 0; rep < 3; rep++ {
			if _, _, member := checkVia(t, h, app); member != owner {
				t.Fatalf("app %s moved %s -> %s with stable membership", app, owner, member)
			}
		}
	}
	if len(spread) != 3 {
		t.Errorf("60 apps only reached members %v", spread)
	}
	total := uint64(0)
	for _, f := range fakes {
		total += reg.CounterValue("frappe_cluster_requests_total", f.id)
	}
	if total < 60 {
		t.Errorf("routed counter total = %d, want >= 60", total)
	}
}

// TestFailoverOn5xx: a member answering 5xx is skipped in favour of the
// ring's next replica; with every member 5xxing, the client receives the
// members' own error body (last resort), not a synthetic 502.
func TestFailoverOn5xx(t *testing.T) {
	fakes := []*fakeMember{newFakeMember(t, "a"), newFakeMember(t, "b")}
	c, reg := testCluster(t, fakes, nil)
	h := c.Handler()

	_, _, owner := checkVia(t, h, "app-x")
	var owned, other *fakeMember
	for _, f := range fakes {
		if f.id == owner {
			owned = f
		} else {
			other = f
		}
	}
	owned.fail5xx.Store(true)
	code, header, member := checkVia(t, h, "app-x")
	if code != http.StatusOK || member != other.id || header != other.id {
		t.Fatalf("after owner 5xx: status %d from %q (header %q), want 200 from %q",
			code, member, header, other.id)
	}
	if n := reg.CounterValue("frappe_cluster_failover_total", "5xx"); n == 0 {
		t.Error("5xx fail-over left no counter trace")
	}

	other.fail5xx.Store(true)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/check?app=app-x", nil))
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("all members 5xx: status %d, want 502", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "upstream") {
		t.Errorf("all members 5xx: client got %q, want a member's own error body", rec.Body.String())
	}
}

// TestTransportFailureMarksUnhealthy: a member that stops answering at
// the TCP level is failed over AND marked unhealthy immediately — the
// request that found the corpse de-routes it for everyone.
func TestTransportFailureMarksUnhealthy(t *testing.T) {
	fakes := []*fakeMember{newFakeMember(t, "a"), newFakeMember(t, "b"), newFakeMember(t, "c")}
	c, reg := testCluster(t, fakes, nil)
	h := c.Handler()

	_, _, owner := checkVia(t, h, "app-y")
	for _, f := range fakes {
		if f.id == owner {
			f.srv.Close()
		}
	}
	code, _, member := checkVia(t, h, "app-y")
	if code != http.StatusOK || member == owner {
		t.Fatalf("after killing owner %s: status %d from %q", owner, code, member)
	}
	if got := len(c.HealthyMembers()); got != 2 {
		t.Errorf("healthy members = %d after transport failure, want 2", got)
	}
	if got := reg.GaugeValue("frappe_cluster_members_healthy"); got != 2 {
		t.Errorf("frappe_cluster_members_healthy = %v, want 2", got)
	}
	if n := reg.CounterValue("frappe_cluster_failover_total", "error"); n == 0 {
		t.Error("transport fail-over left no counter trace")
	}
}

// TestProberFlipsHealth: the prober takes a member out when its /healthz
// turns 503 (the drain protocol) and brings it back when it recovers.
func TestProberFlipsHealth(t *testing.T) {
	fakes := []*fakeMember{newFakeMember(t, "a"), newFakeMember(t, "b")}
	c, reg := testCluster(t, fakes, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)

	waitHealthyCount := func(want int) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for len(c.HealthyMembers()) != want && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := len(c.HealthyMembers()); got != want {
			t.Fatalf("healthy members = %d, want %d", got, want)
		}
	}
	waitHealthyCount(2)
	fakes[0].healthy.Store(false)
	waitHealthyCount(1)
	if got := c.HealthyMembers(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("healthy = %v, want [b]", got)
	}
	if got := reg.GaugeValue("frappe_cluster_member_healthy", "a"); got != 0 {
		t.Errorf("member a health gauge = %v, want 0", got)
	}
	fakes[0].healthy.Store(true)
	waitHealthyCount(2)
	if got := reg.GaugeValue("frappe_cluster_member_healthy", "a"); got != 1 {
		t.Errorf("member a health gauge = %v after recovery, want 1", got)
	}
}

// TestAggregatedMetrics: member expositions come back labeled member=id,
// bare and already-labeled series both, HELP/TYPE deduped across members,
// with the LB's own frappe_cluster_* families alongside.
func TestAggregatedMetrics(t *testing.T) {
	fakes := []*fakeMember{newFakeMember(t, "a"), newFakeMember(t, "b")}
	c, _ := testCluster(t, fakes, nil)
	h := c.Handler()
	checkVia(t, h, "app-1") // one routed request so counters have series

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	text, _ := io.ReadAll(rec.Body)
	body := string(text)

	for _, want := range []string{
		`fake_requests_total{member="a"}`,
		`fake_requests_total{member="b"}`,
		`fake_labeled{member="a",path="/check"}`,
		"frappe_cluster_members_healthy 2",
		"frappe_cluster_failover_total",
		`frappe_cluster_ring_share{member="a"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("aggregated metrics missing %q", want)
		}
	}
	if n := strings.Count(body, "# TYPE fake_requests_total"); n != 1 {
		t.Errorf("fake_requests_total TYPE announced %d times, want 1", n)
	}

	// An unreachable member degrades to a comment, not a dark scrape.
	fakes[1].srv.Close()
	checkVia(t, h, "app-1") // trips the transport failure -> marks b down
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body = rec.Body.String()
	if !strings.Contains(body, "# member b not scraped") {
		t.Errorf("downed member not annotated in scrape:\n%s", body)
	}
	if !strings.Contains(body, `fake_requests_total{member="a"}`) {
		t.Error("healthy member vanished from the scrape with a peer down")
	}
}

// TestReloadFanout: POST /model/reload converges when all members agree
// on a version, and reports non-convergence when one cannot be reached.
func TestReloadFanout(t *testing.T) {
	fakes := []*fakeMember{newFakeMember(t, "a"), newFakeMember(t, "b")}
	c, _ := testCluster(t, fakes, nil)
	h := c.Handler()

	post := func() (int, bool) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/model/reload", nil))
		var body struct {
			Converged bool `json:"converged"`
		}
		_ = json.Unmarshal(rec.Body.Bytes(), &body)
		return rec.Code, body.Converged
	}
	if code, converged := post(); code != http.StatusOK || !converged {
		t.Fatalf("agreeing fleet: status %d converged=%v, want 200 true", code, converged)
	}
	fakes[1].srv.Close()
	if code, converged := post(); code != http.StatusBadGateway || converged {
		t.Fatalf("unreachable member: status %d converged=%v, want 502 false", code, converged)
	}
}

// TestConfigValidation: bad member tables are rejected up front.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty member table accepted")
	}
	if _, err := New(Config{Members: []Member{{ID: "", URL: "http://x"}}}); err == nil {
		t.Error("member without id accepted")
	}
	if _, err := New(Config{Members: []Member{
		{ID: "a", URL: "http://x"}, {ID: "a", URL: "http://y"},
	}}); err == nil {
		t.Error("duplicate member id accepted")
	}
}
