package workerpool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestClamp(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		workers, items, want int
	}{
		{0, 100, procs}, // <= 0 means GOMAXPROCS
		{-3, 100, procs},
		{4, 100, 4},
		{8, 3, 3}, // never wider than the work
		{5, 0, 1}, // but at least 1
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := Clamp(c.workers, c.items); got != c.want {
			t.Errorf("Clamp(%d, %d) = %d, want %d", c.workers, c.items, got, c.want)
		}
	}
}

// Every index in [0, n) must be visited exactly once, for any width —
// including the width-1 fast path and widths above the item count.
func TestRunCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64, 0} {
		const n = 1000
		counts := make([]int32, n)
		Run(n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	called := false
	Run(0, 4, func(int) { called = true })
	Run(-1, 4, func(int) { called = true })
	if called {
		t.Error("Run invoked fn for empty input")
	}
}

// Chunks must tile [0, n) exactly: half-open, non-overlapping, in-range,
// including the short tail chunk.
func TestRunChunkedTilesRange(t *testing.T) {
	for _, c := range []struct{ n, chunk int }{{100, 7}, {100, 1}, {5, 100}, {99, 3}, {1, 1}} {
		counts := make([]int32, c.n)
		RunChunked(c.n, 4, c.chunk, func(lo, hi int) {
			if lo < 0 || hi > c.n || lo >= hi {
				t.Errorf("n=%d chunk=%d: bad range [%d, %d)", c.n, c.chunk, lo, hi)
				return
			}
			if hi-lo > c.chunk {
				t.Errorf("n=%d chunk=%d: range [%d, %d) exceeds chunk", c.n, c.chunk, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, v := range counts {
			if v != 1 {
				t.Fatalf("n=%d chunk=%d: index %d covered %d times", c.n, c.chunk, i, v)
			}
		}
	}
}

func TestRunChunkedClampsChunk(t *testing.T) {
	var total atomic.Int32
	RunChunked(10, 2, 0, func(lo, hi int) { // chunk < 1 behaves as 1
		total.Add(int32(hi - lo))
	})
	if total.Load() != 10 {
		t.Errorf("covered %d items, want 10", total.Load())
	}
}
