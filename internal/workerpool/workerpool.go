// Package workerpool is the repo's shared bounded-fan-out idiom: a fixed
// number of goroutines draining an atomic work counter. Every parallel hot
// path (SMO kernel precompute, batch prediction, cross-validation folds,
// watchdog ranking) uses it so that worker counts are bounded, telemetry
// can report pool widths uniformly, and — because each work item writes
// only to its own output slot — results are identical for any width.
package workerpool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Clamp resolves a requested worker count: n <= 0 means GOMAXPROCS, and the
// pool is never wider than the number of work items (but at least 1).
func Clamp(workers, items int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run invokes fn(i) for every i in [0, n) from a pool of the given width
// (clamped via Clamp) and blocks until all items are done. Items are handed
// out dynamically, so callers must not depend on execution order; writing
// to out[i] inside fn is safe and deterministic.
func Run(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Clamp(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RunChunked invokes fn(lo, hi) over half-open index ranges covering [0, n),
// handing out chunk indices at a time. Use it when per-item work is tiny
// (e.g. one kernel-matrix row) and the atomic counter would otherwise become
// the bottleneck.
func RunChunked(n, workers, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	items := (n + chunk - 1) / chunk
	Run(items, workers, func(i int) {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}
