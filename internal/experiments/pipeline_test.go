package experiments

import (
	"bytes"
	"context"
	"testing"

	"frappe/internal/lab"
)

// labRun executes the pipeline for opts against the store in dir.
func labRun(t *testing.T, dir string, opts PipelineOptions) *lab.Result {
	t.Helper()
	store, err := lab.OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	res, err := lab.Run(context.Background(), Pipeline(opts), lab.Options{Store: store})
	if err != nil {
		t.Fatalf("lab.Run: %v", err)
	}
	return res
}

func reportOf(t *testing.T, res *lab.Result) []byte {
	t.Helper()
	data, ok := res.Artifact("report")
	if !ok {
		t.Fatal("no report artifact")
	}
	return data
}

func TestPipelinePlanShape(t *testing.T) {
	full := Pipeline(PipelineOptions{Scale: 0.02})
	quick := Pipeline(PipelineOptions{Scale: 0.02, Quick: true})
	if len(full) <= len(quick) {
		t.Fatalf("full pipeline has %d stages, quick %d; full must add the classifier stages",
			len(full), len(quick))
	}
	byName := make(map[string]lab.Stage, len(full))
	for _, s := range full {
		byName[s.Name] = s
	}
	for _, name := range []string{"generate", "ingest", "datasets", "crawl", "train", "table8", "report"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("full pipeline missing stage %q", name)
		}
	}
	for _, dep := range byName["table8"].Deps {
		if _, ok := byName[dep]; !ok {
			t.Fatalf("table8 depends on unknown stage %q", dep)
		}
	}
	for _, s := range quick {
		if s.Name == "train" || s.Name == "table5" {
			t.Fatalf("quick pipeline must not include %q", s.Name)
		}
	}
}

// TestQuickPipelineMatchesMonolithicAndCaches is the equivalence bar at
// -quick: the DAG report must be byte-identical to the monolithic render,
// and a repeat run must be 100% cache hits with the identical report.
func TestQuickPipelineMatchesMonolithicAndCaches(t *testing.T) {
	ctx := context.Background()
	opts := PipelineOptions{Scale: 0.02, Quick: true}

	r, err := New(ctx, opts.Scale, opts.Seed)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mono, err := RenderReport(ctx, r, opts)
	if err != nil {
		t.Fatalf("RenderReport: %v", err)
	}

	dir := t.TempDir()
	cold := labRun(t, dir, opts)
	if cold.Hits != 0 {
		t.Errorf("cold run: %d hits, want 0", cold.Hits)
	}
	if got := reportOf(t, cold); !bytes.Equal(got, []byte(mono)) {
		t.Fatalf("DAG report differs from monolithic render:\n--- dag (%d bytes)\n%s\n--- monolithic (%d bytes)\n%s",
			len(got), got, len(mono), mono)
	}

	warm := labRun(t, dir, opts)
	if warm.Misses != 0 {
		t.Fatalf("warm run: %d misses, want 0", warm.Misses)
	}
	if warm.Hits != len(warm.Stages) {
		t.Errorf("warm run: %d hits over %d stages", warm.Hits, len(warm.Stages))
	}
	if !bytes.Equal(reportOf(t, warm), []byte(mono)) {
		t.Fatal("cached report differs from monolithic render")
	}
}

// TestFullPipelineInvalidationCone drives the full (classifier) pipeline
// and checks that config edits re-run exactly the affected downstream
// cone, verified through per-stage statuses and run counters.
func TestFullPipelineInvalidationCone(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run in -short mode")
	}
	ctx := context.Background()
	opts := PipelineOptions{Scale: 0.03}
	dir := t.TempDir()

	cold := labRun(t, dir, opts)
	if cold.Hits != 0 {
		t.Errorf("cold run: %d hits, want 0", cold.Hits)
	}

	// The hard equivalence bar: the full DAG report is byte-identical to
	// the monolithic section loop over a freshly built Runner.
	r, err := New(ctx, opts.Scale, opts.Seed)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mono, err := RenderReport(ctx, r, opts)
	if err != nil {
		t.Fatalf("RenderReport: %v", err)
	}
	if !bytes.Equal(reportOf(t, cold), []byte(mono)) {
		t.Fatal("full DAG report differs from monolithic render")
	}

	// Changing table5's ratios must re-run exactly table5 and report. The
	// crawl artifact is opened (decoded) to feed table5, never re-run.
	edited := opts
	edited.Table5Ratios = []int{1, 7}
	res := labRun(t, dir, edited)
	for name, rep := range res.Stages {
		want := lab.StatusHit
		if name == "table5" || name == "report" {
			want = lab.StatusRan
		}
		if rep.Status != want {
			t.Errorf("after ratio edit, stage %s = %s, want %s", name, rep.Status, want)
		}
	}
	if res.Misses != 2 {
		t.Errorf("after ratio edit: %d misses, want 2 (table5, report)", res.Misses)
	}
	if crawl := res.Stages["crawl"]; crawl.Runs != 0 {
		t.Errorf("crawl ran %d times to feed table5; its stored artifact should have been opened instead", crawl.Runs)
	}
	if res.Opens == 0 {
		t.Error("expected table5 to open the cached crawl artifact")
	}
	if bytes.Equal(reportOf(t, res), []byte(mono)) {
		t.Error("report unchanged after table5 ratio edit")
	}

	// Restoring the original options must be a pure cache hit again.
	warm := labRun(t, dir, opts)
	if warm.Misses != 0 {
		t.Fatalf("restored options: %d misses, want 0", warm.Misses)
	}
	if !bytes.Equal(reportOf(t, warm), []byte(mono)) {
		t.Fatal("restored report differs from monolithic render")
	}

	// A seed change reaches the world generator, so every stage re-runs.
	reseeded := opts
	reseeded.Seed = opts.WorldSeed() + 1
	res = labRun(t, dir, reseeded)
	if res.Hits != 0 {
		t.Errorf("after seed change: %d hits, want 0 (everything downstream of the world)", res.Hits)
	}
	if bytes.Equal(reportOf(t, res), []byte(mono)) {
		t.Error("report unchanged after seed change")
	}
}
