package experiments

import (
	"fmt"

	"frappe/internal/forensics"
	"frappe/internal/synth"
)

// CountermeasuresResult compares the baseline ecosystem against one where
// Facebook adopts the paper's §7 recommendations: ban app-to-app
// promotion, enforce client_id == app ID, and authenticate prompt_feed.
// The paper predicts this "breaks the cycle of app propagation" and stops
// piggybacking; this experiment quantifies both.
type CountermeasuresResult struct {
	Baseline EcosystemSnapshot
	Hardened EcosystemSnapshot
}

// EcosystemSnapshot condenses the abuse-relevant state of one world.
type EcosystemSnapshot struct {
	MaliciousApps      int
	PromotionEdges     int
	CollusionApps      int // apps with at least one promotion edge
	ClientIDMismatch   int // malicious apps with differing client_id
	PiggybackDelivered int64
	PiggybackRejected  int64
	VictimsFlagged     int // popular apps flagged by the monitor
	DetectedMalicious  int // MPK-flagged malicious apps
}

func snapshotWorld(w *synth.World) EcosystemSnapshot {
	snap := EcosystemSnapshot{MaliciousApps: len(w.MaliciousIDs)}
	g, _ := forensics.BuildGraph(w.MaliciousIDs, w.Monitor.Apps(), forensics.NewWorldResolver(w))
	snap.PromotionEdges = g.NumEdges()
	snap.CollusionApps = g.NumNodes()
	for _, id := range w.MaliciousIDs {
		app, err := w.Platform.App(id)
		if err == nil && app.ClientID != app.ID {
			snap.ClientIDMismatch++
		}
		if w.Monitor.AppFlagged(id) {
			snap.DetectedMalicious++
		}
	}
	for _, n := range w.PiggybackPosts {
		snap.PiggybackDelivered += n
	}
	snap.PiggybackRejected = w.PiggybackRejected
	for _, id := range w.PopularIDs {
		if w.Monitor.AppFlagged(id) {
			snap.VictimsFlagged++
		}
	}
	return snap
}

// Countermeasures generates matched baseline and hardened worlds (same
// seed, same scale) and snapshots both.
func (r *Runner) Countermeasures() CountermeasuresResult {
	scale := 0.05
	base := synth.Default(scale)
	base.Seed = r.Seed + 7
	hardened := base
	hardened.Countermeasures = synth.Countermeasures{
		BlockAppPromotion:      true,
		EnforceClientID:        true,
		AuthenticatePromptFeed: true,
	}
	return CountermeasuresResult{
		Baseline: snapshotWorld(synth.Generate(base)),
		Hardened: snapshotWorld(synth.Generate(hardened)),
	}
}

// Render formats the what-if comparison.
func (c CountermeasuresResult) Render() string {
	b, h := c.Baseline, c.Hardened
	return fmt.Sprintf(`What-if: the §7 recommendations enforced (promotion ban + client-ID check + prompt_feed auth)
                               baseline    hardened
  malicious apps               %-10d  %d
  promotion edges observed     %-10d  %d
  apps in collusion graph      %-10d  %d
  client-ID mismatches         %-10d  %d
  piggyback posts delivered    %-10d  %d
  piggyback posts rejected     %-10d  %d
  popular victims flagged      %-10d  %d
  MPK-detected malicious       %-10d  %d
`,
		b.MaliciousApps, h.MaliciousApps,
		b.PromotionEdges, h.PromotionEdges,
		b.CollusionApps, h.CollusionApps,
		b.ClientIDMismatch, h.ClientIDMismatch,
		b.PiggybackDelivered, h.PiggybackDelivered,
		b.PiggybackRejected, h.PiggybackRejected,
		b.VictimsFlagged, h.VictimsFlagged,
		b.DetectedMalicious, h.DetectedMalicious)
}
