// Package experiments regenerates every table and figure of the paper's
// evaluation from a synthetic world. Each experiment returns typed rows
// plus a Render() string shaped like the original table, and records the
// paper's headline claim next to the measured value so EXPERIMENTS.md can
// be produced mechanically. cmd/frappebench and the repository-level
// benchmarks both drive this package.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"frappe/internal/core"
	"frappe/internal/datasets"
	"frappe/internal/stats"
	"frappe/internal/synth"
)

// DefaultScale is the experiment-harness world scale: 15% of the paper's
// 111K-app corpus, large enough for stable classifier statistics.
const DefaultScale = 0.15

// Runner owns one generated world and its assembled datasets, shared by
// every experiment.
type Runner struct {
	World *synth.World
	Data  *datasets.Datasets
	Seed  int64
}

// New generates a world at the given scale and assembles the datasets.
// The context cancels the dataset build (and with it the crawl).
func New(ctx context.Context, scale float64, seed int64) (*Runner, error) {
	return NewFromOptions(ctx, PipelineOptions{Scale: scale, Seed: seed})
}

// NewFromOptions is New with the full pipeline options applied — scale and
// seed, plus WAL placement for a durable or resumed generation.
func NewFromOptions(ctx context.Context, opts PipelineOptions) (*Runner, error) {
	cfg := opts.synthConfig()
	w := synth.Generate(cfg)
	b := &datasets.Builder{World: w}
	d, err := b.Build(ctx)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &Runner{World: w, Data: d, Seed: cfg.Seed}, nil
}

// records assembles core records for ids.
func (r *Runner) records(ids []string) []core.AppRecord {
	out := make([]core.AppRecord, 0, len(ids))
	for _, id := range ids {
		out = append(out, core.AppRecord{ID: id, Crawl: r.Data.Crawl[id], Stats: r.Data.Stats[id]})
	}
	return out
}

// completeSample returns D-Complete records and labels.
func (r *Runner) completeSample() ([]core.AppRecord, []bool) {
	ben, mal := r.Data.DComplete()
	records := append(r.records(ben), r.records(mal)...)
	labels := make([]bool, len(records))
	for i := len(ben); i < len(records); i++ {
		labels[i] = true
	}
	return records, labels
}

// appName resolves an app's display name from the platform registry (the
// paper read names from post metadata, so deleted apps keep theirs).
func (r *Runner) appName(id string) string {
	app, err := r.World.Platform.App(id)
	if err != nil {
		return "(unknown)"
	}
	return app.Name
}

// fracAtLeast is a tiny CDF helper.
func fracAtLeast(xs []float64, min float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return stats.NewCDF(xs).FractionAtLeast(min)
}

// fracEqualZero returns the fraction of xs equal to zero.
func fracEqualZero(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x == 0 {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// pct renders a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// table is a minimal fixed-width text table renderer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// sortedCounts turns a histogram into (key,count) pairs, largest first.
func sortedCounts(m map[string]int) []struct {
	Key   string
	Count int
} {
	out := make([]struct {
		Key   string
		Count int
	}, 0, len(m))
	for k, v := range m {
		out = append(out, struct {
			Key   string
			Count int
		}{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}
