package experiments

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"frappe/internal/core"
	"frappe/internal/crawler"
	"frappe/internal/datasets"
	"frappe/internal/graphapi"
	"frappe/internal/lab"
	"frappe/internal/mypagekeeper"
	"frappe/internal/synth"
)

// PipelineOptions parameterise the experiment DAG (and the monolithic
// section loop, which renders the exact same sections in the same order).
type PipelineOptions struct {
	// Scale is the world scale; 0 means DefaultScale.
	Scale float64
	// Seed overrides the paper-calibrated world seed; 0 keeps it.
	Seed int64
	// Quick skips the classifier experiments, like frappebench -quick.
	Quick bool
	// Table5Ratios overrides Table 5's training ratios (nil = the paper's
	// 1, 4, 7, 10). The invalidation tests use it to change exactly one
	// evaluation stage's config.
	Table5Ratios []int
	// WALDir puts a durable write-ahead log under world generation's
	// ingestion stream (synth.Config.WALDir); WALResume replays an
	// existing log and resumes past it. Neither enters stage fingerprints
	// — the generated world is byte-identical either way.
	WALDir    string
	WALResume bool
}

func (o PipelineOptions) synthConfig() synth.Config {
	scale := o.Scale
	if scale == 0 {
		scale = DefaultScale
	}
	cfg := synth.Default(scale)
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	cfg.WALDir = o.WALDir
	cfg.WALResume = o.WALResume
	return cfg
}

// WorldSeed returns the seed the pipeline's world will be generated with.
func (o PipelineOptions) WorldSeed() int64 {
	return o.synthConfig().Seed
}

func (o PipelineOptions) ratios() []int {
	if len(o.Table5Ratios) > 0 {
		return o.Table5Ratios
	}
	return []int{1, 4, 7, 10}
}

// Section is one rendered block of the evaluation report. Sections() lists
// them in the paper's print order; cmd/frappebench's monolithic path and
// the DAG pipeline both render through the same Render funcs, which is what
// makes their reports byte-identical by construction.
type Section struct {
	// Name is the DAG stage name.
	Name string
	// InQuick marks sections that survive -quick (the measurement and
	// forensics studies; the classifier experiments don't).
	InQuick bool
	// Render produces the section text, excluding the trailing blank line
	// the report inserts between sections.
	Render func(ctx context.Context, r *Runner) (string, error)

	// Dependency surface: which pipeline values the renderer reads.
	world bool // the generated world
	data  bool // the crawled datasets
	train bool // the trained §5.3 full model (Table 8)
}

// Sections returns the report sections in print order.
func Sections(opts PipelineOptions) []Section {
	plain := func(f func(r *Runner) string) func(context.Context, *Runner) (string, error) {
		return func(_ context.Context, r *Runner) (string, error) { return f(r), nil }
	}
	ratios := opts.ratios()
	return []Section{
		// Measurement study (§2-§4).
		{Name: "table1", InQuick: true, data: true, Render: plain(func(r *Runner) string { return r.Table1().Render() })},
		{Name: "table2", InQuick: true, world: true, data: true, Render: plain(func(r *Runner) string { return RenderTable2(r.Table2()) })},
		{Name: "table3", InQuick: true, data: true, Render: plain(func(r *Runner) string { return r.Table3().Render() })},
		{Name: "table4", InQuick: true, Render: plain(func(*Runner) string { return Table4() })},
		{Name: "prevalence", InQuick: true, world: true, data: true, Render: plain(func(r *Runner) string { return r.Prevalence().Render() })},
		{Name: "fig3", InQuick: true, world: true, data: true, Render: plain(func(r *Runner) string { return r.Fig3().Render() })},
		{Name: "fig4", InQuick: true, world: true, data: true, Render: plain(func(r *Runner) string {
			f := r.Fig4()
			return f.Median.Render() + f.Max.Render()
		})},
		{Name: "fig5", InQuick: true, data: true, Render: plain(func(r *Runner) string { return RenderFig5(r.Fig5()) })},
		{Name: "fig6", InQuick: true, data: true, Render: plain(func(r *Runner) string { return RenderFig6(r.Fig6()) })},
		{Name: "fig7", InQuick: true, data: true, Render: plain(func(r *Runner) string { return r.Fig7().Render() })},
		{Name: "fig8", InQuick: true, data: true, Render: plain(func(r *Runner) string { return r.Fig8().Render() })},
		{Name: "fig9", InQuick: true, data: true, Render: plain(func(r *Runner) string { return r.Fig9().Render() })},
		{Name: "fig10", InQuick: true, world: true, data: true, Render: plain(func(r *Runner) string { return RenderFig10(r.Fig10()) })},
		{Name: "fig11", InQuick: true, world: true, data: true, Render: plain(func(r *Runner) string { return r.Fig11().Render() })},
		{Name: "fig12", InQuick: true, data: true, Render: plain(func(r *Runner) string { return r.Fig12().Render() })},

		// Classification (§5).
		{Name: "table5", data: true, Render: func(_ context.Context, r *Runner) (string, error) {
			rows, err := r.Table5With(ratios)
			if err != nil {
				return "", err
			}
			return RenderTable5(rows), nil
		}},
		{Name: "table6", data: true, Render: func(_ context.Context, r *Runner) (string, error) {
			rows, err := r.Table6()
			if err != nil {
				return "", err
			}
			return RenderTable6(rows), nil
		}},
		{Name: "frappe", data: true, Render: func(_ context.Context, r *Runner) (string, error) {
			head, err := r.FRAppE()
			if err != nil {
				return "", err
			}
			return head.Render(), nil
		}},
		{Name: "table8", world: true, data: true, train: true, Render: func(ctx context.Context, r *Runner) (string, error) {
			res, err := r.Table8(ctx)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{Name: "robust", data: true, Render: func(_ context.Context, r *Runner) (string, error) {
			res, err := r.Robust()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{Name: "kernels", data: true, Render: func(_ context.Context, r *Runner) (string, error) {
			rows, err := r.AblationKernels()
			if err != nil {
				return "", err
			}
			return RenderKernels(rows), nil
		}},
		{Name: "noise", data: true, Render: func(_ context.Context, r *Runner) (string, error) {
			rows, err := r.AblationLabelNoise()
			if err != nil {
				return "", err
			}
			return RenderNoise(rows), nil
		}},
		{Name: "grid", data: true, Render: func(_ context.Context, r *Runner) (string, error) {
			res, err := r.AblationGridSearch()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{Name: "learnedmpk", Render: func(_ context.Context, r *Runner) (string, error) {
			res, err := r.AblationLearnedMPK()
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{Name: "countermeasures", Render: plain(func(r *Runner) string { return r.Countermeasures().Render() })},

		// Ecosystem forensics (§6).
		{Name: "fig1", InQuick: true, world: true, data: true, Render: plain(func(r *Runner) string { return r.Fig1().Render() })},
		{Name: "indirection", InQuick: true, world: true, Render: plain(func(r *Runner) string { return r.Indirection().Render() })},
		{Name: "fig14", InQuick: true, world: true, data: true, Render: plain(func(r *Runner) string { return r.Fig14().Render() })},
		{Name: "fig15", InQuick: true, world: true, data: true, Render: plain(func(r *Runner) string { return r.Fig15().Render() })},
		{Name: "fig16", InQuick: true, data: true, Render: plain(func(r *Runner) string { return r.Fig16().Render() })},
		{Name: "table9", InQuick: true, world: true, data: true, Render: plain(func(r *Runner) string { return RenderTable9(r.Table9()) })},
	}
}

// activeSections filters Sections by the quick flag.
func activeSections(opts PipelineOptions) []Section {
	var out []Section
	for _, s := range Sections(opts) {
		if opts.Quick && !s.InQuick {
			continue
		}
		out = append(out, s)
	}
	return out
}

// RenderReport runs every active section against a fully built Runner —
// the monolithic path. The result is byte-identical to the DAG pipeline's
// "report" artifact.
func RenderReport(ctx context.Context, r *Runner, opts PipelineOptions) (string, error) {
	var b strings.Builder
	for _, sec := range activeSections(opts) {
		out, err := sec.Render(ctx, r)
		if err != nil {
			return "", fmt.Errorf("experiments: section %s: %w", sec.Name, err)
		}
		b.WriteString(out)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// labSeed is the world seed the pipeline runs at (the fingerprint surface
// of the seed-dependent stages).
type labSeed struct {
	Seed int64
}

// Pipeline assembles the experiment DAG:
//
//	generate → ingest → datasets → crawl → train → {sections} → report
//
// Measurement and forensics sections hang off crawl (plus generate for the
// ones reading the world directly); table8 additionally consumes the
// trained model; table4, learnedmpk and countermeasures are independent
// roots. The report stage concatenates every section artifact in print
// order, so a fully cached run rebuilds the report without computing
// anything.
func Pipeline(opts PipelineOptions) []lab.Stage {
	cfg := opts.synthConfig()
	// Worker counts and WAL placement never enter fingerprints: the
	// generated world is byte-identical at any ingestion width, with or
	// without durability underneath.
	fpCfg := cfg
	fpCfg.IngestWorkers = 0
	fpCfg.WALDir = ""
	fpCfg.WALResume = false
	seed := cfg.Seed

	stages := []lab.Stage{
		{
			Name:   "generate",
			Config: fpCfg,
			Run: func(c *lab.StageContext) ([]byte, error) {
				w := synth.Generate(cfg)
				c.SetValue(w)
				return worldArtifact(fpCfg, w)
			},
			// No Open: a world is rebuilt only by re-running Generate.
		},
		{
			Name:   "ingest",
			Deps:   []string{"generate"},
			Config: labSeed{seed},
			Run: func(c *lab.StageContext) ([]byte, error) {
				v, err := c.Value("generate")
				if err != nil {
					return nil, err
				}
				stats := v.(*synth.World).Monitor.Apps()
				c.SetValue(stats)
				return encodeStats(stats)
			},
			Open: func(data []byte) (any, error) { return decodeStats(data) },
		},
		{
			Name:   "datasets",
			Deps:   []string{"ingest", "generate"},
			Config: labSeed{seed},
			Run: func(c *lab.StageContext) ([]byte, error) {
				v, err := c.Value("generate")
				if err != nil {
					return nil, err
				}
				b := &datasets.Builder{World: v.(*synth.World)}
				sel, err := b.Select(c.Context())
				if err != nil {
					return nil, err
				}
				c.SetValue(sel)
				return encodeSelection(sel)
			},
			Open: func(data []byte) (any, error) { return decodeSelection(data) },
		},
		{
			Name:   "crawl",
			Deps:   []string{"datasets", "generate"},
			Config: labSeed{seed},
			Run: func(c *lab.StageContext) ([]byte, error) {
				wv, err := c.Value("generate")
				if err != nil {
					return nil, err
				}
				sv, err := c.Value("datasets")
				if err != nil {
					return nil, err
				}
				b := &datasets.Builder{World: wv.(*synth.World)}
				d, err := b.CrawlSample(c.Context(), sv.(*datasets.Selection))
				if err != nil {
					return nil, err
				}
				c.SetValue(d)
				return encodeDatasets(d)
			},
			Open: func(data []byte) (any, error) { return decodeDatasets(data) },
		},
	}

	if !opts.Quick {
		stages = append(stages, lab.Stage{
			Name:   "train",
			Deps:   []string{"crawl"},
			Config: labSeed{seed},
			Run: func(c *lab.StageContext) ([]byte, error) {
				v, err := c.Value("crawl")
				if err != nil {
					return nil, err
				}
				r := &Runner{Data: v.(*datasets.Datasets), Seed: seed}
				clf, err := r.TrainFull()
				if err != nil {
					return nil, err
				}
				c.SetValue(clf)
				var buf bytes.Buffer
				if err := clf.Save(&buf); err != nil {
					return nil, err
				}
				return buf.Bytes(), nil
			},
			Open: func(data []byte) (any, error) { return core.Load(bytes.NewReader(data)) },
		})
	}

	sections := activeSections(opts)
	reportDeps := make([]string, 0, len(sections))
	for _, s := range sections {
		sec := s
		deps := []string{}
		if sec.data {
			deps = append(deps, "crawl")
		}
		if sec.world {
			deps = append(deps, "generate")
		}
		if sec.train {
			deps = append(deps, "train")
		}
		config := any(labSeed{seed})
		if sec.Name == "table5" {
			config = struct {
				Seed   int64
				Ratios []int
			}{seed, opts.ratios()}
		}
		stages = append(stages, lab.Stage{
			Name:   sec.Name,
			Deps:   deps,
			Config: config,
			Run: func(c *lab.StageContext) ([]byte, error) {
				r := &Runner{Seed: seed}
				if sec.world {
					v, err := c.Value("generate")
					if err != nil {
						return nil, err
					}
					r.World = v.(*synth.World)
				}
				if sec.data {
					v, err := c.Value("crawl")
					if err != nil {
						return nil, err
					}
					r.Data = v.(*datasets.Datasets)
				}
				var out string
				if sec.train {
					// Table 8 consumes the train stage's model instead of
					// training inline like the monolithic path; Table8 and
					// TrainFull+Table8With are the same computation.
					v, err := c.Value("train")
					if err != nil {
						return nil, err
					}
					res, err := r.Table8With(c.Context(), v.(*core.Classifier))
					if err != nil {
						return nil, err
					}
					out = res.Render()
				} else {
					var err error
					out, err = sec.Render(c.Context(), r)
					if err != nil {
						return nil, err
					}
				}
				return []byte(out), nil
			},
			Open: func(data []byte) (any, error) { return string(data), nil },
		})
		reportDeps = append(reportDeps, sec.Name)
	}

	stages = append(stages, lab.Stage{
		Name: "report",
		Deps: reportDeps,
		Config: struct {
			Sections []string
		}{reportDeps},
		Run: func(c *lab.StageContext) ([]byte, error) {
			var b bytes.Buffer
			for _, name := range reportDeps {
				art, err := c.Artifact(name)
				if err != nil {
					return nil, err
				}
				b.Write(art)
				b.WriteByte('\n')
			}
			return b.Bytes(), nil
		},
		Open: func(data []byte) (any, error) { return string(data), nil },
	})
	return stages
}

// ---- artifact encodings ----
//
// Artifacts must be deterministic byte-for-byte: fingerprints hash them, so
// a nondeterministic encoding would never cache-hit. Gob encodes structs
// and slices deterministically but randomises map order, so every map
// crosses the boundary as a sorted entry slice. Crawl errors are sentinel
// values (deleted, not-crawlable), encoded as tags and decoded back to the
// canonical errors.

// worldArtifact summarises a generated world. It embeds the config digest:
// the world is the root of the DAG, and any config or seed change must
// invalidate every world-reading stage even when the summary counts happen
// to agree.
func worldArtifact(fpCfg synth.Config, w *synth.World) ([]byte, error) {
	cfgJSON, err := json.Marshal(fpCfg)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(cfgJSON)
	return json.Marshal(struct {
		ConfigSHA256 string `json:"config_sha256"`
		Apps         int    `json:"apps"`
		Users        int    `json:"users"`
		Posts        int64  `json:"posts"`
	}{hex.EncodeToString(sum[:]), w.Platform.NumApps(), w.Platform.Users(), w.TotalStreamPosts})
}

type statsEntry struct {
	ID    string
	Stats mypagekeeper.AppStats
}

func sortedStats(stats map[string]mypagekeeper.AppStats) []statsEntry {
	entries := make([]statsEntry, 0, len(stats))
	for id, s := range stats {
		entries = append(entries, statsEntry{ID: id, Stats: s})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	return entries
}

func statsMap(entries []statsEntry) map[string]mypagekeeper.AppStats {
	m := make(map[string]mypagekeeper.AppStats, len(entries))
	for _, e := range entries {
		m[e.ID] = e.Stats
	}
	return m
}

func encodeStats(stats map[string]mypagekeeper.AppStats) ([]byte, error) {
	return encodeGob(sortedStats(stats))
}

func decodeStats(data []byte) (map[string]mypagekeeper.AppStats, error) {
	var entries []statsEntry
	if err := decodeGob(data, &entries); err != nil {
		return nil, err
	}
	return statsMap(entries), nil
}

type selectionWire struct {
	DTotal      []string
	Flagged     []string
	Whitelisted []string
	Malicious   []string
	Benign      []string
	Stats       []statsEntry
}

func encodeSelection(sel *datasets.Selection) ([]byte, error) {
	return encodeGob(selectionWire{
		DTotal:      sel.DTotal,
		Flagged:     sel.Flagged,
		Whitelisted: sel.Whitelisted,
		Malicious:   sel.Malicious,
		Benign:      sel.Benign,
		Stats:       sortedStats(sel.Stats),
	})
}

func decodeSelection(data []byte) (*datasets.Selection, error) {
	var w selectionWire
	if err := decodeGob(data, &w); err != nil {
		return nil, err
	}
	return &datasets.Selection{
		DTotal:      w.DTotal,
		Flagged:     w.Flagged,
		Whitelisted: w.Whitelisted,
		Malicious:   w.Malicious,
		Benign:      w.Benign,
		Stats:       statsMap(w.Stats),
	}, nil
}

type crawlResultWire struct {
	Summary    *graphapi.Summary
	SummaryErr string
	Feed       []graphapi.FeedPost
	FeedErr    string
	Install    graphapi.InstallInfo
	InstallErr string
	WOTScore   int
}

type crawlEntry struct {
	ID     string
	Result crawlResultWire
}

type datasetsWire struct {
	Selection selectionWire
	Crawl     []crawlEntry
}

const (
	errTagDeleted      = "!deleted"
	errTagNotCrawlable = "!not_crawlable"
	errTagOther        = "!other:"
)

func encodeCrawlErr(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, graphapi.ErrDeleted):
		return errTagDeleted
	case errors.Is(err, crawler.ErrNotCrawlable):
		return errTagNotCrawlable
	default:
		return errTagOther + err.Error()
	}
}

func decodeCrawlErr(tag string) error {
	switch {
	case tag == "":
		return nil
	case tag == errTagDeleted:
		return graphapi.ErrDeleted
	case tag == errTagNotCrawlable:
		return crawler.ErrNotCrawlable
	default:
		return errors.New(strings.TrimPrefix(tag, errTagOther))
	}
}

func encodeDatasets(d *datasets.Datasets) ([]byte, error) {
	wire := datasetsWire{
		Selection: selectionWire{
			DTotal:      d.DTotal,
			Flagged:     d.Flagged,
			Whitelisted: d.Whitelisted,
			Malicious:   d.Malicious,
			Benign:      d.Benign,
			Stats:       sortedStats(d.Stats),
		},
	}
	ids := make([]string, 0, len(d.Crawl))
	for id := range d.Crawl {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		r := d.Crawl[id]
		wire.Crawl = append(wire.Crawl, crawlEntry{ID: id, Result: crawlResultWire{
			Summary:    r.Summary,
			SummaryErr: encodeCrawlErr(r.SummaryErr),
			Feed:       r.Feed,
			FeedErr:    encodeCrawlErr(r.FeedErr),
			Install:    r.Install,
			InstallErr: encodeCrawlErr(r.InstallErr),
			WOTScore:   r.WOTScore,
		}})
	}
	return encodeGob(wire)
}

func decodeDatasets(data []byte) (*datasets.Datasets, error) {
	var wire datasetsWire
	if err := decodeGob(data, &wire); err != nil {
		return nil, err
	}
	d := &datasets.Datasets{
		DTotal:      wire.Selection.DTotal,
		Flagged:     wire.Selection.Flagged,
		Whitelisted: wire.Selection.Whitelisted,
		Malicious:   wire.Selection.Malicious,
		Benign:      wire.Selection.Benign,
		Stats:       statsMap(wire.Selection.Stats),
		Crawl:       make(map[string]*crawler.Result, len(wire.Crawl)),
	}
	for _, e := range wire.Crawl {
		d.Crawl[e.ID] = &crawler.Result{
			AppID:      e.ID,
			Summary:    e.Result.Summary,
			SummaryErr: decodeCrawlErr(e.Result.SummaryErr),
			Feed:       e.Result.Feed,
			FeedErr:    decodeCrawlErr(e.Result.FeedErr),
			Install:    e.Result.Install,
			InstallErr: decodeCrawlErr(e.Result.InstallErr),
			WOTScore:   e.Result.WOTScore,
		}
	}
	return d, nil
}

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("experiments: encoding artifact: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeGob(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("experiments: decoding artifact: %w", err)
	}
	return nil
}
