package experiments

import (
	"fmt"
	"io"
	"sort"

	"frappe/internal/appgraph"
	"frappe/internal/forensics"
	"frappe/internal/stats"
	"frappe/internal/textdist"
)

// Table9Row is one piggybacked popular app.
type Table9Row struct {
	Name    string
	Posts   int64 // the app's full post volume (paper: FarmVille 9.6M)
	Message string
}

// Table9 lists the top piggybacking victims (paper Table 9).
func (r *Runner) Table9() []Table9Row {
	names := map[string]string{}
	for id := range r.Data.Stats {
		names[id] = r.appName(id)
	}
	findings := forensics.DetectPiggybacking(r.Data.Stats, names, 0.2)
	var rows []Table9Row
	for _, f := range findings {
		if r.World.IsMalicious(f.AppID) {
			continue // only popular benign victims, as in the paper
		}
		rows = append(rows, Table9Row{
			Name:    f.Name,
			Posts:   r.World.TruePosts[f.AppID],
			Message: f.SampleMessage,
		})
		if len(rows) == 5 {
			break
		}
	}
	return rows
}

// RenderTable9 formats Table 9.
func RenderTable9(rows []Table9Row) string {
	tb := &table{header: []string{"App name", "# of posts", "Post msg"}}
	for _, row := range rows {
		tb.add(row.Name, fmt.Sprint(row.Posts), row.Message)
	}
	return "Table 9: popular apps abused by piggybacking (paper: FarmVille, 9.6M posts)\n" + tb.String()
}

// collaboration builds the §6 graph over D-Sample malicious apps once.
func (r *Runner) collaboration() (*appgraph.Graph, []forensics.Promotion) {
	return forensics.BuildGraph(r.Data.Malicious, r.Data.Stats, forensics.NewWorldResolver(r.World))
}

// Fig1Result is the AppNet snapshot: the paper renders its second-largest
// component (770 apps, average degree 195).
type Fig1Result struct {
	Summary      forensics.GraphSummary
	SnapshotSize int
	SnapshotDeg  float64
	// MaxCoreness is the deepest k-core in the collaboration graph, a
	// compact density measure for the "highly-dense connected components".
	MaxCoreness int
}

// Fig1 summarises the collaboration graph and its snapshot component.
func (r *Runner) Fig1() Fig1Result {
	g, promos := r.collaboration()
	res := Fig1Result{Summary: forensics.Summarize(g, promos)}
	comps := g.ConnectedComponents()
	if len(comps) > 1 {
		snap := g.Subgraph(comps[1].Members)
		res.SnapshotSize = snap.NumNodes()
		res.SnapshotDeg = snap.AverageDegree()
	} else if len(comps) == 1 {
		snap := g.Subgraph(comps[0].Members)
		res.SnapshotSize = snap.NumNodes()
		res.SnapshotDeg = snap.AverageDegree()
	}
	for _, c := range g.Coreness() {
		if c > res.MaxCoreness {
			res.MaxCoreness = c
		}
	}
	return res
}

// WriteFig1DOT renders the snapshot component (the paper's hairball) in
// Graphviz DOT format.
func (r *Runner) WriteFig1DOT(w io.Writer) error {
	g, _ := r.collaboration()
	comps := g.ConnectedComponents()
	if len(comps) == 0 {
		return fmt.Errorf("experiments: empty collaboration graph")
	}
	snap := comps[0]
	if len(comps) > 1 {
		snap = comps[1] // the paper renders the second-largest component
	}
	return g.WriteDOT(w, nil, snap.Members)
}

// Render formats Fig. 1 / §6.1.
func (f Fig1Result) Render() string {
	s := f.Summary
	return fmt.Sprintf(`Fig 1 / §6.1: AppNets (paper: 44 components, top sizes 3484/770/589/296/247; snapshot 770 apps, avg degree 195)
  colluding apps: %d, edges: %d, components: %d, top sizes: %v
  avg degree %.1f, max %d, %s collude with >10 apps, %s have clustering coeff > 0.74
  snapshot component: %d apps, avg degree %.1f; deepest k-core: %d
  promoters %d, promotees %d, dual %d; direct edges %d, indirect %d
`,
		s.Apps, s.Edges, s.Components, s.TopComponents,
		s.AverageDegree, s.MaxDegree, pct(s.DegreeOver10), pct(s.LCCOverP74),
		f.SnapshotSize, f.SnapshotDeg, f.MaxCoreness,
		s.Promoters, s.Promotees, s.DualRole, s.DirectEdges, s.IndirectEdges)
}

// CDFResult is a generic one-curve figure: key quantile statistics plus a
// plottable curve.
type CDFResult struct {
	Label string
	N     int
	Curve []stats.Point
	Notes []string
}

// Render formats a CDF figure with its notes.
func (c CDFResult) Render() string {
	out := fmt.Sprintf("%s (n=%d)\n", c.Label, c.N)
	for _, n := range c.Notes {
		out += "  " + n + "\n"
	}
	return out
}

// Fig3 computes the distribution of total bit.ly clicks per malicious app
// (paper: 60% above 100K, 20% above 1M; top app 1,742,359 clicks).
func (r *Runner) Fig3() CDFResult {
	var sums []float64
	var maxClicks float64
	for _, id := range r.Data.Malicious {
		as, ok := r.Data.Stats[id]
		if !ok {
			continue
		}
		seen := map[string]bool{}
		total := int64(0)
		hasBitly := false
		for _, link := range as.Links {
			if !r.World.Bitly.IsShort(link) || seen[link] {
				continue
			}
			seen[link] = true
			hasBitly = true
			if n, err := r.World.Bitly.Clicks(link); err == nil {
				total += n
			}
		}
		if hasBitly {
			sums = append(sums, float64(total))
			if float64(total) > maxClicks {
				maxClicks = float64(total)
			}
		}
	}
	cdf := stats.NewCDF(sums)
	return CDFResult{
		Label: "Fig 3: bit.ly clicks per malicious app",
		N:     len(sums),
		Curve: cdf.Curve(stats.LogSpace(1, 7, 25)),
		Notes: []string{
			fmt.Sprintf("apps with >100K clicks: %s (paper: 60%%)", pct(cdf.FractionAtLeast(1e5))),
			fmt.Sprintf("apps with >1M clicks:   %s (paper: 20%%)", pct(cdf.FractionAtLeast(1e6))),
			fmt.Sprintf("top app: %.0f clicks (paper: 1,742,359)", maxClicks),
		},
	}
}

// Fig4Result carries both MAU curves.
type Fig4Result struct {
	Median CDFResult
	Max    CDFResult
}

// Fig4 computes median and maximum MAU per malicious app in D-Summary
// (paper: 40% with median >= 1000, 60% reach 1000 at some point; top app
// median 20K / max 260K).
func (r *Runner) Fig4() Fig4Result {
	_, mal := r.Data.DSummary()
	var medians, maxima []float64
	for _, id := range mal {
		app, err := r.World.Platform.App(id)
		if err != nil {
			continue
		}
		medians = append(medians, float64(app.MedianMAU()))
		maxima = append(maxima, float64(app.MaxMAU()))
	}
	med := stats.NewCDF(medians)
	mx := stats.NewCDF(maxima)
	return Fig4Result{
		Median: CDFResult{
			Label: "Fig 4: median MAU of malicious apps",
			N:     len(medians),
			Curve: med.Curve(stats.LogSpace(0, 6, 25)),
			Notes: []string{fmt.Sprintf("median MAU >= 1000: %s (paper: 40%%)", pct(med.FractionAtLeast(1000)))},
		},
		Max: CDFResult{
			Label: "Fig 4: max MAU of malicious apps",
			N:     len(maxima),
			Curve: mx.Curve(stats.LogSpace(0, 6, 25)),
			Notes: []string{fmt.Sprintf("max MAU >= 1000: %s (paper: 60%%)", pct(mx.FractionAtLeast(1000)))},
		},
	}
}

// Fig5Row is one summary-field comparison.
type Fig5Row struct {
	Field     string
	Benign    float64
	Malicious float64
}

// Fig5 compares summary completeness across classes in D-Summary (paper:
// 93% of benign vs 1.4% of malicious apps specify a description).
func (r *Runner) Fig5() []Fig5Row {
	ben, mal := r.Data.DSummary()
	frac := func(ids []string, has func(id string) bool) float64 {
		if len(ids) == 0 {
			return 0
		}
		n := 0
		for _, id := range ids {
			if has(id) {
				n++
			}
		}
		return float64(n) / float64(len(ids))
	}
	field := func(get func(id string) string) func(string) bool {
		return func(id string) bool { return get(id) != "" }
	}
	category := field(func(id string) string { return r.Data.Crawl[id].Summary.Category })
	company := field(func(id string) string { return r.Data.Crawl[id].Summary.Company })
	desc := field(func(id string) string { return r.Data.Crawl[id].Summary.Description })
	return []Fig5Row{
		{Field: "Category", Benign: frac(ben, category), Malicious: frac(mal, category)},
		{Field: "Company", Benign: frac(ben, company), Malicious: frac(mal, company)},
		{Field: "Description", Benign: frac(ben, desc), Malicious: frac(mal, desc)},
	}
}

// RenderFig5 formats Fig. 5.
func RenderFig5(rows []Fig5Row) string {
	tb := &table{header: []string{"Field", "Benign", "Malicious"}}
	for _, row := range rows {
		tb.add(row.Field, pct(row.Benign), pct(row.Malicious))
	}
	return "Fig 5: apps providing summary fields (paper: description 93% vs 1.4%)\n" + tb.String()
}

// Fig6Row is one permission's request rate per class.
type Fig6Row struct {
	Permission string
	Benign     float64
	Malicious  float64
}

// Fig6 reports the top-5 permissions by request rate (paper Fig. 6:
// publish_stream dominates both classes).
func (r *Runner) Fig6() []Fig6Row {
	ben, mal := r.Data.DInst()
	count := func(ids []string) (map[string]int, int) {
		hist := map[string]int{}
		for _, id := range ids {
			for _, p := range r.Data.Crawl[id].Install.Permissions {
				hist[p]++
			}
		}
		return hist, len(ids)
	}
	bh, bn := count(ben)
	mh, mn := count(mal)
	// Rank by combined request rate.
	combined := map[string]int{}
	for p, n := range bh {
		combined[p] += n
	}
	for p, n := range mh {
		combined[p] += n
	}
	var rows []Fig6Row
	for i, kv := range sortedCounts(combined) {
		if i == 5 {
			break
		}
		row := Fig6Row{Permission: kv.Key}
		if bn > 0 {
			row.Benign = float64(bh[kv.Key]) / float64(bn)
		}
		if mn > 0 {
			row.Malicious = float64(mh[kv.Key]) / float64(mn)
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderFig6 formats Fig. 6.
func RenderFig6(rows []Fig6Row) string {
	tb := &table{header: []string{"Permission", "Benign", "Malicious"}}
	for _, row := range rows {
		tb.add(row.Permission, pct(row.Benign), pct(row.Malicious))
	}
	return "Fig 6: top permissions requested (paper: malicious ~only publish_stream)\n" + tb.String()
}

// Fig7Result carries the permission-count CCDF per class.
type Fig7Result struct {
	Benign    CDFResult
	Malicious CDFResult
	BenignOne float64 // fraction requesting exactly one permission
	MalOne    float64
}

// Fig7 computes permission-count distributions (paper: 97% of malicious vs
// 62% of benign apps request exactly one).
func (r *Runner) Fig7() Fig7Result {
	ben, mal := r.Data.DInst()
	counts := func(ids []string) []float64 {
		var out []float64
		for _, id := range ids {
			out = append(out, float64(len(r.Data.Crawl[id].Install.Permissions)))
		}
		return out
	}
	bc, mc := counts(ben), counts(mal)
	one := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		n := 0
		for _, x := range xs {
			if x == 1 {
				n++
			}
		}
		return float64(n) / float64(len(xs))
	}
	axis := stats.LinSpace(1, 30, 30)
	return Fig7Result{
		Benign: CDFResult{Label: "Fig 7: benign permission count CCDF", N: len(bc),
			Curve: stats.NewCDF(bc).CCDFCurve(axis)},
		Malicious: CDFResult{Label: "Fig 7: malicious permission count CCDF", N: len(mc),
			Curve: stats.NewCDF(mc).CCDFCurve(axis)},
		BenignOne: one(bc),
		MalOne:    one(mc),
	}
}

// Render formats Fig. 7.
func (f Fig7Result) Render() string {
	return fmt.Sprintf("Fig 7: permissions requested (single-permission apps: malicious %s vs benign %s; paper: 97%% vs 62%%)\n",
		pct(f.MalOne), pct(f.BenignOne))
}

// Fig8Result carries WOT score statistics per class.
type Fig8Result struct {
	Benign     CDFResult
	Malicious  CDFResult
	MalUnknown float64 // malicious redirect domains without a WOT score
	MalBelow5  float64 // malicious apps with score < 5 (unknowns included)
	BenHigh    float64 // benign apps with score >= 60
}

// Fig8 computes the WOT trust-score distributions (paper: 80% of malicious
// redirect domains unknown to WOT, 95% below 5).
func (r *Runner) Fig8() Fig8Result {
	ben, mal := r.Data.DInst()
	scores := func(ids []string) []float64 {
		var out []float64
		for _, id := range ids {
			out = append(out, float64(r.Data.Crawl[id].WOTScore))
		}
		return out
	}
	bs, ms := scores(ben), scores(mal)
	unknown := 0
	below5 := 0
	for _, s := range ms {
		if s < 0 {
			unknown++
		}
		if s < 5 {
			below5++
		}
	}
	high := 0
	for _, s := range bs {
		if s >= 60 {
			high++
		}
	}
	axis := stats.LinSpace(-1, 100, 25)
	res := Fig8Result{
		Benign: CDFResult{Label: "Fig 8: benign WOT scores", N: len(bs),
			Curve: stats.NewCDF(bs).Curve(axis)},
		Malicious: CDFResult{Label: "Fig 8: malicious WOT scores", N: len(ms),
			Curve: stats.NewCDF(ms).Curve(axis)},
	}
	if len(ms) > 0 {
		res.MalUnknown = float64(unknown) / float64(len(ms))
		res.MalBelow5 = float64(below5) / float64(len(ms))
	}
	if len(bs) > 0 {
		res.BenHigh = float64(high) / float64(len(bs))
	}
	return res
}

// Render formats Fig. 8.
func (f Fig8Result) Render() string {
	return fmt.Sprintf("Fig 8: WOT trust of redirect domains (malicious unknown %s, <5 %s; benign >=60 %s; paper: 80%%, 95%%, ~80%%)\n",
		pct(f.MalUnknown), pct(f.MalBelow5), pct(f.BenHigh))
}

// Fig9Result carries the profile-post count distributions.
type Fig9Result struct {
	Benign    CDFResult
	Malicious CDFResult
	MalZero   float64 // malicious apps with an empty profile feed
	BenZero   float64
}

// Fig9 computes profile-feed sizes (paper: 97% of malicious apps have no
// posts in their profiles).
func (r *Runner) Fig9() Fig9Result {
	ben, mal := r.Data.DProfileFeed()
	counts := func(ids []string) []float64 {
		var out []float64
		for _, id := range ids {
			out = append(out, float64(len(r.Data.Crawl[id].Feed)))
		}
		return out
	}
	bc, mc := counts(ben), counts(mal)
	axis := stats.LogSpace(0, 3, 20)
	return Fig9Result{
		Benign: CDFResult{Label: "Fig 9: benign profile posts", N: len(bc),
			Curve: stats.NewCDF(bc).Curve(axis)},
		Malicious: CDFResult{Label: "Fig 9: malicious profile posts", N: len(mc),
			Curve: stats.NewCDF(mc).Curve(axis)},
		MalZero: fracEqualZero(mc),
		BenZero: fracEqualZero(bc),
	}
}

// Render formats Fig. 9.
func (f Fig9Result) Render() string {
	return fmt.Sprintf("Fig 9: posts in app profile (empty profiles: malicious %s vs benign %s; paper: 97%% vs ~4%%)\n",
		pct(f.MalZero), pct(f.BenZero))
}

// Fig10Row is the cluster-count reduction at one similarity threshold.
type Fig10Row struct {
	Threshold float64
	Benign    float64 // clusters / apps
	Malicious float64
}

// Fig10 clusters D-Sample app names at decreasing similarity thresholds
// (paper: at threshold 1, malicious clusters < 1/5 of apps; benign ~1).
func (r *Runner) Fig10() []Fig10Row {
	names := func(ids []string) []string {
		var out []string
		for _, id := range ids {
			out = append(out, r.appName(id))
		}
		return out
	}
	benNames, malNames := names(r.Data.Benign), names(r.Data.Malicious)
	var rows []Fig10Row
	for _, th := range []float64{1, 0.9, 0.8, 0.7, 0.6} {
		_, bc := textdist.Cluster(benNames, th)
		_, mc := textdist.Cluster(malNames, th)
		row := Fig10Row{Threshold: th}
		if len(benNames) > 0 {
			row.Benign = float64(bc) / float64(len(benNames))
		}
		if len(malNames) > 0 {
			row.Malicious = float64(mc) / float64(len(malNames))
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderFig10 formats Fig. 10.
func RenderFig10(rows []Fig10Row) string {
	tb := &table{header: []string{"Similarity threshold", "Benign clusters/apps", "Malicious clusters/apps"}}
	for _, row := range rows {
		tb.add(fmt.Sprintf("%.1f", row.Threshold), pct(row.Benign), pct(row.Malicious))
	}
	return "Fig 10: name clustering (paper: malicious reduce to <20% at threshold 1)\n" + tb.String()
}

// Fig11Result carries identical-name cluster-size distributions.
type Fig11Result struct {
	MalClusters     int
	MalOver10       float64 // fraction of malicious clusters with > 10 apps
	MalLargest      int
	MalLargestName  string
	BenMaxCluster   int
	SharedNameShare float64 // malicious apps sharing a name with another
}

// Fig11 measures identical-name cluster sizes (paper: ~10% of malicious
// clusters exceed 10 apps; 627 apps share the name 'The App'; 87% of
// malicious apps share a name).
func (r *Runner) Fig11() Fig11Result {
	malNames := make([]string, 0, len(r.Data.Malicious))
	for _, id := range r.Data.Malicious {
		malNames = append(malNames, r.appName(id))
	}
	assign, n := textdist.Cluster(malNames, 1)
	sizes := textdist.ClusterSizes(assign, n)
	res := Fig11Result{MalClusters: n}
	over10 := 0
	largestIdx := -1
	for i, s := range sizes {
		if s > 10 {
			over10++
		}
		if s > res.MalLargest {
			res.MalLargest = s
			largestIdx = i
		}
	}
	if n > 0 {
		res.MalOver10 = float64(over10) / float64(n)
	}
	if largestIdx >= 0 {
		for i, c := range assign {
			if c == largestIdx {
				res.MalLargestName = malNames[i]
				break
			}
		}
	}
	shared := 0
	for _, c := range assign {
		if sizes[c] > 1 {
			shared++
		}
	}
	if len(assign) > 0 {
		res.SharedNameShare = float64(shared) / float64(len(assign))
	}
	benNames := make([]string, 0, len(r.Data.Benign))
	for _, id := range r.Data.Benign {
		benNames = append(benNames, r.appName(id))
	}
	bAssign, bn := textdist.Cluster(benNames, 1)
	for _, s := range textdist.ClusterSizes(bAssign, bn) {
		if s > res.BenMaxCluster {
			res.BenMaxCluster = s
		}
	}
	return res
}

// Render formats Fig. 11 / §4.2.1.
func (f Fig11Result) Render() string {
	return fmt.Sprintf(`Fig 11 / §4.2.1: identical-name clusters (paper: 87%% share names, ~10%% of clusters >10 apps, 'The App' x627)
  malicious clusters: %d, sharing apps: %s, clusters >10 apps: %s
  largest cluster: %q with %d apps; largest benign cluster: %d
`,
		f.MalClusters, pct(f.SharedNameShare), pct(f.MalOver10),
		f.MalLargestName, f.MalLargest, f.BenMaxCluster)
}

// Fig12Result carries the external-link-to-post ratio distributions.
type Fig12Result struct {
	Benign     CDFResult
	Malicious  CDFResult
	BenZero    float64 // benign apps with no external links at all
	MalAtLeast float64 // malicious apps averaging >= 1 external link/post
}

// Fig12 computes external-link ratios (paper: 80% of benign post none; 40%
// of malicious average one per post).
func (r *Runner) Fig12() Fig12Result {
	ratio := func(ids []string) []float64 {
		var out []float64
		for _, id := range ids {
			as, ok := r.Data.Stats[id]
			if !ok || as.Posts == 0 {
				continue
			}
			out = append(out, float64(as.ExternalLinks)/float64(as.Posts))
		}
		return out
	}
	br, mr := ratio(r.Data.Benign), ratio(r.Data.Malicious)
	axis := stats.LinSpace(0, 1.2, 25)
	return Fig12Result{
		Benign: CDFResult{Label: "Fig 12: benign external-link ratio", N: len(br),
			Curve: stats.NewCDF(br).Curve(axis)},
		Malicious: CDFResult{Label: "Fig 12: malicious external-link ratio", N: len(mr),
			Curve: stats.NewCDF(mr).Curve(axis)},
		BenZero:    fracEqualZero(br),
		MalAtLeast: fracAtLeast(mr, 0.999),
	}
}

// Render formats Fig. 12.
func (f Fig12Result) Render() string {
	return fmt.Sprintf("Fig 12: external link to post ratio (benign at 0: %s, malicious >=1: %s; paper: 80%%, 40%%)\n",
		pct(f.BenZero), pct(f.MalAtLeast))
}

// Fig13 is covered by Fig1Result's role counts; Fig14 below gives the
// clustering-coefficient distribution.

// Fig14Result is the local-clustering-coefficient distribution.
type Fig14Result struct {
	CDF     CDFResult
	Over074 float64
}

// Fig14 computes local clustering coefficients over the collaboration
// graph (paper: 25% of apps above 0.74).
func (r *Runner) Fig14() Fig14Result {
	g, _ := r.collaboration()
	var cc []float64
	for _, c := range g.ClusteringCoefficients() {
		cc = append(cc, c)
	}
	sort.Float64s(cc)
	cdf := stats.NewCDF(cc)
	return Fig14Result{
		CDF: CDFResult{Label: "Fig 14: local clustering coefficient", N: len(cc),
			Curve: cdf.Curve(stats.LinSpace(0, 1, 21))},
		Over074: cdf.CCDFAt(0.74),
	}
}

// Render formats Fig. 14.
func (f Fig14Result) Render() string {
	return fmt.Sprintf("Fig 14: clustering coefficients (apps > 0.74: %s; paper: 25%%)\n", pct(f.Over074))
}

// Fig15Result is one dense local neighbourhood, like the paper's "Death
// Predictor" example (26 neighbours, coefficient 0.87, 22 sharing a name).
type Fig15Result struct {
	AppID     string
	Name      string
	Neighbors int
	LCC       float64
	SameName  int
}

// Fig15 finds a dense well-connected neighbourhood, preferring ones whose
// members share the app's name (the paper's example: 22 of 'Death
// Predictor's 26 neighbours carry the same name).
func (r *Runner) Fig15() Fig15Result {
	g, _ := r.collaboration()
	best := Fig15Result{}
	score := func(f Fig15Result) float64 {
		return f.LCC + 2*float64(f.SameName)/float64(max(1, f.Neighbors))
	}
	for _, v := range g.Nodes() {
		deg := g.Degree(v)
		if deg < 10 {
			continue
		}
		lcc := g.LocalClusteringCoefficient(v)
		if lcc < 0.5 {
			continue
		}
		cand := Fig15Result{AppID: v, Name: r.appName(v), Neighbors: deg, LCC: lcc}
		for _, u := range g.Neighborhood(v) {
			if r.appName(u) == cand.Name {
				cand.SameName++
			}
		}
		if best.AppID == "" || score(cand) > score(best) {
			best = cand
		}
	}
	return best
}

// Render formats Fig. 15.
func (f Fig15Result) Render() string {
	if f.AppID == "" {
		return "Fig 15: no neighbourhood with >= 10 collaborators found\n"
	}
	return fmt.Sprintf("Fig 15: densest neighbourhood: %q — %d neighbours, coefficient %.2f, %d sharing its name (paper: 'Death Predictor', 26, 0.87, 22)\n",
		f.Name, f.Neighbors, f.LCC, f.SameName)
}

// Fig16Result is the flagged-post-ratio distribution across flagged apps.
type Fig16Result struct {
	CDF     CDFResult
	Below02 float64
	NearOne float64
}

// Fig16 computes, per app with at least one flagged post, the malicious-
// to-all-posts ratio (paper: 5% of apps below 0.2 — the piggybacked
// victims).
func (r *Runner) Fig16() Fig16Result {
	ratios := forensics.FlaggedRatios(r.Data.Stats)
	cdf := stats.NewCDF(ratios)
	return Fig16Result{
		CDF: CDFResult{Label: "Fig 16: malicious-post ratio of flagged apps", N: len(ratios),
			Curve: cdf.Curve(stats.LinSpace(0, 1, 21))},
		Below02: cdf.At(0.2),
		NearOne: cdf.FractionAtLeast(0.9),
	}
}

// Render formats Fig. 16.
func (f Fig16Result) Render() string {
	return fmt.Sprintf("Fig 16: flagged-post ratios (apps < 0.2: %s — piggyback victims; apps >= 0.9: %s; paper: ~5%% below 0.2)\n",
		pct(f.Below02), pct(f.NearOne))
}

// IndirectionResult summarises the indirection-website survey (§6.1).
type IndirectionResult struct {
	Report forensics.SiteReport
}

// Indirection surveys the indirection-site infrastructure.
func (r *Runner) Indirection() IndirectionResult {
	return IndirectionResult{Report: forensics.SurveySites(r.World)}
}

// Render formats the §6.1 indirection survey.
func (i IndirectionResult) Render() string {
	rep := i.Report
	amazonShare := 0.0
	if rep.Sites > 0 {
		amazonShare = float64(rep.AmazonHosted) / float64(rep.Sites)
	}
	over100 := 0.0
	if rep.Sites > 0 {
		over100 = float64(rep.SitesOver100) / float64(rep.Sites)
	}
	return fmt.Sprintf(`§6.1 indirection websites (paper: 103 sites -> 4,676 apps; 35%% promote >100 apps; 1/3 on Amazon)
  sites: %d, unique promoted apps: %d, sites promoting >100 apps: %s, amazon-hosted: %s
`,
		rep.Sites, rep.UniqueTargets, pct(over100), pct(amazonShare))
}

// PrevalenceResult reproduces the §3 prevalence statistics.
type PrevalenceResult struct {
	FlaggedPostsTotal    int64
	FromMaliciousApps    float64 // paper: 53%
	FromNoApp            float64 // paper: 27%
	FromBenignApps       float64 // piggybacked remainder
	MaliciousShareOfApps float64 // paper: 13%
	ClicksOver100K       float64 // paper: 60%
	MedianMAUOver1000    float64 // paper: 40%
}

// Prevalence measures how widespread malicious apps are (§3).
func (r *Runner) Prevalence() PrevalenceResult {
	var malPosts, benPosts int64
	for id, as := range r.Data.Stats {
		if as.FlaggedPosts == 0 {
			continue
		}
		if r.World.IsMalicious(id) {
			malPosts += int64(as.FlaggedPosts)
		} else {
			benPosts += int64(as.FlaggedPosts)
		}
	}
	manual := r.World.ManualFlaggedPosts()
	total := malPosts + benPosts + manual
	res := PrevalenceResult{FlaggedPostsTotal: total}
	if total > 0 {
		res.FromMaliciousApps = float64(malPosts) / float64(total)
		res.FromNoApp = float64(manual) / float64(total)
		res.FromBenignApps = float64(benPosts) / float64(total)
	}
	res.MaliciousShareOfApps = float64(len(r.World.MaliciousIDs)) / float64(r.World.Platform.NumApps())
	res.ClicksOver100K = r.clicksFracOver(1e5)
	_, malSummary := r.Data.DSummary()
	var medians []float64
	for _, id := range malSummary {
		if app, err := r.World.Platform.App(id); err == nil {
			medians = append(medians, float64(app.MedianMAU()))
		}
	}
	res.MedianMAUOver1000 = fracAtLeast(medians, 1000)
	return res
}

// clicksFracOver returns the fraction of bit.ly-using malicious apps whose
// total clicks exceed min.
func (r *Runner) clicksFracOver(min float64) float64 {
	var sums []float64
	for _, id := range r.Data.Malicious {
		as, ok := r.Data.Stats[id]
		if !ok {
			continue
		}
		total := int64(0)
		has := false
		seen := map[string]bool{}
		for _, link := range as.Links {
			if !r.World.Bitly.IsShort(link) || seen[link] {
				continue
			}
			seen[link] = true
			has = true
			if n, err := r.World.Bitly.Clicks(link); err == nil {
				total += n
			}
		}
		if has {
			sums = append(sums, float64(total))
		}
	}
	return fracAtLeast(sums, min)
}

// Render formats the §3 prevalence block.
func (p PrevalenceResult) Render() string {
	return fmt.Sprintf(`§3 prevalence (paper: 13%% of apps malicious; 53%% of flagged posts from malicious apps, 27%% app-less; 60%% of apps >100K clicks; 40%% median MAU >= 1000)
  malicious share of apps: %s
  flagged posts: %d — %s from malicious apps, %s app-less, %s via benign apps (piggybacking)
  malicious apps with >100K bit.ly clicks: %s
  malicious apps with median MAU >= 1000: %s
`,
		pct(p.MaliciousShareOfApps), p.FlaggedPostsTotal,
		pct(p.FromMaliciousApps), pct(p.FromNoApp), pct(p.FromBenignApps),
		pct(p.ClicksOver100K), pct(p.MedianMAUOver1000))
}
