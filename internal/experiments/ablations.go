package experiments

import (
	"fmt"
	"math/rand"

	"frappe/internal/core"
	"frappe/internal/svm"
)

// RobustResult is the §7 obfuscation-resistance check: FRAppE restricted
// to the three features hackers cannot cheaply fake.
type RobustResult struct {
	Robust core.Metrics
	Full   core.Metrics
}

// Robust compares the robust-only feature subset against full FRAppE
// (paper: robust-only still reaches 98.2% / 0.4% FP / 3.2% FN).
func (r *Runner) Robust() (RobustResult, error) {
	records, labels := r.completeSample()
	robust, err := core.CrossValidate(records, labels, 5, core.Options{Features: core.RobustFeatures(), Seed: r.Seed})
	if err != nil {
		return RobustResult{}, err
	}
	full, err := core.CrossValidate(records, labels, 5, core.Options{Features: core.FullFeatures(), Seed: r.Seed})
	if err != nil {
		return RobustResult{}, err
	}
	return RobustResult{Robust: robust, Full: full}, nil
}

// Render formats the §7 comparison.
func (a RobustResult) Render() string {
	return fmt.Sprintf("§7 robust features only (paper: 98.2%% / 0.4%% / 3.2%%)\n  robust: %v\n  full:   %v\n",
		a.Robust, a.Full)
}

// KernelRow is one kernel-ablation line.
type KernelRow struct {
	Kernel  string
	Metrics core.Metrics
}

// AblationKernels compares SVM kernels on full FRAppE features. The paper
// uses libsvm's default RBF kernel; this ablation quantifies what that
// choice buys over a linear and a polynomial kernel.
func (r *Runner) AblationKernels() ([]KernelRow, error) {
	records, labels := r.completeSample()
	kernels := []struct {
		name string
		k    svm.Kernel
	}{
		{"linear", svm.Kernel{Type: svm.Linear}},
		{"rbf (libsvm default)", svm.Kernel{Type: svm.RBF, Gamma: 1.0 / float64(len(core.FullFeatures()))}},
		{"polynomial deg=3 coef0=1", svm.Kernel{Type: svm.Polynomial, Gamma: 1.0 / float64(len(core.FullFeatures())), Coef0: 1, Degree: 3}},
	}
	var rows []KernelRow
	for _, kr := range kernels {
		p := svm.DefaultParams(len(core.FullFeatures()))
		p.Kernel = kr.k
		p.Seed = r.Seed
		m, err := core.CrossValidate(records, labels, 5, core.Options{
			Features: core.FullFeatures(), SVM: &p, Seed: r.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", kr.name, err)
		}
		rows = append(rows, KernelRow{Kernel: kr.name, Metrics: m})
	}
	return rows, nil
}

// RenderKernels formats the kernel ablation.
func RenderKernels(rows []KernelRow) string {
	tb := &table{header: []string{"Kernel", "Accuracy", "FP", "FN"}}
	for _, row := range rows {
		tb.add(row.Kernel, pct(row.Metrics.Accuracy()), pct(row.Metrics.FPRate()), pct(row.Metrics.FNRate()))
	}
	return "Ablation: SVM kernel choice (paper uses libsvm's RBF defaults)\n" + tb.String()
}

// NoiseRow is one label-noise ablation line.
type NoiseRow struct {
	NoiseRate float64
	Metrics   core.Metrics
}

// AblationLabelNoise injects symmetric label noise into the training data
// and re-runs cross-validation. §5.3 bounds the real ground truth's false
// positives at 2.6%; this measures how much such noise can cost.
func (r *Runner) AblationLabelNoise() ([]NoiseRow, error) {
	records, labels := r.completeSample()
	var rows []NoiseRow
	for _, rate := range []float64{0, 0.026, 0.10} {
		noisy := make([]bool, len(labels))
		copy(noisy, labels)
		rng := rand.New(rand.NewSource(r.Seed + int64(rate*1000)))
		for i := range noisy {
			if rng.Float64() < rate {
				noisy[i] = !noisy[i]
			}
		}
		// Evaluate against the TRUE labels: folds are trained on noisy
		// ones via a manual split.
		m, err := crossValidateNoisy(records, noisy, labels, 5, core.Options{
			Features: core.FullFeatures(), Seed: r.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("noise %.3f: %w", rate, err)
		}
		rows = append(rows, NoiseRow{NoiseRate: rate, Metrics: m})
	}
	return rows, nil
}

// crossValidateNoisy trains each fold on noisy labels but scores against
// clean ones.
func crossValidateNoisy(records []core.AppRecord, noisy, clean []bool, k int, opts core.Options) (core.Metrics, error) {
	var m core.Metrics
	rng := rand.New(rand.NewSource(opts.Seed))
	fold := make([]int, len(records))
	for i := range fold {
		fold[i] = i % k
	}
	rng.Shuffle(len(fold), func(i, j int) { fold[i], fold[j] = fold[j], fold[i] })
	for f := 0; f < k; f++ {
		var trR, teR []core.AppRecord
		var trL, teL []bool
		for i := range records {
			if fold[i] == f {
				teR = append(teR, records[i])
				teL = append(teL, clean[i])
			} else {
				trR = append(trR, records[i])
				trL = append(trL, noisy[i])
			}
		}
		clf, err := core.Train(trR, trL, opts)
		if err != nil {
			return core.Metrics{}, err
		}
		fm, err := core.Evaluate(clf, teR, teL)
		if err != nil {
			return core.Metrics{}, err
		}
		m.TP += fm.TP
		m.TN += fm.TN
		m.FP += fm.FP
		m.FN += fm.FN
	}
	return m, nil
}

// RenderNoise formats the label-noise ablation.
func RenderNoise(rows []NoiseRow) string {
	tb := &table{header: []string{"Training label noise", "Accuracy", "FP", "FN"}}
	for _, row := range rows {
		tb.add(pct(row.NoiseRate), pct(row.Metrics.Accuracy()), pct(row.Metrics.FPRate()), pct(row.Metrics.FNRate()))
	}
	return "Ablation: training-label noise (§5.3 bounds real noise at 2.6%)\n" + tb.String()
}
