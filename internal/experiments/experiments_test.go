package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"
)

var (
	once   sync.Once
	runner *Runner
	runErr error
)

func sharedRunner(t *testing.T) *Runner {
	t.Helper()
	once.Do(func() { runner, runErr = New(context.Background(), 0.08, 11) })
	if runErr != nil {
		t.Fatalf("New: %v", runErr)
	}
	return runner
}

func TestTable1(t *testing.T) {
	r := sharedRunner(t)
	res := r.Table1()
	if res.DTotal == 0 {
		t.Fatal("empty D-Total")
	}
	if !strings.Contains(res.Render(), "D-Sample") {
		t.Error("render missing D-Sample row")
	}
}

func TestTable2(t *testing.T) {
	r := sharedRunner(t)
	rows := r.Table2()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Posts < rows[i].Posts {
			t.Error("not sorted by posts")
		}
	}
	if rows[0].Name == "" || rows[0].AppID == "" {
		t.Error("missing identity fields")
	}
	if !strings.Contains(RenderTable2(rows), "App name") {
		t.Error("render broken")
	}
}

func TestTable3(t *testing.T) {
	r := sharedRunner(t)
	res := r.Table3()
	if len(res.Rows) == 0 {
		t.Fatal("no hosting domains")
	}
	// Heavy concentration, as in the paper (83% on five domains).
	if res.Top5Share < 0.3 {
		t.Errorf("top-5 share = %.2f, want >= 0.3", res.Top5Share)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1].Apps < res.Rows[i].Apps {
			t.Error("not sorted")
		}
	}
}

func TestTable4(t *testing.T) {
	out := Table4()
	if !strings.Contains(out, "wot-trust-score") {
		t.Error("Table 4 missing features")
	}
}

func TestTable5(t *testing.T) {
	r := sharedRunner(t)
	rows, err := r.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		t.Logf("ratio %d:1 -> %v", row.Ratio, row.Metrics)
		if row.Metrics.Accuracy() < 0.90 {
			t.Errorf("ratio %d accuracy = %.3f, want >= 0.90", row.Ratio, row.Metrics.Accuracy())
		}
	}
}

func TestTable6(t *testing.T) {
	r := sharedRunner(t)
	rows, err := r.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, row := range rows {
		t.Logf("%v -> %v", row.Feature, row.Metrics)
		byName[row.Feature.String()] = row.Metrics.Accuracy()
	}
	// The description feature should dominate category/company, as in
	// Table 6 (97.8% vs 76.5% / 72.1%).
	if byName["description-specified"] <= byName["category-specified"] {
		t.Errorf("description (%.3f) should beat category (%.3f)",
			byName["description-specified"], byName["category-specified"])
	}
}

func TestFRAppEHeadline(t *testing.T) {
	r := sharedRunner(t)
	res, err := r.FRAppE()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.Render())
	if res.Full.Accuracy() < 0.95 {
		t.Errorf("full accuracy = %.3f, want >= 0.95 (paper 0.995)", res.Full.Accuracy())
	}
	if res.Full.FPRate() > 0.02 {
		t.Errorf("full FP = %.3f (paper 0)", res.Full.FPRate())
	}
}

func TestTable8(t *testing.T) {
	r := sharedRunner(t)
	res, err := r.Table8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.Render())
	if res.Flagged == 0 {
		t.Fatal("sweep flagged nothing")
	}
	validated := float64(res.Report.Validated) / float64(res.Report.Total)
	// The paper validates 98.5%; in the synthetic world whole AppNets can
	// evade MyPageKeeper, leaving their campaign names unknown, so the
	// bound is looser (see EXPERIMENTS.md).
	if validated < 0.78 {
		t.Errorf("validated = %.3f, want >= 0.78 (paper 0.985)", validated)
	}
	if res.TruePrecision < 0.9 {
		t.Errorf("precision = %.3f", res.TruePrecision)
	}
	if res.Report.ByTechnique[0] == 0 { // ValDeleted
		t.Error("no deletions validated despite the §5.3 timeline")
	}
}

func TestTable9(t *testing.T) {
	r := sharedRunner(t)
	rows := r.Table9()
	if len(rows) == 0 {
		t.Fatal("no piggyback victims")
	}
	if rows[0].Posts == 0 || rows[0].Name == "" {
		t.Errorf("bad top row: %+v", rows[0])
	}
}

func TestFig1(t *testing.T) {
	r := sharedRunner(t)
	res := r.Fig1()
	if res.Summary.Apps == 0 || res.SnapshotSize == 0 {
		t.Fatalf("empty AppNet: %+v", res.Summary)
	}
	if res.Summary.DegreeOver10 <= 0 {
		t.Error("no high-degree colluders")
	}
	t.Log(res.Render())
}

func TestFig3(t *testing.T) {
	r := sharedRunner(t)
	res := r.Fig3()
	if res.N == 0 {
		t.Fatal("no bit.ly-using apps")
	}
	// Shape: the majority of bit.ly-using malicious apps exceed 100K
	// clicks and a visible minority exceed 1M (paper: 60% / 20%).
	var over100k, over1m float64
	for _, p := range res.Curve {
		if p.X >= 1e5 && over100k == 0 {
			over100k = 1 - p.Y
		}
		if p.X >= 1e6 && over1m == 0 {
			over1m = 1 - p.Y
		}
	}
	if over100k < 0.35 {
		t.Errorf("apps over 100K clicks = %.2f, want >= 0.35", over100k)
	}
	if over1m < 0.05 {
		t.Errorf("apps over 1M clicks = %.2f, want >= 0.05", over1m)
	}
}

func TestFig4(t *testing.T) {
	r := sharedRunner(t)
	res := r.Fig4()
	if res.Median.N == 0 || res.Max.N == 0 {
		t.Fatal("no MAU samples")
	}
	t.Log(res.Median.Render(), res.Max.Render())
}

func TestFig5(t *testing.T) {
	r := sharedRunner(t)
	rows := r.Fig5()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Benign <= row.Malicious {
			t.Errorf("%s: benign (%.2f) should exceed malicious (%.2f)",
				row.Field, row.Benign, row.Malicious)
		}
	}
	desc := rows[2]
	if desc.Benign < 0.85 || desc.Malicious > 0.10 {
		t.Errorf("description rates off: %+v (paper 93%% vs 1.4%%)", desc)
	}
}

func TestFig6(t *testing.T) {
	r := sharedRunner(t)
	rows := r.Fig6()
	if len(rows) == 0 {
		t.Fatal("no permissions")
	}
	if rows[0].Permission != "publish_stream" {
		t.Errorf("top permission = %s, want publish_stream", rows[0].Permission)
	}
	if rows[0].Malicious < 0.9 {
		t.Errorf("malicious publish_stream rate = %.2f", rows[0].Malicious)
	}
}

func TestFig7(t *testing.T) {
	r := sharedRunner(t)
	res := r.Fig7()
	if res.MalOne < 0.90 {
		t.Errorf("malicious single-perm = %.2f (paper 97%%)", res.MalOne)
	}
	if res.BenignOne > 0.75 || res.BenignOne < 0.35 {
		t.Errorf("benign single-perm = %.2f (paper 62%%)", res.BenignOne)
	}
}

func TestFig8(t *testing.T) {
	r := sharedRunner(t)
	res := r.Fig8()
	// D-Inst is a small subsample of all malicious apps at test scale, so
	// the app-weighted 80% quota can wobble.
	if res.MalUnknown < 0.5 {
		t.Errorf("malicious unknown WOT = %.2f (paper 80%%)", res.MalUnknown)
	}
	if res.MalBelow5 < res.MalUnknown {
		t.Error("below-5 must include unknowns")
	}
	if res.BenHigh < 0.6 {
		t.Errorf("benign high WOT = %.2f (paper ~80%%)", res.BenHigh)
	}
}

func TestFig9(t *testing.T) {
	r := sharedRunner(t)
	res := r.Fig9()
	if res.MalZero < 0.9 {
		t.Errorf("malicious empty profiles = %.2f (paper 97%%)", res.MalZero)
	}
	if res.BenZero > 0.15 {
		t.Errorf("benign empty profiles = %.2f (paper ~4%%)", res.BenZero)
	}
}

func TestFig10(t *testing.T) {
	r := sharedRunner(t)
	rows := r.Fig10()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Clusters shrink monotonically with the threshold, and malicious
	// names cluster much harder than benign ones.
	for i := 1; i < len(rows); i++ {
		if rows[i].Malicious > rows[i-1].Malicious+1e-9 {
			t.Error("malicious clusters increased as threshold dropped")
		}
	}
	at1 := rows[0]
	if at1.Malicious > 0.45 {
		t.Errorf("malicious clusters/apps at threshold 1 = %.2f (paper < 0.2 at full scale)", at1.Malicious)
	}
	if at1.Benign < 0.8 {
		t.Errorf("benign clusters/apps at threshold 1 = %.2f (paper ~1)", at1.Benign)
	}
}

func TestFig11(t *testing.T) {
	r := sharedRunner(t)
	res := r.Fig11()
	if res.SharedNameShare < 0.6 {
		t.Errorf("name sharing = %.2f (paper 87%%)", res.SharedNameShare)
	}
	if res.MalLargest < 5 {
		t.Errorf("largest cluster = %d", res.MalLargest)
	}
	t.Log(res.Render())
}

func TestFig12(t *testing.T) {
	r := sharedRunner(t)
	res := r.Fig12()
	if res.BenZero < 0.6 {
		t.Errorf("benign zero-external = %.2f (paper 80%%)", res.BenZero)
	}
	if res.MalAtLeast < 0.2 {
		t.Errorf("malicious ratio>=1 = %.2f (paper 40%%)", res.MalAtLeast)
	}
}

func TestFig14(t *testing.T) {
	r := sharedRunner(t)
	res := r.Fig14()
	if res.CDF.N == 0 {
		t.Fatal("no coefficients")
	}
	if res.Over074 <= 0 {
		t.Error("no dense neighbourhoods (paper: 25% above 0.74)")
	}
}

func TestFig15(t *testing.T) {
	r := sharedRunner(t)
	res := r.Fig15()
	if res.AppID == "" {
		t.Skip("no neighbourhood with >= 10 collaborators at this scale")
	}
	if res.LCC <= 0.3 {
		t.Errorf("densest neighbourhood lcc = %.2f", res.LCC)
	}
	t.Log(res.Render())
}

func TestFig16(t *testing.T) {
	r := sharedRunner(t)
	res := r.Fig16()
	if res.CDF.N == 0 {
		t.Fatal("no flagged apps")
	}
	if res.Below02 <= 0 {
		t.Error("no piggyback-victim mass below 0.2")
	}
	if res.NearOne < 0.25 {
		t.Errorf("near-1 mass = %.2f; fully-flagged campaigns missing", res.NearOne)
	}
	if res.Below02 > 0.3 {
		t.Errorf("below-0.2 mass = %.2f; should be a small knee (paper ~5%%)", res.Below02)
	}
}

func TestIndirection(t *testing.T) {
	r := sharedRunner(t)
	res := r.Indirection()
	if res.Report.Sites == 0 || res.Report.UniqueTargets == 0 {
		t.Fatalf("empty survey: %+v", res.Report)
	}
	t.Log(res.Render())
}

func TestPrevalence(t *testing.T) {
	r := sharedRunner(t)
	res := r.Prevalence()
	t.Log(res.Render())
	if res.MaliciousShareOfApps < 0.10 || res.MaliciousShareOfApps > 0.16 {
		t.Errorf("malicious share = %.3f (paper 13%%)", res.MaliciousShareOfApps)
	}
	if res.FromMaliciousApps < 0.3 {
		t.Errorf("flagged posts from malicious apps = %.2f (paper 53%%)", res.FromMaliciousApps)
	}
	if res.FromNoApp <= 0 {
		t.Error("no app-less flagged posts (paper 27%)")
	}
	sum := res.FromMaliciousApps + res.FromNoApp + res.FromBenignApps
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("attribution shares sum to %.3f", sum)
	}
}

func TestRobust(t *testing.T) {
	r := sharedRunner(t)
	res, err := r.Robust()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.Render())
	if res.Robust.Accuracy() < 0.88 {
		t.Errorf("robust accuracy = %.3f (paper 98.2%%)", res.Robust.Accuracy())
	}
}

func TestAblationKernels(t *testing.T) {
	r := sharedRunner(t)
	rows, err := r.AblationKernels()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		t.Logf("%s -> %v", row.Kernel, row.Metrics)
		if row.Metrics.Accuracy() < 0.85 {
			t.Errorf("%s accuracy = %.3f", row.Kernel, row.Metrics.Accuracy())
		}
	}
}

func TestAblationLabelNoise(t *testing.T) {
	r := sharedRunner(t)
	rows, err := r.AblationLabelNoise()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		t.Logf("noise %.3f -> %v", row.NoiseRate, row.Metrics)
	}
	// At the paper's 2.6% noise bound, accuracy must stay high.
	if rows[1].Metrics.Accuracy() < 0.90 {
		t.Errorf("accuracy at 2.6%% noise = %.3f", rows[1].Metrics.Accuracy())
	}
}

func TestAblationGridSearch(t *testing.T) {
	r := sharedRunner(t)
	res, err := r.AblationGridSearch()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.Render())
	if res.Default.Accuracy() < 0.95 {
		t.Errorf("default accuracy = %.3f", res.Default.Accuracy())
	}
	// Tuning should not be dramatically worse than defaults.
	if res.Tuned.Accuracy()+0.03 < res.Default.Accuracy() {
		t.Errorf("tuned (%.3f) far below default (%.3f)",
			res.Tuned.Accuracy(), res.Default.Accuracy())
	}
	if res.BestC == 0 || res.BestG == 0 {
		t.Error("grid search returned no parameters")
	}
}

func TestAblationLearnedMPK(t *testing.T) {
	r := sharedRunner(t)
	res, err := r.AblationLearnedMPK()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.Render())
	if res.LearnedFlagged < res.HeuristicFlagged {
		t.Error("sticky flags cannot decrease")
	}
	if res.NewURLs == 0 {
		t.Error("the learned model should catch at least some evaded URLs")
	}
	// Coverage must stay sane: not everything becomes malicious.
	if res.BenignFPAfter > res.MaliciousApps/2 {
		t.Errorf("benign collateral = %d, looks like the model went rogue", res.BenignFPAfter)
	}
}

func TestCountermeasures(t *testing.T) {
	r := sharedRunner(t)
	res := r.Countermeasures()
	t.Log(res.Render())
	b, h := res.Baseline, res.Hardened
	if b.MaliciousApps != h.MaliciousApps {
		t.Errorf("populations differ: %d vs %d", b.MaliciousApps, h.MaliciousApps)
	}
	// The promotion ban must collapse the collusion graph.
	if h.PromotionEdges != 0 {
		t.Errorf("hardened promotion edges = %d, want 0", h.PromotionEdges)
	}
	if b.PromotionEdges == 0 {
		t.Error("baseline has no promotion edges")
	}
	// Client-ID enforcement removes the indirection trick entirely.
	if h.ClientIDMismatch != 0 {
		t.Errorf("hardened client-ID mismatches = %d, want 0", h.ClientIDMismatch)
	}
	if b.ClientIDMismatch == 0 {
		t.Error("baseline has no client-ID mismatches")
	}
	// prompt_feed authentication rejects every piggybacked post.
	if h.PiggybackDelivered != 0 || h.PiggybackRejected == 0 {
		t.Errorf("hardened piggyback delivered=%d rejected=%d", h.PiggybackDelivered, h.PiggybackRejected)
	}
	if h.VictimsFlagged != 0 {
		t.Errorf("hardened victims flagged = %d, want 0", h.VictimsFlagged)
	}
	if b.PiggybackDelivered == 0 || b.VictimsFlagged == 0 {
		t.Error("baseline piggybacking missing")
	}
	// Detection of truly malicious apps should not collapse: campaigns
	// still post scam links.
	if h.DetectedMalicious < b.DetectedMalicious/2 {
		t.Errorf("hardened detection fell too far: %d vs %d", h.DetectedMalicious, b.DetectedMalicious)
	}
}
