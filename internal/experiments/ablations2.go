package experiments

import (
	"fmt"

	"frappe/internal/core"
	"frappe/internal/svm"
	"frappe/internal/synth"
)

// GridSearchResult compares the libsvm-default SVM parameters (what the
// paper used) against (C, gamma) tuned by cross-validated grid search.
type GridSearchResult struct {
	Default core.Metrics
	Tuned   core.Metrics
	BestC   float64
	BestG   float64
}

// AblationGridSearch measures how much parameter tuning the paper left on
// the table by running with libsvm defaults.
func (r *Runner) AblationGridSearch() (GridSearchResult, error) {
	records, labels := r.completeSample()

	// Default parameters.
	def, err := core.CrossValidate(records, labels, 5, core.Options{
		Features: core.FullFeatures(), Seed: r.Seed,
	})
	if err != nil {
		return GridSearchResult{}, err
	}

	// Grid search on scaled raw vectors.
	ext := core.Extractor{Features: core.FullFeatures()}
	var xs [][]float64
	var ys []float64
	for i, rec := range records {
		v, err := ext.Vector(rec)
		if err != nil {
			return GridSearchResult{}, err
		}
		xs = append(xs, v)
		y := -1.0
		if labels[i] {
			y = 1
		}
		ys = append(ys, y)
	}
	scaler, err := svm.FitScaler(xs)
	if err != nil {
		return GridSearchResult{}, err
	}
	best, _, err := svm.GridSearch(scaler.ApplyAll(xs), ys, svm.Grid{Folds: 3, Seed: r.Seed})
	if err != nil {
		return GridSearchResult{}, err
	}

	p := svm.DefaultParams(len(core.FullFeatures()))
	p.C = best.C
	p.Kernel.Gamma = best.Gamma
	p.Seed = r.Seed
	tuned, err := core.CrossValidate(records, labels, 5, core.Options{
		Features: core.FullFeatures(), SVM: &p, Seed: r.Seed,
	})
	if err != nil {
		return GridSearchResult{}, err
	}
	return GridSearchResult{Default: def, Tuned: tuned, BestC: best.C, BestG: best.Gamma}, nil
}

// Render formats the grid-search ablation.
func (g GridSearchResult) Render() string {
	return fmt.Sprintf(`Ablation: SVM parameter tuning (the paper uses libsvm defaults C=1, gamma=1/#features)
  defaults:              %v
  grid-searched (C=%g, gamma=%g): %v
`, g.Default, g.BestC, g.BestG, g.Tuned)
}

// LearnedMPKResult measures how switching MyPageKeeper from threshold
// heuristics to its §2.2 SVM URL classifier changes ground-truth coverage.
type LearnedMPKResult struct {
	MaliciousApps    int
	HeuristicFlagged int
	LearnedFlagged   int
	NewURLs          int
	BenignFPBefore   int
	BenignFPAfter    int
}

// AblationLearnedMPK generates a fresh small world (the learned model
// mutates monitor state, so the shared world stays untouched), trains the
// URL classifier from the monitor's own blacklist-seeded labels, and
// re-classifies every URL.
func (r *Runner) AblationLearnedMPK() (LearnedMPKResult, error) {
	cfg := synth.Default(0.05)
	cfg.Seed = r.Seed + 99
	w := synth.Generate(cfg)

	res := LearnedMPKResult{MaliciousApps: len(w.MaliciousIDs)}
	countFlags := func() (mal, ben int) {
		for _, id := range w.MaliciousIDs {
			if w.Monitor.AppFlagged(id) {
				mal++
			}
		}
		for _, id := range w.BenignIDs {
			if w.Monitor.AppFlagged(id) {
				ben++
			}
		}
		return mal, ben
	}
	res.HeuristicFlagged, res.BenignFPBefore = countFlags()

	model, err := w.Monitor.TrainURLClassifier(0)
	if err != nil {
		return res, err
	}
	w.Monitor.SetURLModel(model)
	res.NewURLs = w.Monitor.ReclassifyAll()
	res.LearnedFlagged, res.BenignFPAfter = countFlags()
	return res, nil
}

// Render formats the learned-MPK ablation. Benign "flags" include the
// piggybacking victims, which the whitelist later clears.
func (l LearnedMPKResult) Render() string {
	return fmt.Sprintf(`Ablation: MyPageKeeper threshold heuristics vs its §2.2 learned SVM classifier
  malicious apps:            %d
  flagged (heuristics):      %d (%s)
  flagged (+learned, sticky): %d (%s); %d URLs newly flagged
  benign apps flagged:       %d -> %d (victims + collateral)
`,
		l.MaliciousApps,
		l.HeuristicFlagged, pct(float64(l.HeuristicFlagged)/float64(max(1, l.MaliciousApps))),
		l.LearnedFlagged, pct(float64(l.LearnedFlagged)/float64(max(1, l.MaliciousApps))),
		l.NewURLs, l.BenignFPBefore, l.BenignFPAfter)
}
