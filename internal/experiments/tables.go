package experiments

import (
	"context"
	"fmt"
	"strings"

	"frappe/internal/core"
	"frappe/internal/datasets"
	"frappe/internal/wot"
)

// Table1Result reproduces the dataset-summary table.
type Table1Result struct {
	DTotal int
	Rows   []datasets.Table1Row
}

// Table1 assembles the dataset summary (paper Table 1).
func (r *Runner) Table1() Table1Result {
	return Table1Result{DTotal: len(r.Data.DTotal), Rows: r.Data.Table1()}
}

// Render formats the table like the paper.
func (t Table1Result) Render() string {
	tb := &table{header: []string{"Dataset", "Benign", "Malicious"}}
	for _, row := range t.Rows {
		if row.Name == "D-Total" {
			tb.add("D-Total", fmt.Sprintf("%d total", t.DTotal), "")
			continue
		}
		tb.add(row.Name, fmt.Sprint(row.Benign), fmt.Sprint(row.Malicious))
	}
	return "Table 1: dataset summary (paper: 111,167 total; 6,273/6,273 in D-Sample)\n" + tb.String()
}

// Table2Row is one top-malicious-app line.
type Table2Row struct {
	AppID string
	Name  string
	Posts int64
}

// Table2 lists the top-5 malicious apps by post volume (paper Table 2).
func (r *Runner) Table2() []Table2Row {
	top := r.World.TopAppsByTruePosts(r.Data.Malicious, 5)
	rows := make([]Table2Row, 0, len(top))
	for _, id := range top {
		rows = append(rows, Table2Row{AppID: id, Name: r.appName(id), Posts: r.World.TruePosts[id]})
	}
	return rows
}

// RenderTable2 formats Table 2.
func RenderTable2(rows []Table2Row) string {
	tb := &table{header: []string{"App ID", "App name", "Post count"}}
	for _, row := range rows {
		tb.add(row.AppID, row.Name, fmt.Sprint(row.Posts))
	}
	return "Table 2: top malicious apps by posts (paper: 'What Does Your Name Mean?' leads with 1,006)\n" + tb.String()
}

// Table3Row is one hosting-domain line.
type Table3Row struct {
	Domain string
	Apps   int
}

// Table3Result carries the rows plus the concentration statistic.
type Table3Result struct {
	Rows []Table3Row
	// Top5Share is the share of D-Inst malicious apps hosted on the top
	// five domains (83% in the paper).
	Top5Share float64
}

// Table3 ranks the domains hosting malicious redirect URIs (paper Table 3).
func (r *Runner) Table3() Table3Result {
	_, mal := r.Data.DInst()
	hist := map[string]int{}
	for _, id := range mal {
		res := r.Data.Crawl[id]
		if res == nil || res.InstallErr != nil {
			continue
		}
		if d := wot.DomainOf(res.Install.RedirectURI); d != "" {
			hist[d]++
		}
	}
	var out Table3Result
	covered := 0
	for i, kv := range sortedCounts(hist) {
		if i == 5 {
			break
		}
		out.Rows = append(out.Rows, Table3Row{Domain: kv.Key, Apps: kv.Count})
		covered += kv.Count
	}
	if len(mal) > 0 {
		out.Top5Share = float64(covered) / float64(len(mal))
	}
	return out
}

// Render formats Table 3.
func (t Table3Result) Render() string {
	tb := &table{header: []string{"Domain hosting", "# of malicious apps"}}
	for _, row := range t.Rows {
		tb.add(row.Domain, fmt.Sprint(row.Apps))
	}
	return fmt.Sprintf("Table 3: top domains hosting malicious apps (top-5 share %s; paper: 83%%)\n%s",
		pct(t.Top5Share), tb.String())
}

// Table4 lists FRAppE Lite's features and sources; purely descriptive.
func Table4() string {
	tb := &table{header: []string{"Feature", "Source"}}
	sources := map[core.Feature]string{
		core.FeatCategory:        "graph.facebook.com/appID",
		core.FeatCompany:         "graph.facebook.com/appID",
		core.FeatDescription:     "graph.facebook.com/appID",
		core.FeatProfilePosts:    "graph.facebook.com/appID/feed",
		core.FeatPermissionCount: "facebook.com/apps/application.php?id=appID",
		core.FeatClientIDDiffers: "facebook.com/apps/application.php?id=appID",
		core.FeatWOTScore:        "install redirect URI + WOT",
	}
	for _, f := range core.LiteFeatures() {
		tb.add(f.String(), sources[f])
	}
	return "Table 4: FRAppE Lite features\n" + tb.String()
}

// RatioRow is one Table 5 line: cross-validation at a benign:malicious
// training ratio.
type RatioRow struct {
	Ratio   int
	Metrics core.Metrics
}

// Table5 runs FRAppE Lite 5-fold cross-validation at ratios 1:1, 4:1, 7:1
// and 10:1 (paper Table 5).
func (r *Runner) Table5() ([]RatioRow, error) {
	return r.Table5With([]int{1, 4, 7, 10})
}

// Table5With runs the Table 5 cross-validation at the given training
// ratios (the DAG pipeline's invalidation tests narrow the sweep).
func (r *Runner) Table5With(ratios []int) ([]RatioRow, error) {
	records, labels := r.completeSample()
	var rows []RatioRow
	for _, ratio := range ratios {
		subR, subL, err := core.SampleRatio(records, labels, ratio, r.Seed+int64(ratio))
		if err != nil {
			return nil, fmt.Errorf("ratio %d: %w", ratio, err)
		}
		m, err := core.CrossValidate(subR, subL, 5, core.Options{Features: core.LiteFeatures(), Seed: r.Seed})
		if err != nil {
			return nil, fmt.Errorf("ratio %d: %w", ratio, err)
		}
		rows = append(rows, RatioRow{Ratio: ratio, Metrics: m})
	}
	return rows, nil
}

// RenderTable5 formats Table 5.
func RenderTable5(rows []RatioRow) string {
	tb := &table{header: []string{"Training Ratio", "Accuracy", "FP", "FN"}}
	for _, row := range rows {
		tb.add(fmt.Sprintf("%d:1", row.Ratio),
			pct(row.Metrics.Accuracy()), pct(row.Metrics.FPRate()), pct(row.Metrics.FNRate()))
	}
	return "Table 5: FRAppE Lite cross-validation (paper at 7:1: 99.0% / 0.1% / 4.4%)\n" + tb.String()
}

// FeatureRow is one Table 6 line: a classifier trained on a single feature.
type FeatureRow struct {
	Feature core.Feature
	Metrics core.Metrics
}

// Table6 measures each on-demand feature in isolation (paper Table 6).
func (r *Runner) Table6() ([]FeatureRow, error) {
	records, labels := r.completeSample()
	var rows []FeatureRow
	for _, f := range core.LiteFeatures() {
		m, err := core.CrossValidate(records, labels, 5, core.Options{Features: []core.Feature{f}, Seed: r.Seed})
		if err != nil {
			return nil, fmt.Errorf("feature %v: %w", f, err)
		}
		rows = append(rows, FeatureRow{Feature: f, Metrics: m})
	}
	return rows, nil
}

// RenderTable6 formats Table 6.
func RenderTable6(rows []FeatureRow) string {
	tb := &table{header: []string{"Feature", "Accuracy", "FP", "FN"}}
	for _, row := range rows {
		tb.add(row.Feature.String(),
			pct(row.Metrics.Accuracy()), pct(row.Metrics.FPRate()), pct(row.Metrics.FNRate()))
	}
	return "Table 6: single-feature classification (paper: description leads at 97.8%)\n" + tb.String()
}

// FRAppEResult compares FRAppE Lite with full FRAppE at the paper's 7:1
// operating point (§5.2's headline: 99.5% accuracy, zero FP, 4.1% FN).
type FRAppEResult struct {
	Lite core.Metrics
	Full core.Metrics
}

// FRAppE runs the headline comparison.
func (r *Runner) FRAppE() (FRAppEResult, error) {
	records, labels := r.completeSample()
	subR, subL, err := core.SampleRatio(records, labels, 7, r.Seed+7)
	if err != nil {
		return FRAppEResult{}, err
	}
	lite, err := core.CrossValidate(subR, subL, 5, core.Options{Features: core.LiteFeatures(), Seed: r.Seed})
	if err != nil {
		return FRAppEResult{}, err
	}
	full, err := core.CrossValidate(subR, subL, 5, core.Options{Features: core.FullFeatures(), Seed: r.Seed})
	if err != nil {
		return FRAppEResult{}, err
	}
	return FRAppEResult{Lite: lite, Full: full}, nil
}

// Render formats the §5.2 headline.
func (f FRAppEResult) Render() string {
	return fmt.Sprintf("FRAppE at 7:1 (paper: Lite 99.0%%/0.1%%/4.4%% -> Full 99.5%%/0%%/4.1%%)\n"+
		"  FRAppE Lite: %v\n  FRAppE:      %v\n", f.Lite, f.Full)
}

// Table8Result is the new-app detection sweep plus its validation.
type Table8Result struct {
	SweepApps     int // apps outside D-Sample that were classifiable
	Skipped       int // deleted/uncrawlable apps
	Flagged       int
	Report        core.ValidationReport
	TruePrecision float64 // against hidden ground truth (not in the paper)
}

// Table8 trains on all of D-Sample, sweeps the rest of D-Total, and runs
// the §5.3 validation pipeline over the newly flagged apps.
func (r *Runner) Table8(ctx context.Context) (Table8Result, error) {
	clf, err := r.TrainFull()
	if err != nil {
		return Table8Result{}, err
	}
	return r.Table8With(ctx, clf)
}

// TrainFull trains the full-feature FRAppE model on every crawlable
// D-Sample app — the §5.3 sweep's classifier. The DAG pipeline runs it as
// its own "train" stage.
func (r *Runner) TrainFull() (*core.Classifier, error) {
	d := r.Data
	labels := d.Labels()
	var trainR []core.AppRecord
	var trainL []bool
	for id, l := range labels {
		rec := core.AppRecord{ID: id, Crawl: d.Crawl[id], Stats: d.Stats[id]}
		if rec.Crawl == nil || rec.Crawl.SummaryErr != nil {
			continue
		}
		trainR = append(trainR, rec)
		trainL = append(trainL, l == datasets.LabelMalicious)
	}
	return core.Train(trainR, trainL, core.Options{Features: core.FullFeatures(), Seed: r.Seed})
}

// Table8With runs the §5.3 sweep and validation with a pre-trained full
// model. The initial clock advance is a no-op on a world that already
// crawled, but positions a freshly materialized world whose datasets were
// rehydrated from a cached artifact.
func (r *Runner) Table8With(ctx context.Context, clf *core.Classifier) (Table8Result, error) {
	d := r.Data
	r.World.AdvanceTo(r.World.Config.CrawlMonth)
	labels := d.Labels()
	inSample := make(map[string]bool, len(labels))
	for id := range labels {
		inSample[id] = true
	}
	var sweepIDs []string
	for _, id := range d.DTotal {
		if !inSample[id] {
			sweepIDs = append(sweepIDs, id)
		}
	}
	b := &datasets.Builder{World: r.World}
	crawl, err := b.CrawlAll(ctx, sweepIDs)
	if err != nil {
		return Table8Result{}, err
	}
	var records []core.AppRecord
	for _, id := range sweepIDs {
		records = append(records, core.AppRecord{ID: id, Crawl: crawl[id], Stats: d.Stats[id]})
	}
	verdicts, skipped, err := clf.ClassifyAll(records)
	if err != nil {
		return Table8Result{}, err
	}
	var flagged []core.AppRecord
	trueHits := 0
	byID := make(map[string]core.AppRecord, len(records))
	for _, rec := range records {
		byID[rec.ID] = rec
	}
	for _, v := range verdicts {
		if !v.Malicious {
			continue
		}
		flagged = append(flagged, byID[v.AppID])
		if r.World.IsMalicious(v.AppID) {
			trueHits++
		}
	}

	// Validation happens months later (October 2012).
	r.World.AdvanceTo(r.World.Config.ValidationMonth)
	known := r.records(d.Malicious)
	counts := core.KnownNameCounts(known)
	// Deleted D-Sample apps keep their names via the platform registry.
	for _, id := range d.Malicious {
		if rec := d.Crawl[id]; rec == nil || rec.SummaryErr != nil {
			counts[canonical(r.appName(id))]++
		}
	}
	cfg := core.ValidationConfig{
		DeletedNow: func(id string) bool {
			_, err := r.World.Platform.Lookup(id)
			return err != nil
		},
		KnownNameCounts:     counts,
		KnownMaliciousLinks: core.KnownLinks(known),
		PopularNames:        popularNames(r),
	}
	rep := core.ValidateFlagged(flagged, cfg)
	res := Table8Result{
		SweepApps: len(verdicts),
		Skipped:   len(skipped),
		Flagged:   len(flagged),
		Report:    rep,
	}
	if len(flagged) > 0 {
		res.TruePrecision = float64(trueHits) / float64(len(flagged))
	}
	return res, nil
}

func popularNames(r *Runner) []string {
	var names []string
	for _, id := range r.World.PopularIDs {
		names = append(names, r.appName(id))
	}
	return names
}

// canonical mirrors core's internal name canonicalisation for the
// deleted-app name top-up (lower-case, collapsed whitespace, version
// suffix stripped — StripVersion is idempotent on plain names).
func canonical(name string) string {
	return strings.ToLower(strings.Join(strings.Fields(name), " "))
}

// Render formats Table 8.
func (t Table8Result) Render() string {
	tb := &table{header: []string{"Criteria", "# validated", "Cumulative"}}
	order := []core.ValidationTechnique{
		core.ValDeleted, core.ValNameSimilarity, core.ValPostSimilarity,
		core.ValTyposquat, core.ValManual,
	}
	cum := 0
	for _, tech := range order {
		cum += t.Report.Cumulative[tech]
		tb.add(tech.String(), fmt.Sprint(t.Report.ByTechnique[tech]), fmt.Sprint(cum))
	}
	tb.add("total validated", fmt.Sprint(t.Report.Validated),
		pct(float64(t.Report.Validated)/float64(max(1, t.Report.Total))))
	tb.add("unknown", fmt.Sprint(t.Report.Unknown), "")
	return fmt.Sprintf("Table 8: validation of %d newly flagged apps (sweep over %d classifiable, %d skipped; paper: 8,144 flagged, 98.5%% validated)\n%sTrue precision vs hidden ground truth: %s\n",
		t.Flagged, t.SweepApps, t.Skipped, tb.String(), pct(t.TruePrecision))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
