package bitly

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestEncodeBase62(t *testing.T) {
	cases := []struct {
		n    uint64
		want string
	}{
		{0, "a"},
		{1, "b"},
		{61, "9"},
		{62, "ba"},
		{62*62 + 1, "bab"},
	}
	for _, c := range cases {
		if got := encode(c.n); got != c.want {
			t.Errorf("encode(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestShortenExpandRoundTrip(t *testing.T) {
	s := NewService("http://bit.ly")
	short := s.Shorten("http://scam.example.com/ipad")
	if short != "http://bit.ly/a" {
		t.Errorf("short = %q", short)
	}
	long, err := s.Expand(short)
	if err != nil || long != "http://scam.example.com/ipad" {
		t.Errorf("Expand = %q, %v", long, err)
	}
	// Deduplication.
	if again := s.Shorten("http://scam.example.com/ipad"); again != short {
		t.Errorf("dedup failed: %q vs %q", again, short)
	}
	if s.NumLinks() != 1 {
		t.Errorf("NumLinks = %d", s.NumLinks())
	}
	if _, err := s.Expand("http://bit.ly/zzzz"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown expand err = %v", err)
	}
}

func TestClickAccounting(t *testing.T) {
	s := NewService("http://bit.ly")
	short := s.Shorten("http://example.com")
	if err := s.AddClicks(short, 41); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClicks(short, 1); err != nil {
		t.Fatal(err)
	}
	n, err := s.Clicks(short)
	if err != nil || n != 42 {
		t.Errorf("Clicks = %d, %v", n, err)
	}
	if err := s.AddClicks(short, -1); err == nil {
		t.Error("negative clicks: want error")
	}
	if err := s.AddClicks("http://bit.ly/nope", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown AddClicks err = %v", err)
	}
}

func TestIsShort(t *testing.T) {
	s := NewService("http://bit.ly")
	short := s.Shorten("http://example.com")
	if !s.IsShort(short) {
		t.Error("issued link not recognised")
	}
	if s.IsShort("http://tinyurl.com/abc") {
		t.Error("foreign link recognised")
	}
}

func TestHTTPAPI(t *testing.T) {
	svc := NewService("")
	srv := httptest.NewServer(svc)
	defer srv.Close()
	svc.SetBaseURL(srv.URL)

	c := &Client{BaseURL: srv.URL}
	short, err := c.Shorten("http://survey-scam.example.com/")
	if err != nil {
		t.Fatalf("Shorten: %v", err)
	}
	long, err := c.Expand(short)
	if err != nil || long != "http://survey-scam.example.com/" {
		t.Fatalf("Expand = %q, %v", long, err)
	}
	if n, err := c.Clicks(short); err != nil || n != 0 {
		t.Fatalf("Clicks = %d, %v", n, err)
	}

	// Following the short link redirects and counts a click.
	hc := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := hc.Get(short)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMovedPermanently {
		t.Errorf("redirect status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Location"); got != "http://survey-scam.example.com/" {
		t.Errorf("Location = %q", got)
	}
	if n, _ := c.Clicks(short); n != 1 {
		t.Errorf("clicks after redirect = %d, want 1", n)
	}
}

func TestHTTPAPIErrors(t *testing.T) {
	svc := NewService("")
	srv := httptest.NewServer(svc)
	defer srv.Close()
	svc.SetBaseURL(srv.URL)
	c := &Client{BaseURL: srv.URL}

	if _, err := c.Expand(srv.URL + "/doesnotexist"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Expand unknown err = %v", err)
	}
	if _, err := c.Clicks(srv.URL + "/doesnotexist"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Clicks unknown err = %v", err)
	}
	if _, err := c.Shorten(""); err == nil {
		t.Error("empty longUrl: want error")
	}
	resp, err := http.Get(srv.URL + "/v3/bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown endpoint status = %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/neverissued")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown code status = %d", resp.StatusCode)
	}
}

func TestConcurrentShorten(t *testing.T) {
	s := NewService("http://bit.ly")
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			short := s.Shorten(fmt.Sprintf("http://example.com/%d", i%10))
			if err := s.AddClicks(short, 1); err != nil {
				t.Errorf("AddClicks: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if s.NumLinks() != 10 {
		t.Errorf("NumLinks = %d, want 10", s.NumLinks())
	}
	total := int64(0)
	for i := 0; i < 10; i++ {
		n, err := s.Clicks(s.Shorten(fmt.Sprintf("http://example.com/%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 50 {
		t.Errorf("total clicks = %d, want 50", total)
	}
}
