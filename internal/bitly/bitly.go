// Package bitly simulates the bit.ly URL-shortening service the paper
// relies on in §3: hackers shorten their scam links (92% of shortened URLs
// in the paper's dataset are bit.ly), and the measurement queries bit.ly's
// public API for the total click count of every link posted by a malicious
// app (Fig. 3) and for the expansion of shortened links back to their long
// form (§4.2.2, §6.1).
//
// The Service is an http.Handler exposing a v3-style JSON API plus the
// redirecting short links themselves; the Client is what the measurement
// pipeline uses.
package bitly

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"frappe/internal/httpx"
)

// ErrNotFound is returned for unknown short links.
var ErrNotFound = errors.New("bitly: link not found")

// Service is an in-memory URL shortener with click accounting. It is safe
// for concurrent use. The zero value is not usable; construct with
// NewService.
type Service struct {
	mu      sync.RWMutex
	byCode  map[string]*link
	byLong  map[string]string // long URL -> code
	nextID  uint64
	baseURL string
	// oldBases remembers every base URL ever used, so links issued before
	// a SetBaseURL (e.g. when a live HTTP endpoint replaces the canonical
	// "http://bit.ly" prefix) are still recognised by IsShort.
	oldBases []string
}

type link struct {
	long   string
	clicks int64
}

// NewService returns an empty shortener. baseURL is the public prefix of
// issued short links, e.g. "http://bit.ly"; it may be updated later with
// SetBaseURL once a test server's address is known.
func NewService(baseURL string) *Service {
	return &Service{
		byCode:  make(map[string]*link),
		byLong:  make(map[string]string),
		baseURL: strings.TrimRight(baseURL, "/"),
	}
}

// SetBaseURL changes the public prefix of issued short links. Links issued
// under earlier prefixes remain valid and recognised.
func (s *Service) SetBaseURL(base string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.baseURL != "" {
		s.oldBases = append(s.oldBases, s.baseURL)
	}
	s.baseURL = strings.TrimRight(base, "/")
}

// encode converts a counter into the base62 alphabet bit.ly uses.
const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

func encode(n uint64) string {
	if n == 0 {
		return string(alphabet[0])
	}
	var b []byte
	for n > 0 {
		b = append(b, alphabet[n%62])
		n /= 62
	}
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

// Shorten returns the short URL for long, issuing a new code on first use
// and reusing the existing code afterwards (bit.ly deduplicates per-URL).
func (s *Service) Shorten(long string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if code, ok := s.byLong[long]; ok {
		return s.baseURL + "/" + code
	}
	code := encode(s.nextID)
	s.nextID++
	s.byCode[code] = &link{long: long}
	s.byLong[long] = code
	return s.baseURL + "/" + code
}

// Expand returns the long URL behind a short URL or bare code.
func (s *Service) Expand(short string) (string, error) {
	code := codeOf(short)
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.byCode[code]
	if !ok {
		return "", ErrNotFound
	}
	return l.long, nil
}

// Clicks returns the accumulated click count of a short URL or bare code.
func (s *Service) Clicks(short string) (int64, error) {
	code := codeOf(short)
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.byCode[code]
	if !ok {
		return 0, ErrNotFound
	}
	return l.clicks, nil
}

// AddClicks records n clicks against a short URL, as the synthetic world
// generator does when it simulates users (on and off Facebook) following a
// link. n must be non-negative.
func (s *Service) AddClicks(short string, n int64) error {
	if n < 0 {
		return fmt.Errorf("bitly: negative click count %d", n)
	}
	code := codeOf(short)
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.byCode[code]
	if !ok {
		return ErrNotFound
	}
	l.clicks += n
	return nil
}

// NumLinks reports how many distinct links have been shortened.
func (s *Service) NumLinks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byCode)
}

// codeOf strips any scheme/host prefix, leaving the bare short code.
func codeOf(short string) string {
	if i := strings.LastIndex(short, "/"); i >= 0 {
		return short[i+1:]
	}
	return short
}

// IsShort reports whether raw looks like a link issued by this service
// under its current or any previous base URL.
func (s *Service) IsShort(raw string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.baseURL != "" && strings.HasPrefix(raw, s.baseURL+"/") {
		return true
	}
	for _, base := range s.oldBases {
		if base != "" && strings.HasPrefix(raw, base+"/") {
			return true
		}
	}
	return false
}

// apiResponse mirrors the bit.ly v3 envelope.
type apiResponse struct {
	StatusCode int         `json:"status_code"`
	StatusTxt  string      `json:"status_txt"`
	Data       interface{} `json:"data"`
}

func writeJSON(w http.ResponseWriter, status int, resp apiResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// Connection-level failure; nothing more we can do.
		return
	}
}

// ServeHTTP implements the API:
//
//	GET /v3/shorten?longUrl=U   -> {"data":{"url": shortURL}}
//	GET /v3/expand?shortUrl=U   -> {"data":{"long_url": longURL}}
//	GET /v3/clicks?shortUrl=U   -> {"data":{"clicks": N}}
//	GET /{code}                 -> 301 redirect to the long URL (counts a click)
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/v3/shorten":
		long := r.URL.Query().Get("longUrl")
		if long == "" {
			writeJSON(w, http.StatusBadRequest, apiResponse{StatusCode: 400, StatusTxt: "MISSING_ARG_LONGURL"})
			return
		}
		short := s.Shorten(long)
		writeJSON(w, http.StatusOK, apiResponse{StatusCode: 200, StatusTxt: "OK", Data: map[string]string{"url": short}})
	case r.URL.Path == "/v3/expand":
		long, err := s.Expand(r.URL.Query().Get("shortUrl"))
		if err != nil {
			writeJSON(w, http.StatusNotFound, apiResponse{StatusCode: 404, StatusTxt: "NOT_FOUND"})
			return
		}
		writeJSON(w, http.StatusOK, apiResponse{StatusCode: 200, StatusTxt: "OK", Data: map[string]string{"long_url": long}})
	case r.URL.Path == "/v3/clicks":
		clicks, err := s.Clicks(r.URL.Query().Get("shortUrl"))
		if err != nil {
			writeJSON(w, http.StatusNotFound, apiResponse{StatusCode: 404, StatusTxt: "NOT_FOUND"})
			return
		}
		writeJSON(w, http.StatusOK, apiResponse{StatusCode: 200, StatusTxt: "OK", Data: map[string]int64{"clicks": clicks}})
	case strings.HasPrefix(r.URL.Path, "/v3/"):
		writeJSON(w, http.StatusNotFound, apiResponse{StatusCode: 404, StatusTxt: "UNKNOWN_ENDPOINT"})
	default:
		code := strings.TrimPrefix(r.URL.Path, "/")
		long, err := s.Expand(code)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		if err := s.AddClicks(code, 1); err != nil {
			http.Error(w, "click accounting failed", http.StatusInternalServerError)
			return
		}
		http.Redirect(w, r, long, http.StatusMovedPermanently)
	}
}

// Client queries a bit.ly-compatible API over HTTP.
type Client struct {
	// BaseURL is the API endpoint, e.g. "http://127.0.0.1:PORT".
	BaseURL string
	// HTTP is the resilient transport (timeouts, retries, breaker); nil
	// means the shared httpx.Default().
	HTTP *httpx.Client
}

func (c *Client) transport() *httpx.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return httpx.Default()
}

func (c *Client) get(path string, params url.Values, out interface{}) error {
	u := strings.TrimRight(c.BaseURL, "/") + path
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	resp, err := c.transport().Get(context.Background(), u)
	if err != nil {
		return fmt.Errorf("bitly: %w", err)
	}
	var env apiResponse
	env.Data = out
	if err := json.Unmarshal(resp.Body, &env); err != nil {
		return fmt.Errorf("bitly: decoding response: %w", err)
	}
	if env.StatusCode == 404 {
		return ErrNotFound
	}
	if env.StatusCode != 200 {
		return fmt.Errorf("bitly: API error %d %s", env.StatusCode, env.StatusTxt)
	}
	return nil
}

// Shorten asks the service to shorten long.
func (c *Client) Shorten(long string) (string, error) {
	var data struct {
		URL string `json:"url"`
	}
	err := c.get("/v3/shorten", url.Values{"longUrl": {long}}, &data)
	return data.URL, err
}

// Expand resolves a short URL to its long form.
func (c *Client) Expand(short string) (string, error) {
	var data struct {
		LongURL string `json:"long_url"`
	}
	err := c.get("/v3/expand", url.Values{"shortUrl": {short}}, &data)
	return data.LongURL, err
}

// Clicks returns the click count of a short URL.
func (c *Client) Clicks(short string) (int64, error) {
	var data struct {
		Clicks int64 `json:"clicks"`
	}
	err := c.get("/v3/clicks", url.Values{"shortUrl": {short}}, &data)
	return data.Clicks, err
}
