package bitly

import (
	"fmt"
	"testing"
	"testing/quick"
)

// Property: Shorten/Expand round-trips any URL, and re-shortening is
// idempotent (same short link).
func TestShortenExpandProperty(t *testing.T) {
	s := NewService("http://bit.ly")
	f := func(raw string) bool {
		long := "http://example.com/" + fmt.Sprintf("%x", raw)
		short := s.Shorten(long)
		if !s.IsShort(short) {
			return false
		}
		got, err := s.Expand(short)
		if err != nil || got != long {
			return false
		}
		return s.Shorten(long) == short
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: click counts accumulate exactly.
func TestClickAccumulationProperty(t *testing.T) {
	s := NewService("http://bit.ly")
	short := s.Shorten("http://example.com/clicks")
	f := func(increments []uint8) bool {
		before, err := s.Clicks(short)
		if err != nil {
			return false
		}
		var sum int64
		for _, inc := range increments {
			if err := s.AddClicks(short, int64(inc)); err != nil {
				return false
			}
			sum += int64(inc)
		}
		after, err := s.Clicks(short)
		return err == nil && after == before+sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: distinct long URLs get distinct short codes.
func TestDistinctCodesProperty(t *testing.T) {
	s := NewService("http://bit.ly")
	seen := map[string]string{}
	for i := 0; i < 5000; i++ {
		long := fmt.Sprintf("http://example.com/page/%d", i)
		short := s.Shorten(long)
		if prev, dup := seen[short]; dup {
			t.Fatalf("code collision: %q and %q both map to %s", prev, long, short)
		}
		seen[short] = long
	}
}
