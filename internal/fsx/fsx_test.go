package fsx

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "value")
	if err := WriteAtomic(path, []byte("v1")); err != nil {
		t.Fatalf("WriteAtomic: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("read back %q, want v1", got)
	}
	// Overwrite must replace the whole content, not append or leave a mix.
	if err := WriteAtomic(path, []byte("second")); err != nil {
		t.Fatalf("WriteAtomic overwrite: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("read back %q, want second", got)
	}
}

func TestWriteAtomicLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		if err := WriteAtomic(filepath.Join(dir, "f"), []byte("x")); err != nil {
			t.Fatalf("WriteAtomic: %v", err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want 1", len(entries))
	}
}

func TestWriteAtomicMissingDir(t *testing.T) {
	if err := WriteAtomic(filepath.Join(t.TempDir(), "nope", "f"), []byte("x")); err == nil {
		t.Fatal("want error writing into a missing directory")
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("want error syncing a missing directory")
	}
}
