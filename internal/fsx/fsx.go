// Package fsx holds the one crash-safe file-write primitive every durable
// store in this repo shares.
//
// It exists because the repo shipped two copies of "atomic write" that had
// quietly diverged: internal/modelreg fsynced the temp file before the
// rename, internal/lab (copied from it) did not — so a crash at the wrong
// moment could leave the lab store a renamed-but-empty artifact that
// passed every in-process test. One implementation, used everywhere
// (modelreg, lab, the ingestion WAL's consumer offsets), keeps the fsync
// contract a property of the package instead of a per-copy accident.
package fsx

import (
	"errors"
	"os"
	"path/filepath"
)

// WriteAtomic writes data to path so that after a crash the file holds
// either the previous content or the new content, never a prefix of it:
// a temp file in the same directory is written, fsynced, closed and
// renamed over path, and the parent directory is fsynced so the rename
// itself survives the crash. Concurrent readers never observe a partial
// file.
func WriteAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	// The fsync before rename is the whole point: rename is atomic on the
	// directory, but without it the new name can point at not-yet-flushed
	// bytes, and a crash leaves a complete-looking empty file.
	serr := tmp.Sync()
	cerr := tmp.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making previously performed renames and
// file creations in it durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	return errors.Join(serr, cerr)
}
