package svm

import (
	"errors"
	"math"
	"math/rand"
)

// Random Fourier features (Rahimi & Recht, "Random Features for
// Large-Scale Kernel Machines", NIPS 2007): the RBF kernel
// K(u,v) = exp(-gamma*|u-v|^2) is the Fourier transform of a Gaussian
// spectral density, so it is approximated in expectation by an explicit
// D-dimensional feature map
//
//	z_j(x) = sqrt(2/D) * cos(w_j . x + b_j),   w_j ~ N(0, 2*gamma*I),
//	                                           b_j ~ U[0, 2*pi)
//
// with K(u,v) ~= z(u).z(v). A kernel expansion f(x) = sum_i c_i K(sv_i, x)
// then collapses to a single dot product f(x) ~= a.z(x): the per-support-
// vector work disappears entirely, which is what turns the paper's
// libsvm-shaped O(#SV*d) prediction into an O(D*d) pass independent of the
// training-set size. The map is drawn from a seeded PRNG so compiling the
// same model with the same options is bit-reproducible.

// rffMap is one sampled feature map: D directions over dim inputs.
type rffMap struct {
	dim   int       // input dimensionality
	d     int       // number of Fourier features
	w     []float64 // d x dim projection matrix, row-major
	phase []float64 // d phases b_j in [0, 2*pi)
}

// sampleRFF draws a D-feature map for an RBF kernel with the given gamma.
// The spectral density of exp(-gamma*|u-v|^2) is N(0, 2*gamma*I).
func sampleRFF(dim, d int, gamma float64, seed int64) (*rffMap, error) {
	if dim <= 0 {
		return nil, errors.New("svm: rff: input dimension must be positive")
	}
	if d <= 0 {
		return nil, errors.New("svm: rff: feature count must be positive")
	}
	if gamma <= 0 {
		return nil, errors.New("svm: rff: gamma must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	sigma := math.Sqrt(2 * gamma)
	m := &rffMap{
		dim:   dim,
		d:     d,
		w:     make([]float64, d*dim),
		phase: make([]float64, d),
	}
	for i := range m.w {
		m.w[i] = sigma * rng.NormFloat64()
	}
	for j := range m.phase {
		m.phase[j] = 2 * math.Pi * rng.Float64()
	}
	return m, nil
}

// feature evaluates the j-th Fourier feature of x, without the sqrt(2/D)
// scale (callers fold it into their output weights once, at compile time).
func (m *rffMap) feature(j int, x []float64) float64 {
	row := m.w[j*m.dim : j*m.dim+m.dim]
	s := m.phase[j]
	for k, v := range x {
		s += row[k] * v
	}
	return fastCos(s)
}

const (
	twoPi    = 2 * math.Pi
	invTwoPi = 1 / twoPi
	halfPi   = math.Pi / 2
)

// fastCos approximates cos(x) for any finite x. Range reduction maps x to
// [0, pi/2] (Round + Abs compile to single instructions), then an even
// 12th-order Taylor polynomial finishes the job; the worst-case error,
// (pi/2)^14/14! at the interval edge, is below 7e-9 — noise next to the
// Monte-Carlo error of the feature map itself, which the promotion gate
// bounds anyway. Replacing math.Cos with this polynomial is what keeps the
// compiled RFF decision value comfortably under a microsecond.
func fastCos(x float64) float64 {
	x = math.Abs(x - twoPi*math.Round(x*invTwoPi)) // [0, pi]
	sign := 1.0
	if x > halfPi {
		x = math.Pi - x
		sign = -1
	}
	z := x * x
	// cos(x) = 1 - x^2/2! + x^4/4! - ... + x^12/12!, Horner form.
	return sign * (1 + z*(-1.0/2+z*(1.0/24+z*(-1.0/720+z*(1.0/40320+z*(-1.0/3628800+z*(1.0/479001600)))))))
}
