// Package svm implements a Support Vector Machine classifier trained with
// Platt's Sequential Minimal Optimization, replacing the paper's use of
// libsvm. The defaults mirror libsvm's: an RBF kernel with
// gamma = 1/#features, degree 3, coef0 = 0, and soft-margin C = 1 — the
// exact configuration §5.1 reports using.
package svm

import (
	"fmt"
	"math"
)

// KernelType selects the kernel function.
type KernelType int

const (
	// Linear is K(u,v) = u·v.
	Linear KernelType = iota
	// Polynomial is K(u,v) = (gamma*u·v + coef0)^degree.
	Polynomial
	// RBF is K(u,v) = exp(-gamma*|u-v|^2). This is the libsvm default used
	// by the paper.
	RBF
)

// String returns the libsvm-style name of the kernel.
func (k KernelType) String() string {
	switch k {
	case Linear:
		return "linear"
	case Polynomial:
		return "polynomial"
	case RBF:
		return "rbf"
	default:
		return fmt.Sprintf("KernelType(%d)", int(k))
	}
}

// Kernel evaluates kernel functions between feature vectors.
type Kernel struct {
	Type   KernelType
	Gamma  float64
	Coef0  float64
	Degree int
}

// Eval computes K(u, v). Vectors must have equal length.
func (k Kernel) Eval(u, v []float64) float64 {
	switch k.Type {
	case Linear:
		return dot(u, v)
	case Polynomial:
		return math.Pow(k.Gamma*dot(u, v)+k.Coef0, float64(k.Degree))
	case RBF:
		return math.Exp(-k.Gamma * sqDist(u, v))
	default:
		panic("svm: unknown kernel type")
	}
}

// EvalNorm computes K(u, v) given the precomputed squared norms of u and v.
// For the RBF kernel this rewrites |u-v|^2 as ‖u‖² + ‖v‖² − 2u·v so that one
// dot product (plus two cached norms) replaces the subtract-square loop; the
// other kernels only need the dot product. Hot paths that evaluate one
// vector against many (kernel-matrix precompute, support-vector prediction)
// cache the norms once and call this.
func (k Kernel) EvalNorm(u, v []float64, uNorm, vNorm float64) float64 {
	switch k.Type {
	case Linear:
		return dot(u, v)
	case Polynomial:
		return math.Pow(k.Gamma*dot(u, v)+k.Coef0, float64(k.Degree))
	case RBF:
		sq := uNorm + vNorm - 2*dot(u, v)
		if sq < 0 { // cancellation for near-identical vectors
			sq = 0
		}
		return math.Exp(-k.Gamma * sq)
	default:
		panic("svm: unknown kernel type")
	}
}

// SqNorm returns ‖x‖², the cached quantity EvalNorm consumes.
func SqNorm(x []float64) float64 { return dot(x, x) }

func dot(u, v []float64) float64 {
	s := 0.0
	for i := range u {
		s += u[i] * v[i]
	}
	return s
}

func sqDist(u, v []float64) float64 {
	s := 0.0
	for i := range u {
		d := u[i] - v[i]
		s += d * d
	}
	return s
}
