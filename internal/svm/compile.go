package svm

import (
	"errors"
	"fmt"
	"math"
)

// This file is the offline "compile" step that transforms a trained Model
// into a serving form optimised for single-verdict latency. Two modes:
//
//   - CompileExact formalises the lazy predict cache (predict.go) as a
//     persistent artifact: the support vectors flattened row-major with
//     their squared norms precomputed. Decision values are bit-identical
//     to Model.DecisionValue.
//   - CompileRFF replaces the RBF kernel expansion with an explicit
//     random-Fourier-feature map (see rff.go): the per-support-vector sum
//     collapses into RFFDim cosine features with precomputed output
//     weights, optionally quantized to float32. Decision values are
//     approximate; callers gate the approximation on holdout accuracy
//     before letting it serve (the retrainer's compile gate does exactly
//     that).
//
// Both forms are plain exported-field structs, so a CompiledModel rides
// inside the classifier gob payload through the model registry and
// hot-swaps into a serving process like any other version.

// CompileMode selects the compiled serving form.
type CompileMode uint8

const (
	// CompileExact flattens the support vectors; exact decision values.
	CompileExact CompileMode = iota + 1
	// CompileRFF builds an explicit random-Fourier-feature map; decision
	// values approximate the RBF expansion to gate-checked tolerance.
	CompileRFF
)

// String names the mode as it appears in manifests ("exact", "rff").
func (m CompileMode) String() string {
	switch m {
	case CompileExact:
		return "exact"
	case CompileRFF:
		return "rff"
	default:
		return fmt.Sprintf("CompileMode(%d)", uint8(m))
	}
}

// ParseCompileMode maps a manifest/flag string back to a mode.
func ParseCompileMode(s string) (CompileMode, error) {
	switch s {
	case "exact":
		return CompileExact, nil
	case "rff":
		return CompileRFF, nil
	default:
		return 0, fmt.Errorf("svm: unknown compile mode %q (want exact or rff)", s)
	}
}

// DefaultRFFDim is the Fourier-feature count used when CompileOptions does
// not set one. The choice is a latency/fidelity dial: per-verdict cost is
// linear in the dimension (~9ns per feature row on a 2.1GHz server core,
// so 64 rows keep the decision value comfortably under the serving path's
// one-microsecond budget), while the Monte-Carlo kernel error shrinks as
// 1/sqrt(dim). 64 is enough for the paper's 7-9 dimensional feature space
// to pass the compile gate at zero tolerance in practice; raise it via
// CompileOptions (frappetrain -rff-dim) when a model's margin is tighter —
// the gate refuses any dimension that regresses holdout accuracy, so a
// too-small map is caught, never served.
const DefaultRFFDim = 64

// CompileOptions configures Compile.
type CompileOptions struct {
	// Mode selects the serving form (required).
	Mode CompileMode
	// RFFDim is the Fourier-feature count for CompileRFF (default
	// DefaultRFFDim).
	RFFDim int
	// Seed drives the feature-map sampling; the same model, seed and dim
	// always compile to the identical artifact (default 1).
	Seed int64
	// Quantize stores the RFF projection, phases and output weights as
	// float32, halving the artifact and improving cache density. Ignored
	// by CompileExact, which is exact by definition.
	Quantize bool
}

// DefaultCompileOptions returns the options the retrainer uses: the given
// mode, DefaultRFFDim features, seed 1, quantization on.
func DefaultCompileOptions(mode CompileMode) CompileOptions {
	return CompileOptions{Mode: mode, RFFDim: DefaultRFFDim, Seed: 1, Quantize: true}
}

// CompiledModel is a compiled serving artifact. All fields are exported so
// the artifact gob-encodes inside a classifier payload; construct with
// Compile, never by hand.
type CompiledModel struct {
	Mode     CompileMode
	InputDim int
	B        float64

	// CompileExact: the flattened support-vector matrix.
	Kernel  Kernel
	Coef    []float64
	SVFlat  []float64 // len(Coef) x InputDim, row-major
	SVNorms []float64

	// CompileRFF: the explicit feature map. Exactly one of the
	// float32/float64 triples is populated, per Quantized.
	RFFDim    int
	Seed      int64
	Quantized bool
	W32       []float32 // RFFDim x InputDim projection, row-major
	Phase32   []float32
	Amp32     []float32 // per-feature output weight, (2/D)*sum_i c_i*cos(w_j.sv_i+b_j)
	W64       []float64
	Phase64   []float64
	Amp64     []float64

	// runW/runPhase/runAmp are the serving-time float64 arrays. Quantized
	// artifacts transport float32 (half the payload) but serve from a
	// one-time float64 widening — float64(float32) is exact, so the
	// quantization error is unchanged while the hot loop sheds its per-
	// element conversions. Built by Compile and rebuilt by Validate (every
	// load path calls it); unexported, so gob never carries them.
	runW, runPhase, runAmp []float64
}

// prepareRuntime builds the serving arrays from whichever weight triple
// the artifact transports.
func (c *CompiledModel) prepareRuntime() {
	if c.Mode != CompileRFF {
		return
	}
	if !c.Quantized {
		c.runW, c.runPhase, c.runAmp = c.W64, c.Phase64, c.Amp64
		return
	}
	c.runW = widen(c.W32)
	c.runPhase = widen(c.Phase32)
	c.runAmp = widen(c.Amp32)
}

func widen(xs []float32) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}

// Compile builds a compiled serving artifact from a trained model.
func Compile(m *Model, o CompileOptions) (*CompiledModel, error) {
	if m == nil {
		return nil, errors.New("svm: compile: nil model")
	}
	if len(m.SV) == 0 {
		return nil, errors.New("svm: compile: model has no support vectors")
	}
	dim := len(m.SV[0])
	if dim == 0 {
		return nil, errors.New("svm: compile: zero-dimensional support vectors")
	}
	if len(m.Coef) != len(m.SV) {
		return nil, fmt.Errorf("svm: compile: %d coefficients for %d support vectors", len(m.Coef), len(m.SV))
	}
	for i, sv := range m.SV {
		if len(sv) != dim {
			return nil, fmt.Errorf("svm: compile: support vector %d has dim %d, want %d", i, len(sv), dim)
		}
	}
	switch o.Mode {
	case CompileExact:
		return compileExact(m, dim), nil
	case CompileRFF:
		return compileRFF(m, dim, o)
	default:
		return nil, fmt.Errorf("svm: compile: unknown mode %v", o.Mode)
	}
}

func compileExact(m *Model, dim int) *CompiledModel {
	c := &CompiledModel{
		Mode:     CompileExact,
		InputDim: dim,
		B:        m.B,
		Kernel:   m.Kernel,
		Coef:     append([]float64(nil), m.Coef...),
		SVFlat:   make([]float64, len(m.SV)*dim),
		SVNorms:  make([]float64, len(m.SV)),
	}
	for i, sv := range m.SV {
		copy(c.SVFlat[i*dim:(i+1)*dim], sv)
		c.SVNorms[i] = SqNorm(sv)
	}
	return c
}

func compileRFF(m *Model, dim int, o CompileOptions) (*CompiledModel, error) {
	if m.Kernel.Type != RBF {
		return nil, fmt.Errorf("svm: compile: RFF requires an RBF kernel, model uses %v", m.Kernel.Type)
	}
	d := o.RFFDim
	if d <= 0 {
		d = DefaultRFFDim
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	fm, err := sampleRFF(dim, d, m.Kernel.Gamma, seed)
	if err != nil {
		return nil, err
	}
	// Collapse the kernel expansion: f(x) = B + sum_i c_i K(sv_i, x)
	// ~= B + sum_j A_j cos(w_j.x + b_j), A_j = (2/D) sum_i c_i cos(w_j.sv_i + b_j).
	// math.Cos here (one-time, offline) keeps the precomputed weights as
	// accurate as the map allows; the serving path uses fastCos.
	amp := make([]float64, d)
	scale := 2 / float64(d)
	for j := 0; j < d; j++ {
		row := fm.w[j*dim : j*dim+dim]
		var a float64
		for i, sv := range m.SV {
			s := fm.phase[j]
			for k, v := range sv {
				s += row[k] * v
			}
			a += m.Coef[i] * math.Cos(s)
		}
		amp[j] = scale * a
	}
	c := &CompiledModel{
		Mode:      CompileRFF,
		InputDim:  dim,
		B:         m.B,
		RFFDim:    d,
		Seed:      seed,
		Quantized: o.Quantize,
	}
	if o.Quantize {
		c.W32 = make([]float32, len(fm.w))
		for i, v := range fm.w {
			c.W32[i] = float32(v)
		}
		c.Phase32 = make([]float32, d)
		c.Amp32 = make([]float32, d)
		for j := 0; j < d; j++ {
			c.Phase32[j] = float32(fm.phase[j])
			c.Amp32[j] = float32(amp[j])
		}
	} else {
		c.W64 = fm.w
		c.Phase64 = fm.phase
		c.Amp64 = amp
	}
	c.prepareRuntime()
	return c, nil
}

// Validate checks the structural invariants a gob-loaded artifact must
// hold before it may serve; reload paths call it so a truncated or
// hand-edited payload is refused rather than panicking mid-request.
func (c *CompiledModel) Validate() error {
	if c == nil {
		return errors.New("svm: nil compiled model")
	}
	if c.InputDim <= 0 {
		return errors.New("svm: compiled model has no input dimension")
	}
	switch c.Mode {
	case CompileExact:
		n := len(c.Coef)
		if n == 0 || len(c.SVFlat) != n*c.InputDim || len(c.SVNorms) != n {
			return fmt.Errorf("svm: exact compiled model inconsistent (%d coef, %d flat, %d norms, dim %d)",
				n, len(c.SVFlat), len(c.SVNorms), c.InputDim)
		}
	case CompileRFF:
		if c.RFFDim <= 0 {
			return errors.New("svm: rff compiled model has no features")
		}
		if c.Quantized {
			if len(c.W32) != c.RFFDim*c.InputDim || len(c.Phase32) != c.RFFDim || len(c.Amp32) != c.RFFDim {
				return errors.New("svm: rff compiled model (float32) has inconsistent shapes")
			}
		} else {
			if len(c.W64) != c.RFFDim*c.InputDim || len(c.Phase64) != c.RFFDim || len(c.Amp64) != c.RFFDim {
				return errors.New("svm: rff compiled model (float64) has inconsistent shapes")
			}
		}
	default:
		return fmt.Errorf("svm: compiled model has unknown mode %v", c.Mode)
	}
	c.prepareRuntime()
	return nil
}

// String renders the artifact for manifests and logs, e.g.
// "rff(d=128,seed=1,float32)" or "exact(sv=412)".
func (c *CompiledModel) String() string {
	if c == nil {
		return "none"
	}
	switch c.Mode {
	case CompileExact:
		return fmt.Sprintf("exact(sv=%d)", len(c.Coef))
	case CompileRFF:
		prec := "float64"
		if c.Quantized {
			prec = "float32"
		}
		return fmt.Sprintf("rff(d=%d,seed=%d,%s)", c.RFFDim, c.Seed, prec)
	default:
		return c.Mode.String()
	}
}

// DecisionValue computes f(x) against the compiled artifact. The warm path
// allocates nothing: every loop walks preallocated flat arrays. A vector
// of the wrong dimension (possible only via a corrupt load that also
// defeated Validate) degrades to the bias rather than panicking.
func (c *CompiledModel) DecisionValue(x []float64) float64 {
	if len(x) != c.InputDim {
		return c.B
	}
	switch c.Mode {
	case CompileExact:
		s := c.B
		d := c.InputDim
		xNorm := SqNorm(x)
		for i := range c.SVNorms {
			s += c.Coef[i] * c.Kernel.EvalNorm(c.SVFlat[i*d:i*d+d], x, c.SVNorms[i], xNorm)
		}
		return s
	case CompileRFF:
		if c.runW == nil {
			// Hand-decoded artifact that skipped Validate: build the
			// serving arrays on first use (single-writer callers only;
			// every concurrent-serving path validates first).
			c.prepareRuntime()
		}
		return rffDecision(c.B, x, c.runW, c.runPhase, c.runAmp)
	default:
		return c.B
	}
}

// rffDecision walks the feature map four rows at a time: the four dot
// products carry independent dependency chains, so the out-of-order core
// overlaps their FMA latencies instead of serialising on one accumulator.
func rffDecision(b float64, x, w, phase, amp []float64) float64 {
	s := b
	dim := len(x)
	d := len(phase)
	j := 0
	for ; j+3 < d; j += 4 {
		base := j * dim
		row0 := w[base : base+dim]
		row1 := w[base+dim : base+2*dim]
		row2 := w[base+2*dim : base+3*dim]
		row3 := w[base+3*dim : base+4*dim]
		a0 := phase[j]
		a1 := phase[j+1]
		a2 := phase[j+2]
		a3 := phase[j+3]
		for k, v := range x {
			a0 += row0[k] * v
			a1 += row1[k] * v
			a2 += row2[k] * v
			a3 += row3[k] * v
		}
		s += amp[j]*fastCos(a0) + amp[j+1]*fastCos(a1) +
			amp[j+2]*fastCos(a2) + amp[j+3]*fastCos(a3)
	}
	for ; j < d; j++ {
		row := w[j*dim : j*dim+dim]
		a := phase[j]
		for k, v := range x {
			a += row[k] * v
		}
		s += amp[j] * fastCos(a)
	}
	return s
}

// DecisionValues scores every row. Rows write only their own slot, so the
// result equals a DecisionValue loop; no worker pool here — the compiled
// point is that one row is already cheap.
func (c *CompiledModel) DecisionValues(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = c.DecisionValue(x)
	}
	return out
}

// Predict returns +1 or -1 for x.
func (c *CompiledModel) Predict(x []float64) float64 {
	if c.DecisionValue(x) >= 0 {
		return 1
	}
	return -1
}
