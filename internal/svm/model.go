package svm

import (
	"encoding/gob"
	"io"
)

// Save serialises the model (and optionally nothing else) to w using gob
// encoding, so a trained FRAppE classifier can be shipped to a watchdog
// process and loaded without retraining.
func (m *Model) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(m)
}

// Load reads a model previously written with Save.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
