package svm

import (
	"errors"
	"fmt"
	"math/rand"
)

// Grid describes the (C, gamma) search space for RBF model selection, the
// standard libsvm-tools procedure. Empty slices take the usual
// powers-of-two defaults.
type Grid struct {
	C     []float64
	Gamma []float64
	// Folds for the inner cross-validation (default 5).
	Folds int
	// Seed drives the fold shuffle.
	Seed int64
}

// GridResult is one evaluated parameter point.
type GridResult struct {
	C        float64
	Gamma    float64
	Accuracy float64
}

// DefaultGrid returns the customary coarse grid: C in 2^{-1..7},
// gamma in 2^{-7..1}.
func DefaultGrid() Grid {
	var g Grid
	for e := -1; e <= 7; e += 2 {
		g.C = append(g.C, pow2(e))
	}
	for e := -7; e <= 1; e += 2 {
		g.Gamma = append(g.Gamma, pow2(e))
	}
	g.Folds = 5
	g.Seed = 1
	return g
}

func pow2(e int) float64 {
	v := 1.0
	for i := 0; i < e; i++ {
		v *= 2
	}
	for i := 0; i > e; i-- {
		v /= 2
	}
	return v
}

// GridSearch evaluates every (C, gamma) pair with k-fold cross-validation
// on an RBF kernel and returns all results plus the best point. Inputs
// should already be scaled. It is deterministic for a fixed seed.
func GridSearch(xs [][]float64, ys []float64, grid Grid) (best GridResult, all []GridResult, err error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return best, nil, errors.New("svm: invalid grid-search data")
	}
	if len(grid.C) == 0 || len(grid.Gamma) == 0 {
		d := DefaultGrid()
		if len(grid.C) == 0 {
			grid.C = d.C
		}
		if len(grid.Gamma) == 0 {
			grid.Gamma = d.Gamma
		}
	}
	if grid.Folds < 2 {
		grid.Folds = 5
	}
	if grid.Seed == 0 {
		grid.Seed = 1
	}
	if len(xs) < grid.Folds {
		return best, nil, fmt.Errorf("svm: %d samples cannot fill %d folds", len(xs), grid.Folds)
	}

	fold := stratifiedFolds(ys, grid.Folds, grid.Seed)
	for _, c := range grid.C {
		for _, gamma := range grid.Gamma {
			acc, err := cvAccuracy(xs, ys, fold, grid.Folds, c, gamma)
			if err != nil {
				return best, nil, err
			}
			r := GridResult{C: c, Gamma: gamma, Accuracy: acc}
			all = append(all, r)
			if r.Accuracy > best.Accuracy {
				best = r
			}
		}
	}
	return best, all, nil
}

// stratifiedFolds assigns each sample to a fold, keeping the class mix.
func stratifiedFolds(ys []float64, k int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	fold := make([]int, len(ys))
	var pos, neg []int
	for i, y := range ys {
		if y > 0 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	assign := func(idx []int) {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for i, j := range idx {
			fold[j] = i % k
		}
	}
	assign(pos)
	assign(neg)
	return fold
}

// cvAccuracy runs one k-fold evaluation at fixed (C, gamma).
func cvAccuracy(xs [][]float64, ys []float64, fold []int, k int, c, gamma float64) (float64, error) {
	correct, total := 0, 0
	for f := 0; f < k; f++ {
		var trX, teX [][]float64
		var trY, teY []float64
		for i := range xs {
			if fold[i] == f {
				teX = append(teX, xs[i])
				teY = append(teY, ys[i])
			} else {
				trX = append(trX, xs[i])
				trY = append(trY, ys[i])
			}
		}
		if len(teX) == 0 {
			continue
		}
		// Degenerate training folds (single class) predict that class.
		onePos, oneNeg := false, false
		for _, y := range trY {
			if y > 0 {
				onePos = true
			} else {
				oneNeg = true
			}
		}
		if !onePos || !oneNeg {
			maj := -1.0
			if onePos {
				maj = 1
			}
			for _, y := range teY {
				if y == maj {
					correct++
				}
				total++
			}
			continue
		}
		p := DefaultParams(len(xs[0]))
		p.C = c
		p.Kernel.Gamma = gamma
		m, err := Train(trX, trY, p)
		if err != nil {
			return 0, err
		}
		for i, score := range m.DecisionValues(teX) {
			pred := -1.0
			if score >= 0 {
				pred = 1
			}
			if pred == teY[i] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0, errors.New("svm: empty evaluation")
	}
	return float64(correct) / float64(total), nil
}
