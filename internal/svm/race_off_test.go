//go:build !race

package svm

const raceEnabled = false
