package svm

import (
	"math"
	"math/rand"
	"testing"
)

func TestPow2(t *testing.T) {
	cases := map[int]float64{0: 1, 3: 8, -2: 0.25, 7: 128, -7: 1.0 / 128}
	for e, want := range cases {
		if got := pow2(e); math.Abs(got-want) > 1e-12 {
			t.Errorf("pow2(%d) = %v, want %v", e, got, want)
		}
	}
}

func TestDefaultGrid(t *testing.T) {
	g := DefaultGrid()
	if len(g.C) != 5 || len(g.Gamma) != 5 {
		t.Errorf("grid size = %dx%d", len(g.C), len(g.Gamma))
	}
	if g.C[0] != 0.5 || g.C[len(g.C)-1] != 128 {
		t.Errorf("C range = %v", g.C)
	}
}

func TestGridSearchFindsWorkableParams(t *testing.T) {
	// Two concentric rings: needs a reasonably large gamma; linear-ish
	// (tiny gamma) RBF underfits, so the search must prefer bigger gamma.
	rng := rand.New(rand.NewSource(4))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 240; i++ {
		angle := rng.Float64() * 2 * math.Pi
		r := 0.2
		label := -1.0
		if i%2 == 0 {
			r = 0.8
			label = 1
		}
		r += rng.NormFloat64() * 0.03
		xs = append(xs, []float64{0.5 + r*math.Cos(angle)/2, 0.5 + r*math.Sin(angle)/2})
		ys = append(ys, label)
	}
	best, all, err := GridSearch(xs, ys, Grid{Folds: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 25 {
		t.Errorf("evaluated %d points, want 25", len(all))
	}
	if best.Accuracy < 0.95 {
		t.Errorf("best accuracy = %.3f (C=%v gamma=%v)", best.Accuracy, best.C, best.Gamma)
	}
	// The winning gamma cannot be the smallest on the grid: rings are not
	// separable by a nearly-linear kernel.
	if best.Gamma <= 1.0/128 {
		t.Errorf("best gamma = %v, expected a larger width", best.Gamma)
	}
}

func TestGridSearchDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		x := rng.Float64()
		y := -1.0
		if x > 0.5 {
			y = 1
		}
		xs = append(xs, []float64{x})
		ys = append(ys, y)
	}
	g := Grid{C: []float64{1, 4}, Gamma: []float64{0.5, 2}, Folds: 3, Seed: 5}
	b1, a1, err := GridSearch(xs, ys, g)
	if err != nil {
		t.Fatal(err)
	}
	b2, a2, err := GridSearch(xs, ys, g)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 || len(a1) != len(a2) {
		t.Error("grid search not deterministic")
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("result rows differ between runs")
		}
	}
}

func TestGridSearchErrors(t *testing.T) {
	if _, _, err := GridSearch(nil, nil, Grid{}); err == nil {
		t.Error("empty data: want error")
	}
	xs := [][]float64{{1}, {2}}
	ys := []float64{1, -1}
	if _, _, err := GridSearch(xs, ys, Grid{Folds: 5}); err == nil {
		t.Error("too few samples for folds: want error")
	}
}

func TestGridSearchSingleClassFolds(t *testing.T) {
	// Highly imbalanced data: some training folds may collapse to one
	// class; the search must still complete.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 30; i++ {
		xs = append(xs, []float64{float64(i % 7)})
		ys = append(ys, -1)
	}
	xs = append(xs, []float64{10}, []float64{11})
	ys = append(ys, 1, 1)
	best, _, err := GridSearch(xs, ys, Grid{C: []float64{1}, Gamma: []float64{1}, Folds: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if best.Accuracy == 0 {
		t.Error("zero accuracy on trivially majority-predictable data")
	}
}
