package svm

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func trainOrDie(t *testing.T, xs [][]float64, ys []float64, p Params) *Model {
	t.Helper()
	m, err := Train(xs, ys, p)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m
}

func accuracy(m *Model, xs [][]float64, ys []float64) float64 {
	correct := 0
	for i, x := range xs {
		if m.Predict(x) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

func TestKernelEval(t *testing.T) {
	u := []float64{1, 2}
	v := []float64{3, 4}
	lin := Kernel{Type: Linear}
	if got := lin.Eval(u, v); got != 11 {
		t.Errorf("linear = %v, want 11", got)
	}
	rbf := Kernel{Type: RBF, Gamma: 0.5}
	want := math.Exp(-0.5 * 8) // |u-v|^2 = 4+4
	if got := rbf.Eval(u, v); math.Abs(got-want) > 1e-12 {
		t.Errorf("rbf = %v, want %v", got, want)
	}
	if got := rbf.Eval(u, u); got != 1 {
		t.Errorf("rbf self = %v, want 1", got)
	}
	poly := Kernel{Type: Polynomial, Gamma: 1, Coef0: 1, Degree: 2}
	if got := poly.Eval(u, v); got != 144 { // (11+1)^2
		t.Errorf("poly = %v, want 144", got)
	}
}

func TestKernelString(t *testing.T) {
	if Linear.String() != "linear" || RBF.String() != "rbf" || Polynomial.String() != "polynomial" {
		t.Error("kernel names wrong")
	}
	if KernelType(9).String() == "" {
		t.Error("unknown kernel should still format")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(4)
	if p.Kernel.Type != RBF || p.Kernel.Gamma != 0.25 || p.C != 1 {
		t.Errorf("unexpected defaults: %+v", p)
	}
	if DefaultParams(0).Kernel.Gamma != 1 {
		t.Error("dim=0 gamma should be 1")
	}
}

func TestTrainErrors(t *testing.T) {
	p := DefaultParams(1)
	if _, err := Train(nil, nil, p); err == nil {
		t.Error("empty data: want error")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 1}, p); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Train([][]float64{{1}, {2}}, []float64{1, 0}, p); err == nil {
		t.Error("bad label: want error")
	}
	if _, err := Train([][]float64{{1}, {2}}, []float64{1, 1}, p); err == nil {
		t.Error("single class: want error")
	}
	bad := p
	bad.C = 0
	if _, err := Train([][]float64{{1}, {2}}, []float64{1, -1}, bad); err == nil {
		t.Error("C=0: want error")
	}
}

func TestLinearlySeparable1D(t *testing.T) {
	xs := [][]float64{{0}, {0.1}, {0.2}, {0.8}, {0.9}, {1.0}}
	ys := []float64{-1, -1, -1, 1, 1, 1}
	for _, kt := range []KernelType{Linear, RBF} {
		p := DefaultParams(1)
		p.Kernel.Type = kt
		m := trainOrDie(t, xs, ys, p)
		if acc := accuracy(m, xs, ys); acc != 1 {
			t.Errorf("%v kernel train accuracy = %v, want 1", kt, acc)
		}
	}
}

func TestLinearlySeparable2D(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64()
		y := rng.Float64()
		label := -1.0
		if x+y > 1.05 {
			label = 1
		} else if x+y > 0.95 {
			continue // margin band
		}
		xs = append(xs, []float64{x, y})
		ys = append(ys, label)
	}
	p := DefaultParams(2)
	p.C = 10
	m := trainOrDie(t, xs, ys, p)
	if acc := accuracy(m, xs, ys); acc < 0.98 {
		t.Errorf("accuracy = %v, want >= 0.98", acc)
	}
}

func TestXORNeedsRBF(t *testing.T) {
	// XOR is the classic non-linearly-separable set: RBF must nail it.
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []float64{-1, 1, 1, -1}
	p := DefaultParams(2)
	p.Kernel.Gamma = 2
	p.C = 100
	m := trainOrDie(t, xs, ys, p)
	if acc := accuracy(m, xs, ys); acc != 1 {
		t.Errorf("RBF XOR accuracy = %v, want 1", acc)
	}
}

func TestGeneralization(t *testing.T) {
	// Two well-separated Gaussian blobs: a held-out set must classify
	// almost perfectly.
	rng := rand.New(rand.NewSource(7))
	gen := func(n int, cx, cy, label float64) ([][]float64, []float64) {
		var xs [][]float64
		var ys []float64
		for i := 0; i < n; i++ {
			xs = append(xs, []float64{cx + rng.NormFloat64()*0.15, cy + rng.NormFloat64()*0.15})
			ys = append(ys, label)
		}
		return xs, ys
	}
	trX1, trY1 := gen(100, 0.25, 0.25, -1)
	trX2, trY2 := gen(100, 0.75, 0.75, 1)
	teX1, teY1 := gen(50, 0.25, 0.25, -1)
	teX2, teY2 := gen(50, 0.75, 0.75, 1)

	xs := append(trX1, trX2...)
	ys := append(trY1, trY2...)
	m := trainOrDie(t, xs, ys, DefaultParams(2))

	testX := append(teX1, teX2...)
	testY := append(teY1, teY2...)
	if acc := accuracy(m, testX, testY); acc < 0.95 {
		t.Errorf("held-out accuracy = %v, want >= 0.95", acc)
	}
}

func TestSoftMarginToleratesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 300; i++ {
		x := rng.Float64()
		label := -1.0
		if x > 0.5 {
			label = 1
		}
		if rng.Float64() < 0.05 { // 5% label noise
			label = -label
		}
		xs = append(xs, []float64{x})
		ys = append(ys, label)
	}
	m := trainOrDie(t, xs, ys, DefaultParams(1))
	if acc := accuracy(m, xs, ys); acc < 0.9 {
		t.Errorf("noisy accuracy = %v, want >= 0.9", acc)
	}
}

func TestTrainingDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := -1.0
		if x[0] > x[1] {
			y = 1
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	p := DefaultParams(2)
	m1 := trainOrDie(t, xs, ys, p)
	m2 := trainOrDie(t, xs, ys, p)
	if m1.B != m2.B || m1.NumSV() != m2.NumSV() {
		t.Errorf("same seed, different models: b %v vs %v, sv %d vs %d",
			m1.B, m2.B, m1.NumSV(), m2.NumSV())
	}
}

func TestAlphasRespectBoxConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 150; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := -1.0
		if x[0]+0.2*rng.NormFloat64() > 0.5 {
			y = 1
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	p := DefaultParams(2)
	p.C = 2
	m := trainOrDie(t, xs, ys, p)
	for _, c := range m.Coef {
		if math.Abs(c) > p.C+1e-9 {
			t.Errorf("|coef| = %v exceeds C = %v", math.Abs(c), p.C)
		}
	}
	// KKT dual constraint: sum alpha_i y_i == 0 -> sum coef == 0.
	sum := 0.0
	for _, c := range m.Coef {
		sum += c
	}
	if math.Abs(sum) > 1e-6 {
		t.Errorf("sum of coefs = %v, want ~0", sum)
	}
}

func TestOnDemandKernelMatchesCached(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 80; i++ {
		x := []float64{rng.Float64()}
		y := -1.0
		if x[0] > 0.5 {
			y = 1
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	cached := DefaultParams(1)
	m1 := trainOrDie(t, xs, ys, cached)
	uncached := cached
	uncached.CacheBytes = 1 // force on-demand path
	m2 := trainOrDie(t, xs, ys, uncached)
	// float32 caching introduces tiny differences; decisions must agree.
	for _, x := range xs {
		if m1.Predict(x) != m2.Predict(x) {
			t.Fatalf("cached and uncached models disagree at %v", x)
		}
	}
}

func TestScaler(t *testing.T) {
	xs := [][]float64{{0, 10, 5}, {10, 20, 5}}
	s, err := FitScaler(xs)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Apply([]float64{5, 15, 5})
	want := []float64{0.5, 0.5, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Apply[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Out-of-range clamps.
	clamped := s.Apply([]float64{-5, 100, 7})
	if clamped[0] != 0 || clamped[1] != 1 {
		t.Errorf("clamping failed: %v", clamped)
	}
	if _, err := FitScaler(nil); err == nil {
		t.Error("empty FitScaler: want error")
	}
	if _, err := FitScaler([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged FitScaler: want error")
	}
}

func TestScalerProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([][]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			xs = append(xs, []float64{v})
		}
		s, err := FitScaler(xs)
		if err != nil {
			return false
		}
		for _, row := range s.ApplyAll(xs) {
			if row[0] < 0 || row[0] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestModelSaveLoad(t *testing.T) {
	xs := [][]float64{{0}, {0.2}, {0.8}, {1}}
	ys := []float64{-1, -1, 1, 1}
	m := trainOrDie(t, xs, ys, DefaultParams(1))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, x := range xs {
		if m.Predict(x) != m2.Predict(x) {
			t.Fatalf("round-tripped model disagrees at %v", x)
		}
	}
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("Load(garbage): want error")
	}
}

func TestDecisionValueSign(t *testing.T) {
	xs := [][]float64{{0}, {1}}
	ys := []float64{-1, 1}
	m := trainOrDie(t, xs, ys, DefaultParams(1))
	if m.DecisionValue([]float64{1}) <= m.DecisionValue([]float64{0}) {
		t.Error("decision value should increase toward the +1 class")
	}
}

func BenchmarkTrainRBF500(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 500; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y := -1.0
		if x[0]+x[1] > 1 {
			y = 1
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	p := DefaultParams(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(xs, ys, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := -1.0
		if x[0] > 0.5 {
			y = 1
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	m, err := Train(xs, ys, DefaultParams(2))
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{0.3, 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(q)
	}
}
