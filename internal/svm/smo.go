package svm

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"time"

	"frappe/internal/workerpool"
)

// Params configures training. The zero value is not meaningful; use
// DefaultParams for the libsvm defaults the paper relies on.
type Params struct {
	Kernel Kernel
	// C is the soft-margin penalty. libsvm default: 1.
	C float64
	// Tol is the KKT violation tolerance (libsvm's -e). Default 1e-3.
	Tol float64
	// MaxPasses is a runaway guard on plateau alternations (sweeps over
	// the non-bound subset that change nothing). Platt's loop terminates
	// naturally when a full sweep makes no progress; plateaus occur many
	// times mid-optimisation, so this must stay generous. Default 1000.
	MaxPasses int
	// MaxIter is a hard cap on optimisation iterations (0 = 100*n).
	MaxIter int
	// Seed drives the tie-breaking randomness of SMO, making training
	// deterministic for a fixed dataset.
	Seed int64
	// CacheBytes bounds the kernel matrix cache. When the full n×n matrix
	// of float32 fits, it is precomputed; otherwise kernel values are
	// computed on demand. Default 256 MiB.
	CacheBytes int
}

// DefaultParams returns libsvm-compatible defaults for dim input features:
// RBF kernel with gamma = 1/dim, degree 3, coef0 = 0, C = 1 — the
// configuration reported in §5.1 of the paper.
func DefaultParams(dim int) Params {
	g := 1.0
	if dim > 0 {
		g = 1.0 / float64(dim)
	}
	return Params{
		Kernel:     Kernel{Type: RBF, Gamma: g, Coef0: 0, Degree: 3},
		C:          1,
		Tol:        1e-3,
		MaxPasses:  1000,
		Seed:       1,
		CacheBytes: 256 << 20,
	}
}

// Model is a trained SVM. Predictions depend only on the support vectors.
// The unexported fields are a lazily built prediction cache (flattened
// support-vector matrix plus squared norms, see predict.go); they are not
// serialised and rebuild on first use after Load.
type Model struct {
	Kernel  Kernel
	SV      [][]float64 // support vectors
	Coef    []float64   // alpha_i * y_i for each support vector
	B       float64     // bias
	Classes [2]float64  // label values for -1 and +1 sides (for reporting)

	predOnce sync.Once
	predOK   bool      // cache built and structurally sound
	svFlat   []float64 // SV rows flattened row-major, cache-friendly
	svNorms  []float64 // per-SV ‖sv‖² for EvalNorm
	svDim    int
}

// NumSV returns the number of support vectors.
func (m *Model) NumSV() int { return len(m.SV) }

// trainer holds SMO working state.
type trainer struct {
	x      [][]float64
	y      []float64
	xnorms []float64 // per-row ‖x‖², feeding Kernel.EvalNorm
	alpha  []float64
	errs   []float64
	b      float64
	p      Params
	rng    *rand.Rand
	kcache [][]float32 // full kernel matrix, or nil
	kdiag  []float64
	iters  int // successful optimisation steps
	tries  int // takeStep attempts (successful or not)
	maxIt  int
}

// Train fits an SVM on xs with labels ys in {-1, +1}.
func Train(xs [][]float64, ys []float64, p Params) (*Model, error) {
	n := len(xs)
	if n == 0 {
		return nil, errors.New("svm: no training data")
	}
	if len(ys) != n {
		return nil, errors.New("svm: len(xs) != len(ys)")
	}
	pos, neg := 0, 0
	for _, y := range ys {
		switch y {
		case 1:
			pos++
		case -1:
			neg++
		default:
			return nil, errors.New("svm: labels must be -1 or +1")
		}
	}
	if pos == 0 || neg == 0 {
		return nil, errors.New("svm: training data must contain both classes")
	}
	if p.C <= 0 {
		return nil, errors.New("svm: C must be positive")
	}
	if p.Tol <= 0 {
		p.Tol = 1e-3
	}
	if p.MaxPasses <= 0 {
		p.MaxPasses = 1000
	}
	if p.CacheBytes <= 0 {
		p.CacheBytes = 256 << 20
	}
	maxIt := p.MaxIter
	if maxIt <= 0 {
		maxIt = 100 * n
		if maxIt < 10000 {
			maxIt = 10000
		}
	}

	tr := &trainer{
		x:      xs,
		y:      ys,
		xnorms: make([]float64, n),
		alpha:  make([]float64, n),
		errs:   make([]float64, n),
		p:      p,
		rng:    rand.New(rand.NewSource(p.Seed)),
		maxIt:  maxIt,
	}
	for i := range xs {
		tr.xnorms[i] = SqNorm(xs[i])
	}
	if int64(n)*int64(n)*4 <= int64(p.CacheBytes) {
		tr.precomputeKernel()
	} else {
		tr.kdiag = make([]float64, n)
		for i := range xs {
			tr.kdiag[i] = p.Kernel.EvalNorm(xs[i], xs[i], tr.xnorms[i], tr.xnorms[i])
		}
	}
	// With all alphas zero, f(x_i) = 0, so E_i = -y_i.
	for i := range tr.errs {
		tr.errs[i] = -ys[i]
	}

	tr.run()

	// Collect support vectors.
	var m Model
	m.Kernel = p.Kernel
	// The trainer uses Platt's u = w·x - b convention; the model exposes
	// f(x) = w·x + B.
	m.B = -tr.b
	m.Classes = [2]float64{-1, 1}
	for i, a := range tr.alpha {
		if a > 1e-12 {
			sv := make([]float64, len(xs[i]))
			copy(sv, xs[i])
			m.SV = append(m.SV, sv)
			m.Coef = append(m.Coef, a*ys[i])
		}
	}
	return &m, nil
}

// precomputeKernel fills the full n×n kernel matrix. The upper triangle is
// partitioned row-wise over a bounded worker pool (row i also writes its
// mirror column, so workers touch disjoint cells) and every entry goes
// through Kernel.EvalNorm with the cached squared norms, so one dot product
// replaces the subtract-square loop. Entries are pure functions of (i, j),
// which makes the result bit-identical for any worker count.
func (t *trainer) precomputeKernel() {
	start := time.Now()
	n := len(t.x)
	t.kcache = make([][]float32, n)
	t.kdiag = make([]float64, n)
	flat := make([]float32, n*n)
	for i := 0; i < n; i++ {
		t.kcache[i] = flat[i*n : (i+1)*n]
	}
	workers := workerpool.Clamp(0, n)
	precomputeWorkers.With().Set(float64(workers))
	// Early rows carry the longest triangle spans; small chunks keep the
	// pool balanced without contending on the counter.
	workerpool.RunChunked(n, workers, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xi, ni := t.x[i], t.xnorms[i]
			row := t.kcache[i]
			for j := i; j < n; j++ {
				v := float32(t.p.Kernel.EvalNorm(xi, t.x[j], ni, t.xnorms[j]))
				row[j] = v
				t.kcache[j][i] = v
			}
			t.kdiag[i] = float64(row[i])
		}
	})
	precomputeDuration.With().Observe(time.Since(start).Seconds())
}

func (t *trainer) kernel(i, j int) float64 {
	if t.kcache != nil {
		return float64(t.kcache[i][j])
	}
	if i == j {
		return t.kdiag[i]
	}
	return t.p.Kernel.EvalNorm(t.x[i], t.x[j], t.xnorms[i], t.xnorms[j])
}

// run executes Platt's SMO main loop: alternate between a sweep over all
// examples and sweeps over the non-bound subset until no multiplier changes.
func (t *trainer) run() {
	n := len(t.x)
	numChanged := 0
	examineAll := true
	passes := 0
	maxTries := 60 * t.maxIt
	for (numChanged > 0 || examineAll) && t.iters < t.maxIt && t.tries < maxTries {
		numChanged = 0
		if examineAll {
			for i := 0; i < n && t.iters < t.maxIt; i++ {
				numChanged += t.examine(i)
			}
		} else {
			for i := 0; i < n && t.iters < t.maxIt; i++ {
				if t.alpha[i] > 0 && t.alpha[i] < t.p.C {
					numChanged += t.examine(i)
				}
			}
		}
		if examineAll {
			examineAll = false
		} else if numChanged == 0 {
			examineAll = true
			passes++
			if passes >= t.p.MaxPasses {
				return
			}
		}
	}
}

// examine implements Platt's examineExample with the second-choice
// heuristics. Returns 1 if a pair of multipliers was optimised.
func (t *trainer) examine(i2 int) int {
	y2 := t.y[i2]
	a2 := t.alpha[i2]
	e2 := t.errs[i2]
	r2 := e2 * y2
	tol, c := t.p.Tol, t.p.C
	if (r2 < -tol && a2 < c) || (r2 > tol && a2 > 0) {
		// Heuristic 1: maximize |E1 - E2| over non-bound examples.
		best, bestGap := -1, 0.0
		for i := range t.alpha {
			if t.alpha[i] > 0 && t.alpha[i] < c {
				gap := math.Abs(t.errs[i] - e2)
				if gap > bestGap {
					bestGap, best = gap, i
				}
			}
		}
		if best >= 0 && t.takeStep(best, i2) {
			return 1
		}
		// Heuristic 2: loop over non-bound, random start.
		n := len(t.alpha)
		start := t.rng.Intn(n)
		for k := 0; k < n; k++ {
			i1 := (start + k) % n
			if t.alpha[i1] > 0 && t.alpha[i1] < c && t.takeStep(i1, i2) {
				return 1
			}
		}
		// Heuristic 3: loop over everything, random start.
		start = t.rng.Intn(n)
		for k := 0; k < n; k++ {
			i1 := (start + k) % n
			if t.takeStep(i1, i2) {
				return 1
			}
		}
	}
	return 0
}

// takeStep jointly optimises alpha[i1] and alpha[i2]. Returns true on a
// meaningful update.
func (t *trainer) takeStep(i1, i2 int) bool {
	if i1 == i2 {
		return false
	}
	t.tries++
	a1, a2 := t.alpha[i1], t.alpha[i2]
	y1, y2 := t.y[i1], t.y[i2]
	e1, e2 := t.errs[i1], t.errs[i2]
	s := y1 * y2
	c := t.p.C

	var lo, hi float64
	if y1 != y2 {
		lo = math.Max(0, a2-a1)
		hi = math.Min(c, c+a2-a1)
	} else {
		lo = math.Max(0, a1+a2-c)
		hi = math.Min(c, a1+a2)
	}
	if lo == hi {
		return false
	}

	k11 := t.kernel(i1, i1)
	k12 := t.kernel(i1, i2)
	k22 := t.kernel(i2, i2)
	eta := k11 + k22 - 2*k12

	var a2new float64
	if eta > 0 {
		a2new = a2 + y2*(e1-e2)/eta
		if a2new < lo {
			a2new = lo
		} else if a2new > hi {
			a2new = hi
		}
	} else {
		// Degenerate: evaluate the objective at both clip ends.
		f1 := y1*(e1+t.b) - a1*k11 - s*a2*k12
		f2 := y2*(e2+t.b) - s*a1*k12 - a2*k22
		l1 := a1 + s*(a2-lo)
		h1 := a1 + s*(a2-hi)
		objL := l1*f1 + lo*f2 + 0.5*l1*l1*k11 + 0.5*lo*lo*k22 + s*lo*l1*k12
		objH := h1*f1 + hi*f2 + 0.5*h1*h1*k11 + 0.5*hi*hi*k22 + s*hi*h1*k12
		switch {
		case objL < objH-1e-12:
			a2new = lo
		case objL > objH+1e-12:
			a2new = hi
		default:
			a2new = a2
		}
	}
	if math.Abs(a2new-a2) < 1e-12*(a2new+a2+1e-12) {
		return false
	}
	a1new := a1 + s*(a2-a2new)

	// Update threshold b.
	b1 := e1 + y1*(a1new-a1)*k11 + y2*(a2new-a2)*k12 + t.b
	b2 := e2 + y1*(a1new-a1)*k12 + y2*(a2new-a2)*k22 + t.b
	var bnew float64
	switch {
	case a1new > 0 && a1new < c:
		bnew = b1
	case a2new > 0 && a2new < c:
		bnew = b2
	default:
		bnew = (b1 + b2) / 2
	}
	bdelta := bnew - t.b
	t.b = bnew
	t.iters++

	d1 := y1 * (a1new - a1)
	d2 := y2 * (a2new - a2)
	// E_i tracks u(x_i) - y_i under u = w·x - b; the incremental update is
	// exact and applies to i1 and i2 as well (their errors become 0 only
	// when they end up non-bound). With the matrix cached, walking the two
	// rows directly keeps this O(n) sweep — SMO's hottest loop — free of
	// per-element calls and bounds checks.
	if t.kcache != nil {
		r1, r2 := t.kcache[i1], t.kcache[i2]
		for i := range t.errs {
			t.errs[i] += d1*float64(r1[i]) + d2*float64(r2[i]) - bdelta
		}
	} else {
		for i := range t.errs {
			t.errs[i] += d1*t.kernel(i1, i) + d2*t.kernel(i2, i) - bdelta
		}
	}
	t.alpha[i1] = a1new
	t.alpha[i2] = a2new
	return true
}
