package svm

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"frappe/internal/telemetry"
)

// trainBlobs fits an RBF model on two Gaussian blobs in dim dimensions —
// the workhorse fixture for the compile tests.
func trainBlobs(t testing.TB, dim, n int, seed int64) (*Model, [][]float64, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var xs [][]float64
	var ys []float64
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		label := -1.0
		center := 0.25
		if i%2 == 0 {
			label = 1
			center = 0.75
		}
		for k := range x {
			x[k] = center + rng.NormFloat64()*0.12
		}
		xs = append(xs, x)
		ys = append(ys, label)
	}
	m, err := Train(xs, ys, DefaultParams(dim))
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m, xs, ys
}

func TestFastCos(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	worst := 0.0
	for i := 0; i < 20000; i++ {
		x := (rng.Float64() - 0.5) * 200 // [-100, 100]
		if d := math.Abs(fastCos(x) - math.Cos(x)); d > worst {
			worst = d
		}
	}
	// The design budget is (pi/2)^14/14! < 7e-9 plus range-reduction
	// rounding; anything past 1e-8 means the polynomial or the reduction
	// broke.
	if worst > 1e-8 {
		t.Errorf("fastCos worst-case error = %.3g, want <= 1e-8", worst)
	}
	for _, x := range []float64{0, math.Pi / 2, math.Pi, -math.Pi, 2 * math.Pi, 1e6} {
		if d := math.Abs(fastCos(x) - math.Cos(x)); d > 1e-6 {
			t.Errorf("fastCos(%v) = %v, want %v", x, fastCos(x), math.Cos(x))
		}
	}
}

func TestCompileExactMatchesModel(t *testing.T) {
	m, xs, _ := trainBlobs(t, 3, 200, 2)
	c, err := Compile(m, CompileOptions{Mode: CompileExact})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, x := range xs {
		if got, want := c.DecisionValue(x), m.DecisionValue(x); got != want {
			t.Fatalf("exact compiled decision %v != model %v at %v", got, want, x)
		}
	}
	batch := c.DecisionValues(xs)
	for i, x := range xs {
		if batch[i] != m.DecisionValue(x) {
			t.Fatalf("batch row %d diverges from model", i)
		}
	}
}

// rffParity measures verdict agreement and max decision-value drift
// between a model and an RFF compile of the given dimension, over the
// training points plus fresh probes — the same two quantities the
// promotion gate inspects.
func rffParity(t *testing.T, m *Model, xs [][]float64, dim int) (agreement, maxDrift float64) {
	t.Helper()
	o := DefaultCompileOptions(CompileRFF)
	o.RFFDim = dim
	c, err := Compile(m, o)
	if err != nil {
		t.Fatalf("Compile(rff,%d): %v", dim, err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	probes := append([][]float64(nil), xs...)
	for i := 0; i < 300; i++ {
		probes = append(probes, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
	}
	agree := 0
	for _, x := range probes {
		ev, cv := m.DecisionValue(x), c.DecisionValue(x)
		if (ev >= 0) == (cv >= 0) {
			agree++
		}
		if d := math.Abs(ev - cv); d > maxDrift {
			maxDrift = d
		}
	}
	return float64(agree) / float64(len(probes)), maxDrift
}

// TestCompileRFFParity is the exact-vs-RFF property test: at a generous
// feature count the approximation must track the kernel expansion almost
// pointwise, and widening the map must tighten it (the 1/sqrt(D)
// Monte-Carlo contraction that makes the gate's job meaningful).
func TestCompileRFFParity(t *testing.T) {
	m, xs, _ := trainBlobs(t, 3, 300, 3)
	agree512, drift512 := rffParity(t, m, xs, 512)
	if agree512 < 0.97 {
		t.Errorf("exact/RFF(512) verdict agreement = %.4f, want >= 0.97", agree512)
	}
	if drift512 > 0.5 {
		t.Errorf("max decision-value drift at D=512 = %.4f, want <= 0.5", drift512)
	}
	agreeDef, driftDef := rffParity(t, m, xs, DefaultRFFDim)
	if agreeDef < 0.85 {
		t.Errorf("exact/RFF(%d) verdict agreement = %.4f, want >= 0.85", DefaultRFFDim, agreeDef)
	}
	if drift512 > driftDef*1.1 {
		t.Errorf("widening the map did not tighten drift: D=512 %.4f vs D=%d %.4f",
			drift512, DefaultRFFDim, driftDef)
	}
}

func TestCompileRFFDeterministic(t *testing.T) {
	m, _, _ := trainBlobs(t, 2, 120, 5)
	o := DefaultCompileOptions(CompileRFF)
	a, err := Compile(m, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(m, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.W32) != len(b.W32) || len(a.Amp32) != len(b.Amp32) {
		t.Fatalf("shape mismatch between identical compiles")
	}
	for i := range a.W32 {
		if a.W32[i] != b.W32[i] {
			t.Fatalf("W32[%d] differs between identical compiles", i)
		}
	}
	for j := range a.Amp32 {
		if a.Amp32[j] != b.Amp32[j] || a.Phase32[j] != b.Phase32[j] {
			t.Fatalf("weights differ at %d between identical compiles", j)
		}
	}
	// A different seed must produce a different map.
	o2 := o
	o2.Seed = 99
	c, err := Compile(m, o2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.W32 {
		if a.W32[i] != c.W32[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical feature map")
	}
}

// TestCompileQuantizationParity pins the float32 quantization cost: the
// quantized and float64 artifacts share the same sampled map, so their
// decision values may differ only by rounding noise, and verdicts away
// from the margin must be identical.
func TestCompileQuantizationParity(t *testing.T) {
	m, xs, _ := trainBlobs(t, 3, 250, 6)
	o := DefaultCompileOptions(CompileRFF)
	q, err := Compile(m, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Quantize = false
	f, err := Compile(m, o)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Quantized || f.Quantized {
		t.Fatalf("quantization flags wrong: %v / %v", q.Quantized, f.Quantized)
	}
	for _, x := range xs {
		qv, fv := q.DecisionValue(x), f.DecisionValue(x)
		if d := math.Abs(qv - fv); d > 1e-3 {
			t.Fatalf("quantization moved decision value by %v at %v", d, x)
		}
		if math.Abs(fv) > 1e-2 && (qv >= 0) != (fv >= 0) {
			t.Fatalf("quantization flipped an off-margin verdict at %v (%v vs %v)", x, qv, fv)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(nil, CompileOptions{Mode: CompileExact}); err == nil {
		t.Error("nil model: want error")
	}
	if _, err := Compile(&Model{}, CompileOptions{Mode: CompileExact}); err == nil {
		t.Error("no support vectors: want error")
	}
	if _, err := Compile(&Model{SV: [][]float64{{}}, Coef: []float64{1}}, CompileOptions{Mode: CompileExact}); err == nil {
		t.Error("zero-dim support vectors: want error")
	}
	if _, err := Compile(&Model{SV: [][]float64{{1}, {2}}, Coef: []float64{1}}, CompileOptions{Mode: CompileExact}); err == nil {
		t.Error("coef/SV mismatch: want error")
	}
	if _, err := Compile(&Model{SV: [][]float64{{1}, {2, 3}}, Coef: []float64{1, -1}}, CompileOptions{Mode: CompileExact}); err == nil {
		t.Error("ragged support vectors: want error")
	}
	m, _, _ := trainBlobs(t, 2, 80, 7)
	if _, err := Compile(m, CompileOptions{}); err == nil {
		t.Error("unset mode: want error")
	}
	lin := &Model{
		SV:     [][]float64{{0, 1}, {1, 0}},
		Coef:   []float64{1, -1},
		Kernel: Kernel{Type: Linear},
	}
	if _, err := Compile(lin, DefaultCompileOptions(CompileRFF)); err == nil {
		t.Error("RFF over a linear kernel: want error")
	}
	if _, err := ParseCompileMode("nope"); err == nil {
		t.Error("ParseCompileMode(nope): want error")
	}
	for _, s := range []string{"exact", "rff"} {
		mode, err := ParseCompileMode(s)
		if err != nil || mode.String() != s {
			t.Errorf("ParseCompileMode(%q) = %v, %v", s, mode, err)
		}
	}
}

func TestCompiledValidateCatchesCorruption(t *testing.T) {
	m, _, _ := trainBlobs(t, 2, 100, 8)
	exact, err := Compile(m, CompileOptions{Mode: CompileExact})
	if err != nil {
		t.Fatal(err)
	}
	rff, err := Compile(m, DefaultCompileOptions(CompileRFF))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*CompiledModel{exact, rff} {
		if err := c.Validate(); err != nil {
			t.Fatalf("healthy artifact failed Validate: %v", err)
		}
	}
	var nilModel *CompiledModel
	if err := nilModel.Validate(); err == nil {
		t.Error("nil artifact: want error")
	}
	bad := *exact
	bad.SVFlat = bad.SVFlat[:len(bad.SVFlat)-1]
	if err := bad.Validate(); err == nil {
		t.Error("truncated SVFlat: want error")
	}
	bad2 := *rff
	bad2.W32 = nil
	if err := bad2.Validate(); err == nil {
		t.Error("missing W32: want error")
	}
	bad3 := *rff
	bad3.Mode = CompileMode(77)
	if err := bad3.Validate(); err == nil {
		t.Error("unknown mode: want error")
	}
	bad4 := *exact
	bad4.InputDim = 0
	if err := bad4.Validate(); err == nil {
		t.Error("zero input dim: want error")
	}
	// Dimension-mismatched inputs degrade to the bias, never panic.
	if got := rff.DecisionValue([]float64{1, 2, 3, 4}); got != rff.B {
		t.Errorf("wrong-dim decision = %v, want bias %v", got, rff.B)
	}
}

func TestCompiledModelString(t *testing.T) {
	m, _, _ := trainBlobs(t, 2, 80, 9)
	exact, _ := Compile(m, CompileOptions{Mode: CompileExact})
	if got := exact.String(); got != "exact(sv="+itoa(len(exact.Coef))+")" {
		t.Errorf("exact String = %q", got)
	}
	rff, _ := Compile(m, DefaultCompileOptions(CompileRFF))
	if got := rff.String(); got != "rff(d=64,seed=1,float32)" {
		t.Errorf("rff String = %q", got)
	}
	var none *CompiledModel
	if none.String() != "none" {
		t.Error("nil String should be none")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestEmptyBatchLeavesMetricsUntouched pins the DecisionValues fix: a
// zero-row batch must not observe the batch-predict histogram (skewing the
// duration distribution) or clobber the worker gauge.
func TestEmptyBatchLeavesMetricsUntouched(t *testing.T) {
	m, _, _ := trainBlobs(t, 2, 80, 10)
	reg := telemetry.Default()
	batchPredictWorkers.With().Set(7) // sentinel
	_, before := reg.HistogramSum("frappe_svm_batch_predict_seconds")
	for _, xs := range [][][]float64{nil, {}} {
		out := m.DecisionValues(xs)
		if len(out) != 0 {
			t.Fatalf("empty batch returned %d values", len(out))
		}
	}
	if _, after := reg.HistogramSum("frappe_svm_batch_predict_seconds"); after != before {
		t.Errorf("empty batch observed the duration histogram (%d -> %d)", before, after)
	}
	if got := reg.GaugeValue("frappe_svm_batch_predict_workers"); got != 7 {
		t.Errorf("empty batch moved the worker gauge to %v", got)
	}
}

// TestCorruptModelDegradesToBias pins the ensurePredictCache guard: a
// gob-loaded model with zero-dimensional or ragged support vectors must
// answer with the bias, not index out of bounds.
func TestCorruptModelDegradesToBias(t *testing.T) {
	for name, m := range map[string]*Model{
		"zero-dim": {SV: [][]float64{{}, {}}, Coef: []float64{1, -1}, B: 0.5, Kernel: Kernel{Type: RBF, Gamma: 1}},
		"ragged":   {SV: [][]float64{{1}, {1, 2}}, Coef: []float64{1, -1}, B: 0.5, Kernel: Kernel{Type: RBF, Gamma: 1}},
		"mismatch": {SV: [][]float64{{1}}, Coef: []float64{1, -1}, B: 0.5, Kernel: Kernel{Type: RBF, Gamma: 1}},
	} {
		if got := m.DecisionValue([]float64{1}); got != 0.5 {
			t.Errorf("%s: DecisionValue = %v, want bias 0.5", name, got)
		}
		for _, v := range m.DecisionValues([][]float64{{1}, {2}}) {
			if v != 0.5 {
				t.Errorf("%s: batch value = %v, want bias 0.5", name, v)
			}
		}
	}
}

// TestCompiledRFFZeroAllocAndLatency is the CI inference-budget gate: the
// warm compiled decision path must allocate nothing and answer a single
// verdict in under a microsecond at the default RFF dimension. Skipped
// under the race detector, whose instrumentation invalidates both numbers.
func TestCompiledRFFZeroAllocAndLatency(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc/latency budgets are meaningless under the race detector")
	}
	m, xs, _ := trainBlobs(t, 7, 300, 11)
	c, err := Compile(m, DefaultCompileOptions(CompileRFF))
	if err != nil {
		t.Fatal(err)
	}
	x := xs[0]
	c.DecisionValue(x) // warm
	if allocs := testing.AllocsPerRun(1000, func() { c.DecisionValue(x) }); allocs > 0 {
		t.Errorf("compiled RFF DecisionValue allocates %.1f/op, want 0", allocs)
	}

	// Median over batches of calls; three attempts absorb scheduler noise
	// on shared CI runners.
	const calls = 2000
	budget := time.Microsecond
	var best time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		samples := make([]time.Duration, 9)
		for s := range samples {
			start := time.Now()
			for i := 0; i < calls; i++ {
				c.DecisionValue(x)
			}
			samples[s] = time.Since(start) / calls
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		med := samples[len(samples)/2]
		if best == 0 || med < best {
			best = med
		}
		if best < budget {
			return
		}
	}
	t.Errorf("compiled RFF p50 per verdict = %v, want < %v", best, budget)
}

func benchModel(b *testing.B, dim int) (*Model, []float64) {
	m, xs, _ := trainBlobs(b, dim, 400, 12)
	return m, xs[0]
}

func BenchmarkDecisionValueModel(b *testing.B) {
	m, x := benchModel(b, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DecisionValue(x)
	}
}

func BenchmarkDecisionValueExact(b *testing.B) {
	m, x := benchModel(b, 7)
	c, err := Compile(m, CompileOptions{Mode: CompileExact})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecisionValue(x)
	}
}

func BenchmarkDecisionValueRFF(b *testing.B) {
	m, x := benchModel(b, 7)
	c, err := Compile(m, DefaultCompileOptions(CompileRFF))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecisionValue(x)
	}
}

func BenchmarkDecisionValueRFFFloat64(b *testing.B) {
	m, x := benchModel(b, 7)
	o := DefaultCompileOptions(CompileRFF)
	o.Quantize = false
	c, err := Compile(m, o)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecisionValue(x)
	}
}
