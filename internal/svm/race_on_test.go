//go:build race

package svm

// raceEnabled reports whether the race detector is active; the zero-alloc
// and latency gates are meaningless under its instrumentation and skip.
const raceEnabled = true
