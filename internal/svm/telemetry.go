package svm

import (
	"frappe/internal/telemetry"
)

// SVM metric families (process default registry):
//
//	frappe_svm_kernel_precompute_seconds   per-training kernel-matrix precompute
//	frappe_svm_kernel_precompute_workers   pool width of the last precompute
//	frappe_svm_batch_predict_seconds       per-DecisionValues wall clock
//	frappe_svm_batch_predict_workers       pool width of the last batch predict
var (
	precomputeDuration = telemetry.Default().Histogram("frappe_svm_kernel_precompute_seconds",
		"Wall-clock seconds per kernel-matrix precompute.", nil)
	precomputeWorkers = telemetry.Default().Gauge("frappe_svm_kernel_precompute_workers",
		"Worker-pool width used by the most recent kernel precompute.")
	batchPredictDuration = telemetry.Default().Histogram("frappe_svm_batch_predict_seconds",
		"Wall-clock seconds per batch DecisionValues call.", nil)
	batchPredictWorkers = telemetry.Default().Gauge("frappe_svm_batch_predict_workers",
		"Worker-pool width used by the most recent batch DecisionValues call.")
)
