package svm

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// blobs returns a reproducible two-class dataset with some overlap, large
// enough that training exercises the parallel kernel precompute.
func blobs(seed int64, n int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y := -1.0
		if x[0]+x[1]+0.3*rng.NormFloat64() > 0 {
			y = 1
		}
		xs[i], ys[i] = x, y
	}
	return xs, ys
}

func modelsEqual(a, b *Model) bool {
	if a.B != b.B || len(a.Coef) != len(b.Coef) || len(a.SV) != len(b.SV) {
		return false
	}
	for i := range a.Coef {
		if a.Coef[i] != b.Coef[i] {
			return false
		}
	}
	for i := range a.SV {
		if len(a.SV[i]) != len(b.SV[i]) {
			return false
		}
		for j := range a.SV[i] {
			if a.SV[i][j] != b.SV[i][j] {
				return false
			}
		}
	}
	return true
}

// The parallel precompute partitions rows across GOMAXPROCS workers; every
// cell is a pure function of (i, j), so the trained model must be
// bit-identical no matter how many workers ran.
func TestTrainDeterministicAcrossGOMAXPROCS(t *testing.T) {
	xs, ys := blobs(42, 220)
	p := DefaultParams(3)

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var ref *Model
	for _, procs := range []int{1, 4, prev} {
		runtime.GOMAXPROCS(procs)
		m := trainOrDie(t, xs, ys, p)
		if ref == nil {
			ref = m
			continue
		}
		if !modelsEqual(ref, m) {
			t.Errorf("GOMAXPROCS=%d produced a different model than GOMAXPROCS=1: b %v vs %v, sv %d vs %d",
				procs, m.B, ref.B, m.NumSV(), ref.NumSV())
		}
	}
}

// DecisionValues must agree bit-for-bit with the scalar DecisionValue: both
// sum in support-vector order over the same flattened cache.
func TestDecisionValuesMatchScalar(t *testing.T) {
	xs, ys := blobs(7, 150)
	m := trainOrDie(t, xs, ys, DefaultParams(3))
	got := m.DecisionValues(xs)
	if len(got) != len(xs) {
		t.Fatalf("DecisionValues returned %d values for %d rows", len(got), len(xs))
	}
	for i, x := range xs {
		if want := m.DecisionValue(x); got[i] != want {
			t.Fatalf("row %d: batch %v != scalar %v", i, got[i], want)
		}
	}
}

// The prediction cache is built lazily via sync.Once, so a model that
// arrived over gob (which drops the unexported cache fields) must predict
// identically to the model that trained.
func TestDecisionValuesSurviveGobRoundTrip(t *testing.T) {
	xs, ys := blobs(13, 120)
	m := trainOrDie(t, xs, ys, DefaultParams(3))
	want := m.DecisionValues(xs)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.DecisionValues(xs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: loaded model %v != original %v", i, got[i], want[i])
		}
	}
}

func TestDecisionValuesEmptyBatch(t *testing.T) {
	xs, ys := blobs(3, 60)
	m := trainOrDie(t, xs, ys, DefaultParams(3))
	if got := m.DecisionValues(nil); len(got) != 0 {
		t.Fatalf("DecisionValues(nil) = %v, want empty", got)
	}
}

// Race workout: concurrent first-use of the lazy prediction cache plus
// concurrent training (each Train runs its own parallel precompute pool).
// Run with -race to make this meaningful; it is cheap enough to always run.
func TestParallelPredictAndTrainRace(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	xs, ys := blobs(99, 160)
	m := trainOrDie(t, xs, ys, DefaultParams(3))

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.DecisionValues(xs[:40])
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Train(xs, ys, DefaultParams(3)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

func BenchmarkKernelPrecompute500(b *testing.B) {
	xs, ys := blobs(1, 500)
	p := DefaultParams(3)
	p.MaxPasses = 1 // keep SMO iterations minimal; precompute dominates
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(xs, ys, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecisionValuesBatch(b *testing.B) {
	xs, ys := blobs(2, 400)
	m, err := Train(xs, ys, DefaultParams(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DecisionValues(xs)
	}
}
