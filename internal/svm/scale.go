package svm

import "errors"

// Scaler rescales each feature dimension to [0, 1] using the min and max
// observed at fit time, the svm-scale step that libsvm users run before
// training. Features that are constant in the training data map to 0.
type Scaler struct {
	Min []float64
	Max []float64
}

// FitScaler learns per-dimension min/max from xs. All rows must have the
// same length and there must be at least one row.
func FitScaler(xs [][]float64) (*Scaler, error) {
	if len(xs) == 0 {
		return nil, errors.New("svm: FitScaler on empty data")
	}
	dim := len(xs[0])
	s := &Scaler{Min: make([]float64, dim), Max: make([]float64, dim)}
	copy(s.Min, xs[0])
	copy(s.Max, xs[0])
	for _, row := range xs[1:] {
		if len(row) != dim {
			return nil, errors.New("svm: inconsistent feature dimensions")
		}
		for j, v := range row {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > s.Max[j] {
				s.Max[j] = v
			}
		}
	}
	return s, nil
}

// Apply returns a scaled copy of x. Values outside the fitted range are
// clamped to [0, 1] so that test-time outliers cannot blow up the kernel.
func (s *Scaler) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	s.ApplyInto(x, out)
	return out
}

// ApplyInto scales x into out (len(out) must be >= len(x)), allocating
// nothing — the serving path's pooled feature vectors come through here.
func (s *Scaler) ApplyInto(x, out []float64) {
	for j, v := range x {
		lo, hi := s.Min[j], s.Max[j]
		if hi <= lo {
			out[j] = 0
			continue
		}
		sv := (v - lo) / (hi - lo)
		if sv < 0 {
			sv = 0
		} else if sv > 1 {
			sv = 1
		}
		out[j] = sv
	}
}

// ApplyAll scales every row of xs.
func (s *Scaler) ApplyAll(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = s.Apply(x)
	}
	return out
}
