package svm

import (
	"time"

	"frappe/internal/workerpool"
)

// ensurePredictCache flattens the support vectors into one row-major
// backing array and precomputes their squared norms, so every prediction
// costs one dot product per support vector (the RBF distance is recovered
// from the cached norms) over contiguous memory. Built once, lazily, so
// models arriving via gob Load get it too.
func (m *Model) ensurePredictCache() {
	m.predOnce.Do(func() {
		if len(m.SV) == 0 {
			return
		}
		m.svDim = len(m.SV[0])
		m.svFlat = make([]float64, len(m.SV)*m.svDim)
		m.svNorms = make([]float64, len(m.SV))
		for i, sv := range m.SV {
			copy(m.svFlat[i*m.svDim:(i+1)*m.svDim], sv)
			m.svNorms[i] = SqNorm(sv)
		}
	})
}

// decisionValueNorm computes f(x) given x's precomputed squared norm,
// walking the flattened support-vector matrix. Summation is in SV order, so
// single and batch prediction agree bit-for-bit.
func (m *Model) decisionValueNorm(x []float64, xNorm float64) float64 {
	s := m.B
	d := m.svDim
	for i := range m.svNorms {
		s += m.Coef[i] * m.Kernel.EvalNorm(m.svFlat[i*d:i*d+d], x, m.svNorms[i], xNorm)
	}
	return s
}

// DecisionValue returns f(x) = sum coef_i K(sv_i, x) + b. Positive values
// classify as the +1 class.
func (m *Model) DecisionValue(x []float64) float64 {
	m.ensurePredictCache()
	if len(m.SV) == 0 {
		return m.B
	}
	return m.decisionValueNorm(x, SqNorm(x))
}

// DecisionValues computes f(x) for every row of xs, fanning the rows out
// over a bounded worker pool (GOMAXPROCS wide). Each row writes only its
// own output slot, so the result is identical to calling DecisionValue in
// a loop — for any worker count.
func (m *Model) DecisionValues(xs [][]float64) []float64 {
	start := time.Now()
	m.ensurePredictCache()
	out := make([]float64, len(xs))
	if len(m.SV) == 0 {
		for i := range out {
			out[i] = m.B
		}
		return out
	}
	workers := workerpool.Clamp(0, len(xs))
	batchPredictWorkers.With().Set(float64(workers))
	workerpool.Run(len(xs), workers, func(i int) {
		out[i] = m.decisionValueNorm(xs[i], SqNorm(xs[i]))
	})
	batchPredictDuration.With().Observe(time.Since(start).Seconds())
	return out
}

// Predict returns +1 or -1 for x.
func (m *Model) Predict(x []float64) float64 {
	if m.DecisionValue(x) >= 0 {
		return 1
	}
	return -1
}
