package svm

import (
	"time"

	"frappe/internal/workerpool"
)

// ensurePredictCache flattens the support vectors into one row-major
// backing array and precomputes their squared norms, so every prediction
// costs one dot product per support vector (the RBF distance is recovered
// from the cached norms) over contiguous memory. Built once, lazily, so
// models arriving via gob Load get it too.
//
// A corrupt gob load can present zero-dimensional or ragged support
// vectors; those leave the cache unbuilt (predOK stays false) and every
// decision value degrades to the bias instead of indexing out of bounds.
func (m *Model) ensurePredictCache() {
	m.predOnce.Do(func() {
		if len(m.SV) == 0 {
			return
		}
		dim := len(m.SV[0])
		if dim == 0 || len(m.Coef) != len(m.SV) {
			return
		}
		for _, sv := range m.SV {
			if len(sv) != dim {
				return
			}
		}
		m.svDim = dim
		m.svFlat = make([]float64, len(m.SV)*dim)
		m.svNorms = make([]float64, len(m.SV))
		for i, sv := range m.SV {
			copy(m.svFlat[i*dim:(i+1)*dim], sv)
			m.svNorms[i] = SqNorm(sv)
		}
		m.predOK = true
	})
}

// decisionValueNorm computes f(x) given x's precomputed squared norm,
// walking the flattened support-vector matrix. Summation is in SV order, so
// single and batch prediction agree bit-for-bit.
func (m *Model) decisionValueNorm(x []float64, xNorm float64) float64 {
	s := m.B
	d := m.svDim
	for i := range m.svNorms {
		s += m.Coef[i] * m.Kernel.EvalNorm(m.svFlat[i*d:i*d+d], x, m.svNorms[i], xNorm)
	}
	return s
}

// DecisionValue returns f(x) = sum coef_i K(sv_i, x) + b. Positive values
// classify as the +1 class.
func (m *Model) DecisionValue(x []float64) float64 {
	m.ensurePredictCache()
	if !m.predOK {
		return m.B
	}
	return m.decisionValueNorm(x, SqNorm(x))
}

// DecisionValues computes f(x) for every row of xs, fanning the rows out
// over a bounded worker pool (GOMAXPROCS wide). Each row writes only its
// own output slot, so the result is identical to calling DecisionValue in
// a loop — for any worker count. An empty batch returns immediately and
// leaves the batch-prediction metrics untouched: observing a zero-width
// "batch" would skew the duration histogram and pin the worker gauge to a
// meaningless value.
func (m *Model) DecisionValues(xs [][]float64) []float64 {
	if len(xs) == 0 {
		return []float64{}
	}
	start := time.Now()
	m.ensurePredictCache()
	out := make([]float64, len(xs))
	if !m.predOK {
		for i := range out {
			out[i] = m.B
		}
		return out
	}
	workers := workerpool.Clamp(0, len(xs))
	batchPredictWorkers.With().Set(float64(workers))
	workerpool.Run(len(xs), workers, func(i int) {
		out[i] = m.decisionValueNorm(xs[i], SqNorm(xs[i]))
	})
	batchPredictDuration.With().Observe(time.Since(start).Seconds())
	return out
}

// Predict returns +1 or -1 for x.
func (m *Model) Predict(x []float64) float64 {
	if m.DecisionValue(x) >= 0 {
		return 1
	}
	return -1
}
