package crawler

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"frappe/internal/fbplatform"
	"frappe/internal/graphapi"
	"frappe/internal/telemetry"
	"frappe/internal/wot"
)

func testStack(t *testing.T) (*fbplatform.Platform, Config, func()) {
	t.Helper()
	p := fbplatform.New(100)
	apps := []*fbplatform.App{
		{
			ID: "1", Name: "Good App",
			Description: "d", Company: "c", Category: "Games",
			Permissions: []string{fbplatform.PermPublishStream, fbplatform.PermEmail},
			RedirectURI: "https://apps.facebook.com/good",
			ProfileFeed: []fbplatform.ProfilePost{{Message: "hi"}},
			Truth:       fbplatform.Truth{HackerID: -1},
		},
		{
			ID: "2", Name: "Scam",
			Permissions: []string{fbplatform.PermPublishStream},
			RedirectURI: "http://unknownscam.example/x",
			Truth:       fbplatform.Truth{Malicious: true},
		},
		{
			ID: "3", Name: "Gone",
			Permissions: []string{fbplatform.PermPublishStream},
			Truth:       fbplatform.Truth{Malicious: true},
		},
	}
	for _, a := range apps {
		if err := p.Register(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Delete("3"); err != nil {
		t.Fatal(err)
	}

	gsrv := httptest.NewServer(graphapi.NewServer(p))
	wsvc := wot.NewService()
	if err := wsvc.SetScore("apps.facebook.com", 92); err != nil {
		t.Fatal(err)
	}
	wsrv := httptest.NewServer(wsvc)

	cfg := Config{
		Graph:   &graphapi.Client{BaseURL: gsrv.URL},
		WOT:     &wot.Client{BaseURL: wsrv.URL},
		Workers: 4,
	}
	return p, cfg, func() { gsrv.Close(); wsrv.Close() }
}

func TestCrawlBasic(t *testing.T) {
	_, cfg, done := testStack(t)
	defer done()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.Crawl(context.Background(), []string{"1", "2", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}

	r1 := results["1"]
	if r1.SummaryErr != nil || r1.Summary.Name != "Good App" {
		t.Errorf("app 1 summary: %+v err=%v", r1.Summary, r1.SummaryErr)
	}
	if r1.FeedErr != nil || len(r1.Feed) != 1 {
		t.Errorf("app 1 feed: %v err=%v", r1.Feed, r1.FeedErr)
	}
	if r1.InstallErr != nil || len(r1.Install.Permissions) != 2 {
		t.Errorf("app 1 install: %+v err=%v", r1.Install, r1.InstallErr)
	}
	if r1.WOTScore != 92 {
		t.Errorf("app 1 WOT = %d, want 92", r1.WOTScore)
	}
	if r1.Deleted() {
		t.Error("live app reported deleted")
	}

	r2 := results["2"]
	if r2.WOTScore != wot.UnknownScore {
		t.Errorf("scam WOT = %d, want unknown", r2.WOTScore)
	}

	r3 := results["3"]
	if !r3.Deleted() {
		t.Error("deleted app not detected")
	}
	if !errors.Is(r3.InstallErr, graphapi.ErrDeleted) {
		t.Errorf("deleted install err = %v", r3.InstallErr)
	}
}

func TestFlakinessOracle(t *testing.T) {
	_, cfg, done := testStack(t)
	defer done()
	cfg.Flakiness = func(appID string, kind Kind) bool {
		return !(appID == "1" && kind == KindInstall)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.Crawl(context.Background(), []string{"1", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results["1"].InstallErr, ErrNotCrawlable) {
		t.Errorf("install err = %v, want ErrNotCrawlable", results["1"].InstallErr)
	}
	if results["1"].WOTScore != wot.UnknownScore {
		t.Error("WOT should be unknown when install crawl fails")
	}
	if results["2"].InstallErr != nil {
		t.Errorf("app 2 install err = %v", results["2"].InstallErr)
	}
}

func TestRetryOnTransientFailure(t *testing.T) {
	p := fbplatform.New(10)
	if err := p.Register(&fbplatform.App{
		ID: "1", Name: "App",
		Permissions: []string{fbplatform.PermPublishStream},
		Truth:       fbplatform.Truth{HackerID: -1},
	}); err != nil {
		t.Fatal(err)
	}
	inner := graphapi.NewServer(p)
	var calls int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// First two requests fail; the crawl needs its retries.
		if atomic.AddInt32(&calls, 1) <= 2 {
			http.Error(w, "transient", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	c, err := New(Config{Graph: &graphapi.Client{BaseURL: flaky.URL}, Workers: 1, Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.Crawl(context.Background(), []string{"1"})
	if err != nil {
		t.Fatal(err)
	}
	if results["1"].SummaryErr != nil {
		t.Errorf("summary should succeed after retries: %v", results["1"].SummaryErr)
	}
}

func TestCrawlContextCancel(t *testing.T) {
	_, cfg, done := testStack(t)
	defer done()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ids := make([]string, 500)
	for i := range ids {
		ids[i] = "1"
	}
	if _, err := c.Crawl(ctx, ids); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil graph client: want error")
	}
	c, err := New(Config{Graph: &graphapi.Client{}})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.Workers != 8 || c.cfg.Retries != 2 {
		t.Errorf("defaults: %+v", c.cfg)
	}
}

func TestKindString(t *testing.T) {
	if KindSummary.String() != "summary" || KindFeed.String() != "feed" || KindInstall.String() != "install" {
		t.Error("Kind names wrong")
	}
}

// TestCrawlTelemetry: the crawl instrumentation must expose the paper's
// coverage gap — per-kind attempts, successes, failures, and the
// ErrNotCrawlable rate — on the registry the crawler was configured with.
func TestCrawlTelemetry(t *testing.T) {
	_, cfg, done := testStack(t)
	defer done()
	reg := telemetry.New()
	cfg.Telemetry = reg
	cfg.Flakiness = func(appID string, kind Kind) bool {
		return !(appID == "1" && kind == KindInstall)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// App 1: summary+feed ok, install not crawlable. App 2: all ok.
	// App 3: deleted, every surface fails.
	if _, err := c.Crawl(context.Background(), []string{"1", "2", "3"}); err != nil {
		t.Fatal(err)
	}

	if got := reg.CounterValue("frappe_crawl_attempts_total", "summary"); got != 3 {
		t.Errorf("summary attempts = %d, want 3", got)
	}
	if got := reg.CounterValue("frappe_crawl_successes_total", "summary"); got != 2 {
		t.Errorf("summary successes = %d, want 2", got)
	}
	if got := reg.CounterValue("frappe_crawl_failures_total", "summary"); got != 1 {
		t.Errorf("summary failures = %d, want 1", got)
	}
	if got := reg.CounterValue("frappe_crawl_not_crawlable_total", "install"); got != 1 {
		t.Errorf("install not-crawlable = %d, want 1", got)
	}
	if got := reg.CounterValue("frappe_crawl_deleted_total"); got != 1 {
		t.Errorf("deleted = %d, want 1", got)
	}
	if got := reg.CounterValue("frappe_crawl_apps_total"); got != 3 {
		t.Errorf("apps = %d, want 3", got)
	}
	if _, count := reg.HistogramSum("frappe_crawl_app_duration_seconds"); count != 3 {
		t.Errorf("app duration observations = %d, want 3", count)
	}
}
