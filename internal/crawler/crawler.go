// Package crawler reproduces the paper's Selenium-instrumented crawling
// pipeline (§2.3): given a list of app IDs, it fetches each app's summary,
// profile feed, and installation parameters from a Graph-API-compatible
// endpoint, and resolves the WOT reputation of the redirect-URI domain.
//
// Like the original, the crawler is imperfect in app-dependent ways:
// deleted apps fail outright (the API returns `false`), and many live apps
// have human-oriented install redirection flows that defeat automation —
// the paper could crawl permissions for only ~37% of benign and ~19% of
// malicious apps. Callers model that with a Flakiness oracle.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"frappe/internal/graphapi"
	"frappe/internal/httpx"
	"frappe/internal/telemetry"
	"frappe/internal/tracing"
	"frappe/internal/wot"
)

// Kind identifies one crawl surface.
type Kind int

const (
	// KindSummary is the Open Graph summary fetch.
	KindSummary Kind = iota
	// KindFeed is the profile-feed fetch.
	KindFeed
	// KindInstall is the installation-URL parameter scrape.
	KindInstall
)

// String names the crawl surface.
func (k Kind) String() string {
	switch k {
	case KindSummary:
		return "summary"
	case KindFeed:
		return "feed"
	case KindInstall:
		return "install"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrNotCrawlable marks apps whose redirection flow defeats the crawler.
var ErrNotCrawlable = errors.New("crawler: install flow not automatable")

// Result is everything learned about one app.
type Result struct {
	AppID string

	Summary    *graphapi.Summary
	SummaryErr error

	Feed    []graphapi.FeedPost
	FeedErr error

	Install    graphapi.InstallInfo
	InstallErr error

	// WOTScore is the reputation of the redirect-URI domain, or
	// wot.UnknownScore when WOT has no data (or the install crawl failed).
	WOTScore int
}

// Deleted reports whether the app appears removed from the graph.
func (r *Result) Deleted() bool {
	return errors.Is(r.SummaryErr, graphapi.ErrDeleted)
}

// Config wires the crawler to its services.
type Config struct {
	Graph *graphapi.Client
	WOT   *wot.Client
	// Workers is the crawl parallelism (default 8).
	Workers int
	// Retries is how many extra transport attempts each fetch gets
	// (default 2). It only applies to clients without an explicit
	// httpx transport: New installs one configured with this budget.
	Retries int
	// Flakiness, if non-nil, reports whether a given surface of a given
	// app is automatable at all; it models the paper's human-oriented
	// redirect chains. Nil means everything is automatable.
	Flakiness func(appID string, kind Kind) bool
	// Telemetry receives crawl metrics; nil means the process default
	// registry.
	Telemetry *telemetry.Registry
}

// Crawler fetches app features concurrently.
type Crawler struct {
	cfg Config
	ins *Instruments
}

// New returns a Crawler. Graph must be non-nil; WOT may be nil (scores are
// then reported unknown). Clients without an explicit httpx transport get
// one here, sized to cfg.Retries — retries, backoff, and circuit breaking
// all live in that shared layer, not in the crawler.
func New(cfg Config) (*Crawler, error) {
	if cfg.Graph == nil {
		return nil, errors.New("crawler: nil graph client")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Graph.HTTP == nil {
		cfg.Graph.HTTP = httpx.New(httpx.Config{
			Service:     "graph",
			MaxAttempts: cfg.Retries + 1,
			Telemetry:   cfg.Telemetry,
		})
	}
	if cfg.WOT != nil && cfg.WOT.HTTP == nil {
		cfg.WOT.HTTP = httpx.New(httpx.Config{
			Service:     "wot",
			MaxAttempts: cfg.Retries + 1,
			Telemetry:   cfg.Telemetry,
		})
	}
	return &Crawler{cfg: cfg, ins: NewInstruments(cfg.Telemetry)}, nil
}

// Crawl fetches every app ID and returns results keyed by ID. The context
// cancels outstanding work between apps (an in-flight HTTP request is not
// interrupted mid-flight beyond the client's own timeout).
func (c *Crawler) Crawl(ctx context.Context, ids []string) (map[string]*Result, error) {
	results := make(map[string]*Result, len(ids))
	var mu sync.Mutex
	work := make(chan string)
	var wg sync.WaitGroup

	for i := 0; i < c.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range work {
				r := c.crawlOne(ctx, id)
				mu.Lock()
				results[id] = r
				mu.Unlock()
			}
		}()
	}
	var ctxErr error
feed:
	for _, id := range ids {
		select {
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break feed
		case work <- id:
		}
	}
	close(work)
	wg.Wait()
	return results, ctxErr
}

// fetch runs one surface fetch under a span and records its terminal
// outcome. Transport-level retry, backoff, and terminal-error
// classification (deleted and not-crawlable are never retried) live in
// internal/httpx, underneath the service clients — the crawler only
// observes the result.
func (c *Crawler) fetch(ctx context.Context, kind Kind, fn func(context.Context) error) error {
	c.ins.Attempts.With(kind.String()).Inc()
	sctx, span := tracing.Default().StartChild(ctx, "crawl."+kind.String())
	err := fn(sctx)
	if err != nil && !errors.Is(err, graphapi.ErrDeleted) {
		span.SetError(err)
	}
	span.End()
	c.ins.Outcome(kind, err)
	return err
}

func (c *Crawler) automatable(id string, kind Kind) bool {
	return c.cfg.Flakiness == nil || c.cfg.Flakiness(id, kind)
}

func (c *Crawler) crawlOne(ctx context.Context, id string) *Result {
	start := time.Now()
	r := &Result{AppID: id, WOTScore: wot.UnknownScore}
	defer func() { c.ins.FinishApp(r, start) }()
	ctx, span := tracing.Default().StartChild(ctx, "crawl.app")
	span.SetAttr(tracing.String("app_id", id))
	defer span.End()

	r.SummaryErr = c.fetch(ctx, KindSummary, func(ctx context.Context) error {
		s, err := c.cfg.Graph.Summary(ctx, id)
		if err != nil {
			return err
		}
		r.Summary = s
		return nil
	})

	if c.automatable(id, KindFeed) {
		r.FeedErr = c.fetch(ctx, KindFeed, func(ctx context.Context) error {
			feed, err := c.cfg.Graph.Feed(ctx, id)
			if err != nil {
				return err
			}
			r.Feed = feed
			return nil
		})
	} else {
		r.FeedErr = ErrNotCrawlable
		c.ins.Outcome(KindFeed, r.FeedErr)
	}

	if c.automatable(id, KindInstall) {
		r.InstallErr = c.fetch(ctx, KindInstall, func(ctx context.Context) error {
			info, err := c.cfg.Graph.Install(ctx, id)
			if err != nil {
				return err
			}
			r.Install = info
			return nil
		})
	} else {
		r.InstallErr = ErrNotCrawlable
		c.ins.Outcome(KindInstall, r.InstallErr)
	}

	if r.InstallErr == nil && c.cfg.WOT != nil {
		r.WOTScore = c.fetchWOT(ctx, r.Install.RedirectURI)
	}
	if r.Deleted() {
		span.SetAttr(tracing.Bool("deleted", true))
	}
	return r
}

// fetchWOT resolves the redirect-URI domain's reputation under its own
// span (WOT has no data for most domains; that is a result, not an error).
func (c *Crawler) fetchWOT(ctx context.Context, rawURL string) int {
	sctx, span := tracing.Default().StartChild(ctx, "crawl.wot")
	score := c.cfg.WOT.ScoreOrUnknown(sctx, rawURL)
	span.SetAttr(tracing.Int("score", int64(score)))
	span.End()
	return score
}
