package crawler

import (
	"errors"
	"time"

	"frappe/internal/graphapi"
	"frappe/internal/telemetry"
)

// Instruments is the crawl metric set, shared between the HTTP crawler and
// the in-process fast path in internal/datasets so that both report the
// same families — the paper's ~37%/~19% permission-crawl coverage (§2.3)
// becomes a live observable either way:
//
//	frappe_crawl_attempts_total{kind}       one per surface fetch
//	frappe_crawl_successes_total{kind}      fetches that yielded data
//	frappe_crawl_failures_total{kind}       terminal failures (incl. deleted)
//	frappe_crawl_not_crawlable_total{kind}  install flows automation can't drive
//	frappe_crawl_deleted_total              apps gone from the graph
//	frappe_crawl_apps_total                 apps fully crawled
//	frappe_crawl_app_duration_seconds       per-app wall clock (histogram)
//
// Network-level retries, backoff, and breaker activity are counted by
// the frappe_httpx_* families (internal/httpx), underneath these.
type Instruments struct {
	Attempts     *telemetry.CounterVec
	Successes    *telemetry.CounterVec
	Failures     *telemetry.CounterVec
	NotCrawlable *telemetry.CounterVec
	Deleted      *telemetry.CounterVec
	Apps         *telemetry.CounterVec
	AppDuration  *telemetry.HistogramVec
}

// NewInstruments registers the crawl metric families on reg (nil means the
// process default registry).
func NewInstruments(reg *telemetry.Registry) *Instruments {
	if reg == nil {
		reg = telemetry.Default()
	}
	return &Instruments{
		Attempts: reg.Counter("frappe_crawl_attempts_total",
			"Crawl fetch attempts, by surface kind.", "kind"),
		Successes: reg.Counter("frappe_crawl_successes_total",
			"Crawl fetches that returned data, by surface kind.", "kind"),
		Failures: reg.Counter("frappe_crawl_failures_total",
			"Crawl fetches that failed terminally, by surface kind.", "kind"),
		NotCrawlable: reg.Counter("frappe_crawl_not_crawlable_total",
			"Crawl surfaces skipped because the install flow defeats automation, by kind.", "kind"),
		Deleted: reg.Counter("frappe_crawl_deleted_total",
			"Apps found deleted from the graph during a crawl."),
		Apps: reg.Counter("frappe_crawl_apps_total",
			"Apps whose crawl (all surfaces) completed."),
		AppDuration: reg.Histogram("frappe_crawl_app_duration_seconds",
			"Wall-clock seconds to crawl one app across all surfaces.", nil),
	}
}

// Outcome records the terminal state of one surface fetch. A nil error is
// a success; ErrNotCrawlable counts separately from hard failures so the
// paper's coverage gap is distinguishable from service flakiness.
func (in *Instruments) Outcome(kind Kind, err error) {
	switch {
	case err == nil:
		in.Successes.With(kind.String()).Inc()
	case errors.Is(err, ErrNotCrawlable):
		in.NotCrawlable.With(kind.String()).Inc()
	default:
		in.Failures.With(kind.String()).Inc()
	}
}

// FinishApp records an app's full-crawl completion: duration, the deleted
// counter, and the per-surface outcomes already tallied by Outcome.
func (in *Instruments) FinishApp(r *Result, start time.Time) {
	in.Apps.With().Inc()
	in.AppDuration.With().Observe(time.Since(start).Seconds())
	if errors.Is(r.SummaryErr, graphapi.ErrDeleted) {
		in.Deleted.With().Inc()
	}
}
