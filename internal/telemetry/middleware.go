package telemetry

import (
	"net/http"
	"strconv"
	"time"
)

// HTTP middleware shared by every loopback service in internal/stack and
// by the watchdog assessment service. Metric names are part of the repo's
// observability contract (see DESIGN.md "Observability"):
//
//	frappe_http_requests_total{service,code}      counter
//	frappe_http_request_duration_seconds{service} histogram
//	frappe_http_inflight_requests{service}        gauge

// statusRecorder captures the response status code for labelling.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// codeClass folds a status code into its Prometheus-friendly class label.
func codeClass(status int) string {
	if status < 100 || status > 599 {
		return "other"
	}
	return strconv.Itoa(status/100) + "xx"
}

// Middleware instruments next with per-request count, status class, latency
// and in-flight gauges, all labelled by service. A nil registry means
// Default(). The {service,code="2xx"} count series and the latency
// histogram series are pre-created so /metrics exposes every instrumented
// service from process start, before any traffic arrives.
func Middleware(reg *Registry, service string, next http.Handler) http.Handler {
	if reg == nil {
		reg = Default()
	}
	requests := reg.Counter("frappe_http_requests_total",
		"HTTP requests served, by service and status-code class.", "service", "code")
	duration := reg.Histogram("frappe_http_request_duration_seconds",
		"HTTP request latency in seconds, by service.", nil, "service")
	inflight := reg.Gauge("frappe_http_inflight_requests",
		"HTTP requests currently being served, by service.", "service")

	requests.With(service, "2xx") // pre-create so the family is never empty
	dur := duration.With(service)
	inf := inflight.With(service)

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inf.Inc()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		dur.Observe(time.Since(start).Seconds())
		requests.With(service, codeClass(rec.status)).Inc()
		inf.Dec()
	})
}
