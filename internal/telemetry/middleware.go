package telemetry

import (
	"net/http"
	"strconv"
	"time"

	"frappe/internal/tracing"
)

// HTTP middleware shared by every loopback service in internal/stack and
// by the watchdog assessment service. Metric names are part of the repo's
// observability contract (see DESIGN.md "Observability"):
//
//	frappe_http_requests_total{service,code}      counter
//	frappe_http_request_duration_seconds{service} histogram
//	frappe_http_inflight_requests{service}        gauge
//
// The middleware is also where server-side tracing starts: each request
// gets a span (continuing the caller's trace when the request carries a
// W3C traceparent header, starting a fresh one otherwise), the span's
// trace id is returned in the X-Trace-Id response header, and the request
// context carries the span so handler-side instrumentation nests under it.

// TraceIDHeader is the response header every instrumented service sets to
// the request's trace id.
const TraceIDHeader = "X-Trace-Id"

// statusRecorder captures the response status code for labelling, without
// hiding the wrapped writer's optional interfaces: Flush passes through to
// an underlying http.Flusher, and Unwrap exposes the wrapped writer to
// http.ResponseController. A Write before any WriteHeader commits the
// implicit 200 exactly once, so a late (superfluous) WriteHeader cannot
// relabel the request.
type statusRecorder struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wroteHeader {
		r.status = code
		r.wroteHeader = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wroteHeader {
		// net/http sends an implicit 200 on first Write; record it so the
		// metric label and any later WriteHeader bookkeeping agree.
		r.status = http.StatusOK
		r.wroteHeader = true
	}
	return r.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does (and is a
// no-op otherwise), so streaming handlers behind the middleware still
// flush — the wrapper used to hide the interface entirely.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer's
// optional interfaces (Flusher, Hijacker, deadlines).
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// codeClass folds a status code into its Prometheus-friendly class label.
func codeClass(status int) string {
	if status < 100 || status > 599 {
		return "other"
	}
	return strconv.Itoa(status/100) + "xx"
}

// Middleware instruments next with per-request count, status class, latency
// and in-flight gauges, all labelled by service, plus a server-side trace
// span recorded on the process-default tracer. A nil registry means
// Default(). The {service,code="2xx"} count series and the latency
// histogram series are pre-created so /metrics exposes every instrumented
// service from process start, before any traffic arrives.
func Middleware(reg *Registry, service string, next http.Handler) http.Handler {
	return MiddlewareTraced(reg, service, nil, next)
}

// MiddlewareTraced is Middleware with an explicit tracer (nil means the
// process default tracer).
func MiddlewareTraced(reg *Registry, service string, tracer *tracing.Tracer, next http.Handler) http.Handler {
	if reg == nil {
		reg = Default()
	}
	if tracer == nil {
		tracer = tracing.Default()
	}
	requests := reg.Counter("frappe_http_requests_total",
		"HTTP requests served, by service and status-code class.", "service", "code")
	duration := reg.Histogram("frappe_http_request_duration_seconds",
		"HTTP request latency in seconds, by service.", nil, "service")
	inflight := reg.Gauge("frappe_http_inflight_requests",
		"HTTP requests currently being served, by service.", "service")

	requests.With(service, "2xx") // pre-create so the family is never empty
	dur := duration.With(service)
	inf := inflight.With(service)

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inf.Inc()
		start := time.Now()
		ctx, span := tracer.StartRemote(r.Context(), "http.server", r.Header.Get(tracing.TraceparentHeader))
		if span != nil {
			span.SetAttr(
				tracing.String("service", service),
				tracing.String("method", r.Method),
				tracing.String("path", r.URL.Path),
			)
			w.Header().Set(TraceIDHeader, span.TraceID().String())
			r = r.WithContext(ctx)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		if span != nil {
			span.SetAttr(tracing.Int("status", int64(rec.status)))
			if rec.status >= 500 {
				span.SetErrorString(http.StatusText(rec.status))
			}
			span.End()
		}
		dur.Observe(time.Since(start).Seconds())
		requests.With(service, codeClass(rec.status)).Inc()
		inf.Dec()
	})
}
