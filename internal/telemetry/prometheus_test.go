package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPrometheusGolden locks the text exposition format: a quiesced
// registry must render byte-for-byte deterministically.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	req := r.Counter("frappe_http_requests_total", "HTTP requests.", "service", "code")
	req.With("graph", "2xx").Add(3)
	req.With("graph", "5xx").Inc()
	req.With("wot", "2xx").Add(2)
	r.Gauge("frappe_http_inflight_requests", "In-flight.", "service").With("graph").Set(1)
	h := r.Histogram("frappe_http_request_duration_seconds", "Latency.", []float64{0.01, 0.1, 1}, "service")
	h.With("graph").Observe(0.005)
	h.With("graph").Observe(0.05)
	h.With("graph").Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP frappe_http_inflight_requests In-flight.
# TYPE frappe_http_inflight_requests gauge
frappe_http_inflight_requests{service="graph"} 1
# HELP frappe_http_request_duration_seconds Latency.
# TYPE frappe_http_request_duration_seconds histogram
frappe_http_request_duration_seconds_bucket{service="graph",le="0.01"} 1
frappe_http_request_duration_seconds_bucket{service="graph",le="0.1"} 2
frappe_http_request_duration_seconds_bucket{service="graph",le="1"} 2
frappe_http_request_duration_seconds_bucket{service="graph",le="+Inf"} 3
frappe_http_request_duration_seconds_sum{service="graph"} 5.055
frappe_http_request_duration_seconds_count{service="graph"} 3
# HELP frappe_http_requests_total HTTP requests.
# TYPE frappe_http_requests_total counter
frappe_http_requests_total{service="graph",code="2xx"} 3
frappe_http_requests_total{service="graph",code="5xx"} 1
frappe_http_requests_total{service="wot",code="2xx"} 2
`
	// Series order within a family follows label-value order (service
	// first), so graph sorts before wot.
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("c_total", "C.", "v").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `c_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}

func TestEmptyFamilyOmitted(t *testing.T) {
	r := New()
	r.Counter("never_used_total", "Unused.", "k") // family, no series
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("empty family rendered:\n%s", b.String())
	}
}

func TestHandlerContentType(t *testing.T) {
	r := New()
	r.Counter("c_total", "C.").With().Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "c_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestExpvarFunc(t *testing.T) {
	r := New()
	r.Counter("c_total", "C.", "k").With("x").Add(2)
	r.Histogram("h_seconds", "H.", []float64{1}).With().Observe(0.5)
	raw, err := json.Marshal(r.ExpvarFunc()())
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	if !strings.Contains(s, `"c_total{k=\"x\"}":2`) {
		t.Errorf("expvar JSON missing counter: %s", s)
	}
	if !strings.Contains(s, `"h_seconds":{"count":1,"sum":0.5}`) {
		t.Errorf("expvar JSON missing histogram: %s", s)
	}
}
