package telemetry

import (
	"expvar"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"frappe/internal/tracing"
)

// DebugServer is the operational side-channel of a long-running binary:
// /metrics (Prometheus text), /debug/vars (expvar, including the bridged
// registry), /debug/traces (recent + slowest request traces as JSON span
// trees), and /debug/pprof (CPU/heap/goroutine profiling). frappeserve
// and watchdogd mount it behind their -debug-addr flag.
type DebugServer struct {
	// Addr is the resolved listen address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// StartDebugServer listens on addr and serves the debug mux in a
// goroutine. The registry (nil means Default) is published to expvar under
// "frappe_metrics" and served at /metrics. Callers must Close the server.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	if reg == nil {
		reg = Default()
	}
	reg.PublishExpvar("frappe_metrics")

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/traces", tracing.Default().Store().Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go func() {
		if err := ds.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			slog.Default().Error("debug server exited", "addr", ds.Addr, "err", err)
		}
	}()
	return ds, nil
}

// Close stops the server.
func (d *DebugServer) Close() error {
	err := d.srv.Close()
	_ = d.ln.Close()
	return err
}
