// Package telemetry is the repo's dependency-free observability substrate:
// atomic counters, gauges, and fixed-bucket latency histograms behind a
// Registry, exposed in Prometheus text format and over expvar, plus shared
// HTTP middleware, structured-logging setup, and a pprof debug server.
//
// The paper's pipeline (§2.3, §5) is measurement all the way down —
// MyPageKeeper's value came from continuously observing 91M posts — and
// this package gives the reproduction the same property: crawl coverage,
// per-service request latency, and classification throughput become live
// observables instead of folklore.
//
// Everything is stdlib-only by design (go.mod stays empty of requires):
// counters are atomic.Uint64, gauges and histogram sums are CAS loops over
// float64 bits, and the exposition writer emits the Prometheus text format
// directly.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric families.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String names the kind in Prometheus TYPE terms.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Registry holds metric families. The zero value is not usable; call New.
// All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric family: a kind, a help string, a label schema,
// and the live series keyed by their label values.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histogram upper bounds, sorted, no +Inf

	mu     sync.RWMutex
	series map[string]interface{} // *Counter | *Gauge | *Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry that the instrumented packages
// (stack, crawler, datasets, core, synth, the watchdog service) record into
// unless handed an explicit one.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = New() })
	return defaultReg
}

// lookup returns the family, creating it on first use. Re-registering an
// existing name with a different kind or label schema is a programming
// error and panics.
func (r *Registry) lookup(name, help string, kind Kind, labelNames []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		if len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("telemetry: %s re-registered with labels %v (was %v)", name, labelNames, f.labelNames))
		}
		for i := range labelNames {
			if f.labelNames[i] != labelNames[i] {
				panic(fmt.Sprintf("telemetry: %s re-registered with labels %v (was %v)", name, labelNames, f.labelNames))
			}
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		kind:       kind,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		series:     make(map[string]interface{}),
	}
	sort.Float64s(f.buckets)
	r.families[name] = f
	return f
}

// seriesKey joins label values; 0x1f (unit separator) cannot appear in
// practical label values and keeps the key unambiguous.
func seriesKey(values []string) string { return strings.Join(values, "\x1f") }

// get returns the series for the label values, creating it with make on
// first use.
func (f *family) get(values []string, make func() interface{}) interface{} {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: %s expects %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := seriesKey(values)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s = make()
	f.series[key] = s
	return s
}

// ---------------------------------------------------------------- counters

// Counter is a monotonically increasing count. Use Inc/Add.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterVec is a counter family with a fixed label schema.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first
// use). The number of values must match the registration label names.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.get(labelValues, func() interface{} { return &Counter{} }).(*Counter)
}

// Counter registers (or returns) a counter family. With no label names the
// family holds a single series, addressed as vec.With().
func (r *Registry) Counter(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, KindCounter, labelNames, nil)}
}

// ------------------------------------------------------------------ gauges

// Gauge is a float value that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; safe under contention).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeVec is a gauge family with a fixed label schema.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.get(labelValues, func() interface{} { return &Gauge{} }).(*Gauge)
}

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, KindGauge, labelNames, nil)}
}

// -------------------------------------------------------------- histograms

// Histogram is a fixed-bucket distribution. Buckets are upper bounds; an
// implicit +Inf bucket catches the tail. Observe is lock-free.
type Histogram struct {
	upper   []float64 // sorted upper bounds, no +Inf
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound >= v; the last slot is +Inf.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Cumulative returns the cumulative per-bucket counts; the final entry is
// the +Inf bucket and equals Count (modulo racing observers).
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		out[i] = acc
	}
	return out
}

// HistogramVec is a histogram family with a fixed label schema.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	f := v.f
	return f.get(labelValues, func() interface{} { return newHistogram(f.buckets) }).(*Histogram)
}

// Histogram registers (or returns) a histogram family with the given
// upper-bound buckets (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets()
	}
	return &HistogramVec{f: r.lookup(name, help, KindHistogram, labelNames, buckets)}
}

// DefBuckets is the default latency bucket ladder, in seconds.
func DefBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// LinearBuckets returns count buckets of the given width starting at start.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// --------------------------------------------------------------- snapshots

// SeriesSnapshot is one series' point-in-time state.
type SeriesSnapshot struct {
	// LabelValues parallel the family's label names.
	LabelValues []string
	// Value holds counter counts and gauge values.
	Value float64
	// Count/Sum/CumulativeCounts are set for histograms only;
	// CumulativeCounts parallels the family's Buckets plus a final +Inf.
	Count            uint64
	Sum              float64
	CumulativeCounts []uint64
}

// FamilySnapshot is one family's point-in-time state.
type FamilySnapshot struct {
	Name       string
	Help       string
	Kind       Kind
	LabelNames []string
	Buckets    []float64
	Series     []SeriesSnapshot
}

// Snapshot captures every family and series, sorted by family name and
// series label values, suitable for exposition or programmatic reads.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:       f.name,
			Help:       f.help,
			Kind:       f.kind,
			LabelNames: f.labelNames,
			Buckets:    f.buckets,
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ss := SeriesSnapshot{}
			if len(f.labelNames) > 0 {
				ss.LabelValues = strings.Split(k, "\x1f")
			}
			switch m := f.series[k].(type) {
			case *Counter:
				ss.Value = float64(m.Value())
			case *Gauge:
				ss.Value = m.Value()
			case *Histogram:
				ss.Count = m.Count()
				ss.Sum = m.Sum()
				ss.CumulativeCounts = m.Cumulative()
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.RUnlock()
		out = append(out, fs)
	}
	return out
}

// CounterValue reads one counter series (0 if absent). Label values must be
// in registration order.
func (r *Registry) CounterValue(name string, labelValues ...string) uint64 {
	if c, ok := r.find(name, labelValues); ok {
		if m, ok := c.(*Counter); ok {
			return m.Value()
		}
	}
	return 0
}

// GaugeValue reads one gauge series (0 if absent).
func (r *Registry) GaugeValue(name string, labelValues ...string) float64 {
	if g, ok := r.find(name, labelValues); ok {
		if m, ok := g.(*Gauge); ok {
			return m.Value()
		}
	}
	return 0
}

// HistogramSum reads one histogram series' sum and count (zeros if absent).
func (r *Registry) HistogramSum(name string, labelValues ...string) (sum float64, count uint64) {
	if h, ok := r.find(name, labelValues); ok {
		if m, ok := h.(*Histogram); ok {
			return m.Sum(), m.Count()
		}
	}
	return 0, 0
}

func (r *Registry) find(name string, labelValues []string) (interface{}, bool) {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	s, ok := f.series[seriesKey(labelValues)]
	return s, ok
}
