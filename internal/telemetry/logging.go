package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"

	"frappe/internal/tracing"
)

// Shared structured-logging setup for the cmd/ binaries: every process logs
// through log/slog with a component attribute, a parseable level, and an
// optional JSON format, so crawl/serve/train logs are greppable and
// machine-readable the same way across the fleet.

// LogConfig configures NewLogger.
type LogConfig struct {
	// Component tags every record (e.g. "watchdogd").
	Component string
	// Level is "debug", "info", "warn" or "error" (default "info").
	Level string
	// JSON selects JSON output instead of logfmt-style text.
	JSON bool
	// Output defaults to os.Stderr.
	Output io.Writer
}

// ParseLevel maps a level name to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return slog.LevelInfo, fmt.Errorf("telemetry: unknown log level %q", s)
	}
}

// NewLogger builds a *slog.Logger per cfg. An unknown level falls back to
// info (and is reported on the returned logger) rather than failing the
// process over a typo.
func NewLogger(cfg LogConfig) *slog.Logger {
	out := cfg.Output
	if out == nil {
		out = os.Stderr
	}
	level, err := ParseLevel(cfg.Level)
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if cfg.JSON {
		h = slog.NewJSONHandler(out, opts)
	} else {
		h = slog.NewTextHandler(out, opts)
	}
	// Every record logged with a span-carrying context gets trace_id and
	// span_id attrs, linking log lines to /debug/traces span trees.
	h = tracing.WrapSlogHandler(h)
	logger := slog.New(h)
	if cfg.Component != "" {
		logger = logger.With("component", cfg.Component)
	}
	if err != nil {
		logger.Warn("invalid log level, using info", "level", cfg.Level)
	}
	return logger
}

// SetupProcessLogger builds a logger per cfg and installs it as the slog
// default, so package-level instrumentation (watchdog service, middleware)
// logs through it too. It returns the logger for direct use.
func SetupProcessLogger(cfg LogConfig) *slog.Logger {
	logger := NewLogger(cfg)
	slog.SetDefault(logger)
	return logger
}
