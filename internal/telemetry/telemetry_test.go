package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounterSemantics(t *testing.T) {
	r := New()
	vec := r.Counter("jobs_total", "Jobs.", "kind")
	vec.With("a").Inc()
	vec.With("a").Add(4)
	vec.With("b").Inc()
	if got := r.CounterValue("jobs_total", "a"); got != 5 {
		t.Errorf("counter a = %d, want 5", got)
	}
	if got := r.CounterValue("jobs_total", "b"); got != 1 {
		t.Errorf("counter b = %d, want 1", got)
	}
	if got := r.CounterValue("jobs_total", "missing"); got != 0 {
		t.Errorf("missing series = %d, want 0", got)
	}
	// Same name re-registration returns the same underlying family.
	again := r.Counter("jobs_total", "Jobs.", "kind")
	again.With("a").Inc()
	if got := r.CounterValue("jobs_total", "a"); got != 6 {
		t.Errorf("re-registered counter a = %d, want 6", got)
	}
}

func TestGaugeSemantics(t *testing.T) {
	r := New()
	g := r.Gauge("depth", "Depth.").With()
	g.Set(2.5)
	g.Add(1.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %v, want 4", got)
	}
	g.Set(-1)
	if got := r.GaugeValue("depth"); got != -1 {
		t.Errorf("gauge after Set(-1) = %v, want -1", got)
	}
}

func TestHistogramSemantics(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "Latency.", []float64{0.1, 1, 10}).With()
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-55.65) > 1e-9 {
		t.Errorf("sum = %v, want 55.65", got)
	}
	// 0.05 and 0.1 land in le=0.1 (bounds are inclusive); 0.5 in le=1;
	// 5 in le=10; 50 only in +Inf.
	want := []uint64{2, 3, 4, 5}
	got := h.Cumulative()
	if len(got) != len(want) {
		t.Fatalf("cumulative = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x", "X.")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as gauge did not panic")
		}
	}()
	r.Gauge("x", "X.")
}

func TestLabelArityMismatchPanics(t *testing.T) {
	r := New()
	vec := r.Counter("x", "X.", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity did not panic")
		}
	}()
	vec.With("only-one")
}

// TestConcurrentIncrements is the race-detector workout for the atomic and
// locked paths: CI runs the package under -race.
func TestConcurrentIncrements(t *testing.T) {
	r := New()
	c := r.Counter("c", "C.", "w")
	g := r.Gauge("g", "G.")
	h := r.Histogram("h", "H.", []float64{1, 2, 3})

	const workers, perWorker = 32, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%4))
			for i := 0; i < perWorker; i++ {
				c.With(lbl).Inc()
				g.With().Add(1)
				h.With().Observe(float64(i % 5))
			}
		}(w)
	}
	wg.Wait()

	var total uint64
	for _, lbl := range []string{"a", "b", "c", "d"} {
		total += r.CounterValue("c", lbl)
	}
	if want := uint64(workers * perWorker); total != want {
		t.Errorf("counter total = %d, want %d", total, want)
	}
	if got := r.GaugeValue("g"); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	if _, count := r.HistogramSum("h"); count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", count, workers*perWorker)
	}
	inf := h.With().Cumulative()
	if got := inf[len(inf)-1]; got != workers*perWorker {
		t.Errorf("+Inf cumulative = %d, want %d", got, workers*perWorker)
	}
}

func TestSnapshotShape(t *testing.T) {
	r := New()
	r.Counter("b_total", "B.", "k").With("x").Inc()
	r.Gauge("a_gauge", "A.").With().Set(7)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot families = %d, want 2", len(snap))
	}
	if snap[0].Name != "a_gauge" || snap[1].Name != "b_total" {
		t.Errorf("families not sorted: %s, %s", snap[0].Name, snap[1].Name)
	}
	if snap[1].Series[0].LabelValues[0] != "x" {
		t.Errorf("label values = %v", snap[1].Series[0].LabelValues)
	}
}
