package telemetry

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestMiddlewareRecords(t *testing.T) {
	r := New()
	h := Middleware(r, "svc", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Path {
		case "/boom":
			http.Error(w, "boom", http.StatusInternalServerError)
		case "/missing":
			http.NotFound(w, req)
		default:
			w.Write([]byte("ok")) // implicit 200
		}
	}))
	for _, path := range []string{"/", "/", "/boom", "/missing"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	}
	if got := r.CounterValue("frappe_http_requests_total", "svc", "2xx"); got != 2 {
		t.Errorf("2xx = %d, want 2", got)
	}
	if got := r.CounterValue("frappe_http_requests_total", "svc", "5xx"); got != 1 {
		t.Errorf("5xx = %d, want 1", got)
	}
	if got := r.CounterValue("frappe_http_requests_total", "svc", "4xx"); got != 1 {
		t.Errorf("4xx = %d, want 1", got)
	}
	if _, count := r.HistogramSum("frappe_http_request_duration_seconds", "svc"); count != 4 {
		t.Errorf("duration count = %d, want 4", count)
	}
	if got := r.GaugeValue("frappe_http_inflight_requests", "svc"); got != 0 {
		t.Errorf("inflight after drain = %v, want 0", got)
	}
}

// TestMiddlewarePreCreatesSeries: /metrics must show every instrumented
// service from process start, before any traffic arrives.
func TestMiddlewarePreCreatesSeries(t *testing.T) {
	r := New()
	Middleware(r, "idle", http.NotFoundHandler())
	if got := r.CounterValue("frappe_http_requests_total", "idle", "2xx"); got != 0 {
		t.Errorf("pre-created series = %d, want 0", got)
	}
	found := false
	for _, fam := range r.Snapshot() {
		if fam.Name == "frappe_http_request_duration_seconds" && len(fam.Series) == 1 {
			found = true
		}
	}
	if !found {
		t.Error("latency histogram series not pre-created")
	}
}

func TestDebugServerServesMetricsAndPprof(t *testing.T) {
	r := New()
	r.Counter("frappe_smoke_total", "Smoke.").With().Inc()
	ds, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + ds.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}
