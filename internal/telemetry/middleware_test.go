package telemetry

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"frappe/internal/tracing"
)

func TestMiddlewareRecords(t *testing.T) {
	r := New()
	h := Middleware(r, "svc", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Path {
		case "/boom":
			http.Error(w, "boom", http.StatusInternalServerError)
		case "/missing":
			http.NotFound(w, req)
		default:
			w.Write([]byte("ok")) // implicit 200
		}
	}))
	for _, path := range []string{"/", "/", "/boom", "/missing"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	}
	if got := r.CounterValue("frappe_http_requests_total", "svc", "2xx"); got != 2 {
		t.Errorf("2xx = %d, want 2", got)
	}
	if got := r.CounterValue("frappe_http_requests_total", "svc", "5xx"); got != 1 {
		t.Errorf("5xx = %d, want 1", got)
	}
	if got := r.CounterValue("frappe_http_requests_total", "svc", "4xx"); got != 1 {
		t.Errorf("4xx = %d, want 1", got)
	}
	if _, count := r.HistogramSum("frappe_http_request_duration_seconds", "svc"); count != 4 {
		t.Errorf("duration count = %d, want 4", count)
	}
	if got := r.GaugeValue("frappe_http_inflight_requests", "svc"); got != 0 {
		t.Errorf("inflight after drain = %v, want 0", got)
	}
}

// TestMiddlewarePreCreatesSeries: /metrics must show every instrumented
// service from process start, before any traffic arrives.
func TestMiddlewarePreCreatesSeries(t *testing.T) {
	r := New()
	Middleware(r, "idle", http.NotFoundHandler())
	if got := r.CounterValue("frappe_http_requests_total", "idle", "2xx"); got != 0 {
		t.Errorf("pre-created series = %d, want 0", got)
	}
	found := false
	for _, fam := range r.Snapshot() {
		if fam.Name == "frappe_http_request_duration_seconds" && len(fam.Series) == 1 {
			found = true
		}
	}
	if !found {
		t.Error("latency histogram series not pre-created")
	}
}

func TestDebugServerServesMetricsAndPprof(t *testing.T) {
	r := New()
	r.Counter("frappe_smoke_total", "Smoke.").With().Inc()
	ds, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/", "/debug/traces"} {
		resp, err := http.Get("http://" + ds.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// flushRecorder is an httptest.ResponseRecorder that counts Flush calls.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

// TestMiddlewareFlusherPassthrough: the statusRecorder must not hide the
// wrapped writer's http.Flusher — both via direct type assertion and via
// http.ResponseController (which relies on Unwrap).
func TestMiddlewareFlusherPassthrough(t *testing.T) {
	r := New()
	var sawFlusher bool
	h := Middleware(r, "svc", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if f, ok := w.(http.Flusher); ok {
			sawFlusher = true
			f.Flush()
		}
		rc := http.NewResponseController(w)
		if err := rc.Flush(); err != nil {
			t.Errorf("ResponseController.Flush: %v", err)
		}
		w.Write([]byte("ok"))
	}))
	fr := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	h.ServeHTTP(fr, httptest.NewRequest("GET", "/", nil))
	if !sawFlusher {
		t.Error("middleware writer does not expose http.Flusher")
	}
	if fr.flushes < 2 {
		t.Errorf("underlying flusher called %d times, want >= 2", fr.flushes)
	}
}

// TestMiddlewareImplicit200Bookkeeping: a Write without WriteHeader commits
// the implicit 200, and a late superfluous WriteHeader cannot relabel it.
func TestMiddlewareImplicit200Bookkeeping(t *testing.T) {
	r := New()
	h := Middleware(r, "late", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Write([]byte("body first"))
		w.WriteHeader(http.StatusInternalServerError) // superfluous; must not relabel
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if got := r.CounterValue("frappe_http_requests_total", "late", "2xx"); got != 1 {
		t.Errorf("2xx = %d, want 1 (implicit 200 must win)", got)
	}
	if got := r.CounterValue("frappe_http_requests_total", "late", "5xx"); got != 0 {
		t.Errorf("5xx = %d, want 0 (late WriteHeader must not relabel)", got)
	}
}

// TestMiddlewareTracePropagation: the middleware answers with X-Trace-Id,
// continues an incoming traceparent, and exposes the span via the request
// context.
func TestMiddlewareTracePropagation(t *testing.T) {
	r := New()
	var ctxTraceID string
	h := Middleware(r, "svc", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ctxTraceID = tracing.TraceIDFrom(req.Context())
		w.Write([]byte("ok"))
	}))

	// Fresh trace: no incoming header.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	fresh := rec.Header().Get(TraceIDHeader)
	if fresh == "" {
		t.Fatal("no X-Trace-Id on response")
	}
	if ctxTraceID != fresh {
		t.Errorf("handler ctx trace id %q != header %q", ctxTraceID, fresh)
	}

	// Continued trace: the span must join the caller's trace id.
	tid := tracing.NewTraceID()
	sid := tracing.NewSpanID()
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set(tracing.TraceparentHeader, "00-"+tid.String()+"-"+sid.String()+"-01")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(TraceIDHeader); got != tid.String() {
		t.Errorf("continued trace id = %q, want %q", got, tid)
	}
}
