package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4) and bridges it onto expvar, both without importing
// anything beyond the stdlib.

// WritePrometheus renders every family in text exposition format. Families
// are sorted by name and series by label values, so output is
// deterministic for a quiesced registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fam := range r.Snapshot() {
		if len(fam.Series) == 0 {
			continue
		}
		if fam.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.Name, fam.Kind); err != nil {
			return err
		}
		for _, s := range fam.Series {
			if err := writeSeries(w, fam, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, fam FamilySnapshot, s SeriesSnapshot) error {
	if fam.Kind != KindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n",
			fam.Name, labelSet(fam.LabelNames, s.LabelValues, "", ""), formatFloat(s.Value))
		return err
	}
	for i, upper := range fam.Buckets {
		le := formatFloat(upper)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			fam.Name, labelSet(fam.LabelNames, s.LabelValues, "le", le), s.CumulativeCounts[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		fam.Name, labelSet(fam.LabelNames, s.LabelValues, "le", "+Inf"),
		s.CumulativeCounts[len(fam.Buckets)]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		fam.Name, labelSet(fam.LabelNames, s.LabelValues, "", ""), formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		fam.Name, labelSet(fam.LabelNames, s.LabelValues, "", ""), s.Count)
	return err
}

// labelSet renders {a="x",b="y"} (plus an optional extra pair, used for
// histogram le) or the empty string when there are no labels.
func labelSet(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// ExpvarFunc returns an expvar.Func exposing the registry as a JSON map:
// counters and gauges as numbers keyed name{labels}, histograms as
// {count, sum} objects. Publish it under any name with expvar.Publish.
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() interface{} {
		out := make(map[string]interface{})
		for _, fam := range r.Snapshot() {
			for _, s := range fam.Series {
				key := fam.Name + labelSet(fam.LabelNames, s.LabelValues, "", "")
				if fam.Kind == KindHistogram {
					out[key] = map[string]interface{}{"count": s.Count, "sum": s.Sum}
				} else {
					out[key] = s.Value
				}
			}
		}
		return out
	}
}

// PublishExpvar publishes the registry under the given expvar name exactly
// once; repeat calls with the same name are no-ops (expvar.Publish panics
// on duplicates, which is hostile to tests and multi-init paths).
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, r.ExpvarFunc())
}
