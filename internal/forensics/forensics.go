// Package forensics implements the §6 ecosystem investigation: it rebuilds
// the Collaboration graph from the links malicious apps actually posted
// (resolving bit.ly indirection and following the fast-changing indirection
// websites, as the paper did 100 times a day for six weeks), quantifies
// AppNet structure (Fig. 1, Fig. 13, Fig. 14), profiles the indirection
// hosting infrastructure, and detects app piggybacking (§6.2, Fig. 16,
// Table 9).
package forensics

import (
	"sort"
	"strings"

	"frappe/internal/appgraph"
	"frappe/internal/fbplatform"
	"frappe/internal/mypagekeeper"
	"frappe/internal/synth"
)

// LinkResolver resolves the two indirection layers hackers put between a
// promotion post and the promoted app: URL shorteners and rotating
// indirection websites.
type LinkResolver interface {
	// ExpandShort resolves a shortened URL; ok=false if the URL is not a
	// short link.
	ExpandShort(link string) (long string, ok bool)
	// SiteTargets returns every install URL an indirection website
	// forwards to (the union discovered by repeated visits); ok=false if
	// the URL is not a known indirection site.
	SiteTargets(link string) (targets []string, ok bool)
}

// worldResolver adapts a synthetic world's services.
type worldResolver struct{ w *synth.World }

func (r worldResolver) ExpandShort(link string) (string, bool) {
	if !r.w.Bitly.IsShort(link) {
		return "", false
	}
	long, err := r.w.Bitly.Expand(link)
	if err != nil {
		return "", false
	}
	return long, true
}

func (r worldResolver) SiteTargets(link string) ([]string, bool) {
	site, err := r.w.Redirector.Site(link)
	if err != nil {
		return nil, false
	}
	return site.Targets(), true
}

// NewWorldResolver returns a LinkResolver backed by the world's bit.ly and
// redirector services.
func NewWorldResolver(w *synth.World) LinkResolver { return worldResolver{w} }

// Promotion is one resolved promotion edge with its mechanism.
type Promotion struct {
	Promoter string
	Promotee string
	// Direct is true for install-URL links; false for indirection-site
	// hops.
	Direct bool
}

// BuildGraph reconstructs the Collaboration graph for the candidate apps
// from their observed posted links. Only edges between candidates are
// kept, mirroring the paper's analysis of the malicious dataset.
func BuildGraph(candidates []string, stats map[string]mypagekeeper.AppStats, res LinkResolver) (*appgraph.Graph, []Promotion) {
	inSet := make(map[string]bool, len(candidates))
	for _, id := range candidates {
		inSet[id] = true
	}
	g := appgraph.New()
	var promos []Promotion
	seen := map[Promotion]bool{}
	add := func(p Promotion) {
		if p.Promoter == p.Promotee || !inSet[p.Promotee] || seen[p] {
			return
		}
		seen[p] = true
		promos = append(promos, p)
		g.AddEdge(p.Promoter, p.Promotee)
	}
	for _, id := range candidates {
		as, ok := stats[id]
		if !ok {
			continue
		}
		for _, link := range as.Links {
			resolved := link
			if long, ok := res.ExpandShort(link); ok {
				resolved = long
			}
			if target, ok := fbplatform.ParseInstallURL(resolved); ok {
				add(Promotion{Promoter: id, Promotee: target, Direct: true})
				continue
			}
			if targets, ok := res.SiteTargets(resolved); ok {
				for _, t := range targets {
					if target, ok := fbplatform.ParseInstallURL(t); ok {
						add(Promotion{Promoter: id, Promotee: target, Direct: false})
					}
				}
			}
		}
	}
	return g, promos
}

// GraphSummary condenses the §6.1 AppNet statistics.
type GraphSummary struct {
	Apps           int
	Edges          int
	Promoters      int
	Promotees      int
	DualRole       int
	Components     int
	TopComponents  []int // sizes, descending
	AverageDegree  float64
	MaxDegree      int
	DegreeOver10   float64 // fraction of apps colluding with > 10 others
	LCCOverP74     float64 // fraction of apps with clustering coeff > 0.74
	DirectEdges    int
	IndirectEdges  int
	DirectPromoter int // promoters using direct links
}

// Summarize computes the §6.1 statistics for a collaboration graph.
func Summarize(g *appgraph.Graph, promos []Promotion) GraphSummary {
	s := GraphSummary{
		Apps:      g.NumNodes(),
		Edges:     g.NumEdges(),
		Promoters: g.PromoterCount(),
		Promotees: g.PromoteeCount(),
	}
	roles := g.Roles()
	s.DualRole = len(roles.Dual)
	comps := g.ConnectedComponents()
	s.Components = len(comps)
	for i, c := range comps {
		if i == 5 {
			break
		}
		s.TopComponents = append(s.TopComponents, c.Size())
	}
	s.AverageDegree = g.AverageDegree()
	over10 := 0
	for _, d := range g.Degrees() {
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d > 10 {
			over10++
		}
	}
	if s.Apps > 0 {
		s.DegreeOver10 = float64(over10) / float64(s.Apps)
	}
	dense := 0
	for _, c := range g.ClusteringCoefficients() {
		if c > 0.74 {
			dense++
		}
	}
	if s.Apps > 0 {
		s.LCCOverP74 = float64(dense) / float64(s.Apps)
	}
	directPromoters := map[string]bool{}
	for _, p := range promos {
		if p.Direct {
			s.DirectEdges++
			directPromoters[p.Promoter] = true
		} else {
			s.IndirectEdges++
		}
	}
	s.DirectPromoter = len(directPromoters)
	return s
}

// SiteReport describes the indirection-website infrastructure (§6.1).
type SiteReport struct {
	Sites          int
	AmazonHosted   int
	TargetsTotal   int
	SitesOver100   int // sites promoting > 100 apps
	UniqueTargets  int
	HostingDomains map[string]int // host domain -> #sites
}

// SurveySites walks every registered indirection site.
func SurveySites(w *synth.World) SiteReport {
	rep := SiteReport{HostingDomains: make(map[string]int)}
	targets := map[string]bool{}
	for _, h := range w.Hackers {
		for _, site := range h.Sites {
			rep.Sites++
			rep.HostingDomains[site.HostDomain]++
			if strings.Contains(site.HostDomain, "amazonaws") {
				rep.AmazonHosted++
			}
			n := site.NumTargets()
			rep.TargetsTotal += n
			if n > 100 {
				rep.SitesOver100++
			}
			for _, t := range site.Targets() {
				targets[t] = true
			}
		}
	}
	rep.UniqueTargets = len(targets)
	return rep
}

// PiggybackFinding is one suspected piggybacking victim: an app whose
// malicious-to-all-posts ratio is suspiciously low (Fig. 16's knee).
type PiggybackFinding struct {
	AppID        string
	Name         string
	Posts        int
	FlaggedPosts int
	Ratio        float64
	// SampleMessage is one flagged-looking message observed for the app,
	// the Table 9 "Post msg" column.
	SampleMessage string
}

// DetectPiggybacking finds flagged apps whose flagged-post ratio is below
// maxRatio (the paper examines apps under 0.2), sorted by posting volume.
// names maps app IDs to display names.
func DetectPiggybacking(stats map[string]mypagekeeper.AppStats, names map[string]string, maxRatio float64) []PiggybackFinding {
	var out []PiggybackFinding
	for id, as := range stats {
		if as.FlaggedPosts == 0 || as.Posts == 0 {
			continue
		}
		ratio := float64(as.FlaggedPosts) / float64(as.Posts)
		if ratio >= maxRatio {
			continue
		}
		f := PiggybackFinding{
			AppID:        id,
			Name:         names[id],
			Posts:        as.Posts,
			FlaggedPosts: as.FlaggedPosts,
			Ratio:        ratio,
		}
		if len(as.FlaggedMessages) > 0 {
			f.SampleMessage = as.FlaggedMessages[0]
		} else {
			for _, m := range as.Messages {
				if looksLikeLure(m) {
					f.SampleMessage = m
					break
				}
			}
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Posts != out[j].Posts {
			return out[i].Posts > out[j].Posts
		}
		return out[i].AppID < out[j].AppID
	})
	return out
}

// looksLikeLure reports whether a message reads like scam bait.
func looksLikeLure(msg string) bool {
	lower := strings.ToLower(msg)
	for _, k := range mypagekeeper.SpamKeywords {
		if strings.Contains(lower, k) {
			return true
		}
	}
	return false
}

// FlaggedRatios returns, for every app with at least one flagged post, the
// ratio of flagged posts to all posts — the Fig. 16 distribution.
func FlaggedRatios(stats map[string]mypagekeeper.AppStats) []float64 {
	var out []float64
	for _, as := range stats {
		if as.FlaggedPosts > 0 && as.Posts > 0 {
			out = append(out, float64(as.FlaggedPosts)/float64(as.Posts))
		}
	}
	sort.Float64s(out)
	return out
}
