package forensics

import (
	"sync"
	"testing"

	"frappe/internal/appgraph"
	"frappe/internal/fbplatform"
	"frappe/internal/mypagekeeper"
	"frappe/internal/synth"
)

var (
	once  sync.Once
	world *synth.World
)

func sharedWorld(t *testing.T) *synth.World {
	t.Helper()
	once.Do(func() {
		cfg := synth.Default(0.03)
		cfg.MaxMaterializedPostsPerApp = 80
		world = synth.Generate(cfg)
	})
	return world
}

func TestBuildGraphFromWorld(t *testing.T) {
	w := sharedWorld(t)
	stats := w.Monitor.Apps()
	g, promos := BuildGraph(w.MaliciousIDs, stats, NewWorldResolver(w))
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatalf("empty collaboration graph: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if len(promos) == 0 {
		t.Fatal("no promotions resolved")
	}
	// Every edge must link apps of the same hacker (campaigns are
	// intra-AppNet in the generator).
	for _, p := range promos {
		hp, ht := w.HackerOf(p.Promoter), w.HackerOf(p.Promotee)
		if hp == nil || ht == nil {
			t.Fatalf("promotion between unknown apps: %+v", p)
		}
		if hp.ID != ht.ID {
			t.Errorf("cross-hacker edge %s -> %s", p.Promoter, p.Promotee)
		}
	}
	// Both mechanisms must appear.
	var direct, indirect int
	for _, p := range promos {
		if p.Direct {
			direct++
		} else {
			indirect++
		}
	}
	if direct == 0 || indirect == 0 {
		t.Errorf("mechanism mix: direct=%d indirect=%d, want both > 0", direct, indirect)
	}
}

func TestSummarize(t *testing.T) {
	w := sharedWorld(t)
	stats := w.Monitor.Apps()
	g, promos := BuildGraph(w.MaliciousIDs, stats, NewWorldResolver(w))
	s := Summarize(g, promos)
	if s.Apps != g.NumNodes() || s.Edges != g.NumEdges() {
		t.Errorf("summary counts wrong: %+v", s)
	}
	if s.Components == 0 || len(s.TopComponents) == 0 {
		t.Errorf("no components: %+v", s)
	}
	// Components track hackers: promotion is intra-AppNet, though one
	// AppNet may split when its promoters cover disjoint promotee sets.
	if s.Components > 3*len(w.Hackers) {
		t.Errorf("components = %d, want <= 3x hackers (%d)", s.Components, len(w.Hackers))
	}
	if s.AverageDegree <= 0 || s.MaxDegree <= 0 {
		t.Errorf("degenerate degrees: %+v", s)
	}
	// Fig. 13 role split: promoters+dual and promotees+dual overlap.
	if s.Promoters == 0 || s.Promotees == 0 {
		t.Errorf("role counts: %+v", s)
	}
	if s.DirectEdges == 0 || s.IndirectEdges == 0 {
		t.Errorf("edge mechanisms: %+v", s)
	}
}

func TestSummarizeEmptyGraph(t *testing.T) {
	s := Summarize(appgraph.New(), nil)
	if s.Apps != 0 || s.DegreeOver10 != 0 || s.LCCOverP74 != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestSurveySites(t *testing.T) {
	w := sharedWorld(t)
	rep := SurveySites(w)
	if rep.Sites != w.Redirector.NumSites() {
		t.Errorf("Sites = %d, want %d", rep.Sites, w.Redirector.NumSites())
	}
	if rep.UniqueTargets == 0 || rep.TargetsTotal == 0 {
		t.Errorf("no targets: %+v", rep)
	}
	total := 0
	for _, n := range rep.HostingDomains {
		total += n
	}
	if total != rep.Sites {
		t.Errorf("hosting histogram sums to %d, want %d", total, rep.Sites)
	}
}

func TestDetectPiggybacking(t *testing.T) {
	w := sharedWorld(t)
	stats := w.Monitor.Apps()
	names := map[string]string{}
	for _, id := range w.PopularIDs {
		app, err := w.Platform.App(id)
		if err != nil {
			t.Fatal(err)
		}
		names[id] = app.Name
	}
	findings := DetectPiggybacking(stats, names, 0.2)
	if len(findings) == 0 {
		t.Fatal("no piggybacking detected; the victims should qualify")
	}
	// Victims are the most popular apps, so they should lead the list.
	victims := map[string]bool{}
	for _, id := range w.PopularIDs {
		victims[id] = true
	}
	hits := 0
	for i, f := range findings {
		if victims[f.AppID] {
			hits++
			if f.Name == "" {
				t.Errorf("finding %d lacks a name", i)
			}
		}
		if f.Ratio >= 0.2 {
			t.Errorf("finding ratio %.2f above threshold", f.Ratio)
		}
	}
	if hits == 0 {
		t.Error("no known victim among findings")
	}
	// Sorted by posting volume.
	for i := 1; i < len(findings); i++ {
		if findings[i-1].Posts < findings[i].Posts {
			t.Error("findings not sorted by posts")
		}
	}
	// At least one finding should carry a lure sample message.
	foundLure := false
	for _, f := range findings {
		if f.SampleMessage != "" {
			foundLure = true
			break
		}
	}
	if !foundLure {
		t.Error("no lure message sampled")
	}
}

func TestFlaggedRatios(t *testing.T) {
	w := sharedWorld(t)
	ratios := FlaggedRatios(w.Monitor.Apps())
	if len(ratios) == 0 {
		t.Fatal("no flagged apps")
	}
	for i, r := range ratios {
		if r <= 0 || r > 1 {
			t.Fatalf("ratio out of range: %v", r)
		}
		if i > 0 && ratios[i-1] > r {
			t.Fatal("ratios not sorted")
		}
	}
	// The piggybacked victims put mass below 0.2; truly malicious apps
	// cluster near 1 (Fig. 16).
	low, high := 0, 0
	for _, r := range ratios {
		if r < 0.2 {
			low++
		}
		if r > 0.8 {
			high++
		}
	}
	if low == 0 {
		t.Error("no low-ratio apps (piggyback victims missing)")
	}
	if high == 0 {
		t.Error("no high-ratio apps (campaign apps missing)")
	}
}

func TestBuildGraphIgnoresOutsiders(t *testing.T) {
	stats := map[string]mypagekeeper.AppStats{
		"a": {AppID: "a", Links: []string{fbplatform.InstallURL("outsider")}},
	}
	g, promos := BuildGraph([]string{"a"}, stats, staticResolver{})
	if g.NumEdges() != 0 || len(promos) != 0 {
		t.Error("edge to non-candidate app should be dropped")
	}
}

type staticResolver struct{}

func (staticResolver) ExpandShort(string) (string, bool)   { return "", false }
func (staticResolver) SiteTargets(string) ([]string, bool) { return nil, false }
