package textdist

import "sync"

// distBuf holds the reusable working state of one distance computation:
// three DP rows plus two rune buffers, recycled through a pool so the
// clustering and typosquat loops — which call into the DP millions of times
// at corpus scale — stop paying three slice allocations per call.
type distBuf struct {
	prev2, prev, cur []int
	ra, rb           []rune
}

var distPool = sync.Pool{New: func() interface{} { return new(distBuf) }}

func (b *distBuf) rows(width int) (prev2, prev, cur []int) {
	if cap(b.prev2) < width {
		b.prev2 = make([]int, width)
		b.prev = make([]int, width)
		b.cur = make([]int, width)
	}
	return b.prev2[:width], b.prev[:width], b.cur[:width]
}

// appendRunes decodes s into buf without allocating when capacity suffices.
func appendRunes(buf []rune, s string) []rune {
	buf = buf[:0]
	for _, r := range s {
		buf = append(buf, r)
	}
	return buf
}

// DistanceAtMost reports the Damerau–Levenshtein distance between a and b
// if it is at most k, using Ukkonen's band trick: only cells within k of
// the diagonal can contribute, so the DP costs O(max(la,lb)·k) instead of
// O(la·lb), and a row whose in-band minimum already exceeds k aborts early.
// When ok is true, d equals Distance(a, b); when false, the true distance
// exceeds k and d is only a lower bound.
func DistanceAtMost(a, b string, k int) (d int, ok bool) {
	if k < 0 {
		return 0, false
	}
	buf := distPool.Get().(*distBuf)
	buf.ra = appendRunes(buf.ra, a)
	buf.rb = appendRunes(buf.rb, b)
	d, ok = distanceAtMostRunes(buf, buf.ra, buf.rb, k)
	distPool.Put(buf)
	return d, ok
}

// distanceAtMostRunes is the banded OSA core. It reads rows from buf (ra/rb
// must not alias buf's rune buffers unless they are exactly buf.ra/buf.rb).
func distanceAtMostRunes(buf *distBuf, ra, rb []rune, k int) (int, bool) {
	la, lb := len(ra), len(rb)
	if la > lb {
		ra, rb = rb, ra
		la, lb = lb, la
	}
	if lb-la > k {
		return lb - la, false
	}
	if la == 0 {
		return lb, lb <= k
	}
	inf := k + 1
	prev2, prev, cur := buf.rows(lb + 1)
	// Row 0 is the insertion ramp, clipped to the band.
	hi0 := lb
	if hi0 > k {
		hi0 = k
	}
	for j := 0; j <= hi0; j++ {
		prev[j] = j
	}
	if hi0+1 <= lb {
		prev[hi0+1] = inf
	}
	for i := 1; i <= la; i++ {
		jlo, jhi := i-k, i+k
		if jlo < 1 {
			jlo = 1
		}
		if jhi > lb {
			jhi = lb
		}
		// Cells just outside the band read as "more than k".
		if jlo == 1 {
			if i <= k {
				cur[0] = i
			} else {
				cur[0] = inf
			}
		} else {
			cur[jlo-1] = inf
		}
		rowMin := inf
		ai := ra[i-1]
		for j := jlo; j <= jhi; j++ {
			cost := 1
			if ai == rb[j-1] {
				cost = 0
			}
			d := prev[j] + 1 // deletion
			if ins := cur[j-1] + 1; ins < d {
				d = ins
			}
			if sub := prev[j-1] + cost; sub < d {
				d = sub
			}
			if i > 1 && j > 1 && ai == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < d {
					d = t
				}
			}
			if d > inf {
				d = inf // clamp so out-of-band reads stay saturated
			}
			cur[j] = d
			if d < rowMin {
				rowMin = d
			}
		}
		if jhi+1 <= lb {
			cur[jhi+1] = inf
		}
		if rowMin > k {
			return rowMin, false
		}
		prev2, prev, cur = prev, cur, prev2
	}
	d := prev[lb]
	return d, d <= k
}
