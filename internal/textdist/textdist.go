// Package textdist implements the string-similarity machinery of the paper's
// §4.2.1: Damerau–Levenshtein edit distance, length-normalised name
// similarity, threshold-based clustering of app names, version-suffix
// normalisation, and typosquat detection against a set of popular names.
//
// The paper measures the similarity between two app names as the
// Damerau–Levenshtein distance normalised by the longer name's length; a
// similarity threshold of 1 clusters only identical names, lower thresholds
// merge near-duplicates such as 'FarmVile' vs 'FarmVille'.
package textdist

import (
	"regexp"
	"strings"
	"time"
	"unicode"

	"frappe/internal/telemetry"
)

// Clustering metric families (process default registry):
//
//	frappe_textdist_cluster_seconds        per-Cluster wall clock
//	frappe_textdist_pruned_total{reason}   leader comparisons skipped
//	                                       (length bound) or aborted early
//	                                       (band exceeded)
var (
	clusterDuration = telemetry.Default().Histogram("frappe_textdist_cluster_seconds",
		"Wall-clock seconds per threshold-based Cluster call.", nil)
	clusterPruned = telemetry.Default().Counter("frappe_textdist_pruned_total",
		"Leader-loop candidate comparisons avoided, by pruning stage.", "reason")
)

// Distance returns the Damerau–Levenshtein distance between a and b: the
// minimum number of insertions, deletions, substitutions, and adjacent
// transpositions needed to turn a into b. Comparison is rune-based, so
// multi-byte names are handled correctly.
func Distance(a, b string) int {
	buf := distPool.Get().(*distBuf)
	buf.ra = appendRunes(buf.ra, a)
	buf.rb = appendRunes(buf.rb, b)
	d := distanceRunes(buf, buf.ra, buf.rb)
	distPool.Put(buf)
	return d
}

// distanceRunes is the full-width OSA DP ("optimal string alignment": each
// substring edited at most once, the common "Damerau–Levenshtein" used in
// measurement papers), running on buf's pooled rows.
func distanceRunes(buf *distBuf, ra, rb []rune) int {
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev2, prev, cur := buf.rows(lb + 1) // rows i-2, i-1, i
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			del := prev[j] + 1
			ins := cur[j-1] + 1
			sub := prev[j-1] + cost
			d := del
			if ins < d {
				d = ins
			}
			if sub < d {
				d = sub
			}
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < d {
					d = t
				}
			}
			cur[j] = d
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// Similarity returns 1 - Distance(a,b)/max(len(a),len(b)), a score in [0,1]
// where 1 means identical. Two empty strings have similarity 1.
func Similarity(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	maxLen := len(ra)
	if len(rb) > maxLen {
		maxLen = len(rb)
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(Distance(a, b))/float64(maxLen)
}

// Normalize lowercases a name and collapses runs of whitespace, the
// canonical form used before comparing or clustering names.
func Normalize(name string) string {
	return strings.Join(strings.Fields(strings.ToLower(name)), " ")
}

var versionSuffix = regexp.MustCompile(`\s+v?\d+(\.\d+)*$`)

// StripVersion removes a trailing version tag such as " v4.32" or " v8" or
// " 2" from a name. The paper's validation pipeline treats 'Profile
// Watchers v4.32' and 'Profile Watchers v7' as the same campaign name.
// The second return reports whether a version tag was removed.
func StripVersion(name string) (string, bool) {
	trimmed := versionSuffix.ReplaceAllString(name, "")
	return strings.TrimRightFunc(trimmed, unicode.IsSpace), trimmed != name
}

// Cluster groups names into clusters such that every name in a cluster has
// similarity >= threshold with the cluster's exemplar (single-pass leader
// clustering over normalised names). It returns the cluster assignment as a
// slice of cluster indices parallel to names, plus the number of clusters.
//
// threshold == 1 reduces to exact-match grouping (identical normalised
// names), which is how the paper counts same-name clusters; lower
// thresholds merge typo-variants. For threshold 1 an exact hash-based path
// is used, so clustering 100K identical-heavy names stays cheap.
func Cluster(names []string, threshold float64) (assign []int, clusters int) {
	assign = make([]int, len(names))
	if threshold >= 1 {
		idx := make(map[string]int)
		for i, n := range names {
			key := Normalize(n)
			c, ok := idx[key]
			if !ok {
				c = clusters
				idx[key] = c
				clusters++
			}
			assign[i] = c
		}
		return assign, clusters
	}
	// Leader clustering: exemplars are the first name of each cluster.
	// Names identical after normalisation short-circuit via the exact map.
	// Leaders keep their decoded runes, and each comparison first checks
	// whether the length difference alone already exceeds the distance the
	// threshold allows — if so the candidate is pruned without touching the
	// DP; survivors run the band-limited DP with the same budget. Both
	// bounds are slack by one to absorb float rounding, and the accepting
	// check is the exact same Similarity inequality as before, so cluster
	// assignments are identical to the quadratic loop's.
	start := time.Now()
	type leader struct {
		runes []rune
		id    int
	}
	var leaders []leader
	exact := make(map[string]int)
	buf := distPool.Get().(*distBuf)
	defer distPool.Put(buf)
	for i, n := range names {
		key := Normalize(n)
		if c, ok := exact[key]; ok {
			assign[i] = c
			continue
		}
		kr := []rune(key)
		found := -1
		for _, l := range leaders {
			maxLen := len(kr)
			if len(l.runes) > maxLen {
				maxLen = len(l.runes)
			}
			budget := int((1-threshold)*float64(maxLen)) + 1
			diff := len(kr) - len(l.runes)
			if diff < 0 {
				diff = -diff
			}
			if diff > budget {
				clusterPruned.With("length").Inc()
				continue
			}
			d, ok := distanceAtMostRunes(buf, kr, l.runes, budget)
			if !ok {
				clusterPruned.With("band").Inc()
				continue
			}
			if maxLen == 0 || 1-float64(d)/float64(maxLen) >= threshold {
				found = l.id
				break
			}
		}
		if found < 0 {
			found = clusters
			leaders = append(leaders, leader{runes: kr, id: found})
			clusters++
		}
		exact[key] = found
		assign[i] = found
	}
	clusterDuration.With().Observe(time.Since(start).Seconds())
	return assign, clusters
}

// ClusterSizes returns the size of each cluster given an assignment from
// Cluster, indexed by cluster id.
func ClusterSizes(assign []int, clusters int) []int {
	sizes := make([]int, clusters)
	for _, c := range assign {
		sizes[c]++
	}
	return sizes
}

// PopularSet is a compiled set of popular app names for typosquat checks:
// each name is normalised and decoded to runes once at construction, so a
// sweep that probes thousands of flagged apps against the same popular list
// stops re-normalising the whole list on every call. Construct with
// NewPopularSet; the zero value matches nothing.
type PopularSet struct {
	entries []popEntry
}

type popEntry struct {
	original string
	key      string
	runes    []rune
}

// NewPopularSet compiles the popular names, preserving their order (the
// first sufficiently similar name wins, as in Typosquat).
func NewPopularSet(popular []string) *PopularSet {
	s := &PopularSet{entries: make([]popEntry, 0, len(popular))}
	for _, p := range popular {
		key := Normalize(p)
		s.entries = append(s.entries, popEntry{original: p, key: key, runes: []rune(key)})
	}
	return s
}

// Typosquat reports whether name is a near-miss of any popular name:
// similar (similarity >= threshold) but not identical after normalisation.
// It returns the popular name matched, or "" if none. Candidates whose
// length difference already exceeds the threshold's distance budget are
// pruned, and the rest run the band-limited DP.
func (s *PopularSet) Typosquat(name string, threshold float64) (string, bool) {
	if s == nil || len(s.entries) == 0 {
		return "", false
	}
	n := Normalize(name)
	nr := []rune(n)
	buf := distPool.Get().(*distBuf)
	defer distPool.Put(buf)
	for _, e := range s.entries {
		if n == e.key {
			continue
		}
		maxLen := len(nr)
		if len(e.runes) > maxLen {
			maxLen = len(e.runes)
		}
		budget := int((1-threshold)*float64(maxLen)) + 1
		diff := len(nr) - len(e.runes)
		if diff < 0 {
			diff = -diff
		}
		if diff > budget {
			continue
		}
		d, ok := distanceAtMostRunes(buf, nr, e.runes, budget)
		if !ok {
			continue
		}
		if maxLen == 0 || 1-float64(d)/float64(maxLen) >= threshold {
			return e.original, true
		}
	}
	return "", false
}

// Typosquat is the one-shot form of PopularSet.Typosquat — the paper's
// 'FarmVile' vs 'FarmVille' check (§5.3). Callers probing many names
// against the same popular list should compile a PopularSet once instead.
func Typosquat(name string, popular []string, threshold float64) (string, bool) {
	return NewPopularSet(popular).Typosquat(name, threshold)
}
