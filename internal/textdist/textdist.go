// Package textdist implements the string-similarity machinery of the paper's
// §4.2.1: Damerau–Levenshtein edit distance, length-normalised name
// similarity, threshold-based clustering of app names, version-suffix
// normalisation, and typosquat detection against a set of popular names.
//
// The paper measures the similarity between two app names as the
// Damerau–Levenshtein distance normalised by the longer name's length; a
// similarity threshold of 1 clusters only identical names, lower thresholds
// merge near-duplicates such as 'FarmVile' vs 'FarmVille'.
package textdist

import (
	"regexp"
	"strings"
	"unicode"
)

// Distance returns the Damerau–Levenshtein distance between a and b: the
// minimum number of insertions, deletions, substitutions, and adjacent
// transpositions needed to turn a into b. Comparison is rune-based, so
// multi-byte names are handled correctly.
func Distance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Optimal string alignment variant (each substring edited at most once),
	// which is the common "Damerau–Levenshtein" used in measurement papers.
	prev2 := make([]int, lb+1) // row i-2
	prev := make([]int, lb+1)  // row i-1
	cur := make([]int, lb+1)   // row i
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			del := prev[j] + 1
			ins := cur[j-1] + 1
			sub := prev[j-1] + cost
			d := del
			if ins < d {
				d = ins
			}
			if sub < d {
				d = sub
			}
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < d {
					d = t
				}
			}
			cur[j] = d
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// Similarity returns 1 - Distance(a,b)/max(len(a),len(b)), a score in [0,1]
// where 1 means identical. Two empty strings have similarity 1.
func Similarity(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	maxLen := len(ra)
	if len(rb) > maxLen {
		maxLen = len(rb)
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(Distance(a, b))/float64(maxLen)
}

// Normalize lowercases a name and collapses runs of whitespace, the
// canonical form used before comparing or clustering names.
func Normalize(name string) string {
	return strings.Join(strings.Fields(strings.ToLower(name)), " ")
}

var versionSuffix = regexp.MustCompile(`\s+v?\d+(\.\d+)*$`)

// StripVersion removes a trailing version tag such as " v4.32" or " v8" or
// " 2" from a name. The paper's validation pipeline treats 'Profile
// Watchers v4.32' and 'Profile Watchers v7' as the same campaign name.
// The second return reports whether a version tag was removed.
func StripVersion(name string) (string, bool) {
	trimmed := versionSuffix.ReplaceAllString(name, "")
	return strings.TrimRightFunc(trimmed, unicode.IsSpace), trimmed != name
}

// Cluster groups names into clusters such that every name in a cluster has
// similarity >= threshold with the cluster's exemplar (single-pass leader
// clustering over normalised names). It returns the cluster assignment as a
// slice of cluster indices parallel to names, plus the number of clusters.
//
// threshold == 1 reduces to exact-match grouping (identical normalised
// names), which is how the paper counts same-name clusters; lower
// thresholds merge typo-variants. For threshold 1 an exact hash-based path
// is used, so clustering 100K identical-heavy names stays cheap.
func Cluster(names []string, threshold float64) (assign []int, clusters int) {
	assign = make([]int, len(names))
	if threshold >= 1 {
		idx := make(map[string]int)
		for i, n := range names {
			key := Normalize(n)
			c, ok := idx[key]
			if !ok {
				c = clusters
				idx[key] = c
				clusters++
			}
			assign[i] = c
		}
		return assign, clusters
	}
	// Leader clustering: exemplars are the first name of each cluster.
	// Names identical after normalisation short-circuit via the exact map.
	type leader struct {
		name string
		id   int
	}
	var leaders []leader
	exact := make(map[string]int)
	for i, n := range names {
		key := Normalize(n)
		if c, ok := exact[key]; ok {
			assign[i] = c
			continue
		}
		found := -1
		for _, l := range leaders {
			if Similarity(key, l.name) >= threshold {
				found = l.id
				break
			}
		}
		if found < 0 {
			found = clusters
			leaders = append(leaders, leader{name: key, id: found})
			clusters++
		}
		exact[key] = found
		assign[i] = found
	}
	return assign, clusters
}

// ClusterSizes returns the size of each cluster given an assignment from
// Cluster, indexed by cluster id.
func ClusterSizes(assign []int, clusters int) []int {
	sizes := make([]int, clusters)
	for _, c := range assign {
		sizes[c]++
	}
	return sizes
}

// Typosquat reports whether name is a near-miss of any of the popular names:
// similar (similarity >= threshold) but not identical after normalisation.
// It returns the popular name matched, or "" if none. This is the paper's
// 'FarmVile' vs 'FarmVille' check (§5.3).
func Typosquat(name string, popular []string, threshold float64) (string, bool) {
	n := Normalize(name)
	for _, p := range popular {
		pn := Normalize(p)
		if n == pn {
			continue
		}
		if Similarity(n, pn) >= threshold {
			return p, true
		}
	}
	return "", false
}
