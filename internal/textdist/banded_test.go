package textdist

import (
	"math/rand"
	"testing"
)

// randomName draws a short string over a small alphabet (including a
// multi-byte rune and spaces), so random pairs land on both sides of any
// band limit.
func randomName(rng *rand.Rand, maxLen int) string {
	alphabet := []rune("abcdé ")
	n := rng.Intn(maxLen + 1)
	r := make([]rune, n)
	for i := range r {
		r[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(r)
}

// Property: DistanceAtMost(a, b, k) reports (Distance(a,b), true) whenever
// the true distance is <= k, and (_, false) otherwise.
func TestDistanceAtMostAgreesWithDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(20121210))
	for trial := 0; trial < 5000; trial++ {
		a := randomName(rng, 14)
		b := randomName(rng, 14)
		k := rng.Intn(16) - 1 // includes k = -1 and k = 0
		want := Distance(a, b)
		d, ok := DistanceAtMost(a, b, k)
		if want <= k && k >= 0 {
			if !ok || d != want {
				t.Fatalf("DistanceAtMost(%q, %q, %d) = (%d, %v), want (%d, true)",
					a, b, k, d, ok, want)
			}
		} else if ok {
			t.Fatalf("DistanceAtMost(%q, %q, %d) = (%d, true), but Distance = %d > k",
				a, b, k, d, want)
		}
	}
}

func TestDistanceAtMostEdges(t *testing.T) {
	cases := []struct {
		a, b string
		k    int
		d    int
		ok   bool
	}{
		{"", "", 0, 0, true},
		{"", "abc", 3, 3, true},
		{"", "abc", 2, 0, false},
		{"same", "same", 0, 0, true},
		{"farmville", "farmvile", 1, 1, true},
		{"farmville", "farmvile", 0, 0, false},
		{"ab", "ba", 1, 1, true}, // transposition inside the band
		{"anything", "x", -1, 0, false},
	}
	for _, c := range cases {
		d, ok := DistanceAtMost(c.a, c.b, c.k)
		if ok != c.ok || (ok && d != c.d) {
			t.Errorf("DistanceAtMost(%q, %q, %d) = (%d, %v), want (%d, %v)",
				c.a, c.b, c.k, d, ok, c.d, c.ok)
		}
	}
}

// naiveTyposquat is the pre-PopularSet implementation: re-normalise the
// whole popular list per call, full-width DP, first match wins.
func naiveTyposquat(name string, popular []string, threshold float64) (string, bool) {
	n := Normalize(name)
	for _, p := range popular {
		pn := Normalize(p)
		if n == pn {
			continue
		}
		if Similarity(n, pn) >= threshold {
			return p, true
		}
	}
	return "", false
}

func TestPopularSetMatchesNaiveTyposquat(t *testing.T) {
	popular := []string{"FarmVille", "CityVille", "Texas HoldEm Poker", "Candy Crush", "Words With Friends", "8 Ball Pool"}
	set := NewPopularSet(popular)
	rng := rand.New(rand.NewSource(77))
	probes := []string{"FarmVile", "farmville", "CityVile", "Candy Crash", "totally different", "", "Texas HoldEm Pokr"}
	for i := 0; i < 500; i++ {
		probes = append(probes, randomName(rng, 20))
	}
	for _, threshold := range []float64{0.7, 0.85, 0.95} {
		for _, name := range probes {
			wantMatch, wantOK := naiveTyposquat(name, popular, threshold)
			gotMatch, gotOK := set.Typosquat(name, threshold)
			if gotOK != wantOK || gotMatch != wantMatch {
				t.Fatalf("Typosquat(%q, %.2f) = (%q, %v), naive = (%q, %v)",
					name, threshold, gotMatch, gotOK, wantMatch, wantOK)
			}
			oneMatch, oneOK := Typosquat(name, popular, threshold)
			if oneOK != wantOK || oneMatch != wantMatch {
				t.Fatalf("one-shot Typosquat(%q, %.2f) = (%q, %v), naive = (%q, %v)",
					name, threshold, oneMatch, oneOK, wantMatch, wantOK)
			}
		}
	}
}

func TestPopularSetEmpty(t *testing.T) {
	var nilSet *PopularSet
	if _, ok := nilSet.Typosquat("FarmVile", 0.8); ok {
		t.Error("nil PopularSet matched")
	}
	if _, ok := NewPopularSet(nil).Typosquat("FarmVile", 0.8); ok {
		t.Error("empty PopularSet matched")
	}
}

// naiveCluster is the original quadratic leader loop: full DP per
// comparison, acceptance by the exact Similarity inequality.
func naiveCluster(names []string, threshold float64) ([]int, int) {
	assign := make([]int, len(names))
	type leader struct {
		key string
		id  int
	}
	var leaders []leader
	exact := make(map[string]int)
	clusters := 0
	for i, n := range names {
		key := Normalize(n)
		if c, ok := exact[key]; ok {
			assign[i] = c
			continue
		}
		found := -1
		for _, l := range leaders {
			if Similarity(key, l.key) >= threshold {
				found = l.id
				break
			}
		}
		if found < 0 {
			found = clusters
			leaders = append(leaders, leader{key: key, id: found})
			clusters++
		}
		exact[key] = found
		assign[i] = found
	}
	return assign, clusters
}

// The banded + length-pruned leader loop must produce bit-identical cluster
// assignments to the quadratic reference, at any threshold.
func TestClusterMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	names := []string{"FarmVille", "FarmVile", "farm ville", "Profile Watchers v4.32",
		"Profile Watchers v7", "CityVille", "The App", "The App ", ""}
	for i := 0; i < 300; i++ {
		names = append(names, randomName(rng, 12))
	}
	for _, threshold := range []float64{0.5, 0.7, 0.85, 0.99} {
		wantAssign, wantClusters := naiveCluster(names, threshold)
		gotAssign, gotClusters := Cluster(names, threshold)
		if gotClusters != wantClusters {
			t.Fatalf("threshold %.2f: %d clusters, reference %d", threshold, gotClusters, wantClusters)
		}
		for i := range names {
			if gotAssign[i] != wantAssign[i] {
				t.Fatalf("threshold %.2f: name %q assigned %d, reference %d",
					threshold, names[i], gotAssign[i], wantAssign[i])
			}
		}
	}
}

func benchNames(n int) []string {
	rng := rand.New(rand.NewSource(8))
	base := []string{"farmville", "cityville", "profile watchers", "texas holdem poker",
		"candy crush saga", "words with friends", "the best quiz", "daily horoscope"}
	names := make([]string, n)
	for i := range names {
		s := base[rng.Intn(len(base))]
		if rng.Intn(2) == 0 { // typo variant
			r := []rune(s)
			r[rng.Intn(len(r))] = rune('a' + rng.Intn(26))
			s = string(r)
		}
		names[i] = s
	}
	return names
}

func BenchmarkDistanceAtMost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		DistanceAtMost("profile watchers v4.32", "profile watchers v7", 3)
	}
}

func BenchmarkClusterTypoHeavy(b *testing.B) {
	names := benchNames(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(names, 0.85)
	}
}
