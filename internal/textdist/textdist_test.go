package textdist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDistanceBasic(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"ca", "ac", 1},     // transposition
		{"abcd", "acbd", 1}, // transposition
		{"FarmVille", "FarmVile", 1},
		{"a", "b", 1},
		{"ab", "ba", 1},
	}
	for _, c := range cases {
		if got := Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceUnicode(t *testing.T) {
	if got := Distance("héllo", "hello"); got != 1 {
		t.Errorf("unicode distance = %d, want 1", got)
	}
	if got := Distance("日本語", "日本"); got != 1 {
		t.Errorf("rune-based distance = %d, want 1", got)
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		return Distance(a, b) == Distance(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistanceIdentityProperty(t *testing.T) {
	f := func(a string) bool {
		if len(a) > 50 {
			a = a[:50]
		}
		return Distance(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Triangle inequality holds for the plain Levenshtein part; OSA can violate
// it in pathological cases, but distances must still be bounded by the
// longer string's length and at least the length difference.
func TestDistanceBoundsProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		ra, rb := []rune(a), []rune(b)
		d := Distance(a, b)
		max := len(ra)
		if len(rb) > max {
			max = len(rb)
		}
		diff := len(ra) - len(rb)
		if diff < 0 {
			diff = -diff
		}
		return d >= diff && d <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSimilarity(t *testing.T) {
	if s := Similarity("abc", "abc"); s != 1 {
		t.Errorf("identical similarity = %v", s)
	}
	if s := Similarity("", ""); s != 1 {
		t.Errorf("empty similarity = %v", s)
	}
	if s := Similarity("abcd", "wxyz"); s != 0 {
		t.Errorf("disjoint similarity = %v", s)
	}
	got := Similarity("FarmVille", "FarmVile")
	want := 1 - 1.0/9
	if got < want-1e-9 || got > want+1e-9 {
		t.Errorf("FarmVille/FarmVile similarity = %v, want %v", got, want)
	}
}

func TestSimilarityRangeProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 25 {
			a = a[:25]
		}
		if len(b) > 25 {
			b = b[:25]
		}
		s := Similarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"  The   App ", "the app"},
		{"FarmVille", "farmville"},
		{"", ""},
		{"A\tB\nC", "a b c"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStripVersion(t *testing.T) {
	cases := []struct {
		in       string
		want     string
		stripped bool
	}{
		{"Profile Watchers v4.32", "Profile Watchers", true},
		{"How long have you spent logged in? v8", "How long have you spent logged in?", true},
		{"Past Life 2", "Past Life", true},
		{"FarmVille", "FarmVille", false},
		{"App v2 beta", "App v2 beta", false}, // version not at end
		{"v8", "v8", false},                   // bare version is the whole name
	}
	for _, c := range cases {
		got, stripped := StripVersion(c.in)
		if got != c.want || stripped != c.stripped {
			t.Errorf("StripVersion(%q) = (%q,%v), want (%q,%v)",
				c.in, got, stripped, c.want, c.stripped)
		}
	}
}

func TestClusterExact(t *testing.T) {
	names := []string{"The App", "the  app", "FarmVille", "The App", "Zoo World"}
	assign, n := Cluster(names, 1)
	if n != 3 {
		t.Fatalf("clusters = %d, want 3", n)
	}
	if assign[0] != assign[1] || assign[0] != assign[3] {
		t.Errorf("identical names split: %v", assign)
	}
	if assign[0] == assign[2] || assign[2] == assign[4] {
		t.Errorf("distinct names merged: %v", assign)
	}
	sizes := ClusterSizes(assign, n)
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != len(names) {
		t.Errorf("cluster sizes sum to %d, want %d", total, len(names))
	}
}

func TestClusterThreshold(t *testing.T) {
	names := []string{"FarmVille", "FarmVile", "Mafia Wars"}
	_, exact := Cluster(names, 1)
	if exact != 3 {
		t.Errorf("exact clusters = %d, want 3", exact)
	}
	assign, fuzzy := Cluster(names, 0.8)
	if fuzzy != 2 {
		t.Errorf("fuzzy clusters = %d, want 2", fuzzy)
	}
	if assign[0] != assign[1] {
		t.Errorf("typo variants should merge at 0.8: %v", assign)
	}
}

func TestClusterMonotoneInThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := []string{"what does your name mean", "free phone calls", "the app", "whosstalking", "farmville"}
	var names []string
	for i := 0; i < 200; i++ {
		n := base[rng.Intn(len(base))]
		if rng.Intn(3) == 0 { // mutate one character
			b := []byte(n)
			b[rng.Intn(len(b))] = byte('a' + rng.Intn(26))
			n = string(b)
		}
		names = append(names, n)
	}
	prev := -1
	for _, th := range []float64{1, 0.9, 0.8, 0.7, 0.6} {
		_, c := Cluster(names, th)
		if prev >= 0 && c > prev {
			t.Errorf("clusters increased as threshold dropped: %d -> %d at %v", prev, c, th)
		}
		prev = c
	}
}

func TestClusterEmpty(t *testing.T) {
	assign, n := Cluster(nil, 1)
	if len(assign) != 0 || n != 0 {
		t.Errorf("empty input: assign=%v n=%d", assign, n)
	}
}

func TestTyposquat(t *testing.T) {
	popular := []string{"FarmVille", "CityVille", "Fortune Cookie"}
	if m, ok := Typosquat("FarmVile", popular, 0.8); !ok || m != "FarmVille" {
		t.Errorf("FarmVile: (%q,%v)", m, ok)
	}
	// Identical names are NOT typosquats.
	if _, ok := Typosquat("farmville", popular, 0.8); ok {
		t.Error("identical name flagged as typosquat")
	}
	if _, ok := Typosquat("Totally Different", popular, 0.8); ok {
		t.Error("unrelated name flagged as typosquat")
	}
}

func TestClusterLargeIdenticalHeavy(t *testing.T) {
	// 87% of malicious app names repeat; exact-match clustering must stay
	// fast for tens of thousands of names.
	names := make([]string, 0, 20000)
	for i := 0; i < 20000; i++ {
		names = append(names, "the app")
	}
	assign, n := Cluster(names, 1)
	if n != 1 {
		t.Fatalf("clusters = %d, want 1", n)
	}
	for _, a := range assign {
		if a != 0 {
			t.Fatal("assignment to non-zero cluster")
		}
	}
}

func TestSimilarityPrefix(t *testing.T) {
	// Sanity: longer shared prefixes give higher similarity.
	s1 := Similarity("name meaning finder", "name meaning")
	s2 := Similarity("name meaning finder", "zzz")
	if s1 <= s2 {
		t.Errorf("prefix similarity ordering violated: %v <= %v", s1, s2)
	}
	if !strings.Contains("name meaning finder", "name meaning") {
		t.Fatal("test invariant broken")
	}
}
