// Package stats provides the small statistical toolkit used throughout the
// FRAppE reproduction: empirical distribution functions (CDF/CCDF),
// percentiles, heavy-tailed samplers, and deterministic random sources.
//
// Everything here is deliberately dependency-free and deterministic: the
// synthetic world generator and the experiment harness both need repeatable
// draws so that tables and figures can be regenerated bit-for-bit.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by summaries that are undefined on empty data.
var ErrEmpty = errors.New("stats: empty data set")

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs))), nil
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Min returns the minimum of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// CDF is an empirical cumulative distribution function over float64 samples.
// The zero value is not usable; construct with NewCDF.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// Len reports the number of samples behind the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples that are <= x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// CCDFAt returns P(X > x) = 1 - At(x).
func (c *CDF) CCDFAt(x float64) float64 { return 1 - c.At(x) }

// FractionAtLeast returns P(X >= x), the fraction of samples >= x.
func (c *CDF) FractionAtLeast(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] >= x })
	return float64(len(c.sorted)-i) / float64(len(c.sorted))
}

// Quantile returns the value below which fraction q (0..1) of samples fall.
func (c *CDF) Quantile(q float64) (float64, error) {
	return Percentile(c.sorted, q*100)
}

// Point is one (X, Y) sample of a distribution-function curve.
type Point struct {
	X float64
	Y float64 // cumulative fraction in [0,1]
}

// Curve returns the CDF evaluated at the given x positions, in order.
func (c *CDF) Curve(xs []float64) []Point {
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{X: x, Y: c.At(x)}
	}
	return pts
}

// CCDFCurve returns the CCDF evaluated at the given x positions, in order.
func (c *CDF) CCDFCurve(xs []float64) []Point {
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{X: x, Y: c.CCDFAt(x)}
	}
	return pts
}

// LogSpace returns n points spaced logarithmically between 10^loExp and
// 10^hiExp inclusive. It is the usual x-axis for the paper's log-scale CDFs.
func LogSpace(loExp, hiExp float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{math.Pow(10, loExp)}
	}
	out := make([]float64, n)
	step := (hiExp - loExp) / float64(n-1)
	for i := range out {
		out[i] = math.Pow(10, loExp+step*float64(i))
	}
	return out
}

// LinSpace returns n points spaced linearly between lo and hi inclusive.
func LinSpace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + step*float64(i)
	}
	return out
}
