package stats

import (
	"math"
	"math/rand"
)

// Rand is the deterministic random source used by the generator and the
// experiment harness. It wraps math/rand with the samplers the synthetic
// world needs (heavy-tailed post counts, Zipf-ish popularity, bounded
// normals). A Rand must not be shared between goroutines without external
// synchronisation.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic Rand seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{Rand: rand.New(rand.NewSource(seed))}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// IntBetween returns a uniform integer in [lo, hi] inclusive.
// It panics if hi < lo.
func (r *Rand) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("stats: IntBetween with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Pareto samples a Pareto(xm, alpha) variate: a heavy-tailed value >= xm.
// Smaller alpha means a heavier tail. Used for post counts, click counts,
// and MAU, which the paper's figures show to span 5-7 orders of magnitude.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// LogNormal samples exp(N(mu, sigma)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// ClampedPareto samples a Pareto(xm, alpha) variate truncated to max.
func (r *Rand) ClampedPareto(xm, alpha, max float64) float64 {
	v := r.Pareto(xm, alpha)
	if v > max {
		return max
	}
	return v
}

// PickWeighted returns an index in [0, len(weights)) chosen with probability
// proportional to weights[i]. It panics if all weights are zero or negative.
func (r *Rand) PickWeighted(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("stats: PickWeighted with no positive weight")
	}
	t := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		t -= w
		if t < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Sample returns k distinct indices drawn uniformly from [0, n). If k >= n
// it returns all n indices. The result is in random order.
func (r *Rand) Sample(n, k int) []int {
	if k >= n {
		k = n
	}
	perm := r.Perm(n)
	return perm[:k]
}

// Fork derives an independent deterministic stream from this one. Use it to
// give each subsystem of the generator its own stream so that adding draws
// in one subsystem does not perturb another.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Int63())
}
