package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{75, 40},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	got, err := Percentile(xs, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 3, 1e-9) {
		t.Errorf("Percentile(30) = %v, want 3", got)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty input: err = %v, want ErrEmpty", err)
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("p=-1: want error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("p=101: want error")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMeanMedianStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || !almostEqual(m, 5, 1e-9) {
		t.Errorf("Mean = %v (%v), want 5", m, err)
	}
	sd, err := StdDev(xs)
	if err != nil || !almostEqual(sd, 2, 1e-9) {
		t.Errorf("StdDev = %v (%v), want 2", sd, err)
	}
	md, err := Median(xs)
	if err != nil || !almostEqual(md, 4.5, 1e-9) {
		t.Errorf("Median = %v (%v), want 4.5", md, err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if m, _ := Min(xs); m != -1 {
		t.Errorf("Min = %v, want -1", m)
	}
	if m, _ := Max(xs); m != 7 {
		t.Errorf("Max = %v, want 7", m)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v", err)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{2, 0.75},
		{2.5, 0.75},
		{3, 1},
		{10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFFractionAtLeast(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if got := c.FractionAtLeast(2); !almostEqual(got, 0.75, 1e-9) {
		t.Errorf("FractionAtLeast(2) = %v, want 0.75", got)
	}
	if got := c.FractionAtLeast(3.5); got != 0 {
		t.Errorf("FractionAtLeast(3.5) = %v, want 0", got)
	}
	if got := c.FractionAtLeast(0); got != 1 {
		t.Errorf("FractionAtLeast(0) = %v, want 1", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.Len() != 0 || c.At(1) != 0 || c.FractionAtLeast(1) != 0 {
		t.Error("empty CDF should report zeros")
	}
}

func TestCDFQuantileRoundTrip(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	c := NewCDF(xs)
	q, err := c.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 5 {
		t.Errorf("Quantile(0.5) = %v, want 5", q)
	}
}

// Property: CDF.At is monotone non-decreasing and bounded in [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		c := NewCDF(xs)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		ya, yb := c.At(lo), c.At(hi)
		return ya >= 0 && yb <= 1 && ya <= yb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: At(x) + CCDFAt(x) == 1.
func TestCCDFComplementProperty(t *testing.T) {
	f := func(xs []float64, x float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, v := range xs {
			if !math.IsNaN(v) {
				clean = append(clean, v)
			}
		}
		if math.IsNaN(x) {
			return true
		}
		c := NewCDF(clean)
		return almostEqual(c.At(x)+c.CCDFAt(x), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCurves(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	xs := []float64{0, 2, 4}
	curve := c.Curve(xs)
	if len(curve) != 3 {
		t.Fatalf("len = %d", len(curve))
	}
	if curve[1].X != 2 || !almostEqual(curve[1].Y, 0.5, 1e-9) {
		t.Errorf("curve[1] = %+v", curve[1])
	}
	cc := c.CCDFCurve(xs)
	if !almostEqual(cc[1].Y, 0.5, 1e-9) {
		t.Errorf("ccdf curve[1] = %+v", cc[1])
	}
}

func TestLogSpace(t *testing.T) {
	xs := LogSpace(0, 3, 4)
	want := []float64{1, 10, 100, 1000}
	if len(xs) != 4 {
		t.Fatalf("len = %d", len(xs))
	}
	for i := range want {
		if !almostEqual(xs[i], want[i], 1e-6) {
			t.Errorf("xs[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	if got := LogSpace(0, 3, 0); got != nil {
		t.Errorf("n=0: got %v", got)
	}
	if got := LogSpace(2, 5, 1); len(got) != 1 || !almostEqual(got[0], 100, 1e-9) {
		t.Errorf("n=1: got %v", got)
	}
}

func TestLinSpace(t *testing.T) {
	xs := LinSpace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEqual(xs[i], want[i], 1e-9) {
			t.Errorf("xs[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced diverging streams")
		}
	}
}

func TestRandBool(t *testing.T) {
	r := NewRand(1)
	if r.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) must be true")
	}
	n := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			n++
		}
	}
	frac := float64(n) / trials
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("Bool(0.3) empirical rate %v", frac)
	}
}

func TestIntBetween(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.IntBetween(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntBetween(3,5) = %d", v)
		}
	}
	if v := r.IntBetween(4, 4); v != 4 {
		t.Errorf("IntBetween(4,4) = %d", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("IntBetween(5,4) should panic")
		}
	}()
	r.IntBetween(5, 4)
}

func TestParetoTail(t *testing.T) {
	r := NewRand(99)
	const n = 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Pareto(1, 1.2)
	}
	for _, x := range xs {
		if x < 1 {
			t.Fatalf("Pareto(1, ·) produced %v < xm", x)
		}
	}
	// Median of Pareto(1, 1.2) is 2^(1/1.2) ≈ 1.78.
	sort.Float64s(xs)
	med := xs[n/2]
	if med < 1.6 || med > 2.0 {
		t.Errorf("Pareto median = %v, want ≈1.78", med)
	}
}

func TestClampedPareto(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 1000; i++ {
		if v := r.ClampedPareto(1, 0.5, 100); v > 100 {
			t.Fatalf("ClampedPareto exceeded max: %v", v)
		}
	}
}

func TestPickWeighted(t *testing.T) {
	r := NewRand(11)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.PickWeighted([]float64{1, 2, 1})]++
	}
	if counts[1] < counts[0] || counts[1] < counts[2] {
		t.Errorf("weight-2 bucket should dominate: %v", counts)
	}
	// Zero/negative weights are never picked.
	for i := 0; i < 1000; i++ {
		if idx := r.PickWeighted([]float64{0, 1, -3}); idx != 1 {
			t.Fatalf("picked index %d with zero weight", idx)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("all-zero weights should panic")
		}
	}()
	r.PickWeighted([]float64{0, 0})
}

func TestSample(t *testing.T) {
	r := NewRand(3)
	got := r.Sample(10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate: %d", v)
		}
		seen[v] = true
	}
	if got := r.Sample(3, 10); len(got) != 3 {
		t.Errorf("k>n: len = %d, want 3", len(got))
	}
}

func TestForkIndependence(t *testing.T) {
	a := NewRand(42)
	f1 := a.Fork()
	b := NewRand(42)
	f2 := b.Fork()
	for i := 0; i < 50; i++ {
		if f1.Float64() != f2.Float64() {
			t.Fatal("forks of identical parents must match")
		}
	}
}
