package datasets

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"frappe/internal/stack"
	"frappe/internal/synth"
)

var (
	once  sync.Once
	world *synth.World
	data  *Datasets
)

func sharedData(t *testing.T) (*synth.World, *Datasets) {
	t.Helper()
	once.Do(func() {
		world = synth.Generate(synth.TestConfig())
		b := &Builder{World: world}
		var err error
		data, err = b.Build(context.Background())
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
	})
	if data == nil {
		t.Fatal("shared dataset failed to build")
	}
	return world, data
}

func TestDTotalCoversAllObservedApps(t *testing.T) {
	w, d := sharedData(t)
	if len(d.DTotal) != w.Platform.NumApps() {
		t.Errorf("DTotal = %d, want %d (every app posts at least once)",
			len(d.DTotal), w.Platform.NumApps())
	}
}

func TestDSampleBalance(t *testing.T) {
	_, d := sharedData(t)
	if len(d.Malicious) == 0 {
		t.Fatal("no malicious apps in D-Sample")
	}
	if len(d.Benign) != len(d.Malicious) {
		t.Errorf("D-Sample unbalanced: %d benign vs %d malicious",
			len(d.Benign), len(d.Malicious))
	}
}

func TestWhitelistCatchesVictims(t *testing.T) {
	w, d := sharedData(t)
	whitelisted := map[string]bool{}
	for _, id := range d.Whitelisted {
		whitelisted[id] = true
	}
	caught := 0
	for _, victim := range w.PopularIDs {
		if whitelisted[victim] {
			caught++
		}
	}
	if caught == 0 {
		t.Error("no piggybacking victim was whitelisted")
	}
	// No whitelisted app may end up labelled malicious.
	for _, id := range d.Malicious {
		if whitelisted[id] {
			t.Errorf("whitelisted app %s labelled malicious", id)
		}
	}
}

func TestDSampleMaliciousGroundTruth(t *testing.T) {
	w, d := sharedData(t)
	wrong := 0
	for _, id := range d.Malicious {
		if !w.IsMalicious(id) {
			wrong++
		}
	}
	// §5.3 bounds the training-label false-positive rate at 2.6%.
	if frac := float64(wrong) / float64(len(d.Malicious)); frac > 0.03 {
		t.Errorf("malicious label noise = %.3f, want <= 0.03", frac)
	}
	wrongBenign := 0
	for _, id := range d.Benign {
		if w.IsMalicious(id) {
			wrongBenign++
		}
	}
	if frac := float64(wrongBenign) / float64(len(d.Benign)); frac > 0.05 {
		t.Errorf("benign label noise = %.3f, want <= 0.05", frac)
	}
}

func TestCrawlSubsetsShrinkLikeThePaper(t *testing.T) {
	_, d := sharedData(t)
	sb, sm := d.DSummary()
	ib, im := d.DInst()
	cb, cm := d.DComplete()

	// Malicious summary success tracks the deleted-by-crawl rate (~40%
	// alive), benign stays near-complete.
	malFrac := float64(len(sm)) / float64(len(d.Malicious))
	benFrac := float64(len(sb)) / float64(len(d.Benign))
	if malFrac < 0.2 || malFrac > 0.6 {
		t.Errorf("malicious summary fraction = %.2f, want ~0.4", malFrac)
	}
	if benFrac < 0.9 {
		t.Errorf("benign summary fraction = %.2f, want >= 0.9", benFrac)
	}
	// D-Inst is a strict subset of live apps on both sides.
	if len(im) > len(sm) || len(ib) > len(sb) {
		t.Errorf("D-Inst larger than D-Summary: inst=(%d,%d) summary=(%d,%d)",
			len(ib), len(im), len(sb), len(sm))
	}
	// D-Complete nests inside D-Inst.
	if len(cm) > len(im) || len(cb) > len(ib) {
		t.Error("D-Complete larger than D-Inst")
	}
	if len(cm) == 0 || len(cb) == 0 {
		t.Error("empty D-Complete")
	}
}

func TestCrawlResultsRespectDeletion(t *testing.T) {
	w, d := sharedData(t)
	for id, r := range d.Crawl {
		deletedAtCrawl := w.DeleteMonthOf(id) > 0 && w.DeleteMonthOf(id) <= w.Config.CrawlMonth
		if deletedAtCrawl && r.SummaryErr == nil {
			t.Errorf("deleted app %s has a summary", id)
		}
		if !deletedAtCrawl && r.SummaryErr != nil {
			t.Errorf("live app %s failed the summary crawl: %v", id, r.SummaryErr)
		}
	}
}

func TestHTTPAndDirectCrawlsAgree(t *testing.T) {
	w, _ := sharedData(t)
	st, err := stack.Start(w)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	graph, _, wotc, _ := st.Clients()

	// Rebuild via HTTP and compare against the direct path.
	direct := &Builder{World: w}
	viaHTTP := &Builder{World: w, Graph: graph, WOT: wotc, Workers: 8}

	dd, err := direct.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	dh, err := viaHTTP.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(dd.Malicious) != len(dh.Malicious) || len(dd.Benign) != len(dh.Benign) {
		t.Fatalf("sample mismatch: direct=(%d,%d) http=(%d,%d)",
			len(dd.Benign), len(dd.Malicious), len(dh.Benign), len(dh.Malicious))
	}
	for id, rd := range dd.Crawl {
		rh, ok := dh.Crawl[id]
		if !ok {
			t.Fatalf("HTTP crawl missing %s", id)
		}
		if (rd.SummaryErr == nil) != (rh.SummaryErr == nil) {
			t.Errorf("%s summary success differs: %v vs %v", id, rd.SummaryErr, rh.SummaryErr)
		}
		if (rd.InstallErr == nil) != (rh.InstallErr == nil) {
			t.Errorf("%s install success differs", id)
		}
		if rd.InstallErr == nil && rh.InstallErr == nil {
			if rd.Install.ClientID != rh.Install.ClientID {
				t.Errorf("%s client ID differs: %q vs %q", id, rd.Install.ClientID, rh.Install.ClientID)
			}
			if len(rd.Install.Permissions) != len(rh.Install.Permissions) {
				t.Errorf("%s permissions differ", id)
			}
			if rd.WOTScore != rh.WOTScore {
				t.Errorf("%s WOT differs: %d vs %d", id, rd.WOTScore, rh.WOTScore)
			}
		}
		if rd.Summary != nil && rh.Summary != nil && rd.Summary.Name != rh.Summary.Name {
			t.Errorf("%s name differs", id)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	_, d := sharedData(t)
	rows := d.Table1()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Name != "D-Sample" || rows[5].Name != "D-Complete" {
		t.Errorf("row names wrong: %+v", rows)
	}
	// Monotone shrinkage on the malicious side.
	if rows[2].Malicious > rows[1].Malicious ||
		rows[5].Malicious > rows[3].Malicious {
		t.Errorf("malicious counts should shrink down the table: %+v", rows)
	}
}

func TestLabels(t *testing.T) {
	_, d := sharedData(t)
	labels := d.Labels()
	if len(labels) != len(d.Malicious)+len(d.Benign) {
		t.Errorf("labels = %d", len(labels))
	}
	if labels[d.Malicious[0]] != LabelMalicious || labels[d.Benign[0]] != LabelBenign {
		t.Error("label assignment wrong")
	}
	if LabelMalicious.String() != "malicious" || LabelBenign.String() != "benign" {
		t.Error("label names wrong")
	}
}

// TestCrawlWorkerEquivalence pins the parallel in-process crawl: any
// worker count produces exactly the same result map as a serial crawl.
func TestCrawlWorkerEquivalence(t *testing.T) {
	w, _ := sharedData(t)
	serial := &Builder{World: w, Workers: 1}
	wide := &Builder{World: w, Workers: 8}
	ds, err := serial.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	dw, err := wide.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Crawl) != len(dw.Crawl) {
		t.Fatalf("crawl sizes differ: %d vs %d", len(ds.Crawl), len(dw.Crawl))
	}
	for id, rs := range ds.Crawl {
		rw, ok := dw.Crawl[id]
		if !ok {
			t.Fatalf("parallel crawl missing %s", id)
		}
		if !reflect.DeepEqual(rs, rw) {
			t.Fatalf("crawl result for %s differs:\n  serial: %+v\n  wide:   %+v", id, rs, rw)
		}
	}
	if !reflect.DeepEqual(ds.Stats, dw.Stats) {
		t.Fatal("dataset Stats differ across crawl worker counts")
	}
}

// TestBuildHonorsCancellation pins the context plumbing added for the lab
// DAG: a cancelled context aborts Select, CrawlSample and Build instead of
// silently completing the work.
func TestBuildHonorsCancellation(t *testing.T) {
	w, _ := sharedData(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	b := &Builder{World: w}
	if _, err := b.Build(ctx); err == nil {
		t.Error("Build with cancelled context succeeded, want error")
	}
	if _, err := b.Select(ctx); err == nil {
		t.Error("Select with cancelled context succeeded, want error")
	}

	sel, err := b.Select(context.Background())
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if _, err := b.CrawlSample(ctx, sel); err == nil {
		t.Error("CrawlSample with cancelled context succeeded, want error")
	}
}
