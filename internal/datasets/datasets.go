// Package datasets assembles the paper's datasets (Table 1) from a
// synthetic world:
//
//	D-Total       all apps observed posting
//	D-Sample      MPK-flagged malicious apps (after whitelisting) plus an
//	              equal number of benign apps (Social Bakers-vetted, topped
//	              up with the highest-volume unflagged apps)
//	D-Summary     D-Sample apps whose Open Graph summary crawl succeeded
//	D-Inst        D-Sample apps whose install-permission crawl succeeded
//	D-ProfileFeed D-Sample apps whose profile-feed crawl succeeded
//	D-Complete    the intersection of the three
//
// The crawls run at the world's crawl month, after Facebook has deleted
// a large share of the malicious apps — which is exactly why D-Summary
// holds summaries for only ~40% of D-Sample's malicious apps.
package datasets

import (
	"context"
	"fmt"
	"sort"
	"time"

	"frappe/internal/crawler"
	"frappe/internal/graphapi"
	"frappe/internal/mypagekeeper"
	"frappe/internal/synth"
	"frappe/internal/telemetry"
	"frappe/internal/workerpool"
	"frappe/internal/wot"
)

// Label is the D-Sample ground-truth class of an app.
type Label int

const (
	// LabelBenign marks D-Sample benign apps.
	LabelBenign Label = iota
	// LabelMalicious marks D-Sample malicious apps.
	LabelMalicious
)

// String names the label.
func (l Label) String() string {
	if l == LabelMalicious {
		return "malicious"
	}
	return "benign"
}

// Datasets is the assembled corpus.
type Datasets struct {
	// DTotal is every app observed posting, sorted by ID.
	DTotal []string

	// Flagged is the raw MPK heuristic output (apps with >= 1 flagged
	// post), before whitelisting.
	Flagged []string
	// Whitelisted are flagged apps cleared as popular/vetted (§2.3 —
	// mostly piggybacking victims like 'Facebook for Android').
	Whitelisted []string

	// Malicious and Benign form D-Sample.
	Malicious []string
	Benign    []string

	// Crawl holds the crawl result for every D-Sample app.
	Crawl map[string]*crawler.Result

	// Stats is MyPageKeeper's per-app aggregation for all observed apps.
	Stats map[string]mypagekeeper.AppStats
}

// Labels returns the D-Sample label map.
func (d *Datasets) Labels() map[string]Label {
	out := make(map[string]Label, len(d.Malicious)+len(d.Benign))
	for _, id := range d.Malicious {
		out[id] = LabelMalicious
	}
	for _, id := range d.Benign {
		out[id] = LabelBenign
	}
	return out
}

// inSummary reports whether the app's summary crawl succeeded.
func (d *Datasets) inSummary(id string) bool {
	r, ok := d.Crawl[id]
	return ok && r.SummaryErr == nil
}

// inInst reports whether the app's permission crawl succeeded.
func (d *Datasets) inInst(id string) bool {
	r, ok := d.Crawl[id]
	return ok && r.InstallErr == nil
}

// inFeed reports whether the app's profile-feed crawl succeeded.
func (d *Datasets) inFeed(id string) bool {
	r, ok := d.Crawl[id]
	return ok && r.FeedErr == nil
}

func (d *Datasets) filter(ids []string, keep func(string) bool) []string {
	var out []string
	for _, id := range ids {
		if keep(id) {
			out = append(out, id)
		}
	}
	return out
}

// DSummary returns the benign and malicious halves of D-Summary.
func (d *Datasets) DSummary() (benign, malicious []string) {
	return d.filter(d.Benign, d.inSummary), d.filter(d.Malicious, d.inSummary)
}

// DInst returns the benign and malicious halves of D-Inst.
func (d *Datasets) DInst() (benign, malicious []string) {
	return d.filter(d.Benign, d.inInst), d.filter(d.Malicious, d.inInst)
}

// DProfileFeed returns the benign and malicious halves of D-ProfileFeed.
func (d *Datasets) DProfileFeed() (benign, malicious []string) {
	return d.filter(d.Benign, d.inFeed), d.filter(d.Malicious, d.inFeed)
}

// DComplete returns the benign and malicious halves of D-Complete: apps
// with all three crawls successful.
func (d *Datasets) DComplete() (benign, malicious []string) {
	all := func(id string) bool { return d.inSummary(id) && d.inInst(id) && d.inFeed(id) }
	return d.filter(d.Benign, all), d.filter(d.Malicious, all)
}

// Builder constructs Datasets from a world.
type Builder struct {
	World *synth.World
	// Graph / WOT are the HTTP clients used for the feature crawl. If
	// either is nil, Build uses the in-process fast path instead (same
	// visibility rules, no sockets).
	Graph *graphapi.Client
	WOT   *wot.Client
	// Workers is the crawl parallelism (default 16).
	Workers int
	// Telemetry receives dataset-build stage timings and crawl metrics;
	// nil means the process default registry.
	Telemetry *telemetry.Registry
}

func (b *Builder) registry() *telemetry.Registry {
	if b.Telemetry != nil {
		return b.Telemetry
	}
	return telemetry.Default()
}

// stageTimer records per-stage wall clock under
// frappe_dataset_stage_seconds{stage}; the "total" stage spans Build.
func (b *Builder) stageTimer() func(stage string, start time.Time) {
	stages := b.registry().Gauge("frappe_dataset_stage_seconds",
		"Wall-clock seconds of the last dataset-build stage run.", "stage")
	return func(stage string, start time.Time) {
		stages.With(stage).Set(time.Since(start).Seconds())
	}
}

// Selection is the dataset membership decided before any crawling: the
// paper's §2.3 flagging, whitelisting and benign-side sampling. It is the
// artifact boundary between the "datasets" and "crawl" stages of the
// experiment DAG (internal/experiments, cmd/frappelab).
type Selection struct {
	// DTotal is every app observed posting, sorted by ID.
	DTotal []string
	// Flagged / Whitelisted / Malicious / Benign follow the Datasets
	// fields of the same names.
	Flagged     []string
	Whitelisted []string
	Malicious   []string
	Benign      []string
	// Stats is MyPageKeeper's per-app aggregation for all observed apps.
	Stats map[string]mypagekeeper.AppStats
}

// Build assembles the corpus. It advances the world clock to the crawl
// month first, so deletions up to that point are in effect.
func (b *Builder) Build(ctx context.Context) (*Datasets, error) {
	stage := b.stageTimer()
	buildStart := time.Now()
	defer func() { stage("total", buildStart) }()

	sel, err := b.Select(ctx)
	if err != nil {
		return nil, err
	}
	return b.CrawlSample(ctx, sel)
}

// Select runs the pre-crawl half of Build: advance the clock to the crawl
// month, aggregate monitor stats, flag, whitelist and pick the benign side.
func (b *Builder) Select(ctx context.Context) (*Selection, error) {
	stage := b.stageTimer()
	w := b.World
	w.AdvanceTo(w.Config.CrawlMonth)

	d := &Datasets{Stats: w.Monitor.Apps()}
	for id := range d.Stats {
		d.DTotal = append(d.DTotal, id)
	}
	sort.Strings(d.DTotal)

	// Step 1: the MPK ground-truth heuristic — any flagged post marks the
	// app (§2.3).
	start := time.Now()
	for _, id := range d.DTotal {
		if d.Stats[id].FlaggedPosts > 0 {
			d.Flagged = append(d.Flagged, id)
		}
	}
	stage("flag", start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Step 2: whitelisting. Popular, Social Bakers-vetted apps that got
	// flagged are victims of piggybacking, not scams.
	start = time.Now()
	for _, id := range d.Flagged {
		if _, err := w.SocialBakers.Rating(id); err == nil {
			d.Whitelisted = append(d.Whitelisted, id)
		} else {
			d.Malicious = append(d.Malicious, id)
		}
	}
	stage("whitelist", start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Step 3: benign selection — vetted, never-flagged apps first, then
	// the highest-volume unflagged apps to reach parity with malicious.
	start = time.Now()
	d.Benign = b.selectBenign(d)
	stage("select_benign", start)

	return &Selection{
		DTotal:      d.DTotal,
		Flagged:     d.Flagged,
		Whitelisted: d.Whitelisted,
		Malicious:   d.Malicious,
		Benign:      d.Benign,
		Stats:       d.Stats,
	}, nil
}

// CrawlSample runs the post-selection half of Build: crawl D-Sample and
// assemble the Datasets. The clock advance is idempotent — it matters when
// the selection was rehydrated from a cached artifact against a freshly
// generated world still sitting at month zero.
func (b *Builder) CrawlSample(ctx context.Context, sel *Selection) (*Datasets, error) {
	stage := b.stageTimer()
	w := b.World
	w.AdvanceTo(w.Config.CrawlMonth)

	d := &Datasets{
		DTotal:      sel.DTotal,
		Flagged:     sel.Flagged,
		Whitelisted: sel.Whitelisted,
		Malicious:   sel.Malicious,
		Benign:      sel.Benign,
		Stats:       sel.Stats,
	}
	start := time.Now()
	sample := append(append([]string(nil), d.Malicious...), d.Benign...)
	results, err := b.crawl(ctx, sample)
	stage("crawl", start)
	if err != nil {
		return nil, err
	}
	d.Crawl = results
	return d, nil
}

// selectBenign applies the §2.3 benign-side criteria. Whitelisted apps
// stay eligible: the paper's D-Sample benign side is headed by FarmVille
// and Facebook for iPhone, both of which had been flagged via piggybacked
// posts and then cleared.
func (b *Builder) selectBenign(d *Datasets) []string {
	w := b.World
	flagged := make(map[string]bool, len(d.Malicious))
	for _, id := range d.Malicious {
		flagged[id] = true
	}
	type cand struct {
		id     string
		stars  float64
		vetted bool
		posts  int
	}
	var cands []cand
	for _, id := range d.DTotal {
		if flagged[id] {
			continue
		}
		c := cand{id: id, posts: d.Stats[id].Posts}
		if r, err := w.SocialBakers.Rating(id); err == nil {
			c.vetted = true
			c.stars = r.Stars
		}
		cands = append(cands, c)
	}
	// Vetted apps first ("social marketing success" is popularity-driven),
	// then the rest by posting volume.
	sort.Slice(cands, func(i, j int) bool {
		a, bb := cands[i], cands[j]
		if a.vetted != bb.vetted {
			return a.vetted
		}
		if a.posts != bb.posts {
			return a.posts > bb.posts
		}
		if a.stars != bb.stars {
			return a.stars > bb.stars
		}
		return a.id < bb.id
	})
	n := len(d.Malicious)
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]string, 0, n)
	for _, c := range cands[:n] {
		out = append(out, c.id)
	}
	sort.Strings(out)
	return out
}

// CrawlAll fetches features for arbitrary app IDs under the same
// visibility and flakiness rules as the D-Sample crawl. The §5.3 sweep
// over every untrained app uses this.
func (b *Builder) CrawlAll(ctx context.Context, ids []string) (map[string]*crawler.Result, error) {
	return b.crawl(ctx, ids)
}

// crawl fetches features for ids, over HTTP when clients are configured,
// otherwise in-process.
func (b *Builder) crawl(ctx context.Context, ids []string) (map[string]*crawler.Result, error) {
	flakiness := func(id string, kind crawler.Kind) bool {
		switch kind {
		case crawler.KindInstall:
			return b.World.InstallCrawlable(id)
		case crawler.KindFeed:
			return b.World.FeedCrawlable(id)
		default:
			return true
		}
	}
	if b.Graph != nil && b.WOT != nil {
		c, err := crawler.New(crawler.Config{
			Graph:     b.Graph,
			WOT:       b.WOT,
			Workers:   b.workers(),
			Flakiness: flakiness,
			Telemetry: b.registry(),
		})
		if err != nil {
			return nil, fmt.Errorf("datasets: %w", err)
		}
		return c.Crawl(ctx, ids)
	}
	return b.crawlDirect(ctx, ids, flakiness)
}

func (b *Builder) workers() int {
	if b.Workers > 0 {
		return b.Workers
	}
	return 16
}

// crawlDirect is the in-process equivalent of the HTTP crawl: identical
// visibility rules (deleted apps fail, uncrawlable installs fail), no
// sockets, and the same metric families as the HTTP crawler. Used for the
// large §5.3 sweep over every untrained app.
// crawlDirect is the in-process fast path. Apps are crawled in parallel
// (every dependency — platform snapshots, WOT, telemetry — is concurrency
// safe) into per-index slots, so the result map is identical to a serial
// crawl at any worker count.
func (b *Builder) crawlDirect(ctx context.Context, ids []string, flaky func(string, crawler.Kind) bool) (map[string]*crawler.Result, error) {
	ins := crawler.NewInstruments(b.registry())
	results := make([]*crawler.Result, len(ids))
	workerpool.Run(len(ids), b.workers(), func(i int) {
		if ctx.Err() != nil {
			return
		}
		results[i] = b.crawlDirectOne(ins, ids[i], flaky)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]*crawler.Result, len(ids))
	for i, id := range ids {
		out[id] = results[i]
	}
	return out, nil
}

// crawlDirectOne crawls one app's three surfaces against the live world.
func (b *Builder) crawlDirectOne(ins *crawler.Instruments, id string, flaky func(string, crawler.Kind) bool) *crawler.Result {
	w := b.World
	appStart := time.Now()
	r := &crawler.Result{AppID: id, WOTScore: wot.UnknownScore}
	defer func() {
		ins.Outcome(crawler.KindSummary, r.SummaryErr)
		ins.Outcome(crawler.KindFeed, r.FeedErr)
		ins.Outcome(crawler.KindInstall, r.InstallErr)
		ins.FinishApp(r, appStart)
	}()
	for _, k := range []crawler.Kind{crawler.KindSummary, crawler.KindFeed, crawler.KindInstall} {
		ins.Attempts.With(k.String()).Inc()
	}
	app, err := w.Platform.Lookup(id)
	if err != nil {
		r.SummaryErr = graphapi.ErrDeleted
		r.FeedErr = graphapi.ErrDeleted
		r.InstallErr = graphapi.ErrDeleted
		return r
	}
	mau := 0
	if len(app.MAU) > 0 {
		mau = app.MAU[len(app.MAU)-1]
	}
	r.Summary = &graphapi.Summary{
		ID:                 app.ID,
		Name:               app.Name,
		Description:        app.Description,
		Company:            app.Company,
		Category:           app.Category,
		Link:               "https://www.facebook.com/apps/application.php?id=" + app.ID,
		MonthlyActiveUsers: mau,
	}
	if flaky(id, crawler.KindFeed) {
		for _, p := range app.ProfileFeed {
			r.Feed = append(r.Feed, graphapi.FeedPost{Message: p.Message, Link: p.Link, CreatedTime: p.Month})
		}
	} else {
		r.FeedErr = crawler.ErrNotCrawlable
	}
	if flaky(id, crawler.KindInstall) {
		info, err := w.Platform.InstallInfo(id)
		if err != nil {
			r.InstallErr = err
		} else {
			r.Install = graphapi.InstallInfo{
				AppID:       info.AppID,
				ClientID:    info.ClientID,
				Permissions: info.Permissions,
				RedirectURI: info.RedirectURI,
			}
			if score, err := w.WOT.Score(wot.DomainOf(info.RedirectURI)); err == nil {
				r.WOTScore = score
			}
		}
	} else {
		r.InstallErr = crawler.ErrNotCrawlable
	}
	return r
}

// Table1Row is one line of the paper's Table 1.
type Table1Row struct {
	Name      string
	Benign    int
	Malicious int
}

// Table1 reproduces the dataset-summary table.
func (d *Datasets) Table1() []Table1Row {
	sb, sm := d.DSummary()
	ib, im := d.DInst()
	fb, fm := d.DProfileFeed()
	cb, cm := d.DComplete()
	return []Table1Row{
		{Name: "D-Total", Benign: -1, Malicious: -1}, // reported as a single count
		{Name: "D-Sample", Benign: len(d.Benign), Malicious: len(d.Malicious)},
		{Name: "D-Summary", Benign: len(sb), Malicious: len(sm)},
		{Name: "D-Inst", Benign: len(ib), Malicious: len(im)},
		{Name: "D-ProfileFeed", Benign: len(fb), Malicious: len(fm)},
		{Name: "D-Complete", Benign: len(cb), Malicious: len(cm)},
	}
}
