package lab

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"frappe/internal/telemetry"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func run(t *testing.T, stages []Stage, store *Store) *Result {
	t.Helper()
	res, err := Run(context.Background(), stages, Options{Store: store, Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func status(t *testing.T, res *Result, stage string) StageStatus {
	t.Helper()
	rep, ok := res.Stages[stage]
	if !ok {
		t.Fatalf("no report for stage %q", stage)
	}
	return rep.Status
}

// chain builds a -> b -> c where each artifact embeds the stage's config
// and its input, so output changes propagate and unchanged output cuts off.
func chain(aCfg, bCfg, cCfg string, counts map[string]*atomic.Int64) []Stage {
	mk := func(name, cfg string, deps ...string) Stage {
		return Stage{
			Name:   name,
			Deps:   deps,
			Config: cfg,
			Run: func(c *StageContext) ([]byte, error) {
				counts[name].Add(1)
				in := ""
				for _, d := range deps {
					b, err := c.Artifact(d)
					if err != nil {
						return nil, err
					}
					in += string(b) + "|"
				}
				return []byte(name + ":" + cfg + "<" + in), nil
			},
		}
	}
	return []Stage{
		mk("a", aCfg),
		mk("b", bCfg, "a"),
		mk("c", cCfg, "b"),
	}
}

func counters(names ...string) map[string]*atomic.Int64 {
	m := map[string]*atomic.Int64{}
	for _, n := range names {
		m[n] = &atomic.Int64{}
	}
	return m
}

func TestPlanRejectsBadGraphs(t *testing.T) {
	store := newStore(t)
	noop := func(*StageContext) ([]byte, error) { return nil, nil }
	cases := []struct {
		name   string
		stages []Stage
		want   string
	}{
		{"cycle", []Stage{
			{Name: "a", Deps: []string{"b"}, Run: noop},
			{Name: "b", Deps: []string{"a"}, Run: noop},
		}, "cycle"},
		{"unknown dep", []Stage{{Name: "a", Deps: []string{"ghost"}, Run: noop}}, "unknown"},
		{"self dep", []Stage{{Name: "a", Deps: []string{"a"}, Run: noop}}, "itself"},
		{"duplicate", []Stage{{Name: "a", Run: noop}, {Name: "a", Run: noop}}, "duplicate"},
		{"no run", []Stage{{Name: "a"}}, "no Run"},
	}
	for _, tc := range cases {
		_, err := Run(context.Background(), tc.stages, Options{Store: store, Telemetry: telemetry.New()})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestSecondRunAllHits(t *testing.T) {
	store := newStore(t)
	counts := counters("a", "b", "c")
	res1 := run(t, chain("1", "1", "1", counts), store)
	if res1.Misses != 3 || res1.Hits != 0 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/3", res1.Hits, res1.Misses)
	}
	res2 := run(t, chain("1", "1", "1", counts), store)
	if res2.Hits != 3 || res2.Misses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want 3/0", res2.Hits, res2.Misses)
	}
	for n, c := range counts {
		if c.Load() != 1 {
			t.Errorf("stage %s ran %d times, want 1", n, c.Load())
		}
	}
}

func TestConfigChangeInvalidatesDownstreamCone(t *testing.T) {
	store := newStore(t)
	counts := counters("a", "b", "c")
	run(t, chain("1", "1", "1", counts), store)

	// Changing b's config re-runs exactly b and c; a stays cached.
	res := run(t, chain("1", "2", "1", counts), store)
	if got := status(t, res, "a"); got != StatusHit {
		t.Errorf("a: %s, want hit", got)
	}
	for _, s := range []string{"b", "c"} {
		if got := status(t, res, s); got != StatusRan {
			t.Errorf("%s: %s, want ran", s, got)
		}
	}
	if counts["a"].Load() != 1 || counts["b"].Load() != 2 || counts["c"].Load() != 2 {
		t.Errorf("run counts a/b/c = %d/%d/%d, want 1/2/2",
			counts["a"].Load(), counts["b"].Load(), counts["c"].Load())
	}

	// Changing the root's config re-runs everything.
	res = run(t, chain("2", "2", "1", counts), store)
	for _, s := range []string{"a", "b", "c"} {
		if got := status(t, res, s); got != StatusRan {
			t.Errorf("%s after root change: %s, want ran", s, got)
		}
	}
}

func TestEarlyCutoffWhenArtifactUnchanged(t *testing.T) {
	store := newStore(t)
	runs := counters("a", "b")
	mk := func(cfg string) []Stage {
		return []Stage{
			{Name: "a", Config: cfg, Run: func(*StageContext) ([]byte, error) {
				runs["a"].Add(1)
				return []byte("constant"), nil // output independent of config
			}},
			{Name: "b", Deps: []string{"a"}, Config: "x", Run: func(c *StageContext) ([]byte, error) {
				runs["b"].Add(1)
				in, err := c.Artifact("a")
				if err != nil {
					return nil, err
				}
				return append([]byte("b<"), in...), nil
			}},
		}
	}
	run(t, mk("1"), store)
	res := run(t, mk("2"), store)
	if got := status(t, res, "a"); got != StatusRan {
		t.Fatalf("a: %s, want ran", got)
	}
	if got := status(t, res, "b"); got != StatusHit {
		t.Fatalf("b: %s, want hit — a's artifact did not change", got)
	}
	if runs["b"].Load() != 1 {
		t.Fatalf("b ran %d times, want 1", runs["b"].Load())
	}
}

func TestValueOpenAndMaterialize(t *testing.T) {
	store := newStore(t)
	var aRuns, opens atomic.Int64
	mk := func(withOpen bool) []Stage {
		a := Stage{Name: "a", Run: func(c *StageContext) ([]byte, error) {
			aRuns.Add(1)
			c.SetValue("live-value")
			return []byte("payload"), nil
		}}
		if withOpen {
			a.Open = func(data []byte) (any, error) {
				opens.Add(1)
				return "opened:" + string(data), nil
			}
		}
		b := Stage{Name: "b", Deps: []string{"a"}, Run: func(c *StageContext) ([]byte, error) {
			v, err := c.Value("a")
			if err != nil {
				return nil, err
			}
			return []byte(v.(string)), nil
		}}
		return []Stage{a, b}
	}

	// Cold: b sees the live value.
	res := run(t, mk(true), store)
	if art, _ := res.Artifact("b"); string(art) != "live-value" {
		t.Fatalf("cold b artifact = %q", art)
	}
	// Force b to re-run while a hits: a's value comes from Open.
	bNew := mk(true)
	bNew[1].Config = "v2"
	res = run(t, bNew, store)
	if status(t, res, "a") != StatusHit || status(t, res, "b") != StatusRan {
		t.Fatalf("a=%s b=%s, want hit/ran", status(t, res, "a"), status(t, res, "b"))
	}
	if art, _ := res.Artifact("b"); string(art) != "opened:payload" {
		t.Fatalf("b artifact = %q, want opened:payload", art)
	}
	if opens.Load() != 1 || res.Opens != 1 {
		t.Fatalf("opens = %d / result %d, want 1/1", opens.Load(), res.Opens)
	}

	// Without an Open hook the value is materialized by re-running a:
	// status stays hit, but a's Run executes once more.
	store2 := newStore(t)
	aRuns.Store(0)
	run(t, mk(false), store2)
	noOpen := mk(false)
	noOpen[1].Config = "v2"
	res = run(t, noOpen, store2)
	if status(t, res, "a") != StatusHit {
		t.Fatalf("a = %s, want hit", status(t, res, "a"))
	}
	if art, _ := res.Artifact("b"); string(art) != "live-value" {
		t.Fatalf("b artifact = %q, want live-value", art)
	}
	if aRuns.Load() != 2 {
		t.Fatalf("a ran %d times, want 2 (cold + materialization)", aRuns.Load())
	}
	if res.Materializations != 1 {
		t.Fatalf("materializations = %d, want 1", res.Materializations)
	}
	if res.Stages["a"].Runs != 1 {
		t.Fatalf("a report runs = %d, want 1 materialization this run", res.Stages["a"].Runs)
	}
}

func TestCorruptObjectReadsAsMissAndRepairs(t *testing.T) {
	store := newStore(t)
	counts := counters("a", "b", "c")
	res := run(t, chain("1", "1", "1", counts), store)
	sha := res.Stages["b"].SHA256

	// Corrupt b's object in place.
	objPath := filepath.Join(store.Root(), objectsDir, "sha256-"+sha)
	if err := os.WriteFile(objPath, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	res = run(t, chain("1", "1", "1", counts), store)
	if got := status(t, res, "b"); got != StatusRan {
		t.Fatalf("b after corruption: %s, want ran", got)
	}
	// b's re-run produced identical bytes, so c still hits (early cutoff).
	if got := status(t, res, "c"); got != StatusHit {
		t.Fatalf("c after b repair: %s, want hit", got)
	}
	// The object is repaired: a third run is all hits.
	res = run(t, chain("1", "1", "1", counts), store)
	if res.Hits != 3 {
		t.Fatalf("post-repair hits = %d, want 3", res.Hits)
	}
}

func TestFailFastSkipsDownstreamAndResumes(t *testing.T) {
	store := newStore(t)
	boom := errors.New("boom")
	failing := true
	mk := func() []Stage {
		return []Stage{
			{Name: "ok", Config: "1", Run: func(*StageContext) ([]byte, error) { return []byte("fine"), nil }},
			// bad depends on ok so ok deterministically completes (and
			// caches) before the failure cancels the run.
			{Name: "bad", Deps: []string{"ok"}, Config: "1", Run: func(*StageContext) ([]byte, error) {
				if failing {
					return nil, boom
				}
				return []byte("fixed"), nil
			}},
			{Name: "after", Deps: []string{"bad"}, Config: "1", Run: func(c *StageContext) ([]byte, error) {
				b, err := c.Artifact("bad")
				return append([]byte("after<"), b...), err
			}},
		}
	}
	res, err := Run(context.Background(), mk(), Options{Store: store, Telemetry: telemetry.New()})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := status(t, res, "after"); got != StatusSkipped {
		t.Fatalf("after = %s, want skipped", got)
	}

	// The failure did not poison the cache: a fixed re-run resumes, with
	// the stage that succeeded before served from cache.
	failing = false
	res = run(t, mk(), store)
	if got := status(t, res, "ok"); got != StatusHit {
		t.Fatalf("ok on resume = %s, want hit", got)
	}
	if got := status(t, res, "bad"); got != StatusRan {
		t.Fatalf("bad on resume = %s, want ran", got)
	}
	if got := status(t, res, "after"); got != StatusRan {
		t.Fatalf("after on resume = %s, want ran", got)
	}
}

func TestCancellationStopsRunButKeepsCompletedArtifacts(t *testing.T) {
	store := newStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	stages := []Stage{
		{Name: "first", Config: "1", Run: func(*StageContext) ([]byte, error) { return []byte("one"), nil }},
		{Name: "second", Deps: []string{"first"}, Config: "1", Run: func(c *StageContext) ([]byte, error) {
			cancel() // simulate ctrl-C mid-run
			<-c.Context().Done()
			return nil, c.Context().Err()
		}},
		{Name: "third", Deps: []string{"second"}, Config: "1", Run: func(c *StageContext) ([]byte, error) {
			return []byte("three"), nil
		}},
	}
	_, err := Run(ctx, stages, Options{Store: store, Telemetry: telemetry.New()})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	// Resume: first hits, second and third run.
	stages[1].Run = func(*StageContext) ([]byte, error) { return []byte("two"), nil }
	res := run(t, stages, store)
	if got := status(t, res, "first"); got != StatusHit {
		t.Fatalf("first on resume = %s, want hit", got)
	}
	if got := status(t, res, "third"); got != StatusRan {
		t.Fatalf("third on resume = %s, want ran", got)
	}
}

func TestUndeclaredDependencyIsAnError(t *testing.T) {
	store := newStore(t)
	stages := []Stage{
		{Name: "a", Run: func(*StageContext) ([]byte, error) { return []byte("x"), nil }},
		{Name: "b", Run: func(c *StageContext) ([]byte, error) {
			if _, err := c.Artifact("a"); err != nil {
				return nil, err
			}
			return []byte("y"), nil
		}},
	}
	_, err := Run(context.Background(), stages, Options{Store: store, Telemetry: telemetry.New()})
	if err == nil || !strings.Contains(err.Error(), "without declaring") {
		t.Fatalf("err = %v, want undeclared-dependency error", err)
	}
}

func TestForceRerunsEverything(t *testing.T) {
	store := newStore(t)
	counts := counters("a", "b", "c")
	run(t, chain("1", "1", "1", counts), store)
	res, err := Run(context.Background(), chain("1", "1", "1", counts), Options{
		Store: store, Telemetry: telemetry.New(), Force: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 3 || res.Hits != 0 {
		t.Fatalf("forced run: hits=%d misses=%d, want 0/3", res.Hits, res.Misses)
	}
}

func TestTelemetryCounters(t *testing.T) {
	store := newStore(t)
	reg := telemetry.New()
	counts := counters("a", "b", "c")
	if _, err := Run(context.Background(), chain("1", "1", "1", counts), Options{Store: store, Telemetry: reg}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), chain("1", "1", "1", counts), Options{Store: store, Telemetry: reg}); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"a", "b", "c"} {
		if got := reg.CounterValue("frappe_lab_cache_misses_total", s); got != 1 {
			t.Errorf("misses{%s} = %d, want 1", s, got)
		}
		if got := reg.CounterValue("frappe_lab_cache_hits_total", s); got != 1 {
			t.Errorf("hits{%s} = %d, want 1", s, got)
		}
		if got := reg.CounterValue("frappe_lab_stage_runs_total", s); got != 1 {
			t.Errorf("runs{%s} = %d, want 1", s, got)
		}
	}
}

func TestWideFanOutRunsAllBranches(t *testing.T) {
	store := newStore(t)
	const branches = 32
	var total atomic.Int64
	stages := []Stage{{Name: "root", Run: func(*StageContext) ([]byte, error) { return []byte("r"), nil }}}
	for i := 0; i < branches; i++ {
		name := fmt.Sprintf("branch%02d", i)
		stages = append(stages, Stage{
			Name: name, Deps: []string{"root"}, Config: name,
			Run: func(c *StageContext) ([]byte, error) {
				total.Add(1)
				in, err := c.Artifact("root")
				if err != nil {
					return nil, err
				}
				return append([]byte(name+"<"), in...), nil
			},
		})
	}
	res := run(t, stages, store)
	if total.Load() != branches {
		t.Fatalf("ran %d branches, want %d", total.Load(), branches)
	}
	if res.Misses != branches+1 {
		t.Fatalf("misses = %d, want %d", res.Misses, branches+1)
	}
}
