// Package lab executes experiment pipelines as explicit DAGs with
// content-addressed artifact caching.
//
// A pipeline is a set of Stages, each declaring its dependencies, a config
// value, and a Run function that produces an artifact (a byte payload).
// Every stage gets a content fingerprint — sha256 over the stage name, its
// JSON-encoded config, and the artifact hashes of its dependencies — so a
// re-run with unchanged inputs is a cache hit and a changed config or seed
// invalidates exactly the downstream cone. Because fingerprints hash the
// dependencies' artifact *contents* (not their fingerprints), a stage whose
// inputs changed but whose output came out byte-identical cuts invalidation
// off early: its consumers still hit.
//
// Artifacts persist in a Store, so interrupted runs resume where they left
// off, and independent branches execute concurrently on
// internal/workerpool. Per-stage wall clock, run counts and cache hit/miss
// counters land in telemetry under the frappe_lab_* families.
package lab

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"frappe/internal/fsx"
)

// Store layout (same idiom as internal/modelreg):
//
//	objects/sha256-<hex>        immutable artifact payloads, content-addressed
//	index/<stage>/<fingerprint> JSON entry mapping a stage fingerprint to its object
//
// Writes go through fsx.WriteAtomic (temp file + fsync + rename + dir
// fsync), so a crash mid-Put never leaves a torn — or renamed-but-empty —
// entry; payloads are verified against the recorded sha256 on every Get and
// any anomaly (missing file, bad JSON, checksum mismatch) reads as a cache
// miss, which the engine repairs by re-running the stage.
const (
	objectsDir = "objects"
	indexDir   = "index"
)

// indexEntry is the on-disk index record for one (stage, fingerprint).
type indexEntry struct {
	Stage       string `json:"stage"`
	Fingerprint string `json:"fingerprint"`
	SHA256      string `json:"sha256"`
	Size        int    `json:"size"`
}

// Store is a content-addressed artifact store rooted at one directory.
type Store struct {
	root string
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	for _, sub := range []string{objectsDir, indexDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("lab: opening store: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) objectPath(sum string) string {
	return filepath.Join(s.root, objectsDir, "sha256-"+sum)
}

func (s *Store) indexPath(stage, fp string) string {
	return filepath.Join(s.root, indexDir, stage, fp)
}

// Get returns the artifact cached for (stage, fingerprint). Any anomaly —
// no entry, unreadable object, checksum mismatch — is reported as a miss.
func (s *Store) Get(stage, fp string) ([]byte, bool) {
	raw, err := os.ReadFile(s.indexPath(stage, fp))
	if err != nil {
		return nil, false
	}
	var e indexEntry
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, false
	}
	if e.Stage != stage || e.Fingerprint != fp || len(e.SHA256) != sha256.Size*2 {
		return nil, false
	}
	data, err := os.ReadFile(s.objectPath(e.SHA256))
	if err != nil {
		return nil, false
	}
	if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != e.SHA256 || len(data) != e.Size {
		return nil, false
	}
	return data, true
}

// Put stores the artifact for (stage, fingerprint) and returns its sha256.
// The object is written unconditionally — rewriting identical content is
// harmless and repairs a corrupted object in place.
func (s *Store) Put(stage, fp string, data []byte) (string, error) {
	sum := sha256.Sum256(data)
	sumHex := hex.EncodeToString(sum[:])
	if err := fsx.WriteAtomic(s.objectPath(sumHex), data); err != nil {
		return "", fmt.Errorf("lab: storing object: %w", err)
	}
	entry, err := json.Marshal(indexEntry{Stage: stage, Fingerprint: fp, SHA256: sumHex, Size: len(data)})
	if err != nil {
		return "", fmt.Errorf("lab: encoding index entry: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(s.root, indexDir, stage), 0o755); err != nil {
		return "", fmt.Errorf("lab: storing index entry: %w", err)
	}
	if err := fsx.WriteAtomic(s.indexPath(stage, fp), append(entry, '\n')); err != nil {
		return "", fmt.Errorf("lab: storing index entry: %w", err)
	}
	return sumHex, nil
}
