package lab

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"time"

	"frappe/internal/telemetry"
	"frappe/internal/workerpool"
)

// Options configure an engine run.
type Options struct {
	// Store is the artifact cache; required.
	Store *Store
	// Workers bounds concurrent stage execution; 0 means GOMAXPROCS.
	Workers int
	// Telemetry receives the frappe_lab_* families; nil means the process
	// default registry.
	Telemetry *telemetry.Registry
	// Logger receives per-stage progress lines; nil disables them.
	Logger *slog.Logger
	// Force ignores cached artifacts (every stage runs) while still
	// storing fresh ones.
	Force bool
}

// engine is the runtime state of one Run call.
type engine struct {
	opts  Options
	nodes map[string]*node

	// metrics
	seconds     *telemetry.GaugeVec
	runs        *telemetry.CounterVec
	hits        *telemetry.CounterVec
	misses      *telemetry.CounterVec
	materialize *telemetry.CounterVec
	opens       *telemetry.CounterVec

	mu     sync.Mutex
	result *Result
	err    error
}

// Run executes the stages as a DAG: dependency-ordered, independent
// branches in parallel, cached stages skipped. It returns a Result even on
// error — completed stages have persisted their artifacts, so a re-run
// resumes from where this one stopped.
func Run(ctx context.Context, stages []Stage, opts Options) (*Result, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("lab: Options.Store is required")
	}
	levels, err := plan(stages)
	if err != nil {
		return nil, err
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.Default()
	}
	e := &engine{
		opts:  opts,
		nodes: make(map[string]*node, len(stages)),
		seconds: reg.Gauge("frappe_lab_stage_seconds",
			"Wall-clock seconds of the last execution of a lab stage.", "stage"),
		runs: reg.Counter("frappe_lab_stage_runs_total",
			"Run invocations per lab stage, including materializations.", "stage"),
		hits: reg.Counter("frappe_lab_cache_hits_total",
			"Artifact cache hits per lab stage.", "stage"),
		misses: reg.Counter("frappe_lab_cache_misses_total",
			"Artifact cache misses per lab stage.", "stage"),
		materialize: reg.Counter("frappe_lab_materialize_total",
			"Cache-hit stages re-run to recreate an in-memory value.", "stage"),
		opens: reg.Counter("frappe_lab_open_total",
			"Cache-hit artifacts rehydrated via the stage's Open hook.", "stage"),
	}
	res := &Result{Stages: make(map[string]*StageReport, len(stages))}
	for _, lvl := range levels {
		res.Order = append(res.Order, lvl...)
	}
	for _, s := range stages {
		rep := &StageReport{Name: s.Name, Status: StatusSkipped}
		res.Stages[s.Name] = rep
		e.nodes[s.Name] = &node{stage: s, report: rep, done: make(chan struct{})}
	}
	e.result = res

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	start := time.Now()
	for _, lvl := range levels {
		level := lvl
		workerpool.Run(len(level), workerpool.Clamp(workers, len(level)), func(i int) {
			n := e.nodes[level[i]]
			defer close(n.done)
			if ctx.Err() != nil {
				n.err = ctx.Err()
				return
			}
			if err := e.execute(ctx, n); err != nil {
				n.err = err
				e.fail(err, cancel)
			}
		})
		if e.failed() {
			break
		}
	}
	res.Elapsed = time.Since(start)
	res.ElapsedSeconds = res.Elapsed.Seconds()
	e.mu.Lock()
	err = e.err
	e.mu.Unlock()
	return res, err
}

func (e *engine) fail(err error, cancel context.CancelFunc) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
	cancel()
}

func (e *engine) failed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err != nil
}

// execute satisfies one stage: from cache when its fingerprint is stored,
// by running it otherwise.
func (e *engine) execute(ctx context.Context, n *node) error {
	depSHA := make(map[string]string, len(n.stage.Deps))
	for _, d := range n.stage.Deps {
		dn := e.nodes[d]
		<-dn.done // same or earlier level; already closed
		if dn.err != nil {
			return fmt.Errorf("lab: stage %s: dependency %s failed", n.stage.Name, d)
		}
		depSHA[d] = dn.sha
	}
	fp, err := fingerprint(n.stage, depSHA)
	if err != nil {
		return err
	}
	n.report.Fingerprint = fp

	if !e.opts.Force {
		if data, ok := e.opts.Store.Get(n.stage.Name, fp); ok {
			sum := shaHex(data)
			n.artifact, n.sha = data, sum
			n.report.Status = StatusHit
			n.report.SHA256 = sum
			n.report.artifact = data
			e.hits.With(n.stage.Name).Inc()
			e.count(func(r *Result) { r.Hits++ })
			e.log("stage cached", n, 0)
			return nil
		}
	}
	e.misses.With(n.stage.Name).Inc()
	e.count(func(r *Result) { r.Misses++ })

	start := time.Now()
	data, err := e.runStage(ctx, n, false)
	dur := time.Since(start)
	if err != nil {
		return fmt.Errorf("lab: stage %s: %w", n.stage.Name, err)
	}
	sum, err := e.opts.Store.Put(n.stage.Name, fp, data)
	if err != nil {
		return err
	}
	n.artifact, n.sha = data, sum
	n.report.Status = StatusRan
	n.report.SHA256 = sum
	n.report.Seconds = dur.Seconds()
	n.report.artifact = data
	e.seconds.With(n.stage.Name).Set(dur.Seconds())
	e.log("stage ran", n, dur)
	return nil
}

// runStage invokes Run with a fresh StageContext and bumps the run
// counters. Materializations reuse it with materializing=true.
func (e *engine) runStage(ctx context.Context, n *node, materializing bool) ([]byte, error) {
	e.runs.With(n.stage.Name).Inc()
	e.mu.Lock()
	n.report.Runs++
	e.mu.Unlock()
	sc := &StageContext{ctx: ctx, eng: e, node: n, materializing: materializing}
	return n.stage.Run(sc)
}

// value returns n's in-memory value, recreating it at most once: stages
// that ran published it via SetValue; cache hits rehydrate via Open or, as
// a last resort, re-run as a materialization. Materializations execute
// synchronously in the demanding stage's worker, so they cannot deadlock
// the scheduler.
func (e *engine) value(ctx context.Context, n *node) (any, error) {
	<-n.done
	if n.err != nil {
		return nil, fmt.Errorf("lab: stage %s failed", n.stage.Name)
	}
	n.mu.Lock()
	if n.hasValue {
		v := n.value
		n.mu.Unlock()
		return v, nil
	}
	n.mu.Unlock()
	n.valOnce.Do(func() {
		if n.stage.Open != nil {
			v, err := n.stage.Open(n.artifact)
			if err != nil {
				n.valErr = fmt.Errorf("lab: stage %s: opening artifact: %w", n.stage.Name, err)
				return
			}
			e.opens.With(n.stage.Name).Inc()
			e.count(func(r *Result) { r.Opens++ })
			n.mu.Lock()
			n.value, n.hasValue = v, true
			n.mu.Unlock()
			return
		}
		// No Open hook: re-run the stage to rebuild its value. The fresh
		// artifact must match the cached one — a mismatch means the stage
		// is nondeterministic and the cached downstream cone is suspect.
		start := time.Now()
		data, err := e.runStage(ctx, n, true)
		if err != nil {
			n.valErr = fmt.Errorf("lab: stage %s: materializing: %w", n.stage.Name, err)
			return
		}
		e.materialize.With(n.stage.Name).Inc()
		e.count(func(r *Result) { r.Materializations++ })
		e.log("stage materialized", n, time.Since(start))
		if sum := shaHex(data); sum != n.sha {
			n.valErr = fmt.Errorf("lab: stage %s: materialized artifact %s differs from cached %s (nondeterministic stage?)",
				n.stage.Name, sum[:12], n.sha[:12])
			return
		}
		n.mu.Lock()
		if !n.hasValue {
			n.valErr = fmt.Errorf("lab: stage %s has no Open hook and its Run published no value", n.stage.Name)
		}
		n.mu.Unlock()
	})
	if n.valErr != nil {
		return nil, n.valErr
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.value, nil
}

func (e *engine) count(f func(*Result)) {
	e.mu.Lock()
	f(e.result)
	e.mu.Unlock()
}

func (e *engine) log(msg string, n *node, dur time.Duration) {
	if e.opts.Logger == nil {
		return
	}
	if dur > 0 {
		e.opts.Logger.Info(msg, "stage", n.stage.Name, "t", dur.Round(time.Millisecond).String())
		return
	}
	e.opts.Logger.Info(msg, "stage", n.stage.Name)
}

// plan validates the DAG and returns its topological levels: level 0 holds
// the roots, level k the stages whose deepest dependency sits at k-1.
// Stages within a level are sorted by name, so the schedule is
// deterministic.
func plan(stages []Stage) ([][]string, error) {
	byName := make(map[string]Stage, len(stages))
	for _, s := range stages {
		if s.Name == "" {
			return nil, fmt.Errorf("lab: stage with empty name")
		}
		if s.Run == nil {
			return nil, fmt.Errorf("lab: stage %s has no Run", s.Name)
		}
		if _, dup := byName[s.Name]; dup {
			return nil, fmt.Errorf("lab: duplicate stage %q", s.Name)
		}
		byName[s.Name] = s
	}
	for _, s := range stages {
		for _, d := range s.Deps {
			if d == s.Name {
				return nil, fmt.Errorf("lab: stage %s depends on itself", s.Name)
			}
			if _, ok := byName[d]; !ok {
				return nil, fmt.Errorf("lab: stage %s depends on unknown stage %q", s.Name, d)
			}
		}
	}
	// Depth via DFS with cycle detection.
	const (
		unvisited = 0
		visiting  = 1
		doneMark  = 2
	)
	state := make(map[string]int, len(stages))
	depth := make(map[string]int, len(stages))
	var visit func(name string) error
	visit = func(name string) error {
		switch state[name] {
		case visiting:
			return fmt.Errorf("lab: dependency cycle through stage %q", name)
		case doneMark:
			return nil
		}
		state[name] = visiting
		d := 0
		for _, dep := range byName[name].Deps {
			if err := visit(dep); err != nil {
				return err
			}
			if depth[dep]+1 > d {
				d = depth[dep] + 1
			}
		}
		state[name] = doneMark
		depth[name] = d
		return nil
	}
	names := make([]string, 0, len(stages))
	for _, s := range stages {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	maxDepth := 0
	for _, n := range names {
		if err := visit(n); err != nil {
			return nil, err
		}
		if depth[n] > maxDepth {
			maxDepth = depth[n]
		}
	}
	levels := make([][]string, maxDepth+1)
	for _, n := range names {
		levels[depth[n]] = append(levels[depth[n]], n)
	}
	return levels, nil
}
