package lab

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Stage is one node of the pipeline DAG.
type Stage struct {
	// Name identifies the stage; it keys the artifact store index.
	Name string
	// Deps are the names of stages whose artifacts this stage consumes.
	// Only declared dependencies are reachable from the StageContext — an
	// undeclared read would silently escape the fingerprint.
	Deps []string
	// Config is the stage's own input surface: everything that can change
	// its output besides the dependency artifacts. It is JSON-encoded into
	// the fingerprint, so it must marshal deterministically (structs and
	// scalars do; encoding/json sorts map keys).
	Config any
	// Run computes the stage, returning the artifact payload to persist.
	// Stages whose consumers need an in-memory value (a generated world, a
	// decoded dataset) publish it with StageContext.SetValue.
	Run func(c *StageContext) ([]byte, error)
	// Open rehydrates the in-memory value from a cached artifact, letting
	// consumers of a cache-hit stage proceed without re-running it. Nil
	// means the value can only be recreated by re-running Run (a
	// "materialization", counted separately from cache misses).
	Open func(data []byte) (any, error)
}

// StageStatus is how a stage was satisfied during a run.
type StageStatus string

const (
	// StatusHit means the artifact came from the store.
	StatusHit StageStatus = "hit"
	// StatusRan means the stage executed and stored a fresh artifact.
	StatusRan StageStatus = "ran"
	// StatusSkipped means the stage never executed because a dependency
	// failed or the run was cancelled.
	StatusSkipped StageStatus = "skipped"
)

// StageReport describes one stage's outcome.
type StageReport struct {
	Name        string      `json:"name"`
	Status      StageStatus `json:"status"`
	Fingerprint string      `json:"fingerprint"`
	SHA256      string      `json:"sha256"`
	Seconds     float64     `json:"seconds"`
	// Runs counts Run invocations during this engine run, including
	// materializations demanded by downstream stages.
	Runs int `json:"runs"`

	// artifact holds the payload for Result.Artifact; off the JSON surface.
	artifact []byte
}

// Result summarises an engine run.
type Result struct {
	// Order is the deterministic topological order the engine used.
	Order  []string                `json:"order"`
	Stages map[string]*StageReport `json:"stages"`
	// Hits and Misses count cache outcomes; Materializations and Opens
	// count how cache-hit values were recreated on demand.
	Hits             int           `json:"hits"`
	Misses           int           `json:"misses"`
	Materializations int           `json:"materializations"`
	Opens            int           `json:"opens"`
	Elapsed          time.Duration `json:"-"`
	ElapsedSeconds   float64       `json:"elapsed_seconds"`
}

// Artifact returns the artifact bytes stage produced (or hit) this run.
func (r *Result) Artifact(stage string) ([]byte, bool) {
	rep, ok := r.Stages[stage]
	if !ok || rep.artifact == nil {
		return nil, false
	}
	return rep.artifact, true
}

// node is the engine's runtime state for one stage.
type node struct {
	stage  Stage
	report *StageReport

	// done closes when the stage reaches a terminal state; err is valid
	// after that.
	done chan struct{}
	err  error

	// artifact and sha are valid after done when err == nil.
	artifact []byte
	sha      string

	// value state: set by SetValue during Run, or lazily by Value via
	// Open/materialization under valOnce.
	mu       sync.Mutex
	value    any
	hasValue bool
	valOnce  sync.Once
	valErr   error
}

// shaHex returns the hex sha256 of data.
func shaHex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// fingerprint computes the stage's content fingerprint from its config and
// the artifact hashes of its dependencies. Dependencies are hashed in
// sorted order so reordering Deps does not invalidate caches.
func fingerprint(s Stage, depSHA map[string]string) (string, error) {
	cfg, err := json.Marshal(s.Config)
	if err != nil {
		return "", fmt.Errorf("lab: stage %s: config not fingerprintable: %w", s.Name, err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "frappelab/v1\n%s\n%s\n", s.Name, cfg)
	deps := append([]string(nil), s.Deps...)
	sort.Strings(deps)
	for _, d := range deps {
		fmt.Fprintf(h, "%s=%s\n", d, depSHA[d])
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// StageContext is a stage's window onto the engine during Run.
type StageContext struct {
	ctx  context.Context
	eng  *engine
	node *node
	// materializing marks a re-Run demanded by a downstream Value call on
	// a cache-hit stage; its returned artifact is verified, not stored.
	materializing bool
}

// Context returns the run's context; stages must honour cancellation.
func (c *StageContext) Context() context.Context { return c.ctx }

// Artifact returns a declared dependency's artifact bytes.
func (c *StageContext) Artifact(dep string) ([]byte, error) {
	n, err := c.depNode(dep)
	if err != nil {
		return nil, err
	}
	return n.artifact, nil
}

// Value returns a declared dependency's in-memory value. If the dependency
// ran this engine run, that's the value it published with SetValue; if it
// was a cache hit, the value is recreated once — via Open when the stage
// defines one, otherwise by re-running it as a materialization.
func (c *StageContext) Value(dep string) (any, error) {
	n, err := c.depNode(dep)
	if err != nil {
		return nil, err
	}
	return c.eng.value(c.ctx, n)
}

// SetValue publishes the stage's in-memory value for downstream stages.
func (c *StageContext) SetValue(v any) {
	c.node.mu.Lock()
	c.node.value = v
	c.node.hasValue = true
	c.node.mu.Unlock()
}

func (c *StageContext) depNode(dep string) (*node, error) {
	declared := false
	for _, d := range c.node.stage.Deps {
		if d == dep {
			declared = true
			break
		}
	}
	if !declared {
		return nil, fmt.Errorf("lab: stage %s reads %q without declaring it as a dependency", c.node.stage.Name, dep)
	}
	n, ok := c.eng.nodes[dep]
	if !ok {
		return nil, fmt.Errorf("lab: unknown stage %q", dep)
	}
	return n, nil
}
