// Package tracing is the repo's stdlib-only request-tracing layer: one
// trace follows a /check verdict from the watchdog HTTP handler through
// verdict-cache lookup, singleflight, the graph/WOT crawls (every httpx
// retry attempt and breaker decision included), feature extraction, and
// SVM inference — across the loopback services in internal/stack, via
// W3C `traceparent` headers.
//
// Where internal/telemetry answers "how often and how long in aggregate",
// tracing answers "which request, through which path, stalled where": the
// per-request causality Facebook Inspector (Dewan & Kumaraguru) argues a
// real-time malicious-post service needs to hold its 99th percentile.
//
// Design points, in the spirit of the rest of the repo:
//
//   - stdlib-only; no OpenTelemetry dependency. The ID wire format is W3C
//     trace-context (version 00) so the headers interoperate anyway.
//   - allocation-conscious: typed attributes (no interface{} boxing),
//     spans pooled per trace in one slice, ID generation is an atomic
//     splitmix64 step — no locks, no crypto/rand per span.
//   - monotonic timings: span durations come from time.Time's monotonic
//     reading, immune to wall-clock steps.
//   - bounded memory: finished traces land in a ring buffer with an
//     always-keep-slowest reservoir (see store.go); nothing grows without
//     bound under sustained traffic.
//
// Spans are nil-safe: every method works on a nil *Span, so call sites
// do not need "is tracing on?" checks.
package tracing

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the 16-byte W3C trace id shared by every span of one request.
type TraceID [16]byte

// SpanID is the 8-byte W3C id of one span.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 32-char lowercase hex form used on the wire.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the 16-char lowercase hex form used on the wire.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses the 32-char hex form. The zero id is invalid.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// ParseSpanID parses the 16-char hex form. The zero id is invalid.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || id.IsZero() {
		return SpanID{}, false
	}
	return id, true
}

// idState is the process-wide ID generator: a crypto-seeded counter whose
// values are finalised with the splitmix64 mixer. One atomic add per
// 8 bytes of id, no locks, and the crypto seed keeps ids unpredictable
// across processes.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := cryptorand.Read(seed[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		// Degraded but functional: ids stay unique within the process.
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

// nextID returns the next mixed 64-bit id word.
func nextID() uint64 {
	x := idState.Add(0x9E3779B97F4A7C15) // golden-ratio increment
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// NewTraceID returns a fresh non-zero trace id.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		binary.BigEndian.PutUint64(t[:8], nextID())
		binary.BigEndian.PutUint64(t[8:], nextID())
	}
	return t
}

// NewSpanID returns a fresh non-zero span id.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		binary.BigEndian.PutUint64(s[:], nextID())
	}
	return s
}

// ---------------------------------------------------------------- attributes

// attrKind discriminates Attr payloads.
type attrKind uint8

const (
	kindString attrKind = iota
	kindInt
	kindFloat
	kindBool
)

// Attr is one typed span attribute. Values are held unboxed (no
// interface{}): a string plus one number word cover every kind.
type Attr struct {
	Key  string
	kind attrKind
	str  string
	num  uint64 // int64 bits, float64 bits, or 0/1 for bool
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, kind: kindString, str: value} }

// Int builds an int64 attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, kind: kindInt, num: uint64(value)} }

// Float builds a float64 attribute.
func Float(key string, value float64) Attr {
	return Attr{Key: key, kind: kindFloat, num: math.Float64bits(value)}
}

// Bool builds a bool attribute.
func Bool(key string, value bool) Attr {
	a := Attr{Key: key, kind: kindBool}
	if value {
		a.num = 1
	}
	return a
}

// Duration builds a duration attribute, rendered as a string ("34ms").
func Duration(key string, d time.Duration) Attr { return String(key, d.String()) }

// Value returns the attribute's value rendered as a string (the store's
// JSON form keeps values as strings so the schema is stable).
func (a Attr) Value() string {
	switch a.kind {
	case kindInt:
		return strconv.FormatInt(int64(a.num), 10)
	case kindFloat:
		return strconv.FormatFloat(math.Float64frombits(a.num), 'g', -1, 64)
	case kindBool:
		if a.num == 1 {
			return "true"
		}
		return "false"
	default:
		return a.str
	}
}

// --------------------------------------------------------------------- spans

// Span is one timed operation in a trace. A nil *Span is a valid no-op:
// every method checks the receiver, so uninstrumented or untraced paths
// pay one nil check and nothing else.
type Span struct {
	tr *activeTrace

	traceID  TraceID
	spanID   SpanID
	parentID SpanID
	name     string
	start    time.Time // carries the monotonic reading
	remote   bool      // continues a parent from another process/segment

	mu    sync.Mutex
	attrs []Attr
	errs  string
	end   time.Time
	ended bool
}

// TraceID returns the owning trace's id (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.traceID
}

// SpanID returns this span's id (zero for a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.spanID
}

// SetAttr appends attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// SetError records an error on the span; the span's status becomes the
// error text. A nil err is ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errs = err.Error()
	s.mu.Unlock()
}

// SetErrorString records an error status directly.
func (s *Span) SetErrorString(msg string) {
	if s == nil || msg == "" {
		return
	}
	s.mu.Lock()
	s.errs = msg
	s.mu.Unlock()
}

// End finishes the span. Ending twice is a no-op. When the span is its
// trace segment's root, the whole finished segment is published to the
// tracer's store.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tr.tracer.now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = now
	s.mu.Unlock()
	s.tr.spanEnded(s)
}

// ------------------------------------------------------------ active traces

// activeTrace is one in-flight local trace segment: the spans created in
// this process between a segment root (a server span or a local root) and
// that root's End, at which point the segment is snapshotted and published.
type activeTrace struct {
	tracer *Tracer
	id     TraceID
	root   *Span

	mu    sync.Mutex
	spans []*Span
}

func (t *activeTrace) addSpan(s *Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// spanEnded publishes the segment when its root ends. Children that are
// still open at that point are published as unfinished (their duration is
// "so far"); in practice children end before their parents.
func (t *activeTrace) spanEnded(s *Span) {
	if s != t.root {
		return
	}
	t.mu.Lock()
	spans := t.spans
	t.spans = nil
	t.mu.Unlock()
	if len(spans) == 0 {
		return
	}
	now := t.tracer.now()
	finished := make([]FinishedSpan, 0, len(spans))
	for _, sp := range spans {
		sp.mu.Lock()
		end := sp.end
		unfinished := !sp.ended
		if unfinished {
			end = now
		}
		fs := FinishedSpan{
			SpanID:     sp.spanID.String(),
			Name:       sp.name,
			Start:      sp.start,
			Duration:   end.Sub(sp.start),
			DurationMS: durationMS(end.Sub(sp.start)),
			Error:      sp.errs,
			Remote:     sp.remote,
			Unfinished: unfinished,
		}
		if !sp.parentID.IsZero() {
			fs.ParentID = sp.parentID.String()
		}
		if len(sp.attrs) > 0 {
			fs.Attrs = make([]AttrJSON, len(sp.attrs))
			for i, a := range sp.attrs {
				fs.Attrs[i] = AttrJSON{Key: a.Key, Value: a.Value()}
			}
		}
		sp.mu.Unlock()
		finished = append(finished, fs)
	}
	root := segmentRoot{
		spanID:   t.root.spanID,
		remote:   t.root.remote,
		parent:   t.root.parentID,
		duration: finished[0].Duration,
	}
	// The root is always the first span created in the segment.
	for i := range finished {
		if finished[i].SpanID == t.root.spanID.String() {
			root.duration = finished[i].Duration
			break
		}
	}
	t.tracer.store.publish(t.id, root, finished)
}

// ------------------------------------------------------------------- tracer

// Tracer creates spans and owns the store finished traces land in.
type Tracer struct {
	store   *Store
	now     func() time.Time
	enabled atomic.Bool
}

// Options configures a Tracer.
type Options struct {
	// Capacity bounds the store's recent-trace ring (default 512).
	Capacity int
	// SlowN is how many slowest traces are always retained regardless of
	// ring eviction (default 32).
	SlowN int
	// Now is a test seam for the span clock (nil = time.Now).
	Now func() time.Time
}

// New returns a Tracer with its own Store.
func New(o Options) *Tracer {
	if o.Capacity <= 0 {
		o.Capacity = 512
	}
	if o.SlowN <= 0 {
		o.SlowN = 32
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	t := &Tracer{store: newStore(o.Capacity, o.SlowN), now: o.Now}
	t.enabled.Store(true)
	return t
}

var (
	defaultOnce   sync.Once
	defaultTracer *Tracer
)

// Default returns the process-wide tracer every instrumented layer
// (telemetry middleware, httpx, crawler, watchdog) records into unless
// handed an explicit one. Its store backs /debug/traces.
func Default() *Tracer {
	defaultOnce.Do(func() { defaultTracer = New(Options{}) })
	return defaultTracer
}

// Store returns the tracer's finished-trace store.
func (t *Tracer) Store() *Store { return t.store }

// SetEnabled turns span creation on or off process-wide. Disabled tracers
// return nil spans everywhere (all methods on which are no-ops).
func (t *Tracer) SetEnabled(v bool) { t.enabled.Store(v) }

// Enabled reports whether the tracer creates spans.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// ctxKey keys the current span in a context.
type ctxKey struct{}

// ContextWith returns ctx carrying span as the current span.
func ContextWith(ctx context.Context, span *Span) context.Context {
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, span)
}

// FromContext returns the current span, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// TraceIDFrom returns the current trace id's hex form, or "".
func TraceIDFrom(ctx context.Context) string {
	if s := FromContext(ctx); s != nil {
		return s.traceID.String()
	}
	return ""
}

// Start begins a span: a child of the context's current span when one
// exists, otherwise the root of a new trace. The returned context carries
// the new span. With tracing disabled both returns are pass-throughs.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil || !t.enabled.Load() {
		return ctx, nil
	}
	if parent := FromContext(ctx); parent != nil && parent.tr != nil {
		return t.startIn(ctx, parent.tr, name, parent.traceID, parent.spanID, false)
	}
	tr := &activeTrace{tracer: t, id: NewTraceID()}
	return t.startRoot(ctx, tr, name, SpanID{}, false)
}

// StartChild begins a span only when the context already carries a trace;
// otherwise it is a no-op (nil span, same context). This is what the
// shared layers (httpx, crawler) use so that untraced bulk work — dataset
// builds, experiment crawls — does not mint a root trace per fetch.
func (t *Tracer) StartChild(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil || !t.enabled.Load() {
		return ctx, nil
	}
	parent := FromContext(ctx)
	if parent == nil || parent.tr == nil {
		return ctx, nil
	}
	return t.startIn(ctx, parent.tr, name, parent.traceID, parent.spanID, false)
}

// StartRemote begins a server-side span continuing the trace described by
// a W3C traceparent header value. An empty or malformed header starts a
// fresh root trace instead, so the instrumented server always has a span.
func (t *Tracer) StartRemote(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if t == nil || !t.enabled.Load() {
		return ctx, nil
	}
	if tid, sid, ok := ParseTraceparent(traceparent); ok {
		tr := &activeTrace{tracer: t, id: tid}
		ctx, sp := t.startRoot(ctx, tr, name, sid, true)
		return ctx, sp
	}
	tr := &activeTrace{tracer: t, id: NewTraceID()}
	return t.startRoot(ctx, tr, name, SpanID{}, false)
}

func (t *Tracer) startRoot(ctx context.Context, tr *activeTrace, name string, parent SpanID, remote bool) (context.Context, *Span) {
	s := &Span{
		tr:       tr,
		traceID:  tr.id,
		spanID:   NewSpanID(),
		parentID: parent,
		name:     name,
		start:    t.now(),
		remote:   remote,
	}
	tr.root = s
	tr.addSpan(s)
	return ContextWith(ctx, s), s
}

func (t *Tracer) startIn(ctx context.Context, tr *activeTrace, name string, tid TraceID, parent SpanID, remote bool) (context.Context, *Span) {
	s := &Span{
		tr:       tr,
		traceID:  tid,
		spanID:   NewSpanID(),
		parentID: parent,
		name:     name,
		start:    t.now(),
		remote:   remote,
	}
	tr.addSpan(s)
	return ContextWith(ctx, s), s
}

// ------------------------------------------------------------- traceparent

// TraceparentHeader is the W3C trace-context header name.
const TraceparentHeader = "traceparent"

// Traceparent renders the span as a W3C traceparent value
// ("00-<trace-id>-<span-id>-01"); "" for a nil span.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("00-%s-%s-01", s.traceID.String(), s.spanID.String())
}

// ParseTraceparent parses a W3C traceparent value. Only version 00 with
// valid non-zero ids is accepted.
func ParseTraceparent(v string) (TraceID, SpanID, bool) {
	// 00-{32 hex}-{16 hex}-{2 hex}
	if len(v) != 55 || v[0] != '0' || v[1] != '0' || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return TraceID{}, SpanID{}, false
	}
	tid, ok := ParseTraceID(v[3:35])
	if !ok {
		return TraceID{}, SpanID{}, false
	}
	sid, ok := ParseSpanID(v[36:52])
	if !ok {
		return TraceID{}, SpanID{}, false
	}
	if !isHex(v[53]) || !isHex(v[54]) {
		return TraceID{}, SpanID{}, false
	}
	return tid, sid, true
}

func isHex(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
