package tracing

import (
	"context"
	"log/slog"
)

// SlogHandler wraps a slog.Handler so that every record logged with a
// context carrying a span is stamped with trace_id and span_id. Installed
// by telemetry.NewLogger, it is what lets an operator go from a slog line
// ("check not ok … trace_id=…") straight to the span tree at
// /debug/traces?trace=ID.
type SlogHandler struct {
	inner slog.Handler
}

// WrapSlogHandler returns h wrapped with trace stamping (idempotent: an
// already-wrapped handler is returned as-is).
func WrapSlogHandler(h slog.Handler) slog.Handler {
	if _, ok := h.(*SlogHandler); ok {
		return h
	}
	return &SlogHandler{inner: h}
}

// Enabled implements slog.Handler.
func (h *SlogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler, appending trace_id/span_id when the
// context carries a span.
func (h *SlogHandler) Handle(ctx context.Context, rec slog.Record) error {
	if s := FromContext(ctx); s != nil {
		rec.AddAttrs(
			slog.String("trace_id", s.traceID.String()),
			slog.String("span_id", s.spanID.String()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

// WithAttrs implements slog.Handler.
func (h *SlogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &SlogHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup implements slog.Handler.
func (h *SlogHandler) WithGroup(name string) slog.Handler {
	return &SlogHandler{inner: h.inner.WithGroup(name)}
}
