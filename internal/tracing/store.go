package tracing

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// The finished-trace store. Trace segments (one per instrumented process
// hop: the watchdog handler's, plus one per loopback service touched)
// publish here as their segment root ends; segments sharing a trace id
// merge into one record, so /debug/traces shows the cross-service span
// tree stitched together by parent ids.
//
// Memory is bounded two ways:
//
//   - a FIFO ring of the most recent traces (capacity fixed at New);
//   - an always-keep-slowest reservoir: the N traces with the longest
//     root duration survive ring eviction, so the slow outliers an
//     operator actually wants to inspect are still there after a burst
//     of fast traffic has rolled the ring over.

// FinishedSpan is one span's immutable published form.
type FinishedSpan struct {
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"-"`
	// DurationMS mirrors Duration for the JSON schema (fractional ms).
	DurationMS float64    `json:"duration_ms"`
	Attrs      []AttrJSON `json:"attrs,omitempty"`
	Error      string     `json:"error,omitempty"`
	// Remote marks a segment root whose parent span lives in another
	// process (it arrived via a traceparent header).
	Remote bool `json:"remote,omitempty"`
	// Unfinished marks a span still open when its segment root ended;
	// its duration is "so far", not final.
	Unfinished bool `json:"unfinished,omitempty"`
}

// AttrJSON is the stable string-valued attribute form exposed over JSON.
type AttrJSON struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanNode is a span plus its children, the /debug/traces tree form.
type SpanNode struct {
	FinishedSpan
	Children []*SpanNode `json:"children,omitempty"`
}

// TraceJSON is one trace's exposition form: the stitched span tree(s)
// plus summary fields.
type TraceJSON struct {
	TraceID string `json:"trace_id"`
	// DurationMS is the root span's duration (the longest segment root's
	// when no true root was captured).
	DurationMS float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	Start      time.Time `json:"start"`
	// Roots holds the top of each span tree: normally one true root;
	// orphan segments (whose remote parent was never captured locally)
	// appear as additional roots.
	Roots []*SpanNode `json:"roots"`
}

// segmentRoot summarises the root span of one published segment.
type segmentRoot struct {
	spanID   SpanID
	parent   SpanID
	remote   bool
	duration time.Duration
}

// traceRecord is one trace's accumulated segments.
type traceRecord struct {
	id        TraceID
	spans     []FinishedSpan
	firstSeen time.Time
	// rootDur is the true root's duration when hasRoot, else the longest
	// segment-root duration seen so far — the slow-reservoir sort key.
	rootDur time.Duration
	hasRoot bool
	seq     uint64 // publish order, for stable recent ordering
}

// Store holds finished traces. Safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	capacity int
	slowN    int
	byID     map[TraceID]*traceRecord
	recent   []*traceRecord // FIFO, oldest first
	slowest  []*traceRecord // sorted by rootDur descending, ≤ slowN
	seq      uint64

	published uint64 // segments published
	evicted   uint64 // records fully dropped
}

func newStore(capacity, slowN int) *Store {
	return &Store{
		capacity: capacity,
		slowN:    slowN,
		byID:     make(map[TraceID]*traceRecord),
	}
}

// publish merges one finished segment into the store.
func (st *Store) publish(id TraceID, root segmentRoot, spans []FinishedSpan) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.published++
	rec, ok := st.byID[id]
	if !ok {
		st.seq++
		rec = &traceRecord{id: id, firstSeen: time.Now(), seq: st.seq}
		st.byID[id] = rec
		st.recent = append(st.recent, rec)
	}
	rec.spans = append(rec.spans, spans...)
	trueRoot := root.parent.IsZero() && !root.remote
	switch {
	case trueRoot:
		rec.rootDur = root.duration
		rec.hasRoot = true
	case !rec.hasRoot && root.duration > rec.rootDur:
		rec.rootDur = root.duration
	}
	st.updateSlowest(rec)
	for len(st.recent) > st.capacity {
		old := st.recent[0]
		st.recent = st.recent[1:]
		if !st.inSlowest(old) {
			delete(st.byID, old.id)
			st.evicted++
		}
	}
}

// updateSlowest inserts or re-ranks rec in the slow reservoir.
func (st *Store) updateSlowest(rec *traceRecord) {
	found := false
	for _, r := range st.slowest {
		if r == rec {
			found = true
			break
		}
	}
	if !found {
		st.slowest = append(st.slowest, rec)
	}
	sort.SliceStable(st.slowest, func(i, j int) bool {
		return st.slowest[i].rootDur > st.slowest[j].rootDur
	})
	if len(st.slowest) > st.slowN {
		for _, dropped := range st.slowest[st.slowN:] {
			if !st.inRecent(dropped) {
				delete(st.byID, dropped.id)
				st.evicted++
			}
		}
		st.slowest = st.slowest[:st.slowN]
	}
}

func (st *Store) inSlowest(rec *traceRecord) bool {
	for _, r := range st.slowest {
		if r == rec {
			return true
		}
	}
	return false
}

func (st *Store) inRecent(rec *traceRecord) bool {
	for _, r := range st.recent {
		if r == rec {
			return true
		}
	}
	return false
}

// Len returns how many traces are currently retained.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.byID)
}

// Stats reports published-segment and evicted-record counts.
func (st *Store) Stats() (published, evicted uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.published, st.evicted
}

// Trace returns one trace's tree by hex id.
func (st *Store) Trace(hexID string) (TraceJSON, bool) {
	id, ok := ParseTraceID(hexID)
	if !ok {
		return TraceJSON{}, false
	}
	st.mu.Lock()
	rec, ok := st.byID[id]
	var spans []FinishedSpan
	if ok {
		spans = append([]FinishedSpan(nil), rec.spans...)
	}
	st.mu.Unlock()
	if !ok {
		return TraceJSON{}, false
	}
	return buildTree(id, spans), true
}

// Snapshot returns up to nRecent most-recent traces (newest first) and
// the slow reservoir (slowest first). nRecent <= 0 means 20.
func (st *Store) Snapshot(nRecent int) (recent, slowest []TraceJSON) {
	if nRecent <= 0 {
		nRecent = 20
	}
	st.mu.Lock()
	recs := make([]*traceRecord, 0, nRecent)
	for i := len(st.recent) - 1; i >= 0 && len(recs) < nRecent; i-- {
		recs = append(recs, st.recent[i])
	}
	slows := append([]*traceRecord(nil), st.slowest...)
	type snap struct {
		id    TraceID
		spans []FinishedSpan
	}
	snapOf := func(rs []*traceRecord) []snap {
		out := make([]snap, len(rs))
		for i, r := range rs {
			out[i] = snap{id: r.id, spans: append([]FinishedSpan(nil), r.spans...)}
		}
		return out
	}
	recSnap, slowSnap := snapOf(recs), snapOf(slows)
	st.mu.Unlock()

	for _, s := range recSnap {
		recent = append(recent, buildTree(s.id, s.spans))
	}
	for _, s := range slowSnap {
		slowest = append(slowest, buildTree(s.id, s.spans))
	}
	return recent, slowest
}

// buildTree stitches a flat span list into parent/child trees. Spans whose
// parent was not captured locally become additional roots, so a trace is
// never invisible just because one segment was evicted or remote.
func buildTree(id TraceID, spans []FinishedSpan) TraceJSON {
	nodes := make(map[string]*SpanNode, len(spans))
	order := make([]*SpanNode, 0, len(spans))
	for _, fs := range spans {
		n := &SpanNode{FinishedSpan: fs}
		nodes[fs.SpanID] = n
		order = append(order, n)
	}
	tj := TraceJSON{TraceID: id.String(), Spans: len(spans)}
	for _, n := range order {
		if n.ParentID != "" {
			if p, ok := nodes[n.ParentID]; ok && p != n {
				p.Children = append(p.Children, n)
				continue
			}
		}
		tj.Roots = append(tj.Roots, n)
	}
	for _, n := range order {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].Start.Before(n.Children[j].Start)
		})
	}
	sort.SliceStable(tj.Roots, func(i, j int) bool { return tj.Roots[i].Start.Before(tj.Roots[j].Start) })
	if len(tj.Roots) > 0 {
		tj.Start = tj.Roots[0].Start
		// Prefer the true root's duration; orphan-only traces fall back
		// to their longest top-level span.
		best := tj.Roots[0]
		for _, r := range tj.Roots {
			if r.ParentID == "" && !r.Remote {
				best = r
				break
			}
			if r.DurationMS > best.DurationMS {
				best = r
			}
		}
		tj.DurationMS = best.DurationMS
	}
	return tj
}

// durationMS renders d as fractional milliseconds.
func durationMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Handler serves the store as JSON:
//
//	GET /debug/traces            {"recent":[...],"slowest":[...]}
//	GET /debug/traces?n=50       up to 50 recent traces
//	GET /debug/traces?trace=ID   one trace by hex id (404 when absent)
//
// Each trace is a TraceJSON span tree; see DESIGN.md §11 for the schema.
func (st *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id := r.URL.Query().Get("trace"); id != "" {
			tj, ok := st.Trace(id)
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				enc.Encode(map[string]string{"error": "trace not found: " + id})
				return
			}
			enc.Encode(tj)
			return
		}
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			n, _ = strconv.Atoi(s)
		}
		recent, slowest := st.Snapshot(n)
		if recent == nil {
			recent = []TraceJSON{}
		}
		if slowest == nil {
			slowest = []TraceJSON{}
		}
		enc.Encode(struct {
			Recent  []TraceJSON `json:"recent"`
			Slowest []TraceJSON `json:"slowest"`
		}{recent, slowest})
	})
}
