package tracing

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDsAreUniqueNonZeroAndHex(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		tid := NewTraceID()
		sid := NewSpanID()
		if tid.IsZero() || sid.IsZero() {
			t.Fatal("generated a zero id")
		}
		ts, ss := tid.String(), sid.String()
		if len(ts) != 32 || len(ss) != 16 {
			t.Fatalf("hex lengths = %d/%d, want 32/16", len(ts), len(ss))
		}
		if seen[ts] || seen[ss] {
			t.Fatalf("duplicate id at iteration %d", i)
		}
		seen[ts], seen[ss] = true, true
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Options{})
	_, sp := tr.Start(context.Background(), "root")
	tp := sp.Traceparent()
	tid, sid, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected its own output", tp)
	}
	if tid != sp.TraceID() || sid != sp.SpanID() {
		t.Fatalf("round trip mismatch: got %s/%s want %s/%s", tid, sid, sp.TraceID(), sp.SpanID())
	}
	sp.End()
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-short-short-01",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // wrong version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"00-0af7651916cd43dd8448eb211c80319cXb7ad6b7169203331-01", // bad separator
		"00-zzf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // non-hex
	}
	for _, v := range bad {
		if _, _, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) = ok, want rejection", v)
		}
	}
	if _, _, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"); !ok {
		t.Error("canonical traceparent rejected")
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.SetAttr(String("k", "v"))
	s.SetError(fmt.Errorf("x"))
	s.SetErrorString("y")
	s.End()
	if got := s.Traceparent(); got != "" {
		t.Errorf("nil span traceparent = %q, want empty", got)
	}
	if !s.TraceID().IsZero() || !s.SpanID().IsZero() {
		t.Error("nil span ids not zero")
	}
}

func TestStartChildWithoutTraceIsNoop(t *testing.T) {
	tr := New(Options{})
	ctx, sp := tr.StartChild(context.Background(), "orphan")
	if sp != nil {
		t.Fatal("StartChild minted a span with no trace in context")
	}
	if FromContext(ctx) != nil {
		t.Fatal("context gained a span")
	}
	if tr.Store().Len() != 0 {
		t.Fatal("store gained a trace")
	}
}

func TestDisabledTracerCreatesNothing(t *testing.T) {
	tr := New(Options{})
	tr.SetEnabled(false)
	_, sp := tr.Start(context.Background(), "root")
	if sp != nil {
		t.Fatal("disabled tracer returned a span")
	}
	_, sp = tr.StartRemote(context.Background(), "srv", "")
	if sp != nil {
		t.Fatal("disabled tracer returned a remote span")
	}
}

func TestSpanTreeAssemblyAndAttrs(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.Start(context.Background(), "root")
	root.SetAttr(String("app_id", "a1"), Int("n", 42), Float("f", 1.5), Bool("hit", true))

	cctx, child := tr.Start(ctx, "child")
	_, grand := tr.Start(cctx, "grandchild")
	grand.SetErrorString("boom")
	grand.End()
	child.End()
	root.End()

	if got := tr.Store().Len(); got != 1 {
		t.Fatalf("store traces = %d, want 1", got)
	}
	tj, ok := tr.Store().Trace(root.TraceID().String())
	if !ok {
		t.Fatal("trace not found by id")
	}
	if tj.Spans != 3 {
		t.Fatalf("spans = %d, want 3", tj.Spans)
	}
	if len(tj.Roots) != 1 || tj.Roots[0].Name != "root" {
		t.Fatalf("roots = %+v, want single root", tj.Roots)
	}
	r := tj.Roots[0]
	if len(r.Children) != 1 || r.Children[0].Name != "child" {
		t.Fatalf("root children = %+v", r.Children)
	}
	g := r.Children[0].Children
	if len(g) != 1 || g[0].Name != "grandchild" || g[0].Error != "boom" {
		t.Fatalf("grandchild = %+v", g)
	}
	attrs := map[string]string{}
	for _, a := range r.Attrs {
		attrs[a.Key] = a.Value
	}
	want := map[string]string{"app_id": "a1", "n": "42", "f": "1.5", "hit": "true"}
	for k, v := range want {
		if attrs[k] != v {
			t.Errorf("attr %s = %q, want %q", k, attrs[k], v)
		}
	}
}

func TestRemoteSegmentsMergeIntoOneTrace(t *testing.T) {
	tr := New(Options{})
	// Client side: root + outbound span.
	ctx, root := tr.Start(context.Background(), "client.root")
	_, out := tr.Start(ctx, "client.request")
	tp := out.Traceparent()

	// Server side: continues the trace via the header.
	_, srv := tr.StartRemote(context.Background(), "http.server", tp)
	if srv.TraceID() != root.TraceID() {
		t.Fatalf("server span trace id %s, want %s", srv.TraceID(), root.TraceID())
	}
	srv.End() // server segment publishes first, as in real request flow
	out.End()
	root.End()

	if got := tr.Store().Len(); got != 1 {
		t.Fatalf("store traces = %d, want 1 merged trace", got)
	}
	tj, _ := tr.Store().Trace(root.TraceID().String())
	if tj.Spans != 3 {
		t.Fatalf("merged spans = %d, want 3", tj.Spans)
	}
	// The server span's parent is the outbound span: one stitched tree.
	if len(tj.Roots) != 1 {
		t.Fatalf("roots = %d, want 1 (stitched)", len(tj.Roots))
	}
	req := tj.Roots[0].Children[0]
	if req.Name != "client.request" || len(req.Children) != 1 || req.Children[0].Name != "http.server" {
		t.Fatalf("tree not stitched across segments: %+v", req)
	}
	if !req.Children[0].Remote {
		t.Error("server segment root not marked remote")
	}
}

func TestStartRemoteWithBadHeaderStartsFreshRoot(t *testing.T) {
	tr := New(Options{})
	_, sp := tr.StartRemote(context.Background(), "srv", "garbage")
	if sp == nil {
		t.Fatal("no span for bad header")
	}
	if sp.TraceID().IsZero() {
		t.Fatal("zero trace id")
	}
	if sp.remote {
		t.Error("fresh root marked remote")
	}
	sp.End()
	if tr.Store().Len() != 1 {
		t.Error("fresh root did not publish")
	}
}

func TestRingEvictionKeepsSlowest(t *testing.T) {
	now := time.Unix(1000, 0)
	tr := New(Options{Capacity: 4, SlowN: 2, Now: func() time.Time { return now }})
	mk := func(d time.Duration) TraceID {
		ctx := context.Background()
		_, sp := tr.Start(ctx, "root")
		now = now.Add(d)
		sp.End()
		return sp.TraceID()
	}
	slow1 := mk(5 * time.Second)
	slow2 := mk(4 * time.Second)
	var lastFast TraceID
	for i := 0; i < 20; i++ {
		lastFast = mk(time.Millisecond)
	}
	if _, ok := tr.Store().Trace(slow1.String()); !ok {
		t.Error("slowest trace evicted from store")
	}
	if _, ok := tr.Store().Trace(slow2.String()); !ok {
		t.Error("second-slowest trace evicted from store")
	}
	if _, ok := tr.Store().Trace(lastFast.String()); !ok {
		t.Error("most recent trace missing")
	}
	_, slowest := tr.Store().Snapshot(4)
	if len(slowest) != 2 {
		t.Fatalf("slowest reservoir = %d traces, want 2", len(slowest))
	}
	if slowest[0].TraceID != slow1.String() || slowest[1].TraceID != slow2.String() {
		t.Errorf("slowest order = %s,%s want %s,%s",
			slowest[0].TraceID, slowest[1].TraceID, slow1, slow2)
	}
	// Bounded: capacity + slowN is the ceiling on retained traces.
	if got := tr.Store().Len(); got > 4+2 {
		t.Errorf("store retains %d traces, want <= 6", got)
	}
}

func TestStoreHandlerJSON(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.Start(context.Background(), "root")
	_, child := tr.Start(ctx, "child")
	child.End()
	root.End()

	h := tr.Store().Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var doc struct {
		Recent  []TraceJSON `json:"recent"`
		Slowest []TraceJSON `json:"slowest"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decoding /debug/traces: %v", err)
	}
	if len(doc.Recent) != 1 || doc.Recent[0].TraceID != root.TraceID().String() {
		t.Fatalf("recent = %+v", doc.Recent)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace="+root.TraceID().String(), nil))
	var tj TraceJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &tj); err != nil {
		t.Fatalf("decoding single trace: %v", err)
	}
	if tj.Spans != 2 {
		t.Fatalf("single trace spans = %d, want 2", tj.Spans)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace="+NewTraceID().String(), nil))
	if rec.Code != 404 {
		t.Fatalf("unknown trace status = %d, want 404", rec.Code)
	}
}

// TestStoreConcurrentPublishAndSnapshot is the ring-buffer race workout:
// many goroutines publishing full traces while readers snapshot, look up,
// and serve JSON. Run under -race (the CI tracing smoke does).
func TestStoreConcurrentPublishAndSnapshot(t *testing.T) {
	tr := New(Options{Capacity: 32, SlowN: 4})
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				ctx, root := tr.Start(context.Background(), "root")
				root.SetAttr(Int("worker", int64(w)), Int("i", int64(i)))
				_, c := tr.Start(ctx, "child")
				c.SetAttr(Duration("d", time.Millisecond))
				c.End()
				root.End()
			}
		}(w)
	}
	for rdr := 0; rdr < 4; rdr++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				recent, slowest := tr.Store().Snapshot(10)
				_ = len(recent) + len(slowest)
				tr.Store().Len()
				tr.Store().Stats()
				rec := httptest.NewRecorder()
				tr.Store().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=5", nil))
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	published, _ := tr.Store().Stats()
	if published == 0 {
		t.Fatal("nothing published")
	}
	if got := tr.Store().Len(); got > 32+4 {
		t.Errorf("store retains %d traces, want <= 36", got)
	}
}

func TestSlogHandlerStampsTraceID(t *testing.T) {
	var buf bytes.Buffer
	base := slog.NewTextHandler(&buf, nil)
	logger := slog.New(WrapSlogHandler(base))

	tr := New(Options{})
	ctx, sp := tr.Start(context.Background(), "root")
	logger.InfoContext(ctx, "hello", "k", "v")
	line := buf.String()
	if !strings.Contains(line, "trace_id="+sp.TraceID().String()) {
		t.Errorf("log line missing trace_id: %q", line)
	}
	if !strings.Contains(line, "span_id="+sp.SpanID().String()) {
		t.Errorf("log line missing span_id: %q", line)
	}
	sp.End()

	buf.Reset()
	logger.Info("no ctx")
	if strings.Contains(buf.String(), "trace_id") {
		t.Errorf("untraced line gained a trace_id: %q", buf.String())
	}

	if w := WrapSlogHandler(WrapSlogHandler(base)); w != WrapSlogHandler(w) {
		t.Error("WrapSlogHandler not idempotent")
	}
}

func TestUnfinishedChildMarked(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.Start(context.Background(), "root")
	_, child := tr.Start(ctx, "leaked")
	_ = child
	root.End() // child never ended
	tj, _ := tr.Store().Trace(root.TraceID().String())
	var found bool
	for _, r := range tj.Roots {
		for _, c := range r.Children {
			if c.Name == "leaked" && c.Unfinished {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("open child not published as unfinished")
	}
}
