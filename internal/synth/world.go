// Package synth generates the synthetic world that stands in for the
// paper's proprietary MyPageKeeper dataset: a Facebook-like platform with
// benign developers and AppNet-operating hackers, nine months of posting
// behaviour, bit.ly links with click traffic, WOT domain reputations,
// Social Bakers vetting, indirection websites, app piggybacking, and
// Facebook's own policing (app deletion).
//
// Every generator rate is calibrated against a number the paper reports
// (see Config); the distinguishing statistics of §3, §4, and §6 are then
// *emergent outputs* of the generated world, which the experiment harness
// re-measures the way the paper does.
package synth

import (
	"fmt"
	"sort"

	"frappe/internal/bitly"
	"frappe/internal/fbplatform"
	"frappe/internal/mypagekeeper"
	"frappe/internal/redirector"
	"frappe/internal/socialbakers"
	"frappe/internal/stats"
	"frappe/internal/wal"
	"frappe/internal/wot"
)

// Role is an app's position in its AppNet (Fig. 13).
type Role int

const (
	// RolePromotee apps are promoted by others and host the money pages.
	RolePromotee Role = iota
	// RolePromoter apps post links that promote other apps.
	RolePromoter
	// RoleDual apps both promote and are promoted.
	RoleDual
	// RoleNone marks benign apps and non-colluding malicious apps.
	RoleNone
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RolePromotee:
		return "promotee"
	case RolePromoter:
		return "promoter"
	case RoleDual:
		return "dual"
	default:
		return "none"
	}
}

// Hacker is one AppNet operator: a set of apps sharing campaign names,
// hosting domains, indirection sites, and promotion structure.
type Hacker struct {
	ID      int
	AppIDs  []string
	Names   []string // campaign names in use
	Domains []string // hosting domains for landing pages
	// Evasive hackers vary post text and avoid lure keywords.
	Evasive bool
	// Sites are the hacker's indirection websites.
	Sites []*redirector.Site
	// Role maps each app to its collusion role.
	Role map[string]Role
	// DirectTargets lists, per direct-promoter app, the promotee apps it
	// links to (ground truth for the collaboration graph).
	DirectTargets map[string][]string
}

// World is a fully generated synthetic universe plus the services the
// measurement pipeline talks to.
type World struct {
	Config Config

	Platform     *fbplatform.Platform
	Bitly        *bitly.Service
	WOT          *wot.Service
	SocialBakers *socialbakers.Service
	Redirector   *redirector.Service
	Monitor      *mypagekeeper.Monitor

	// ingest is the open queued-ingestion session during the event
	// streaming stages of Generate; nil otherwise. walLog is the
	// write-ahead log under it when Config.WALDir is set.
	ingest *mypagekeeper.Ingester
	walLog *wal.Log

	// WALResumed is the number of events an existing log already held
	// when Config.WALResume was set: regeneration re-applies them (the
	// deterministic generator reproduces the identical stream) but does
	// not re-append them, so the log completes without duplicates.
	WALResumed uint64

	Hackers []*Hacker

	// MaliciousIDs / BenignIDs partition all apps by ground truth.
	MaliciousIDs []string
	BenignIDs    []string
	// PopularIDs are the piggybacking victims (most popular benign apps).
	PopularIDs []string

	// TruePosts is the unsampled per-app post volume over the window; the
	// streamed (materialized) volume is capped per app.
	TruePosts map[string]int64
	// PiggybackPosts counts piggybacked (falsely attributed) posts per
	// victim app.
	PiggybackPosts map[string]int64

	// TotalStreamPosts counts every post streamed through the monitor;
	// ManualPosts counts those with no application field.
	TotalStreamPosts int64
	ManualPosts      int64
	// PiggybackRejected counts prompt_feed calls the platform refused
	// under the AuthenticatePromptFeed countermeasure.
	PiggybackRejected int64

	deleteMonth  map[string]int // app ID -> month Facebook removes it (0 = never)
	currentMonth int

	// manualLinkCounts tracks URL occurrences in app-less posts, for the
	// §2.2 flagged-post attribution breakdown.
	manualLinkCounts map[string]int64

	// installCrawlable / feedCrawlable mark apps whose human-oriented
	// flows a crawler can automate (§2.3).
	installCrawlable map[string]bool
	feedCrawlable    map[string]bool
}

// InstallCrawlable reports whether an automated crawler can follow the
// app's install redirection chain (independent of deletion state).
func (w *World) InstallCrawlable(id string) bool { return w.installCrawlable[id] }

// FeedCrawlable reports whether the app's profile feed is crawlable.
func (w *World) FeedCrawlable(id string) bool { return w.feedCrawlable[id] }

// IsMalicious reports the hidden ground truth for an app ID.
func (w *World) IsMalicious(id string) bool {
	app, err := w.Platform.App(id)
	return err == nil && app.Truth.Malicious
}

// DeleteMonthOf returns the month Facebook removes the app (0 = never).
func (w *World) DeleteMonthOf(id string) int { return w.deleteMonth[id] }

// CurrentMonth returns the world clock.
func (w *World) CurrentMonth() int { return w.currentMonth }

// AdvanceTo moves the world clock forward, applying Facebook's deletions
// up to and including month. Moving backwards is a no-op.
func (w *World) AdvanceTo(month int) {
	if month <= w.currentMonth {
		return
	}
	for id, m := range w.deleteMonth {
		if m > 0 && m <= month && m > w.currentMonth {
			// Ignore double-delete errors: the schedule is authoritative.
			_ = w.Platform.Delete(id)
		}
	}
	w.currentMonth = month
}

// HackerOf returns the AppNet operator controlling an app, or nil.
func (w *World) HackerOf(appID string) *Hacker {
	app, err := w.Platform.App(appID)
	if err != nil || app.Truth.HackerID < 0 {
		return nil
	}
	for _, h := range w.Hackers {
		if h.ID == app.Truth.HackerID {
			return h
		}
	}
	return nil
}

// RoleOf returns the collusion role of an app.
func (w *World) RoleOf(appID string) Role {
	h := w.HackerOf(appID)
	if h == nil {
		return RoleNone
	}
	if r, ok := h.Role[appID]; ok {
		return r
	}
	return RoleNone
}

// TopAppsByTruePosts returns the n highest-volume app IDs among ids,
// ordered by descending true post count (Table 2 / Table 9 orderings).
func (w *World) TopAppsByTruePosts(ids []string, n int) []string {
	sorted := append([]string(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool {
		pi, pj := w.TruePosts[sorted[i]], w.TruePosts[sorted[j]]
		if pi != pj {
			return pi > pj
		}
		return sorted[i] < sorted[j]
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// appIDSeq issues deterministic Facebook-looking numeric app IDs.
type appIDSeq struct{ n int64 }

func (s *appIDSeq) next() string {
	s.n++
	return fmt.Sprintf("2%014d", s.n)
}

// newServices wires up the empty service stack for a world.
func newServices(cfg Config) *World {
	w := &World{
		Config:           cfg,
		Platform:         fbplatform.New(cfg.NumUsers()),
		Bitly:            bitly.NewService("http://bit.ly"),
		WOT:              wot.NewService(),
		SocialBakers:     socialbakers.NewService(),
		Redirector:       redirector.NewService(),
		Monitor:          mypagekeeper.New(mypagekeeper.DefaultClassifierConfig()),
		TruePosts:        make(map[string]int64),
		PiggybackPosts:   make(map[string]int64),
		deleteMonth:      make(map[string]int),
		manualLinkCounts: make(map[string]int64),
		installCrawlable: make(map[string]bool),
		feedCrawlable:    make(map[string]bool),
	}
	w.Platform.SetPolicy(fbplatform.Policy{
		EnforceClientID:        cfg.Countermeasures.EnforceClientID,
		AuthenticatePromptFeed: cfg.Countermeasures.AuthenticatePromptFeed,
	})
	w.Monitor.SubscribeRange(0, cfg.NumUsers())
	// MyPageKeeper resolves shortened links before applying blacklists.
	w.Monitor.SetResolver(func(link string) (string, bool) {
		if !w.Bitly.IsShort(link) {
			return "", false
		}
		long, err := w.Bitly.Expand(link)
		if err != nil {
			return "", false
		}
		return long, true
	})
	return w
}

// mustSetWOT panics on invalid generator-internal scores; generation bugs
// should fail loudly.
func (w *World) mustSetWOT(domain string, score int) {
	if err := w.WOT.SetScore(domain, score); err != nil {
		panic(fmt.Sprintf("synth: WOT seed: %v", err))
	}
}

// mustRegister panics on registration failures, which indicate generator
// bugs (duplicate IDs, invalid permissions).
func (w *World) mustRegister(app *fbplatform.App) {
	if err := w.Platform.Register(app); err != nil {
		panic(fmt.Sprintf("synth: register %s: %v", app.ID, err))
	}
}

// observe streams a post into the monitor, maintaining stream counters.
// While a queued-ingestion session is open (the post-streaming stages of
// Generate), posts fan out through the ingester's per-shard queues; the
// results are byte-identical either way.
func (w *World) observe(p fbplatform.Post) {
	w.TotalStreamPosts++
	if p.AppID == "" {
		w.ManualPosts++
	}
	if w.ingest != nil {
		w.ingest.Observe(p)
		return
	}
	w.Monitor.Observe(p)
}

// addBlacklistedURL feeds a URL blacklist entry to the monitor, routed
// through the active ingestion session (if any) so the add stays ordered
// against queued posts.
func (w *World) addBlacklistedURL(url string) {
	if w.ingest != nil {
		w.ingest.AddBlacklistedURL(url)
		return
	}
	w.Monitor.AddBlacklistedURL(url)
}

// beginIngest opens the queued-ingestion session that observe and
// addBlacklistedURL route through. With Config.WALDir set the session is
// durable: every event is appended to the log before it is applied. With
// WALResume additionally set, the events an existing (possibly
// torn-and-truncated) log already holds are not appended again — they are
// still applied, in regenerated stream order, because the monitor's
// classification consults live service state (the bit.ly resolver) that
// only exists mid-generation; replaying the prefix up front would observe
// a different world than the original run did.
func (w *World) beginIngest(workers int) {
	cfg := mypagekeeper.IngestConfig{Workers: workers}
	if w.Config.WALDir != "" {
		l, err := wal.Open(w.Config.WALDir, wal.Options{})
		if err != nil {
			panic(fmt.Sprintf("synth: opening ingestion WAL: %v", err))
		}
		w.walLog = l
		cfg.WAL = l
		if w.Config.WALResume {
			w.WALResumed = l.End()
			cfg.SkipEvents = l.End()
			cfg.SkipLogOnly = true
		}
	}
	w.ingest = w.Monitor.StartIngestWith(cfg)
}

// endIngest drains and closes the session; monitor reads are exact again
// once it returns. With a WAL underneath, the session-end barrier has run
// by then, the "monitor" consumer offset records the applied frontier, and
// the log is closed — readers (watchdogd, the retrainer) reopen it from
// disk.
func (w *World) endIngest() {
	if w.ingest == nil {
		return
	}
	if err := w.ingest.Close(); err != nil {
		panic(fmt.Sprintf("synth: closing ingestion session: %v", err))
	}
	w.ingest = nil
	if w.walLog == nil {
		return
	}
	if err := w.walLog.CommitConsumer("monitor", w.walLog.End()); err != nil {
		panic(fmt.Sprintf("synth: committing monitor offset: %v", err))
	}
	if err := w.walLog.Close(); err != nil {
		panic(fmt.Sprintf("synth: closing ingestion WAL: %v", err))
	}
	w.walLog = nil
}

// pickMonth returns a uniform month in the observation window.
func pickMonth(rng *stats.Rand, months int) int {
	if months <= 1 {
		return 0
	}
	return rng.Intn(months)
}
