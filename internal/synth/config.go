package synth

// Config parameterises the synthetic world. Every default is calibrated
// against a number the paper reports; the citation is next to each field.
// Counts marked "full scale" are multiplied by Scale at generation time.
type Config struct {
	// Seed drives all randomness; a fixed seed regenerates the same world.
	Seed int64

	// Scale multiplies the population counts. 1.0 reproduces the paper's
	// 111K-app corpus; experiments default to 0.1, tests run smaller.
	Scale float64

	// TotalApps is the number of distinct apps observed posting
	// (111,167 in D-Total, Table 1). Full scale.
	TotalApps int

	// FracMalicious is the truly-malicious fraction of apps. The paper
	// reports "at least 13%": 6,350 MPK-flagged + 8,051 found by FRAppE
	// = 14,401 of 111,167 (§1, §5.3).
	FracMalicious float64

	// UsersPerApp sizes the monitored user population relative to apps
	// (2.2M users / 111K apps ≈ 20).
	UsersPerApp int

	// Months is the observation window (June 2011 – March 2012 = 9).
	Months int
	// CrawlMonth is when the feature crawls happen (March–May 2012).
	CrawlMonth int
	// ValidationMonth is when §5.3's deleted-from-graph validation runs
	// (October 2012).
	ValidationMonth int

	// ---- Malicious app profile (§4) ----

	// MaliciousDescriptionRate etc.: fraction of malicious apps with a
	// non-empty summary field (Fig. 5: description 1.4%).
	MaliciousDescriptionRate float64
	MaliciousCompanyRate     float64
	MaliciousCategoryRate    float64
	// MaliciousProfilePostsRate: fraction with posts on the profile page
	// (Fig. 9: 3%).
	MaliciousProfilePostsRate float64
	// MaliciousSinglePermRate: fraction requesting exactly one permission
	// (Fig. 7: 97%, always publish_stream).
	MaliciousSinglePermRate float64
	// MaliciousClientIDMismatchRate: fraction using a different client ID
	// in the install URL (§4.1.4: 78%).
	MaliciousClientIDMismatchRate float64
	// MaliciousWOTUnknownRate / MaliciousWOTLowRate: redirect domains with
	// no WOT score (80%) and with score < 5 (15 more points of the 95%
	// below 5; Fig. 8).
	MaliciousWOTUnknownRate float64
	MaliciousWOTLowRate     float64
	// MaliciousBitlyRate: fraction of malicious apps that post bit.ly
	// links (3,805 of 6,273 ≈ 61%, §3).
	MaliciousBitlyRate float64
	// PolishedMaliciousRate: malicious apps whose creators configured them
	// like benign apps (full summary, several permissions, reputable
	// redirect, profile posts). These are the classifier's false negatives
	// (FRAppE's 4.1% FN rate, §5.2) and the obfuscation §7 anticipates.
	PolishedMaliciousRate float64

	// ---- Benign app profile ----

	BenignDescriptionRate  float64 // Fig. 5 / Table 6: ~95%
	BenignCompanyRate      float64 // Table 6 company FP 55% -> ~45% have it
	BenignCategoryRate     float64 // Table 6 category FP 45.8% -> ~54%
	BenignProfilePostsRate float64 // Table 6: ~96%
	BenignSinglePermRate   float64 // §4.1.2: 62% (D-Inst); Table 6 suggests ~51%
	BenignClientIDMismatch float64 // §4.1.4: 1%
	BenignWOTUnknownRate   float64 // Fig. 8: ~13% of benign lack scores
	BenignFacebookRedirect float64 // §4.1.3: 80% redirect to apps.facebook.com
	BenignExternalLinkRate float64 // Fig. 12: 20% of benign post any external links
	// SloppyBenignRate: legitimate apps configured as badly as scams
	// (empty summary, one permission, no-reputation redirect). These are
	// the rare false positives (FRAppE Lite's 0.1% FP, §5.1).
	SloppyBenignRate float64

	// ---- Ecosystem structure (§6) ----

	// FracColluding: malicious apps participating in AppNets
	// (6,331 of 6,350 ≈ 99.7%).
	FracColluding float64
	// HackersPerMaliciousApp sets the AppNet count: hackers ≈ rate × #mal.
	// 44 observed components / 6,331 detected apps ≈ 0.007.
	HackersPerMaliciousApp float64
	// PromoterRate / DualRate: Fig. 13 role split (25% / 16.2%; the
	// remaining 58.8% are pure promotees).
	PromoterRate float64
	DualRate     float64
	// DirectPromoterRate: promoters using direct install links instead of
	// indirection websites (692 vs 1,936; §6.1).
	DirectPromoterRate float64
	// SitesPerThousandMalicious: indirection sites per 1000 malicious apps
	// (103 sites / 14,401 apps ≈ 7).
	SitesPerThousandMalicious float64
	// AmazonHostedSiteRate: indirection sites on amazonaws.com (1/3).
	AmazonHostedSiteRate float64
	// AppsPerCampaignName: mean apps sharing one name (§4.2.1: "on
	// average, 5 malicious apps have the same name").
	AppsPerCampaignName float64
	// CliqueCampaignRate: probability that a LARGE campaign (a dozen apps
	// or more) cross-promotes internally, producing the dense same-name
	// neighbourhoods of Fig. 15 and the high local clustering
	// coefficients of Fig. 14 (25% of apps above 0.74). Small campaigns
	// form cliques at a tenth of this rate.
	CliqueCampaignRate float64
	// TyposquatRate: malicious apps typosquatting popular benign names
	// (5 'FarmVile' apps of 6,273 ≈ 0.1%; §5.3).
	TyposquatRate float64

	// ---- MyPageKeeper visibility ----

	// CampaignBlacklistShare: app-weighted fraction of campaigns whose
	// landing URLs appear in the URL blacklists MPK consumes. Assigned by
	// quota so the MPK-detected fraction of malicious apps stays near the
	// paper's 6,350 / 14,401 ≈ 44% at every world scale and seed
	// (together with EvasiveHackerRate).
	CampaignBlacklistShare float64
	// EvasiveHackerRate: campaigns whose posts vary text and avoid lure
	// keywords, evading MyPageKeeper's heuristic path. Drawn per campaign.
	EvasiveHackerRate float64

	// ---- Posting volume ----

	// MaxMaterializedPostsPerApp bounds per-app posts streamed through the
	// monitor; true per-app volumes (Table 2, Table 9) are tracked as
	// counters. Keeps memory flat at any scale.
	MaxMaterializedPostsPerApp int
	// IngestWorkers is the fan-out of the monitor's queued ingestion path
	// during the post-streaming stages: generation stays single-threaded
	// and seeded, but shard updates land concurrently. 0 means GOMAXPROCS.
	// The generated world is byte-identical for every value (see
	// internal/mypagekeeper's determinism argument).
	IngestWorkers int
	// WALDir, when non-empty, puts a write-ahead log under the ingestion
	// session: every streamed event (posts, blacklist adds) is appended
	// to an internal/wal log in that directory before it is applied, with
	// fsync barriers at flushes, blacklist adds, and session close. The
	// generated world is byte-identical with or without it.
	WALDir string
	// WALResume makes generation a crash-recovery resume: an existing log
	// in WALDir is replayed into the monitor first, and the regenerated
	// (deterministic) event stream skips the replayed prefix instead of
	// re-applying and re-logging it. Requires WALDir.
	WALResume bool
	// ManualPostFrac: fraction of the monitored stream with no application
	// field (§2.2: 37%).
	ManualPostFrac float64
	// ManualScamShareRate: manual posts sharing scam URLs, producing the
	// 27% of flagged posts with no app (§2.2).
	ManualScamShareRate float64
	// PiggybackVictims: popular benign apps hackers piggyback on (§6.2).
	// Full scale; Table 9 lists the top five. Also ≈ the whitelist size
	// (6,350 − 6,273 = 77 apps whitelisted in §2.3).
	PiggybackVictims int
	// PiggybackPostFrac: piggybacked malicious posts as a fraction of the
	// victim's own post volume (Fig. 16: victims' flagged ratio < 0.2).
	PiggybackPostFrac float64

	// ---- Deletion timeline (§5.3) ----

	// MaliciousDeletedByCrawl: malicious apps Facebook removed before the
	// crawl (D-Summary holds 2,528 of 6,273 malicious ⇒ ~60% deleted).
	MaliciousDeletedByCrawl float64
	// MaliciousDeletedByValidation: removed by October 2012 (5,440 of
	// 6,273 ≈ 87%; 81% of FRAppE's new detections).
	MaliciousDeletedByValidation float64
	// BenignDeletedByCrawl: benign apps gone by crawl time (6,273−6,067
	// ≈ 3.3%).
	BenignDeletedByCrawl float64

	// ---- §7 countermeasures (off by default; the What-if experiment
	// turns them on to measure the ecosystem impact the paper predicts) ----

	// Countermeasures enables the paper's recommendations to Facebook.
	Countermeasures Countermeasures

	// ---- Crawl success (§2.3) ----

	// InstallCrawlBenignRate / InstallCrawlMaliciousRate: probability the
	// permission crawl succeeds for an app that is still alive at crawl
	// time — "different apps have different redirection processes, which
	// are intended for humans and not for crawlers" (D-Inst: 2,255 of
	// 6,067 live benign ≈ 37%; 491 of 2,528 live malicious ≈ 19%).
	InstallCrawlBenignRate    float64
	InstallCrawlMaliciousRate float64
	// FeedCrawlBenignRate / FeedCrawlMaliciousRate: profile-feed crawl
	// success for live apps (D-ProfileFeed: 6,063 of 6,273 benign; the
	// paper's 3,227 malicious feeds predate some deletions — here feeds of
	// deleted apps fail, so the malicious feed count tracks the alive set).
	FeedCrawlBenignRate    float64
	FeedCrawlMaliciousRate float64
}

// Countermeasures are the §7 recommendations, enforceable by the platform
// and the posting pipeline.
type Countermeasures struct {
	// BlockAppPromotion: "apps should not be allowed to promote other
	// apps" — promotion posts (direct install links, indirection-site
	// links, clique cross-promotion) are dropped at posting time.
	BlockAppPromotion bool
	// EnforceClientID: the install client_id must equal the app ID;
	// hackers are forced to register compliant apps.
	EnforceClientID bool
	// AuthenticatePromptFeed: prompt_feed calls with a mismatched api_key
	// are rejected, killing piggybacking.
	AuthenticatePromptFeed bool
}

// Default returns the paper-calibrated configuration at the given scale
// (1.0 = the full 111K-app corpus).
func Default(scale float64) Config {
	return Config{
		Seed:            20121210, // CoNEXT'12 opening day
		Scale:           scale,
		TotalApps:       111167,
		FracMalicious:   0.1296,
		UsersPerApp:     20,
		Months:          9,
		CrawlMonth:      11,
		ValidationMonth: 16,

		MaliciousDescriptionRate:      0.014,
		MaliciousCompanyRate:          0.008,
		MaliciousCategoryRate:         0.012,
		MaliciousProfilePostsRate:     0.03,
		MaliciousSinglePermRate:       0.97,
		MaliciousClientIDMismatchRate: 0.78,
		MaliciousWOTUnknownRate:       0.80,
		MaliciousWOTLowRate:           0.15,
		MaliciousBitlyRate:            0.61,
		PolishedMaliciousRate:         0.042,

		BenignDescriptionRate:  0.95,
		BenignCompanyRate:      0.45,
		BenignCategoryRate:     0.54,
		BenignProfilePostsRate: 0.957,
		BenignSinglePermRate:   0.55,
		BenignClientIDMismatch: 0.01,
		BenignWOTUnknownRate:   0.13,
		BenignFacebookRedirect: 0.80,
		BenignExternalLinkRate: 0.20,
		SloppyBenignRate:       0.004,

		FracColluding:             0.997,
		HackersPerMaliciousApp:    0.007,
		PromoterRate:              0.25,
		DualRate:                  0.162,
		DirectPromoterRate:        0.26,
		SitesPerThousandMalicious: 7.2,
		AmazonHostedSiteRate:      0.33,
		AppsPerCampaignName:       5,
		CliqueCampaignRate:        0.80,
		TyposquatRate:             0.001,

		CampaignBlacklistShare: 0.26,
		EvasiveHackerRate:      0.80,

		MaxMaterializedPostsPerApp: 400,
		ManualPostFrac:             0.37,
		ManualScamShareRate:        0.016,
		PiggybackVictims:           77,
		PiggybackPostFrac:          0.20,

		MaliciousDeletedByCrawl:      0.60,
		MaliciousDeletedByValidation: 0.85,
		BenignDeletedByCrawl:         0.033,

		InstallCrawlBenignRate:    0.372,
		InstallCrawlMaliciousRate: 0.194,
		FeedCrawlBenignRate:       0.999,
		FeedCrawlMaliciousRate:    0.95,
	}
}

// TestConfig returns a tiny world for unit tests (a few hundred apps).
func TestConfig() Config {
	c := Default(0.01)
	c.MaxMaterializedPostsPerApp = 60
	return c
}

// NumApps returns the scaled app count.
func (c Config) NumApps() int {
	n := int(float64(c.TotalApps) * c.Scale)
	if n < 50 {
		n = 50
	}
	return n
}

// NumMalicious returns the scaled truly-malicious app count.
func (c Config) NumMalicious() int {
	n := int(float64(c.NumApps()) * c.FracMalicious)
	if n < 10 {
		n = 10
	}
	return n
}

// NumUsers returns the scaled monitored-user population.
func (c Config) NumUsers() int {
	n := c.NumApps() * c.UsersPerApp
	if n < 500 {
		n = 500
	}
	return n
}

// NumPiggybackVictims returns the scaled victim count (at least 3 so the
// piggybacking experiments always have subjects).
func (c Config) NumPiggybackVictims() int {
	n := int(float64(c.PiggybackVictims) * c.Scale)
	if n < 3 {
		n = 3
	}
	return n
}

// NumHackers returns the scaled AppNet operator count.
func (c Config) NumHackers() int {
	n := int(float64(c.NumMalicious()) * c.HackersPerMaliciousApp)
	if n < 8 {
		n = 8
	}
	return n
}

// NumIndirectionSites returns the scaled indirection-website count.
func (c Config) NumIndirectionSites() int {
	n := int(float64(c.NumMalicious()) * c.SitesPerThousandMalicious / 1000)
	if n < 2 {
		n = 2
	}
	return n
}
