package synth

import (
	"errors"
	"testing"
)

func TestDefaultConfigsValidate(t *testing.T) {
	for _, scale := range []float64{0.001, 0.01, 0.15, 1.0} {
		if err := Default(scale).Validate(); err != nil {
			t.Errorf("Default(%v): %v", scale, err)
		}
	}
	if err := TestConfig().Validate(); err != nil {
		t.Errorf("TestConfig: %v", err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero scale", func(c *Config) { c.Scale = 0 }},
		{"negative apps", func(c *Config) { c.TotalApps = -1 }},
		{"malicious fraction 0", func(c *Config) { c.FracMalicious = 0 }},
		{"malicious fraction 1", func(c *Config) { c.FracMalicious = 1 }},
		{"no months", func(c *Config) { c.Months = 0 }},
		{"crawl inside window", func(c *Config) { c.CrawlMonth = c.Months - 1 }},
		{"validation before crawl", func(c *Config) { c.ValidationMonth = c.CrawlMonth }},
		{"rate above one", func(c *Config) { c.BenignDescriptionRate = 1.5 }},
		{"negative rate", func(c *Config) { c.TyposquatRate = -0.1 }},
		{"manual frac 1", func(c *Config) { c.ManualPostFrac = 1 }},
		{"WOT shares exceed 1", func(c *Config) { c.MaliciousWOTUnknownRate = 0.9; c.MaliciousWOTLowRate = 0.2 }},
		{"roles exceed 1", func(c *Config) { c.PromoterRate = 0.7; c.DualRate = 0.5 }},
		{"deletion order", func(c *Config) { c.MaliciousDeletedByValidation = 0.1 }},
		{"campaign mean", func(c *Config) { c.AppsPerCampaignName = 0 }},
		{"no hackers", func(c *Config) { c.HackersPerMaliciousApp = 0 }},
		{"zero materialization", func(c *Config) { c.MaxMaterializedPostsPerApp = 0 }},
	}
	for _, m := range mutations {
		cfg := Default(0.01)
		m.mut(&cfg)
		if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: err = %v, want ErrInvalidConfig", m.name, err)
		}
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Generate with invalid config should panic")
		}
	}()
	cfg := Default(0.01)
	cfg.Months = 0
	Generate(cfg)
}
