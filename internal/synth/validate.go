package synth

import (
	"errors"
	"fmt"
)

// ErrInvalidConfig wraps all configuration validation failures.
var ErrInvalidConfig = errors.New("synth: invalid config")

// Validate checks the configuration for values that would make generation
// meaningless or crash. Generate calls it and panics on violation (a bad
// config is a programming error, not a runtime condition); callers
// building configs from external input should call Validate themselves.
func (c Config) Validate() error {
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("%w: %s", ErrInvalidConfig, fmt.Sprintf(format, args...))
	}
	if c.Scale <= 0 {
		return fail("Scale = %v, must be positive", c.Scale)
	}
	if c.TotalApps <= 0 {
		return fail("TotalApps = %d, must be positive", c.TotalApps)
	}
	if c.FracMalicious <= 0 || c.FracMalicious >= 1 {
		return fail("FracMalicious = %v, must be in (0,1)", c.FracMalicious)
	}
	if c.Months < 1 {
		return fail("Months = %d, must be >= 1", c.Months)
	}
	if c.CrawlMonth < c.Months {
		return fail("CrawlMonth = %d, must be >= Months (%d)", c.CrawlMonth, c.Months)
	}
	if c.ValidationMonth <= c.CrawlMonth {
		return fail("ValidationMonth = %d, must be > CrawlMonth (%d)", c.ValidationMonth, c.CrawlMonth)
	}
	if c.MaxMaterializedPostsPerApp < 1 {
		return fail("MaxMaterializedPostsPerApp = %d, must be >= 1", c.MaxMaterializedPostsPerApp)
	}
	if c.IngestWorkers < 0 {
		return fail("IngestWorkers = %d, must be >= 0", c.IngestWorkers)
	}
	if c.WALResume && c.WALDir == "" {
		return fail("WALResume requires WALDir")
	}
	if c.UsersPerApp < 1 {
		return fail("UsersPerApp = %d, must be >= 1", c.UsersPerApp)
	}
	rates := map[string]float64{
		"MaliciousDescriptionRate":      c.MaliciousDescriptionRate,
		"MaliciousCompanyRate":          c.MaliciousCompanyRate,
		"MaliciousCategoryRate":         c.MaliciousCategoryRate,
		"MaliciousProfilePostsRate":     c.MaliciousProfilePostsRate,
		"MaliciousSinglePermRate":       c.MaliciousSinglePermRate,
		"MaliciousClientIDMismatchRate": c.MaliciousClientIDMismatchRate,
		"MaliciousWOTUnknownRate":       c.MaliciousWOTUnknownRate,
		"MaliciousWOTLowRate":           c.MaliciousWOTLowRate,
		"MaliciousBitlyRate":            c.MaliciousBitlyRate,
		"PolishedMaliciousRate":         c.PolishedMaliciousRate,
		"BenignDescriptionRate":         c.BenignDescriptionRate,
		"BenignCompanyRate":             c.BenignCompanyRate,
		"BenignCategoryRate":            c.BenignCategoryRate,
		"BenignProfilePostsRate":        c.BenignProfilePostsRate,
		"BenignSinglePermRate":          c.BenignSinglePermRate,
		"BenignClientIDMismatch":        c.BenignClientIDMismatch,
		"BenignWOTUnknownRate":          c.BenignWOTUnknownRate,
		"BenignFacebookRedirect":        c.BenignFacebookRedirect,
		"BenignExternalLinkRate":        c.BenignExternalLinkRate,
		"SloppyBenignRate":              c.SloppyBenignRate,
		"FracColluding":                 c.FracColluding,
		"PromoterRate":                  c.PromoterRate,
		"DualRate":                      c.DualRate,
		"DirectPromoterRate":            c.DirectPromoterRate,
		"AmazonHostedSiteRate":          c.AmazonHostedSiteRate,
		"TyposquatRate":                 c.TyposquatRate,
		"CampaignBlacklistShare":        c.CampaignBlacklistShare,
		"EvasiveHackerRate":             c.EvasiveHackerRate,
		"CliqueCampaignRate":            c.CliqueCampaignRate,
		"ManualScamShareRate":           c.ManualScamShareRate,
		"PiggybackPostFrac":             c.PiggybackPostFrac,
		"MaliciousDeletedByCrawl":       c.MaliciousDeletedByCrawl,
		"MaliciousDeletedByValidation":  c.MaliciousDeletedByValidation,
		"BenignDeletedByCrawl":          c.BenignDeletedByCrawl,
		"InstallCrawlBenignRate":        c.InstallCrawlBenignRate,
		"InstallCrawlMaliciousRate":     c.InstallCrawlMaliciousRate,
		"FeedCrawlBenignRate":           c.FeedCrawlBenignRate,
		"FeedCrawlMaliciousRate":        c.FeedCrawlMaliciousRate,
	}
	for name, v := range rates {
		if v < 0 || v > 1 {
			return fail("%s = %v, must be in [0,1]", name, v)
		}
	}
	if c.ManualPostFrac < 0 || c.ManualPostFrac >= 1 {
		return fail("ManualPostFrac = %v, must be in [0,1)", c.ManualPostFrac)
	}
	if c.MaliciousWOTUnknownRate+c.MaliciousWOTLowRate > 1 {
		return fail("MaliciousWOTUnknownRate + MaliciousWOTLowRate = %v, must be <= 1",
			c.MaliciousWOTUnknownRate+c.MaliciousWOTLowRate)
	}
	if c.PromoterRate+c.DualRate > 1 {
		return fail("PromoterRate + DualRate = %v, must be <= 1", c.PromoterRate+c.DualRate)
	}
	if c.MaliciousDeletedByValidation < c.MaliciousDeletedByCrawl {
		return fail("MaliciousDeletedByValidation (%v) < MaliciousDeletedByCrawl (%v)",
			c.MaliciousDeletedByValidation, c.MaliciousDeletedByCrawl)
	}
	if c.AppsPerCampaignName < 1 {
		return fail("AppsPerCampaignName = %v, must be >= 1", c.AppsPerCampaignName)
	}
	if c.HackersPerMaliciousApp <= 0 {
		return fail("HackersPerMaliciousApp = %v, must be positive", c.HackersPerMaliciousApp)
	}
	if c.SitesPerThousandMalicious < 0 {
		return fail("SitesPerThousandMalicious = %v, must be >= 0", c.SitesPerThousandMalicious)
	}
	if c.PiggybackVictims < 0 {
		return fail("PiggybackVictims = %d, must be >= 0", c.PiggybackVictims)
	}
	return nil
}
