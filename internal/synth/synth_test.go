package synth

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"frappe/internal/fbplatform"
	"frappe/internal/wot"
)

// The generated world is expensive enough to share across tests.
var (
	worldOnce sync.Once
	testWorld *World
)

func sharedWorld(t *testing.T) *World {
	t.Helper()
	worldOnce.Do(func() { testWorld = Generate(TestConfig()) })
	return testWorld
}

// frac asserts v is within [lo, hi], with a helpful message.
func assertFrac(t *testing.T, name string, v, lo, hi float64) {
	t.Helper()
	if v < lo || v > hi {
		t.Errorf("%s = %.3f, want in [%.3f, %.3f]", name, v, lo, hi)
	}
}

func TestWorldPopulation(t *testing.T) {
	w := sharedWorld(t)
	cfg := w.Config
	if got := w.Platform.NumApps(); got != cfg.NumApps() {
		t.Errorf("NumApps = %d, want %d", got, cfg.NumApps())
	}
	if len(w.MaliciousIDs)+len(w.BenignIDs) != cfg.NumApps() {
		t.Errorf("partition broken: %d + %d != %d",
			len(w.MaliciousIDs), len(w.BenignIDs), cfg.NumApps())
	}
	fracMal := float64(len(w.MaliciousIDs)) / float64(cfg.NumApps())
	assertFrac(t, "malicious fraction", fracMal, 0.10, 0.16)
	if len(w.PopularIDs) < 3 {
		t.Errorf("popular victims = %d", len(w.PopularIDs))
	}
}

func TestGroundTruthConsistency(t *testing.T) {
	w := sharedWorld(t)
	for _, id := range w.MaliciousIDs {
		app, err := w.Platform.App(id)
		if err != nil {
			t.Fatalf("malicious app %s missing: %v", id, err)
		}
		if !app.Truth.Malicious || app.Truth.HackerID < 0 {
			t.Fatalf("truth wrong for %s: %+v", id, app.Truth)
		}
		if !w.IsMalicious(id) {
			t.Fatalf("IsMalicious(%s) = false", id)
		}
	}
	for _, id := range w.BenignIDs {
		if w.IsMalicious(id) {
			t.Fatalf("benign app %s marked malicious", id)
		}
	}
}

func TestMaliciousFeatureMarginals(t *testing.T) {
	w := sharedWorld(t)
	var desc, onePerm, mismatch, profilePosts, oddPerm int
	for _, id := range w.MaliciousIDs {
		app, _ := w.Platform.App(id)
		if app.Description != "" {
			desc++
		}
		if len(app.Permissions) == 1 {
			onePerm++
			if app.Permissions[0] != fbplatform.PermPublishStream {
				oddPerm++ // only polished scams may request something else
			}
		}
		if app.ClientID != app.ID {
			mismatch++
		}
		if len(app.ProfileFeed) > 0 {
			profilePosts++
		}
	}
	n := float64(len(w.MaliciousIDs))
	assertFrac(t, "single-perm non-publish_stream share", float64(oddPerm)/n, 0, 0.05)
	assertFrac(t, "malicious description rate", float64(desc)/n, 0, 0.09)
	assertFrac(t, "malicious single-perm rate", float64(onePerm)/n, 0.92, 1)
	assertFrac(t, "malicious client-ID mismatch", float64(mismatch)/n, 0.65, 0.88)
	assertFrac(t, "malicious profile-post rate", float64(profilePosts)/n, 0, 0.09)
}

func TestBenignFeatureMarginals(t *testing.T) {
	w := sharedWorld(t)
	var desc, onePerm, mismatch, profilePosts, fbRedirect int
	for _, id := range w.BenignIDs {
		app, _ := w.Platform.App(id)
		if app.Description != "" {
			desc++
		}
		if len(app.Permissions) == 1 {
			onePerm++
		}
		if app.ClientID != app.ID {
			mismatch++
		}
		if len(app.ProfileFeed) > 0 {
			profilePosts++
		}
		if strings.HasPrefix(app.RedirectURI, "https://apps.facebook.com/") {
			fbRedirect++
		}
	}
	n := float64(len(w.BenignIDs))
	assertFrac(t, "benign description rate", float64(desc)/n, 0.90, 0.99)
	assertFrac(t, "benign single-perm rate", float64(onePerm)/n, 0.45, 0.65)
	assertFrac(t, "benign client-ID mismatch", float64(mismatch)/n, 0, 0.03)
	assertFrac(t, "benign profile-post rate", float64(profilePosts)/n, 0.90, 0.99)
	assertFrac(t, "benign facebook redirect", float64(fbRedirect)/n, 0.72, 0.88)
}

func TestNameSharing(t *testing.T) {
	w := sharedWorld(t)
	counts := map[string]int{}
	for _, id := range w.MaliciousIDs {
		app, _ := w.Platform.App(id)
		counts[app.Truth.CampaignName]++
	}
	shared := 0
	for _, id := range w.MaliciousIDs {
		app, _ := w.Platform.App(id)
		if counts[app.Truth.CampaignName] > 1 {
			shared++
		}
	}
	// §4.2.1: 87% of malicious apps share a name with another one.
	assertFrac(t, "name-sharing malicious apps",
		float64(shared)/float64(len(w.MaliciousIDs)), 0.6, 1)
}

func TestMPKDetectionRate(t *testing.T) {
	w := sharedWorld(t)
	flagged := 0
	for _, id := range w.MaliciousIDs {
		if w.Monitor.AppFlagged(id) {
			flagged++
		}
	}
	// Paper: 6,350 of 14,401 truly-malicious apps (≈44%) get caught by
	// the post-level heuristic. Small test worlds are lumpy; allow slack.
	assertFrac(t, "MPK-flagged malicious fraction",
		float64(flagged)/float64(len(w.MaliciousIDs)), 0.2, 0.75)
}

func TestBenignRarelyFlagged(t *testing.T) {
	w := sharedWorld(t)
	popular := map[string]bool{}
	for _, id := range w.PopularIDs {
		popular[id] = true
	}
	flagged := 0
	for _, id := range w.BenignIDs {
		if popular[id] {
			continue
		}
		if w.Monitor.AppFlagged(id) {
			flagged++
		}
	}
	assertFrac(t, "non-victim benign flagged",
		float64(flagged)/float64(len(w.BenignIDs)), 0, 0.01)
}

func TestPiggybackVictimsFlagged(t *testing.T) {
	w := sharedWorld(t)
	flaggedVictims := 0
	for _, id := range w.PopularIDs {
		if w.Monitor.AppFlagged(id) {
			flaggedVictims++
		}
		if w.PiggybackPosts[id] == 0 {
			t.Errorf("victim %s got no piggybacked posts", id)
		}
	}
	if flaggedVictims == 0 {
		t.Error("no piggyback victim was flagged; whitelisting has nothing to do")
	}
	// Victims' malicious-post ratio must be low (Fig. 16's < 0.2 knee).
	apps := w.Monitor.Apps()
	for _, id := range w.PopularIDs {
		as, ok := apps[id]
		if !ok || as.Posts == 0 {
			continue
		}
		ratio := float64(as.FlaggedPosts) / float64(as.Posts)
		if ratio > 0.3 {
			t.Errorf("victim %s flagged ratio %.2f, want < 0.3", id, ratio)
		}
	}
}

func TestDeletionTimeline(t *testing.T) {
	w := sharedWorld(t)
	cfg := w.Config
	byCrawl, byValidation := 0, 0
	for _, id := range w.MaliciousIDs {
		m := w.DeleteMonthOf(id)
		if m > 0 && m < cfg.CrawlMonth {
			byCrawl++
		}
		if m > 0 && m < cfg.ValidationMonth {
			byValidation++
		}
	}
	n := float64(len(w.MaliciousIDs))
	assertFrac(t, "malicious deleted by crawl", float64(byCrawl)/n, 0.5, 0.7)
	assertFrac(t, "malicious deleted by validation", float64(byValidation)/n, 0.78, 0.92)
}

func TestAdvanceToAppliesDeletions(t *testing.T) {
	// Needs its own world: AdvanceTo mutates shared state.
	cfg := TestConfig()
	cfg.Seed = 77
	w := Generate(cfg)
	var target string
	for _, id := range w.MaliciousIDs {
		// Deletion scheduled after the current clock but before the crawl.
		if m := w.DeleteMonthOf(id); m > w.CurrentMonth() && m < cfg.CrawlMonth {
			target = id
			break
		}
	}
	if target == "" {
		t.Skip("no deletion scheduled before crawl in this seed")
	}
	if _, err := w.Platform.Lookup(target); err != nil {
		t.Fatalf("app deleted before AdvanceTo: %v", err)
	}
	w.AdvanceTo(cfg.CrawlMonth)
	if _, err := w.Platform.Lookup(target); err == nil {
		t.Error("app still visible after AdvanceTo(crawl)")
	}
	if w.CurrentMonth() != cfg.CrawlMonth {
		t.Errorf("CurrentMonth = %d", w.CurrentMonth())
	}
	// Moving backwards is a no-op.
	w.AdvanceTo(0)
	if w.CurrentMonth() != cfg.CrawlMonth {
		t.Error("AdvanceTo moved backwards")
	}
}

func TestStreamComposition(t *testing.T) {
	w := sharedWorld(t)
	manualFrac := float64(w.ManualPosts) / float64(w.TotalStreamPosts)
	// §2.2: 37% of posts have no application field.
	assertFrac(t, "manual post fraction", manualFrac, 0.30, 0.44)
	if w.ManualFlaggedPosts() == 0 {
		t.Error("no manual scam shares were flagged")
	}
}

func TestRolesAssigned(t *testing.T) {
	w := sharedWorld(t)
	var promoters, promotees, duals int
	for _, id := range w.MaliciousIDs {
		switch w.RoleOf(id) {
		case RolePromoter:
			promoters++
		case RolePromotee:
			promotees++
		case RoleDual:
			duals++
		}
	}
	n := float64(len(w.MaliciousIDs))
	assertFrac(t, "promoter share", float64(promoters)/n, 0.15, 0.40)
	assertFrac(t, "promotee share", float64(promotees)/n, 0.40, 0.75)
	assertFrac(t, "dual share", float64(duals)/n, 0.05, 0.30)
	if RolePromoter.String() != "promoter" || RoleNone.String() != "none" {
		t.Error("Role.String broken")
	}
}

func TestIndirectionSites(t *testing.T) {
	w := sharedWorld(t)
	if w.Redirector.NumSites() < 2 {
		t.Fatalf("sites = %d", w.Redirector.NumSites())
	}
	amazon := 0
	total := 0
	for _, h := range w.Hackers {
		for _, s := range h.Sites {
			total++
			if s.HostDomain == "amazonaws.com" {
				amazon++
			}
			if s.NumTargets() == 0 {
				t.Error("site with no targets")
			}
			for _, target := range s.Targets() {
				if id, ok := fbplatform.ParseInstallURL(target); !ok {
					t.Errorf("site target %q is not an install URL", target)
				} else if !w.IsMalicious(id) {
					t.Errorf("site target %s is not malicious", id)
				}
			}
		}
	}
	if total != w.Redirector.NumSites() {
		t.Errorf("hacker sites %d != registered sites %d", total, w.Redirector.NumSites())
	}
	if total >= 6 {
		assertFrac(t, "amazon-hosted sites", float64(amazon)/float64(total), 0.05, 0.7)
	}
}

func TestWOTSeparation(t *testing.T) {
	w := sharedWorld(t)
	// Benign redirects resolve to reputable or facebook domains far more
	// often than malicious ones.
	scoreOf := func(id string) int {
		app, _ := w.Platform.App(id)
		d := wot.DomainOf(app.RedirectURI)
		s, err := w.WOT.Score(d)
		if err != nil {
			return wot.UnknownScore
		}
		return s
	}
	benHigh, malHigh := 0, 0
	for _, id := range w.BenignIDs {
		if scoreOf(id) >= 60 {
			benHigh++
		}
	}
	for _, id := range w.MaliciousIDs {
		if scoreOf(id) >= 60 {
			malHigh++
		}
	}
	benFrac := float64(benHigh) / float64(len(w.BenignIDs))
	malFrac := float64(malHigh) / float64(len(w.MaliciousIDs))
	if benFrac < 0.7 {
		t.Errorf("benign high-reputation fraction = %.2f", benFrac)
	}
	if malFrac > 0.1 {
		t.Errorf("malicious high-reputation fraction = %.2f", malFrac)
	}
}

func TestBitlyClicksPopulated(t *testing.T) {
	w := sharedWorld(t)
	apps := w.Monitor.Apps()
	appsWithClicks := 0
	for _, id := range w.MaliciousIDs {
		as, ok := apps[id]
		if !ok {
			continue
		}
		var total int64
		for _, link := range as.Links {
			if !w.Bitly.IsShort(link) {
				continue
			}
			n, err := w.Bitly.Clicks(link)
			if err != nil {
				t.Fatalf("clicks for %s: %v", link, err)
			}
			total += n
		}
		if total > 0 {
			appsWithClicks++
		}
	}
	if appsWithClicks < len(w.MaliciousIDs)/4 {
		t.Errorf("only %d of %d malicious apps have bit.ly clicks",
			appsWithClicks, len(w.MaliciousIDs))
	}
}

func TestDeterminism(t *testing.T) {
	cfg := TestConfig()
	cfg.Scale = 0.003
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.MaliciousIDs) != len(b.MaliciousIDs) || len(a.BenignIDs) != len(b.BenignIDs) {
		t.Fatal("same seed produced different populations")
	}
	if a.TotalStreamPosts != b.TotalStreamPosts {
		t.Errorf("stream sizes differ: %d vs %d", a.TotalStreamPosts, b.TotalStreamPosts)
	}
	for i := range a.MaliciousIDs {
		if a.MaliciousIDs[i] != b.MaliciousIDs[i] {
			t.Fatal("malicious ID sequences differ")
		}
	}
	sa, sb := a.Monitor.Stats(), b.Monitor.Stats()
	if sa != sb {
		t.Errorf("monitor stats differ: %+v vs %+v", sa, sb)
	}
}

func TestTopAppsByTruePosts(t *testing.T) {
	w := sharedWorld(t)
	top := w.TopAppsByTruePosts(w.MaliciousIDs, 5)
	if len(top) != 5 {
		t.Fatalf("top = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if w.TruePosts[top[i-1]] < w.TruePosts[top[i]] {
			t.Error("top apps not sorted by volume")
		}
	}
}

func TestTypoOf(t *testing.T) {
	if typoOf("FarmVille") == "FarmVille" {
		t.Error("typoOf must change the name")
	}
	if len(typoOf("FarmVille")) != len("FarmVille")-1 {
		t.Error("typoOf should drop one character")
	}
}

// TestIngestWorkerDeterminism asserts the end-to-end claim of the queued
// ingestion path: generation produces a byte-identical monitor view for
// any worker fan-out.
func TestIngestWorkerDeterminism(t *testing.T) {
	build := func(workers int) *World {
		cfg := TestConfig()
		cfg.Scale = 0.003
		cfg.IngestWorkers = workers
		return Generate(cfg)
	}
	a := build(1)
	b := build(4)
	if a.TotalStreamPosts != b.TotalStreamPosts {
		t.Fatalf("stream sizes differ: %d vs %d", a.TotalStreamPosts, b.TotalStreamPosts)
	}
	if sa, sb := a.Monitor.Stats(), b.Monitor.Stats(); sa != sb {
		t.Fatalf("monitor stats differ: %+v vs %+v", sa, sb)
	}
	appsA, appsB := a.Monitor.Apps(), b.Monitor.Apps()
	if len(appsA) != len(appsB) {
		t.Fatalf("app counts differ: %d vs %d", len(appsA), len(appsB))
	}
	for id, sa := range appsA {
		if sb, ok := appsB[id]; !ok || !reflect.DeepEqual(sa, sb) {
			t.Fatalf("AppStats[%q] differ:\n  w1: %+v\n  w4: %+v", id, sa, appsB[id])
		}
	}
}
