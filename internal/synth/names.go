package synth

import (
	"fmt"

	"frappe/internal/stats"
)

// Scam-campaign name templates, seeded with the names the paper reports
// (Table 2, §5.3, Fig. 15) and extended with the same lure patterns.
var scamNameTemplates = []string{
	"What Does Your %s Mean?",
	"Who Viewed Your %s?",
	"%s Predictor",
	"Free %s",
	"WhosStalking %s?",
	"Your %s In The Future",
	"%s Meaning Finder",
	"What Ur %s Implies!!!",
	"Past %s",
	"Profile %s Watchers",
	"How Much Time On %s?",
	"The %s App",
	"Sexiest %s Test",
	"%s Teller",
	"Check My %s",
	"Secret %s Revealer",
}

var scamNameWords = []string{
	"Name", "Profile", "Life", "Future", "Love", "Death", "Crush",
	"Stalker", "Friend", "Photo", "Status", "Fortune", "Destiny", "Past",
	"Personality", "Soulmate", "Visitor", "Age", "Face", "Luck",
}

// Canonical paper names, used verbatim for the first few campaigns so the
// reproduced tables read like the originals.
var paperScamNames = []string{
	"What Does Your Name Mean?",
	"Free Phone Calls",
	"The App",
	"WhosStalking?",
	"Future Teller",
	"Death Predictor",
	"Past Life",
	"whats my name means",
	"Name meaning finder",
	"Profile Watchers",
	"What is the sexiest thing about you?",
}

// Popular benign apps (the paper's whitelist heads and Table 9 victims).
var popularBenignNames = []string{
	"FarmVille",
	"Facebook for iPhone",
	"Mobile",
	"Facebook for Android",
	"Links",
	"Zoo World",
	"CityVille",
	"Mafia Wars",
	"Fortune Cookie",
	"Words With Friends",
}

var benignNameAdjectives = []string{
	"Happy", "Daily", "Social", "Super", "Mega", "Tiny", "Epic", "Magic",
	"Pocket", "Golden", "Pixel", "Turbo", "Cozy", "Brave", "Lucky", "Swift",
}

var benignNameNouns = []string{
	"Farm", "Quiz", "Poker", "Garden", "Kitchen", "Racing", "Trivia",
	"Puzzle", "Aquarium", "Bakery", "City", "Safari", "Chess", "Karaoke",
	"Horoscope", "Recipes", "Pets", "Gifts", "Radio", "News",
}

var benignCompanies = []string{
	"Zynga", "Playdom", "CrowdStar", "RockYou", "Wooga", "Playfish",
	"Digital Chocolate", "Kabam", "Peak Games", "Social Point",
}

var benignCategories = []string{
	"Games", "Entertainment", "Lifestyle", "Utilities", "News",
	"Sports", "Music", "Education", "Travel", "Photos",
}

// Scam hosting-domain stems (Table 3 lists the paper's top five).
var scamDomainStems = []string{
	"thenamemeans", "fastfreeupdates", "wikiworldmedia", "technicalyard",
	"freeoffersites", "profileviewer", "bonuscreditz", "surveyrewardz",
	"appprizes", "viralgiftly",
}

// Campaign post templates. Non-evasive campaigns repeat one of these
// verbatim (triggering MyPageKeeper's similarity + keyword signals); the
// first entries are the exact messages of Table 9.
var scamMessages = []string{
	"WOW I just got 5000 Facebook Credits for Free",
	"Get your FREE 450 FACEBOOK CREDITS",
	"NFL Playoffs Are Coming! Show Your Team Support!",
	"WOW! I Just Got a Recharge of Rs 500.",
	"Get Your Free Facebook Sim Card",
	"OMG I cant believe who viewed my profile! Check yours FREE",
	"HURRY limited offer: free iPad for the first 100 fans!",
	"I just won a FREE gift card, click to claim yours",
	"See who stalks you - FREE and instant!",
	"Deal of the day: WIN an iPhone, no strings!",
}

// Evasive campaigns vary their text and avoid lure keywords, slipping past
// the keyword/similarity heuristics (§7's obfuscation discussion).
var evasiveMessages = []string{
	"this actually worked for me, have a look",
	"did not expect this to be real but it is",
	"someone showed me this yesterday, quite something",
	"you might want to see this before it goes away",
	"a friend sent me this and now i get it",
	"took me a minute to believe this one",
}

var benignMessages = []string{
	"I just reached level %d!",
	"Harvested %d crops on my farm today",
	"New high score: %d points",
	"Completed quest #%d with my neighbors",
	"My daily horoscope for day %d was spot on",
	"Listening to playlist %d right now",
	"Just planted row %d of my virtual garden",
	"Won hand %d at the poker table",
}

// nameGen deterministically issues app names, tracking uniqueness for the
// benign pool.
type nameGen struct {
	rng  *stats.Rand
	used map[string]bool
	seq  int
}

func newNameGen(rng *stats.Rand) *nameGen {
	return &nameGen{rng: rng, used: make(map[string]bool)}
}

// scamCampaignName returns the i-th campaign name: the paper's own names
// first, then template-generated lookalikes. Campaign names may repeat
// the same words across hackers — hackers are "lazy" (§4.2.1).
func (g *nameGen) scamCampaignName(i int) string {
	if i < len(paperScamNames) {
		return paperScamNames[i]
	}
	tmpl := scamNameTemplates[g.rng.Intn(len(scamNameTemplates))]
	word := scamNameWords[g.rng.Intn(len(scamNameWords))]
	return fmt.Sprintf(tmpl, word)
}

// benignName returns a unique benign app name.
func (g *nameGen) benignName() string {
	for {
		adj := benignNameAdjectives[g.rng.Intn(len(benignNameAdjectives))]
		noun := benignNameNouns[g.rng.Intn(len(benignNameNouns))]
		name := adj + " " + noun
		if !g.used[name] {
			g.used[name] = true
			return name
		}
		g.seq++
		name = fmt.Sprintf("%s %s %d", adj, noun, g.seq)
		if !g.used[name] {
			g.used[name] = true
			return name
		}
	}
}

// scamDomain returns hacker h's d-th hosting domain. Stems repeat with
// numeric suffixes: the paper's top domains are thenamemeans2.com,
// thenamemeans3.com, etc.
func scamDomain(h, d int) string {
	stem := scamDomainStems[(h+d)%len(scamDomainStems)]
	return fmt.Sprintf("%s%d.com", stem, h%7+2)
}
