package synth

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"frappe/internal/fbplatform"
	"frappe/internal/redirector"
	"frappe/internal/stats"
	"frappe/internal/telemetry"
	"frappe/internal/wot"
)

// Generate builds a complete synthetic world from cfg: it registers all
// apps, seeds WOT / Social Bakers / the URL blacklist, streams nine months
// of posts through MyPageKeeper, populates bit.ly click counters, and
// schedules Facebook's deletions. The world clock is left at the end of
// the observation window (month cfg.Months-1); callers advance it to crawl
// or validation time with AdvanceTo.
func Generate(cfg Config) *World {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	w := newServices(cfg)
	g := &generator{
		w:     w,
		cfg:   cfg,
		rng:   stats.NewRand(cfg.Seed),
		ids:   &appIDSeq{},
		names: nil,
	}
	g.names = newNameGen(g.rng.Fork())
	g.rngPosts = g.rng.Fork()
	g.rngEco = g.rng.Fork()
	g.rngProfile = g.rng.Fork()

	// Per-stage wall clock lands in frappe_synth_stage_seconds{stage}, so
	// slow world builds are attributable to a phase rather than folklore.
	stages := telemetry.Default().Gauge("frappe_synth_stage_seconds",
		"Wall-clock seconds of the last world-generation stage run.", "stage")
	genStart := time.Now()
	timed := func(stage string, fn func()) {
		start := time.Now()
		fn()
		stages.With(stage).Set(time.Since(start).Seconds())
	}

	timed("benign_apps", g.genBenignApps)
	timed("hackers", g.genHackers)
	timed("malicious_apps", g.genMaliciousApps)
	timed("sites", g.genSites)
	// The event-streaming stages fan out through the monitor's queued
	// ingestion path: generation stays single-threaded and seeded, but
	// shard updates land concurrently. The session opens before the
	// blacklists stage so every blacklist add is part of the (optionally
	// WAL-logged) event stream, not just the posts. ingest_drain is the
	// tail latency of the queues; clicks reads Monitor.Apps() and so
	// needs the drain.
	w.beginIngest(cfg.IngestWorkers)
	timed("blacklists", g.assignBlacklists)
	timed("reputations", g.seedReputations)
	timed("posts", g.genPosts)
	timed("manual_posts", g.genManualPosts)
	timed("ingest_drain", w.endIngest)
	timed("clicks", g.genClicks)
	timed("deletions", g.scheduleDeletions)

	// Apply deletions that fall inside the observation window: some apps
	// were already gone from the graph before the crawls started.
	timed("advance", func() {
		w.currentMonth = -1
		w.AdvanceTo(cfg.Months - 1)
	})
	stages.With("total").Set(time.Since(genStart).Seconds())
	return w
}

// generator holds the intermediate state of one Generate run.
type generator struct {
	w   *World
	cfg Config
	rng *stats.Rand
	// Independent streams so that tweaking one phase does not reshuffle
	// the others.
	rngPosts   *stats.Rand
	rngEco     *stats.Rand
	rngProfile *stats.Rand

	ids   *appIDSeq
	names *nameGen

	// benignPartnerDomains / benignNewsDomains are benign external-link
	// targets with known WOT reputations.
	benignPartnerDomains []string
	benignNewsDomains    []string

	// campaignLinks maps each campaign (hacker, name-cluster) to its
	// shared landing links; flaggableLinks collects links on blacklisted
	// domains, reused by manual scam shares.
	campaigns      []*campaign
	flaggableLinks []string

	// appPostsStreamed counts materialized app-attributed posts, sizing
	// the manual-post stream.
	appPostsStreamed int64

	// usedCampaignNames is the global pool lazy hackers draw from.
	usedCampaignNames []string

	// campaignSeq numbers campaigns for tracking-link generation.
	campaignSeq int
}

// campaign is one name-cluster of one hacker: apps sharing a name and a
// small pool of landing links.
type campaign struct {
	hacker      *Hacker
	name        string
	appIDs      []string
	landing     []string // landing-page URLs as posted (some bit.ly-wrapped)
	landingLong []string // the long forms, parallel to landing
	id          int      // sequence number, used in per-campaign tracking links
	message     string   // fixed lure text for non-evasive campaigns
	// evasive campaigns vary post text and avoid lure keywords; drawn per
	// campaign so detection coverage is smooth even in small worlds.
	evasive bool
	// blacklisted campaigns have their landing URLs on MPK's blacklists.
	blacklisted bool
	// clique campaigns cross-promote internally: every app posts install
	// links of its same-name siblings (Fig. 14 / Fig. 15 density).
	clique bool
	// versioned campaigns append version tags to app names.
	versioned bool
}

// ---- Benign side ----

func (g *generator) genBenignApps() {
	cfg := g.cfg
	w := g.w
	nBenign := cfg.NumApps() - cfg.NumMalicious()
	nVictims := cfg.NumPiggybackVictims()
	if nVictims > nBenign {
		nVictims = nBenign
	}

	for i := 0; i < 12; i++ {
		g.benignNewsDomains = append(g.benignNewsDomains, fmt.Sprintf("newsroom%d.example.org", i))
		g.benignPartnerDomains = append(g.benignPartnerDomains, fmt.Sprintf("partnerapp%d.example.com", i))
	}

	var prevID string
	for i := 0; i < nBenign; i++ {
		id := g.ids.next()
		popular := i < nVictims
		var name string
		if popular {
			name = popularBenignNames[i%len(popularBenignNames)]
			if i >= len(popularBenignNames) {
				name = fmt.Sprintf("%s %d", name, i/len(popularBenignNames)+2)
			}
		} else {
			name = g.names.benignName()
		}
		app := &fbplatform.App{
			ID:    id,
			Name:  name,
			Truth: fbplatform.Truth{HackerID: -1},
		}
		if sloppy := !popular && g.rng.Bool(cfg.SloppyBenignRate); sloppy {
			// A legitimate hobby app configured as carelessly as a scam:
			// the rare benign app a profile-based classifier gets wrong.
			app.Permissions = []string{fbplatform.PermPublishStream}
			slug := strings.ToLower(strings.ReplaceAll(name, " ", ""))
			app.RedirectURI = fmt.Sprintf("http://%s-hobby.example.net/go", slug)
		} else {
			if popular || g.rng.Bool(cfg.BenignDescriptionRate) {
				app.Description = fmt.Sprintf("%s: the official app", name)
			}
			if popular || g.rng.Bool(cfg.BenignCompanyRate) {
				app.Company = benignCompanies[g.rng.Intn(len(benignCompanies))]
			}
			if popular || g.rng.Bool(cfg.BenignCategoryRate) {
				app.Category = benignCategories[g.rng.Intn(len(benignCategories))]
			}
			app.Permissions = g.benignPermissions()
			if popular {
				// Flagship apps keep canonical canvas redirects.
				slug := strings.ToLower(strings.ReplaceAll(name, " ", ""))
				app.RedirectURI = "https://apps.facebook.com/" + slug
			} else {
				app.RedirectURI = g.benignRedirect(name)
			}
			if !popular && !cfg.Countermeasures.EnforceClientID &&
				g.rng.Bool(cfg.BenignClientIDMismatch) && prevID != "" {
				app.ClientID = prevID
			}
			if popular || g.rng.Bool(cfg.BenignProfilePostsRate) {
				app.ProfileFeed = g.benignProfileFeed(popular)
			}
		}
		app.MAU = g.benignMAU(popular)
		w.mustRegister(app)
		w.BenignIDs = append(w.BenignIDs, id)
		if popular {
			w.PopularIDs = append(w.PopularIDs, id)
		}
		w.installCrawlable[id] = g.rng.Bool(cfg.InstallCrawlBenignRate)
		w.feedCrawlable[id] = g.rng.Bool(cfg.FeedCrawlBenignRate)

		// Social Bakers vets the large majority of benign apps; 90% of
		// vetted apps rate >= 3 of 5 (§2.3).
		if popular || g.rng.Bool(0.92) {
			var stars float64
			if g.rng.Bool(0.9) {
				stars = 3 + g.rng.Float64()*2
			} else {
				stars = 1 + g.rng.Float64()*2
			}
			if err := w.SocialBakers.Vet(id, stars); err != nil {
				panic(fmt.Sprintf("synth: vet: %v", err))
			}
		}

		// True post volume: heavy-tailed; the victims dominate, like
		// FarmVille's 9.6M posts in Table 9.
		if popular {
			w.TruePosts[id] = int64(g.rng.ClampedPareto(8e5, 1.0, 1.2e7))
		} else {
			w.TruePosts[id] = int64(g.rng.ClampedPareto(3, 0.45, 5e5))
		}
		prevID = id
	}
}

// benignPermissions draws a benign permission set: 55% single-permission,
// with the Fig. 6 ordering of popular permissions.
func (g *generator) benignPermissions() []string {
	n := 1
	if !g.rng.Bool(g.cfg.BenignSinglePermRate) {
		n = 2 + int(g.rng.ClampedPareto(1, 1.1, 28))
	}
	set := make([]string, 0, n)
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			set = append(set, p)
		}
	}
	if g.rng.Bool(0.77) {
		add(fbplatform.PermPublishStream)
	}
	weighted := []struct {
		perm string
		w    float64
	}{
		{fbplatform.PermOfflineAccess, 8},
		{fbplatform.PermEmail, 6},
		{fbplatform.PermUserBirthday, 4},
		{fbplatform.PermPublishActions, 2},
	}
	for len(set) < n {
		r := g.rng.Float64() * 25
		var pick string
		for _, cand := range weighted {
			if r < cand.w {
				pick = cand.perm
				break
			}
			r -= cand.w
		}
		if pick == "" {
			pick = fbplatform.PermissionCatalog[g.rng.Intn(len(fbplatform.PermissionCatalog))]
		}
		add(pick)
	}
	return set
}

func (g *generator) benignRedirect(name string) string {
	slug := strings.ToLower(strings.ReplaceAll(name, " ", ""))
	switch {
	case g.rng.Bool(g.cfg.BenignFacebookRedirect):
		return "https://apps.facebook.com/" + slug
	case g.rng.Bool(g.cfg.BenignWOTUnknownRate / (1 - g.cfg.BenignFacebookRedirect)):
		return fmt.Sprintf("http://%s-site.example.net/start", slug)
	default:
		d := g.benignPartnerDomains[g.rng.Intn(len(g.benignPartnerDomains))]
		return fmt.Sprintf("http://%s/%s", d, slug)
	}
}

func (g *generator) benignMAU(popular bool) []int {
	var base float64
	if popular {
		base = 5e6 + g.rng.Float64()*3.5e7
	} else {
		base = g.rng.ClampedPareto(50, 0.4, 5e7)
	}
	mau := make([]int, 3)
	for i := range mau {
		mau[i] = int(base * g.rng.LogNormal(0, 0.3))
	}
	return mau
}

func (g *generator) benignProfileFeed(popular bool) []fbplatform.ProfilePost {
	n := int(g.rngProfile.ClampedPareto(1, 0.6, 900))
	if popular && n < 50 {
		n = 50 + g.rngProfile.Intn(400)
	}
	feed := make([]fbplatform.ProfilePost, 0, n)
	for i := 0; i < n; i++ {
		msg := fmt.Sprintf(benignMessages[g.rngProfile.Intn(len(benignMessages))], g.rngProfile.Intn(10000))
		feed = append(feed, fbplatform.ProfilePost{
			Message: msg,
			Month:   pickMonth(g.rngProfile, g.cfg.Months),
		})
	}
	return feed
}

// ---- Malicious side ----

func (g *generator) genHackers() {
	cfg := g.cfg
	nMal := cfg.NumMalicious()
	nHackers := cfg.NumHackers()

	// Heavy-tailed AppNet sizes: a few operators control most apps
	// (§6.1's top components hold 3484 / 770 / 589 / … apps).
	weights := make([]float64, nHackers)
	total := 0.0
	for i := range weights {
		weights[i] = g.rngEco.Pareto(1, 0.7)
		total += weights[i]
	}
	remaining := nMal
	for i := 0; i < nHackers; i++ {
		share := int(float64(nMal) * weights[i] / total)
		if share < 2 {
			share = 2
		}
		if i == nHackers-1 || share > remaining {
			share = remaining
		}
		h := &Hacker{
			ID:            i,
			Evasive:       g.rngEco.Bool(cfg.EvasiveHackerRate),
			Role:          make(map[string]Role),
			DirectTargets: make(map[string][]string),
		}
		for j := 0; j < share; j++ {
			h.AppIDs = append(h.AppIDs, g.ids.next())
		}
		remaining -= share
		g.w.Hackers = append(g.w.Hackers, h)
		if remaining <= 0 {
			break
		}
	}
	// Hosting domains: 1-4 per hacker. Blacklist coverage is assigned
	// later, per campaign, by quota (assignBlacklists).
	for _, h := range g.w.Hackers {
		nd := 1 + len(h.AppIDs)/40
		if nd > 4 {
			nd = 4
		}
		for d := 0; d < nd; d++ {
			h.Domains = append(h.Domains, scamDomain(h.ID, d))
		}
	}
	// Roles (Fig. 13): 25% promoters, 16.2% dual, rest promotees.
	for _, h := range g.w.Hackers {
		for _, id := range h.AppIDs {
			r := g.rngEco.Float64()
			switch {
			case r < cfg.PromoterRate:
				h.Role[id] = RolePromoter
			case r < cfg.PromoterRate+cfg.DualRate:
				h.Role[id] = RoleDual
			default:
				h.Role[id] = RolePromotee
			}
		}
		// Every AppNet needs at least one promoter and one promotee.
		if len(h.AppIDs) >= 2 {
			h.Role[h.AppIDs[0]] = RolePromoter
			h.Role[h.AppIDs[1]] = RolePromotee
		}
	}
}

// genSites builds the indirection websites (§6.1), a third hosted on
// amazonaws.com. Sites broadcast to a hacker's promotees — except members
// of clique campaigns, which promote internally only (their density is the
// whole point).
func (g *generator) genSites() {
	cfg := g.cfg
	inClique := map[string]bool{}
	for _, c := range g.campaigns {
		if c.clique {
			for _, id := range c.appIDs {
				inClique[id] = true
			}
		}
	}
	nSites := cfg.NumIndirectionSites()
	for s := 0; s < nSites; s++ {
		h := g.pickHackerWeighted()
		var host string
		if g.rngEco.Bool(cfg.AmazonHostedSiteRate) {
			host = "amazonaws.com"
		} else {
			host = h.Domains[g.rngEco.Intn(len(h.Domains))]
		}
		var targets []string
		for _, id := range h.AppIDs {
			if h.Role[id] == RolePromotee && !inClique[id] && g.rngEco.Bool(0.8) {
				targets = append(targets, fbplatform.InstallURL(id))
			}
		}
		if len(targets) == 0 {
			targets = []string{fbplatform.InstallURL(h.AppIDs[len(h.AppIDs)-1])}
		}
		site := redirector.NewSite(
			fmt.Sprintf("http://cdn%d.%s/r%d", h.ID, host, s),
			host, targets)
		h.Sites = append(h.Sites, site)
		g.w.Redirector.Add(site)
	}
}

// pickHackerWeighted picks a hacker with probability proportional to its
// app count, so large AppNets run most indirection sites.
func (g *generator) pickHackerWeighted() *Hacker {
	weights := make([]float64, len(g.w.Hackers))
	for i, h := range g.w.Hackers {
		weights[i] = float64(len(h.AppIDs))
	}
	return g.w.Hackers[g.rngEco.PickWeighted(weights)]
}

func (g *generator) genMaliciousApps() {
	cfg := g.cfg
	nameIdx := 0
	for _, h := range g.w.Hackers {
		// Split the hacker's apps into campaigns (name clusters) with a
		// heavy-tailed size distribution averaging cfg.AppsPerCampaignName.
		nCampaigns := len(h.AppIDs)/int(cfg.AppsPerCampaignName) + 1
		cweights := make([]float64, nCampaigns)
		ctotal := 0.0
		for i := range cweights {
			cweights[i] = g.rng.Pareto(1, 1.1)
			ctotal += cweights[i]
		}
		camps := make([]*campaign, nCampaigns)
		for i := range camps {
			// Lazy hackers reuse names that are already circulating (§4.2.1:
			// 627 different apps named 'The App'); otherwise mint a new one.
			var name string
			if len(g.usedCampaignNames) > 0 && g.rng.Bool(0.62) {
				name = g.usedCampaignNames[g.rng.Intn(len(g.usedCampaignNames))]
			} else {
				name = g.names.scamCampaignName(nameIdx)
				nameIdx++
				g.usedCampaignNames = append(g.usedCampaignNames, name)
			}
			camps[i] = g.newCampaign(h, name)
			h.Names = append(h.Names, name)
		}
		for ai, id := range h.AppIDs {
			var camp *campaign
			if ai < nCampaigns {
				camp = camps[ai] // every campaign gets at least one app
			} else {
				camp = camps[g.rng.PickWeighted(cweights)]
			}
			camp.appIDs = append(camp.appIDs, id)
			name := camp.name
			if camp.versioned && len(camp.appIDs) > 1 {
				name = fmt.Sprintf("%s v%d", camp.name, len(camp.appIDs)+2)
			}
			if g.rng.Bool(cfg.TyposquatRate) {
				name = typoOf(popularBenignNames[g.rng.Intn(len(popularBenignNames))])
			}
			g.registerMaliciousApp(h, camp, id, name)
		}
		// Clique formation favours large campaigns: a 26-app name cluster
		// that cross-promotes is exactly the paper's Fig. 15 neighbourhood.
		for _, camp := range camps {
			rate := g.cfg.CliqueCampaignRate / 6
			if len(camp.appIDs) >= 12 {
				rate = g.cfg.CliqueCampaignRate
			}
			camp.clique = g.rng.Bool(rate)
		}
		g.campaigns = append(g.campaigns, camps...)
	}
}

// typoOf drops one interior character from a popular name ('FarmVille' ->
// 'FarmVile').
func typoOf(name string) string {
	if len(name) < 4 {
		return name + "e"
	}
	i := len(name) / 2
	return name[:i] + name[i+1:]
}

// newCampaign builds the shared landing-link pool for one name cluster.
func (g *generator) newCampaign(h *Hacker, name string) *campaign {
	g.campaignSeq++
	c := &campaign{
		hacker:  h,
		id:      g.campaignSeq,
		name:    name,
		message: scamMessages[g.rng.Intn(len(scamMessages))],
		// Drawn independently per campaign: hacker-level correlation would
		// make MyPageKeeper's coverage collapse or saturate whenever one
		// large AppNet dominates a world.
		evasive: g.rng.Bool(g.cfg.EvasiveHackerRate),
		// A minority of campaigns tag versions onto the shared name
		// ('Profile Watchers v4.32'), which the §5.3 validation strips.
		versioned: g.rng.Bool(0.10),
	}
	nLinks := 1 + g.rng.Intn(3)
	for i := 0; i < nLinks; i++ {
		dom := h.Domains[g.rng.Intn(len(h.Domains))]
		long := fmt.Sprintf("http://%s/offer%d-%d", dom, h.ID, g.rng.Intn(1000))
		link := long
		if g.rng.Bool(g.cfg.MaliciousBitlyRate) {
			link = g.w.Bitly.Shorten(long)
		}
		c.landing = append(c.landing, link)
		c.landingLong = append(c.landingLong, long)
	}
	return c
}

// assignBlacklists feeds MPK's URL blacklists by quota: campaigns are
// visited in random order and blacklisted until the app-weighted coverage
// reaches CampaignBlacklistShare. Quota assignment keeps the MPK-detected
// fraction stable at any scale, where independent per-domain coin flips
// would be dominated by a handful of large hackers.
func (g *generator) assignBlacklists() {
	total := 0
	for _, c := range g.campaigns {
		total += len(c.appIDs)
	}
	if total == 0 {
		return
	}
	order := g.rngEco.Perm(len(g.campaigns))
	covered := 0
	for _, i := range order {
		if float64(covered)/float64(total) >= g.cfg.CampaignBlacklistShare {
			break
		}
		c := g.campaigns[i]
		c.blacklisted = true
		covered += len(c.appIDs)
		for j, long := range c.landingLong {
			g.w.addBlacklistedURL(long)
			g.flaggableLinks = append(g.flaggableLinks, c.landing[j])
		}
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func (g *generator) registerMaliciousApp(h *Hacker, camp *campaign, id, name string) {
	cfg := g.cfg
	app := &fbplatform.App{
		ID:   id,
		Name: name,
		Truth: fbplatform.Truth{
			Malicious:    true,
			HackerID:     h.ID,
			CampaignName: camp.name,
		},
	}
	if g.rng.Bool(cfg.PolishedMaliciousRate) {
		// A polished scam configured to look mostly legitimate: the
		// classifier's false negatives come from here (§5.2, §7). Each
		// disguise element is applied independently, so the population
		// blends into the benign profile without moving the paper's
		// per-feature marginals much.
		if g.rng.Bool(0.5) {
			app.Description = fmt.Sprintf("%s: the official app", name)
		}
		if g.rng.Bool(0.5) {
			app.Company = benignCompanies[g.rng.Intn(len(benignCompanies))]
		}
		if g.rng.Bool(0.5) {
			app.Category = benignCategories[g.rng.Intn(len(benignCategories))]
		}
		app.Permissions = g.benignPermissions()
		d := g.benignPartnerDomains[g.rng.Intn(len(g.benignPartnerDomains))]
		app.RedirectURI = fmt.Sprintf("http://%s/landing%s", d, id[len(id)-4:])
		if g.rng.Bool(0.6) {
			app.ProfileFeed = g.benignProfileFeed(false)
		}
	} else {
		if g.rng.Bool(cfg.MaliciousDescriptionRate) {
			app.Description = "The best app ever"
		}
		if g.rng.Bool(cfg.MaliciousCompanyRate) {
			app.Company = "App Studio"
		}
		if g.rng.Bool(cfg.MaliciousCategoryRate) {
			app.Category = benignCategories[g.rng.Intn(len(benignCategories))]
		}
		// Permissions: 97% request only publish_stream (§4.1.2).
		app.Permissions = []string{fbplatform.PermPublishStream}
		if !g.rng.Bool(cfg.MaliciousSinglePermRate) {
			extra := []string{fbplatform.PermOfflineAccess, fbplatform.PermEmail, fbplatform.PermUserBirthday}
			app.Permissions = append(app.Permissions, extra[:1+g.rng.Intn(len(extra))]...)
		}
		// Redirect URI on one of the hacker's hosting domains.
		dom := h.Domains[g.rng.Intn(len(h.Domains))]
		app.RedirectURI = fmt.Sprintf("http://%s/install%s", dom, id[len(id)-4:])
		// Client-ID indirection inside the AppNet (§4.1.4). Under the §7
		// enforcement, the platform rejects mismatched registrations, so
		// hackers are forced to comply.
		if !cfg.Countermeasures.EnforceClientID &&
			g.rng.Bool(cfg.MaliciousClientIDMismatchRate) && len(h.AppIDs) > 1 {
			other := h.AppIDs[g.rng.Intn(len(h.AppIDs))]
			if other != id {
				app.ClientID = other
			}
		}
		if g.rng.Bool(cfg.MaliciousProfilePostsRate) {
			app.ProfileFeed = g.maliciousProfileFeed(h)
		}
	}
	app.MAU = g.maliciousMAU()
	g.w.mustRegister(app)
	g.w.MaliciousIDs = append(g.w.MaliciousIDs, id)
	g.w.TruePosts[id] = int64(g.rng.ClampedPareto(2, 0.8, 1100))
	g.w.installCrawlable[id] = g.rng.Bool(cfg.InstallCrawlMaliciousRate)
	g.w.feedCrawlable[id] = g.rng.Bool(cfg.FeedCrawlMaliciousRate)
}

func (g *generator) maliciousMAU() []int {
	base := g.rng.ClampedPareto(20, 0.23, 2.6e5)
	mau := make([]int, 3)
	for i := range mau {
		mau[i] = int(base * g.rng.LogNormal(0, 0.5))
	}
	return mau
}

// maliciousProfileFeed: the 3% of malicious apps with profile posts use
// them to advertise scam URLs (§4.1.5).
func (g *generator) maliciousProfileFeed(h *Hacker) []fbplatform.ProfilePost {
	n := 1 + g.rngProfile.Intn(150)
	feed := make([]fbplatform.ProfilePost, 0, n)
	for i := 0; i < n; i++ {
		dom := h.Domains[g.rngProfile.Intn(len(h.Domains))]
		feed = append(feed, fbplatform.ProfilePost{
			Message: scamMessages[g.rngProfile.Intn(len(scamMessages))],
			Link:    fmt.Sprintf("http://%s/freebies%d", dom, i),
			Month:   pickMonth(g.rngProfile, g.cfg.Months),
		})
	}
	return feed
}

// ---- Reputation seeding ----

func (g *generator) seedReputations() {
	// Facebook's own domain is highly trusted.
	g.w.mustSetWOT("apps.facebook.com", 92)
	g.w.mustSetWOT("facebook.com", 93)
	for _, d := range g.benignPartnerDomains {
		g.w.mustSetWOT(d, 60+g.rng.Intn(36))
	}
	for _, d := range g.benignNewsDomains {
		g.w.mustSetWOT(d, 70+g.rng.Intn(28))
	}
	// Scam domains: 80% unknown to WOT, 15% known-bad (< 5), 5% mediocre
	// (Fig. 8). With few domains per world, independent coin flips would
	// be lumpy (one mis-classed domain can host a tenth of all malicious
	// apps), so classes are assigned by app-weighted quota instead.
	g.assignScamDomainReputations()
}

// assignScamDomainReputations distributes WOT classes over scam hosting
// domains so that the app-weighted class shares match the Fig. 8 targets
// at any world scale.
func (g *generator) assignScamDomainReputations() {
	cfg := g.cfg
	appsPerDomain := map[string]int{}
	for _, id := range g.w.MaliciousIDs {
		app, err := g.w.Platform.App(id)
		if err != nil {
			continue
		}
		d := wot.DomainOf(app.RedirectURI)
		if strings.Contains(d, "example") {
			continue // polished apps on partner domains are already scored
		}
		appsPerDomain[d]++
	}
	type domCount struct {
		dom  string
		apps int
	}
	doms := make([]domCount, 0, len(appsPerDomain))
	total := 0
	for d, n := range appsPerDomain {
		doms = append(doms, domCount{d, n})
		total += n
	}
	sort.Slice(doms, func(i, j int) bool {
		if doms[i].apps != doms[j].apps {
			return doms[i].apps > doms[j].apps
		}
		return doms[i].dom < doms[j].dom
	})
	targets := []float64{cfg.MaliciousWOTUnknownRate, cfg.MaliciousWOTLowRate,
		1 - cfg.MaliciousWOTUnknownRate - cfg.MaliciousWOTLowRate}
	assigned := []float64{0, 0, 0}
	for _, dc := range doms {
		// Give the domain to the class with the largest deficit.
		best, deficit := 0, -1.0
		for c := range targets {
			d := targets[c] - assigned[c]/float64(total)
			if d > deficit {
				deficit, best = d, c
			}
		}
		assigned[best] += float64(dc.apps)
		switch best {
		case 0:
			// absent from WOT
		case 1:
			g.w.mustSetWOT(dc.dom, g.rng.Intn(5))
		default:
			g.w.mustSetWOT(dc.dom, 5+g.rng.Intn(55))
		}
	}
}

// ---- Post streams ----

func (g *generator) genPosts() {
	for _, id := range g.w.BenignIDs {
		g.streamBenignAppPosts(id)
	}
	for _, camp := range g.campaigns {
		for _, id := range camp.appIDs {
			g.streamMaliciousAppPosts(camp, id)
		}
	}
	g.streamPiggybackPosts()
}

func (g *generator) streamBenignAppPosts(id string) {
	cfg := g.cfg
	rng := g.rngPosts
	n := int(g.w.TruePosts[id])
	if cap := g.materializeCap(id); n > cap {
		n = cap
	}
	// 80% of benign apps post no external links at all; the rest post a
	// few (Fig. 12).
	external := rng.Bool(cfg.BenignExternalLinkRate)
	extRate := 0.0
	if external {
		extRate = 0.02 + rng.Float64()*0.33
	}
	app, err := g.w.Platform.App(id)
	if err != nil {
		panic(fmt.Sprintf("synth: benign app %s vanished: %v", id, err))
	}
	slug := strings.ToLower(strings.ReplaceAll(app.Name, " ", ""))
	for i := 0; i < n; i++ {
		p := fbplatform.Post{
			AppID:       id,
			SourceAppID: id,
			UserID:      rng.Intn(cfg.NumUsers()),
			Message:     fmt.Sprintf(benignMessages[rng.Intn(len(benignMessages))], rng.Intn(100000)),
			Month:       pickMonth(rng, cfg.Months),
			Likes:       int(rng.ClampedPareto(1, 1.2, 500)),
		}
		switch {
		case external && rng.Bool(extRate):
			d := g.benignNewsDomains[rng.Intn(len(g.benignNewsDomains))]
			p.Link = fmt.Sprintf("http://%s/story%d", d, rng.Intn(5000))
		case rng.Bool(0.5):
			p.Link = "https://apps.facebook.com/" + slug
		}
		g.appPostsStreamed++
		g.w.observe(p)
	}
}

func (g *generator) streamMaliciousAppPosts(camp *campaign, id string) {
	cfg := g.cfg
	rng := g.rngPosts
	h := camp.hacker
	n := int(g.w.TruePosts[id])
	if n > cfg.MaxMaterializedPostsPerApp {
		n = cfg.MaxMaterializedPostsPerApp
	}
	role := h.Role[id]

	// Promotion link pool for this app. Under the §7 promotion ban the
	// pool stays empty and promoters fall back to landing links.
	var promoLinks []string
	switch {
	case cfg.Countermeasures.BlockAppPromotion:
	case role == RolePromoter || role == RoleDual:
		// Dual-role apps promote narrowly (direct sibling links); pure
		// promoters mostly broadcast through indirection sites.
		if role == RolePromoter && len(h.Sites) > 0 && !rng.Bool(cfg.DirectPromoterRate) {
			// Indirect promotion through 1-2 indirection sites.
			ns := 1
			if len(h.Sites) > 1 && rng.Bool(0.4) {
				ns = 2
			}
			for s := 0; s < ns; s++ {
				site := h.Sites[rng.Intn(len(h.Sites))]
				// Each campaign wraps its own tracking variant of the site
				// URL; the indirection site ignores the query string.
				tracked := fmt.Sprintf("%s?c=%d", site.URL, camp.id)
				promoLinks = append(promoLinks, g.w.Bitly.Shorten(tracked))
			}
		} else {
			// Direct links to sibling apps ('The App' promoted 24 others
			// named 'The App' or 'La App' — same-campaign siblings first).
			nTargets := 1 + rng.Intn(24)
			for t := 0; t < nTargets; t++ {
				var target string
				if len(camp.appIDs) > 1 && rng.Bool(0.8) {
					target = camp.appIDs[rng.Intn(len(camp.appIDs))]
				} else {
					target = h.AppIDs[rng.Intn(len(h.AppIDs))]
				}
				if target == id {
					continue
				}
				link := fbplatform.InstallURL(target)
				if rng.Bool(0.1) {
					link = g.w.Bitly.Shorten(link)
				}
				promoLinks = append(promoLinks, link)
				h.DirectTargets[id] = append(h.DirectTargets[id], target)
			}
		}
	}
	// Clique campaigns cross-promote internally regardless of role: every
	// member links its same-name siblings, forming the dense
	// neighbourhoods of Fig. 15 (22 of 'Death Predictor's 26 neighbours
	// share its name).
	var cliqueLinks []string
	if camp.clique && len(camp.appIDs) > 1 && !cfg.Countermeasures.BlockAppPromotion {
		for _, t := range rng.Perm(len(camp.appIDs)) {
			sib := camp.appIDs[t]
			if sib == id {
				continue
			}
			cliqueLinks = append(cliqueLinks, fbplatform.InstallURL(sib))
		}
	}

	for i := 0; i < n; i++ {
		var link string
		switch {
		case len(cliqueLinks) > 0 && rng.Bool(0.6):
			// Round-robin over the sibling list covers the whole clique.
			link = cliqueLinks[i%len(cliqueLinks)]
		case role == RolePromoter && len(promoLinks) > 0:
			link = promoLinks[rng.Intn(len(promoLinks))]
		case role == RoleDual && len(promoLinks) > 0 && rng.Bool(0.5):
			link = promoLinks[rng.Intn(len(promoLinks))]
		default:
			link = camp.landing[rng.Intn(len(camp.landing))]
		}
		msg := camp.message
		if camp.evasive {
			msg = fmt.Sprintf("%s [%d]", evasiveMessages[rng.Intn(len(evasiveMessages))], rng.Intn(1_000_000))
		}
		p := fbplatform.Post{
			AppID:         id,
			SourceAppID:   id,
			UserID:        rng.Intn(cfg.NumUsers()),
			Message:       msg,
			Link:          link,
			Month:         pickMonth(rng, cfg.Months),
			Likes:         rng.Intn(3),
			MaliciousLink: true,
		}
		g.appPostsStreamed++
		g.w.observe(p)
	}
}

// streamPiggybackPosts abuses prompt_feed to attribute scam posts to the
// popular victims (§6.2, Table 9, Fig. 16).
func (g *generator) streamPiggybackPosts() {
	cfg := g.cfg
	rng := g.rngPosts
	// Prefer hackers with blacklisted campaigns so victim posts get
	// flagged, which is what put FarmVille on MyPageKeeper's radar.
	blacklistedHackers := map[int]bool{}
	for _, c := range g.campaigns {
		if c.blacklisted {
			blacklistedHackers[c.hacker.ID] = true
		}
	}
	var flagged []*Hacker
	for _, h := range g.w.Hackers {
		if blacklistedHackers[h.ID] {
			flagged = append(flagged, h)
		}
	}
	if len(flagged) == 0 {
		flagged = g.w.Hackers
	}
	for _, victim := range g.w.PopularIDs {
		vn := int(g.w.TruePosts[victim])
		if cap := g.materializeCap(victim); vn > cap {
			vn = cap
		}
		n := int(float64(vn) * cfg.PiggybackPostFrac)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			h := flagged[rng.Intn(len(flagged))]
			source := h.AppIDs[rng.Intn(len(h.AppIDs))]
			long := fmt.Sprintf("http://%s/credits%d", h.Domains[0], h.ID)
			// Piggyback lures reuse the hackers' blacklisted campaign
			// infrastructure, so the monitor flags them. Routed through
			// the ingester: the first add per hacker must be ordered
			// against the queued stream (later adds are no-ops).
			g.w.addBlacklistedURL(long)
			link := g.w.Bitly.Shorten(long)
			post, err := g.w.Platform.PromptFeedPost(
				victim, source,
				rng.Intn(cfg.NumUsers()),
				scamMessages[rng.Intn(len(scamMessages))],
				link, pickMonth(rng, cfg.Months), true)
			if err != nil {
				if errors.Is(err, fbplatform.ErrPromptFeedPolicy) {
					g.w.PiggybackRejected++
					continue
				}
				panic(fmt.Sprintf("synth: prompt_feed: %v", err))
			}
			g.w.PiggybackPosts[victim]++
			g.appPostsStreamed++
			g.w.observe(post)
		}
	}
}

// materializeCap bounds per-app streamed posts. The piggybacking victims
// are the monitor's hottest apps by far (FarmVille alone contributes 9.6M
// of the paper's 91M posts), so they get a larger sample to keep the
// flagged-post attribution shares of §2.2 in proportion.
func (g *generator) materializeCap(id string) int {
	for _, p := range g.w.PopularIDs {
		if p == id {
			return 8 * g.cfg.MaxMaterializedPostsPerApp
		}
	}
	return g.cfg.MaxMaterializedPostsPerApp
}

// genManualPosts streams the app-less 37% of the feed: manual posts and
// social-plugin shares, a few of which spread the same scam URLs (§2.2).
func (g *generator) genManualPosts() {
	cfg := g.cfg
	rng := g.rngPosts
	n := int(float64(g.appPostsStreamed) * cfg.ManualPostFrac / (1 - cfg.ManualPostFrac))
	for i := 0; i < n; i++ {
		p := fbplatform.Post{
			UserID: rng.Intn(cfg.NumUsers()),
			Month:  pickMonth(rng, cfg.Months),
			Likes:  int(rng.ClampedPareto(1, 1.3, 300)),
		}
		if len(g.flaggableLinks) > 0 && rng.Bool(cfg.ManualScamShareRate) {
			// A user manually re-sharing a scam link they fell for.
			p.Link = g.flaggableLinks[rng.Intn(len(g.flaggableLinks))]
			p.Message = scamMessages[rng.Intn(len(scamMessages))]
			p.Likes = rng.Intn(3)
			p.MaliciousLink = true
			g.w.manualLinkCounts[p.Link]++
		} else if rng.Bool(0.4) {
			d := g.benignNewsDomains[rng.Intn(len(g.benignNewsDomains))]
			p.Link = fmt.Sprintf("http://%s/story%d", d, rng.Intn(5000))
			p.Message = fmt.Sprintf("interesting read %d", rng.Intn(100000))
		} else {
			p.Message = fmt.Sprintf("status update %d", rng.Intn(1_000_000))
		}
		g.w.observe(p)
	}
}

// ManualFlaggedPosts counts app-less posts whose URL ended up flagged — the
// paper's "27% of flagged posts have no associated application".
func (w *World) ManualFlaggedPosts() int64 {
	var n int64
	for link, count := range w.manualLinkCounts {
		if w.Monitor.URLFlagged(link) {
			n += count
		}
	}
	return n
}

// genClicks populates bit.ly click counters: every shortened link
// accumulates a heavy-tailed click count, calibrated so that per-app click
// sums reproduce Fig. 3 (60% of malicious apps above 100K clicks, 20%
// above 1M; the top app in the paper saw 1,742,359).
func (g *generator) genClicks() {
	apps := g.w.Monitor.Apps()
	// Apps() hands back a map; iterating it directly would pair links with
	// click draws in map order, making the world differ run to run for the
	// same seed. Walk the apps in sorted order so the RNG stream lands
	// deterministically.
	ids := make([]string, 0, len(apps))
	for id := range apps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	seen := map[string]bool{}
	for _, id := range ids {
		as := apps[id]
		for _, link := range as.Links {
			if !g.w.Bitly.IsShort(link) || seen[link] {
				continue
			}
			seen[link] = true
			clicks := int64(g.rngEco.ClampedPareto(2.2e4, 0.5, 1.7e6))
			if err := g.w.Bitly.AddClicks(link, clicks); err != nil {
				panic(fmt.Sprintf("synth: clicks: %v", err))
			}
		}
	}
}

// scheduleDeletions assigns Facebook's removal times (§5.3 timeline).
func (g *generator) scheduleDeletions() {
	cfg := g.cfg
	for _, id := range g.w.MaliciousIDs {
		r := g.rngEco.Float64()
		switch {
		case r < cfg.MaliciousDeletedByCrawl:
			g.w.deleteMonth[id] = g.rngEco.IntBetween(2, cfg.CrawlMonth-1)
		case r < cfg.MaliciousDeletedByValidation:
			g.w.deleteMonth[id] = g.rngEco.IntBetween(cfg.CrawlMonth+1, cfg.ValidationMonth-1)
		}
	}
	for _, id := range g.w.BenignIDs {
		if g.rngEco.Bool(cfg.BenignDeletedByCrawl) {
			g.w.deleteMonth[id] = g.rngEco.IntBetween(2, cfg.CrawlMonth-1)
		}
	}
}
