// Package modelreg is a versioned, content-addressed model registry on a
// plain directory — the storage substrate of the train→publish→validate→
// swap→rollback loop (§5's "keep the classifier current as the blacklist
// grows" deployment story).
//
// Layout under the registry root:
//
//	objects/sha256-<hex>.gob    immutable payloads, content-addressed
//	manifests/v<%08d>.json      one JSON manifest per published version
//	CURRENT                     the active version number
//
// Every write goes through fsx.WriteAtomic (temp file in the same
// directory + fsync + rename + directory fsync), so a reader — another
// process included — never observes a half-written artifact, and a crash
// right after Publish cannot roll the registry back to a pre-publish
// view. Payloads are verified against their manifest's sha256 on every
// load, so silent corruption surfaces as ErrCorrupt instead of a garbage
// model reaching a serving process. Publishing never mutates an existing
// object: rolling back to a prior version therefore restores bit-identical
// model bytes.
package modelreg

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"frappe/internal/fsx"
)

// Metrics is the classifier-quality summary a manifest carries; it mirrors
// the three measures the paper reports (accuracy, false-positive rate,
// false-negative rate) plus the sample count they were measured over.
type Metrics struct {
	Accuracy float64 `json:"accuracy"`
	FPRate   float64 `json:"fp_rate"`
	FNRate   float64 `json:"fn_rate"`
	Samples  int     `json:"samples"`
}

// CompileInfo records how a published payload's compiled inference
// artifact was produced and how faithfully it tracks the exact model —
// the provenance a serving process needs to know what form it is about
// to pin, and an auditor needs to reconstruct the compile bit-for-bit
// (mode + RFF dim + seed + quantization are the whole recipe).
type CompileInfo struct {
	// Mode is the compile mode ("exact" or "rff").
	Mode string `json:"mode"`
	// RFFDim is the random-Fourier-feature dimension (rff mode only).
	RFFDim int `json:"rff_dim,omitempty"`
	// Seed drove the RFF frequency sampling (rff mode only).
	Seed int64 `json:"seed,omitempty"`
	// Quantized reports float32 weight quantization.
	Quantized bool `json:"quantized,omitempty"`
	// HoldoutAccuracy is the compiled form's accuracy on the same holdout
	// that gated the model's own promotion.
	HoldoutAccuracy float64 `json:"holdout_accuracy,omitempty"`
	// AgreementRate is the fraction of holdout verdicts on which the
	// compiled form agrees with the exact model (1 = bit-identical labels).
	AgreementRate float64 `json:"agreement_rate,omitempty"`
	// MaxDecisionDrift is the largest |exact - compiled| decision-value
	// gap observed over the holdout.
	MaxDecisionDrift float64 `json:"max_decision_drift,omitempty"`
}

// Manifest describes one published model version.
type Manifest struct {
	// Version is the registry-assigned monotone version number (>= 1).
	Version int `json:"version"`
	// SHA256 is the hex checksum of the payload; also its object key.
	SHA256 string `json:"sha256"`
	// FeatureMode names the feature set ("lite", "full", "robust", ...).
	FeatureMode string `json:"feature_mode"`
	// TrainingFingerprint identifies the labeled snapshot the model was
	// trained on (a hash over IDs + labels), so an unchanged corpus is
	// recognisable without retraining.
	TrainingFingerprint string `json:"training_fingerprint,omitempty"`
	// TrainedRecords is the size of the training split.
	TrainedRecords int `json:"trained_records"`
	// CV carries the cross-validation metrics measured on the training
	// snapshot; Holdout the shadow-evaluation metrics on the held-out
	// split that gated promotion.
	CV      Metrics  `json:"cv_metrics"`
	Holdout *Metrics `json:"holdout_metrics,omitempty"`
	// Compile describes the compiled inference artifact embedded in the
	// payload, nil when the payload serves through the exact kernel
	// expansion only.
	Compile *CompileInfo `json:"compile,omitempty"`
	// CreatedAt is the publish time (UTC).
	CreatedAt time.Time `json:"created_at"`
	// Notes is free-form provenance ("initial frappeserve model", ...).
	Notes string `json:"notes,omitempty"`
}

// ModelID is the compact serving identity of this manifest: the version
// number plus a checksum prefix, e.g. "v3-9f86d081". Content addressing
// makes it stable across rollback: re-activating version 3 yields the same
// ID, and therefore the same verdict-cache key space.
func (m Manifest) ModelID() string {
	sum := m.SHA256
	if len(sum) > 8 {
		sum = sum[:8]
	}
	return fmt.Sprintf("v%d-%s", m.Version, sum)
}

// Registry errors. ErrCorrupt wraps checksum mismatches and undecodable
// manifests; callers must treat it as "do not serve this artifact".
var (
	ErrEmpty    = errors.New("modelreg: registry has no published versions")
	ErrNotFound = errors.New("modelreg: version not found")
	ErrCorrupt  = errors.New("modelreg: artifact corrupt")
)

// Registry is a model store rooted at a directory. The zero value is not
// usable; construct with Open. Safe for concurrent use within a process;
// cross-process publishers are serialised by the atomicity of rename but
// should nominate a single writer.
type Registry struct {
	root string
	now  func() time.Time // test seam

	mu sync.Mutex // serialises version allocation and CURRENT updates
}

const (
	objectsDir   = "objects"
	manifestsDir = "manifests"
	currentFile  = "CURRENT"
)

// Open creates (if needed) and opens a registry rooted at dir.
func Open(dir string) (*Registry, error) {
	for _, d := range []string{dir, filepath.Join(dir, objectsDir), filepath.Join(dir, manifestsDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("modelreg: creating %s: %w", d, err)
		}
	}
	return &Registry{root: dir, now: time.Now}, nil
}

// Dir returns the registry root directory.
func (r *Registry) Dir() string { return r.root }

func (r *Registry) objectPath(sum string) string {
	return filepath.Join(r.root, objectsDir, "sha256-"+sum+".gob")
}

func (r *Registry) manifestPath(version int) string {
	return filepath.Join(r.root, manifestsDir, fmt.Sprintf("v%08d.json", version))
}

// Publish stores a payload and registers it as the next version, which
// becomes the active (CURRENT) one. The meta manifest provides provenance
// (feature mode, fingerprint, metrics, notes); Version, SHA256 and
// CreatedAt are assigned by the registry. The returned manifest is the
// stored one.
func (r *Registry) Publish(payload io.Reader, meta Manifest) (Manifest, error) {
	data, err := io.ReadAll(payload)
	if err != nil {
		return Manifest{}, fmt.Errorf("modelreg: reading payload: %w", err)
	}
	if len(data) == 0 {
		return Manifest{}, errors.New("modelreg: refusing to publish empty payload")
	}
	sum := sha256.Sum256(data)
	meta.SHA256 = hex.EncodeToString(sum[:])
	meta.CreatedAt = r.now().UTC()

	// Content-addressed object: if an identical payload is already stored
	// (a rollback-by-republish, say), the existing object is reused.
	objPath := r.objectPath(meta.SHA256)
	if _, err := os.Stat(objPath); errors.Is(err, os.ErrNotExist) {
		if err := fsx.WriteAtomic(objPath, data); err != nil {
			return Manifest{}, fmt.Errorf("modelreg: writing object: %w", err)
		}
	} else if err != nil {
		return Manifest{}, fmt.Errorf("modelreg: probing object: %w", err)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	versions, err := r.versions()
	if err != nil {
		return Manifest{}, err
	}
	meta.Version = 1
	if n := len(versions); n > 0 {
		meta.Version = versions[n-1] + 1
	}
	mdata, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return Manifest{}, fmt.Errorf("modelreg: encoding manifest: %w", err)
	}
	if err := fsx.WriteAtomic(r.manifestPath(meta.Version), append(mdata, '\n')); err != nil {
		return Manifest{}, fmt.Errorf("modelreg: writing manifest: %w", err)
	}
	if err := r.setCurrentLocked(meta.Version); err != nil {
		return Manifest{}, err
	}
	publishTotal.With().Inc()
	versionsGauge.Set(float64(len(versions) + 1))
	currentGauge.Set(float64(meta.Version))
	return meta, nil
}

// versions lists the published version numbers in ascending order.
func (r *Registry) versions() ([]int, error) {
	entries, err := os.ReadDir(filepath.Join(r.root, manifestsDir))
	if err != nil {
		return nil, fmt.Errorf("modelreg: listing manifests: %w", err)
	}
	var out []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "v") || !strings.HasSuffix(name, ".json") {
			continue
		}
		v, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "v"), ".json"))
		if err != nil || v < 1 {
			continue
		}
		out = append(out, v)
	}
	sort.Ints(out)
	return out, nil
}

// Get reads one version's manifest.
func (r *Registry) Get(version int) (Manifest, error) {
	data, err := os.ReadFile(r.manifestPath(version))
	if errors.Is(err, os.ErrNotExist) {
		return Manifest{}, fmt.Errorf("%w: v%d", ErrNotFound, version)
	}
	if err != nil {
		return Manifest{}, fmt.Errorf("modelreg: reading manifest v%d: %w", version, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		loadTotal.With("corrupt").Inc()
		return Manifest{}, fmt.Errorf("%w: manifest v%d undecodable: %v", ErrCorrupt, version, err)
	}
	if m.Version != version || m.SHA256 == "" {
		loadTotal.With("corrupt").Inc()
		return Manifest{}, fmt.Errorf("%w: manifest v%d inconsistent (version=%d sha256=%q)",
			ErrCorrupt, version, m.Version, m.SHA256)
	}
	return m, nil
}

// Payload reads one version's model bytes, verifying them against the
// manifest checksum. A mismatch — truncated rename target, bit rot, a
// hand-edited object — is reported as ErrCorrupt and nothing is returned.
func (r *Registry) Payload(version int) ([]byte, Manifest, error) {
	m, err := r.Get(version)
	if err != nil {
		return nil, Manifest{}, err
	}
	data, err := os.ReadFile(r.objectPath(m.SHA256))
	if errors.Is(err, os.ErrNotExist) {
		loadTotal.With("missing_object").Inc()
		return nil, Manifest{}, fmt.Errorf("%w: v%d object %s missing", ErrCorrupt, version, m.SHA256)
	}
	if err != nil {
		loadTotal.With("error").Inc()
		return nil, Manifest{}, fmt.Errorf("modelreg: reading object for v%d: %w", version, err)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != m.SHA256 {
		loadTotal.With("checksum_mismatch").Inc()
		return nil, Manifest{}, fmt.Errorf("%w: v%d checksum mismatch: manifest %s, object %s",
			ErrCorrupt, version, m.SHA256, got)
	}
	loadTotal.With("ok").Inc()
	return data, m, nil
}

// Latest returns the active version's manifest: the one CURRENT points at,
// or the highest published version when no CURRENT pointer exists (e.g. a
// registry written by an older tool). ErrEmpty when nothing is published.
func (r *Registry) Latest() (Manifest, error) {
	if data, err := os.ReadFile(filepath.Join(r.root, currentFile)); err == nil {
		v, perr := strconv.Atoi(strings.TrimSpace(string(data)))
		if perr == nil && v >= 1 {
			m, gerr := r.Get(v)
			if gerr == nil {
				return m, nil
			}
			// A CURRENT pointing at a missing/corrupt manifest falls
			// through to the highest healthy version.
		}
	}
	versions, err := r.versions()
	if err != nil {
		return Manifest{}, err
	}
	if len(versions) == 0 {
		return Manifest{}, ErrEmpty
	}
	return r.Get(versions[len(versions)-1])
}

// List returns every published manifest in ascending version order,
// skipping corrupt manifests (they are still visible to GC).
func (r *Registry) List() ([]Manifest, error) {
	versions, err := r.versions()
	if err != nil {
		return nil, err
	}
	out := make([]Manifest, 0, len(versions))
	for _, v := range versions {
		m, err := r.Get(v)
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				continue
			}
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// SetCurrent re-points the active version — the rollback primitive. The
// target's payload is checksum-verified first, so rollback can never
// activate a corrupt artifact.
func (r *Registry) SetCurrent(version int) error {
	if _, _, err := r.Payload(version); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.setCurrentLocked(version); err != nil {
		return err
	}
	rollbackTotal.With().Inc()
	currentGauge.Set(float64(version))
	return nil
}

func (r *Registry) setCurrentLocked(version int) error {
	if err := fsx.WriteAtomic(filepath.Join(r.root, currentFile), []byte(strconv.Itoa(version)+"\n")); err != nil {
		return fmt.Errorf("modelreg: updating CURRENT: %w", err)
	}
	return nil
}

// GC removes all but the newest keep versions; the active (CURRENT)
// version is always retained regardless of age. Objects no longer
// referenced by any surviving manifest are deleted too. Returns the number
// of versions removed.
func (r *Registry) GC(keep int) (int, error) {
	if keep < 1 {
		return 0, errors.New("modelreg: GC keep must be >= 1")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	versions, err := r.versions()
	if err != nil {
		return 0, err
	}
	if len(versions) <= keep {
		return 0, nil
	}
	current := 0
	if data, err := os.ReadFile(filepath.Join(r.root, currentFile)); err == nil {
		if v, perr := strconv.Atoi(strings.TrimSpace(string(data))); perr == nil {
			current = v
		}
	}
	cut := versions[:len(versions)-keep]
	removed := 0
	for _, v := range cut {
		if v == current {
			continue
		}
		if err := os.Remove(r.manifestPath(v)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return removed, fmt.Errorf("modelreg: removing manifest v%d: %w", v, err)
		}
		removed++
	}
	if err := r.sweepObjectsLocked(); err != nil {
		return removed, err
	}
	gcRemovedTotal.Add(uint64(removed))
	if live, err := r.versions(); err == nil {
		versionsGauge.Set(float64(len(live)))
	}
	return removed, nil
}

// sweepObjectsLocked removes objects unreferenced by any manifest.
func (r *Registry) sweepObjectsLocked() error {
	versions, err := r.versions()
	if err != nil {
		return err
	}
	live := make(map[string]bool, len(versions))
	for _, v := range versions {
		m, err := r.Get(v)
		if err != nil {
			continue // keep objects of unreadable manifests
		}
		live[m.SHA256] = true
	}
	entries, err := os.ReadDir(filepath.Join(r.root, objectsDir))
	if err != nil {
		return fmt.Errorf("modelreg: listing objects: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "sha256-") || !strings.HasSuffix(name, ".gob") {
			continue
		}
		sum := strings.TrimSuffix(strings.TrimPrefix(name, "sha256-"), ".gob")
		if live[sum] {
			continue
		}
		if err := os.Remove(filepath.Join(r.root, objectsDir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("modelreg: removing object %s: %w", name, err)
		}
	}
	return nil
}
