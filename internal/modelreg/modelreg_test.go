package modelreg

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T) *Registry {
	t.Helper()
	r, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r.now = func() time.Time { return time.Unix(1_700_000_000, 0) }
	return r
}

func publish(t *testing.T, r *Registry, payload string, meta Manifest) Manifest {
	t.Helper()
	m, err := r.Publish(bytes.NewReader([]byte(payload)), meta)
	if err != nil {
		t.Fatalf("Publish(%q): %v", payload, err)
	}
	return m
}

func TestPublishLatestGetList(t *testing.T) {
	r := open(t)
	if _, err := r.Latest(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Latest on empty registry = %v, want ErrEmpty", err)
	}

	m1 := publish(t, r, "model-one", Manifest{FeatureMode: "lite", TrainedRecords: 10})
	m2 := publish(t, r, "model-two", Manifest{FeatureMode: "full", TrainedRecords: 20})
	if m1.Version != 1 || m2.Version != 2 {
		t.Fatalf("versions = %d, %d; want 1, 2", m1.Version, m2.Version)
	}
	if m1.SHA256 == m2.SHA256 {
		t.Error("distinct payloads share a checksum")
	}
	if m1.CreatedAt.IsZero() {
		t.Error("CreatedAt not stamped")
	}

	latest, err := r.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if latest.Version != 2 || latest.FeatureMode != "full" {
		t.Errorf("Latest = %+v, want v2/full", latest)
	}

	got, err := r.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.FeatureMode != "lite" || got.TrainedRecords != 10 {
		t.Errorf("Get(1) = %+v", got)
	}
	if _, err := r.Get(42); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(42) = %v, want ErrNotFound", err)
	}

	list, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Version != 1 || list[1].Version != 2 {
		t.Errorf("List = %+v", list)
	}

	data, m, err := r.Payload(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "model-one" || m.Version != 1 {
		t.Errorf("Payload(1) = %q, %+v", data, m)
	}
}

func TestModelIDStableAcrossRollback(t *testing.T) {
	r := open(t)
	m1 := publish(t, r, "alpha", Manifest{})
	publish(t, r, "beta", Manifest{})
	if err := r.SetCurrent(1); err != nil {
		t.Fatal(err)
	}
	cur, err := r.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if cur.ModelID() != m1.ModelID() {
		t.Errorf("rolled-back ModelID = %s, want %s", cur.ModelID(), m1.ModelID())
	}
}

func TestSetCurrentRejectsMissingAndCorrupt(t *testing.T) {
	r := open(t)
	m := publish(t, r, "payload", Manifest{})
	if err := r.SetCurrent(9); !errors.Is(err, ErrNotFound) {
		t.Errorf("SetCurrent(9) = %v, want ErrNotFound", err)
	}
	// Corrupt the object behind v1: SetCurrent must refuse.
	if err := os.WriteFile(r.objectPath(m.SHA256), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.SetCurrent(1); !errors.Is(err, ErrCorrupt) {
		t.Errorf("SetCurrent(corrupt v1) = %v, want ErrCorrupt", err)
	}
}

func TestPayloadDetectsCorruption(t *testing.T) {
	r := open(t)
	m := publish(t, r, "healthy", Manifest{})

	// Bit rot in the object.
	if err := os.WriteFile(r.objectPath(m.SHA256), []byte("rotted!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Payload(1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Payload over rotted object = %v, want ErrCorrupt", err)
	}

	// Missing object.
	if err := os.Remove(r.objectPath(m.SHA256)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Payload(1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Payload over missing object = %v, want ErrCorrupt", err)
	}

	// Undecodable manifest.
	if err := os.WriteFile(r.manifestPath(1), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get over garbage manifest = %v, want ErrCorrupt", err)
	}
}

func TestLatestFallsBackPastBrokenCurrent(t *testing.T) {
	r := open(t)
	publish(t, r, "one", Manifest{})
	publish(t, r, "two", Manifest{})
	if err := os.WriteFile(filepath.Join(r.root, currentFile), []byte("999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := r.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 2 {
		t.Errorf("Latest with dangling CURRENT = v%d, want v2", m.Version)
	}
}

func TestGCRetentionKeepsCurrentAndNewest(t *testing.T) {
	r := open(t)
	var sums []string
	for i := 1; i <= 5; i++ {
		m := publish(t, r, fmt.Sprintf("model-%d", i), Manifest{})
		sums = append(sums, m.SHA256)
	}
	// Pin v1 as current, then keep only the newest 2: v1 must survive the
	// cut anyway, v2/v3 go, v4/v5 stay.
	if err := r.SetCurrent(1); err != nil {
		t.Fatal(err)
	}
	removed, err := r.GC(2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("GC removed %d versions, want 2", removed)
	}
	list, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	var versions []int
	for _, m := range list {
		versions = append(versions, m.Version)
	}
	want := []int{1, 4, 5}
	if len(versions) != len(want) || versions[0] != 1 || versions[1] != 4 || versions[2] != 5 {
		t.Errorf("surviving versions = %v, want %v", versions, want)
	}
	// Objects of removed versions are swept; survivors' objects remain.
	for i, sum := range sums {
		_, err := os.Stat(r.objectPath(sum))
		surviving := i == 0 || i >= 3
		if surviving && err != nil {
			t.Errorf("object for v%d missing after GC: %v", i+1, err)
		}
		if !surviving && !errors.Is(err, os.ErrNotExist) {
			t.Errorf("object for v%d not swept (err=%v)", i+1, err)
		}
	}
	// The pinned current version still loads cleanly.
	if _, _, err := r.Payload(1); err != nil {
		t.Errorf("current version unloadable after GC: %v", err)
	}
}

func TestPublishDedupsIdenticalPayloads(t *testing.T) {
	r := open(t)
	m1 := publish(t, r, "same-bytes", Manifest{})
	m2 := publish(t, r, "same-bytes", Manifest{})
	if m1.SHA256 != m2.SHA256 {
		t.Fatalf("identical payloads hashed differently: %s vs %s", m1.SHA256, m2.SHA256)
	}
	entries, err := os.ReadDir(filepath.Join(r.root, objectsDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("objects dir holds %d files, want 1 (content-addressed dedup)", len(entries))
	}
}

func TestConcurrentPublishAssignsDistinctVersions(t *testing.T) {
	r := open(t)
	const n = 8
	var wg sync.WaitGroup
	versions := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := r.Publish(bytes.NewReader([]byte(fmt.Sprintf("m%d", i))), Manifest{})
			if err != nil {
				t.Errorf("publish %d: %v", i, err)
				return
			}
			versions[i] = m.Version
		}(i)
	}
	wg.Wait()
	seen := make(map[int]bool, n)
	for _, v := range versions {
		if v < 1 || v > n || seen[v] {
			t.Fatalf("bad version assignment: %v", versions)
		}
		seen[v] = true
	}
}
