package modelreg

import "frappe/internal/telemetry"

// Registry metric families (process default registry):
//
//	frappe_modelreg_publish_total         published model versions
//	frappe_modelreg_load_total{result}    payload loads: ok / corrupt /
//	                                      checksum_mismatch / missing_object / error
//	frappe_modelreg_rollback_total        SetCurrent re-points (rollbacks/pins)
//	frappe_modelreg_gc_removed_total      versions removed by retention GC
//	frappe_modelreg_versions              published versions currently retained
//	frappe_modelreg_current_version       the active (CURRENT) version number
var (
	publishTotal = telemetry.Default().Counter("frappe_modelreg_publish_total",
		"Model versions published to the registry.")
	loadTotal = telemetry.Default().Counter("frappe_modelreg_load_total",
		"Model payload loads, by result.", "result")
	rollbackTotal = telemetry.Default().Counter("frappe_modelreg_rollback_total",
		"Explicit SetCurrent re-points (rollbacks and pins).")
	gcRemovedTotal = telemetry.Default().Counter("frappe_modelreg_gc_removed_total",
		"Model versions removed by retention GC.").With()
	versionsGauge = telemetry.Default().Gauge("frappe_modelreg_versions",
		"Published model versions currently retained.").With()
	currentGauge = telemetry.Default().Gauge("frappe_modelreg_current_version",
		"The registry's active (CURRENT) model version.").With()
)
