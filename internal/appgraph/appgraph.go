// Package appgraph implements the AppNet forensics of the paper's §6: the
// Collaboration graph whose nodes are apps and whose directed edges record
// that one app promoted (posted a link to) another. It provides the role
// breakdown of Fig. 13 (promoter / promotee / dual-role), connected
// components (Fig. 1, §6.1), degree statistics, and local clustering
// coefficients (Fig. 14, Fig. 15).
package appgraph

import (
	"sort"
)

// Graph is a directed promotion graph over app IDs. The zero value is an
// empty graph ready to use.
type Graph struct {
	out map[string]map[string]bool // promoter -> set of promotees
	in  map[string]map[string]bool // promotee -> set of promoters
}

// New returns an empty promotion graph.
func New() *Graph {
	return &Graph{
		out: make(map[string]map[string]bool),
		in:  make(map[string]map[string]bool),
	}
}

// AddEdge records that promoter posted a link to promotee. Self-promotion
// edges (an app linking to its own install page) are ignored: the paper's
// collusion analysis is about apps promoting *other* apps. Duplicate edges
// collapse.
func (g *Graph) AddEdge(promoter, promotee string) {
	if promoter == promotee {
		return
	}
	if g.out == nil {
		g.out = make(map[string]map[string]bool)
		g.in = make(map[string]map[string]bool)
	}
	if g.out[promoter] == nil {
		g.out[promoter] = make(map[string]bool)
	}
	g.out[promoter][promotee] = true
	if g.in[promotee] == nil {
		g.in[promotee] = make(map[string]bool)
	}
	g.in[promotee][promoter] = true
}

// Nodes returns all app IDs that appear in at least one edge, sorted.
func (g *Graph) Nodes() []string {
	set := make(map[string]bool, len(g.out)+len(g.in))
	for v := range g.out {
		set[v] = true
	}
	for v := range g.in {
		set[v] = true
	}
	nodes := make([]string, 0, len(set))
	for v := range set {
		nodes = append(nodes, v)
	}
	sort.Strings(nodes)
	return nodes
}

// NumNodes returns the number of apps in the graph.
func (g *Graph) NumNodes() int {
	set := make(map[string]bool, len(g.out)+len(g.in))
	for v := range g.out {
		set[v] = true
	}
	for v := range g.in {
		set[v] = true
	}
	return len(set)
}

// NumEdges returns the number of distinct directed edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, tos := range g.out {
		n += len(tos)
	}
	return n
}

// HasEdge reports whether promoter promotes promotee.
func (g *Graph) HasEdge(promoter, promotee string) bool {
	return g.out[promoter][promotee]
}

// Roles is the Fig. 13 breakdown of collusion roles.
type Roles struct {
	Promoters []string // apps with out-edges only
	Promotees []string // apps with in-edges only
	Dual      []string // apps with both
}

// Roles classifies every node as pure promoter, pure promotee, or dual.
// The paper counts 1,584 promoters (i.e. all apps with out-edges) promoting
// 3,723 promotees (apps with in-edges); the 1,024 dual-role apps appear in
// both counts. Use PromoterCount / PromoteeCount for those overlapping
// totals.
func (g *Graph) Roles() Roles {
	var r Roles
	for _, v := range g.Nodes() {
		hasOut := len(g.out[v]) > 0
		hasIn := len(g.in[v]) > 0
		switch {
		case hasOut && hasIn:
			r.Dual = append(r.Dual, v)
		case hasOut:
			r.Promoters = append(r.Promoters, v)
		case hasIn:
			r.Promotees = append(r.Promotees, v)
		}
	}
	return r
}

// PromoterCount returns the number of apps with at least one out-edge
// (the paper's "1,584 promoter apps").
func (g *Graph) PromoterCount() int {
	n := 0
	for _, tos := range g.out {
		if len(tos) > 0 {
			n++
		}
	}
	return n
}

// PromoteeCount returns the number of apps with at least one in-edge
// (the paper's "3,723 other apps").
func (g *Graph) PromoteeCount() int {
	n := 0
	for _, froms := range g.in {
		if len(froms) > 0 {
			n++
		}
	}
	return n
}

// neighbors returns the undirected neighbour set of v (union of in and out).
func (g *Graph) neighbors(v string) map[string]bool {
	nb := make(map[string]bool, len(g.out[v])+len(g.in[v]))
	for u := range g.out[v] {
		nb[u] = true
	}
	for u := range g.in[v] {
		nb[u] = true
	}
	return nb
}

// Degree returns the undirected degree of v: the number of distinct apps it
// collaborates with in either direction. This is the paper's "number of
// collaborations" (§6.1 reports a max of 417 and that 70% of apps collude
// with more than 10 others).
func (g *Graph) Degree(v string) int { return len(g.neighbors(v)) }

// Degrees returns the undirected degree of every node, keyed by app ID.
func (g *Graph) Degrees() map[string]int {
	d := make(map[string]int)
	for _, v := range g.Nodes() {
		d[v] = g.Degree(v)
	}
	return d
}

// connected reports whether u and v share an edge in either direction.
func (g *Graph) connected(u, v string) bool {
	return g.out[u][v] || g.out[v][u]
}

// LocalClusteringCoefficient returns the local clustering coefficient of v
// over the undirected collaboration graph: the number of edges among v's
// neighbours divided by the maximum possible. Nodes with fewer than two
// neighbours have coefficient 0 (a disconnected neighbourhood), matching
// the convention in the paper's footnote to Fig. 14.
func (g *Graph) LocalClusteringCoefficient(v string) float64 {
	nb := g.neighbors(v)
	k := len(nb)
	if k < 2 {
		return 0
	}
	list := make([]string, 0, k)
	for u := range nb {
		list = append(list, u)
	}
	links := 0
	for i := 0; i < len(list); i++ {
		for j := i + 1; j < len(list); j++ {
			if g.connected(list[i], list[j]) {
				links++
			}
		}
	}
	return float64(2*links) / float64(k*(k-1))
}

// ClusteringCoefficients returns the local clustering coefficient for every
// node, keyed by app ID (the distribution behind Fig. 14).
func (g *Graph) ClusteringCoefficients() map[string]float64 {
	out := make(map[string]float64)
	for _, v := range g.Nodes() {
		out[v] = g.LocalClusteringCoefficient(v)
	}
	return out
}

// Component is one weakly connected component, its members sorted.
type Component struct {
	Members []string
}

// Size returns the number of apps in the component.
func (c Component) Size() int { return len(c.Members) }

// ConnectedComponents returns the weakly connected components of the graph,
// largest first (ties broken by smallest member ID). The paper finds 44
// components among 6,331 colluding apps, the top five having sizes
// 3484, 770, 589, 296 and 247.
func (g *Graph) ConnectedComponents() []Component {
	seen := make(map[string]bool)
	var comps []Component
	for _, start := range g.Nodes() {
		if seen[start] {
			continue
		}
		var members []string
		stack := []string{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, v)
			for u := range g.neighbors(v) {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Strings(members)
		comps = append(comps, Component{Members: members})
	}
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].Size() != comps[j].Size() {
			return comps[i].Size() > comps[j].Size()
		}
		return comps[i].Members[0] < comps[j].Members[0]
	})
	return comps
}

// AverageDegree returns the mean undirected degree across all nodes
// (Fig. 1's caption reports an average degree of 195 inside the snapshot
// component). Returns 0 for an empty graph.
func (g *Graph) AverageDegree() float64 {
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return 0
	}
	total := 0
	for _, v := range nodes {
		total += g.Degree(v)
	}
	return float64(total) / float64(len(nodes))
}

// Subgraph returns a new graph containing only edges between apps in keep.
func (g *Graph) Subgraph(keep []string) *Graph {
	set := make(map[string]bool, len(keep))
	for _, v := range keep {
		set[v] = true
	}
	sub := New()
	for from, tos := range g.out {
		if !set[from] {
			continue
		}
		for to := range tos {
			if set[to] {
				sub.AddEdge(from, to)
			}
		}
	}
	return sub
}

// Neighborhood returns v's undirected neighbours, sorted — the Fig. 15
// "Death Predictor" style local view.
func (g *Graph) Neighborhood(v string) []string {
	nb := g.neighbors(v)
	out := make([]string, 0, len(nb))
	for u := range nb {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
