package appgraph

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("a", "b") // duplicate collapses
	g.AddEdge("b", "c")
	g.AddEdge("x", "x") // self-loop ignored

	if got := g.NumEdges(); got != 2 {
		t.Errorf("NumEdges = %d, want 2", got)
	}
	if got := g.NumNodes(); got != 3 {
		t.Errorf("NumNodes = %d, want 3", got)
	}
	if !g.HasEdge("a", "b") || g.HasEdge("b", "a") {
		t.Error("edge direction wrong")
	}
	if g.HasEdge("x", "x") {
		t.Error("self-loop should be ignored")
	}
}

func TestZeroValueGraph(t *testing.T) {
	var g Graph
	g.AddEdge("a", "b")
	if !g.HasEdge("a", "b") {
		t.Error("zero-value graph should accept edges")
	}
	if g.NumNodes() != 2 {
		t.Errorf("NumNodes = %d", g.NumNodes())
	}
}

func TestRoles(t *testing.T) {
	g := New()
	// p1 -> m1, p1 -> d1, d1 -> m1, d1 -> m2
	g.AddEdge("p1", "m1")
	g.AddEdge("p1", "d1")
	g.AddEdge("d1", "m1")
	g.AddEdge("d1", "m2")

	r := g.Roles()
	if len(r.Promoters) != 1 || r.Promoters[0] != "p1" {
		t.Errorf("Promoters = %v", r.Promoters)
	}
	if len(r.Promotees) != 2 {
		t.Errorf("Promotees = %v", r.Promotees)
	}
	if len(r.Dual) != 1 || r.Dual[0] != "d1" {
		t.Errorf("Dual = %v", r.Dual)
	}
	// Paper-style overlapping totals.
	if g.PromoterCount() != 2 { // p1 and d1
		t.Errorf("PromoterCount = %d, want 2", g.PromoterCount())
	}
	if g.PromoteeCount() != 3 { // m1, m2, d1
		t.Errorf("PromoteeCount = %d, want 3", g.PromoteeCount())
	}
}

func TestDegree(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "a") // same undirected pair
	g.AddEdge("a", "c")
	if d := g.Degree("a"); d != 2 {
		t.Errorf("Degree(a) = %d, want 2", d)
	}
	if d := g.Degree("b"); d != 1 {
		t.Errorf("Degree(b) = %d, want 1", d)
	}
	if d := g.Degree("missing"); d != 0 {
		t.Errorf("Degree(missing) = %d, want 0", d)
	}
}

func TestLocalClusteringCoefficient(t *testing.T) {
	// Triangle: every node has coefficient 1.
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "a")
	for _, v := range []string{"a", "b", "c"} {
		if c := g.LocalClusteringCoefficient(v); c != 1 {
			t.Errorf("triangle lcc(%s) = %v, want 1", v, c)
		}
	}

	// Star: centre has coefficient 0.
	s := New()
	s.AddEdge("hub", "x")
	s.AddEdge("hub", "y")
	s.AddEdge("hub", "z")
	if c := s.LocalClusteringCoefficient("hub"); c != 0 {
		t.Errorf("star hub lcc = %v, want 0", c)
	}
	// Leaves have <2 neighbours -> 0.
	if c := s.LocalClusteringCoefficient("x"); c != 0 {
		t.Errorf("leaf lcc = %v, want 0", c)
	}
}

func TestClusteringCoefficientPartial(t *testing.T) {
	// v connected to a,b,c; only a-b among neighbours -> 1/3.
	g := New()
	g.AddEdge("v", "a")
	g.AddEdge("v", "b")
	g.AddEdge("v", "c")
	g.AddEdge("a", "b")
	got := g.LocalClusteringCoefficient("v")
	if math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("lcc = %v, want 1/3", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("x", "y")
	g.AddEdge("p", "q")
	g.AddEdge("q", "r")
	g.AddEdge("r", "s")

	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if comps[0].Size() != 4 || comps[1].Size() != 3 || comps[2].Size() != 2 {
		t.Errorf("sizes = %d,%d,%d want 4,3,2",
			comps[0].Size(), comps[1].Size(), comps[2].Size())
	}
}

func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 30
		for i := 0; i < 60; i++ {
			a := fmt.Sprintf("app%d", rng.Intn(n))
			b := fmt.Sprintf("app%d", rng.Intn(n))
			g.AddEdge(a, b)
		}
		comps := g.ConnectedComponents()
		seen := map[string]int{}
		total := 0
		for i, c := range comps {
			total += c.Size()
			for _, m := range c.Members {
				if prev, dup := seen[m]; dup {
					t.Logf("node %s in components %d and %d", m, prev, i)
					return false
				}
				seen[m] = i
			}
		}
		return total == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestComponentsAreConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := New()
	for i := 0; i < 100; i++ {
		g.AddEdge(fmt.Sprintf("a%d", rng.Intn(40)), fmt.Sprintf("a%d", rng.Intn(40)))
	}
	for _, c := range g.ConnectedComponents() {
		if c.Size() == 1 {
			continue
		}
		// BFS within the component must reach every member.
		set := map[string]bool{}
		for _, m := range c.Members {
			set[m] = true
		}
		visited := map[string]bool{c.Members[0]: true}
		queue := []string{c.Members[0]}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighborhood(v) {
				if set[u] && !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
		if len(visited) != c.Size() {
			t.Fatalf("component of size %d only reaches %d nodes", c.Size(), len(visited))
		}
	}
}

func TestAverageDegree(t *testing.T) {
	g := New()
	if d := g.AverageDegree(); d != 0 {
		t.Errorf("empty graph avg degree = %v", d)
	}
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	// degrees: a=1, b=2, c=1 -> 4/3
	if d := g.AverageDegree(); math.Abs(d-4.0/3) > 1e-9 {
		t.Errorf("avg degree = %v, want 4/3", d)
	}
}

func TestSubgraph(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "d")
	sub := g.Subgraph([]string{"a", "b", "c"})
	if !sub.HasEdge("a", "b") || !sub.HasEdge("b", "c") {
		t.Error("subgraph lost internal edges")
	}
	if sub.HasEdge("c", "d") || sub.NumNodes() != 3 {
		t.Error("subgraph kept external edge")
	}
}

func TestNeighborhood(t *testing.T) {
	g := New()
	g.AddEdge("v", "a")
	g.AddEdge("b", "v")
	nb := g.Neighborhood("v")
	if len(nb) != 2 || nb[0] != "a" || nb[1] != "b" {
		t.Errorf("Neighborhood = %v", nb)
	}
}

func TestDenseCliqueCoefficients(t *testing.T) {
	// A clique of 10: every lcc = 1, avg degree = 9.
	g := New()
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			g.AddEdge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", j))
		}
	}
	for v, c := range g.ClusteringCoefficients() {
		if c != 1 {
			t.Errorf("clique lcc(%s) = %v", v, c)
		}
	}
	if d := g.AverageDegree(); d != 9 {
		t.Errorf("clique avg degree = %v", d)
	}
}

func TestCoefficientRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		for i := 0; i < 40; i++ {
			g.AddEdge(fmt.Sprintf("n%d", rng.Intn(15)), fmt.Sprintf("n%d", rng.Intn(15)))
		}
		for _, c := range g.ClusteringCoefficients() {
			if c < 0 || c > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := New()
	for i := 0; i < 20000; i++ {
		g.AddEdge(fmt.Sprintf("a%d", rng.Intn(6000)), fmt.Sprintf("a%d", rng.Intn(6000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ConnectedComponents()
	}
}
