package appgraph

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func clique(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", j))
		}
	}
	return g
}

func TestDegreeHistogram(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("a", "c")
	// degrees: a=2, b=1, c=1
	h := g.DegreeHistogram()
	if len(h) != 2 {
		t.Fatalf("hist = %v", h)
	}
	if h[0].Degree != 1 || h[0].Count != 2 || h[1].Degree != 2 || h[1].Count != 1 {
		t.Errorf("hist = %v", h)
	}
	total := 0
	for _, dc := range h {
		total += dc.Count
	}
	if total != g.NumNodes() {
		t.Errorf("histogram covers %d of %d nodes", total, g.NumNodes())
	}
}

func TestKCoreOnCliqueWithTail(t *testing.T) {
	g := clique(5) // every clique node has degree 4
	// Attach a tail: t1 - t2 - c0.
	g.AddEdge("t1", "t2")
	g.AddEdge("t2", "c0")

	core3 := g.KCore(3)
	if core3.NumNodes() != 5 {
		t.Errorf("3-core nodes = %d, want the 5-clique", core3.NumNodes())
	}
	if core3.HasEdge("t2", "c0") || core3.Degree("t2") != 0 {
		t.Error("tail survived the 3-core")
	}
	// 5-core of a 5-clique (degree 4) is empty.
	if n := g.KCore(5).NumNodes(); n != 0 {
		t.Errorf("5-core nodes = %d, want 0", n)
	}
	// 0-core keeps everything.
	if n := g.KCore(0).NumNodes(); n != g.NumNodes() {
		t.Errorf("0-core nodes = %d, want %d", n, g.NumNodes())
	}
}

func TestCoreness(t *testing.T) {
	g := clique(4) // coreness 3 for all
	g.AddEdge("tail", "c0")
	core := g.Coreness()
	for i := 0; i < 4; i++ {
		if got := core[fmt.Sprintf("c%d", i)]; got != 3 {
			t.Errorf("coreness(c%d) = %d, want 3", i, got)
		}
	}
	if core["tail"] != 1 {
		t.Errorf("coreness(tail) = %d, want 1", core["tail"])
	}
}

func TestCorenessMatchesKCore(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := New()
	for i := 0; i < 150; i++ {
		g.AddEdge(fmt.Sprintf("n%d", rng.Intn(30)), fmt.Sprintf("n%d", rng.Intn(30)))
	}
	core := g.Coreness()
	for k := 1; k <= 4; k++ {
		inKCore := map[string]bool{}
		for _, v := range g.KCore(k).Nodes() {
			inKCore[v] = true
		}
		for v, c := range core {
			if (c >= k) != inKCore[v] {
				t.Fatalf("k=%d node %s: coreness %d but kcore membership %v", k, v, c, inKCore[v])
			}
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "a") // same undirected edge
	g.AddEdge("b", "c")

	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, map[string]string{"a": "Death Predictor"}, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph appnet {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Errorf("not a DOT document:\n%s", out)
	}
	if strings.Count(out, `"a" -- "b"`) != 1 {
		t.Errorf("undirected edge should appear once:\n%s", out)
	}
	if !strings.Contains(out, `"Death Predictor"`) {
		t.Error("label missing")
	}
	// Subset rendering drops external edges.
	buf.Reset()
	if err := g.WriteDOT(&buf, nil, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"c"`) {
		t.Error("excluded node rendered")
	}
	// Determinism.
	var buf2 bytes.Buffer
	if err := g.WriteDOT(&buf2, nil, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("DOT output not deterministic")
	}
}
