package appgraph

import (
	"fmt"
	"io"
	"sort"
)

// DegreeHistogram returns the undirected degree distribution as a sorted
// slice of (degree, count) pairs — the data behind degree-CCDF plots of
// collusion intensity (§6.1's "70% of the apps collude with more than 10
// other apps").
func (g *Graph) DegreeHistogram() []DegreeCount {
	hist := map[int]int{}
	for _, d := range g.Degrees() {
		hist[d]++
	}
	out := make([]DegreeCount, 0, len(hist))
	for d, c := range hist {
		out = append(out, DegreeCount{Degree: d, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Degree < out[j].Degree })
	return out
}

// DegreeCount is one row of a degree histogram.
type DegreeCount struct {
	Degree int
	Count  int
}

// KCore returns the maximal subgraph in which every node has undirected
// degree >= k (computed by iterative peeling). The k-core is the standard
// measure of the "large and highly-dense connected components" the paper
// highlights: a dense AppNet survives aggressive peeling.
func (g *Graph) KCore(k int) *Graph {
	alive := map[string]bool{}
	for _, v := range g.Nodes() {
		alive[v] = true
	}
	deg := map[string]int{}
	for v := range alive {
		deg[v] = g.Degree(v)
	}
	changed := true
	for changed {
		changed = false
		for v := range alive {
			if deg[v] < k {
				delete(alive, v)
				changed = true
				for u := range g.neighbors(v) {
					if alive[u] {
						deg[u]--
					}
				}
			}
		}
	}
	keep := make([]string, 0, len(alive))
	for v := range alive {
		keep = append(keep, v)
	}
	return g.Subgraph(keep)
}

// Coreness returns, for every node, the largest k such that the node
// belongs to the k-core.
func (g *Graph) Coreness() map[string]int {
	// Batagelj–Zaveršnik style peeling over degree buckets.
	deg := g.Degrees()
	core := make(map[string]int, len(deg))
	// Bucket nodes by current degree.
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	buckets := make([][]string, maxDeg+1)
	for v, d := range deg {
		buckets[d] = append(buckets[d], v)
	}
	removed := map[string]bool{}
	cur := map[string]int{}
	for v, d := range deg {
		cur[v] = d
	}
	for d := 0; d <= maxDeg; d++ {
		for i := 0; i < len(buckets[d]); i++ {
			v := buckets[d][i]
			if removed[v] || cur[v] != d {
				continue
			}
			removed[v] = true
			core[v] = d
			for u := range g.neighbors(v) {
				if removed[u] || cur[u] <= d {
					continue
				}
				cur[u]--
				if cur[u] >= 0 && cur[u] <= maxDeg {
					buckets[cur[u]] = append(buckets[cur[u]], u)
				}
			}
		}
	}
	// Coreness is monotone: a node's value is at least the peel level it
	// survived to; patch any missed stragglers defensively.
	for v := range deg {
		if _, ok := core[v]; !ok {
			core[v] = cur[v]
		}
	}
	return core
}

// WriteDOT renders the undirected collaboration view of the graph in
// Graphviz DOT format — `dot -Tpng` turns the Fig. 1 snapshot into the
// paper's hairball. labels maps node IDs to display names (nil keeps IDs);
// nodes limits the output to a subset (nil renders everything).
func (g *Graph) WriteDOT(w io.Writer, labels map[string]string, nodes []string) error {
	keep := map[string]bool{}
	if nodes == nil {
		for _, v := range g.Nodes() {
			keep[v] = true
		}
	} else {
		for _, v := range nodes {
			keep[v] = true
		}
	}
	if _, err := fmt.Fprintln(w, "graph appnet {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, `  node [shape=point];`); err != nil {
		return err
	}
	for v := range keep {
		if label, ok := labels[v]; ok {
			if _, err := fmt.Fprintf(w, "  %q [label=%q shape=ellipse];\n", v, label); err != nil {
				return err
			}
		}
	}
	// Emit each undirected pair once, in sorted order for determinism.
	var edges []string
	seen := map[string]bool{}
	for _, v := range g.Nodes() {
		if !keep[v] {
			continue
		}
		for u := range g.neighbors(v) {
			if !keep[u] {
				continue
			}
			a, b := v, u
			if a > b {
				a, b = b, a
			}
			key := a + "--" + b
			if seen[key] {
				continue
			}
			seen[key] = true
			edges = append(edges, fmt.Sprintf("  %q -- %q;", a, b))
		}
	}
	sort.Strings(edges)
	for _, e := range edges {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
