package fbplatform

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func tokenWorld(t *testing.T) *Platform {
	t.Helper()
	p := New(100)
	apps := []*App{
		{
			ID: "spammy", Name: "Free iPad",
			Permissions: []string{PermPublishStream},
			Truth:       Truth{Malicious: true},
		},
		{
			ID: "game", Name: "Happy Farm",
			Permissions: []string{PermPublishStream, PermEmail, PermUserBirthday},
			Truth:       Truth{HackerID: -1},
		},
		{
			ID: "readonly", Name: "Quiet Quiz",
			Permissions: []string{PermEmail},
			Truth:       Truth{HackerID: -1},
		},
		{
			ID: "gone", Name: "Removed",
			Permissions: []string{PermPublishStream},
			Truth:       Truth{Malicious: true},
		},
	}
	for _, a := range apps {
		if err := p.Register(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInstallIssuesScopedToken(t *testing.T) {
	p := tokenWorld(t)
	tok, err := p.InstallApp(7, "game")
	if err != nil {
		t.Fatal(err)
	}
	if tok.AppID != "game" || tok.UserID != 7 {
		t.Errorf("token binding wrong: %+v", tok)
	}
	if len(tok.Scopes) != 3 || !tok.HasScope(PermEmail) || !tok.HasScope(PermPublishStream) {
		t.Errorf("scopes = %v", tok.Scopes)
	}
	if tok.HasScope(PermOfflineAccess) {
		t.Error("ungranted scope present")
	}
	if p.Installs("game") != 1 {
		t.Errorf("Installs = %d", p.Installs("game"))
	}
	// Resolving the token returns the same binding.
	got, err := p.TokenInfo(tok.Token)
	if err != nil || got.AppID != "game" {
		t.Errorf("TokenInfo = %+v, %v", got, err)
	}
}

func TestInstallValidation(t *testing.T) {
	p := tokenWorld(t)
	if _, err := p.InstallApp(-1, "game"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("negative user err = %v", err)
	}
	if _, err := p.InstallApp(1000, "game"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("out-of-range user err = %v", err)
	}
	if _, err := p.InstallApp(1, "missing"); !errors.Is(err, ErrAppNotFound) {
		t.Errorf("missing app err = %v", err)
	}
	if _, err := p.InstallApp(1, "gone"); !errors.Is(err, ErrAppDeleted) {
		t.Errorf("deleted app err = %v", err)
	}
	// Double install returns the original token.
	tok1, err := p.InstallApp(2, "game")
	if err != nil {
		t.Fatal(err)
	}
	tok2, err := p.InstallApp(2, "game")
	if !errors.Is(err, ErrAlreadyGranted) {
		t.Errorf("reinstall err = %v", err)
	}
	if tok2.Token != tok1.Token {
		t.Error("reinstall minted a new token")
	}
	if p.Installs("game") != 1 {
		t.Errorf("Installs after reinstall = %d", p.Installs("game"))
	}
}

func TestPostWithToken(t *testing.T) {
	p := tokenWorld(t)
	tok, err := p.InstallApp(3, "spammy")
	if err != nil {
		t.Fatal(err)
	}
	post, err := p.PostWithToken(tok.Token, "FREE iPad for everyone!", "http://scam.example/ipad", 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if post.AppID != "spammy" || post.UserID != 3 || !post.MaliciousLink {
		t.Errorf("post = %+v", post)
	}
	// The token is a bearer credential: "forwarding it to the hackers"
	// (Fig. 2 step 5) needs no extra ceremony — the same string works for
	// any caller, which is the point of the paper's flow diagram.
	again, err := p.PostWithToken(tok.Token, "another", "", 3, false)
	if err != nil || again.UserID != 3 {
		t.Errorf("forwarded token post = %+v, %v", again, err)
	}
}

func TestPostRequiresPublishStream(t *testing.T) {
	p := tokenWorld(t)
	tok, err := p.InstallApp(4, "readonly")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PostWithToken(tok.Token, "hi", "", 0, false); !errors.Is(err, ErrScopeDenied) {
		t.Errorf("post without publish_stream err = %v", err)
	}
	if _, err := p.PostWithToken("EAABbogus", "hi", "", 0, false); !errors.Is(err, ErrTokenNotFound) {
		t.Errorf("bogus token err = %v", err)
	}
}

func TestRevokeToken(t *testing.T) {
	p := tokenWorld(t)
	tok, err := p.InstallApp(5, "spammy")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RevokeToken(tok.Token); err != nil {
		t.Fatal(err)
	}
	if _, err := p.TokenInfo(tok.Token); !errors.Is(err, ErrTokenNotFound) {
		t.Errorf("revoked token still resolves: %v", err)
	}
	if err := p.RevokeToken(tok.Token); !errors.Is(err, ErrTokenNotFound) {
		t.Errorf("double revoke err = %v", err)
	}
	// After revocation the user can reinstall and gets a fresh token.
	tok2, err := p.InstallApp(5, "spammy")
	if err != nil {
		t.Fatal(err)
	}
	if tok2.Token == tok.Token {
		t.Error("reissued token should differ")
	}
}

func TestReadProfileWithToken(t *testing.T) {
	p := tokenWorld(t)
	tok, err := p.InstallApp(6, "game")
	if err != nil {
		t.Fatal(err)
	}
	fields, err := p.ReadProfileWithToken(tok.Token)
	if err != nil {
		t.Fatal(err)
	}
	if fields[PermEmail] == "" || fields[PermUserBirthday] == "" {
		t.Errorf("granted fields missing: %v", fields)
	}
	// The spammy app holds only publish_stream: no personal data.
	tok2, err := p.InstallApp(6, "spammy")
	if err != nil {
		t.Fatal(err)
	}
	fields2, err := p.ReadProfileWithToken(tok2.Token)
	if err != nil {
		t.Fatal(err)
	}
	if len(fields2) != 0 {
		t.Errorf("ungranted harvest: %v", fields2)
	}
}

func TestTokenFlowConcurrency(t *testing.T) {
	p := tokenWorld(t)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			tok, err := p.InstallApp(u%100, "game")
			if err != nil && !errors.Is(err, ErrAlreadyGranted) {
				t.Errorf("install: %v", err)
				return
			}
			if _, err := p.PostWithToken(tok.Token, fmt.Sprintf("post %d", u), "", 0, false); err != nil {
				t.Errorf("post: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if got := p.Installs("game"); got != 50 {
		t.Errorf("Installs = %d, want 50", got)
	}
}

func TestTokensUniquePerGrant(t *testing.T) {
	p := tokenWorld(t)
	seen := map[string]bool{}
	for u := 0; u < 30; u++ {
		tok, err := p.InstallApp(u, "spammy")
		if err != nil {
			t.Fatal(err)
		}
		if seen[tok.Token] {
			t.Fatalf("token reuse across grants: %s", tok.Token)
		}
		seen[tok.Token] = true
	}
}
