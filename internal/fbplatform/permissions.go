package fbplatform

// The 2012-era Facebook platform defined a pool of 64 permissions that an
// app could request at install time (§4.1.2 of the paper). The catalogue
// below reproduces that pool; the first few entries are the ones the paper's
// Fig. 6 reports as the most requested by benign and malicious apps.
const (
	PermPublishStream  = "publish_stream"
	PermOfflineAccess  = "offline_access"
	PermUserBirthday   = "user_birthday"
	PermEmail          = "email"
	PermPublishActions = "publish_actions"
)

// PermissionCatalog is the full pool of permissions apps choose from.
// Its length is fixed at 64, matching the platform the paper measured.
var PermissionCatalog = []string{
	PermPublishStream,
	PermOfflineAccess,
	PermUserBirthday,
	PermEmail,
	PermPublishActions,
	"user_about_me",
	"user_activities",
	"user_checkins",
	"user_education_history",
	"user_events",
	"user_groups",
	"user_hometown",
	"user_interests",
	"user_likes",
	"user_location",
	"user_notes",
	"user_photos",
	"user_questions",
	"user_relationships",
	"user_relationship_details",
	"user_religion_politics",
	"user_status",
	"user_subscriptions",
	"user_videos",
	"user_website",
	"user_work_history",
	"friends_about_me",
	"friends_activities",
	"friends_birthday",
	"friends_checkins",
	"friends_education_history",
	"friends_events",
	"friends_groups",
	"friends_hometown",
	"friends_interests",
	"friends_likes",
	"friends_location",
	"friends_notes",
	"friends_photos",
	"friends_questions",
	"friends_relationships",
	"friends_relationship_details",
	"friends_religion_politics",
	"friends_status",
	"friends_subscriptions",
	"friends_videos",
	"friends_website",
	"friends_work_history",
	"read_friendlists",
	"read_insights",
	"read_mailbox",
	"read_requests",
	"read_stream",
	"xmpp_login",
	"ads_management",
	"create_event",
	"manage_friendlists",
	"manage_notifications",
	"user_online_presence",
	"friends_online_presence",
	"manage_pages",
	"rsvp_event",
	"sms",
	"create_note",
}

// ValidPermission reports whether name is in the catalogue.
func ValidPermission(name string) bool {
	_, ok := permissionSet[name]
	return ok
}

var permissionSet = func() map[string]struct{} {
	m := make(map[string]struct{}, len(PermissionCatalog))
	for _, p := range PermissionCatalog {
		m[p] = struct{}{}
	}
	return m
}()
