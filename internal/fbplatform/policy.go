package fbplatform

import (
	"errors"
	"fmt"
)

// Policy captures the two §7 "recommendations to Facebook" as enforceable
// platform rules, so the reproduction can measure what the paper only
// proposes:
//
//  1. "the client ID field in the URL to which the user is redirected must
//     be identical to the app ID of the original app" — EnforceClientID;
//  2. "Facebook should restrict users from using arbitrary app IDs in
//     their prompt feed API" — AuthenticatePromptFeed.
type Policy struct {
	// EnforceClientID rejects app registrations whose install client_id
	// differs from the app's own ID, killing the §4.1.4 survivability
	// trick ("we are not aware of any valid uses").
	EnforceClientID bool
	// AuthenticatePromptFeed verifies that prompt_feed posts really come
	// from the application named by api_key, killing §6.2 piggybacking.
	AuthenticatePromptFeed bool
}

// Policy violations.
var (
	ErrClientIDPolicy   = errors.New("fbplatform: policy: client_id must equal the app ID")
	ErrPromptFeedPolicy = errors.New("fbplatform: policy: prompt_feed api_key does not match the posting app")
)

// SetPolicy installs platform-wide enforcement rules. Registrations and
// prompt_feed calls after this point are checked; existing apps keep their
// recorded client IDs (enforcement is at admission, like the real
// platform's would be).
func (p *Platform) SetPolicy(policy Policy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.policy = policy
}

// PolicyInEffect returns the current enforcement rules.
func (p *Platform) PolicyInEffect() Policy {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.policy
}

// checkRegister applies admission-time policy to a new app. Callers hold
// no lock; Register calls this under its own lock.
func (p *Platform) checkRegisterLocked(app *App) error {
	if p.policy.EnforceClientID && app.ClientID != "" && app.ClientID != app.ID {
		return fmt.Errorf("%w (app %s, client_id %s)", ErrClientIDPolicy, app.ID, app.ClientID)
	}
	return nil
}

// checkPromptFeed applies the authentication rule to a prompt_feed call.
func (p *Platform) checkPromptFeed(apiKey, trueSourceID string) error {
	p.mu.RLock()
	enforce := p.policy.AuthenticatePromptFeed
	p.mu.RUnlock()
	if enforce && apiKey != trueSourceID {
		return fmt.Errorf("%w (api_key %s, caller %s)", ErrPromptFeedPolicy, apiKey, trueSourceID)
	}
	return nil
}
