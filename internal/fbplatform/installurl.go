package fbplatform

import (
	"net/url"
	"strings"
)

// InstallURLPrefix is the canonical prefix of application installation
// URLs, as printed throughout the paper.
const InstallURLPrefix = "https://www.facebook.com/apps/application.php?id="

// InstallURL returns the installation URL for an app ID. Promotion posts
// that link directly to other apps (§6.1 "posting direct links to other
// apps") carry exactly these URLs.
func InstallURL(appID string) string {
	return InstallURLPrefix + url.QueryEscape(appID)
}

// ParseInstallURL extracts the app ID from an installation URL. The second
// result reports whether raw is an installation URL at all. This is how the
// forensics pipeline recognises direct app-promotion links in posts.
func ParseInstallURL(raw string) (string, bool) {
	if !strings.HasPrefix(raw, "https://www.facebook.com/apps/application.php") &&
		!strings.HasPrefix(raw, "http://www.facebook.com/apps/application.php") &&
		!strings.HasPrefix(raw, "https://apps.facebook.com/") {
		return "", false
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", false
	}
	if strings.HasSuffix(u.Host, "apps.facebook.com") {
		// Canvas-style URL: https://apps.facebook.com/<id-or-namespace>
		id := strings.Trim(u.Path, "/")
		if id == "" {
			return "", false
		}
		return id, true
	}
	id := u.Query().Get("id")
	if id == "" {
		return "", false
	}
	return id, true
}
