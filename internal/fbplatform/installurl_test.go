package fbplatform

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestParseInstallURL(t *testing.T) {
	cases := []struct {
		raw string
		id  string
		ok  bool
	}{
		{"https://www.facebook.com/apps/application.php?id=12345", "12345", true},
		{"http://www.facebook.com/apps/application.php?id=9", "9", true},
		{"https://apps.facebook.com/farmville", "farmville", true},
		{"https://apps.facebook.com/", "", false},
		{"https://www.facebook.com/apps/application.php", "", false},
		{"http://evil.example/apps/application.php?id=1", "", false},
		{"", "", false},
		{"not a url at all", "", false},
	}
	for _, c := range cases {
		id, ok := ParseInstallURL(c.raw)
		if id != c.id || ok != c.ok {
			t.Errorf("ParseInstallURL(%q) = (%q,%v), want (%q,%v)", c.raw, id, ok, c.id, c.ok)
		}
	}
}

// Property: InstallURL/ParseInstallURL round-trip any app ID the platform
// can mint.
func TestInstallURLRoundTripProperty(t *testing.T) {
	f := func(n uint32) bool {
		id := fmt.Sprintf("2%014d", n)
		got, ok := ParseInstallURL(InstallURL(id))
		return ok && got == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
