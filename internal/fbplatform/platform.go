// Package fbplatform simulates the 2012-era Facebook third-party application
// platform that the paper measures: applications with numeric IDs, free-text
// summaries, install-time permission grants chosen from a 64-entry
// catalogue, installation URLs whose client_id may differ from the visited
// app's ID (§4.1.4), app profile feeds (§4.1.5), monthly-active-user counts,
// app deletion ("removed from the Facebook graph"), and the lax
// prompt_feed API that lets anyone attribute a post to any app ID (§6.2,
// "app piggybacking").
//
// The platform is the substrate underneath the Graph-API HTTP service
// (internal/graphapi) and the synthetic world generator (internal/synth).
package fbplatform

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Common errors returned by platform lookups.
var (
	ErrAppNotFound = errors.New("fbplatform: app not found")
	ErrAppDeleted  = errors.New("fbplatform: app deleted from graph")
	ErrBadRequest  = errors.New("fbplatform: bad request")
)

// App is a third-party application registered on the platform. The three
// Summary fields (Description, Company, Category) are what the Open Graph
// API exposes; malicious apps typically leave them empty (§4.1.1).
type App struct {
	ID          string
	Name        string
	Description string
	Company     string
	Category    string

	// Permissions are the install-time permission names requested from the
	// user, drawn from PermissionCatalog.
	Permissions []string

	// RedirectURI is where the user lands after installing (§4.1.3).
	RedirectURI string

	// ClientID is the app ID encoded in the installation redirect. For
	// honest apps ClientID == ID; 78% of malicious apps point it at a
	// different app of the same campaign (§4.1.4).
	ClientID string

	// MAU is the monthly-active-user series, one sample per observed month.
	MAU []int

	// ProfileFeed is the app profile page's post list (§4.1.5).
	ProfileFeed []ProfilePost

	// Deleted marks the app as removed from the Facebook graph; Graph API
	// lookups then return false, which the paper uses as a validation
	// signal (§5.3).
	Deleted bool

	// Truth carries generator-side ground truth. It is NOT exposed through
	// the Graph API; classifiers never see it.
	Truth Truth
}

// Truth is hidden ground-truth metadata attached by the generator and used
// only for evaluation.
type Truth struct {
	Malicious bool
	// HackerID identifies the AppNet operator controlling the app
	// (-1 for benign apps).
	HackerID int
	// CampaignName is the shared base name of the hacker's campaign.
	CampaignName string
}

// ProfilePost is a post on an app's profile page.
type ProfilePost struct {
	Message string
	Link    string
	Month   int
}

// Post is a wall/news-feed post observed by the monitoring service. At full
// scale the paper processes 91M of these, so Post stays small and posts are
// streamed, never accumulated.
type Post struct {
	// AppID is the application credited in the post's metadata. Empty for
	// manual posts and social-plugin posts (37% of the paper's feed).
	AppID string
	// SourceAppID is the app that truly produced the post. It differs from
	// AppID only for piggybacked posts (§6.2) and is hidden ground truth.
	SourceAppID string
	UserID      int
	Message     string
	Link        string // URL carried by the post, "" if none
	Month       int
	// Likes counts 'Like's and comments on the post; the paper observes
	// malicious posts receive fewer of them, and MyPageKeeper's URL
	// classifier uses that signal.
	Likes int
	// MaliciousLink is hidden ground truth: the link leads to a scam.
	MaliciousLink bool
}

// clone returns a deep copy of the app: same scalar fields, freshly
// allocated slices. The read API hands these out so that Delete (which
// mutates the registry's copy under the write lock) can never race a
// caller still holding a previously returned *App.
func (a *App) clone() *App {
	cp := *a
	cp.Permissions = append([]string(nil), a.Permissions...)
	cp.MAU = append([]int(nil), a.MAU...)
	cp.ProfileFeed = append([]ProfilePost(nil), a.ProfileFeed...)
	return &cp
}

// MedianMAU returns the median of the app's MAU series (0 if empty).
func (a *App) MedianMAU() int {
	if len(a.MAU) == 0 {
		return 0
	}
	s := make([]int, len(a.MAU))
	copy(s, a.MAU)
	sort.Ints(s)
	return s[len(s)/2]
}

// MaxMAU returns the maximum of the app's MAU series (0 if empty).
func (a *App) MaxMAU() int {
	m := 0
	for _, v := range a.MAU {
		if v > m {
			m = v
		}
	}
	return m
}

// InstallInfo is what a crawler learns by following an app's installation
// URL (https://www.facebook.com/apps/application.php?id=AppID).
type InstallInfo struct {
	AppID       string
	ClientID    string
	Permissions []string
	RedirectURI string
}

// Platform is the app registry plus the API surface the paper's crawlers
// hit. It is safe for concurrent use.
type Platform struct {
	mu    sync.RWMutex
	apps  map[string]*App
	order []string // registration order, for deterministic iteration
	users int

	// tokenStore backs the OAuth flow of Fig. 2 (see tokens.go).
	tokenStore *tokenStore

	// policy holds the §7 enforcement rules (see policy.go).
	policy Policy
}

// New returns an empty platform with the given user population size.
func New(users int) *Platform {
	return &Platform{apps: make(map[string]*App), users: users}
}

// Users returns the size of the user population.
func (p *Platform) Users() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.users
}

// Register adds app to the platform. The app ID must be unique and
// non-empty, and all requested permissions must exist in the catalogue.
func (p *Platform) Register(app *App) error {
	if app == nil || app.ID == "" {
		return fmt.Errorf("%w: missing app ID", ErrBadRequest)
	}
	for _, perm := range app.Permissions {
		if !ValidPermission(perm) {
			return fmt.Errorf("%w: unknown permission %q", ErrBadRequest, perm)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.apps[app.ID]; dup {
		return fmt.Errorf("%w: duplicate app ID %s", ErrBadRequest, app.ID)
	}
	if err := p.checkRegisterLocked(app); err != nil {
		return err
	}
	if app.ClientID == "" {
		app.ClientID = app.ID
	}
	p.apps[app.ID] = app
	p.order = append(p.order, app.ID)
	return nil
}

// App returns a snapshot of the app with the given ID, including deleted
// apps (the platform still knows about them internally; only the public
// API hides them). Callers that model the public API should use Lookup.
// The returned *App is the caller's own deep copy: mutating it does not
// touch the registry, and a concurrent Delete cannot race its fields.
func (p *Platform) App(id string) (*App, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	app, ok := p.apps[id]
	if !ok {
		return nil, ErrAppNotFound
	}
	return app.clone(), nil
}

// Lookup models the public Graph API visibility rules: deleted apps return
// ErrAppDeleted (the real API returns `false`), unknown IDs return
// ErrAppNotFound. Like App, it returns a snapshot copy; the Deleted check
// happens under the same lock that Delete writes under.
func (p *Platform) Lookup(id string) (*App, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	app, ok := p.apps[id]
	if !ok {
		return nil, ErrAppNotFound
	}
	if app.Deleted {
		return nil, ErrAppDeleted
	}
	return app.clone(), nil
}

// InstallInfo models following the installation URL: Facebook queries the
// app server and redirects the user to a URL carrying the permission set,
// the redirect URI, and — crucially — the client_id chosen by the app
// server. Deleted apps fail. All fields are read under the registry lock.
func (p *Platform) InstallInfo(id string) (InstallInfo, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	app, ok := p.apps[id]
	if !ok {
		return InstallInfo{}, ErrAppNotFound
	}
	if app.Deleted {
		return InstallInfo{}, ErrAppDeleted
	}
	return InstallInfo{
		AppID:       app.ID,
		ClientID:    app.ClientID,
		Permissions: append([]string(nil), app.Permissions...),
		RedirectURI: app.RedirectURI,
	}, nil
}

// Delete removes the app from the public graph, as Facebook does when it
// blacklists a malicious app.
func (p *Platform) Delete(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	app, ok := p.apps[id]
	if !ok {
		return ErrAppNotFound
	}
	app.Deleted = true
	return nil
}

// NumApps returns the number of registered apps (deleted included).
func (p *Platform) NumApps() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.apps)
}

// AppIDs returns all app IDs in registration order (deleted included).
func (p *Platform) AppIDs() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]string(nil), p.order...)
}

// Each calls fn for every app in registration order until fn returns
// false. fn receives a snapshot copy, like App.
func (p *Platform) Each(fn func(*App) bool) {
	p.mu.RLock()
	ids := append([]string(nil), p.order...)
	p.mu.RUnlock()
	for _, id := range ids {
		p.mu.RLock()
		app, ok := p.apps[id]
		var snap *App
		if ok {
			snap = app.clone()
		}
		p.mu.RUnlock()
		if !ok {
			continue
		}
		if !fn(snap) {
			return
		}
	}
}

// PromptFeedPost models the prompt_feed API weakness of §6.2: any caller
// can create a post attributed to apiKey, with no authentication that the
// post really originates from that application. The returned Post carries
// the true source in SourceAppID for ground-truth accounting. The
// attributed app must exist (Facebook resolves the api_key), but may even
// be deleted — the weakness is the missing authentication, not missing
// existence checks.
func (p *Platform) PromptFeedPost(apiKey, trueSourceID string, userID int, message, link string, month int, maliciousLink bool) (Post, error) {
	p.mu.RLock()
	_, known := p.apps[apiKey]
	p.mu.RUnlock()
	if !known {
		return Post{}, ErrAppNotFound
	}
	if err := p.checkPromptFeed(apiKey, trueSourceID); err != nil {
		return Post{}, err
	}
	return Post{
		AppID:         apiKey,
		SourceAppID:   trueSourceID,
		UserID:        userID,
		Message:       message,
		Link:          link,
		Month:         month,
		MaliciousLink: maliciousLink,
	}, nil
}
