package fbplatform

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestPermissionCatalogSize(t *testing.T) {
	// The paper: permissions are "chosen from a pool of 64 permissions
	// pre-defined by Facebook".
	if len(PermissionCatalog) != 64 {
		t.Fatalf("catalogue size = %d, want 64", len(PermissionCatalog))
	}
	seen := map[string]bool{}
	for _, p := range PermissionCatalog {
		if p == "" {
			t.Error("empty permission name")
		}
		if seen[p] {
			t.Errorf("duplicate permission %q", p)
		}
		seen[p] = true
	}
}

func TestValidPermission(t *testing.T) {
	if !ValidPermission(PermPublishStream) {
		t.Error("publish_stream should be valid")
	}
	if ValidPermission("made_up_permission") {
		t.Error("unknown permission should be invalid")
	}
}

func newApp(id, name string) *App {
	return &App{ID: id, Name: name, Permissions: []string{PermPublishStream}}
}

func TestRegisterAndLookup(t *testing.T) {
	p := New(100)
	if p.Users() != 100 {
		t.Errorf("Users = %d", p.Users())
	}
	app := newApp("123", "Test App")
	if err := p.Register(app); err != nil {
		t.Fatalf("Register: %v", err)
	}
	got, err := p.Lookup("123")
	if err != nil || got.Name != "Test App" {
		t.Fatalf("Lookup: %v, %v", got, err)
	}
	if got.ClientID != "123" {
		t.Errorf("ClientID default = %q, want app ID", got.ClientID)
	}
	if _, err := p.Lookup("999"); !errors.Is(err, ErrAppNotFound) {
		t.Errorf("missing app err = %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	p := New(10)
	if err := p.Register(nil); err == nil {
		t.Error("nil app: want error")
	}
	if err := p.Register(&App{}); err == nil {
		t.Error("empty ID: want error")
	}
	if err := p.Register(&App{ID: "1", Permissions: []string{"bogus"}}); err == nil {
		t.Error("bad permission: want error")
	}
	if err := p.Register(newApp("1", "a")); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(newApp("1", "b")); err == nil {
		t.Error("duplicate ID: want error")
	}
}

func TestDeleteHidesFromPublicAPI(t *testing.T) {
	p := New(10)
	if err := p.Register(newApp("42", "Victim")); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete("42"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Lookup("42"); !errors.Is(err, ErrAppDeleted) {
		t.Errorf("Lookup deleted: err = %v, want ErrAppDeleted", err)
	}
	// Internal access still works (the generator needs it).
	if _, err := p.App("42"); err != nil {
		t.Errorf("App(deleted) = %v, want ok", err)
	}
	if _, err := p.InstallInfo("42"); !errors.Is(err, ErrAppDeleted) {
		t.Errorf("InstallInfo deleted err = %v", err)
	}
	if err := p.Delete("nope"); !errors.Is(err, ErrAppNotFound) {
		t.Errorf("Delete missing err = %v", err)
	}
}

func TestInstallInfo(t *testing.T) {
	p := New(10)
	app := &App{
		ID:          "7",
		Name:        "Free Phone Calls",
		Permissions: []string{PermPublishStream, PermEmail},
		RedirectURI: "http://thenamemeans2.com/land",
		ClientID:    "8", // colluding redirect
	}
	if err := p.Register(app); err != nil {
		t.Fatal(err)
	}
	info, err := p.InstallInfo("7")
	if err != nil {
		t.Fatal(err)
	}
	if info.ClientID != "8" || info.AppID != "7" {
		t.Errorf("client/app = %q/%q", info.ClientID, info.AppID)
	}
	if len(info.Permissions) != 2 {
		t.Errorf("permissions = %v", info.Permissions)
	}
	// Returned slice must be a copy.
	info.Permissions[0] = "mutated"
	if app.Permissions[0] != PermPublishStream {
		t.Error("InstallInfo leaked internal slice")
	}
}

func TestMAUStats(t *testing.T) {
	a := &App{MAU: []int{5, 1, 9}}
	if a.MedianMAU() != 5 {
		t.Errorf("MedianMAU = %d, want 5", a.MedianMAU())
	}
	if a.MaxMAU() != 9 {
		t.Errorf("MaxMAU = %d, want 9", a.MaxMAU())
	}
	empty := &App{}
	if empty.MedianMAU() != 0 || empty.MaxMAU() != 0 {
		t.Error("empty MAU should report 0")
	}
}

func TestPromptFeedPiggybacking(t *testing.T) {
	p := New(10)
	if err := p.Register(newApp("100", "FarmVille")); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(newApp("666", "Scam App")); err != nil {
		t.Fatal(err)
	}
	post, err := p.PromptFeedPost("100", "666", 3, "WOW free credits", "http://offers5000credit.example.com", 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if post.AppID != "100" {
		t.Errorf("attributed app = %q, want the popular app", post.AppID)
	}
	if post.SourceAppID != "666" {
		t.Errorf("true source = %q", post.SourceAppID)
	}
	if !post.MaliciousLink {
		t.Error("malicious flag lost")
	}
	if _, err := p.PromptFeedPost("404", "666", 1, "", "", 0, false); err == nil {
		t.Error("unknown api_key: want error")
	}
}

func TestEachAndOrder(t *testing.T) {
	p := New(10)
	for i := 0; i < 5; i++ {
		if err := p.Register(newApp(fmt.Sprintf("id%d", i), "a")); err != nil {
			t.Fatal(err)
		}
	}
	ids := p.AppIDs()
	if len(ids) != 5 || ids[0] != "id0" || ids[4] != "id4" {
		t.Errorf("AppIDs = %v", ids)
	}
	var visited []string
	p.Each(func(a *App) bool {
		visited = append(visited, a.ID)
		return len(visited) < 3
	})
	if len(visited) != 3 {
		t.Errorf("Each early-stop visited %d", len(visited))
	}
	if p.NumApps() != 5 {
		t.Errorf("NumApps = %d", p.NumApps())
	}
}

func TestConcurrentAccess(t *testing.T) {
	p := New(10)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("app%d", i)
			if err := p.Register(newApp(id, "x")); err != nil {
				t.Errorf("Register %s: %v", id, err)
				return
			}
			if _, err := p.Lookup(id); err != nil {
				t.Errorf("Lookup %s: %v", id, err)
			}
			if i%2 == 0 {
				if err := p.Delete(id); err != nil {
					t.Errorf("Delete %s: %v", id, err)
				}
			}
		}(i)
	}
	wg.Wait()
	if p.NumApps() != 20 {
		t.Errorf("NumApps = %d, want 20", p.NumApps())
	}
}

// TestConcurrentDeleteWhileReading is the regression test for the Deleted
// race: the read API used to hand out the registry's own *App, so Lookup's
// Deleted check and InstallInfo/MAU/ProfileFeed reads raced Delete's write.
// With snapshot copies this passes under -race; on the old code it fails.
func TestConcurrentDeleteWhileReading(t *testing.T) {
	p := New(10)
	const apps = 8
	for i := 0; i < apps; i++ {
		a := newApp(fmt.Sprintf("app%d", i), "x")
		a.MAU = []int{10, 20, 30}
		a.ProfileFeed = []ProfilePost{{Message: "hello", Month: 1}}
		a.RedirectURI = "http://site.example/land"
		if err := p.Register(a); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 500; i++ {
				id := fmt.Sprintf("app%d", i%apps)
				if app, err := p.Lookup(id); err == nil {
					_ = app.Deleted
					_ = app.MedianMAU()
					for range app.ProfileFeed {
					}
				}
				if info, err := p.InstallInfo(id); err == nil {
					_ = info.Permissions
				}
				if app, err := p.App(id); err == nil {
					_ = app.MaxMAU()
				}
				p.Each(func(a *App) bool { _ = a.Deleted; return true })
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		// Keep writing Deleted for the whole workout (re-deleting is a
		// write of the same value — still a race against unlocked reads).
		for i := 0; i < 500; i++ {
			if err := p.Delete(fmt.Sprintf("app%d", i%apps)); err != nil {
				t.Errorf("Delete: %v", err)
			}
		}
	}()
	close(start)
	wg.Wait()
	for i := 0; i < apps; i++ {
		if _, err := p.Lookup(fmt.Sprintf("app%d", i)); err != ErrAppDeleted {
			t.Errorf("app%d: Lookup err = %v, want ErrAppDeleted", i, err)
		}
	}
}

// TestReadAPISnapshots pins the snapshot contract: mutating a returned
// *App (or its slices) must not leak into the registry.
func TestReadAPISnapshots(t *testing.T) {
	p := New(10)
	a := newApp("snap", "Original")
	a.MAU = []int{5}
	if err := p.Register(a); err != nil {
		t.Fatalf("Register: %v", err)
	}
	got, err := p.App("snap")
	if err != nil {
		t.Fatalf("App: %v", err)
	}
	got.Name = "Mutated"
	got.Permissions[0] = "bogus"
	got.MAU[0] = 999
	got.Deleted = true

	again, err := p.Lookup("snap")
	if err != nil {
		t.Fatalf("Lookup after caller mutation: %v", err)
	}
	if again.Name != "Original" || again.Permissions[0] != PermPublishStream || again.MAU[0] != 5 {
		t.Errorf("registry state leaked through snapshot: %+v", again)
	}
}
