package fbplatform

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// The paper's Fig. 2 shows the installation and operation flow of a
// Facebook application:
//
//	1. the user requests to add the app;
//	2. Facebook returns the permission set the app requires;
//	3. the user allows the permission set;
//	4. Facebook generates an OAuth 2.0 access token, shared with the
//	   application server;
//	5. (malicious apps) the token is forwarded to the hackers;
//	6. using the token, anyone holding it can post on the user's wall.
//
// This file implements that flow: InstallApp performs steps 1-4 and
// PostWithToken performs step 6. Tokens are bearer credentials — the
// platform authenticates the token, not its holder, which is exactly what
// makes step 5 profitable.

// Token-flow errors.
var (
	ErrTokenNotFound  = errors.New("fbplatform: unknown or revoked access token")
	ErrScopeDenied    = errors.New("fbplatform: token lacks the required permission")
	ErrUnknownUser    = errors.New("fbplatform: user outside the platform population")
	ErrAlreadyGranted = errors.New("fbplatform: user already installed this app")
)

// AccessToken is an OAuth 2.0-style bearer token binding a (user, app)
// pair to the permission scopes the user granted at install time.
type AccessToken struct {
	Token  string
	AppID  string
	UserID int
	Scopes []string
}

// HasScope reports whether the token carries the given permission.
func (t AccessToken) HasScope(perm string) bool {
	for _, s := range t.Scopes {
		if s == perm {
			return true
		}
	}
	return false
}

// tokenStore tracks issued tokens and per-app installation counts.
type tokenStore struct {
	mu       sync.Mutex
	seq      int64
	byToken  map[string]AccessToken
	byGrant  map[string]string // "appID/userID" -> token
	installs map[string]int    // appID -> distinct installing users
}

func newTokenStore() *tokenStore {
	return &tokenStore{
		byToken:  make(map[string]AccessToken),
		byGrant:  make(map[string]string),
		installs: make(map[string]int),
	}
}

func grantKey(appID string, userID int) string {
	return fmt.Sprintf("%s/%d", appID, userID)
}

// tokens returns the platform's token store, creating it lazily so older
// worlds (and the zero value) keep working.
func (p *Platform) tokens() *tokenStore {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tokenStore == nil {
		p.tokenStore = newTokenStore()
	}
	return p.tokenStore
}

// InstallApp runs the Fig. 2 install flow for one user: the platform
// resolves the app, presents its permission set, the user grants it, and
// an access token scoped to exactly those permissions is issued. Deleted
// apps cannot be installed. Installing twice returns ErrAlreadyGranted
// together with the existing token.
func (p *Platform) InstallApp(userID int, appID string) (AccessToken, error) {
	if userID < 0 || userID >= p.Users() {
		return AccessToken{}, ErrUnknownUser
	}
	app, err := p.Lookup(appID)
	if err != nil {
		return AccessToken{}, err
	}
	ts := p.tokens()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	key := grantKey(appID, userID)
	if existing, ok := ts.byGrant[key]; ok {
		return ts.byToken[existing], ErrAlreadyGranted
	}
	ts.seq++
	tok := AccessToken{
		// Deterministic, opaque-looking bearer string.
		Token:  fmt.Sprintf("EAAB%06d%s", ts.seq, appID[max(0, len(appID)-6):]),
		AppID:  appID,
		UserID: userID,
		Scopes: append([]string(nil), app.Permissions...),
	}
	ts.byToken[tok.Token] = tok
	ts.byGrant[key] = tok.Token
	ts.installs[appID]++
	return tok, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TokenInfo resolves a bearer token. Like the real platform, it does not
// care who presents it.
func (p *Platform) TokenInfo(token string) (AccessToken, error) {
	ts := p.tokens()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.byToken[token]
	if !ok {
		return AccessToken{}, ErrTokenNotFound
	}
	return t, nil
}

// RevokeToken invalidates a token (the user uninstalled the app).
func (p *Platform) RevokeToken(token string) error {
	ts := p.tokens()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.byToken[token]
	if !ok {
		return ErrTokenNotFound
	}
	delete(ts.byToken, token)
	delete(ts.byGrant, grantKey(t.AppID, t.UserID))
	return nil
}

// Installs reports how many distinct users have installed the app.
func (p *Platform) Installs(appID string) int {
	ts := p.tokens()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.installs[appID]
}

// PostWithToken is Fig. 2's step 6: whoever holds the token posts on the
// user's wall on behalf of the app. The token must carry publish_stream
// (the one permission §4.1.2 finds sufficient for spamming). The malicious
// flag marks ground truth on the link, as elsewhere.
func (p *Platform) PostWithToken(token, message, link string, month int, maliciousLink bool) (Post, error) {
	t, err := p.TokenInfo(token)
	if err != nil {
		return Post{}, err
	}
	if !t.HasScope(PermPublishStream) {
		return Post{}, fmt.Errorf("%w: need %s, have [%s]",
			ErrScopeDenied, PermPublishStream, strings.Join(t.Scopes, " "))
	}
	return Post{
		AppID:         t.AppID,
		SourceAppID:   t.AppID,
		UserID:        t.UserID,
		Message:       message,
		Link:          link,
		Month:         month,
		MaliciousLink: maliciousLink,
	}, nil
}

// ReadProfileWithToken models the app harvesting the user's personal
// information (step 3 of the malicious-app lifecycle in §2.1): each
// profile field is gated by its permission scope. It returns the fields
// the token can access, keyed by permission name.
func (p *Platform) ReadProfileWithToken(token string) (map[string]string, error) {
	t, err := p.TokenInfo(token)
	if err != nil {
		return nil, err
	}
	// The monitored population is synthetic; field values are placeholders
	// derived from the user ID, which is all the harvesting economics of
	// §2.1 need ("personal information can be sold to third parties").
	out := make(map[string]string)
	for _, scope := range t.Scopes {
		switch scope {
		case PermEmail:
			out[PermEmail] = fmt.Sprintf("user%d@example.com", t.UserID)
		case PermUserBirthday:
			out[PermUserBirthday] = fmt.Sprintf("19%02d-0%d-1%d",
				70+t.UserID%30, 1+t.UserID%8, t.UserID%9)
		case "user_hometown":
			out["user_hometown"] = fmt.Sprintf("Town %d", t.UserID%1000)
		}
	}
	return out, nil
}
