package httpx

import (
	"sync"
	"time"
)

// breaker state values, exported through the breaker-state gauge.
const (
	stateClosed   = 0
	stateHalfOpen = 1
	stateOpen     = 2
)

// breaker is a per-host circuit breaker: closed until `threshold`
// consecutive failures, then open for `cooldown`, then half-open — one
// probe at a time — until a success closes it or a failure re-opens it.
type breaker struct {
	host      string
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	state     int
	fails     int
	openUntil time.Time
	probing   bool
}

func newBreaker(threshold int, cooldown time.Duration, host string) *breaker {
	return &breaker{host: host, threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may proceed now. In half-open state
// only one probe is admitted at a time.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if now.Before(b.openUntil) {
			return false
		}
		b.state = stateHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record reports an attempt outcome. Failures are transport errors and
// 5xx responses; anything the upstream answered coherently counts as a
// success for breaker purposes.
func (b *breaker) record(ok bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = stateClosed
		b.fails = 0
		b.probing = false
		return
	}
	switch b.state {
	case stateHalfOpen:
		// The probe failed: straight back to open.
		b.state = stateOpen
		b.openUntil = now.Add(b.cooldown)
		b.probing = false
	default:
		b.fails++
		if b.fails >= b.threshold {
			b.state = stateOpen
			b.openUntil = now.Add(b.cooldown)
		}
	}
}

// snapshot returns the current state for the telemetry gauge.
func (b *breaker) snapshot() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
