package httpx

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"frappe/internal/telemetry"
	"frappe/internal/tracing"
)

// fakeClock is a manually-advanced clock for breaker/cache tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// sleepRecorder captures backoff sleeps instead of sleeping.
type sleepRecorder struct {
	mu     sync.Mutex
	sleeps []time.Duration
}

func (s *sleepRecorder) Sleep(d time.Duration) {
	s.mu.Lock()
	s.sleeps = append(s.sleeps, d)
	s.mu.Unlock()
}

func (s *sleepRecorder) Sleeps() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.sleeps...)
}

func TestZeroConfigDefaults(t *testing.T) {
	c := New(Config{})
	if c.cfg.Timeout != DefaultTimeout {
		t.Errorf("Timeout = %v, want %v", c.cfg.Timeout, DefaultTimeout)
	}
	if c.base.Timeout != DefaultTimeout {
		t.Errorf("underlying http.Client.Timeout = %v, want %v", c.base.Timeout, DefaultTimeout)
	}
	if c.cfg.MaxAttempts != DefaultMaxAttempts {
		t.Errorf("MaxAttempts = %d, want %d", c.cfg.MaxAttempts, DefaultMaxAttempts)
	}
	if c.cfg.BreakerThreshold != DefaultBreakerThreshold {
		t.Errorf("BreakerThreshold = %d, want %d", c.cfg.BreakerThreshold, DefaultBreakerThreshold)
	}
}

// TestHangingServerTimesOut is the regression test for the old
// http.DefaultClient fallback: a server that never answers must not
// stall the caller beyond the configured timeout.
func TestHangingServerTimesOut(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hang until the client gives up
	}))
	defer srv.Close()

	c := New(Config{
		Service:     "hang",
		Timeout:     150 * time.Millisecond,
		MaxAttempts: 1,
		Telemetry:   telemetry.New(),
	})
	start := time.Now()
	_, err := c.Get(context.Background(), srv.URL)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Get against a hanging server returned nil error")
	}
	if elapsed > 2*time.Second {
		t.Errorf("Get took %v; timeout did not bound the hang", elapsed)
	}
}

func TestBackoffScheduleWithFakeSleeper(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusBadGateway)
	}))
	defer srv.Close()

	rec := &sleepRecorder{}
	reg := telemetry.New()
	c := New(Config{
		Service:     "backoff",
		MaxAttempts: 4,
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  350 * time.Millisecond,
		Sleep:       rec.Sleep,
		JitterSeed:  42,
		Telemetry:   reg,
	})
	resp, err := c.Get(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("Get: %v (an exhausted 5xx returns the response, not an error)", err)
	}
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
	if got := hits.Load(); got != 4 {
		t.Errorf("upstream hits = %d, want 4", got)
	}

	sleeps := rec.Sleeps()
	if len(sleeps) != 3 {
		t.Fatalf("sleeps = %v, want 3 entries", sleeps)
	}
	// Schedule: min(max, base·2^(n-1)) with uniform jitter in [d/2, d].
	for i, d := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 350 * time.Millisecond} {
		if sleeps[i] < d/2 || sleeps[i] > d {
			t.Errorf("sleep %d = %v, want in [%v, %v]", i, sleeps[i], d/2, d)
		}
	}

	if got := reg.CounterValue("frappe_httpx_attempts_total", "backoff"); got != 4 {
		t.Errorf("attempts counter = %d, want 4", got)
	}
	if got := reg.CounterValue("frappe_httpx_retries_total", "backoff"); got != 3 {
		t.Errorf("retries counter = %d, want 3", got)
	}
	if got := reg.CounterValue("frappe_httpx_requests_total", "backoff", "exhausted"); got != 1 {
		t.Errorf("exhausted counter = %d, want 1", got)
	}
}

// TestTerminalStatusesShortCircuit: 2xx and 4xx answers carry service
// semantics (deleted apps arrive as 404 or a literal `false` body) and
// must never be retried.
func TestTerminalStatusesShortCircuit(t *testing.T) {
	for _, status := range []int{http.StatusOK, http.StatusNotFound, http.StatusBadRequest} {
		t.Run(strconv.Itoa(status), func(t *testing.T) {
			var hits atomic.Int32
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				hits.Add(1)
				w.WriteHeader(status)
				fmt.Fprint(w, "false")
			}))
			defer srv.Close()
			c := New(Config{
				Service:     "terminal",
				MaxAttempts: 5,
				Sleep:       func(time.Duration) { t.Error("slept on a terminal response") },
				Telemetry:   telemetry.New(),
			})
			resp, err := c.Get(context.Background(), srv.URL)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != status {
				t.Errorf("status = %d, want %d", resp.StatusCode, status)
			}
			if string(resp.Body) != "false" {
				t.Errorf("body = %q", resp.Body)
			}
			if got := hits.Load(); got != 1 {
				t.Errorf("upstream hits = %d, want exactly 1", got)
			}
		})
	}
}

func TestNetworkErrorRetriesThenFails(t *testing.T) {
	// Reserve a port and close it so connections are refused immediately.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	reg := telemetry.New()
	c := New(Config{
		Service:     "dead",
		MaxAttempts: 3,
		Sleep:       func(time.Duration) {},
		Telemetry:   reg,
	})
	_, err = c.Get(context.Background(), dead)
	if err == nil {
		t.Fatal("Get against a dead endpoint returned nil error")
	}
	if got := reg.CounterValue("frappe_httpx_attempts_total", "dead"); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if got := reg.CounterValue("frappe_httpx_requests_total", "dead", "error"); got != 1 {
		t.Errorf("error outcome = %d, want 1", got)
	}
}

func TestBreakerOpenHalfOpenClose(t *testing.T) {
	healthy := atomic.Bool{}
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if healthy.Load() {
			fmt.Fprint(w, "ok")
			return
		}
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	host := srv.Listener.Addr().String()

	clock := newFakeClock()
	reg := telemetry.New()
	c := New(Config{
		Service:          "breaker",
		MaxAttempts:      1, // one network attempt per call, to step states precisely
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
		Now:              clock.Now,
		Sleep:            func(time.Duration) {},
		Telemetry:        reg,
	})
	get := func() (*Response, error) { return c.Get(context.Background(), srv.URL) }

	// Two consecutive failures open the breaker.
	for i := 0; i < 2; i++ {
		if resp, err := get(); err != nil || resp.StatusCode != 500 {
			t.Fatalf("call %d: resp=%v err=%v", i, resp, err)
		}
	}
	if got := reg.GaugeValue("frappe_httpx_breaker_state", "breaker", host); got != stateOpen {
		t.Fatalf("breaker state = %v, want open (%d)", got, stateOpen)
	}

	// Open: rejected without touching the network.
	before := hits.Load()
	if _, err := get(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker err = %v, want ErrCircuitOpen", err)
	}
	if hits.Load() != before {
		t.Error("open breaker still hit the upstream")
	}

	// After the cooldown a half-open probe goes through; a success closes.
	clock.Advance(11 * time.Second)
	healthy.Store(true)
	if resp, err := get(); err != nil || resp.StatusCode != 200 {
		t.Fatalf("half-open probe: resp=%v err=%v", resp, err)
	}
	if got := reg.GaugeValue("frappe_httpx_breaker_state", "breaker", host); got != stateClosed {
		t.Errorf("breaker state after good probe = %v, want closed", got)
	}

	// Re-open, and a failed probe goes straight back to open.
	healthy.Store(false)
	for i := 0; i < 2; i++ {
		if _, err := get(); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(11 * time.Second)
	if resp, err := get(); err != nil || resp.StatusCode != 500 {
		t.Fatalf("failing probe: resp=%v err=%v", resp, err)
	}
	if _, err := get(); !errors.Is(err, ErrCircuitOpen) {
		t.Errorf("after failed probe err = %v, want ErrCircuitOpen", err)
	}
}

func TestSingleflightCollapsesConcurrentGets(t *testing.T) {
	var hits atomic.Int32
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		once.Do(func() { close(entered) })
		<-release
		fmt.Fprint(w, "payload")
	}))
	defer srv.Close()

	reg := telemetry.New()
	c := New(Config{Service: "sf", MaxAttempts: 1, Telemetry: reg})

	const followers = 7
	results := make(chan *Response, followers+1)
	errs := make(chan error, followers+1)
	run := func() {
		resp, err := c.Get(context.Background(), srv.URL)
		results <- resp
		errs <- err
	}
	go run() // leader
	<-entered
	for i := 0; i < followers; i++ {
		go run()
	}
	// Wait until every follower is parked on the leader's flight, then
	// let the upstream answer — a deterministic collapse.
	for c.sf.waiting(srv.URL) < followers {
		time.Sleep(time.Millisecond)
	}
	close(release)

	for i := 0; i < followers+1; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		if resp := <-results; string(resp.Body) != "payload" {
			t.Errorf("body = %q", resp.Body)
		}
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("upstream hits = %d, want 1", got)
	}
	if got := reg.CounterValue("frappe_httpx_singleflight_shared_total", "sf"); got != followers {
		t.Errorf("shared counter = %d, want %d", got, followers)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, "cached")
	}))
	defer srv.Close()

	clock := newFakeClock()
	reg := telemetry.New()
	c := New(Config{
		Service:   "cache",
		CacheTTL:  time.Minute,
		Now:       clock.Now,
		Telemetry: reg,
	})

	r1, err := c.Get(context.Background(), srv.URL)
	if err != nil || r1.FromCache {
		t.Fatalf("first get: %+v, %v", r1, err)
	}
	r2, err := c.Get(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.FromCache || string(r2.Body) != "cached" {
		t.Errorf("second get not served from cache: %+v", r2)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("upstream hits = %d, want 1 while fresh", got)
	}

	clock.Advance(61 * time.Second)
	r3, err := c.Get(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if r3.FromCache {
		t.Error("expired entry served from cache")
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("upstream hits = %d, want 2 after expiry", got)
	}
	if got := reg.CounterValue("frappe_httpx_cache_total", "cache", "hit"); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	if got := reg.CounterValue("frappe_httpx_cache_total", "cache", "miss"); got != 2 {
		t.Errorf("cache misses = %d, want 2", got)
	}
}

// TestConcurrentWorkout drives every layer at once under -race: mixed
// URLs, cache on, singleflight on, a flaky upstream to exercise retries
// and the breaker.
func TestConcurrentWorkout(t *testing.T) {
	var n atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%7 == 0 {
			http.Error(w, "flaky", http.StatusBadGateway)
			return
		}
		fmt.Fprint(w, r.URL.Path)
	}))
	defer srv.Close()

	c := New(Config{
		Service:     "workout",
		MaxAttempts: 3,
		BackoffBase: time.Microsecond,
		BackoffMax:  10 * time.Microsecond,
		CacheTTL:    50 * time.Millisecond,
		Telemetry:   telemetry.New(),
	})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				u := srv.URL + "/p" + strconv.Itoa(i%5)
				resp, err := c.Get(context.Background(), u)
				if err != nil {
					t.Errorf("get %s: %v", u, err)
					return
				}
				if resp.StatusCode == http.StatusOK {
					parsed, _ := url.Parse(u)
					if string(resp.Body) != parsed.Path {
						t.Errorf("body = %q, want %q", resp.Body, parsed.Path)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestPostRetriesAndReturnsBody(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		if ct := r.Header.Get("Content-Type"); ct != "application/x-www-form-urlencoded" {
			t.Errorf("content type = %q", ct)
		}
		fmt.Fprint(w, "posted")
	}))
	defer srv.Close()

	c := New(Config{
		Service:     "post",
		MaxAttempts: 3,
		Sleep:       func(time.Duration) {},
		Telemetry:   telemetry.New(),
	})
	resp, err := c.Post(context.Background(), srv.URL, "application/x-www-form-urlencoded", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || string(resp.Body) != "posted" {
		t.Errorf("resp = %d %q", resp.StatusCode, resp.Body)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("hits = %d, want 2 (one retry)", got)
	}
}

// findSpans returns the nodes named name anywhere in the trace tree.
func findSpans(nodes []*tracing.SpanNode, name string) []*tracing.SpanNode {
	var out []*tracing.SpanNode
	for _, n := range nodes {
		if n.Name == name {
			out = append(out, n)
		}
		out = append(out, findSpans(n.Children, name)...)
	}
	return out
}

// TestTracingRecordsRetriesAndBackoff: two 502s then a 200, requested
// under a trace, must yield one httpx.request span holding three attempt
// spans (the first two marked retryable-failure) and two backoff spans.
func TestTracingRecordsRetriesAndBackoff(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusBadGateway)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	tr := tracing.New(tracing.Options{})
	rec := &sleepRecorder{}
	c := New(Config{
		Service:   "traced",
		Telemetry: telemetry.New(),
		Tracer:    tr,
		Sleep:     rec.Sleep,
	})
	ctx, root := tr.Start(context.Background(), "test.root")
	resp, err := c.Get(ctx, srv.URL)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("Get = %v, %v", resp, err)
	}
	root.End()

	tj, ok := tr.Store().Trace(root.TraceID().String())
	if !ok {
		t.Fatal("trace not in store")
	}
	reqs := findSpans(tj.Roots, "httpx.request")
	if len(reqs) != 1 {
		t.Fatalf("httpx.request spans = %d, want 1", len(reqs))
	}
	attempts := findSpans(reqs, "httpx.attempt")
	if len(attempts) != 3 {
		t.Fatalf("attempt spans = %d, want 3", len(attempts))
	}
	for i, a := range attempts[:2] {
		if a.Error == "" {
			t.Errorf("failed attempt %d has no error status", i+1)
		}
	}
	if attempts[2].Error != "" {
		t.Errorf("final attempt marked failed: %q", attempts[2].Error)
	}
	backoffs := findSpans(reqs, "httpx.backoff")
	if len(backoffs) != 2 {
		t.Fatalf("backoff spans = %d, want 2", len(backoffs))
	}
	if len(rec.Sleeps()) != 2 {
		t.Fatalf("sleeps = %d, want 2", len(rec.Sleeps()))
	}
}

// TestTracingRecordsBreakerShortCircuit: a request rejected by an open
// breaker leaves an httpx.breaker_open span, not an attempt span.
func TestTracingRecordsBreakerShortCircuit(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	tr := tracing.New(tracing.Options{})
	clock := newFakeClock()
	c := New(Config{
		Service:          "breaking",
		MaxAttempts:      1,
		BreakerThreshold: 1,
		Telemetry:        telemetry.New(),
		Tracer:           tr,
		Now:              clock.Now,
		Sleep:            func(time.Duration) {},
	})
	// Trip the breaker (untraced; just burns the failure budget).
	c.Get(context.Background(), srv.URL)

	ctx, root := tr.Start(context.Background(), "test.root")
	_, err := c.Get(ctx, srv.URL)
	root.End()
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	tj, _ := tr.Store().Trace(root.TraceID().String())
	open := findSpans(tj.Roots, "httpx.breaker_open")
	if len(open) != 1 {
		t.Fatalf("breaker_open spans = %d, want 1", len(open))
	}
	if open[0].Error == "" {
		t.Error("breaker_open span has no error status")
	}
	if got := findSpans(tj.Roots, "httpx.attempt"); len(got) != 0 {
		t.Errorf("attempt spans under open breaker = %d, want 0", len(got))
	}
}

// TestNoTraceNoSpans: without a trace in the context, httpx must create
// no spans at all (bulk dataset crawls stay span-free).
func TestNoTraceNoSpans(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(tracing.TraceparentHeader) != "" {
			t.Error("untraced request carried a traceparent header")
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	tr := tracing.New(tracing.Options{})
	c := New(Config{Service: "plain", Telemetry: telemetry.New(), Tracer: tr})
	if _, err := c.Get(context.Background(), srv.URL); err != nil {
		t.Fatal(err)
	}
	if got := tr.Store().Len(); got != 0 {
		t.Errorf("store traces = %d, want 0", got)
	}
}
