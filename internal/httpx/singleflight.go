package httpx

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent identical GETs: the first caller
// (the leader) performs the request; callers that arrive while it is in
// flight wait and share the leader's response. A minimal stdlib-only
// take on x/sync/singleflight, with context-aware waiting.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	done    chan struct{}
	waiters int
	resp    *Response
	err     error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// do runs fn once per key among concurrent callers. The boolean reports
// whether the result was shared from another caller's flight. Followers
// whose context dies stop waiting and return the context error.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*Response, error)) (*Response, error, bool) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		f.waiters++
		g.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err, true
			}
			// Shallow copy so flag mutation never races across sharers;
			// Body is shared read-only.
			r := *f.resp
			r.Shared = true
			r.Attempts = 0
			return &r, nil, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	f.resp, f.err = fn()

	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
	return f.resp, f.err, false
}

// waiting reports how many followers are currently blocked on key's
// flight; tests use it to sequence deterministic collapses.
func (g *flightGroup) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		return f.waiters
	}
	return 0
}
