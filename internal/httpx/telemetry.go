package httpx

import "frappe/internal/telemetry"

// Transport telemetry families (see DESIGN.md "Resilience"):
//
//	frappe_httpx_requests_total{service,outcome}      ok / exhausted / error / breaker_open
//	frappe_httpx_attempts_total{service}              network attempts
//	frappe_httpx_retries_total{service}               attempts beyond the first
//	frappe_httpx_attempt_duration_seconds{service}    per-attempt latency histogram
//	frappe_httpx_breaker_state{service,host}          0 closed / 1 half-open / 2 open
//	frappe_httpx_cache_total{service,result}          hit / miss
//	frappe_httpx_singleflight_shared_total{service}   responses shared from another flight
type instruments struct {
	Requests        *telemetry.CounterVec
	Attempts        *telemetry.CounterVec
	Retries         *telemetry.CounterVec
	AttemptDuration *telemetry.HistogramVec
	BreakerState    *telemetry.GaugeVec
	Cache           *telemetry.CounterVec
	Shared          *telemetry.CounterVec
}

func newInstruments(reg *telemetry.Registry, service string) *instruments {
	if reg == nil {
		reg = telemetry.Default()
	}
	ins := &instruments{
		Requests: reg.Counter("frappe_httpx_requests_total",
			"Logical HTTP requests, by service and outcome.", "service", "outcome"),
		Attempts: reg.Counter("frappe_httpx_attempts_total",
			"Network attempts, by service.", "service"),
		Retries: reg.Counter("frappe_httpx_retries_total",
			"Attempts beyond the first, by service.", "service"),
		AttemptDuration: reg.Histogram("frappe_httpx_attempt_duration_seconds",
			"Per-attempt latency in seconds, by service.", nil, "service"),
		BreakerState: reg.Gauge("frappe_httpx_breaker_state",
			"Circuit breaker state: 0 closed, 1 half-open, 2 open.", "service", "host"),
		Cache: reg.Counter("frappe_httpx_cache_total",
			"TTL response cache lookups, by service and result.", "service", "result"),
		Shared: reg.Counter("frappe_httpx_singleflight_shared_total",
			"GET responses shared from a concurrent identical request, by service.", "service"),
	}
	// Pre-create the headline series so /metrics shows the family as soon
	// as a client exists, before any traffic.
	ins.Requests.With(service, "ok")
	return ins
}

// setBreakerState publishes b's state on the gauge.
func (ins *instruments) setBreakerState(service string, b *breaker) {
	ins.BreakerState.With(service, b.host).Set(float64(b.snapshot()))
}
