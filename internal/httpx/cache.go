package httpx

import (
	"sync"
	"time"
)

// cacheMaxEntries bounds the TTL cache; when full, an arbitrary entry is
// evicted (the cache is a hot-set optimisation, not a store of record).
const cacheMaxEntries = 4096

// ttlCache is a GET response cache with a fixed TTL.
type ttlCache struct {
	ttl time.Duration

	mu      sync.Mutex
	entries map[string]cacheEntry
}

type cacheEntry struct {
	resp    Response
	expires time.Time
}

func newTTLCache(ttl time.Duration) *ttlCache {
	return &ttlCache{ttl: ttl, entries: make(map[string]cacheEntry)}
}

// get returns a copy of the cached response for key, if fresh.
func (c *ttlCache) get(key string, now time.Time) (*Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	if !now.Before(e.expires) {
		delete(c.entries, key)
		return nil, false
	}
	r := e.resp
	r.FromCache = true
	r.Attempts = 0
	return &r, true
}

// put stores resp under key. Only terminal upstream answers land here
// (the retry loop never returns a cached 5xx as success).
func (c *ttlCache) put(key string, resp *Response, now time.Time) {
	if resp == nil || resp.StatusCode >= 500 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= cacheMaxEntries {
		for k := range c.entries {
			delete(c.entries, k)
			break
		}
	}
	r := *resp
	r.FromCache = false
	r.Shared = false
	c.entries[key] = cacheEntry{resp: r, expires: now.Add(c.ttl)}
}

// len reports the live entry count (telemetry/tests).
func (c *ttlCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
