// Package httpx is the repo's shared resilient HTTP transport: one
// configurable client core under every service client (graphapi, wot,
// bitly, socialbakers) and the crawler.
//
// The paper's deployment target is a watchdog that evaluates an app "at
// the time when a user is considering installing it" (§5.1) against
// flaky external services — the original crawl reached install
// permissions for only ~37% of benign apps. A serving system built on
// that reality needs its fault handling in one place, not copy-pasted
// per client. httpx provides, per request:
//
//   - a hard per-attempt timeout (dial through body read) so one hung
//     upstream can never stall a crawl;
//   - jittered exponential backoff with terminal-error classification:
//     transport errors and 5xx/429 responses retry, everything else —
//     including the Graph API's `false` (deleted) and 404 — returns
//     immediately and is never retried;
//   - a per-host circuit breaker (closed → open after N consecutive
//     failures → half-open probe after a cooldown);
//   - GET request deduplication (singleflight): concurrent identical
//     fetches share one upstream round trip;
//   - an optional TTL response cache for GETs.
//
// Everything is instrumented on an internal/telemetry registry (see
// telemetry.go for the family list) and stdlib-only.
package httpx

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"

	"frappe/internal/telemetry"
	"frappe/internal/tracing"
)

// ErrCircuitOpen is returned (wrapped) when the per-host circuit breaker
// is open and the request was rejected without touching the network.
// Callers distinguish it from ordinary upstream failures with errors.Is.
var ErrCircuitOpen = errors.New("httpx: circuit breaker open")

// Defaults. Every knob in Config falls back to one of these when zero.
const (
	// DefaultTimeout bounds one attempt end to end: connection, request,
	// and reading the full response body. This is the regression fix for
	// the old per-package http.DefaultClient fallback, which had no
	// timeout at all.
	DefaultTimeout = 10 * time.Second
	// DefaultMaxAttempts is the total attempt budget (1 first try + 2
	// retries).
	DefaultMaxAttempts = 3
	// DefaultBackoffBase is the pre-jitter delay before the first retry.
	DefaultBackoffBase = 50 * time.Millisecond
	// DefaultBackoffMax caps the exponential schedule.
	DefaultBackoffMax = 2 * time.Second
	// DefaultBreakerThreshold is how many consecutive failures open a
	// host's breaker.
	DefaultBreakerThreshold = 5
	// DefaultBreakerCooldown is how long an open breaker rejects before
	// allowing a half-open probe.
	DefaultBreakerCooldown = 10 * time.Second
	// DefaultMaxBodyBytes bounds how much of a response body is read.
	DefaultMaxBodyBytes = 1 << 20
)

// Config parameterises a Client. The zero value is fully usable: every
// field falls back to the package default above.
type Config struct {
	// Service labels this client's telemetry series ("graph", "wot", ...).
	// Empty means "http".
	Service string
	// Timeout bounds one attempt (dial through body read). 0 means
	// DefaultTimeout; negative disables the timeout (tests only).
	Timeout time.Duration
	// MaxAttempts is the total attempt budget per request (first try
	// included). 0 means DefaultMaxAttempts; negative means 1.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the jittered exponential retry
	// schedule: before retry n the client sleeps a uniformly jittered
	// value in [d/2, d] with d = min(BackoffMax, BackoffBase·2^(n-1)).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// host's breaker. 0 means DefaultBreakerThreshold; negative disables
	// the breaker entirely.
	BreakerThreshold int
	// BreakerCooldown is the open-state duration before a half-open
	// probe. 0 means DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// CacheTTL enables the GET response cache when positive: a terminal
	// response (status < 500) is served from memory for this long.
	CacheTTL time.Duration
	// DisableSingleflight turns off GET request deduplication.
	DisableSingleflight bool
	// MaxBodyBytes bounds response body reads. 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Transport is the underlying RoundTripper (default
	// http.DefaultTransport). Tests inject fakes here.
	Transport http.RoundTripper
	// Telemetry is the registry the client records into; nil means the
	// process default.
	Telemetry *telemetry.Registry
	// Tracer records request/attempt/backoff spans when the caller's
	// context already carries a trace; nil means the process default.
	// httpx never starts a trace of its own — untraced bulk work (dataset
	// builds, experiment crawls) stays span-free.
	Tracer *tracing.Tracer

	// Now and Sleep are test seams for the breaker clock, the cache
	// clock, and the backoff sleeper. Nil means real time.
	Now   func() time.Time
	Sleep func(time.Duration)
	// JitterSeed seeds the deterministic backoff jitter RNG (0 means 1).
	JitterSeed int64
}

// Response is a fully-read HTTP response. The body is already drained
// and the connection released, so retries, caching, and singleflight
// sharing are all safe; callers just decode Body.
type Response struct {
	StatusCode int
	Status     string
	Header     http.Header
	Body       []byte

	// Attempts is how many network attempts this response cost (0 when
	// served from cache or a shared singleflight flight).
	Attempts int
	// FromCache marks a TTL-cache hit.
	FromCache bool
	// Shared marks a response obtained from another caller's in-flight
	// request via singleflight.
	Shared bool
}

// Client is a resilient HTTP client. Construct with New; the zero value
// is not usable. All methods are safe for concurrent use.
type Client struct {
	cfg  Config
	base *http.Client
	ins  *instruments

	jmu    sync.Mutex
	jitter *rand.Rand

	bmu      sync.Mutex
	breakers map[string]*breaker

	sf    *flightGroup
	cache *ttlCache
}

// New returns a Client for cfg, normalising zero fields to the package
// defaults.
func New(cfg Config) *Client {
	if cfg.Service == "" {
		cfg.Service = "http"
	}
	switch {
	case cfg.Timeout == 0:
		cfg.Timeout = DefaultTimeout
	case cfg.Timeout < 0:
		cfg.Timeout = 0 // http.Client treats 0 as "no timeout"
	}
	switch {
	case cfg.MaxAttempts == 0:
		cfg.MaxAttempts = DefaultMaxAttempts
	case cfg.MaxAttempts < 0:
		cfg.MaxAttempts = 1
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Tracer == nil {
		cfg.Tracer = tracing.Default()
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = 1
	}
	c := &Client{
		cfg:      cfg,
		base:     &http.Client{Timeout: cfg.Timeout, Transport: cfg.Transport},
		ins:      newInstruments(cfg.Telemetry, cfg.Service),
		jitter:   rand.New(rand.NewSource(seed)),
		breakers: make(map[string]*breaker),
		sf:       newFlightGroup(),
	}
	if cfg.CacheTTL > 0 {
		c.cache = newTTLCache(cfg.CacheTTL)
	}
	return c
}

var (
	defaultOnce   sync.Once
	defaultClient *Client
)

// Default returns the shared process-wide client the service clients
// fall back to when not handed an explicit one: default timeout, retry
// budget, and per-host breakers, no cache.
func Default() *Client {
	defaultOnce.Do(func() { defaultClient = New(Config{Service: "default"}) })
	return defaultClient
}

// Get issues a GET, with retries, breaker, singleflight, and (when
// enabled) the TTL cache.
func (c *Client) Get(ctx context.Context, rawURL string) (*Response, error) {
	return c.do(ctx, http.MethodGet, rawURL, "", nil)
}

// Post issues a POST. POSTs bypass the cache and singleflight but share
// the retry/breaker machinery; every write surface in this repo is
// idempotent per URL (installs reissue tokens, posts are keyed), so the
// retry is safe.
func (c *Client) Post(ctx context.Context, rawURL, contentType string, body []byte) (*Response, error) {
	return c.do(ctx, http.MethodPost, rawURL, contentType, body)
}

// do wraps the cache/singleflight/retry pipeline in one request span when
// the caller's context carries a trace: the span records the terminal
// outcome (status, cache hit, shared flight, error) and every retry
// attempt, backoff wait, and breaker decision nests under it.
func (c *Client) do(ctx context.Context, method, rawURL, contentType string, body []byte) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := c.cfg.Tracer.StartChild(ctx, "httpx.request")
	if span == nil {
		return c.doPipeline(ctx, method, rawURL, contentType, body)
	}
	span.SetAttr(
		tracing.String("service", c.cfg.Service),
		tracing.String("method", method),
		tracing.String("url", rawURL),
	)
	resp, err := c.doPipeline(ctx, method, rawURL, contentType, body)
	switch {
	case err != nil:
		span.SetError(err)
	default:
		span.SetAttr(tracing.Int("status", int64(resp.StatusCode)))
		if resp.FromCache {
			span.SetAttr(tracing.Bool("cache_hit", true))
		}
		if resp.Shared {
			span.SetAttr(tracing.Bool("shared", true))
		}
		if resp.Attempts > 1 {
			span.SetAttr(tracing.Int("attempts", int64(resp.Attempts)))
		}
	}
	span.End()
	return resp, err
}

func (c *Client) doPipeline(ctx context.Context, method, rawURL, contentType string, body []byte) (*Response, error) {
	if method == http.MethodGet {
		if c.cache != nil {
			if resp, ok := c.cache.get(rawURL, c.cfg.Now()); ok {
				c.ins.Cache.With(c.cfg.Service, "hit").Inc()
				return resp, nil
			}
			c.ins.Cache.With(c.cfg.Service, "miss").Inc()
		}
		if !c.cfg.DisableSingleflight {
			resp, err, shared := c.sf.do(ctx, rawURL, func() (*Response, error) {
				return c.attempts(ctx, method, rawURL, contentType, body)
			})
			if shared {
				c.ins.Shared.With(c.cfg.Service).Inc()
			} else if err == nil && c.cache != nil {
				c.cache.put(rawURL, resp, c.cfg.Now())
			}
			return resp, err
		}
	}
	resp, err := c.attempts(ctx, method, rawURL, contentType, body)
	if err == nil && method == http.MethodGet && c.cache != nil {
		c.cache.put(rawURL, resp, c.cfg.Now())
	}
	return resp, err
}

// retryableStatus reports whether a response status is worth another
// attempt. Everything else — 2xx, 3xx, and 4xx, which carry service
// semantics like "deleted" (404) and "unknown domain" — is terminal.
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// attempts runs the retry loop for one logical request.
func (c *Client) attempts(ctx context.Context, method, rawURL, contentType string, body []byte) (*Response, error) {
	svc := c.cfg.Service
	br := c.breakerFor(rawURL)
	var resp *Response
	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.ins.Retries.With(svc).Inc()
			wait := c.backoff(attempt - 1)
			_, bs := c.cfg.Tracer.StartChild(ctx, "httpx.backoff")
			bs.SetAttr(tracing.Int("before_attempt", int64(attempt)), tracing.Duration("wait", wait))
			c.cfg.Sleep(wait)
			bs.End()
		}
		if br != nil && !br.allow(c.cfg.Now()) {
			c.ins.Requests.With(svc, "breaker_open").Inc()
			// The breaker decision is a span of its own: a short-circuited
			// request shows up in the trace as "rejected locally", not as
			// a mysteriously absent network attempt.
			_, bos := c.cfg.Tracer.StartChild(ctx, "httpx.breaker_open")
			bos.SetAttr(tracing.String("host", hostOf(rawURL)))
			bos.SetError(ErrCircuitOpen)
			bos.End()
			return nil, fmt.Errorf("httpx: %s %s: %w", svc, rawURL, ErrCircuitOpen)
		}
		c.ins.Attempts.With(svc).Inc()
		actx, aspan := c.cfg.Tracer.StartChild(ctx, "httpx.attempt")
		aspan.SetAttr(tracing.Int("attempt", int64(attempt)))
		start := time.Now()
		r, err := c.once(actx, method, rawURL, contentType, body)
		c.ins.AttemptDuration.With(svc).Observe(time.Since(start).Seconds())
		switch {
		case err != nil:
			aspan.SetError(err)
		default:
			aspan.SetAttr(tracing.Int("status", int64(r.StatusCode)))
			if retryableStatus(r.StatusCode) {
				aspan.SetErrorString("retryable status " + r.Status)
			}
		}
		aspan.End()
		ok := err == nil && r.StatusCode < 500
		// A caller-cancelled context is not an upstream failure; don't
		// let it move the breaker.
		if br != nil && (err == nil || ctx.Err() == nil) {
			br.record(ok, c.cfg.Now())
			c.ins.setBreakerState(svc, br)
		}
		if err != nil {
			lastErr = err
			// A dead context is terminal: the caller gave up, retrying
			// only burns the backoff budget.
			if ctx.Err() != nil {
				break
			}
			continue
		}
		r.Attempts = attempt
		resp, lastErr = r, nil
		if !retryableStatus(r.StatusCode) {
			c.ins.Requests.With(svc, "ok").Inc()
			return r, nil
		}
	}
	if resp != nil {
		// Retries exhausted on a 5xx/429: hand the response back and let
		// the service client report its own "unexpected status" error.
		c.ins.Requests.With(svc, "exhausted").Inc()
		return resp, nil
	}
	c.ins.Requests.With(svc, "error").Inc()
	return nil, fmt.Errorf("httpx: %s: giving up after %d attempts: %w", svc, c.cfg.MaxAttempts, lastErr)
}

// once performs a single network attempt and drains the body.
func (c *Client) once(ctx context.Context, method, rawURL, contentType string, body []byte) (*Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rawURL, rd)
	if err != nil {
		return nil, fmt.Errorf("httpx: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	// Propagate the trace: the server's middleware picks this up and the
	// service-side span nests under this attempt in the stitched tree.
	if sp := tracing.FromContext(ctx); sp != nil {
		req.Header.Set(tracing.TraceparentHeader, sp.Traceparent())
	}
	hr, err := c.base.Do(req)
	if err != nil {
		return nil, err
	}
	defer hr.Body.Close()
	b, err := io.ReadAll(io.LimitReader(hr.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("httpx: reading body: %w", err)
	}
	return &Response{
		StatusCode: hr.StatusCode,
		Status:     hr.Status,
		Header:     hr.Header.Clone(),
		Body:       b,
	}, nil
}

// backoff returns the jittered delay before retry n (1-based): uniform
// in [d/2, d] with d = min(BackoffMax, BackoffBase·2^(n-1)).
func (c *Client) backoff(n int) time.Duration {
	d := c.cfg.BackoffBase
	for i := 1; i < n && d < c.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	c.jmu.Lock()
	f := c.jitter.Float64()
	c.jmu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// hostOf returns rawURL's host for span attributes ("" when unparseable).
func hostOf(rawURL string) string {
	if u, err := url.Parse(rawURL); err == nil {
		return u.Host
	}
	return ""
}

// breakerFor returns the circuit breaker for rawURL's host, creating it
// on first use; nil when breaking is disabled or the URL has no host.
func (c *Client) breakerFor(rawURL string) *breaker {
	if c.cfg.BreakerThreshold < 0 {
		return nil
	}
	u, err := url.Parse(rawURL)
	if err != nil || u.Host == "" {
		return nil
	}
	c.bmu.Lock()
	defer c.bmu.Unlock()
	b, ok := c.breakers[u.Host]
	if !ok {
		b = newBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown, u.Host)
		c.breakers[u.Host] = b
	}
	return b
}
