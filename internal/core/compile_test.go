package core

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"frappe/internal/svm"
)

// liteClassifier trains a Lite-feature classifier on the shared D-Complete
// set; Lite is the watchdog's serving configuration, so it is what the
// compiled-path tests exercise.
func liteClassifier(t testing.TB) (*Classifier, []AppRecord) {
	t.Helper()
	records, labels := completeSet(t)
	clf, err := Train(records, labels, Options{Features: LiteFeatures(), Seed: 5})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return clf, records
}

// TestCompiledSaveLoadRoundTrip proves a compiled artifact rides the gob
// payload: verdicts from the loaded classifier match the in-memory one
// bit-for-bit, and the compiled pin survives the trip.
func TestCompiledSaveLoadRoundTrip(t *testing.T) {
	for _, mode := range []svm.CompileMode{svm.CompileExact, svm.CompileRFF} {
		t.Run(mode.String(), func(t *testing.T) {
			clf, records := liteClassifier(t)
			if err := clf.CompileInference(svm.DefaultCompileOptions(mode)); err != nil {
				t.Fatalf("CompileInference: %v", err)
			}
			var buf bytes.Buffer
			if err := clf.Save(&buf); err != nil {
				t.Fatalf("Save: %v", err)
			}
			clf2, err := Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if clf2.Compiled() == nil {
				t.Fatal("compiled artifact did not survive Save/Load")
			}
			if got, want := clf2.Compiled().String(), clf.Compiled().String(); got != want {
				t.Errorf("loaded compiled artifact = %s, want %s", got, want)
			}
			for _, r := range records {
				v1, err1 := clf.Classify(r)
				v2, err2 := clf2.Classify(r)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if v1.Malicious != v2.Malicious || v1.Score != v2.Score {
					t.Fatalf("round-tripped compiled classifier diverged on %s: %+v vs %+v",
						r.ID, v1, v2)
				}
			}
		})
	}
}

// TestLoadRejectsCorruptCompiled covers the registry-payload trust
// boundary: a gob whose compiled artifact is internally inconsistent, or
// whose dimension disagrees with the feature set, must be refused rather
// than decoded into a classifier that silently degrades.
func TestLoadRejectsCorruptCompiled(t *testing.T) {
	clf, _ := liteClassifier(t)
	if err := clf.CompileInference(svm.DefaultCompileOptions(svm.CompileRFF)); err != nil {
		t.Fatalf("CompileInference: %v", err)
	}

	encode := func(mutate func(p *persistedClassifier)) []byte {
		p := persistedClassifier{
			Features:            clf.extractor.Features,
			MaliciousNameCounts: clf.extractor.MaliciousNameCounts,
			ContributedIDs:      clf.extractor.ContributedIDs,
			Imputed:             clf.extractor.Imputed,
			Scaler:              clf.scaler,
			Model:               clf.model,
		}
		cm := *clf.compiled
		p.Compiled = &cm
		mutate(&p)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf.Bytes()
	}

	for _, tc := range []struct {
		name   string
		mutate func(p *persistedClassifier)
		want   string
	}{
		{"truncated weights", func(p *persistedClassifier) {
			p.Compiled.W32 = p.Compiled.W32[:len(p.Compiled.W32)-1]
		}, "compiled artifact"},
		{"dimension mismatch", func(p *persistedClassifier) {
			p.Features = p.Features[:len(p.Features)-1]
		}, "does not match"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(bytes.NewReader(encode(tc.mutate)))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Load: err = %v, want mention of %q", err, tc.want)
			}
		})
	}

	// Sanity: the unmutated payload loads.
	if _, err := Load(bytes.NewReader(encode(func(*persistedClassifier) {}))); err != nil {
		t.Fatalf("unmutated payload should load: %v", err)
	}
}

// TestClassifyWarmZeroAlloc is the serving-path allocation gate: after one
// warming call populates the scratch pool, Classify must not allocate —
// with or without a compiled pin. CI runs this without -race.
func TestClassifyWarmZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is meaningless under the race detector")
	}
	clf, records := liteClassifier(t)
	probe := records[0]
	for _, tc := range []struct {
		name    string
		prepare func() error
	}{
		{"exact-model", func() error { clf.DropCompiled(); return nil }},
		{"compiled-exact", func() error {
			return clf.CompileInference(svm.DefaultCompileOptions(svm.CompileExact))
		}},
		{"compiled-rff", func() error {
			return clf.CompileInference(svm.DefaultCompileOptions(svm.CompileRFF))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.prepare(); err != nil {
				t.Fatalf("prepare: %v", err)
			}
			if _, err := clf.Classify(probe); err != nil {
				t.Fatalf("warming Classify: %v", err)
			}
			allocs := testing.AllocsPerRun(1000, func() {
				if _, err := clf.Classify(probe); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("warm Classify allocates %.1f allocs/op, want 0", allocs)
			}
		})
	}
}

// BenchmarkClassifySingle measures the full single-verdict path — pooled
// extraction, in-place scaling, decision value — for each serving pin.
// ReportAllocs is load-bearing: CI's bench smoke fails the build if the
// warm path reports a nonzero allocs/op.
func BenchmarkClassifySingle(b *testing.B) {
	clf, records := liteClassifier(b)
	probe := records[0]
	for _, tc := range []struct {
		name    string
		prepare func() error
	}{
		{"Exact", func() error { clf.DropCompiled(); return nil }},
		{"CompiledRFF", func() error {
			return clf.CompileInference(svm.DefaultCompileOptions(svm.CompileRFF))
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			if err := tc.prepare(); err != nil {
				b.Fatalf("prepare: %v", err)
			}
			if _, err := clf.Classify(probe); err != nil {
				b.Fatalf("warming Classify: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := clf.Classify(probe); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
