package core

import (
	"fmt"

	"frappe/internal/textdist"
)

// ValidationTechnique is one of the complementary checks of §5.3 used to
// validate apps newly flagged by FRAppE (Table 8).
type ValidationTechnique int

const (
	// ValDeleted: the app has since been removed from the Facebook graph.
	ValDeleted ValidationTechnique = iota
	// ValNameSimilarity: the app's name matches multiple known-malicious
	// apps (including version-suffix variants).
	ValNameSimilarity
	// ValPostSimilarity: the app posted a URL also posted by a known
	// malicious app.
	ValPostSimilarity
	// ValTyposquat: the app's name typosquats a popular app.
	ValTyposquat
	// ValManual: validated manually, by checking one exemplar per
	// same-name cluster of size > 4.
	ValManual
	// ValUnknown: no technique confirmed the verdict.
	ValUnknown

	numTechniques
)

// String names the technique as in Table 8.
func (v ValidationTechnique) String() string {
	switch v {
	case ValDeleted:
		return "deleted-from-facebook-graph"
	case ValNameSimilarity:
		return "app-name-similarity"
	case ValPostSimilarity:
		return "post-similarity"
	case ValTyposquat:
		return "typosquatting-of-popular-apps"
	case ValManual:
		return "manual-validation"
	case ValUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("ValidationTechnique(%d)", int(v))
	}
}

// ValidationConfig wires the §5.3 pipeline to its evidence sources.
type ValidationConfig struct {
	// DeletedNow reports whether the app is gone from the graph at
	// validation time (months after classification).
	DeletedNow func(appID string) bool
	// KnownNameCounts maps canonical known-malicious names (D-Sample) to
	// how many distinct apps used them; "matches multiple malicious apps"
	// needs a count >= 2.
	KnownNameCounts map[string]int
	// KnownMaliciousLinks is the URL set posted by known-malicious apps.
	KnownMaliciousLinks map[string]bool
	// PopularNames are the popular benign app names for the typosquat
	// check.
	PopularNames []string
	// TyposquatThreshold is the name-similarity cutoff (default 0.85).
	TyposquatThreshold float64
	// ManualClusterMin: same-name clusters larger than this get one
	// exemplar manually verified (the paper used 4).
	ManualClusterMin int
}

// ValidationReport summarises the pipeline outcome like Table 8: per
// technique, how many flagged apps it validates (techniques overlap), plus
// the cumulative count in pipeline order.
type ValidationReport struct {
	Total int
	// ByTechnique counts every app each technique validates, standalone.
	ByTechnique map[ValidationTechnique]int
	// Cumulative counts newly validated apps in pipeline order.
	Cumulative map[ValidationTechnique]int
	// Validated is the total number of confirmed apps; Unknown the rest.
	Validated int
	Unknown   int
	// Outcome maps each app to the first technique that validated it.
	Outcome map[string]ValidationTechnique
}

// KnownNameCounts builds the canonical-name multiplicity map from known
// malicious records.
func KnownNameCounts(records []AppRecord) map[string]int {
	counts := make(map[string]int, len(records))
	for _, r := range records {
		if n := r.Name(); n != "" {
			counts[canonicalName(n)]++
		}
	}
	return counts
}

// KnownLinks builds the posted-URL set from known malicious records.
func KnownLinks(records []AppRecord) map[string]bool {
	links := make(map[string]bool)
	for _, r := range records {
		for _, l := range r.Stats.Links {
			links[l] = true
		}
	}
	return links
}

// ValidateFlagged runs the §5.3 validation pipeline over FRAppE's newly
// flagged apps.
func ValidateFlagged(flagged []AppRecord, cfg ValidationConfig) ValidationReport {
	if cfg.TyposquatThreshold == 0 {
		cfg.TyposquatThreshold = 0.85
	}
	if cfg.ManualClusterMin == 0 {
		cfg.ManualClusterMin = 4
	}
	rep := ValidationReport{
		Total:       len(flagged),
		ByTechnique: make(map[ValidationTechnique]int),
		Cumulative:  make(map[ValidationTechnique]int),
		Outcome:     make(map[string]ValidationTechnique),
	}
	// Compile the popular list once; the typosquat check below probes every
	// flagged app against it.
	popular := textdist.NewPopularSet(cfg.PopularNames)

	checks := []struct {
		tech  ValidationTechnique
		apply func(AppRecord) bool
	}{
		{ValDeleted, func(r AppRecord) bool {
			return cfg.DeletedNow != nil && cfg.DeletedNow(r.ID)
		}},
		{ValNameSimilarity, func(r AppRecord) bool {
			return cfg.KnownNameCounts[canonicalName(r.Name())] >= 2
		}},
		{ValPostSimilarity, func(r AppRecord) bool {
			for _, l := range r.Stats.Links {
				if cfg.KnownMaliciousLinks[l] {
					return true
				}
			}
			return false
		}},
		{ValTyposquat, func(r AppRecord) bool {
			_, ok := popular.Typosquat(r.Name(), cfg.TyposquatThreshold)
			return ok
		}},
	}

	validated := make(map[string]bool, len(flagged))
	for _, check := range checks {
		for _, r := range flagged {
			if !check.apply(r) {
				continue
			}
			rep.ByTechnique[check.tech]++
			if !validated[r.ID] {
				validated[r.ID] = true
				rep.Cumulative[check.tech]++
				rep.Outcome[r.ID] = check.tech
			}
		}
	}

	// Manual step: cluster the remaining apps by canonical name; clusters
	// larger than ManualClusterMin get an exemplar verified, which
	// validates the whole cluster.
	remainderNames := make(map[string][]string)
	for _, r := range flagged {
		if validated[r.ID] {
			continue
		}
		cn := canonicalName(r.Name())
		remainderNames[cn] = append(remainderNames[cn], r.ID)
	}
	for _, ids := range remainderNames {
		if len(ids) <= cfg.ManualClusterMin {
			continue
		}
		for _, id := range ids {
			validated[id] = true
			rep.ByTechnique[ValManual]++
			rep.Cumulative[ValManual]++
			rep.Outcome[id] = ValManual
		}
	}

	for _, r := range flagged {
		if !validated[r.ID] {
			rep.Unknown++
			rep.Outcome[r.ID] = ValUnknown
		}
	}
	rep.Validated = len(flagged) - rep.Unknown
	return rep
}
