//go:build race

package core

// raceEnabled reports whether the race detector is active; the zero-alloc
// serving gates are meaningless under its instrumentation and skip.
const raceEnabled = true
