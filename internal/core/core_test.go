package core

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"frappe/internal/crawler"
	"frappe/internal/datasets"
	"frappe/internal/graphapi"
	"frappe/internal/mypagekeeper"
	"frappe/internal/synth"
)

// Shared medium-scale world: big enough for meaningful cross-validation.
var (
	once  sync.Once
	world *synth.World
	data  *datasets.Datasets
)

func sharedData(t testing.TB) (*synth.World, *datasets.Datasets) {
	t.Helper()
	once.Do(func() {
		cfg := synth.Default(0.08)
		cfg.MaxMaterializedPostsPerApp = 80
		world = synth.Generate(cfg)
		b := &datasets.Builder{World: world}
		var err error
		data, err = b.Build(context.Background())
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
	})
	if data == nil {
		t.Fatal("shared dataset unavailable")
	}
	return world, data
}

// recordsFor assembles AppRecords for the given IDs.
func recordsFor(d *datasets.Datasets, ids []string) []AppRecord {
	out := make([]AppRecord, 0, len(ids))
	for _, id := range ids {
		out = append(out, AppRecord{ID: id, Crawl: d.Crawl[id], Stats: d.Stats[id]})
	}
	return out
}

// completeSet returns D-Complete records and labels.
func completeSet(t testing.TB) ([]AppRecord, []bool) {
	t.Helper()
	_, d := sharedData(t)
	ben, mal := d.DComplete()
	records := append(recordsFor(d, ben), recordsFor(d, mal)...)
	labels := make([]bool, len(records))
	for i := len(ben); i < len(records); i++ {
		labels[i] = true
	}
	if len(mal) < 20 || len(ben) < 40 {
		t.Fatalf("D-Complete too small for CV: %d benign, %d malicious", len(ben), len(mal))
	}
	return records, labels
}

func TestFeatureSets(t *testing.T) {
	if len(LiteFeatures()) != 7 {
		t.Errorf("Lite features = %d, want 7 (Table 4)", len(LiteFeatures()))
	}
	if len(FullFeatures()) != 9 {
		t.Errorf("Full features = %d, want 9 (Table 4 + Table 7)", len(FullFeatures()))
	}
	if len(RobustFeatures()) != 3 {
		t.Errorf("Robust features = %d, want 3 (§7)", len(RobustFeatures()))
	}
	for f := Feature(0); f < numFeatures; f++ {
		if f.String() == "" {
			t.Errorf("feature %d has no name", f)
		}
	}
}

func TestVectorExtraction(t *testing.T) {
	r := AppRecord{
		ID: "1",
		Crawl: &crawler.Result{
			AppID:   "1",
			Summary: &graphapi.Summary{ID: "1", Name: "The App"},
			Install: graphapi.InstallInfo{
				AppID:       "1",
				ClientID:    "2",
				Permissions: []string{"publish_stream"},
			},
			WOTScore: -1,
		},
		Stats: mypagekeeper.AppStats{Posts: 10, ExternalLinks: 9},
	}
	ext := Extractor{Features: FullFeatures(), MaliciousNameCounts: map[string]int{"the app": 1}}
	v, err := ext.Vector(r)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 0, 0, 1, 1, -1, 1, 0.9}
	if len(v) != len(want) {
		t.Fatalf("len = %d", len(v))
	}
	for i := range want {
		if v[i] != want[i] {
			t.Errorf("v[%d] (%s) = %v, want %v", i, FullFeatures()[i], v[i], want[i])
		}
	}
}

func TestVectorUnclassifiable(t *testing.T) {
	ext := Extractor{Features: LiteFeatures()}
	if _, err := ext.Vector(AppRecord{ID: "x"}); !errors.Is(err, ErrNotClassifiable) {
		t.Errorf("nil crawl err = %v", err)
	}
	if _, err := ext.Vector(AppRecord{ID: "x", Crawl: &crawler.Result{SummaryErr: graphapi.ErrDeleted}}); !errors.Is(err, ErrNotClassifiable) {
		t.Errorf("deleted err = %v", err)
	}
}

func TestVectorImputation(t *testing.T) {
	// Install/feed crawl failures are marked missing and filled from the
	// fitted imputation values.
	broken := AppRecord{
		ID: "1",
		Crawl: &crawler.Result{
			Summary:    &graphapi.Summary{Name: "App", Description: "d"},
			FeedErr:    crawler.ErrNotCrawlable,
			InstallErr: crawler.ErrNotCrawlable,
		},
	}
	ok := AppRecord{
		ID: "2",
		Crawl: &crawler.Result{
			Summary: &graphapi.Summary{Name: "Other"},
			Feed:    []graphapi.FeedPost{{Message: "hello"}},
			Install: graphapi.InstallInfo{
				AppID: "2", ClientID: "2",
				Permissions: []string{"publish_stream", "email", "email2", "email3"},
			},
			WOTScore: 80,
		},
	}
	ext := Extractor{Features: LiteFeatures()}
	_, missing, err := ext.VectorMask(broken)
	if err != nil {
		t.Fatal(err)
	}
	// posts-in-profile, permission-count, client-id, wot must be missing.
	if !missing[3] || !missing[4] || !missing[5] || !missing[6] {
		t.Errorf("missing mask wrong: %v", missing)
	}
	if missing[0] || missing[2] {
		t.Errorf("summary features should never be missing: %v", missing)
	}
	if err := ext.FitImputation([]AppRecord{ok}); err != nil {
		t.Fatal(err)
	}
	v, err := ext.Vector(broken)
	if err != nil {
		t.Fatal(err)
	}
	// Imputed from the single observable record: posts=1, perms=4, wot=80.
	if v[3] != 1 || v[4] != 4 || v[6] != 80 {
		t.Errorf("imputed values wrong: %v", v)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, Options{}); err == nil {
		t.Error("empty training: want error")
	}
	if _, err := Train(make([]AppRecord, 2), make([]bool, 3), Options{}); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestCrossValidateFullFRAppE(t *testing.T) {
	records, labels := completeSet(t)
	m, err := CrossValidate(records, labels, 5, Options{Features: FullFeatures(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("full FRAppE: %v", m)
	if m.Accuracy() < 0.95 {
		t.Errorf("accuracy = %.3f, want >= 0.95 (paper: 0.995)", m.Accuracy())
	}
	if m.FPRate() > 0.02 {
		t.Errorf("FP rate = %.3f, want <= 0.02 (paper: 0)", m.FPRate())
	}
	if m.FNRate() > 0.20 {
		t.Errorf("FN rate = %.3f, want <= 0.20 (paper: 0.041)", m.FNRate())
	}
}

func TestLiteVsFullOrdering(t *testing.T) {
	records, labels := completeSet(t)
	lite, err := CrossValidate(records, labels, 5, Options{Features: LiteFeatures(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	full, err := CrossValidate(records, labels, 5, Options{Features: FullFeatures(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("lite: %v / full: %v", lite, full)
	// The paper: aggregation features can only help (99.0% -> 99.5%).
	if full.Accuracy()+0.01 < lite.Accuracy() {
		t.Errorf("full (%.3f) should not be clearly worse than lite (%.3f)",
			full.Accuracy(), lite.Accuracy())
	}
	if lite.Accuracy() < 0.93 {
		t.Errorf("lite accuracy = %.3f, want >= 0.93 (paper: 0.99)", lite.Accuracy())
	}
}

func TestSingleFeatureDescription(t *testing.T) {
	records, labels := completeSet(t)
	m, err := CrossValidate(records, labels, 5, Options{Features: []Feature{FeatDescription}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("description-only: %v", m)
	// Table 6: description alone reaches 97.8%.
	if m.Accuracy() < 0.90 {
		t.Errorf("description-only accuracy = %.3f, want >= 0.90", m.Accuracy())
	}
}

func TestRobustFeatures(t *testing.T) {
	records, labels := completeSet(t)
	m, err := CrossValidate(records, labels, 5, Options{Features: RobustFeatures(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("robust-only: %v", m)
	// §7: the robust subset alone still yields 98.2%.
	if m.Accuracy() < 0.90 {
		t.Errorf("robust accuracy = %.3f, want >= 0.90", m.Accuracy())
	}
}

func TestSampleRatio(t *testing.T) {
	records, labels := completeSet(t)
	r, l, err := SampleRatio(records, labels, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	var mal int
	for _, x := range l {
		if x {
			mal++
		}
	}
	ben := len(l) - mal
	if ben != 3*mal {
		t.Errorf("ratio broken: %d benign vs %d malicious", ben, mal)
	}
	if len(r) != len(l) {
		t.Error("record/label mismatch")
	}
	if _, _, err := SampleRatio(records, labels, 0, 1); err == nil {
		t.Error("ratio 0: want error")
	}
	// Determinism.
	r2, _, err := SampleRatio(records, labels, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r {
		if r[i].ID != r2[i].ID {
			t.Fatal("SampleRatio not deterministic")
		}
	}
}

func TestCrossValidateErrors(t *testing.T) {
	records, labels := completeSet(t)
	if _, err := CrossValidate(records, labels, 1, Options{}); err == nil {
		t.Error("k=1: want error")
	}
	if _, err := CrossValidate(records[:3], labels[:2], 5, Options{}); err == nil {
		t.Error("mismatch: want error")
	}
	if _, err := CrossValidate(records[:3], labels[:3], 5, Options{}); err == nil {
		t.Error("too few records: want error")
	}
}

func TestNewAppSweep(t *testing.T) {
	w, d := sharedData(t)
	// Train on all of D-Sample (with full features), then sweep the rest
	// of D-Total, like §5.3.
	labels := d.Labels()
	var trainR []AppRecord
	var trainL []bool
	for id, l := range labels {
		r := AppRecord{ID: id, Crawl: d.Crawl[id], Stats: d.Stats[id]}
		if r.Crawl == nil || r.Crawl.SummaryErr != nil {
			continue
		}
		trainR = append(trainR, r)
		trainL = append(trainL, l == datasets.LabelMalicious)
	}
	clf, err := Train(trainR, trainL, Options{Features: FullFeatures(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	inSample := make(map[string]bool, len(labels))
	for id := range labels {
		inSample[id] = true
	}
	b := &datasets.Builder{World: w}
	var sweepIDs []string
	for _, id := range d.DTotal {
		if !inSample[id] {
			sweepIDs = append(sweepIDs, id)
		}
	}
	sweep, err := b.CrawlAll(context.Background(), sweepIDs)
	if err != nil {
		t.Fatal(err)
	}
	var records []AppRecord
	for _, id := range sweepIDs {
		records = append(records, AppRecord{ID: id, Crawl: sweep[id], Stats: d.Stats[id]})
	}
	verdicts, skipped, err := clf.ClassifyAll(records)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) == 0 {
		t.Error("expected deleted apps to be skipped in the sweep")
	}
	var flagged, trueHits int
	for _, v := range verdicts {
		if v.Malicious {
			flagged++
			if w.IsMalicious(v.AppID) {
				trueHits++
			}
		}
	}
	if flagged == 0 {
		t.Fatal("sweep flagged nothing; the paper found 8,144 new malicious apps")
	}
	precision := float64(trueHits) / float64(flagged)
	t.Logf("sweep: %d classified, %d flagged, precision %.3f", len(verdicts), flagged, precision)
	if precision < 0.90 {
		t.Errorf("sweep precision = %.3f, want >= 0.90 (paper validates 98.5%%)", precision)
	}
}

func TestValidationPipeline(t *testing.T) {
	w, d := sharedData(t)
	// Known malicious: D-Sample malicious records.
	known := recordsFor(d, d.Malicious)
	cfg := ValidationConfig{
		DeletedNow: func(id string) bool {
			m := w.DeleteMonthOf(id)
			return m > 0 && m <= w.Config.ValidationMonth
		},
		KnownNameCounts:     KnownNameCounts(known),
		KnownMaliciousLinks: KnownLinks(known),
		PopularNames:        []string{"FarmVille", "CityVille", "Zoo World"},
	}
	// Validate the hidden malicious apps not in D-Sample (a stand-in for
	// FRAppE's newly flagged apps, with perfect precision).
	inSample := map[string]bool{}
	for _, id := range d.Malicious {
		inSample[id] = true
	}
	var flagged []AppRecord
	for _, id := range w.MaliciousIDs {
		if inSample[id] {
			continue
		}
		r := AppRecord{ID: id, Stats: d.Stats[id]}
		if cr, ok := d.Crawl[id]; ok {
			r.Crawl = cr
		}
		// Name comes from the world for apps we never crawled (the paper
		// had classification-time crawls for these).
		if r.Crawl == nil {
			app, err := w.Platform.App(id)
			if err != nil {
				t.Fatal(err)
			}
			r.Crawl = &crawler.Result{Summary: &graphapi.Summary{ID: id, Name: app.Name}}
		}
		flagged = append(flagged, r)
	}
	rep := ValidateFlagged(flagged, cfg)
	if rep.Total != len(flagged) {
		t.Fatalf("total = %d", rep.Total)
	}
	validatedFrac := float64(rep.Validated) / float64(rep.Total)
	t.Logf("validated %.3f; by technique: deleted=%d name=%d post=%d typo=%d manual=%d unknown=%d",
		validatedFrac, rep.ByTechnique[ValDeleted], rep.ByTechnique[ValNameSimilarity],
		rep.ByTechnique[ValPostSimilarity], rep.ByTechnique[ValTyposquat],
		rep.ByTechnique[ValManual], rep.Unknown)
	if validatedFrac < 0.90 {
		t.Errorf("validated fraction = %.3f, want >= 0.90 (paper: 0.985)", validatedFrac)
	}
	// Deleted-from-graph should be the dominant technique (81% in Table 8).
	if rep.ByTechnique[ValDeleted] < rep.Total/2 {
		t.Errorf("deleted technique validates %d of %d, want majority",
			rep.ByTechnique[ValDeleted], rep.Total)
	}
	// Consistency: cumulative sums to validated.
	sum := 0
	for _, n := range rep.Cumulative {
		sum += n
	}
	if sum != rep.Validated {
		t.Errorf("cumulative sums to %d, validated = %d", sum, rep.Validated)
	}
}

// TestClassifierSaveLoad extends the svm gob round-trip guarantee up to
// the Classifier layer: for both feature modes, a loaded-from-bytes
// classifier must yield byte-identical verdicts — decision and exact
// decision value — to the in-memory one, on every record. This is what
// makes registry rollback exact: the model bytes ARE the behaviour.
func TestClassifierSaveLoad(t *testing.T) {
	records, labels := completeSet(t)
	for _, tc := range []struct {
		mode     string
		features []Feature
	}{
		{"lite", LiteFeatures()},
		{"full", FullFeatures()},
	} {
		t.Run(tc.mode, func(t *testing.T) {
			clf, err := Train(records, labels, Options{Features: tc.features, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := clf.Save(&buf); err != nil {
				t.Fatal(err)
			}
			// (Save bytes are NOT asserted stable across calls: gob walks the
			// extractor's maps in randomised order. Behaviour, not encoding,
			// is the contract.)
			clf2, err := Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range records {
				v1, err1 := clf.Classify(r)
				v2, err2 := clf2.Classify(r)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if v1.Malicious != v2.Malicious || v1.Score != v2.Score {
					t.Fatalf("%s: round-tripped classifier diverged on %s: in-memory %+v, loaded %+v",
						tc.mode, r.ID, v1, v2)
				}
			}
		})
	}
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("Load(junk): want error")
	}
}

func TestFeatureSetName(t *testing.T) {
	for _, tc := range []struct {
		want string
		fs   []Feature
	}{
		{"lite", LiteFeatures()},
		{"full", FullFeatures()},
		{"robust", RobustFeatures()},
		{"custom", []Feature{FeatWOTScore}},
		{"custom", nil},
	} {
		if got := FeatureSetName(tc.fs); got != tc.want {
			t.Errorf("FeatureSetName(%v) = %q, want %q", tc.fs, got, tc.want)
		}
	}
}

func TestMetricsMath(t *testing.T) {
	m := Metrics{TP: 90, TN: 95, FP: 5, FN: 10}
	if got := m.Accuracy(); got != 185.0/200 {
		t.Errorf("accuracy = %v", got)
	}
	if got := m.FPRate(); got != 0.05 {
		t.Errorf("FP rate = %v", got)
	}
	if got := m.FNRate(); got != 0.10 {
		t.Errorf("FN rate = %v", got)
	}
	var zero Metrics
	if zero.Accuracy() != 0 || zero.FPRate() != 0 || zero.FNRate() != 0 {
		t.Error("zero metrics should not divide by zero")
	}
	if m.String() == "" {
		t.Error("empty String")
	}
}

func TestValidationTechniqueNames(t *testing.T) {
	for v := ValidationTechnique(0); v < numTechniques; v++ {
		if v.String() == "" {
			t.Errorf("technique %d unnamed", v)
		}
	}
}
