package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Metrics are the three measures the paper reports for every classifier
// experiment (Tables 5 and 6, §5.2, §7).
type Metrics struct {
	TP, TN, FP, FN int
}

// Total returns the number of evaluated samples.
func (m Metrics) Total() int { return m.TP + m.TN + m.FP + m.FN }

// Accuracy is the fraction of correctly classified apps.
func (m Metrics) Accuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(t)
}

// FPRate is the fraction of benign apps classified malicious.
func (m Metrics) FPRate() float64 {
	n := m.FP + m.TN
	if n == 0 {
		return 0
	}
	return float64(m.FP) / float64(n)
}

// FNRate is the fraction of malicious apps classified benign.
func (m Metrics) FNRate() float64 {
	n := m.FN + m.TP
	if n == 0 {
		return 0
	}
	return float64(m.FN) / float64(n)
}

// String formats the metrics the way the paper's tables read.
func (m Metrics) String() string {
	return fmt.Sprintf("accuracy=%.1f%% FP=%.1f%% FN=%.1f%% (n=%d)",
		100*m.Accuracy(), 100*m.FPRate(), 100*m.FNRate(), m.Total())
}

// add accumulates fold results.
func (m *Metrics) add(o Metrics) {
	m.TP += o.TP
	m.TN += o.TN
	m.FP += o.FP
	m.FN += o.FN
}

// SampleRatio draws a benign:malicious = ratio:1 subsample (Table 5's
// training-ratio experiments). It uses as much of the data as the ratio
// permits and returns parallel record/label slices in shuffled order.
func SampleRatio(records []AppRecord, labels []bool, ratio int, seed int64) ([]AppRecord, []bool, error) {
	if ratio < 1 {
		return nil, nil, errors.New("core: ratio must be >= 1")
	}
	if len(records) != len(labels) {
		return nil, nil, errors.New("core: records/labels length mismatch")
	}
	var benign, malicious []int
	for i, l := range labels {
		if l {
			malicious = append(malicious, i)
		} else {
			benign = append(benign, i)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(benign), func(i, j int) { benign[i], benign[j] = benign[j], benign[i] })
	rng.Shuffle(len(malicious), func(i, j int) { malicious[i], malicious[j] = malicious[j], malicious[i] })

	nMal := len(malicious)
	if max := len(benign) / ratio; nMal > max {
		nMal = max
	}
	if nMal == 0 {
		return nil, nil, errors.New("core: not enough data for requested ratio")
	}
	nBen := nMal * ratio

	idx := append(append([]int(nil), benign[:nBen]...), malicious[:nMal]...)
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	outR := make([]AppRecord, len(idx))
	outL := make([]bool, len(idx))
	for i, j := range idx {
		outR[i] = records[j]
		outL[i] = labels[j]
	}
	return outR, outL, nil
}

// CrossValidate runs stratified k-fold cross-validation (the paper uses
// k = 5) and returns metrics accumulated over all folds. The
// known-malicious name set is rebuilt from each training fold, so the
// aggregation feature never leaks test labels.
func CrossValidate(records []AppRecord, labels []bool, k int, opts Options) (Metrics, error) {
	start := time.Now()
	defer func() { crossvalDuration.With().Observe(time.Since(start).Seconds()) }()
	var m Metrics
	if k < 2 {
		return m, errors.New("core: k must be >= 2")
	}
	if len(records) != len(labels) {
		return m, errors.New("core: records/labels length mismatch")
	}
	if len(records) < k {
		return m, fmt.Errorf("core: %d records cannot fill %d folds", len(records), k)
	}
	// Stratified fold assignment keeps each fold's class mix stable.
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	fold := make([]int, len(records))
	assign := func(idx []int) {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for i, j := range idx {
			fold[j] = i % k
		}
	}
	var benign, malicious []int
	for i, l := range labels {
		if l {
			malicious = append(malicious, i)
		} else {
			benign = append(benign, i)
		}
	}
	assign(benign)
	assign(malicious)

	for f := 0; f < k; f++ {
		var trR, teR []AppRecord
		var trL, teL []bool
		for i := range records {
			if fold[i] == f {
				teR = append(teR, records[i])
				teL = append(teL, labels[i])
			} else {
				trR = append(trR, records[i])
				trL = append(trL, labels[i])
			}
		}
		clf, err := Train(trR, trL, opts)
		if err != nil {
			return Metrics{}, fmt.Errorf("core: fold %d: %w", f, err)
		}
		fm, err := Evaluate(clf, teR, teL)
		if err != nil {
			return Metrics{}, fmt.Errorf("core: fold %d: %w", f, err)
		}
		m.add(fm)
	}
	return m, nil
}

// Evaluate classifies labelled records and tallies the confusion matrix.
func Evaluate(c *Classifier, records []AppRecord, labels []bool) (Metrics, error) {
	var m Metrics
	if len(records) != len(labels) {
		return m, errors.New("core: records/labels length mismatch")
	}
	for i, r := range records {
		v, err := c.Classify(r)
		if err != nil {
			return Metrics{}, fmt.Errorf("core: classifying %s: %w", r.ID, err)
		}
		switch {
		case labels[i] && v.Malicious:
			m.TP++
		case labels[i] && !v.Malicious:
			m.FN++
		case !labels[i] && v.Malicious:
			m.FP++
		default:
			m.TN++
		}
	}
	return m, nil
}
