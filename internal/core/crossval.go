package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"frappe/internal/workerpool"
)

// Metrics are the three measures the paper reports for every classifier
// experiment (Tables 5 and 6, §5.2, §7).
type Metrics struct {
	TP, TN, FP, FN int
}

// Total returns the number of evaluated samples.
func (m Metrics) Total() int { return m.TP + m.TN + m.FP + m.FN }

// Accuracy is the fraction of correctly classified apps.
func (m Metrics) Accuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(t)
}

// FPRate is the fraction of benign apps classified malicious.
func (m Metrics) FPRate() float64 {
	n := m.FP + m.TN
	if n == 0 {
		return 0
	}
	return float64(m.FP) / float64(n)
}

// FNRate is the fraction of malicious apps classified benign.
func (m Metrics) FNRate() float64 {
	n := m.FN + m.TP
	if n == 0 {
		return 0
	}
	return float64(m.FN) / float64(n)
}

// String formats the metrics the way the paper's tables read.
func (m Metrics) String() string {
	return fmt.Sprintf("accuracy=%.1f%% FP=%.1f%% FN=%.1f%% (n=%d)",
		100*m.Accuracy(), 100*m.FPRate(), 100*m.FNRate(), m.Total())
}

// add accumulates fold results.
func (m *Metrics) add(o Metrics) {
	m.TP += o.TP
	m.TN += o.TN
	m.FP += o.FP
	m.FN += o.FN
}

// SampleRatio draws a benign:malicious = ratio:1 subsample (Table 5's
// training-ratio experiments). It uses as much of the data as the ratio
// permits and returns parallel record/label slices in shuffled order.
func SampleRatio(records []AppRecord, labels []bool, ratio int, seed int64) ([]AppRecord, []bool, error) {
	if ratio < 1 {
		return nil, nil, errors.New("core: ratio must be >= 1")
	}
	if len(records) != len(labels) {
		return nil, nil, errors.New("core: records/labels length mismatch")
	}
	var benign, malicious []int
	for i, l := range labels {
		if l {
			malicious = append(malicious, i)
		} else {
			benign = append(benign, i)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(benign), func(i, j int) { benign[i], benign[j] = benign[j], benign[i] })
	rng.Shuffle(len(malicious), func(i, j int) { malicious[i], malicious[j] = malicious[j], malicious[i] })

	nMal := len(malicious)
	if max := len(benign) / ratio; nMal > max {
		nMal = max
	}
	if nMal == 0 {
		return nil, nil, errors.New("core: not enough data for requested ratio")
	}
	nBen := nMal * ratio

	idx := append(append([]int(nil), benign[:nBen]...), malicious[:nMal]...)
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	outR := make([]AppRecord, len(idx))
	outL := make([]bool, len(idx))
	for i, j := range idx {
		outR[i] = records[j]
		outL[i] = labels[j]
	}
	return outR, outL, nil
}

// CrossValidate runs stratified k-fold cross-validation (the paper uses
// k = 5) and returns metrics accumulated over all folds. The
// known-malicious name set is rebuilt from each training fold, so the
// aggregation feature never leaks test labels.
func CrossValidate(records []AppRecord, labels []bool, k int, opts Options) (Metrics, error) {
	start := time.Now()
	defer func() { crossvalDuration.With().Observe(time.Since(start).Seconds()) }()
	var m Metrics
	if k < 2 {
		return m, errors.New("core: k must be >= 2")
	}
	if len(records) != len(labels) {
		return m, errors.New("core: records/labels length mismatch")
	}
	if len(records) < k {
		return m, fmt.Errorf("core: %d records cannot fill %d folds", len(records), k)
	}
	// Stratified fold assignment keeps each fold's class mix stable.
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	fold := make([]int, len(records))
	assign := func(idx []int) {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for i, j := range idx {
			fold[j] = i % k
		}
	}
	var benign, malicious []int
	for i, l := range labels {
		if l {
			malicious = append(malicious, i)
		} else {
			benign = append(benign, i)
		}
	}
	assign(benign)
	assign(malicious)

	// Folds are independent: each rebuilds its own NameCounts and
	// imputation state from its training split, so they run concurrently
	// on a bounded pool. Per-fold training seeds are derived from the
	// caller's seed (not from execution order), and per-fold metrics land
	// in their own slot before a sequential in-order sum — so the result is
	// byte-identical for any worker count.
	foldWorkers := workerpool.Clamp(opts.Workers, k)
	crossvalWorkers.With().Set(float64(foldWorkers))
	foldMetrics := make([]Metrics, k)
	foldErrs := make([]error, k)
	workerpool.Run(k, foldWorkers, func(f int) {
		foldStart := time.Now()
		defer func() { crossvalFoldDuration.With().Observe(time.Since(foldStart).Seconds()) }()
		var trR, teR []AppRecord
		var trL, teL []bool
		for i := range records {
			if fold[i] == f {
				teR = append(teR, records[i])
				teL = append(teL, labels[i])
			} else {
				trR = append(trR, records[i])
				trL = append(trL, labels[i])
			}
		}
		fopts := foldOptions(opts, seed, f)
		clf, err := Train(trR, trL, fopts)
		if err != nil {
			foldErrs[f] = fmt.Errorf("core: fold %d: %w", f, err)
			return
		}
		fm, err := EvaluateWorkers(clf, teR, teL, opts.Workers)
		if err != nil {
			foldErrs[f] = fmt.Errorf("core: fold %d: %w", f, err)
			return
		}
		foldMetrics[f] = fm
	})
	for f := 0; f < k; f++ {
		if foldErrs[f] != nil {
			return Metrics{}, foldErrs[f]
		}
		m.add(foldMetrics[f])
	}
	return m, nil
}

// foldOptions derives the per-fold training options: the SMO tie-breaking
// seed is a splitmix64 mix of the cross-validation seed and the fold index,
// so every fold trains identically no matter which worker runs it or in
// what order.
func foldOptions(opts Options, seed int64, f int) Options {
	fopts := opts
	fopts.Seed = deriveSeed(seed, f)
	if opts.SVM != nil {
		sp := *opts.SVM
		sp.Seed = fopts.Seed
		fopts.SVM = &sp
	}
	return fopts
}

// deriveSeed mixes a base seed and a stream index with the splitmix64
// finaliser — cheap, deterministic, and well-dispersed even for adjacent
// inputs.
func deriveSeed(seed int64, stream int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Evaluate classifies labelled records through the vectorised batch path
// and tallies the confusion matrix.
func Evaluate(c *Classifier, records []AppRecord, labels []bool) (Metrics, error) {
	return EvaluateWorkers(c, records, labels, 0)
}

// EvaluateWorkers is Evaluate with an explicit worker-pool bound
// (<= 0 means GOMAXPROCS). Feature extraction fans out over the pool and
// all rows are scored in one DecisionValues call, so every record's
// decision value feeds the frappe_svm_decision_value histogram exactly
// once; the metrics are identical for any worker count.
func EvaluateWorkers(c *Classifier, records []AppRecord, labels []bool, workers int) (Metrics, error) {
	var m Metrics
	if len(records) != len(labels) {
		return m, errors.New("core: records/labels length mismatch")
	}
	vecs, errs := c.batchVectors(records, workers)
	for i := range records {
		if errs[i] != nil {
			return Metrics{}, fmt.Errorf("core: classifying %s: %w", records[i].ID, errs[i])
		}
	}
	scores := c.model.DecisionValues(vecs)
	for i, score := range scores {
		malicious := score >= 0
		observeVerdict(Verdict{AppID: records[i].ID, Malicious: malicious, Score: score})
		switch {
		case labels[i] && malicious:
			m.TP++
		case labels[i] && !malicious:
			m.FN++
		case !labels[i] && malicious:
			m.FP++
		default:
			m.TN++
		}
	}
	return m, nil
}
