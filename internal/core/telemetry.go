package core

import (
	"frappe/internal/telemetry"
)

// Classifier metric families, registered on the process default registry so
// a serving binary's /metrics covers training done in the same process:
//
//	frappe_train_total                        completed Train calls
//	frappe_train_duration_seconds             per-Train wall clock (histogram)
//	frappe_crossval_duration_seconds          per-CrossValidate wall clock
//	frappe_crossval_fold_seconds              per-fold wall clock (histogram)
//	frappe_crossval_fold_workers              fold-pool width of the last CV run
//	frappe_classify_batch_seconds             per-ClassifyBatch wall clock
//	frappe_classifications_total{verdict}     malicious / benign verdicts
//	frappe_svm_decision_value                 SVM decision-value distribution
var (
	trainTotal = telemetry.Default().Counter("frappe_train_total",
		"Completed classifier training runs.")
	trainDuration = telemetry.Default().Histogram("frappe_train_duration_seconds",
		"Wall-clock seconds per classifier training run.", nil)
	crossvalDuration = telemetry.Default().Histogram("frappe_crossval_duration_seconds",
		"Wall-clock seconds per cross-validation run (all folds).", nil)
	crossvalFoldDuration = telemetry.Default().Histogram("frappe_crossval_fold_seconds",
		"Wall-clock seconds per cross-validation fold (train + evaluate).", nil)
	crossvalWorkers = telemetry.Default().Gauge("frappe_crossval_fold_workers",
		"Worker-pool width used by the most recent CrossValidate call.")
	batchClassifyDuration = telemetry.Default().Histogram("frappe_classify_batch_seconds",
		"Wall-clock seconds per ClassifyBatch call.", nil)
	classifications = telemetry.Default().Counter("frappe_classifications_total",
		"Classification verdicts issued.", "verdict")
	// Decision values live around the margin; the paper's scores rarely
	// leave single digits, so a symmetric coarse ladder suffices.
	decisionValues = telemetry.Default().Histogram("frappe_svm_decision_value",
		"SVM decision values observed at classification time.",
		[]float64{-5, -2, -1, -0.5, -0.1, 0, 0.1, 0.5, 1, 2, 5})

	// Per-verdict counter and histogram handles are resolved once: With is
	// variadic and allocates its label slice, which would be the only
	// allocation left on the warm Classify path.
	maliciousVerdicts   = classifications.With("malicious")
	benignVerdicts      = classifications.With("benign")
	decisionValueScores = decisionValues.With()
)

// observeVerdict tallies one classification outcome.
func observeVerdict(v Verdict) {
	if v.Malicious {
		maliciousVerdicts.Inc()
	} else {
		benignVerdicts.Inc()
	}
	decisionValueScores.Observe(v.Score)
}
