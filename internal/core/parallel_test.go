package core

import (
	"runtime"
	"testing"
)

// The parallel engine's contract: Metrics are byte-identical for any
// Options.Workers value, because folds write index-addressed slots and
// per-fold seeds derive from (Seed, fold), never from execution order.
func TestCrossValidateWorkerDeterminism(t *testing.T) {
	records, labels := completeSet(t)
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var ref Metrics
	for i, w := range counts {
		opts := Options{Features: LiteFeatures(), Seed: 7, Workers: w}
		m, err := CrossValidate(records, labels, 5, opts)
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		if i == 0 {
			ref = m
			continue
		}
		if m != ref {
			t.Errorf("Workers=%d gave %+v, Workers=%d gave %+v — parallel CV is not deterministic",
				w, m, counts[0], ref)
		}
	}
}

// EvaluateWorkers must tally the exact confusion matrix of a sequential
// Classify loop, for any worker count.
func TestEvaluateMatchesSequentialClassify(t *testing.T) {
	records, labels := completeSet(t)
	clf, err := Train(records, labels, Options{Features: FullFeatures(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	var want Metrics
	for i, r := range records {
		v, err := clf.Classify(r)
		if err != nil {
			t.Fatalf("Classify %s: %v", r.ID, err)
		}
		switch {
		case labels[i] && v.Malicious:
			want.TP++
		case labels[i] && !v.Malicious:
			want.FN++
		case !labels[i] && v.Malicious:
			want.FP++
		default:
			want.TN++
		}
	}

	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		got, err := EvaluateWorkers(clf, records, labels, w)
		if err != nil {
			t.Fatalf("EvaluateWorkers(%d): %v", w, err)
		}
		if got != want {
			t.Errorf("EvaluateWorkers(%d) = %+v, sequential Classify loop = %+v", w, got, want)
		}
	}
}

// ClassifyBatch must return the same verdicts — scores bit-exact — as
// calling Classify per record, in record order.
func TestClassifyBatchMatchesClassify(t *testing.T) {
	records, labels := completeSet(t)
	clf, err := Train(records, labels, Options{Features: LiteFeatures(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 3} {
		verdicts, skipped, err := clf.ClassifyBatch(records, w)
		if err != nil {
			t.Fatalf("ClassifyBatch(workers=%d): %v", w, err)
		}
		if len(skipped) != 0 {
			t.Fatalf("unexpected skipped records: %v", skipped)
		}
		if len(verdicts) != len(records) {
			t.Fatalf("got %d verdicts for %d records", len(verdicts), len(records))
		}
		for i, r := range records {
			want, err := clf.Classify(r)
			if err != nil {
				t.Fatalf("Classify %s: %v", r.ID, err)
			}
			if verdicts[i] != want {
				t.Errorf("workers=%d record %s: batch %+v != single %+v", w, r.ID, verdicts[i], want)
			}
		}
	}
}
