package core

import (
	"errors"
	"fmt"
	"io"
	"time"

	"frappe/internal/svm"
)

// Options configures FRAppE training.
type Options struct {
	// Features selects the feature set; nil means FullFeatures().
	Features []Feature
	// SVM overrides the SVM parameters; the zero value means libsvm
	// defaults (RBF, gamma = 1/#features, C = 1), as in §5.1.
	SVM *svm.Params
	// Seed drives sampling and SMO tie-breaking (default 1).
	Seed int64
}

func (o Options) features() []Feature {
	if len(o.Features) == 0 {
		return FullFeatures()
	}
	return o.Features
}

func (o Options) svmParams(dim int) svm.Params {
	if o.SVM != nil {
		return *o.SVM
	}
	p := svm.DefaultParams(dim)
	if o.Seed != 0 {
		p.Seed = o.Seed
	}
	return p
}

// Classifier is a trained FRAppE instance.
type Classifier struct {
	extractor Extractor
	scaler    *svm.Scaler
	model     *svm.Model
}

// Verdict is a classification outcome.
type Verdict struct {
	AppID string
	// Malicious is the classifier's decision.
	Malicious bool
	// Score is the SVM decision value; positive means malicious, and its
	// magnitude is the confidence.
	Score float64
}

// Train fits FRAppE on labelled records (true = malicious). The
// known-malicious name set for the aggregation feature is built from the
// malicious training records only.
func Train(records []AppRecord, labels []bool, opts Options) (*Classifier, error) {
	start := time.Now()
	if len(records) == 0 {
		return nil, errors.New("core: no training records")
	}
	if len(records) != len(labels) {
		return nil, errors.New("core: records/labels length mismatch")
	}
	var maliciousRecords []AppRecord
	for i, r := range records {
		if labels[i] {
			maliciousRecords = append(maliciousRecords, r)
		}
	}
	counts, contributed := NameCounts(maliciousRecords)
	ext := Extractor{
		Features:            opts.features(),
		MaliciousNameCounts: counts,
		ContributedIDs:      contributed,
	}
	if err := ext.FitImputation(records); err != nil {
		return nil, fmt.Errorf("core: fitting imputation: %w", err)
	}
	var xs [][]float64
	var ys []float64
	for i, r := range records {
		v, err := ext.Vector(r)
		if err != nil {
			return nil, fmt.Errorf("core: extracting %s: %w", r.ID, err)
		}
		xs = append(xs, v)
		y := -1.0
		if labels[i] {
			y = 1
		}
		ys = append(ys, y)
	}
	scaler, err := svm.FitScaler(xs)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	scaled := scaler.ApplyAll(xs)
	model, err := svm.Train(scaled, ys, opts.svmParams(len(ext.Features)))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	trainTotal.With().Inc()
	trainDuration.With().Observe(time.Since(start).Seconds())
	return &Classifier{extractor: ext, scaler: scaler, model: model}, nil
}

// Features returns the feature set the classifier was trained with.
func (c *Classifier) Features() []Feature {
	return append([]Feature(nil), c.extractor.Features...)
}

// Classify evaluates one record.
func (c *Classifier) Classify(r AppRecord) (Verdict, error) {
	v, err := c.extractor.Vector(r)
	if err != nil {
		return Verdict{AppID: r.ID}, err
	}
	score := c.model.DecisionValue(c.scaler.Apply(v))
	verdict := Verdict{AppID: r.ID, Malicious: score >= 0, Score: score}
	observeVerdict(verdict)
	return verdict, nil
}

// ClassifyAll evaluates many records, skipping unclassifiable ones (no
// summary). It returns the verdicts and the IDs that were skipped.
func (c *Classifier) ClassifyAll(records []AppRecord) (verdicts []Verdict, skipped []string, err error) {
	for _, r := range records {
		v, cerr := c.Classify(r)
		if errors.Is(cerr, ErrNotClassifiable) {
			skipped = append(skipped, r.ID)
			continue
		}
		if cerr != nil {
			return nil, nil, cerr
		}
		verdicts = append(verdicts, v)
	}
	return verdicts, skipped, nil
}

// Save serialises the trained classifier (feature set, known-malicious
// names, scaler, SVM model) for reuse by a watchdog process.
func (c *Classifier) Save(w io.Writer) error {
	return encodeClassifier(w, c)
}

// Load reads a classifier written by Save.
func Load(r io.Reader) (*Classifier, error) {
	return decodeClassifier(r)
}
