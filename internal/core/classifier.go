package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"frappe/internal/svm"
	"frappe/internal/workerpool"
)

// Options configures FRAppE training.
type Options struct {
	// Features selects the feature set; nil means FullFeatures().
	Features []Feature
	// SVM overrides the SVM parameters; the zero value means libsvm
	// defaults (RBF, gamma = 1/#features, C = 1), as in §5.1.
	SVM *svm.Params
	// Seed drives sampling and SMO tie-breaking (default 1).
	Seed int64
	// Workers bounds the pools that run cross-validation folds and batch
	// evaluation (0 = GOMAXPROCS). Results are identical for any value:
	// folds derive their seeds from Seed, not from execution order.
	Workers int
}

func (o Options) features() []Feature {
	if len(o.Features) == 0 {
		return FullFeatures()
	}
	return o.Features
}

func (o Options) svmParams(dim int) svm.Params {
	if o.SVM != nil {
		return *o.SVM
	}
	p := svm.DefaultParams(dim)
	if o.Seed != 0 {
		p.Seed = o.Seed
	}
	return p
}

// Classifier is a trained FRAppE instance.
//
// When a compiled artifact is attached (CompileInference, or a registry
// payload that carried one), single and batch classification score through
// it instead of the kernel-expansion model; the exact model always remains
// available as the source of truth for parity checks and recompilation.
type Classifier struct {
	extractor Extractor
	scaler    *svm.Scaler
	model     *svm.Model
	compiled  *svm.CompiledModel

	// scratch pools the per-call feature buffers so a warm Classify
	// allocates nothing; see classifyScratch.
	scratch sync.Pool
}

// classifyScratch is one pooled set of serving buffers: the raw feature
// vector, its missing mask, and the scaled copy the SVM consumes. One
// Classify call borrows one set, so concurrent classification scales
// without contention and without per-request garbage.
type classifyScratch struct {
	vec     []float64
	missing []bool
	scaled  []float64
}

func (c *Classifier) getScratch() *classifyScratch {
	if s, ok := c.scratch.Get().(*classifyScratch); ok {
		return s
	}
	n := len(c.extractor.Features)
	return &classifyScratch{
		vec:     make([]float64, n),
		missing: make([]bool, n),
		scaled:  make([]float64, n),
	}
}

func (c *Classifier) putScratch(s *classifyScratch) { c.scratch.Put(s) }

// Verdict is a classification outcome.
type Verdict struct {
	AppID string
	// Malicious is the classifier's decision.
	Malicious bool
	// Score is the SVM decision value; positive means malicious, and its
	// magnitude is the confidence.
	Score float64
}

// Train fits FRAppE on labelled records (true = malicious). The
// known-malicious name set for the aggregation feature is built from the
// malicious training records only.
func Train(records []AppRecord, labels []bool, opts Options) (*Classifier, error) {
	start := time.Now()
	if len(records) == 0 {
		return nil, errors.New("core: no training records")
	}
	if len(records) != len(labels) {
		return nil, errors.New("core: records/labels length mismatch")
	}
	var maliciousRecords []AppRecord
	for i, r := range records {
		if labels[i] {
			maliciousRecords = append(maliciousRecords, r)
		}
	}
	counts, contributed := NameCounts(maliciousRecords)
	ext := Extractor{
		Features:            opts.features(),
		MaliciousNameCounts: counts,
		ContributedIDs:      contributed,
	}
	if err := ext.FitImputation(records); err != nil {
		return nil, fmt.Errorf("core: fitting imputation: %w", err)
	}
	var xs [][]float64
	var ys []float64
	for i, r := range records {
		v, err := ext.Vector(r)
		if err != nil {
			return nil, fmt.Errorf("core: extracting %s: %w", r.ID, err)
		}
		xs = append(xs, v)
		y := -1.0
		if labels[i] {
			y = 1
		}
		ys = append(ys, y)
	}
	scaler, err := svm.FitScaler(xs)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	scaled := scaler.ApplyAll(xs)
	model, err := svm.Train(scaled, ys, opts.svmParams(len(ext.Features)))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	trainTotal.With().Inc()
	trainDuration.With().Observe(time.Since(start).Seconds())
	return &Classifier{extractor: ext, scaler: scaler, model: model}, nil
}

// Features returns the feature set the classifier was trained with.
func (c *Classifier) Features() []Feature {
	return append([]Feature(nil), c.extractor.Features...)
}

// Classify evaluates one record. The warm path — pooled feature buffers,
// in-place scaling, a decision value against the compiled artifact or the
// flattened support-vector cache — allocates nothing, which is what holds
// the watchdog's uncached /check inference to sub-microsecond latency.
func (c *Classifier) Classify(r AppRecord) (Verdict, error) {
	s := c.getScratch()
	if err := c.extractor.VectorInto(r, s.vec, s.missing); err != nil {
		c.putScratch(s)
		return Verdict{AppID: r.ID}, err
	}
	c.scaler.ApplyInto(s.vec, s.scaled)
	score := c.decisionValue(s.scaled)
	c.putScratch(s)
	verdict := Verdict{AppID: r.ID, Malicious: score >= 0, Score: score}
	observeVerdict(verdict)
	return verdict, nil
}

// decisionValue scores one scaled vector through the serving pin: the
// compiled artifact when one is attached, the exact model otherwise.
func (c *Classifier) decisionValue(x []float64) float64 {
	if cm := c.compiled; cm != nil {
		return cm.DecisionValue(x)
	}
	return c.model.DecisionValue(x)
}

// decisionValues is the batch counterpart of decisionValue, so batch and
// single classification always agree on which artifact scored a record.
func (c *Classifier) decisionValues(rows [][]float64) []float64 {
	if cm := c.compiled; cm != nil {
		return cm.DecisionValues(rows)
	}
	return c.model.DecisionValues(rows)
}

// CompileInference compiles the classifier's SVM into a serving artifact
// (svm.CompileExact or svm.CompileRFF) and pins it: subsequent Classify /
// ClassifyBatch calls score through the compiled form, and Save embeds it
// so registry consumers hot-swap the compiled artifact as part of the
// version. The exact model is retained untouched. Compiling is an offline
// step — gate an approximate compile on holdout parity before serving it
// (the retrainer does; see frappe.CompileConfig).
func (c *Classifier) CompileInference(o svm.CompileOptions) error {
	cm, err := svm.Compile(c.model, o)
	if err != nil {
		return err
	}
	c.compiled = cm
	return nil
}

// Compiled returns the attached compiled artifact, or nil when the
// classifier serves through the exact kernel expansion.
func (c *Classifier) Compiled() *svm.CompiledModel { return c.compiled }

// DropCompiled detaches the compiled artifact, reverting Classify to the
// exact model — the rollback lever when a compiled form misbehaves.
func (c *Classifier) DropCompiled() { c.compiled = nil }

// DecisionValueRecord extracts, scales and scores one record, returning
// the raw decision value — the parity-check primitive used to compare an
// exact model with its compiled approximation on identical inputs.
func (c *Classifier) DecisionValueRecord(r AppRecord) (float64, error) {
	s := c.getScratch()
	defer c.putScratch(s)
	if err := c.extractor.VectorInto(r, s.vec, s.missing); err != nil {
		return 0, err
	}
	c.scaler.ApplyInto(s.vec, s.scaled)
	return c.decisionValue(s.scaled), nil
}

// batchVectors extracts and scales feature vectors for every record on a
// bounded worker pool. Each slot holds either a scaled vector or that
// record's extraction error; slots are indexed by record, so the result is
// identical for any worker count.
func (c *Classifier) batchVectors(records []AppRecord, workers int) ([][]float64, []error) {
	vecs := make([][]float64, len(records))
	errs := make([]error, len(records))
	workerpool.Run(len(records), workers, func(i int) {
		v, err := c.extractor.Vector(records[i])
		if err != nil {
			errs[i] = err
			return
		}
		vecs[i] = c.scaler.Apply(v)
	})
	return vecs, errs
}

// ClassifyBatch evaluates many records through the vectorised prediction
// path: feature extraction fans out over a bounded pool (workers <= 0 means
// GOMAXPROCS), then one DecisionValues call scores all rows against the
// flattened support-vector matrix. Verdicts come back in record order and
// are identical to per-record Classify calls; unclassifiable records (no
// summary) are skipped and reported by ID.
func (c *Classifier) ClassifyBatch(records []AppRecord, workers int) (verdicts []Verdict, skipped []string, err error) {
	start := time.Now()
	vecs, errs := c.batchVectors(records, workers)
	keep := make([]int, 0, len(records)) // record index per scored row
	rows := make([][]float64, 0, len(records))
	for i := range records {
		switch {
		case errors.Is(errs[i], ErrNotClassifiable):
			skipped = append(skipped, records[i].ID)
		case errs[i] != nil:
			return nil, nil, errs[i]
		default:
			keep = append(keep, i)
			rows = append(rows, vecs[i])
		}
	}
	scores := c.decisionValues(rows)
	verdicts = make([]Verdict, len(rows))
	for k, i := range keep {
		verdicts[k] = Verdict{AppID: records[i].ID, Malicious: scores[k] >= 0, Score: scores[k]}
		observeVerdict(verdicts[k])
	}
	batchClassifyDuration.With().Observe(time.Since(start).Seconds())
	return verdicts, skipped, nil
}

// ClassifyAll evaluates many records, skipping unclassifiable ones (no
// summary). It returns the verdicts and the IDs that were skipped.
func (c *Classifier) ClassifyAll(records []AppRecord) (verdicts []Verdict, skipped []string, err error) {
	return c.ClassifyBatch(records, 0)
}

// Save serialises the trained classifier (feature set, known-malicious
// names, scaler, SVM model) for reuse by a watchdog process.
func (c *Classifier) Save(w io.Writer) error {
	return encodeClassifier(w, c)
}

// Load reads a classifier written by Save.
func Load(r io.Reader) (*Classifier, error) {
	return decodeClassifier(r)
}
