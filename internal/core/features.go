// Package core implements the paper's contribution: FRAppE, a classifier
// that decides from an app's profile whether it is malicious. FRAppE Lite
// uses the seven on-demand features of Table 4; full FRAppE adds the two
// aggregation-based features of Table 7 (name similarity to known malicious
// apps and the external-link-to-post ratio). §7's robustness discussion
// singles out a three-feature subset hard for hackers to obfuscate.
package core

import (
	"errors"
	"fmt"

	"frappe/internal/crawler"
	"frappe/internal/mypagekeeper"
	"frappe/internal/textdist"
)

// Feature identifies one input feature.
type Feature int

const (
	// FeatCategory: is the category field specified? (Table 4)
	FeatCategory Feature = iota
	// FeatCompany: is the company name specified?
	FeatCompany
	// FeatDescription: is the description specified?
	FeatDescription
	// FeatProfilePosts: any posts in the app profile page?
	FeatProfilePosts
	// FeatPermissionCount: number of permissions required at install.
	FeatPermissionCount
	// FeatClientIDDiffers: is the install client_id different from the
	// app ID?
	FeatClientIDDiffers
	// FeatWOTScore: WOT reputation of the redirect-URI domain (-1 if
	// unknown).
	FeatWOTScore
	// FeatNameSimilarity: is the app's name identical to a known
	// malicious app's? (aggregation-based, Table 7)
	FeatNameSimilarity
	// FeatExternalLinkRatio: fraction of the app's posts carrying links
	// outside facebook.com (aggregation-based, Table 7)
	FeatExternalLinkRatio

	numFeatures
)

// String returns the feature's short name.
func (f Feature) String() string {
	switch f {
	case FeatCategory:
		return "category-specified"
	case FeatCompany:
		return "company-specified"
	case FeatDescription:
		return "description-specified"
	case FeatProfilePosts:
		return "posts-in-profile"
	case FeatPermissionCount:
		return "permission-count"
	case FeatClientIDDiffers:
		return "client-id-differs"
	case FeatWOTScore:
		return "wot-trust-score"
	case FeatNameSimilarity:
		return "app-name-similarity"
	case FeatExternalLinkRatio:
		return "external-link-to-post-ratio"
	default:
		return fmt.Sprintf("Feature(%d)", int(f))
	}
}

// LiteFeatures returns FRAppE Lite's on-demand feature set (Table 4).
func LiteFeatures() []Feature {
	return []Feature{
		FeatCategory, FeatCompany, FeatDescription, FeatProfilePosts,
		FeatPermissionCount, FeatClientIDDiffers, FeatWOTScore,
	}
}

// FullFeatures returns full FRAppE's feature set (Table 4 + Table 7).
func FullFeatures() []Feature {
	return append(LiteFeatures(), FeatNameSimilarity, FeatExternalLinkRatio)
}

// RobustFeatures returns the §7 subset that is costly for hackers to
// obfuscate: redirect-URI reputation, permission count, and client-ID
// indirection.
func RobustFeatures() []Feature {
	return []Feature{FeatPermissionCount, FeatClientIDDiffers, FeatWOTScore}
}

// FeatureSetName names a feature set for manifests and logs: "lite",
// "full" or "robust" for the three canonical sets (order-sensitive — the
// SVM's input layout is), "custom" otherwise.
func FeatureSetName(fs []Feature) string {
	same := func(want []Feature) bool {
		if len(fs) != len(want) {
			return false
		}
		for i := range fs {
			if fs[i] != want[i] {
				return false
			}
		}
		return true
	}
	switch {
	case same(LiteFeatures()):
		return "lite"
	case same(FullFeatures()):
		return "full"
	case same(RobustFeatures()):
		return "robust"
	default:
		return "custom"
	}
}

// AppRecord bundles everything FRAppE may know about one app: the
// on-demand crawl result and, when a monitoring entity provides it, the
// cross-user aggregation view.
type AppRecord struct {
	ID string
	// Crawl is the on-demand feature source; must have a successful
	// summary fetch to be classifiable.
	Crawl *crawler.Result
	// Stats is the aggregation view (zero value when unavailable).
	Stats mypagekeeper.AppStats
}

// Name returns the app's crawled name, or "".
func (r AppRecord) Name() string {
	if r.Crawl == nil || r.Crawl.Summary == nil {
		return ""
	}
	return r.Crawl.Summary.Name
}

// ErrNotClassifiable is returned when an app lacks even a summary crawl
// (e.g. it is already deleted from the graph).
var ErrNotClassifiable = errors.New("core: app has no crawlable summary")

// Extractor turns AppRecords into numeric vectors.
//
// MaliciousNameCounts maps canonical known-malicious names to the number
// of distinct apps using them (built from the training fold only, to keep
// cross-validation honest), and ContributedIDs records which app IDs were
// counted: the name-similarity feature asks whether the app shares a name
// with *another* known malicious app, so an app never matches itself.
//
// Imputed holds per-feature fill-in values for crawl surfaces that are
// missing (install or feed failures); Train computes them as training-set
// means over the rows where the surface was available, which keeps a
// missing feature uninformative instead of biased.
type Extractor struct {
	Features            []Feature
	MaliciousNameCounts map[string]int
	ContributedIDs      map[string]bool
	Imputed             map[Feature]float64
}

// canonicalName normalises an app name for similarity matching, stripping
// campaign version suffixes ('Profile Watchers v4.32' ≡ 'Profile
// Watchers').
func canonicalName(name string) string {
	base, _ := textdist.StripVersion(name)
	return textdist.Normalize(base)
}

// NameCounts builds the canonical-name multiplicity map from records and
// the set of app IDs that contributed to it.
func NameCounts(records []AppRecord) (counts map[string]int, contributed map[string]bool) {
	counts = make(map[string]int, len(records))
	contributed = make(map[string]bool, len(records))
	for _, r := range records {
		if n := r.Name(); n != "" {
			counts[canonicalName(n)]++
			contributed[r.ID] = true
		}
	}
	return counts, contributed
}

// Vector extracts the configured features from one record. Features whose
// crawl surface is missing (install or feed failure) are filled from
// e.Imputed so they carry no class signal of their own; the large §5.3
// sweep over partially-crawlable apps is then driven by the features that
// ARE observable.
func (e *Extractor) Vector(r AppRecord) ([]float64, error) {
	vec := make([]float64, len(e.Features))
	missing := make([]bool, len(e.Features))
	if err := e.VectorInto(r, vec, missing); err != nil {
		return nil, err
	}
	return vec, nil
}

// VectorInto is Vector writing into caller-owned storage: vec and missing
// must both have len(e.Features). It allocates nothing on the hot path
// (the classifier's pooled serving vectors come through here), overwrites
// every slot — pooled slices need no zeroing between uses — and applies
// imputation in place.
func (e *Extractor) VectorInto(r AppRecord, vec []float64, missing []bool) error {
	if err := e.vectorMaskInto(r, vec, missing); err != nil {
		return err
	}
	for i, f := range e.Features {
		if !missing[i] {
			continue
		}
		if imp, ok := e.Imputed[f]; ok {
			vec[i] = imp
		}
	}
	return nil
}

// VectorMask extracts features and reports which of them are missing
// (crawl surface unavailable). Missing entries hold a placeholder zero.
func (e *Extractor) VectorMask(r AppRecord) (vec []float64, missing []bool, err error) {
	vec = make([]float64, len(e.Features))
	missing = make([]bool, len(e.Features))
	if err := e.vectorMaskInto(r, vec, missing); err != nil {
		return nil, nil, err
	}
	return vec, missing, nil
}

// vectorMaskInto is the extraction core: it fills vec[i] and missing[i]
// for every configured feature, writing each slot exactly once.
func (e *Extractor) vectorMaskInto(r AppRecord, vec []float64, missing []bool) error {
	if r.Crawl == nil || r.Crawl.SummaryErr != nil || r.Crawl.Summary == nil {
		return ErrNotClassifiable
	}
	if len(vec) != len(e.Features) || len(missing) != len(e.Features) {
		return fmt.Errorf("core: feature buffers sized %d/%d, want %d", len(vec), len(missing), len(e.Features))
	}
	c := r.Crawl
	for i, f := range e.Features {
		var v float64
		miss := false
		switch f {
		case FeatCategory:
			v = boolFeature(c.Summary.Category != "")
		case FeatCompany:
			v = boolFeature(c.Summary.Company != "")
		case FeatDescription:
			v = boolFeature(c.Summary.Description != "")
		case FeatProfilePosts:
			if c.FeedErr != nil {
				miss = true
			} else {
				v = boolFeature(len(c.Feed) > 0)
			}
		case FeatPermissionCount:
			if c.InstallErr != nil {
				miss = true
			} else {
				v = float64(len(c.Install.Permissions))
			}
		case FeatClientIDDiffers:
			if c.InstallErr != nil {
				miss = true
			} else {
				v = boolFeature(c.Install.ClientID != "" && c.Install.ClientID != c.Install.AppID)
			}
		case FeatWOTScore:
			if c.InstallErr != nil {
				miss = true
			} else {
				v = float64(c.WOTScore)
			}
		case FeatNameSimilarity:
			// The app must share its name with another known-malicious
			// app; apps that contributed to the count exclude themselves.
			need := 1
			if e.ContributedIDs[r.ID] {
				need = 2
			}
			v = boolFeature(e.MaliciousNameCounts[canonicalName(c.Summary.Name)] >= need)
		case FeatExternalLinkRatio:
			if r.Stats.Posts > 0 {
				v = float64(r.Stats.ExternalLinks) / float64(r.Stats.Posts)
			} else {
				miss = true
			}
		default:
			return fmt.Errorf("core: unknown feature %v", f)
		}
		vec[i] = v
		missing[i] = miss
	}
	return nil
}

// FitImputation computes per-feature means over the records where each
// surface is observable and stores them as the extractor's fill-ins.
func (e *Extractor) FitImputation(records []AppRecord) error {
	sums := make(map[Feature]float64, len(e.Features))
	counts := make(map[Feature]int, len(e.Features))
	for _, r := range records {
		vec, missing, err := e.VectorMask(r)
		if err != nil {
			return err
		}
		for i, f := range e.Features {
			if missing[i] {
				continue
			}
			sums[f] += vec[i]
			counts[f]++
		}
	}
	e.Imputed = make(map[Feature]float64, len(e.Features))
	for _, f := range e.Features {
		if counts[f] > 0 {
			e.Imputed[f] = sums[f] / float64(counts[f])
		}
	}
	return nil
}

func boolFeature(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
