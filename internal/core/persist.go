package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"frappe/internal/svm"
)

// persistedClassifier is the gob wire form of a trained classifier. The
// Compiled field is optional — gob omits it when nil and ignores it when an
// older reader decodes a newer payload, so compiled artifacts ride the
// existing registry format without a version bump.
type persistedClassifier struct {
	Features            []Feature
	MaliciousNameCounts map[string]int
	ContributedIDs      map[string]bool
	Imputed             map[Feature]float64
	Scaler              *svm.Scaler
	Model               *svm.Model
	Compiled            *svm.CompiledModel
}

func encodeClassifier(w io.Writer, c *Classifier) error {
	p := persistedClassifier{
		Features:            c.extractor.Features,
		MaliciousNameCounts: c.extractor.MaliciousNameCounts,
		ContributedIDs:      c.extractor.ContributedIDs,
		Imputed:             c.extractor.Imputed,
		Scaler:              c.scaler,
		Model:               c.model,
		Compiled:            c.compiled,
	}
	if err := gob.NewEncoder(w).Encode(&p); err != nil {
		return fmt.Errorf("core: encoding classifier: %w", err)
	}
	return nil
}

func decodeClassifier(r io.Reader) (*Classifier, error) {
	var p persistedClassifier
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: decoding classifier: %w", err)
	}
	if p.Model == nil || p.Scaler == nil || len(p.Features) == 0 {
		return nil, fmt.Errorf("core: decoded classifier is incomplete")
	}
	if p.Compiled != nil {
		if err := p.Compiled.Validate(); err != nil {
			return nil, fmt.Errorf("core: decoded compiled artifact: %w", err)
		}
		if p.Compiled.InputDim != len(p.Features) {
			return nil, fmt.Errorf("core: compiled artifact dimension %d does not match %d features",
				p.Compiled.InputDim, len(p.Features))
		}
	}
	return &Classifier{
		extractor: Extractor{
			Features:            p.Features,
			MaliciousNameCounts: p.MaliciousNameCounts,
			ContributedIDs:      p.ContributedIDs,
			Imputed:             p.Imputed,
		},
		scaler:   p.Scaler,
		model:    p.Model,
		compiled: p.Compiled,
	}, nil
}
