package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"frappe/internal/svm"
)

// persistedClassifier is the gob wire form of a trained classifier.
type persistedClassifier struct {
	Features            []Feature
	MaliciousNameCounts map[string]int
	ContributedIDs      map[string]bool
	Imputed             map[Feature]float64
	Scaler              *svm.Scaler
	Model               *svm.Model
}

func encodeClassifier(w io.Writer, c *Classifier) error {
	p := persistedClassifier{
		Features:            c.extractor.Features,
		MaliciousNameCounts: c.extractor.MaliciousNameCounts,
		ContributedIDs:      c.extractor.ContributedIDs,
		Imputed:             c.extractor.Imputed,
		Scaler:              c.scaler,
		Model:               c.model,
	}
	if err := gob.NewEncoder(w).Encode(&p); err != nil {
		return fmt.Errorf("core: encoding classifier: %w", err)
	}
	return nil
}

func decodeClassifier(r io.Reader) (*Classifier, error) {
	var p persistedClassifier
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: decoding classifier: %w", err)
	}
	if p.Model == nil || p.Scaler == nil || len(p.Features) == 0 {
		return nil, fmt.Errorf("core: decoded classifier is incomplete")
	}
	return &Classifier{
		extractor: Extractor{
			Features:            p.Features,
			MaliciousNameCounts: p.MaliciousNameCounts,
			ContributedIDs:      p.ContributedIDs,
			Imputed:             p.Imputed,
		},
		scaler: p.Scaler,
		model:  p.Model,
	}, nil
}
