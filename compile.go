package frappe

import (
	"errors"
	"fmt"

	"frappe/internal/svm"
)

// This file is the classifier-level face of compiled inference
// (internal/svm's Compile): turning a trained kernel-expansion SVM into a
// flat serving artifact — exact, or an approximate random-Fourier-features
// form — and gating the approximation on holdout parity before it is
// allowed anywhere near a serving process. The compiled artifact travels
// inside the classifier's registry payload, so the PR 5 publish → validate
// → hot-swap loop carries it for free.

// CompileMode selects the compiled-inference form; see svm.CompileMode.
type CompileMode = svm.CompileMode

// CompileOptions is the compile recipe: mode, RFF dimension, sampling
// seed, and float32 quantization. The recipe is the whole provenance — the
// same model and options always compile to the same artifact.
type CompileOptions = svm.CompileOptions

// Compile modes.
const (
	// CompileExact flattens the support-vector expansion (bit-identical
	// decisions, faster memory layout).
	CompileExact = svm.CompileExact
	// CompileRFF replaces the kernel expansion with random Fourier
	// features: O(dim) per verdict regardless of support-vector count.
	CompileRFF = svm.CompileRFF
)

// ParseCompileMode parses "exact" or "rff".
func ParseCompileMode(s string) (CompileMode, error) { return svm.ParseCompileMode(s) }

// DefaultCompileOptions returns the default recipe for a mode.
func DefaultCompileOptions(mode CompileMode) CompileOptions {
	return svm.DefaultCompileOptions(mode)
}

// ErrCompileRefused reports that a compiled artifact's holdout accuracy
// regressed beyond tolerance versus the exact model; the classifier has
// been reverted to exact serving.
var ErrCompileRefused = errors.New("frappe: compiled model refused")

// ParityMetrics quantifies how faithfully a compiled artifact tracks the
// exact model it was compiled from, over one labelled record set.
type ParityMetrics struct {
	// Samples is the number of classifiable records compared.
	Samples int `json:"samples"`
	// AgreementRate is the fraction of records on which exact and
	// compiled verdicts agree (1 = label-identical).
	AgreementRate float64 `json:"agreement_rate"`
	// MaxDecisionDrift is the largest |exact - compiled| decision-value
	// gap observed.
	MaxDecisionDrift float64 `json:"max_decision_drift"`
	// ExactAccuracy and CompiledAccuracy are each form's accuracy against
	// the true labels.
	ExactAccuracy    float64 `json:"exact_accuracy"`
	CompiledAccuracy float64 `json:"compiled_accuracy"`
}

// CompileClassifier compiles clf's SVM with the given recipe and gates the
// result on the labelled record set: the compiled form's accuracy may not
// fall more than tolerance below the exact model's on the same records.
//
// On success the compiled artifact is pinned (clf serves through it, Save
// embeds it) and the measured parity is returned. On regression the
// classifier is reverted to exact serving and the error wraps
// ErrCompileRefused — the returned metrics are still valid, so callers can
// report what the refused artifact measured.
func CompileClassifier(clf *Classifier, records []AppRecord, labels []bool, opts CompileOptions, tolerance float64) (ParityMetrics, error) {
	var p ParityMetrics
	if clf == nil {
		return p, errors.New("frappe: nil classifier")
	}
	if len(records) == 0 || len(records) != len(labels) {
		return p, fmt.Errorf("frappe: compile gate needs labelled records (%d records, %d labels)",
			len(records), len(labels))
	}

	// Exact pass first: any previously pinned artifact is dropped so the
	// baseline really is the kernel expansion.
	clf.DropCompiled()
	exact := make([]float64, 0, len(records))
	kept := make([]int, 0, len(records))
	for i, r := range records {
		v, err := clf.DecisionValueRecord(r)
		if errors.Is(err, ErrNotClassifiable) {
			continue
		}
		if err != nil {
			return p, fmt.Errorf("frappe: scoring %s: %w", r.ID, err)
		}
		exact = append(exact, v)
		kept = append(kept, i)
	}
	if len(kept) == 0 {
		return p, errors.New("frappe: compile gate: no classifiable records")
	}

	if err := clf.CompileInference(opts); err != nil {
		return p, err
	}
	p.Samples = len(kept)
	var agree, exactRight, compiledRight int
	for k, i := range kept {
		cv, err := clf.DecisionValueRecord(records[i])
		if err != nil {
			clf.DropCompiled()
			return p, fmt.Errorf("frappe: scoring %s compiled: %w", records[i].ID, err)
		}
		ev := exact[k]
		if drift := abs(ev - cv); drift > p.MaxDecisionDrift {
			p.MaxDecisionDrift = drift
		}
		exactMal, compiledMal := ev >= 0, cv >= 0
		if exactMal == compiledMal {
			agree++
		}
		if exactMal == labels[i] {
			exactRight++
		}
		if compiledMal == labels[i] {
			compiledRight++
		}
	}
	n := float64(p.Samples)
	p.AgreementRate = float64(agree) / n
	p.ExactAccuracy = float64(exactRight) / n
	p.CompiledAccuracy = float64(compiledRight) / n

	if p.CompiledAccuracy < p.ExactAccuracy-tolerance {
		clf.DropCompiled()
		return p, fmt.Errorf("%w: %s holdout accuracy %.4f vs exact %.4f (tolerance %.4f)",
			ErrCompileRefused, opts.Mode, p.CompiledAccuracy, p.ExactAccuracy, tolerance)
	}
	return p, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
