package frappe

import (
	"context"
	"errors"
	"fmt"
	"io"

	"frappe/internal/core"
	"frappe/internal/crawler"
	"frappe/internal/graphapi"
	"frappe/internal/wot"
)

// Watchdog evaluates a single app ID on demand against live services: it
// crawls the app's on-demand features over HTTP and runs a trained
// classifier. This is the deployment §5.1 envisions — "a browser extension
// that can evaluate any Facebook application at the time when a user is
// considering installing it".
type Watchdog struct {
	classifier *Classifier
	crawler    *crawler.Crawler

	// RankWorkers bounds Rank's assessment fan-out (default 8).
	RankWorkers int
}

// NewWatchdog wires a trained classifier to a Graph-API endpoint and a WOT
// endpoint. A classifier trained with FullFeatures works too: the
// aggregation features are imputed from training statistics when the
// watchdog has no cross-user view.
func NewWatchdog(clf *Classifier, graphURL, wotURL string) (*Watchdog, error) {
	if clf == nil {
		return nil, fmt.Errorf("frappe: nil classifier")
	}
	c, err := crawler.New(crawler.Config{
		Graph:   &graphapi.Client{BaseURL: graphURL},
		WOT:     &wot.Client{BaseURL: wotURL},
		Workers: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("frappe: %w", err)
	}
	return &Watchdog{classifier: clf, crawler: c}, nil
}

// NewWatchdogFrom loads a serialised classifier (written with
// Classifier.Save) and wires it like NewWatchdog.
func NewWatchdogFrom(r io.Reader, graphURL, wotURL string) (*Watchdog, error) {
	clf, err := core.Load(r)
	if err != nil {
		return nil, err
	}
	return NewWatchdog(clf, graphURL, wotURL)
}

// Evaluate crawls the app's on-demand features and classifies it.
// core.ErrNotClassifiable is returned when the app is already deleted from
// the graph.
func (w *Watchdog) Evaluate(ctx context.Context, appID string) (Verdict, error) {
	results, err := w.crawler.Crawl(ctx, []string{appID})
	if err != nil {
		return Verdict{AppID: appID}, err
	}
	r, ok := results[appID]
	if !ok {
		return Verdict{AppID: appID}, fmt.Errorf("frappe: no crawl result for %s", appID)
	}
	// A summary crawl that failed for any reason other than deletion (the
	// Graph endpoint unreachable, say) is a crawl failure, not a verdict:
	// without this distinction a network outage would report every app as
	// deleted-and-malicious.
	if r.SummaryErr != nil && !errors.Is(r.SummaryErr, graphapi.ErrDeleted) {
		return Verdict{AppID: appID}, fmt.Errorf("frappe: crawling %s: %w", appID, r.SummaryErr)
	}
	return w.classifier.Classify(AppRecord{ID: appID, Crawl: r})
}

// ErrNotClassifiable is returned by Evaluate for apps without a crawlable
// summary (deleted or unknown).
var ErrNotClassifiable = core.ErrNotClassifiable
