package frappe

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"frappe/internal/core"
	"frappe/internal/crawler"
	"frappe/internal/graphapi"
	"frappe/internal/httpx"
	"frappe/internal/tracing"
	"frappe/internal/wot"
)

// servingModel pairs the classifier with the manifest describing it; the
// two swap together behind one atomic pointer so an in-flight request
// never sees a classifier from one version stamped with another's ID.
type servingModel struct {
	clf      *Classifier
	manifest ModelManifest
}

// Watchdog evaluates a single app ID on demand against live services: it
// crawls the app's on-demand features over HTTP and runs a trained
// classifier. This is the deployment §5.1 envisions — "a browser extension
// that can evaluate any Facebook application at the time when a user is
// considering installing it".
//
// The classifier is held behind an atomic pointer: SwapModel replaces it
// without interrupting in-flight assessments (each request pins the model
// it started with), which is what lets a registry watcher hot-reload new
// versions under live traffic.
type Watchdog struct {
	serving atomic.Pointer[servingModel]
	crawler *crawler.Crawler
	cache   *verdictCache
	cfg     WatchdogConfig

	// RankWorkers bounds Rank's assessment fan-out (default 8).
	RankWorkers int
}

// WatchdogConfig tunes the watchdog's resilience envelope: how hard its
// transport tries against flaky upstreams, when it stops trying (circuit
// breaker), and how long a verdict stays servable without re-crawling.
type WatchdogConfig struct {
	// GraphURL and WOTURL are the upstream service roots.
	GraphURL string
	WOTURL   string
	// Timeout bounds each upstream HTTP attempt (0 = httpx default 10s,
	// negative = no timeout).
	Timeout time.Duration
	// Retries is extra transport attempts per fetch (0 = default 2,
	// negative = none).
	Retries int
	// BreakerThreshold is consecutive upstream failures before the circuit
	// opens (0 = httpx default 5, negative = breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit waits before probing
	// again (0 = httpx default 10s).
	BreakerCooldown time.Duration
	// VerdictTTL is how long a successful (or deleted) assessment is served
	// from the verdict cache; 0 disables the cache, including its per-app
	// singleflight collapse of concurrent assessments.
	VerdictTTL time.Duration
}

// NewWatchdog wires a trained classifier to a Graph-API endpoint and a WOT
// endpoint with default resilience settings. A classifier trained with
// FullFeatures works too: the aggregation features are imputed from
// training statistics when the watchdog has no cross-user view.
func NewWatchdog(clf *Classifier, graphURL, wotURL string) (*Watchdog, error) {
	return NewWatchdogWith(clf, WatchdogConfig{GraphURL: graphURL, WOTURL: wotURL})
}

// NewWatchdogWith is NewWatchdog with explicit resilience configuration.
func NewWatchdogWith(clf *Classifier, cfg WatchdogConfig) (*Watchdog, error) {
	if clf == nil {
		return nil, fmt.Errorf("frappe: nil classifier")
	}
	retries := cfg.Retries
	if retries < 0 {
		retries = 0
	} else if retries == 0 {
		retries = 2
	}
	transport := func(service string) *httpx.Client {
		return httpx.New(httpx.Config{
			Service:          service,
			Timeout:          cfg.Timeout,
			MaxAttempts:      retries + 1,
			BreakerThreshold: cfg.BreakerThreshold,
			BreakerCooldown:  cfg.BreakerCooldown,
		})
	}
	c, err := crawler.New(crawler.Config{
		Graph:   &graphapi.Client{BaseURL: cfg.GraphURL, HTTP: transport("graph")},
		WOT:     &wot.Client{BaseURL: cfg.WOTURL, HTTP: transport("wot")},
		Workers: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("frappe: %w", err)
	}
	w := &Watchdog{crawler: c, cfg: cfg}
	w.serving.Store(&servingModel{clf: clf, manifest: fileManifest(clf)})
	if cfg.VerdictTTL > 0 {
		w.cache = newVerdictCache(cfg.VerdictTTL)
	}
	return w, nil
}

// Classifier returns the currently serving classifier.
func (w *Watchdog) Classifier() *Classifier { return w.serving.Load().clf }

// ServingManifest returns the manifest of the currently serving model. For
// classifiers loaded outside a registry (flat file, in-memory) it is a
// synthesised version-0 manifest whose checksum still identifies the model
// content.
func (w *Watchdog) ServingManifest() ModelManifest { return w.serving.Load().manifest }

// SwapModel atomically replaces the serving classifier. In-flight
// assessments finish on the model they started with; new assessments see
// the new one. The verdict cache is flushed so no verdict computed by the
// superseded model is ever served again (entries are version-keyed too, as
// a second line of defence).
func (w *Watchdog) SwapModel(clf *Classifier, m ModelManifest) error {
	if clf == nil {
		return fmt.Errorf("frappe: nil classifier")
	}
	if m.SHA256 == "" {
		m = fileManifest(clf)
	}
	w.serving.Store(&servingModel{clf: clf, manifest: m})
	if w.cache != nil {
		w.cache.flush()
	}
	return nil
}

// NewWatchdogFrom loads a serialised classifier (written with
// Classifier.Save) and wires it like NewWatchdog.
func NewWatchdogFrom(r io.Reader, graphURL, wotURL string) (*Watchdog, error) {
	return NewWatchdogFromWith(r, WatchdogConfig{GraphURL: graphURL, WOTURL: wotURL})
}

// NewWatchdogFromWith loads a serialised classifier and wires it like
// NewWatchdogWith.
func NewWatchdogFromWith(r io.Reader, cfg WatchdogConfig) (*Watchdog, error) {
	clf, err := core.Load(r)
	if err != nil {
		return nil, err
	}
	return NewWatchdogWith(clf, cfg)
}

// Evaluate crawls the app's on-demand features and classifies it.
// core.ErrNotClassifiable is returned when the app is already deleted from
// the graph.
func (w *Watchdog) Evaluate(ctx context.Context, appID string) (Verdict, error) {
	return w.evaluateWith(ctx, w.serving.Load().clf, appID)
}

func (w *Watchdog) evaluateWith(ctx context.Context, clf *Classifier, appID string) (Verdict, error) {
	results, err := w.crawler.Crawl(ctx, []string{appID})
	if err != nil {
		return Verdict{AppID: appID}, err
	}
	r, ok := results[appID]
	if !ok {
		return Verdict{AppID: appID}, fmt.Errorf("frappe: no crawl result for %s", appID)
	}
	// A summary crawl that failed for any reason other than deletion (the
	// Graph endpoint unreachable, say) is a crawl failure, not a verdict:
	// without this distinction a network outage would report every app as
	// deleted-and-malicious.
	if r.SummaryErr != nil && !errors.Is(r.SummaryErr, graphapi.ErrDeleted) {
		return Verdict{AppID: appID}, fmt.Errorf("frappe: crawling %s: %w", appID, r.SummaryErr)
	}
	// Feature extraction + SVM inference under one span: inference is
	// microseconds next to the crawl, but seeing it in the tree confirms a
	// verdict was computed rather than served from cache.
	_, sp := tracing.Default().StartChild(ctx, "svm.classify")
	v, err := clf.Classify(AppRecord{ID: appID, Crawl: r})
	if err != nil {
		if !errors.Is(err, core.ErrNotClassifiable) {
			sp.SetError(err)
		}
	} else {
		sp.SetAttr(tracing.Bool("malicious", v.Malicious))
		sp.SetAttr(tracing.Float("score", v.Score))
	}
	sp.End()
	return v, err
}

// ErrNotClassifiable is returned by Evaluate for apps without a crawlable
// summary (deleted or unknown).
var ErrNotClassifiable = core.ErrNotClassifiable
