package frappe

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"frappe/internal/core"
	"frappe/internal/modelreg"
)

// This file is the classifier-level face of the model registry
// (internal/modelreg): publishing a trained Classifier as a versioned,
// content-addressed artifact, loading one back with checksum verification,
// and fingerprinting the labeled snapshot it was trained on. The paper's
// §5 deployment assumes exactly this loop — MyPageKeeper's blacklist keeps
// growing, so the model that serves must be replaceable without stopping
// the service.

// ModelRegistry is a versioned on-disk model store; see
// internal/modelreg for layout and guarantees.
type ModelRegistry = modelreg.Registry

// ModelManifest describes one published model version.
type ModelManifest = modelreg.Manifest

// ModelMetrics is the quality summary a manifest carries.
type ModelMetrics = modelreg.Metrics

// CompileInfo records the compiled-inference provenance a manifest carries
// (mode, RFF dimension, seed, quantization, parity numbers).
type CompileInfo = modelreg.CompileInfo

// OpenModelRegistry creates (if needed) and opens a registry at dir.
func OpenModelRegistry(dir string) (*ModelRegistry, error) {
	return modelreg.Open(dir)
}

// ModelMetricsOf converts evaluation Metrics into the manifest form.
func ModelMetricsOf(m Metrics) ModelMetrics {
	return ModelMetrics{
		Accuracy: m.Accuracy(),
		FPRate:   m.FPRate(),
		FNRate:   m.FNRate(),
		Samples:  m.Total(),
	}
}

// PublishClassifier serialises a trained classifier and publishes it as
// the registry's next (and newly active) version. meta supplies
// provenance: fingerprint, metrics, notes; FeatureMode is filled from the
// classifier when empty, and Version/SHA256/CreatedAt are assigned by the
// registry.
func PublishClassifier(reg *ModelRegistry, clf *Classifier, meta ModelManifest) (ModelManifest, error) {
	if clf == nil {
		return ModelManifest{}, fmt.Errorf("frappe: nil classifier")
	}
	if meta.FeatureMode == "" {
		meta.FeatureMode = core.FeatureSetName(clf.Features())
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		return ModelManifest{}, err
	}
	return reg.Publish(&buf, meta)
}

// LoadClassifier loads one registry version (0 = the active version),
// verifying the payload against its manifest checksum before decoding.
// Corrupt or checksum-mismatched artifacts are rejected with
// modelreg.ErrCorrupt.
func LoadClassifier(reg *ModelRegistry, version int) (*Classifier, ModelManifest, error) {
	var (
		m   ModelManifest
		err error
	)
	if version == 0 {
		m, err = reg.Latest()
	} else {
		m, err = reg.Get(version)
	}
	if err != nil {
		return nil, ModelManifest{}, err
	}
	payload, m, err := reg.Payload(m.Version)
	if err != nil {
		return nil, ModelManifest{}, err
	}
	clf, err := core.Load(bytes.NewReader(payload))
	if err != nil {
		return nil, ModelManifest{}, fmt.Errorf("frappe: decoding model v%d: %w", m.Version, err)
	}
	return clf, m, nil
}

// NewWatchdogFromRegistry loads the registry's active model version and
// wires a watchdog around it; the manifest travels with the classifier,
// so assessments are stamped with its ModelID from the first request.
func NewWatchdogFromRegistry(reg *ModelRegistry, cfg WatchdogConfig) (*Watchdog, error) {
	clf, m, err := LoadClassifier(reg, 0)
	if err != nil {
		return nil, err
	}
	w, err := NewWatchdogWith(clf, cfg)
	if err != nil {
		return nil, err
	}
	w.serving.Store(&servingModel{clf: clf, manifest: m})
	return w, nil
}

// TrainingFingerprint hashes a labeled snapshot — app IDs plus labels,
// order-independent — so two retraining rounds over the same corpus are
// recognisable without comparing records.
func TrainingFingerprint(records []AppRecord, labels []bool) string {
	lines := make([]string, len(records))
	for i, r := range records {
		tag := byte('b')
		if i < len(labels) && labels[i] {
			tag = 'm'
		}
		lines[i] = r.ID + string([]byte{0, tag})
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fileManifest synthesises a version-0 manifest for a classifier that did
// not come from a registry (flat .gob file or in-memory training): the
// checksum still content-addresses the model, so its ModelID ("v0-...")
// distinguishes generations across flat-file swaps too.
func fileManifest(clf *Classifier) ModelManifest {
	m := ModelManifest{FeatureMode: core.FeatureSetName(clf.Features())}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		// Unserialisable classifiers cannot occur for trained models; keep
		// a recognisable ID rather than failing construction.
		m.SHA256 = "unserialisable"
		return m
	}
	sum := sha256.Sum256(buf.Bytes())
	m.SHA256 = hex.EncodeToString(sum[:])
	return m
}
